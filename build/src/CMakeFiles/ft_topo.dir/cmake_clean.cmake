file(REMOVE_RECURSE
  "CMakeFiles/ft_topo.dir/topo/apl.cpp.o"
  "CMakeFiles/ft_topo.dir/topo/apl.cpp.o.d"
  "CMakeFiles/ft_topo.dir/topo/dot.cpp.o"
  "CMakeFiles/ft_topo.dir/topo/dot.cpp.o.d"
  "CMakeFiles/ft_topo.dir/topo/fat_tree.cpp.o"
  "CMakeFiles/ft_topo.dir/topo/fat_tree.cpp.o.d"
  "CMakeFiles/ft_topo.dir/topo/random_graph.cpp.o"
  "CMakeFiles/ft_topo.dir/topo/random_graph.cpp.o.d"
  "CMakeFiles/ft_topo.dir/topo/serialize.cpp.o"
  "CMakeFiles/ft_topo.dir/topo/serialize.cpp.o.d"
  "CMakeFiles/ft_topo.dir/topo/topology.cpp.o"
  "CMakeFiles/ft_topo.dir/topo/topology.cpp.o.d"
  "CMakeFiles/ft_topo.dir/topo/two_stage.cpp.o"
  "CMakeFiles/ft_topo.dir/topo/two_stage.cpp.o.d"
  "libft_topo.a"
  "libft_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
