
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/apl.cpp" "src/CMakeFiles/ft_topo.dir/topo/apl.cpp.o" "gcc" "src/CMakeFiles/ft_topo.dir/topo/apl.cpp.o.d"
  "/root/repo/src/topo/dot.cpp" "src/CMakeFiles/ft_topo.dir/topo/dot.cpp.o" "gcc" "src/CMakeFiles/ft_topo.dir/topo/dot.cpp.o.d"
  "/root/repo/src/topo/fat_tree.cpp" "src/CMakeFiles/ft_topo.dir/topo/fat_tree.cpp.o" "gcc" "src/CMakeFiles/ft_topo.dir/topo/fat_tree.cpp.o.d"
  "/root/repo/src/topo/random_graph.cpp" "src/CMakeFiles/ft_topo.dir/topo/random_graph.cpp.o" "gcc" "src/CMakeFiles/ft_topo.dir/topo/random_graph.cpp.o.d"
  "/root/repo/src/topo/serialize.cpp" "src/CMakeFiles/ft_topo.dir/topo/serialize.cpp.o" "gcc" "src/CMakeFiles/ft_topo.dir/topo/serialize.cpp.o.d"
  "/root/repo/src/topo/topology.cpp" "src/CMakeFiles/ft_topo.dir/topo/topology.cpp.o" "gcc" "src/CMakeFiles/ft_topo.dir/topo/topology.cpp.o.d"
  "/root/repo/src/topo/two_stage.cpp" "src/CMakeFiles/ft_topo.dir/topo/two_stage.cpp.o" "gcc" "src/CMakeFiles/ft_topo.dir/topo/two_stage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ft_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
