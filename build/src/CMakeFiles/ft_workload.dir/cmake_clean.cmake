file(REMOVE_RECURSE
  "CMakeFiles/ft_workload.dir/workload/cluster.cpp.o"
  "CMakeFiles/ft_workload.dir/workload/cluster.cpp.o.d"
  "CMakeFiles/ft_workload.dir/workload/traffic.cpp.o"
  "CMakeFiles/ft_workload.dir/workload/traffic.cpp.o.d"
  "libft_workload.a"
  "libft_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
