file(REMOVE_RECURSE
  "CMakeFiles/ft_mcf.dir/mcf/commodity.cpp.o"
  "CMakeFiles/ft_mcf.dir/mcf/commodity.cpp.o.d"
  "CMakeFiles/ft_mcf.dir/mcf/garg_koenemann.cpp.o"
  "CMakeFiles/ft_mcf.dir/mcf/garg_koenemann.cpp.o.d"
  "CMakeFiles/ft_mcf.dir/mcf/lp_exact.cpp.o"
  "CMakeFiles/ft_mcf.dir/mcf/lp_exact.cpp.o.d"
  "CMakeFiles/ft_mcf.dir/mcf/max_flow.cpp.o"
  "CMakeFiles/ft_mcf.dir/mcf/max_flow.cpp.o.d"
  "libft_mcf.a"
  "libft_mcf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_mcf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
