
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mcf/commodity.cpp" "src/CMakeFiles/ft_mcf.dir/mcf/commodity.cpp.o" "gcc" "src/CMakeFiles/ft_mcf.dir/mcf/commodity.cpp.o.d"
  "/root/repo/src/mcf/garg_koenemann.cpp" "src/CMakeFiles/ft_mcf.dir/mcf/garg_koenemann.cpp.o" "gcc" "src/CMakeFiles/ft_mcf.dir/mcf/garg_koenemann.cpp.o.d"
  "/root/repo/src/mcf/lp_exact.cpp" "src/CMakeFiles/ft_mcf.dir/mcf/lp_exact.cpp.o" "gcc" "src/CMakeFiles/ft_mcf.dir/mcf/lp_exact.cpp.o.d"
  "/root/repo/src/mcf/max_flow.cpp" "src/CMakeFiles/ft_mcf.dir/mcf/max_flow.cpp.o" "gcc" "src/CMakeFiles/ft_mcf.dir/mcf/max_flow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ft_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
