file(REMOVE_RECURSE
  "libft_mcf.a"
)
