# Empty compiler generated dependencies file for ft_mcf.
# This may be replaced when dependencies are built.
