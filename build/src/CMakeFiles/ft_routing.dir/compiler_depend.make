# Empty compiler generated dependencies file for ft_routing.
# This may be replaced when dependencies are built.
