
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/ecmp.cpp" "src/CMakeFiles/ft_routing.dir/routing/ecmp.cpp.o" "gcc" "src/CMakeFiles/ft_routing.dir/routing/ecmp.cpp.o.d"
  "/root/repo/src/routing/fib.cpp" "src/CMakeFiles/ft_routing.dir/routing/fib.cpp.o" "gcc" "src/CMakeFiles/ft_routing.dir/routing/fib.cpp.o.d"
  "/root/repo/src/routing/ksp_routing.cpp" "src/CMakeFiles/ft_routing.dir/routing/ksp_routing.cpp.o" "gcc" "src/CMakeFiles/ft_routing.dir/routing/ksp_routing.cpp.o.d"
  "/root/repo/src/routing/paths.cpp" "src/CMakeFiles/ft_routing.dir/routing/paths.cpp.o" "gcc" "src/CMakeFiles/ft_routing.dir/routing/paths.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ft_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
