file(REMOVE_RECURSE
  "CMakeFiles/ft_routing.dir/routing/ecmp.cpp.o"
  "CMakeFiles/ft_routing.dir/routing/ecmp.cpp.o.d"
  "CMakeFiles/ft_routing.dir/routing/fib.cpp.o"
  "CMakeFiles/ft_routing.dir/routing/fib.cpp.o.d"
  "CMakeFiles/ft_routing.dir/routing/ksp_routing.cpp.o"
  "CMakeFiles/ft_routing.dir/routing/ksp_routing.cpp.o.d"
  "CMakeFiles/ft_routing.dir/routing/paths.cpp.o"
  "CMakeFiles/ft_routing.dir/routing/paths.cpp.o.d"
  "libft_routing.a"
  "libft_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
