file(REMOVE_RECURSE
  "CMakeFiles/ft_core.dir/core/controller.cpp.o"
  "CMakeFiles/ft_core.dir/core/controller.cpp.o.d"
  "CMakeFiles/ft_core.dir/core/converter.cpp.o"
  "CMakeFiles/ft_core.dir/core/converter.cpp.o.d"
  "CMakeFiles/ft_core.dir/core/expansion.cpp.o"
  "CMakeFiles/ft_core.dir/core/expansion.cpp.o.d"
  "CMakeFiles/ft_core.dir/core/flat_tree.cpp.o"
  "CMakeFiles/ft_core.dir/core/flat_tree.cpp.o.d"
  "CMakeFiles/ft_core.dir/core/pod.cpp.o"
  "CMakeFiles/ft_core.dir/core/pod.cpp.o.d"
  "CMakeFiles/ft_core.dir/core/profile.cpp.o"
  "CMakeFiles/ft_core.dir/core/profile.cpp.o.d"
  "CMakeFiles/ft_core.dir/core/recovery.cpp.o"
  "CMakeFiles/ft_core.dir/core/recovery.cpp.o.d"
  "CMakeFiles/ft_core.dir/core/wiring.cpp.o"
  "CMakeFiles/ft_core.dir/core/wiring.cpp.o.d"
  "CMakeFiles/ft_core.dir/core/zones.cpp.o"
  "CMakeFiles/ft_core.dir/core/zones.cpp.o.d"
  "libft_core.a"
  "libft_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
