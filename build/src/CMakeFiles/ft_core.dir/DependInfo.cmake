
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/controller.cpp" "src/CMakeFiles/ft_core.dir/core/controller.cpp.o" "gcc" "src/CMakeFiles/ft_core.dir/core/controller.cpp.o.d"
  "/root/repo/src/core/converter.cpp" "src/CMakeFiles/ft_core.dir/core/converter.cpp.o" "gcc" "src/CMakeFiles/ft_core.dir/core/converter.cpp.o.d"
  "/root/repo/src/core/expansion.cpp" "src/CMakeFiles/ft_core.dir/core/expansion.cpp.o" "gcc" "src/CMakeFiles/ft_core.dir/core/expansion.cpp.o.d"
  "/root/repo/src/core/flat_tree.cpp" "src/CMakeFiles/ft_core.dir/core/flat_tree.cpp.o" "gcc" "src/CMakeFiles/ft_core.dir/core/flat_tree.cpp.o.d"
  "/root/repo/src/core/pod.cpp" "src/CMakeFiles/ft_core.dir/core/pod.cpp.o" "gcc" "src/CMakeFiles/ft_core.dir/core/pod.cpp.o.d"
  "/root/repo/src/core/profile.cpp" "src/CMakeFiles/ft_core.dir/core/profile.cpp.o" "gcc" "src/CMakeFiles/ft_core.dir/core/profile.cpp.o.d"
  "/root/repo/src/core/recovery.cpp" "src/CMakeFiles/ft_core.dir/core/recovery.cpp.o" "gcc" "src/CMakeFiles/ft_core.dir/core/recovery.cpp.o.d"
  "/root/repo/src/core/wiring.cpp" "src/CMakeFiles/ft_core.dir/core/wiring.cpp.o" "gcc" "src/CMakeFiles/ft_core.dir/core/wiring.cpp.o.d"
  "/root/repo/src/core/zones.cpp" "src/CMakeFiles/ft_core.dir/core/zones.cpp.o" "gcc" "src/CMakeFiles/ft_core.dir/core/zones.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ft_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
