
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/bfs.cpp" "src/CMakeFiles/ft_graph.dir/graph/bfs.cpp.o" "gcc" "src/CMakeFiles/ft_graph.dir/graph/bfs.cpp.o.d"
  "/root/repo/src/graph/dijkstra.cpp" "src/CMakeFiles/ft_graph.dir/graph/dijkstra.cpp.o" "gcc" "src/CMakeFiles/ft_graph.dir/graph/dijkstra.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/ft_graph.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/ft_graph.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/ksp.cpp" "src/CMakeFiles/ft_graph.dir/graph/ksp.cpp.o" "gcc" "src/CMakeFiles/ft_graph.dir/graph/ksp.cpp.o.d"
  "/root/repo/src/graph/metrics.cpp" "src/CMakeFiles/ft_graph.dir/graph/metrics.cpp.o" "gcc" "src/CMakeFiles/ft_graph.dir/graph/metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ft_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
