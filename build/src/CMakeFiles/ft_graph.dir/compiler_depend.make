# Empty compiler generated dependencies file for ft_graph.
# This may be replaced when dependencies are built.
