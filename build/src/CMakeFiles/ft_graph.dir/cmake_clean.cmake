file(REMOVE_RECURSE
  "CMakeFiles/ft_graph.dir/graph/bfs.cpp.o"
  "CMakeFiles/ft_graph.dir/graph/bfs.cpp.o.d"
  "CMakeFiles/ft_graph.dir/graph/dijkstra.cpp.o"
  "CMakeFiles/ft_graph.dir/graph/dijkstra.cpp.o.d"
  "CMakeFiles/ft_graph.dir/graph/graph.cpp.o"
  "CMakeFiles/ft_graph.dir/graph/graph.cpp.o.d"
  "CMakeFiles/ft_graph.dir/graph/ksp.cpp.o"
  "CMakeFiles/ft_graph.dir/graph/ksp.cpp.o.d"
  "CMakeFiles/ft_graph.dir/graph/metrics.cpp.o"
  "CMakeFiles/ft_graph.dir/graph/metrics.cpp.o.d"
  "libft_graph.a"
  "libft_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
