file(REMOVE_RECURSE
  "libft_graph.a"
)
