# Empty dependencies file for ft_util.
# This may be replaced when dependencies are built.
