file(REMOVE_RECURSE
  "CMakeFiles/ft_util.dir/util/cli.cpp.o"
  "CMakeFiles/ft_util.dir/util/cli.cpp.o.d"
  "CMakeFiles/ft_util.dir/util/log.cpp.o"
  "CMakeFiles/ft_util.dir/util/log.cpp.o.d"
  "CMakeFiles/ft_util.dir/util/rng.cpp.o"
  "CMakeFiles/ft_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/ft_util.dir/util/stats.cpp.o"
  "CMakeFiles/ft_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/ft_util.dir/util/table.cpp.o"
  "CMakeFiles/ft_util.dir/util/table.cpp.o.d"
  "libft_util.a"
  "libft_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
