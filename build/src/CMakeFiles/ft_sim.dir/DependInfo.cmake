
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/fair_share.cpp" "src/CMakeFiles/ft_sim.dir/sim/fair_share.cpp.o" "gcc" "src/CMakeFiles/ft_sim.dir/sim/fair_share.cpp.o.d"
  "/root/repo/src/sim/flow_gen.cpp" "src/CMakeFiles/ft_sim.dir/sim/flow_gen.cpp.o" "gcc" "src/CMakeFiles/ft_sim.dir/sim/flow_gen.cpp.o.d"
  "/root/repo/src/sim/flow_sim.cpp" "src/CMakeFiles/ft_sim.dir/sim/flow_sim.cpp.o" "gcc" "src/CMakeFiles/ft_sim.dir/sim/flow_sim.cpp.o.d"
  "/root/repo/src/sim/packet_sim.cpp" "src/CMakeFiles/ft_sim.dir/sim/packet_sim.cpp.o" "gcc" "src/CMakeFiles/ft_sim.dir/sim/packet_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ft_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_mcf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
