file(REMOVE_RECURSE
  "CMakeFiles/ft_sim.dir/sim/fair_share.cpp.o"
  "CMakeFiles/ft_sim.dir/sim/fair_share.cpp.o.d"
  "CMakeFiles/ft_sim.dir/sim/flow_gen.cpp.o"
  "CMakeFiles/ft_sim.dir/sim/flow_gen.cpp.o.d"
  "CMakeFiles/ft_sim.dir/sim/flow_sim.cpp.o"
  "CMakeFiles/ft_sim.dir/sim/flow_sim.cpp.o.d"
  "CMakeFiles/ft_sim.dir/sim/packet_sim.cpp.o"
  "CMakeFiles/ft_sim.dir/sim/packet_sim.cpp.o.d"
  "libft_sim.a"
  "libft_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
