file(REMOVE_RECURSE
  "CMakeFiles/ft_lp.dir/lp/simplex.cpp.o"
  "CMakeFiles/ft_lp.dir/lp/simplex.cpp.o.d"
  "libft_lp.a"
  "libft_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
