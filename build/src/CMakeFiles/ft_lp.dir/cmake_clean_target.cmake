file(REMOVE_RECURSE
  "libft_lp.a"
)
