file(REMOVE_RECURSE
  "CMakeFiles/topo_test.dir/topo/apl_test.cpp.o"
  "CMakeFiles/topo_test.dir/topo/apl_test.cpp.o.d"
  "CMakeFiles/topo_test.dir/topo/dot_test.cpp.o"
  "CMakeFiles/topo_test.dir/topo/dot_test.cpp.o.d"
  "CMakeFiles/topo_test.dir/topo/fat_tree_test.cpp.o"
  "CMakeFiles/topo_test.dir/topo/fat_tree_test.cpp.o.d"
  "CMakeFiles/topo_test.dir/topo/generic_clos_test.cpp.o"
  "CMakeFiles/topo_test.dir/topo/generic_clos_test.cpp.o.d"
  "CMakeFiles/topo_test.dir/topo/random_graph_test.cpp.o"
  "CMakeFiles/topo_test.dir/topo/random_graph_test.cpp.o.d"
  "CMakeFiles/topo_test.dir/topo/serialize_test.cpp.o"
  "CMakeFiles/topo_test.dir/topo/serialize_test.cpp.o.d"
  "CMakeFiles/topo_test.dir/topo/topology_test.cpp.o"
  "CMakeFiles/topo_test.dir/topo/topology_test.cpp.o.d"
  "CMakeFiles/topo_test.dir/topo/two_stage_test.cpp.o"
  "CMakeFiles/topo_test.dir/topo/two_stage_test.cpp.o.d"
  "topo_test"
  "topo_test.pdb"
  "topo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
