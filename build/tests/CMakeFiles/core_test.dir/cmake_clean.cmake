file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/controller_test.cpp.o"
  "CMakeFiles/core_test.dir/core/controller_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/converter_test.cpp.o"
  "CMakeFiles/core_test.dir/core/converter_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/expansion_test.cpp.o"
  "CMakeFiles/core_test.dir/core/expansion_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/flat_tree_test.cpp.o"
  "CMakeFiles/core_test.dir/core/flat_tree_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/generic_flat_tree_test.cpp.o"
  "CMakeFiles/core_test.dir/core/generic_flat_tree_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/modes_test.cpp.o"
  "CMakeFiles/core_test.dir/core/modes_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/pod_test.cpp.o"
  "CMakeFiles/core_test.dir/core/pod_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/profile_test.cpp.o"
  "CMakeFiles/core_test.dir/core/profile_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/recovery_test.cpp.o"
  "CMakeFiles/core_test.dir/core/recovery_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/side_diversity_test.cpp.o"
  "CMakeFiles/core_test.dir/core/side_diversity_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/wiring_test.cpp.o"
  "CMakeFiles/core_test.dir/core/wiring_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/zones_test.cpp.o"
  "CMakeFiles/core_test.dir/core/zones_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
