
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/controller_test.cpp" "tests/CMakeFiles/core_test.dir/core/controller_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/controller_test.cpp.o.d"
  "/root/repo/tests/core/converter_test.cpp" "tests/CMakeFiles/core_test.dir/core/converter_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/converter_test.cpp.o.d"
  "/root/repo/tests/core/expansion_test.cpp" "tests/CMakeFiles/core_test.dir/core/expansion_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/expansion_test.cpp.o.d"
  "/root/repo/tests/core/flat_tree_test.cpp" "tests/CMakeFiles/core_test.dir/core/flat_tree_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/flat_tree_test.cpp.o.d"
  "/root/repo/tests/core/generic_flat_tree_test.cpp" "tests/CMakeFiles/core_test.dir/core/generic_flat_tree_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/generic_flat_tree_test.cpp.o.d"
  "/root/repo/tests/core/modes_test.cpp" "tests/CMakeFiles/core_test.dir/core/modes_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/modes_test.cpp.o.d"
  "/root/repo/tests/core/pod_test.cpp" "tests/CMakeFiles/core_test.dir/core/pod_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/pod_test.cpp.o.d"
  "/root/repo/tests/core/profile_test.cpp" "tests/CMakeFiles/core_test.dir/core/profile_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/profile_test.cpp.o.d"
  "/root/repo/tests/core/recovery_test.cpp" "tests/CMakeFiles/core_test.dir/core/recovery_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/recovery_test.cpp.o.d"
  "/root/repo/tests/core/side_diversity_test.cpp" "tests/CMakeFiles/core_test.dir/core/side_diversity_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/side_diversity_test.cpp.o.d"
  "/root/repo/tests/core/wiring_test.cpp" "tests/CMakeFiles/core_test.dir/core/wiring_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/wiring_test.cpp.o.d"
  "/root/repo/tests/core/zones_test.cpp" "tests/CMakeFiles/core_test.dir/core/zones_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/zones_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ft_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_mcf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
