
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mcf/commodity_test.cpp" "tests/CMakeFiles/mcf_test.dir/mcf/commodity_test.cpp.o" "gcc" "tests/CMakeFiles/mcf_test.dir/mcf/commodity_test.cpp.o.d"
  "/root/repo/tests/mcf/cross_validation_test.cpp" "tests/CMakeFiles/mcf_test.dir/mcf/cross_validation_test.cpp.o" "gcc" "tests/CMakeFiles/mcf_test.dir/mcf/cross_validation_test.cpp.o.d"
  "/root/repo/tests/mcf/garg_koenemann_test.cpp" "tests/CMakeFiles/mcf_test.dir/mcf/garg_koenemann_test.cpp.o" "gcc" "tests/CMakeFiles/mcf_test.dir/mcf/garg_koenemann_test.cpp.o.d"
  "/root/repo/tests/mcf/lp_exact_test.cpp" "tests/CMakeFiles/mcf_test.dir/mcf/lp_exact_test.cpp.o" "gcc" "tests/CMakeFiles/mcf_test.dir/mcf/lp_exact_test.cpp.o.d"
  "/root/repo/tests/mcf/max_flow_test.cpp" "tests/CMakeFiles/mcf_test.dir/mcf/max_flow_test.cpp.o" "gcc" "tests/CMakeFiles/mcf_test.dir/mcf/max_flow_test.cpp.o.d"
  "/root/repo/tests/mcf/topology_validation_test.cpp" "tests/CMakeFiles/mcf_test.dir/mcf/topology_validation_test.cpp.o" "gcc" "tests/CMakeFiles/mcf_test.dir/mcf/topology_validation_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ft_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_mcf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
