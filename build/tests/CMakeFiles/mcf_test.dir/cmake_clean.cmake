file(REMOVE_RECURSE
  "CMakeFiles/mcf_test.dir/mcf/commodity_test.cpp.o"
  "CMakeFiles/mcf_test.dir/mcf/commodity_test.cpp.o.d"
  "CMakeFiles/mcf_test.dir/mcf/cross_validation_test.cpp.o"
  "CMakeFiles/mcf_test.dir/mcf/cross_validation_test.cpp.o.d"
  "CMakeFiles/mcf_test.dir/mcf/garg_koenemann_test.cpp.o"
  "CMakeFiles/mcf_test.dir/mcf/garg_koenemann_test.cpp.o.d"
  "CMakeFiles/mcf_test.dir/mcf/lp_exact_test.cpp.o"
  "CMakeFiles/mcf_test.dir/mcf/lp_exact_test.cpp.o.d"
  "CMakeFiles/mcf_test.dir/mcf/max_flow_test.cpp.o"
  "CMakeFiles/mcf_test.dir/mcf/max_flow_test.cpp.o.d"
  "CMakeFiles/mcf_test.dir/mcf/topology_validation_test.cpp.o"
  "CMakeFiles/mcf_test.dir/mcf/topology_validation_test.cpp.o.d"
  "mcf_test"
  "mcf_test.pdb"
  "mcf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
