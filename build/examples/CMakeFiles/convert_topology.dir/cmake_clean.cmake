file(REMOVE_RECURSE
  "CMakeFiles/convert_topology.dir/convert_topology.cpp.o"
  "CMakeFiles/convert_topology.dir/convert_topology.cpp.o.d"
  "convert_topology"
  "convert_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convert_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
