# Empty compiler generated dependencies file for convert_topology.
# This may be replaced when dependencies are built.
