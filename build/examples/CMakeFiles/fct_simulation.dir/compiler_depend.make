# Empty compiler generated dependencies file for fct_simulation.
# This may be replaced when dependencies are built.
