file(REMOVE_RECURSE
  "CMakeFiles/fct_simulation.dir/fct_simulation.cpp.o"
  "CMakeFiles/fct_simulation.dir/fct_simulation.cpp.o.d"
  "fct_simulation"
  "fct_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fct_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
