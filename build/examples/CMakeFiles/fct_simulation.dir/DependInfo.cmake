
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/fct_simulation.cpp" "examples/CMakeFiles/fct_simulation.dir/fct_simulation.cpp.o" "gcc" "examples/CMakeFiles/fct_simulation.dir/fct_simulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ft_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_mcf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ft_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
