file(REMOVE_RECURSE
  "CMakeFiles/export_topology.dir/export_topology.cpp.o"
  "CMakeFiles/export_topology.dir/export_topology.cpp.o.d"
  "export_topology"
  "export_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
