file(REMOVE_RECURSE
  "CMakeFiles/adaptive_controller.dir/adaptive_controller.cpp.o"
  "CMakeFiles/adaptive_controller.dir/adaptive_controller.cpp.o.d"
  "adaptive_controller"
  "adaptive_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
