# Empty compiler generated dependencies file for adaptive_controller.
# This may be replaced when dependencies are built.
