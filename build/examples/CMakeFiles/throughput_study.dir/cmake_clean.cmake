file(REMOVE_RECURSE
  "CMakeFiles/throughput_study.dir/throughput_study.cpp.o"
  "CMakeFiles/throughput_study.dir/throughput_study.cpp.o.d"
  "throughput_study"
  "throughput_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/throughput_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
