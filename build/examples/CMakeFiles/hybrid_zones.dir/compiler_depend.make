# Empty compiler generated dependencies file for hybrid_zones.
# This may be replaced when dependencies are built.
