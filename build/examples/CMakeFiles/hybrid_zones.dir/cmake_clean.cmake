file(REMOVE_RECURSE
  "CMakeFiles/hybrid_zones.dir/hybrid_zones.cpp.o"
  "CMakeFiles/hybrid_zones.dir/hybrid_zones.cpp.o.d"
  "hybrid_zones"
  "hybrid_zones.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_zones.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
