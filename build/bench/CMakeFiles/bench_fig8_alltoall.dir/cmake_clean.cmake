file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_alltoall.dir/bench_fig8_alltoall.cpp.o"
  "CMakeFiles/bench_fig8_alltoall.dir/bench_fig8_alltoall.cpp.o.d"
  "bench_fig8_alltoall"
  "bench_fig8_alltoall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_alltoall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
