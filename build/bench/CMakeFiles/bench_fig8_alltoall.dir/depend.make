# Empty dependencies file for bench_fig8_alltoall.
# This may be replaced when dependencies are built.
