file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_broadcast.dir/bench_fig7_broadcast.cpp.o"
  "CMakeFiles/bench_fig7_broadcast.dir/bench_fig7_broadcast.cpp.o.d"
  "bench_fig7_broadcast"
  "bench_fig7_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
