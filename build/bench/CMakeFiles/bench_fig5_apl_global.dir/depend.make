# Empty dependencies file for bench_fig5_apl_global.
# This may be replaced when dependencies are built.
