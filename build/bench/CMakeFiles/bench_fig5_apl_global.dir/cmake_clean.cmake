file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_apl_global.dir/bench_fig5_apl_global.cpp.o"
  "CMakeFiles/bench_fig5_apl_global.dir/bench_fig5_apl_global.cpp.o.d"
  "bench_fig5_apl_global"
  "bench_fig5_apl_global.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_apl_global.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
