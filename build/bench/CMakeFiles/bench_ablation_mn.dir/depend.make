# Empty dependencies file for bench_ablation_mn.
# This may be replaced when dependencies are built.
