# Empty compiler generated dependencies file for bench_ablation_wiring.
# This may be replaced when dependencies are built.
