file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_wiring.dir/bench_ablation_wiring.cpp.o"
  "CMakeFiles/bench_ablation_wiring.dir/bench_ablation_wiring.cpp.o.d"
  "bench_ablation_wiring"
  "bench_ablation_wiring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_wiring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
