# Empty compiler generated dependencies file for bench_packet.
# This may be replaced when dependencies are built.
