file(REMOVE_RECURSE
  "CMakeFiles/bench_packet.dir/bench_packet.cpp.o"
  "CMakeFiles/bench_packet.dir/bench_packet.cpp.o.d"
  "bench_packet"
  "bench_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
