# Empty dependencies file for bench_fig6_apl_pod.
# This may be replaced when dependencies are built.
