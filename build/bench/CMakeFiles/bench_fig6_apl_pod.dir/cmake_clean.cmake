file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_apl_pod.dir/bench_fig6_apl_pod.cpp.o"
  "CMakeFiles/bench_fig6_apl_pod.dir/bench_fig6_apl_pod.cpp.o.d"
  "bench_fig6_apl_pod"
  "bench_fig6_apl_pod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_apl_pod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
