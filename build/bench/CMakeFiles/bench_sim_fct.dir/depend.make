# Empty dependencies file for bench_sim_fct.
# This may be replaced when dependencies are built.
