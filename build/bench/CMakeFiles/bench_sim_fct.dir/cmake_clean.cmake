file(REMOVE_RECURSE
  "CMakeFiles/bench_sim_fct.dir/bench_sim_fct.cpp.o"
  "CMakeFiles/bench_sim_fct.dir/bench_sim_fct.cpp.o.d"
  "bench_sim_fct"
  "bench_sim_fct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sim_fct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
