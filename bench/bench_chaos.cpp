// Chaos bench (ISSUE 5 tentpole): availability timeline under a seeded
// fault/repair trace, fat-tree reroute-only vs flat-tree reconversion.
//
// One Scenario (src/fault) is generated from the physical Clos baseline —
// switch ids are shared by every conversion, so the identical trace
// stresses both tracks:
//
//   fat   static fat-tree; faults only remove links/switches (FaultedGraph
//         journals the edits so --incremental repairs BFS trees in place).
//   flat  ResilientController converting Clos -> --mode from t=0, advancing
//         --convert-rate micro-transactions per event, so faults land mid-
//         reconfiguration and exercise replan / rollback / recovery.
//
// Per report point both tracks print stranded servers, surviving-server
// APL (largest connected component of alive servers), and — every
// --mcf-every report — throughput lambda with unreachable commodities
// excised (mcf allow_unreachable) plus the served fraction of demand
// volume. Timelines are a pure function of the trace: bitwise identical
// across --threads, --incremental, and a --save-scenario/--load-scenario
// round trip. --selfcheck validates every instant (assignment validity,
// degraded topology battery, certify_served, fault-tally conservation).

#include <cstdio>
#include <fstream>
#include <memory>
#include <numeric>
#include <sstream>
#include <string>

#include "check/certify.hpp"
#include "common.hpp"
#include "fault/fault.hpp"
#include "inc/apl.hpp"
#include "inc/dynamic_bfs.hpp"
#include "topo/apl.hpp"

using namespace flattree;

namespace {

// Alive servers of the component holding the most alive servers (ties:
// smallest union-find root). APL is only defined within one component —
// server_apl_subset throws on disconnected pairs.
std::vector<topo::ServerId> largest_alive_component(const topo::Topology& t,
                                                    const std::vector<char>& stranded) {
  std::vector<graph::NodeId> parent(t.switch_count());
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](graph::NodeId v) {
    while (parent[v] != v) v = parent[v] = parent[parent[v]];
    return v;
  };
  const graph::Graph& g = t.graph();
  for (graph::LinkId l = 0; l < g.link_count(); ++l) {
    if (!g.link_live(l)) continue;
    graph::NodeId ra = find(g.link(l).a), rb = find(g.link(l).b);
    if (ra != rb) parent[ra < rb ? rb : ra] = ra < rb ? ra : rb;
  }
  std::vector<std::size_t> weight(t.switch_count(), 0);
  for (topo::ServerId s = 0; s < t.server_count(); ++s)
    if (!stranded[s]) ++weight[find(t.host(s))];
  graph::NodeId best = 0;
  for (graph::NodeId v = 1; v < t.switch_count(); ++v)
    if (weight[v] > weight[best]) best = v;
  std::vector<topo::ServerId> subset;
  for (topo::ServerId s = 0; s < t.server_count(); ++s)
    if (!stranded[s] && find(t.host(s)) == best) subset.push_back(s);
  return subset;
}

std::string event_label(const fault::FaultEvent& e) {
  std::ostringstream os;
  os << fault::to_string(e.kind) << ' ' << e.a;
  if (e.kind == fault::FaultKind::LinkDown || e.kind == fault::FaultKind::LinkUp)
    os << '-' << e.b;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t k = 8, seed = 1, cluster = 40, report_every = 5, mcf_every = 2;
  std::int64_t convert_rate = 2, flap_cycles = 4, max_replans = 3, backoff = 2;
  std::int64_t mcf_budget = 0;
  double duration = 30.0, eps = 0.12, flap_prob = 0.25;
  double switch_mtbf = 250.0, switch_mttr = 4.0, link_mtbf = 600.0, link_mttr = 3.0;
  double conv_mtbf = 500.0, conv_mttr = 6.0, pod_mtbf = 2000.0, pod_mttr = 5.0;
  std::string mode = "global", save_path, load_path;
  std::int64_t threads = 0;
  util::CliParser cli("Chaos: availability under a fault trace, reroute vs reconversion.");
  cli.add_int("k", &k, "fat-tree parameter");
  cli.add_double("duration", &duration, "simulated horizon (failures drawn before this)");
  cli.add_int("seed", &seed, "scenario + workload RNG seed");
  cli.add_string("mode", &mode, "flat-tree conversion target: global | local | clos");
  cli.add_int("convert-rate", &convert_rate, "micro-transactions advanced per event");
  cli.add_int("cluster", &cluster, "broadcast cluster size for throughput");
  cli.add_double("eps", &eps, "Garg-Koenemann epsilon");
  cli.add_int("report-every", &report_every, "events per timeline report row");
  cli.add_int("mcf-every", &mcf_every, "solve throughput every Nth report (0 = never)");
  cli.add_int("mcf-budget", &mcf_budget, "max GK augmentations per solve (0 = unlimited)");
  cli.add_double("switch-mtbf", &switch_mtbf, "per-switch mean time between failures");
  cli.add_double("switch-mttr", &switch_mttr, "per-switch mean time to repair");
  cli.add_double("link-mtbf", &link_mtbf, "per-link-pair mean time between failures");
  cli.add_double("link-mttr", &link_mttr, "per-link-pair mean time to repair");
  cli.add_double("conv-mtbf", &conv_mtbf, "per-converter stuck-at-config MTBF");
  cli.add_double("conv-mttr", &conv_mttr, "per-converter stuck-at-config MTTR");
  cli.add_double("pod-mtbf", &pod_mtbf, "per-pod power-domain MTBF (0 disables)");
  cli.add_double("pod-mttr", &pod_mttr, "per-pod power-domain MTTR");
  cli.add_double("flap-prob", &flap_prob, "probability a link outage flaps");
  cli.add_int("flap-cycles", &flap_cycles, "max down/up cycles in a flapping burst");
  cli.add_int("max-replans", &max_replans, "replans per conversion before rollback");
  cli.add_int("backoff", &backoff, "events to park an aborted conversion");
  cli.add_string("save-scenario", &save_path, "write the generated trace to this path");
  cli.add_string("load-scenario", &load_path, "replay a saved trace instead of generating");
  bool selfcheck = false, incremental = false;
  bench::add_threads_flag(cli, &threads);
  bench::add_selfcheck_flag(cli, &selfcheck);
  bench::add_incremental_flag(cli, &incremental);
  bench::ObsFlags obsf;
  bench::add_obs_flags(cli, &obsf);
  if (!cli.parse(argc, argv)) return cli.exit_code();
  bench::apply_threads(threads);
  bench::apply_selfcheck(selfcheck);
  bench::apply_incremental(incremental);
  bench::ObsScope obs_run(obsf, argc, argv);
  obs_run.set_int("threads", threads);
  obs_run.set_int("seed", seed);
  obs_run.set_double("eps", eps);
  obs_run.set_double("duration", duration);
  obs_run.set_int("incremental", incremental ? 1 : 0);
  obs_run.set_int("convert_rate", convert_rate);

  core::Mode target;
  if (mode == "global") {
    target = core::Mode::GlobalRandom;
  } else if (mode == "local") {
    target = core::Mode::LocalRandom;
  } else if (mode == "clos") {
    target = core::Mode::Clos;
  } else {
    std::fprintf(stderr, "bench_chaos: unknown --mode '%s'\n", mode.c_str());
    return 2;
  }

  const std::uint32_t ku = static_cast<std::uint32_t>(k);
  core::FlatTreeConfig cfg;
  cfg.k = ku;
  core::FlatTreeNetwork net = bench::profiled_network(ku);
  topo::Topology clos = net.materialize(net.assign_configs(core::Mode::Clos));
  bench::check_topology(clos, "clos baseline");

  // The trace: generated from the Clos physical baseline, or replayed.
  fault::Scenario scenario;
  if (!load_path.empty()) {
    std::ifstream in(load_path);
    if (!in) {
      std::fprintf(stderr, "bench_chaos: cannot open --load-scenario '%s'\n",
                   load_path.c_str());
      return 2;
    }
    scenario = fault::load_scenario(in);
  } else {
    fault::ScenarioParams sp;
    sp.duration = duration;
    sp.seed = static_cast<std::uint64_t>(seed);
    sp.switches = {switch_mtbf, switch_mttr};
    sp.link = {link_mtbf, link_mttr};
    sp.converter = {conv_mtbf, conv_mttr};
    sp.pod_power = {pod_mtbf, pod_mttr};
    sp.flap_probability = flap_prob;
    sp.flap_max_cycles = static_cast<std::uint32_t>(flap_cycles);
    scenario = fault::generate_scenario(clos, sp, net.converters().size(),
                                        net.params().pods());
  }
  if (!save_path.empty()) {
    std::ofstream out(save_path);
    if (!out) {
      std::fprintf(stderr, "bench_chaos: cannot open --save-scenario '%s'\n",
                   save_path.c_str());
      return 2;
    }
    fault::save_scenario(scenario, out);
  }
  obs_run.set_int("events", static_cast<std::int64_t>(scenario.events.size()));

  // Fixed workload, shared by both tracks (same draw as bench_failures).
  util::Rng wl(static_cast<std::uint64_t>(seed) * 7);
  auto clusters = workload::make_clusters(net.params().total_servers(),
                                          static_cast<std::uint32_t>(cluster),
                                          workload::Placement::NoLocality,
                                          net.params().servers_per_pod(), wl);
  auto demands = workload::cluster_traffic(clusters, workload::Pattern::Broadcast, wl);
  double total_demand = 0.0;
  for (const auto& d : demands) total_demand += d.demand;

  // Fat-tree track: static topology, journal-maintained degraded graph.
  fault::FaultState ft_state(net.params().total_switches(), net.converters().size());
  fault::FaultedGraph faulted(clos, ft_state);

  // Flat-tree track: resilient controller converting from t = 0.
  fault::ResilientOptions ropt;
  ropt.max_replans = static_cast<std::uint32_t>(max_replans);
  ropt.backoff_events = static_cast<std::uint32_t>(backoff);
  fault::ResilientController ctl(cfg, ropt);
  ctl.begin_conversion(target);

  // One BFS engine per track under --incremental; the fat engine follows
  // the FaultedGraph journal, the flat engine retargets across the
  // controller's evolving degraded topologies.
  std::unique_ptr<inc::DynamicApsp> apsp_fat, apsp_flat;
  auto apl_of = [&](std::unique_ptr<inc::DynamicApsp>& engine, const graph::Graph& g,
                    const topo::Topology& hosts,
                    const std::vector<topo::ServerId>& subset) {
    if (subset.size() < 2) return 0.0;
    if (!bench::incremental_enabled())
      return topo::server_apl_subset(hosts, subset).average;
    if (engine == nullptr) {
      inc::DynamicApspOptions aopt;
      aopt.churn_threshold = 0.75;  // pod outages touch many trees at once
      engine = std::make_unique<inc::DynamicApsp>(g, aopt);
    } else {
      engine->retarget(g);
    }
    return inc::server_apl_subset(*engine, hosts, subset).average;
  };

  // Throughput with unreachable commodities excised; served = fraction of
  // demand volume still deliverable (endpoints alive AND connected).
  auto mcf_point = [&](const topo::Topology& t, const std::vector<char>& stranded,
                       double* served) {
    std::vector<mcf::ServerDemand> alive;
    double alive_demand = 0.0;
    for (const auto& d : demands)
      if (!stranded[d.src] && !stranded[d.dst]) {
        alive.push_back(d);
        alive_demand += d.demand;
      }
    double alive_frac = total_demand > 0.0 ? alive_demand / total_demand : 1.0;
    auto commodities = mcf::aggregate_to_switches(t, alive);
    if (commodities.empty()) {
      *served = alive.empty() ? 0.0 : alive_frac;
      return 0.0;
    }
    mcf::McfOptions mo;
    mo.epsilon = eps;
    mo.allow_unreachable = true;
    mo.max_augmentations = static_cast<std::uint64_t>(mcf_budget);
    mo.compute_upper_bound = bench::selfcheck_enabled();
    auto r = mcf::max_concurrent_flow(t.graph(), commodities, mo);
    if (bench::selfcheck_enabled()) {
      check::CertifyOptions copt;
      copt.epsilon = eps;
      bench::selfcheck_record(check::certify_served(t.graph(), commodities, r, copt),
                              "mcf served");
    }
    *served = alive_frac * r.served_fraction;
    return r.lambda_lower;
  };

  util::Table table({"t", "event", "track", "down sw", "down links", "stranded", "apl",
                     "lambda", "served%"});
  auto report_track = [&](double t, const std::string& label, const char* track,
                          const fault::FaultState& st, const fault::DegradeResult& d,
                          std::unique_ptr<inc::DynamicApsp>& engine,
                          const graph::Graph& engine_graph, bool mcf_now) {
    std::vector<char> stranded(d.topo.server_count(), 0);
    for (topo::ServerId s : d.stranded) stranded[s] = 1;
    auto subset = largest_alive_component(d.topo, stranded);
    double apl = apl_of(engine, engine_graph, d.topo, subset);
    table.begin_row();
    table.num(t, 2);
    table.add(label);
    table.add(track);
    table.integer(static_cast<std::int64_t>(st.down_switch_count()));
    table.integer(static_cast<std::int64_t>(st.down_pair_count()));
    table.integer(static_cast<std::int64_t>(d.stranded.size()));
    table.num(apl, 4);
    if (mcf_now) {
      double served = 0.0;
      double lambda = mcf_point(d.topo, stranded, &served);
      table.num(lambda, 5);
      table.num(100.0 * served, 1);
    } else {
      table.add("-");
      table.add("-");
    }
  };

  // Degraded-battery options: dead switches stay as isolated nodes with
  // their servers declared stranded.
  auto check_degraded_topo = [&](const fault::DegradeResult& d, const char* what) {
    if (!bench::selfcheck_enabled()) return;
    check::TopologyCheckOptions opts;
    opts.allow_isolated_switches = true;
    opts.declared_stranded = d.stranded;
    bench::check_topology(d.topo, what, opts);
  };

  std::uint64_t ctl_steps = 0, ctl_replans = 0, ctl_rollbacks = 0, ctl_deferrals = 0;
  std::size_t report_idx = 0;
  for (std::size_t i = 0; i < scenario.events.size(); ++i) {
    const fault::FaultEvent& e = scenario.events[i];
    if (ft_state.apply(e)) faulted.on_event(ft_state, e);
    fault::EventOutcome out = ctl.on_event(e);
    ctl_steps += out.steps_applied;
    ctl_replans += out.replans;
    ctl_rollbacks += out.rolled_back ? 1 : 0;
    ctl_deferrals += out.deferred ? 1 : 0;
    if (convert_rate > 0) ctl_steps += ctl.advance(static_cast<std::size_t>(convert_rate));
    // The tentpole acceptance bar: full validity after *every* event,
    // including the ones that land mid-reconfiguration.
    if (bench::selfcheck_enabled())
      bench::selfcheck_record(ctl.self_check(), "resilient");
    if (i + 1 != scenario.events.size() &&
        (i + 1) % static_cast<std::size_t>(report_every) != 0)
      continue;

    bool mcf_now = mcf_every > 0 && report_idx % static_cast<std::size_t>(mcf_every) == 0;
    ++report_idx;
    std::string label = event_label(e);

    fault::DegradeResult d_fat = fault::degrade(clos, ft_state);
    check_degraded_topo(d_fat, "fat degraded");
    if (bench::selfcheck_enabled()) {
      // The journal-maintained graph must agree with the cold rebuild.
      check::Report r;
      r.note_check();
      if (faulted.graph().live_link_count() != d_fat.topo.graph().link_count())
        r.add("fault.journal.links", "FaultedGraph live links != cold degrade");
      r.note_check();
      if (faulted.stranded(ft_state) != d_fat.stranded)
        r.add("fault.journal.stranded", "FaultedGraph stranded != cold degrade");
      bench::selfcheck_record(r, "fat journal");
    }
    report_track(e.time, label, "fat", ft_state, d_fat, apsp_fat, faulted.graph(),
                 mcf_now);

    fault::DegradeResult d_flat = ctl.degraded();
    check_degraded_topo(d_flat, "flat degraded");
    report_track(e.time, label, "flat", ctl.fault_state(), d_flat, apsp_flat,
                 d_flat.topo.graph(), mcf_now);
  }

  // Drain any still-parked conversion work, then verify conservation: every
  // generated failure carries its repair, so both plants end all-up.
  ctl.run_to_completion();
  if (bench::selfcheck_enabled()) {
    bench::selfcheck_record(fault::check_conserved(ft_state), "fat conserved");
    bench::selfcheck_record(fault::check_conserved(ctl.fault_state()), "flat conserved");
    bench::selfcheck_record(ctl.self_check(), "resilient final");
  }
  table.print("Chaos: availability timeline, fat-tree reroute vs flat-tree reconversion");

  util::Table summary({"track", "final stranded", "steps", "replans", "rollbacks",
                       "deferred", "links cut", "links healed"});
  summary.begin_row();
  summary.add("fat");
  summary.integer(static_cast<std::int64_t>(fault::degrade(clos, ft_state).stranded.size()));
  summary.add("-");
  summary.add("-");
  summary.add("-");
  summary.add("-");
  summary.integer(static_cast<std::int64_t>(faulted.links_removed()));
  summary.integer(static_cast<std::int64_t>(faulted.links_restored()));
  summary.begin_row();
  summary.add("flat");
  summary.integer(static_cast<std::int64_t>(ctl.stranded_servers().size()));
  summary.integer(static_cast<std::int64_t>(ctl_steps));
  summary.integer(static_cast<std::int64_t>(ctl_replans));
  summary.integer(static_cast<std::int64_t>(ctl_rollbacks));
  summary.integer(static_cast<std::int64_t>(ctl_deferrals));
  summary.add("-");
  summary.add("-");
  summary.print("Chaos summary");
  std::puts("Identical traces; the flat-tree track additionally absorbs faults that\n"
            "land mid-reconfiguration (bounded replans, pair-atomic rollback).");
  return bench::selfcheck_exit();
}
