// Extension: congestion behavior of the converted fabrics under WCMP +
// flowlet load balancing, drop-tail vs DCTCP (src/te, DESIGN.md §11).
//
// Three workloads stress different parts of the fabric at equal equipment
// cost: incast (N sources hammer one sink's edge link), a fabric-wide
// synchronized permutation burst, and all-to-all inside a random server
// subset. Each runs on four topologies — fat-tree, flat-tree converted
// globally and per-pod, and a Jellyfish-style random graph from the same
// switch inventory — twice: the drop-tail baseline and the DCTCP/ECN loop.
// The two schemes share the compiled WCMP FIB, flowlet table settings, and
// flow list, so rows differ only where the congestion control differs.
//
// Every simulation is single-threaded discrete-event time; --threads only
// fans independent cases over the pool, and rows are assembled into a
// fixed-order table, so stdout is byte-identical at any thread count.
//
// --summary-json=PATH writes the machine-readable summary (BENCH_te.json
// in CI, schema flattree.bench_te.v1).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "obs/json.hpp"
#include "routing/ecmp.hpp"
#include "sim/packet_sim.hpp"
#include "te/te.hpp"
#include "topo/fat_tree.hpp"
#include "topo/random_graph.hpp"

using namespace flattree;

namespace {

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

struct Topo {
  const char* name;
  const topo::Topology* topo;
  te::WeightedFib fib;
};

struct Load {
  const char* name;
  std::vector<sim::PacketFlow> flows;
};

struct Case {
  const char* topo;
  const char* workload;
  const char* scheme;
  sim::PacketStats stats;
};

std::vector<sim::PacketFlow> to_flows(const std::vector<mcf::ServerDemand>& demands,
                                      std::uint32_t train) {
  std::vector<sim::PacketFlow> flows;
  flows.reserve(demands.size());
  for (const auto& d : demands) flows.push_back({d.src, d.dst, train, 0.0});
  return flows;
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t k = 8, train = 32, seed = 1, queue = 16, sources = 24, a2a = 12;
  std::int64_t ecn_threshold = 8;
  double nic_rate = 4.0, prop_delay = 0.01, flowlet_gap = 0.5;
  std::int64_t threads = 0;
  std::string summary_json;
  util::CliParser cli(
      "Extension: WCMP + flowlet congestion study, drop-tail vs DCTCP.");
  cli.add_int("k", &k, "fat-tree parameter");
  cli.add_int("train", &train, "packets per flow");
  cli.add_int("sources", &sources, "incast fan-in (senders to one sink)");
  cli.add_int("a2a", &a2a, "server subset size for the all-to-all workload");
  cli.add_int("queue-packets", &queue, "output queue capacity in packets (0 = infinite)");
  cli.add_double("nic-rate", &nic_rate, "injection rate vs unit link capacity");
  cli.add_double("prop-delay", &prop_delay, "per-hop propagation delay");
  cli.add_double("flowlet-gap", &flowlet_gap, "flowlet idle gap (<= 0 disables)");
  cli.add_int("ecn-threshold", &ecn_threshold, "ECN marking threshold K in packets");
  cli.add_int("seed", &seed, "RNG seed for workloads and random topologies");
  cli.add_string("summary-json", &summary_json,
                 "write the machine-readable summary to this path");
  bool selfcheck = false;
  bench::add_threads_flag(cli, &threads);
  bench::add_selfcheck_flag(cli, &selfcheck);
  bench::ObsFlags obsf;
  bench::add_obs_flags(cli, &obsf);
  if (!cli.parse(argc, argv)) return cli.exit_code();
  bench::apply_threads(threads);
  bench::apply_selfcheck(selfcheck);
  bench::ObsScope obs_run(obsf, argc, argv);
  obs_run.set_int("threads", threads);
  obs_run.set_int("seed", seed);

  const std::uint32_t ku = static_cast<std::uint32_t>(k);
  topo::FatTree ft = topo::build_fat_tree(ku);
  core::FlatTreeNetwork net = bench::profiled_network(ku);
  topo::Topology grg = net.build(core::Mode::GlobalRandom);
  topo::Topology prg = net.build(core::Mode::LocalRandom);
  util::Rng jelly_rng = util::Rng::substream(static_cast<std::uint64_t>(seed), 7);
  topo::Topology jelly = topo::build_jellyfish_like_fat_tree(ku, jelly_rng);
  bench::check_topology(ft.topo, "fat-tree");
  bench::check_topology(grg, "flat-tree(global)");
  bench::check_topology(prg, "flat-tree(pod)");
  bench::check_parity(ft.topo, grg, "fat-tree vs flat-tree(global)");
  bench::check_parity(ft.topo, prg, "fat-tree vs flat-tree(pod)");

  // One WCMP FIB per topology from ECMP path multiplicities; the model
  // checker runs over every server pair under --selfcheck.
  auto compile = [&](const char* name, const topo::Topology& t) {
    routing::EcmpRouting ecmp(t.graph());
    auto pairs = routing::all_server_pairs(t);
    te::WeightedFib fib = te::compile_wcmp_paths(t, ecmp, pairs);
    if (bench::selfcheck_enabled())
      bench::selfcheck_record(check::validate_weighted_fib(t, fib, pairs), name);
    return fib;
  };
  std::vector<Topo> topos;
  topos.push_back({"fat-tree (clos)", &ft.topo, compile("wcmp/fat-tree", ft.topo)});
  topos.push_back({"flat-tree (global RG)", &grg, compile("wcmp/global", grg)});
  topos.push_back({"flat-tree (pod RG)", &prg, compile("wcmp/pod", prg)});
  topos.push_back({"jellyfish", &jelly, compile("wcmp/jellyfish", jelly)});

  // Shared workloads (server ids are equipment-parity comparable across
  // the four builds). All derive from substreams of --seed.
  const std::uint32_t total = net.params().total_servers();
  const std::uint64_t seed_u = static_cast<std::uint64_t>(seed);
  // Defaults are sized for k=8; smaller fabrics clamp the fan-in/subset so
  // every k the topology builders accept still runs.
  const std::uint32_t fan_in =
      std::min<std::uint32_t>(static_cast<std::uint32_t>(sources), total - 1);
  const std::size_t subset =
      std::min<std::size_t>(static_cast<std::size_t>(a2a), total);
  std::vector<Load> loads;
  loads.push_back({"incast", to_flows(workload::incast_pattern(total, fan_in, seed_u),
                                      static_cast<std::uint32_t>(train))});
  {
    util::Rng perm_rng = util::Rng::substream(seed_u, 3);
    loads.push_back({"permutation", to_flows(workload::permutation_traffic(total, perm_rng),
                                             static_cast<std::uint32_t>(train))});
  }
  {
    util::Rng pick = util::Rng::substream(seed_u, 4);
    std::vector<topo::ServerId> servers(total);
    for (std::uint32_t s = 0; s < total; ++s) servers[s] = s;
    pick.shuffle(servers);
    std::vector<sim::PacketFlow> flows;
    for (std::size_t i = 0; i < subset; ++i)
      for (std::size_t j = 0; j < subset; ++j)
        if (i != j)
          flows.push_back({servers[i], servers[j], static_cast<std::uint32_t>(train), 0.0});
    loads.push_back({"all-to-all", std::move(flows)});
  }

  sim::PacketSimConfig base;
  base.queue_packets = static_cast<std::size_t>(queue);
  base.nic_rate = nic_rate;
  base.propagation_delay = prop_delay;
  base.flowlet_gap = flowlet_gap;
  base.ecn_threshold = static_cast<std::size_t>(ecn_threshold);

  // Fan the independent simulations over the pool; each case is a
  // single-threaded DES, so row values cannot depend on the fan-out.
  std::vector<Case> cases;
  for (const Topo& t : topos)
    for (const Load& load : loads)
      for (const char* scheme : {"drop-tail", "dctcp"})
        cases.push_back({t.name, load.name, scheme, {}});
  exec::parallel_for(cases.size(), [&](std::size_t i) {
    const std::size_t per_topo = loads.size() * 2;
    const Topo& t = topos[i / per_topo];
    const Load& load = loads[(i % per_topo) / 2];
    sim::PacketSimConfig cfg = base;
    cfg.ecn = (i % 2) == 1;
    sim::PacketSimulator simulator(*t.topo, t.fib, cfg);
    cases[i].stats = simulator.run(load.flows);
  });

  util::Table table({"topology", "workload", "scheme", "packets", "loss %", "mark %",
                     "fct p50", "fct p99", "mean queue", "max queue", "finish"});
  for (const Case& c : cases) {
    table.begin_row();
    table.add(c.topo);
    table.add(c.workload);
    table.add(c.scheme);
    table.integer(static_cast<std::int64_t>(c.stats.injected));
    table.num(100.0 * c.stats.loss_rate(), 2);
    table.num(100.0 * c.stats.mark_rate(), 2);
    table.num(c.stats.fct_p50, 3);
    table.num(c.stats.fct_p99, 3);
    table.num(c.stats.mean_queue, 3);
    table.num(c.stats.max_queue, 0);
    table.num(c.stats.finish_time, 2);
  }
  table.print("Extension: congestion control on converted fabrics (WCMP + flowlet)");
  std::puts("Expected: DCTCP holds queues near the marking threshold (lower mean queue\n"
            "and loss than drop-tail at the same load); random-graph conversions spread\n"
            "the permutation/all-to-all load while incast stays sink-limited everywhere.");

  if (!summary_json.empty()) {
    obs::JsonWriter w;
    w.begin_object();
    w.key("schema");
    w.string_value("flattree.bench_te.v1");
    w.key("k");
    w.int_value(k);
    w.key("seed");
    w.int_value(seed);
    w.key("train");
    w.int_value(train);
    w.key("queue_packets");
    w.int_value(queue);
    w.key("ecn_threshold");
    w.int_value(ecn_threshold);
    w.key("flowlet_gap");
    w.double_value(flowlet_gap);
    w.key("cases");
    w.begin_array();
    for (const Case& c : cases) {
      w.begin_object();
      w.key("topology");
      w.string_value(c.topo);
      w.key("workload");
      w.string_value(c.workload);
      w.key("scheme");
      w.string_value(c.scheme);
      w.key("injected");
      w.uint_value(c.stats.injected);
      w.key("delivered");
      w.uint_value(c.stats.delivered);
      w.key("dropped");
      w.uint_value(c.stats.dropped);
      w.key("ecn_marked");
      w.uint_value(c.stats.ecn_marked);
      w.key("window_cuts");
      w.uint_value(c.stats.window_cuts);
      w.key("flowlet_switches");
      w.uint_value(c.stats.flowlet_switches);
      w.key("fct_p50");
      w.double_value(c.stats.fct_p50);
      w.key("fct_p99");
      w.double_value(c.stats.fct_p99);
      w.key("mean_queue");
      w.double_value(c.stats.mean_queue);
      w.key("max_queue");
      w.double_value(c.stats.max_queue);
      w.key("finish_time");
      w.double_value(c.stats.finish_time);
      w.end_object();
    }
    w.end_array();
    char digest[32];
    std::snprintf(digest, sizeof digest, "%016llx",
                  static_cast<unsigned long long>(fnv1a(table.to_csv())));
    w.key("digest");
    w.string_value(digest);
    w.end_object();
    std::ofstream f(summary_json);
    if (!f) {
      std::fprintf(stderr, "bench_congestion: cannot open --summary-json '%s'\n",
                   summary_json.c_str());
      return 2;
    }
    f << w.str() << '\n';
  }
  return bench::selfcheck_exit();
}
