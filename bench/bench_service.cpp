// Service bench (ISSUE 6 tentpole): drives svc::Service in-process with a
// deterministic scripted session and reports request latencies against the
// SLO deadline budgets.
//
// The script is a pure function of --seed: build (fat-tree --k), install a
// generated traffic snapshot, then interleave deadline-tagged queries and
// what-ifs with fault batches drawn from fault::generate_scenario, a
// staged conversion driven in --convert-rate steps, and a final stats
// probe. Two result classes are printed separately:
//
//   * deterministic: per-op accepted/rejected counts, solver truncation
//     and certification tallies, and an FNV-1a digest of the full response
//     stream. These are byte-identical at any --threads count, with
//     --incremental on or off, and with observability on or off — the
//     service's core promise, which the svc test suite pins down.
//   * timing (marked as such): latency p50/p99/max and the SLO hit rate —
//     the fraction of deadline-tagged requests whose measured wall time
//     fit their deadline. Wall-clock numbers are machine-dependent by
//     nature and never feed the digest.
//
// The run also journals (v2 CRC framing) and snapshots (every 5 committed
// groups — an odd cadence, because the script's read batches commit at
// mutating boundaries, which are unsafe snapshot points and skipped),
// then times a full crash recovery of a second Service from the
// latest snapshot + journal; the recovery section reports deterministic
// size/group/fast-forward counts and a recovery_match bit (the recovered
// state re-encodes to the live state's snapshot byte-for-byte), plus a
// machine-dependent recover_ms row. docs/durability.md has the formats.
//
// --slo-json=PATH writes the summary (BENCH_svc.json in CI).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "fault/fault.hpp"
#include "svc/svc.hpp"

using namespace flattree;

namespace {

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::size_t idx = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

std::string event_json(const fault::FaultEvent& e) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("t");
  w.double_value(e.time);
  w.key("kind");
  w.string_value(fault::to_string(e.kind));
  w.key("a");
  w.uint_value(e.a);
  if (e.kind == fault::FaultKind::LinkDown || e.kind == fault::FaultKind::LinkUp) {
    w.key("b");
    w.uint_value(e.b);
  }
  w.end_object();
  return w.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t k = 8, seed = 1, cluster = 40, rounds = 6, events_per_round = 4;
  std::int64_t convert_rate = 8, batch = 8, threads = 0;
  double eps = 0.12, duration = 30.0, augs_per_ms = 4000.0;
  std::string slo_json, script_out;
  bool incremental = false, selfcheck = false;

  util::CliParser cli("Service: scripted flattree-svc sessions, latency vs SLO budgets.");
  cli.add_int("k", &k, "fat-tree parameter of the scripted session");
  cli.add_int("seed", &seed, "script + scenario + workload RNG seed");
  cli.add_int("cluster", &cluster, "broadcast cluster size for the traffic snapshot");
  cli.add_int("rounds", &rounds, "fault/query rounds in the script");
  cli.add_int("events-per-round", &events_per_round, "scenario events injected per round");
  cli.add_int("convert-rate", &convert_rate, "micro-transactions advanced per round");
  cli.add_int("batch", &batch, "service read-only batch cap");
  cli.add_double("eps", &eps, "Garg-Koenemann epsilon");
  cli.add_double("duration", &duration, "simulated horizon for the fault scenario");
  cli.add_double("augs-per-ms", &augs_per_ms, "SLO cost model (augmentations per ms)");
  cli.add_string("slo-json", &slo_json, "write the SLO/latency summary to this path");
  cli.add_string("script-out", &script_out, "also write the generated script here");
  std::int64_t threads_flag = 0;
  bench::add_threads_flag(cli, &threads_flag);
  bool selfcheck_flag = false, incremental_flag = false;
  bench::add_selfcheck_flag(cli, &selfcheck_flag);
  bench::add_incremental_flag(cli, &incremental_flag);
  bench::ObsFlags obsf;
  bench::add_obs_flags(cli, &obsf);
  if (!cli.parse(argc, argv)) return cli.exit_code();
  threads = threads_flag;
  selfcheck = selfcheck_flag;
  incremental = incremental_flag;
  bench::apply_threads(threads);
  bench::apply_incremental(incremental);
  bench::ObsScope obs_run(obsf, argc, argv);
  obs_run.set_int("threads", threads);
  obs_run.set_int("seed", seed);
  obs_run.set_double("eps", eps);
  obs_run.set_int("incremental", incremental ? 1 : 0);

  // -- generate the script (pure function of the flags) ----------------------
  const std::uint32_t ku = static_cast<std::uint32_t>(k);
  core::FlatTreeNetwork net = bench::profiled_network(ku);
  topo::Topology clos = net.materialize(net.assign_configs(core::Mode::Clos));
  fault::ScenarioParams sp;
  sp.duration = duration;
  sp.seed = static_cast<std::uint64_t>(seed);
  sp.switches = {250.0, 4.0};
  sp.link = {600.0, 3.0};
  sp.converter = {500.0, 6.0};
  fault::Scenario scenario =
      fault::generate_scenario(clos, sp, net.converters().size(), net.params().pods());

  // Deadline ladder cycled across queries: one tight tier that forces
  // budget truncation, two realistic tiers, and unlimited.
  const double deadlines[] = {0.05, 50.0, 250.0, 0.0};

  std::ostringstream script;
  script << "{\"op\":\"hello\"}\n";
  script << "{\"op\":\"build\",\"k\":" << k << "}\n";
  script << "{\"op\":\"traffic\",\"cluster\":" << cluster
         << ",\"pattern\":\"broadcast\",\"placement\":\"none\",\"seed\":" << seed
         << "}\n";
  script << "{\"op\":\"convert\",\"target\":\"global\",\"advance\":0}\n";

  std::size_t cursor = 0;
  int deadline_i = 0;
  for (std::int64_t r = 0; r < rounds; ++r) {
    std::size_t take = std::min(static_cast<std::size_t>(events_per_round),
                                scenario.events.size() - cursor);
    if (take > 0) {
      script << "{\"op\":\"fault\",\"events\":[";
      for (std::size_t i = 0; i < take; ++i) {
        if (i > 0) script << ',';
        script << event_json(scenario.events[cursor + i]);
      }
      script << "],\"advance\":" << convert_rate << "}\n";
      cursor += take;
    } else {
      script << "{\"op\":\"convert\",\"advance\":" << convert_rate << "}\n";
    }
    // A read-only burst per round: queries on the live state plus a
    // hypothetical — these batch through the exec pool.
    for (int q = 0; q < 3; ++q) {
      double dl = deadlines[deadline_i++ % 4];
      script << "{\"op\":\"query\"";
      if (dl > 0.0) script << ",\"deadline_ms\":" << obs::json_number(dl);
      script << "}\n";
    }
    double wdl = deadlines[deadline_i++ % 4];
    if (wdl == 0.0) wdl = 1.0;
    script << "{\"op\":\"what_if\",\"target\":\"" << (r % 2 == 0 ? "local" : "clos")
           << "\",\"deadline_ms\":" << obs::json_number(wdl) << "}\n";
  }
  // Drain whatever conversion work is still pending, then convert home.
  script << "{\"op\":\"convert\",\"advance\":1000000}\n";
  script << "{\"op\":\"convert\",\"target\":\"clos\"}\n";
  script << "{\"op\":\"stats\"}\n";
  std::string script_text = script.str();
  if (!script_out.empty()) {
    std::ofstream f(script_out);
    if (!f) {
      std::fprintf(stderr, "bench_service: cannot open --script-out '%s'\n",
                   script_out.c_str());
      return 2;
    }
    f << script_text;
  }

  // -- run the service in-process --------------------------------------------
  struct Sample {
    svc::Op op;
    double deadline_ms;
    double wall_ms;
    bool ok;
  };
  std::vector<Sample> samples;

  svc::ServiceOptions opt;
  opt.max_batch = batch > 0 ? static_cast<std::size_t>(batch) : 1;
  opt.epsilon = eps;
  opt.incremental = incremental;
  opt.selfcheck = selfcheck;
  opt.slo.augmentations_per_ms = augs_per_ms;
  opt.latency_hook = [&](const svc::Request& req, bool ok, double wall_ms) {
    samples.push_back({req.op, req.deadline_ms, wall_ms, ok});
  };
  std::ostringstream journal;
  std::string latest_snapshot;
  opt.journal = &journal;
  opt.snapshot_every = 5;
  opt.snapshot_sink = [&](const std::string& bytes) { latest_snapshot = bytes; };

  svc::Service service(opt);
  std::istringstream in(script_text);
  std::ostringstream out;
  service.run(in, out);
  const std::string responses = out.str();
  const svc::ServiceStats& stats = service.stats();

  // -- deterministic section --------------------------------------------------
  util::Table table({"metric", "value"});
  auto row = [&](const char* name, const std::string& value) {
    table.begin_row();
    table.add(name);
    table.add(value);
  };
  row("requests", std::to_string(stats.lines));
  row("accepted", std::to_string(stats.accepted));
  row("rejected", std::to_string(stats.rejected));
  row("solves", std::to_string(stats.solves));
  row("truncated", std::to_string(stats.truncated_solves));
  row("certified", std::to_string(stats.certified_solves));
  row("batches", std::to_string(stats.batches));
  row("max_batch", std::to_string(stats.max_batch));
  char digest[32];
  std::snprintf(digest, sizeof digest, "%016llx",
                static_cast<unsigned long long>(fnv1a(responses)));
  row("digest", digest);
  table.print("service session (deterministic)");

  // -- crash recovery: rebuild a second service from snapshot + journal ------
  const std::string journal_bytes = journal.str();
  svc::durable::JournalContents contents;
  svc::durable::JournalError jerr;
  if (!svc::durable::read_journal(journal_bytes, contents, jerr)) {
    std::fprintf(stderr, "bench_service: journal failed validation: %s\n",
                 jerr.code.c_str());
    return 1;
  }
  std::uint64_t journal_records = 0;
  for (const svc::durable::JournalGroup& g : contents.groups)
    for (const svc::durable::JournalEntry& e : g.entries)
      if (e.is_record) ++journal_records;
  svc::durable::ServiceSnapshot snap;
  bool have_snapshot = false;
  if (!latest_snapshot.empty()) {
    svc::durable::SnapshotError serr;
    if (!svc::durable::decode_snapshot(latest_snapshot, snap, serr)) {
      std::fprintf(stderr, "bench_service: snapshot failed validation: %s\n",
                   serr.code.c_str());
      return 1;
    }
    have_snapshot = true;
  }

  svc::ServiceOptions ropt;
  ropt.max_batch = opt.max_batch;
  ropt.epsilon = eps;
  ropt.incremental = incremental;
  ropt.slo.augmentations_per_ms = augs_per_ms;
  svc::Service recovered(ropt);
  svc::RecoverStats rstats;
  std::string rerror;
  const auto r0 = std::chrono::steady_clock::now();
  if (!recovered.recover(have_snapshot ? &snap : nullptr, contents, rstats,
                         rerror)) {
    std::fprintf(stderr, "bench_service: recovery failed: %s\n", rerror.c_str());
    return 1;
  }
  const double recover_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                r0)
          .count();
  const bool recovery_match =
      svc::durable::encode_snapshot(recovered.snapshot_state()) ==
      svc::durable::encode_snapshot(service.snapshot_state());

  util::Table rtable({"metric", "value"});
  auto rrow = [&](const char* name, const std::string& value) {
    rtable.begin_row();
    rtable.add(name);
    rtable.add(value);
  };
  rrow("journal_bytes", std::to_string(journal_bytes.size()));
  rrow("journal_records", std::to_string(journal_records));
  rrow("journal_groups", std::to_string(contents.groups.size()));
  rrow("snapshot_bytes", std::to_string(latest_snapshot.size()));
  rrow("recover_fast", std::to_string(rstats.groups_fast));
  rrow("recover_reexec", std::to_string(rstats.groups_reexec));
  rrow("recovery_match", recovery_match ? "1" : "0");
  rtable.print("crash recovery (deterministic)");
  if (!recovery_match) {
    std::fprintf(stderr, "bench_service: recovered state diverged from live state\n");
    return 1;
  }

  // -- timing section (machine-dependent; never part of the digest) ----------
  std::vector<double> lat;
  std::size_t deadlined = 0, met = 0;
  for (const Sample& s : samples) {
    lat.push_back(s.wall_ms);
    if (s.ok && s.deadline_ms > 0.0) {
      ++deadlined;
      if (s.wall_ms <= s.deadline_ms) ++met;
    }
  }
  std::sort(lat.begin(), lat.end());
  double p50 = percentile(lat, 0.50), p99 = percentile(lat, 0.99);
  double pmax = lat.empty() ? 0.0 : lat.back();
  double hit = deadlined > 0 ? static_cast<double>(met) / static_cast<double>(deadlined)
                             : 1.0;
  std::printf("\ntiming (wall-clock, machine-dependent):\n");
  std::printf("  latency_ms  p50 %.4f  p99 %.4f  max %.4f\n", p50, p99, pmax);
  std::printf("  slo         deadlined %zu  met %zu  hit_rate %.3f\n", deadlined, met,
              hit);
  std::printf("  recover_ms  %.4f\n", recover_ms);

  if (!slo_json.empty()) {
    obs::JsonWriter w;
    w.begin_object();
    w.key("schema");
    w.string_value("flattree.bench_svc.v1");
    w.key("k");
    w.int_value(k);
    w.key("seed");
    w.int_value(seed);
    w.key("requests");
    w.uint_value(stats.lines);
    w.key("accepted");
    w.uint_value(stats.accepted);
    w.key("rejected");
    w.uint_value(stats.rejected);
    w.key("solves");
    w.uint_value(stats.solves);
    w.key("truncated_solves");
    w.uint_value(stats.truncated_solves);
    w.key("certified_solves");
    w.uint_value(stats.certified_solves);
    w.key("digest");
    w.string_value(digest);
    w.key("slo");
    w.begin_object();
    w.key("deadlined");
    w.uint_value(deadlined);
    w.key("met");
    w.uint_value(met);
    w.key("hit_rate");
    w.double_value(hit);
    w.end_object();
    w.key("latency_ms");
    w.begin_object();
    w.key("p50");
    w.double_value(p50);
    w.key("p99");
    w.double_value(p99);
    w.key("max");
    w.double_value(pmax);
    w.end_object();
    w.key("recovery");
    w.begin_object();
    w.key("journal_bytes");
    w.uint_value(journal_bytes.size());
    w.key("journal_records");
    w.uint_value(journal_records);
    w.key("journal_groups");
    w.uint_value(contents.groups.size());
    w.key("snapshot_bytes");
    w.uint_value(latest_snapshot.size());
    w.key("recover_fast");
    w.uint_value(rstats.groups_fast);
    w.key("recover_reexec");
    w.uint_value(rstats.groups_reexec);
    w.key("match");
    w.bool_value(recovery_match);
    w.key("recover_ms");
    w.double_value(recover_ms);
    w.end_object();
    w.end_object();
    std::ofstream f(slo_json);
    if (!f) {
      std::fprintf(stderr, "bench_service: cannot open --slo-json '%s'\n",
                   slo_json.c_str());
      return 2;
    }
    f << w.str() << '\n';
  }

  if (selfcheck && service.selfcheck_violations() > 0) {
    std::fprintf(stderr, "bench_service selfcheck: FAILED (%zu violation(s))\n",
                 service.selfcheck_violations());
    return 1;
  }
  return 0;
}
