// Extension (paper Section 5): self-recovery of the topology from
// failures via convertibility.
//
// Sweeps the number of failed core switches in global-random mode and
// reports, per failure level: stranded servers without recovery, stranded
// servers after converter-based recovery, and the broadcast throughput of
// the degraded network before/after recovery. A static topology can only
// reroute; flat-tree additionally re-homes servers by flipping converters.

#include <cstdio>
#include <memory>

#include "common.hpp"
#include "core/recovery.hpp"
#include "inc/apl.hpp"
#include "inc/dynamic_bfs.hpp"
#include "topo/apl.hpp"

using namespace flattree;

int main(int argc, char** argv) {
  std::int64_t k = 8, max_failures = 8, seeds = 2, seed = 1, cluster = 40;
  double eps = 0.12;
  std::int64_t threads = 0;
  util::CliParser cli("Extension: failure recovery by reconversion.");
  cli.add_int("k", &k, "fat-tree parameter");
  cli.add_int("max-failures", &max_failures, "largest number of failed core switches");
  cli.add_int("cluster", &cluster, "broadcast cluster size for throughput");
  cli.add_int("seeds", &seeds, "failure draws to average");
  cli.add_int("seed", &seed, "base RNG seed");
  cli.add_double("eps", &eps, "Garg-Koenemann epsilon");
  bool selfcheck = false, incremental = false;
  bench::add_threads_flag(cli, &threads);
  bench::add_selfcheck_flag(cli, &selfcheck);
  bench::add_incremental_flag(cli, &incremental);
  bench::ObsFlags obsf;
  bench::add_obs_flags(cli, &obsf);
  if (!cli.parse(argc, argv)) return cli.exit_code();
  bench::apply_threads(threads);
  bench::apply_selfcheck(selfcheck);
  bench::apply_incremental(incremental);
  bench::ObsScope obs_run(obsf, argc, argv);
  obs_run.set_int("threads", threads);
  obs_run.set_int("seed", seed);
  obs_run.set_double("eps", eps);
  obs_run.set_int("incremental", incremental ? 1 : 0);

  const std::uint32_t ku = static_cast<std::uint32_t>(k);
  core::FlatTreeNetwork net = bench::profiled_network(ku);
  auto configs = net.assign_configs(core::Mode::GlobalRandom);
  const std::uint32_t cores = net.params().cores();

  // Fixed workload; demands only between surviving servers are kept.
  util::Rng wl(static_cast<std::uint64_t>(seed) * 7);
  auto clusters = workload::make_clusters(net.params().total_servers(),
                                          static_cast<std::uint32_t>(cluster),
                                          workload::Placement::NoLocality,
                                          net.params().servers_per_pod(), wl);
  auto demands = workload::cluster_traffic(clusters, workload::Pattern::Broadcast, wl);

  // Incremental sweep state: one BFS engine retargeted across the failure
  // levels (degraded/recovered alternate, so consecutive graphs differ by a
  // few switches' links) and one exact-only MCF warm cache (identical
  // instances — e.g. the four fails=0 solves — resume bitwise). Cold mode
  // leaves both null; stdout is byte-identical either way.
  std::unique_ptr<inc::DynamicApsp> apsp;
  std::unique_ptr<inc::McfWarmCache> warm;
  if (bench::incremental_enabled())
    warm = std::make_unique<inc::McfWarmCache>(inc::McfWarmCacheOptions{.exact_only = true});

  struct ZoneResult {
    double lambda = 0.0;
    double served = 0.0;  ///< fraction of demands still servable
    double apl = 0.0;     ///< server APL among surviving servers
  };
  auto degraded_throughput = [&](const std::vector<core::ConverterConfig>& cfg,
                                 const core::FailureSet& failures) {
    topo::Topology healthy = net.materialize(cfg);
    bench::check_topology(healthy, "materialized");
    core::DegradedTopology d = core::apply_failures(healthy, failures);
    // After failures the dead switches stay as isolated nodes and their
    // servers are the declared stranded set; connectivity is only required
    // of the surviving subgraph.
    check::TopologyCheckOptions degraded_opts;
    degraded_opts.allow_isolated_switches = true;
    degraded_opts.declared_stranded = d.stranded_servers;
    bench::check_topology(d.topo, "degraded", degraded_opts);
    std::vector<char> stranded(d.topo.server_count(), 0);
    for (topo::ServerId s : d.stranded_servers) stranded[s] = 1;
    std::vector<mcf::ServerDemand> alive;
    for (const auto& dem : demands)
      if (!stranded[dem.src] && !stranded[dem.dst]) alive.push_back(dem);
    ZoneResult r;
    r.served = demands.empty() ? 1.0
                               : static_cast<double>(alive.size()) /
                                     static_cast<double>(demands.size());
    // APL among surviving servers (the stranded ones sit on isolated dead
    // switches). Incremental mode repairs the cached BFS trees from the
    // graph delta; the result is bitwise equal to the cold computation.
    std::vector<topo::ServerId> alive_servers;
    for (topo::ServerId sv = 0; sv < d.topo.server_count(); ++sv)
      if (!stranded[sv]) alive_servers.push_back(sv);
    if (bench::incremental_enabled()) {
      if (apsp == nullptr) {
        // A failed core switch invalidates many trees at once, so allow
        // deep repairs before falling back to full BFS (repairs are exact
        // at any threshold; this only trades repair work against rebuilds).
        inc::DynamicApspOptions aopt;
        aopt.churn_threshold = 0.75;
        apsp = std::make_unique<inc::DynamicApsp>(d.topo.graph(), aopt);
      } else {
        apsp->retarget(d.topo.graph());
      }
      r.apl = inc::server_apl_subset(*apsp, d.topo, alive_servers).average;
    } else {
      r.apl = topo::server_apl_subset(d.topo, alive_servers).average;
    }
    try {
      r.lambda = bench::throughput(d.topo, alive, eps, nullptr, warm.get());
    } catch (const std::exception&) {
      r.lambda = 0.0;  // degraded network disconnected for some demand
    }
    return r;
  };

  util::Table table({"failed cores", "stranded (no recovery)", "stranded (recovered)",
                     "served% degraded", "served% recovered", "lambda degraded",
                     "lambda recovered", "apl degraded", "apl recovered"});
  for (std::int64_t fails = 0; fails <= max_failures; fails += 2) {
    double stranded_before = 0, stranded_after = 0, lam_before = 0, lam_after = 0;
    double served_before = 0, served_after = 0, apl_before = 0, apl_after = 0;
    for (std::int64_t s = 0; s < seeds; ++s) {
      util::Rng rng(static_cast<std::uint64_t>(seed) * 13 + fails * 31 + s);
      core::FailureSet failures;
      std::vector<std::uint32_t> pool(cores);
      for (std::uint32_t c = 0; c < cores; ++c) pool[c] = c;
      rng.shuffle(pool);
      for (std::int64_t i = 0; i < fails; ++i)
        failures.failed_switches.push_back(net.core_switch(pool[static_cast<std::size_t>(i)]));

      stranded_before += static_cast<double>(
          core::stranded_server_count(net, configs, failures));
      auto recovered = core::plan_recovery(net, configs, failures).configs;
      stranded_after += static_cast<double>(
          core::stranded_server_count(net, recovered, failures));
      ZoneResult before = degraded_throughput(configs, failures);
      ZoneResult after = degraded_throughput(recovered, failures);
      lam_before += before.lambda;
      lam_after += after.lambda;
      served_before += before.served;
      served_after += after.served;
      apl_before += before.apl;
      apl_after += after.apl;
    }
    table.begin_row();
    table.integer(fails);
    table.num(stranded_before / seeds, 1);
    table.num(stranded_after / seeds, 1);
    table.num(100.0 * served_before / seeds, 1);
    table.num(100.0 * served_after / seeds, 1);
    table.num(lam_before / seeds, 5);
    table.num(lam_after / seeds, 5);
    table.num(apl_before / seeds, 4);
    table.num(apl_after / seeds, 4);
  }
  table.print("Extension: core-switch failures, recovery by reconversion");
  std::puts("Convertibility re-homes every server stranded on a failed core (a\n"
            "static random graph would lose them until recabled).");
  return bench::selfcheck_exit();
}
