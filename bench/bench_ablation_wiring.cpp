// Ablation: pod-core wiring pattern 1 vs pattern 2, and ring vs linear
// inter-pod chains (our DESIGN.md substitution).
//
// Paper Section 2.3: pattern 1 exploits adjacent-pod side links best but
// repeats when h/r is a multiple of m; pattern 2 restores diversity. We
// report the global-RG-mode server APL for each explicit choice plus the
// Auto rule, and the ring/linear chain difference.

#include <cstdio>

#include "common.hpp"
#include "topo/apl.hpp"

using namespace flattree;

namespace {

double apl_for(std::uint32_t k, core::WiringPattern pattern, core::PodChain chain) {
  core::FlatTreeConfig cfg;
  cfg.k = k;
  cfg.pattern = pattern;
  cfg.chain = chain;
  core::FlatTreeNetwork net(cfg);
  try {
    topo::Topology t = net.build(core::Mode::GlobalRandom);
    double apl = topo::server_apl(t).average;
    // Validate only non-degenerate wirings: a disconnected explicit
    // pattern is a legal "disconn" table entry, not a violation.
    bench::check_topology(t, "flat-tree(global)");
    return apl;
  } catch (const std::exception&) {
    return -1.0;  // degenerate wiring disconnects some cores
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t kmax = 32, kstep = 2;
  std::int64_t threads = 0;
  util::CliParser cli("Ablation: wiring pattern and pod-chain topology (global RG APL).");
  cli.add_int("kmax", &kmax, "largest fat-tree parameter k");
  cli.add_int("kstep", &kstep, "k sweep step");
  bool selfcheck = false;
  bench::add_threads_flag(cli, &threads);
  bench::add_selfcheck_flag(cli, &selfcheck);
  bench::ObsFlags obsf;
  bench::add_obs_flags(cli, &obsf);
  if (!cli.parse(argc, argv)) return cli.exit_code();
  bench::apply_threads(threads);
  bench::apply_selfcheck(selfcheck);
  bench::ObsScope obs_run(obsf, argc, argv);
  obs_run.set_int("threads", threads);

  util::Table table({"k", "pattern1 ring", "pattern2 ring", "auto ring", "auto pattern",
                     "auto linear"});
  for (std::uint32_t k : bench::k_values(kmax, kstep)) {
    core::FlatTreeConfig probe;
    probe.k = k;
    core::FlatTreeNetwork net(probe);

    table.begin_row();
    table.integer(k);
    double p1 = apl_for(k, core::WiringPattern::Pattern1, core::PodChain::Ring);
    double p2 = apl_for(k, core::WiringPattern::Pattern2, core::PodChain::Ring);
    double au = apl_for(k, core::WiringPattern::Auto, core::PodChain::Ring);
    double lin = apl_for(k, core::WiringPattern::Auto, core::PodChain::Linear);
    if (p1 >= 0) table.num(p1); else table.add("disconn");
    if (p2 >= 0) table.num(p2); else table.add("disconn");
    table.num(au);
    table.add(core::to_string(net.pattern()));
    table.num(lin);
  }
  table.print("Ablation: wiring pattern 1 vs 2, ring vs linear pod chain");
  std::puts("Auto picks the paper rule (pattern 2 when 4 | k) unless that rotation\n"
            "would break Property 1; 'disconn' marks degenerate explicit choices.\n"
            "Linear chains lose the wrap-around side links, slightly raising APL.");
  return bench::selfcheck_exit();
}
