// Figure 7: throughput of broadcast/incast traffic in 1000-server clusters.
//
// One random hot-spot server per cluster broadcasts a unit demand to every
// other member; throughput is the max concurrent flow value lambda (unit
// link capacities, relaxed server links). Locality packs clusters over
// consecutive servers; no-locality scatters them. Paper shape: flat-tree
// (global RG mode) tracks the random graph closely at ~1.5x fat-tree, all
// curves grow linearly in k, and none is locality-sensitive.
//
// Networks smaller than the cluster size use one all-servers cluster (the
// paper's k = 4..12 points cannot literally hold 1000 servers either) and
// the reported lambda is normalized to a per-1000-member hot spot
// (lambda * (size-1)/(cluster-1)), which reproduces the paper's linear
// growth in k across the whole sweep.

#include <algorithm>
#include <cstdio>

#include "common.hpp"
#include "topo/fat_tree.hpp"
#include "topo/random_graph.hpp"

using namespace flattree;

int main(int argc, char** argv) {
  std::int64_t kmax = 16, kstep = 4, cluster = 1000, seeds = 3, seed = 1;
  double eps = 0.12;
  bool full = false;
  std::int64_t threads = 0;
  util::CliParser cli(
      "Figure 7 reproduction: broadcast/incast throughput in 1000-server clusters.");
  cli.add_int("kmax", &kmax, "largest fat-tree parameter k");
  cli.add_int("kstep", &kstep, "k sweep step");
  cli.add_int("cluster", &cluster, "cluster size (capped at the server count)");
  cli.add_int("seeds", &seeds, "hot-spot/placement draws to average");
  cli.add_int("seed", &seed, "base RNG seed");
  cli.add_double("eps", &eps, "Garg-Koenemann epsilon");
  cli.add_bool("full", &full, "paper-scale sweep (k to 32 step 2; slow)");
  bool selfcheck = false;
  bench::add_threads_flag(cli, &threads);
  bench::add_selfcheck_flag(cli, &selfcheck);
  bench::ObsFlags obsf;
  bench::add_obs_flags(cli, &obsf);
  if (!cli.parse(argc, argv)) return cli.exit_code();
  bench::apply_threads(threads);
  bench::apply_selfcheck(selfcheck);
  bench::ObsScope obs_run(obsf, argc, argv);
  obs_run.set_int("threads", threads);
  obs_run.set_int("seed", seed);
  obs_run.set_double("eps", eps);
  if (full) {
    kmax = 32;
    kstep = 2;
  }

  util::Table table({"k", "fat-tree loc", "fat-tree noloc", "flat-tree loc",
                     "flat-tree noloc", "random loc", "random noloc"});
  for (std::uint32_t k : bench::k_values(kmax, kstep)) {
    const std::uint32_t servers = k * k * k / 4;
    const std::uint32_t size = std::min<std::uint32_t>(static_cast<std::uint32_t>(cluster),
                                                       servers);
    core::FlatTreeNetwork net = bench::profiled_network(k);
    topo::Topology flat = net.build(core::Mode::GlobalRandom);
    topo::FatTree ft = topo::build_fat_tree(k);
    util::Rng rg_rng(static_cast<std::uint64_t>(seed) * 271 + k);
    topo::Topology rg = topo::build_jellyfish_like_fat_tree(k, rg_rng);
    bench::check_topology(flat, "flat-tree(global)");
    bench::check_topology(ft.topo, "fat-tree");
    bench::check_topology(rg, "random-graph");
    bench::check_parity(ft.topo, flat, "fat-tree vs flat-tree");

    const double normalize = static_cast<double>(size - 1) /
                             static_cast<double>(cluster - 1);
    auto mean = [&](const topo::Topology& t, workload::Placement placement) {
      return normalize * bench::mean_cluster_throughput(
                             t, size, placement, workload::Pattern::Broadcast, k * k / 4,
                             eps, static_cast<std::uint64_t>(seed) * 997 + k,
                             static_cast<std::uint32_t>(seeds));
    };
    table.begin_row();
    table.integer(k);
    table.num(mean(ft.topo, workload::Placement::Locality), 5);
    table.num(mean(ft.topo, workload::Placement::NoLocality), 5);
    table.num(mean(flat, workload::Placement::Locality), 5);
    table.num(mean(flat, workload::Placement::NoLocality), 5);
    table.num(mean(rg, workload::Placement::Locality), 5);
    table.num(mean(rg, workload::Placement::NoLocality), 5);
    std::fprintf(stderr, "[fig7] k=%u done\n", k);
  }
  table.print("Figure 7: broadcast/incast throughput in 1000-server clusters");
  std::puts("Paper shape: flat-tree ~= random graph ~= 1.5x fat-tree; linear in k;\n"
            "insensitive to locality.");
  return bench::selfcheck_exit();
}
