// Figure 8: throughput of all-to-all traffic in 20-server clusters.
//
// Every server exchanges unit demands with every other member of its
// 20-server cluster. Locality packs clusters consecutively; weak locality
// packs them randomly within pods (the paper's fragmentation worst case).
// Paper shape: flat-tree (local RG mode) tracks the local-random ideal,
// beating the two-stage random graph for small networks (k <= 14) and
// staying within ~6-9% above; fat-tree is highly placement-sensitive;
// the global random graph sits in between and is the least sensitive.

#include <cstdio>

#include "common.hpp"
#include "topo/fat_tree.hpp"
#include "topo/random_graph.hpp"
#include "topo/two_stage.hpp"

using namespace flattree;

int main(int argc, char** argv) {
  std::int64_t kmax = 12, kstep = 4, cluster = 20, seeds = 1, seed = 1;
  double eps = 0.12;
  bool full = false;
  std::int64_t threads = 0;
  util::CliParser cli(
      "Figure 8 reproduction: all-to-all throughput in 20-server clusters.");
  cli.add_int("kmax", &kmax, "largest fat-tree parameter k");
  cli.add_int("kstep", &kstep, "k sweep step");
  cli.add_int("cluster", &cluster, "cluster size");
  cli.add_int("seeds", &seeds, "placement draws to average");
  cli.add_int("seed", &seed, "base RNG seed");
  cli.add_double("eps", &eps, "Garg-Koenemann epsilon");
  cli.add_bool("full", &full, "paper-scale sweep (k to 32 step 2; slow)");
  bool selfcheck = false;
  bench::add_threads_flag(cli, &threads);
  bench::add_selfcheck_flag(cli, &selfcheck);
  bench::ObsFlags obsf;
  bench::add_obs_flags(cli, &obsf);
  if (!cli.parse(argc, argv)) return cli.exit_code();
  bench::apply_threads(threads);
  bench::apply_selfcheck(selfcheck);
  bench::ObsScope obs_run(obsf, argc, argv);
  obs_run.set_int("threads", threads);
  obs_run.set_int("seed", seed);
  obs_run.set_double("eps", eps);
  if (full) {
    kmax = 32;
    kstep = 2;
  }

  util::Table table({"k", "fat loc", "fat weak", "flat loc", "flat weak", "2stage loc",
                     "2stage weak", "random loc", "random weak"});
  for (std::uint32_t k : bench::k_values(kmax, kstep)) {
    if (k * k * k / 4 < cluster) continue;  // network smaller than one cluster
    core::FlatTreeNetwork net = bench::profiled_network(k);
    topo::Topology flat = net.build(core::Mode::LocalRandom);
    topo::FatTree ft = topo::build_fat_tree(k);
    util::Rng rg_rng(static_cast<std::uint64_t>(seed) * 523 + k);
    topo::Topology rg = topo::build_jellyfish_like_fat_tree(k, rg_rng);
    topo::Topology ts = topo::build_two_stage_random_graph(k, rg_rng);
    bench::check_topology(flat, "flat-tree(local)");
    bench::check_topology(ft.topo, "fat-tree");
    bench::check_topology(rg, "random-graph");
    bench::check_topology(ts, "two-stage-random");
    bench::check_parity(ft.topo, flat, "fat-tree vs flat-tree(local)");

    auto mean = [&](const topo::Topology& t, workload::Placement placement) {
      return bench::mean_cluster_throughput(
          t, static_cast<std::uint32_t>(cluster), placement, workload::Pattern::AllToAll,
          k * k / 4, eps, static_cast<std::uint64_t>(seed) * 499 + k,
          static_cast<std::uint32_t>(seeds));
    };
    table.begin_row();
    table.integer(k);
    table.num(mean(ft.topo, workload::Placement::Locality), 5);
    table.num(mean(ft.topo, workload::Placement::WeakLocality), 5);
    table.num(mean(flat, workload::Placement::Locality), 5);
    table.num(mean(flat, workload::Placement::WeakLocality), 5);
    table.num(mean(ts, workload::Placement::Locality), 5);
    table.num(mean(ts, workload::Placement::WeakLocality), 5);
    table.num(mean(rg, workload::Placement::Locality), 5);
    table.num(mean(rg, workload::Placement::WeakLocality), 5);
    std::fprintf(stderr, "[fig8] k=%u done\n", k);
  }
  table.print("Figure 8: all-to-all throughput in 20-server clusters");
  std::puts("Paper shape: flat-tree ~= two-stage random (ahead for k <= 14); fat-tree\n"
            "strong under locality but collapses under weak locality; random graph\n"
            "moderate and least sensitive.");
  return bench::selfcheck_exit();
}
