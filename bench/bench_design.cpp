// Automated conversion-plan search (src/design, DESIGN.md section 13).
//
// Scores the three uniform conversion modes plus the fixed De Bruijn flat
// baseline against the default mixed workload (pod-spanning broadcast,
// small all-to-all, skewed ML-training rings), then runs the
// deterministic annealing search over hybrid-zone layouts and reports the
// objective trajectory, the accepted-move log, and the winner's cold
// certified score. The acceptance bar: the searched layout's certified
// objective beats the best single uniform mode.
//
// Determinism: stdout is byte-identical across --threads, obs on/off, and
// repeated runs (every random choice is an Rng::substream draw; the warm
// search path and the cold reporting path are separated — see
// docs/design_search.md). --summary-json=PATH writes the machine-readable
// summary (BENCH_design.json in CI, schema flattree.bench_design.v1).

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "design/design.hpp"
#include "obs/json.hpp"
#include "topo/apl.hpp"
#include "topo/debruijn.hpp"

using namespace flattree;

namespace {

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// One-line zone rendering for tables: "[0,4)=global-random [4,8)=clos".
std::string layout_string(const design::Candidate& c) {
  std::string out;
  for (const design::Zone& z : c.zones()) {
    if (!out.empty()) out += " ";
    out += "[" + std::to_string(z.begin) + "," + std::to_string(z.end) +
           ")=" + core::to_string(z.mode);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t k = 8, iters = 32, seed = 1, trace_every = 4;
  double eps = 0.2, temp = 0.05, cooling = 0.92;
  std::string summary_json;
  std::int64_t threads = 0;
  bool selfcheck = false;
  util::CliParser cli(
      "Conversion-plan design search: annealing over hybrid-zone layouts "
      "vs uniform modes and a De Bruijn flat baseline.");
  cli.add_int("k", &k, "fat-tree parameter of the convertible plant");
  cli.add_int("iters", &iters, "annealing iterations");
  cli.add_int("seed", &seed, "RNG seed (workload mix and move stream)");
  cli.add_double("eps", &eps, "Garg-Koenemann epsilon");
  cli.add_double("temp", &temp, "initial temperature (fraction of best uniform)");
  cli.add_double("cooling", &cooling, "geometric cooling factor per iteration");
  cli.add_int("trace-every", &trace_every, "trajectory table sampling stride");
  cli.add_string("summary-json", &summary_json,
                 "write the machine-readable summary to this path");
  bench::add_threads_flag(cli, &threads);
  bench::add_selfcheck_flag(cli, &selfcheck);
  bench::ObsFlags obsf;
  bench::add_obs_flags(cli, &obsf);
  if (!cli.parse(argc, argv)) return cli.exit_code();
  bench::apply_threads(threads);
  bench::apply_selfcheck(selfcheck);
  bench::ObsScope obs_run(obsf, argc, argv);
  obs_run.set_int("threads", threads);
  obs_run.set_int("seed", seed);
  obs_run.set_double("eps", eps);
  obs_run.set_int("iters", iters);

  const auto ku = static_cast<std::uint32_t>(k);
  core::FlatTreeNetwork net = bench::profiled_network(ku);
  design::WorkloadMix mix = design::WorkloadMix::defaults();
  mix.seed = static_cast<std::uint64_t>(seed);
  mix.epsilon = eps;

  design::SearchOptions opt;
  opt.seed = static_cast<std::uint64_t>(seed);
  opt.iterations = static_cast<std::uint32_t>(iters);
  opt.initial_temperature = temp;
  opt.cooling = cooling;

  design::SearchResult result = design::search(net, mix, opt);

  // Fixed flat baseline: De Bruijn fabric sized against fat-tree(k), same
  // server-id space, scored cold on the same mix (affinities fall back to
  // the whole fabric — a flat design has no zones to bind to).
  topo::Topology debruijn = topo::build_debruijn_like_fat_tree(ku);
  check::Report db_report;
  design::Score db_score = design::score_topology_cold(
      debruijn,
      design::mix_demands_all(static_cast<std::uint32_t>(debruijn.server_count()),
                              net.params().servers_per_pod(), mix),
      eps, &db_report);
  bench::selfcheck_record(db_report, "debruijn baseline");

  util::Table baselines({"design", "layout", "objective", "upper", "apl",
                         "demands", "certified"});
  for (const design::UniformScore& u : result.uniforms) {
    baselines.begin_row();
    baselines.add("uniform");
    baselines.add(core::to_string(u.mode));
    baselines.num(u.score.objective);
    baselines.num(u.score.lambda_upper);
    baselines.num(u.score.apl);
    baselines.integer(static_cast<std::int64_t>(u.score.demands));
    baselines.add(u.certified ? "yes" : "NO");
  }
  unsigned db_dim = 0;
  while ((std::size_t{1} << (db_dim + 1)) <= debruijn.switch_count()) ++db_dim;
  baselines.begin_row();
  baselines.add("debruijn");
  baselines.add("flat B(2," + std::to_string(db_dim) + ")");
  baselines.num(db_score.objective);
  baselines.num(db_score.lambda_upper);
  baselines.num(db_score.apl);
  baselines.integer(static_cast<std::int64_t>(db_score.demands));
  baselines.add(db_report.ok() ? "yes" : "NO");
  baselines.begin_row();
  baselines.add("searched");
  baselines.add(layout_string(result.best));
  baselines.num(result.best_cold.objective);
  baselines.num(result.best_cold.lambda_upper);
  baselines.num(result.best_cold.apl);
  baselines.integer(static_cast<std::int64_t>(result.best_cold.demands));
  baselines.add(result.certified ? "yes" : "NO");
  baselines.print("Design search: mixed-workload objective (certified lambda lower bound)");

  util::Table trajectory({"iter", "temperature", "current", "best"});
  const std::uint32_t last_iter =
      result.trajectory.empty() ? 0 : result.trajectory.back().iteration;
  for (const design::TrajectoryPoint& p : result.trajectory) {
    // Sample every trace-every-th iteration, always keeping the last.
    if (p.iteration % static_cast<std::uint32_t>(trace_every) != 0 &&
        p.iteration != last_iter)
      continue;
    trajectory.begin_row();
    trajectory.integer(p.iteration);
    trajectory.num(p.temperature, 6);
    trajectory.num(p.current);
    trajectory.num(p.best);
  }
  trajectory.print("Objective trajectory (warm incremental scores)");

  util::Table moves({"iter", "move", "objective"});
  for (const design::AcceptedMove& m : result.accepted_moves) {
    moves.begin_row();
    moves.integer(m.iteration);
    moves.add(design::to_string(m.move));
    moves.num(m.objective);
  }
  moves.print("Accepted moves");

  double uniform_best = 0.0;
  for (const design::UniformScore& u : result.uniforms)
    if (u.score.objective > uniform_best) uniform_best = u.score.objective;
  const bool beats = result.best_cold.objective > uniform_best;
  std::printf("moves: accepted=%u rejected=%u skipped=%u  (best uniform: %s)\n",
              result.accepted, result.rejected, result.skipped,
              core::to_string(result.best_uniform));
  std::printf("searched layout %s the best uniform mode: %s vs %s\n",
              beats ? "BEATS" : "does NOT beat",
              util::format_double(result.best_cold.objective).c_str(),
              util::format_double(uniform_best).c_str());
  std::printf("winner layout:\n%s", result.best.encode().c_str());

  if (!summary_json.empty()) {
    obs::JsonWriter w;
    w.begin_object();
    w.key("schema");
    w.string_value("flattree.bench_design.v1");
    w.key("k");
    w.int_value(k);
    w.key("seed");
    w.int_value(seed);
    w.key("iters");
    w.int_value(iters);
    w.key("eps");
    w.double_value(eps);
    w.key("accepted");
    w.uint_value(result.accepted);
    w.key("rejected");
    w.uint_value(result.rejected);
    w.key("skipped");
    w.uint_value(result.skipped);
    w.key("uniforms");
    w.begin_array();
    for (const design::UniformScore& u : result.uniforms) {
      w.begin_object();
      w.key("mode");
      w.string_value(core::to_string(u.mode));
      w.key("objective");
      w.double_value(u.score.objective);
      w.key("apl");
      w.double_value(u.score.apl);
      w.key("certified");
      w.bool_value(u.certified);
      w.end_object();
    }
    w.end_array();
    w.key("debruijn");
    w.begin_object();
    w.key("objective");
    w.double_value(db_score.objective);
    w.key("apl");
    w.double_value(db_score.apl);
    w.key("certified");
    w.bool_value(db_report.ok());
    w.end_object();
    w.key("best");
    w.begin_object();
    w.key("objective");
    w.double_value(result.best_cold.objective);
    w.key("apl");
    w.double_value(result.best_cold.apl);
    w.key("certified");
    w.bool_value(result.certified);
    w.key("layout");
    w.begin_array();
    for (core::Mode m : result.best.pod_modes()) w.string_value(core::to_string(m));
    w.end_array();
    w.end_object();
    w.key("beats_uniform");
    w.bool_value(beats);
    char digest[32];
    std::snprintf(digest, sizeof digest, "%016llx",
                  static_cast<unsigned long long>(
                      fnv1a(baselines.to_csv() + trajectory.to_csv() + moves.to_csv())));
    w.key("digest");
    w.string_value(digest);
    w.end_object();
    std::ofstream f(summary_json);
    if (!f) {
      std::fprintf(stderr, "bench_design: cannot open --summary-json '%s'\n",
                   summary_json.c_str());
      return 2;
    }
    f << w.str() << '\n';
  }
  return bench::selfcheck_exit();
}
