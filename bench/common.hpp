#pragma once
// Shared helpers for the figure-reproduction benches.
//
// Every bench prints the paper's series as an aligned table plus a CSV
// block (util::Table::print). Quick defaults finish in seconds; --full
// switches to the paper's parameter ranges.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "core/flat_tree.hpp"
#include "exec/parallel_for.hpp"
#include "graph/multi_bfs.hpp"
#include "inc/mcf_warm.hpp"
#include "mcf/garg_koenemann.hpp"
#include "obs/obs.hpp"
#include "topo/topology.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/cluster.hpp"
#include "workload/traffic.hpp"

namespace flattree::bench {

// -- self-checking (--selfcheck) --------------------------------------------
//
// With --selfcheck every topology a bench builds runs the src/check
// invariant battery and every max-concurrent-flow result is certified
// (capacity feasibility, flow conservation, primal support, FPTAS
// bracket). Violations print to stderr as they happen, bump the
// check.violations counter (visible in --metrics-json run manifests), and
// flip the process exit code to 1 via selfcheck_exit(). Without the flag
// none of this runs and bench output is byte-identical to before.

/// Process-wide switch; set from the --selfcheck flag via apply_selfcheck.
inline bool& selfcheck_enabled() {
  static bool on = false;
  return on;
}

/// Violations accumulated across every check this run (atomic: throughput
/// certificates run inside exec pool workers).
inline std::atomic<std::size_t>& selfcheck_violations() {
  static std::atomic<std::size_t> count{0};
  return count;
}

/// Registers the shared `--selfcheck` flag (every bench grows one).
inline void add_selfcheck_flag(util::CliParser& cli, bool* flag) {
  cli.add_bool("selfcheck", flag,
               "validate every topology and certify every solver result (exit 1 on "
               "any violation)");
}

/// Records a report: prints violations (single fwrite-backed fprintf per
/// report, safe from pool workers) and accumulates the count.
inline void selfcheck_record(const check::Report& report, const char* what) {
  if (report.ok()) return;
  selfcheck_violations().fetch_add(report.violations.size(), std::memory_order_relaxed);
  std::string text = report.to_string();
  std::fprintf(stderr, "selfcheck[%s]: %zu violation(s)\n%s\n", what,
               report.violations.size(), text.c_str());
}

/// Applies the --selfcheck flag. Besides flipping the process-wide switch,
/// this arms the batched-BFS audit hook: graph::MultiSourceBfs hands the
/// first distance row of every batch to check::certify_distances, so the
/// bit-parallel engine's output is certified on sampled sources during the
/// actual bench run (ft_graph itself cannot depend on ft_check — the hook
/// inverts the dependency from up here, where both layers are visible).
inline void apply_selfcheck(bool on) {
  selfcheck_enabled() = on;
  if (on) {
    graph::set_distance_audit_hook(
        [](const graph::Graph& g, graph::NodeId source,
           const std::vector<std::uint32_t>& dist) {
          selfcheck_record(check::certify_distances(g, source, dist), "bitbfs");
        });
  } else {
    graph::set_distance_audit_hook(nullptr);
  }
}

/// Validates a topology under --selfcheck (no-op otherwise).
inline void check_topology(const topo::Topology& t, const char* what,
                           const check::TopologyCheckOptions& options = {}) {
  if (!selfcheck_enabled()) return;
  selfcheck_record(check::validate(t, options), what);
}

/// Equipment-parity check between two builds under --selfcheck (no-op
/// otherwise). Conversions re-use the same hardware, so any two builds at
/// the same (k, oversubscription) must agree on the equipment inventory.
inline void check_parity(const topo::Topology& a, const topo::Topology& b,
                         const char* what, bool require_equal_links = true) {
  if (!selfcheck_enabled()) return;
  selfcheck_record(check::equipment_parity(a, b, require_equal_links), what);
}

/// Final verdict for main(): prints a summary and returns the exit code.
inline int selfcheck_exit() {
  if (!selfcheck_enabled()) return 0;
  std::size_t violations = selfcheck_violations().load();
  if (violations == 0) {
    std::fprintf(stderr, "selfcheck: OK (0 violations)\n");
    return 0;
  }
  std::fprintf(stderr, "selfcheck: FAILED (%zu violation(s))\n", violations);
  return 1;
}

/// Paths for the shared observability flags. Empty = that output disabled.
struct ObsFlags {
  std::string metrics_json;  ///< --metrics-json=PATH: run manifest
  std::string trace;         ///< --trace=PATH: JSON-lines span trace
};

/// Registers `--metrics-json` and `--trace` (every bench grows both).
inline void add_obs_flags(util::CliParser& cli, ObsFlags* flags) {
  cli.add_string("metrics-json", &flags->metrics_json,
                 "write a JSON run manifest (argv, seed, metrics) to this path");
  cli.add_string("trace", &flags->trace,
                 "write a JSON-lines span trace to this path");
}

/// Owns the observability side of a bench run. Construct right after flag
/// parsing; when either path was requested this enables metrics collection
/// (and tracing, if asked for) and writes the files at scope exit. With no
/// paths this is inert and the bench's stdout is byte-identical to a build
/// without the flags.
class ObsScope {
 public:
  ObsScope(const ObsFlags& flags, int argc, char** argv)
      : session_(argc, argv, flags.metrics_json, flags.trace) {
    if (session_.active()) {
      obs::set_enabled(true);
      if (!flags.trace.empty()) obs::start_tracing();
    }
  }

  /// Manifest fields (seed, threads, epsilon, ...); no-ops when inactive.
  void set_int(const std::string& key, std::int64_t value) {
    if (session_.active()) session_.set_int(key, value);
  }
  void set_double(const std::string& key, double value) {
    if (session_.active()) session_.set_double(key, value);
  }
  void set_string(const std::string& key, const std::string& value) {
    if (session_.active()) session_.set_string(key, value);
  }

  obs::RunSession& session() { return session_; }

 private:
  obs::RunSession session_;  ///< writes manifest + trace on destruction
};

// -- incremental sweeps (--incremental) -------------------------------------
//
// With --incremental the sweep-style benches reuse work between
// consecutive sweep points through src/inc: cached BFS trees are repaired
// instead of recomputed (inc::DynamicApsp) and identical MCF instances
// resume from their terminal solver state (inc::McfWarmCache, exact-only
// tier). Stdout is byte-identical to cold mode at any thread count — the
// incremental paths are bitwise-equivalent by construction and every
// warm-started solver result is re-certified through src/check. The
// savings show up in a --metrics-json manifest: graph.bfs.nodes_visited
// drops (repairs bill inc.apl.repair_visits instead) and
// inc.mcf.warm_phases_saved counts GK phases inherited instead of re-run.

/// Process-wide switch; set from the --incremental flag.
inline bool& incremental_enabled() {
  static bool on = false;
  return on;
}

/// Registers the shared `--incremental` flag (sweep benches grow one).
inline void add_incremental_flag(util::CliParser& cli, bool* flag) {
  cli.add_bool("incremental", flag,
               "reuse work across sweep points (delta-repaired BFS caches, "
               "warm-started MCF); output is byte-identical to cold mode");
}

inline void apply_incremental(bool on) { incremental_enabled() = on; }

/// Registers the shared `--threads` flag (every bench grows one). 0 means
/// the exec default: FLATTREE_THREADS env var, else hardware concurrency.
inline void add_threads_flag(util::CliParser& cli, std::int64_t* threads) {
  cli.add_int("threads", threads,
              "execution threads (0 = FLATTREE_THREADS env / hardware concurrency)");
}

/// Installs the requested global pool size after flag parsing. All results
/// are bit-identical at any thread count (see DESIGN.md, Parallel
/// execution) — this knob only changes wall-clock time.
inline void apply_threads(std::int64_t threads) {
  exec::set_global_threads(threads > 0 ? static_cast<unsigned>(threads) : 0);
}

/// Throughput lambda for a server-level demand set on a topology
/// (switch-aggregated max concurrent flow, certified lower bound).
inline double throughput(const topo::Topology& topo,
                         const std::vector<mcf::ServerDemand>& demands, double epsilon,
                         double* upper = nullptr, inc::McfWarmCache* warm = nullptr) {
  auto commodities = mcf::aggregate_to_switches(topo, demands);
  if (commodities.empty()) return 0.0;
  mcf::McfOptions opt;
  opt.epsilon = epsilon;
  // Certification needs the dual bound for the bracket check, so selfcheck
  // forces the upper bound on even when the caller does not want it.
  opt.compute_upper_bound = upper != nullptr || selfcheck_enabled();
  // The warm cache (exact-only in benches) resumes identical instances
  // bitwise and re-certifies internally; different instances solve cold.
  auto r = warm != nullptr ? warm->solve(topo.graph(), commodities, opt)
                           : mcf::max_concurrent_flow(topo.graph(), commodities, opt);
  if (selfcheck_enabled()) {
    check::CertifyOptions copt;
    copt.epsilon = epsilon;
    selfcheck_record(check::certify(topo.graph(), commodities, r, copt), "mcf");
  }
  if (upper != nullptr) *upper = r.lambda_upper;
  return r.lambda_lower;
}

/// Cluster workload -> demands, averaged over `seeds` placements; returns
/// the mean lambda. Placements are independent, so the seed loop fans out
/// over the exec pool: each seed keeps its own Rng(seed_base + s) exactly
/// as the sequential loop did, and partial sums reduce in seed order, so
/// the mean is bit-identical at any thread count. (The GK solver inside
/// each seed then runs its tree precompute sequentially — nested parallel
/// regions degrade to seq — which keeps the parallelism at the widest,
/// cheapest level.)
inline double mean_cluster_throughput(const topo::Topology& topo, std::uint32_t cluster_size,
                                      workload::Placement placement,
                                      workload::Pattern pattern,
                                      std::uint32_t servers_per_pod, double epsilon,
                                      std::uint64_t seed_base, std::uint32_t seeds) {
  double sum = exec::parallel_reduce(
      seeds, /*grain=*/1, 0.0,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        double part = 0.0;
        for (std::size_t s = begin; s < end; ++s) {
          util::Rng rng(seed_base + s);
          auto clusters = workload::make_clusters(
              static_cast<std::uint32_t>(topo.server_count()), cluster_size, placement,
              servers_per_pod, rng);
          auto demands = workload::cluster_traffic(clusters, pattern, rng);
          part += throughput(topo, demands, epsilon);
        }
        return part;
      },
      [](double acc, double part) { return acc + part; });
  return sum / static_cast<double>(seeds);
}

// -- flag peeling for wrapper mains (bench_micro) ----------------------------
//
// Most benches own their whole command line through util::CliParser, which
// already rejects unknown --flags with a usage listing. bench_micro cannot:
// google-benchmark owns its argv. ArgPeeler centralizes the other half of
// that contract — it extracts the repo's shared flags (--name=value or
// --name value) from argv before the third-party parser runs, reports a
// missing value as a hard error, and renders a usage listing so "unknown
// flag" failures can show every flag the binary actually understands.

class ArgPeeler {
 public:
  /// Registers --name expecting a value.
  void add_string(const char* name, std::string* out, const char* help) {
    flags_.push_back({name, out, help});
  }

  /// Removes registered flags from argc/argv in place (argv[0] untouched).
  /// Returns false with `error` set when a registered flag is missing its
  /// value. Unregistered arguments are left for the caller to validate.
  bool peel(int& argc, char** argv, std::string* error) {
    int w = 1;
    for (int i = 1; i < argc; ++i) {
      const Flag* hit = nullptr;
      const char* inline_value = nullptr;
      for (const Flag& f : flags_) {
        std::size_t len = std::strlen(f.name);
        if (std::strncmp(argv[i], f.name, len) != 0) continue;
        if (argv[i][len] == '=') {
          hit = &f;
          inline_value = argv[i] + len + 1;
          break;
        }
        if (argv[i][len] == '\0') {
          hit = &f;
          break;
        }
      }
      if (hit == nullptr) {
        argv[w++] = argv[i];
        continue;
      }
      if (inline_value != nullptr) {
        *hit->out = inline_value;
      } else if (i + 1 < argc) {
        *hit->out = argv[++i];
      } else {
        if (error != nullptr)
          *error = std::string(hit->name) + " requires a value (" + hit->name +
                   "=PATH or " + hit->name + " PATH)";
        return false;
      }
    }
    argc = w;
    return true;
  }

  /// One-line-per-flag listing for error messages.
  std::string usage() const {
    std::string out;
    for (const Flag& f : flags_) {
      out += "  ";
      out += f.name;
      out += "=VALUE  ";
      out += f.help;
      out += '\n';
    }
    return out;
  }

 private:
  struct Flag {
    const char* name;
    std::string* out;
    const char* help;
  };
  std::vector<Flag> flags_;
};

/// The k sweep used by the figures: 4..kmax step kstep.
inline std::vector<std::uint32_t> k_values(std::int64_t kmax, std::int64_t kstep) {
  std::vector<std::uint32_t> ks;
  for (std::int64_t k = 4; k <= kmax; k += kstep) ks.push_back(static_cast<std::uint32_t>(k));
  return ks;
}

/// Flat-tree with the paper's profiled (m, n) = (k/8, 2k/8).
inline core::FlatTreeNetwork profiled_network(std::uint32_t k) {
  core::FlatTreeConfig cfg;
  cfg.k = k;
  return core::FlatTreeNetwork(cfg);
}

}  // namespace flattree::bench
