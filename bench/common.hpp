#pragma once
// Shared helpers for the figure-reproduction benches.
//
// Every bench prints the paper's series as an aligned table plus a CSV
// block (util::Table::print). Quick defaults finish in seconds; --full
// switches to the paper's parameter ranges.

#include <cstdint>
#include <string>
#include <vector>

#include "core/flat_tree.hpp"
#include "mcf/garg_koenemann.hpp"
#include "topo/topology.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/cluster.hpp"
#include "workload/traffic.hpp"

namespace flattree::bench {

/// Throughput lambda for a server-level demand set on a topology
/// (switch-aggregated max concurrent flow, certified lower bound).
inline double throughput(const topo::Topology& topo,
                         const std::vector<mcf::ServerDemand>& demands, double epsilon,
                         double* upper = nullptr) {
  auto commodities = mcf::aggregate_to_switches(topo, demands);
  if (commodities.empty()) return 0.0;
  mcf::McfOptions opt;
  opt.epsilon = epsilon;
  opt.compute_upper_bound = upper != nullptr;
  auto r = mcf::max_concurrent_flow(topo.graph(), commodities, opt);
  if (upper != nullptr) *upper = r.lambda_upper;
  return r.lambda_lower;
}

/// Cluster workload -> demands, averaged over `seeds` placements; returns
/// the mean lambda.
inline double mean_cluster_throughput(const topo::Topology& topo, std::uint32_t cluster_size,
                                      workload::Placement placement,
                                      workload::Pattern pattern,
                                      std::uint32_t servers_per_pod, double epsilon,
                                      std::uint64_t seed_base, std::uint32_t seeds) {
  double sum = 0.0;
  for (std::uint32_t s = 0; s < seeds; ++s) {
    util::Rng rng(seed_base + s);
    auto clusters = workload::make_clusters(
        static_cast<std::uint32_t>(topo.server_count()), cluster_size, placement,
        servers_per_pod, rng);
    auto demands = workload::cluster_traffic(clusters, pattern, rng);
    sum += throughput(topo, demands, epsilon);
  }
  return sum / static_cast<double>(seeds);
}

/// The k sweep used by the figures: 4..kmax step kstep.
inline std::vector<std::uint32_t> k_values(std::int64_t kmax, std::int64_t kstep) {
  std::vector<std::uint32_t> ks;
  for (std::int64_t k = 4; k <= kmax; k += kstep) ks.push_back(static_cast<std::uint32_t>(k));
  return ks;
}

/// Flat-tree with the paper's profiled (m, n) = (k/8, 2k/8).
inline core::FlatTreeNetwork profiled_network(std::uint32_t k) {
  core::FlatTreeConfig cfg;
  cfg.k = k;
  return core::FlatTreeNetwork(cfg);
}

}  // namespace flattree::bench
