// Figure 5: average path length of server pairs in the entire network.
//
// Series (as in the paper): fat-tree, random graph, and flat-tree in
// global-random-graph mode under the (m, n) sweep {k/8, 2k/8, 3k/8} with
// m + n <= k/2. The paper's conclusion: (m, n) = (k/8, 2k/8) minimizes the
// APL, landing within ~5% of the random graph and well below fat-tree.

#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "topo/apl.hpp"
#include "topo/fat_tree.hpp"
#include "topo/random_graph.hpp"

using namespace flattree;

namespace {

std::uint32_t eighth(std::uint32_t k, std::uint32_t mult) {
  return static_cast<std::uint32_t>(
      std::lround(static_cast<double>(mult) * static_cast<double>(k) / 8.0));
}

double flat_tree_apl(std::uint32_t k, std::uint32_t m, std::uint32_t n,
                     const topo::Topology* parity_ref) {
  core::FlatTreeConfig cfg;
  cfg.k = k;
  cfg.m = m;
  cfg.n = n;
  core::FlatTreeNetwork net(cfg);
  topo::Topology t = net.build(core::Mode::GlobalRandom);
  bench::check_topology(t, "flat-tree(global)");
  if (parity_ref != nullptr)
    bench::check_parity(*parity_ref, t, "fat-tree vs flat-tree");
  return topo::server_apl(t).average;
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t kmax = 32, kstep = 2, seed = 1, rg_seeds = 1;
  std::int64_t threads = 0;
  bool full = false, selfcheck = false;
  util::CliParser cli(
      "Figure 5 reproduction: network-wide server-pair average path length vs k.");
  cli.add_int("kmax", &kmax, "largest fat-tree parameter k");
  cli.add_int("kstep", &kstep, "k sweep step");
  cli.add_int("seed", &seed, "random graph seed");
  cli.add_int("rg-seeds", &rg_seeds, "random-graph draws to average");
  cli.add_bool("full", &full, "paper-scale sweep (k to 32 step 2; the default already is)");
  bench::add_threads_flag(cli, &threads);
  bench::add_selfcheck_flag(cli, &selfcheck);
  bench::ObsFlags obsf;
  bench::add_obs_flags(cli, &obsf);
  if (!cli.parse(argc, argv)) return cli.exit_code();
  bench::apply_threads(threads);
  bench::apply_selfcheck(selfcheck);
  bench::ObsScope obs_run(obsf, argc, argv);
  obs_run.set_int("threads", threads);
  obs_run.set_int("seed", seed);
  if (full) {
    kmax = 32;
    kstep = 2;
  }

  // The paper's five flat-tree settings, as (m multiplier, n multiplier)
  // in units of k/8.
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> settings{
      {1, 1}, {1, 2}, {1, 3}, {2, 1}, {2, 2}};

  std::vector<std::string> headers{"k", "fat-tree", "random-graph"};
  for (auto [mm, nm] : settings)
    headers.push_back("flat(m=" + std::to_string(mm) + "k/8,n=" + std::to_string(nm) +
                      "k/8)");
  util::Table table(headers);

  for (std::uint32_t k : bench::k_values(kmax, kstep)) {
    table.begin_row();
    table.integer(k);
    topo::Topology fat = topo::build_fat_tree(k).topo;
    bench::check_topology(fat, "fat-tree");
    table.num(topo::server_apl(fat).average);
    double rg_sum = 0.0;
    for (std::int64_t s = 0; s < rg_seeds; ++s) {
      util::Rng rng(static_cast<std::uint64_t>(seed + s) * 1009 + k);
      topo::Topology rg = topo::build_jellyfish_like_fat_tree(k, rng);
      bench::check_topology(rg, "random-graph");
      rg_sum += topo::server_apl(rg).average;
    }
    table.num(rg_sum / static_cast<double>(rg_seeds));
    for (auto [mm, nm] : settings) {
      std::uint32_t m = std::max(1u, eighth(k, mm));
      std::uint32_t n = std::max(1u, eighth(k, nm));
      if (m + n > k / 2) {
        table.add("-");  // infeasible at this k (m + n > k/2)
        continue;
      }
      table.num(flat_tree_apl(k, m, n, &fat));
    }
  }
  table.print("Figure 5: average path length of server pairs (entire network)");
  std::puts("Paper shape: flat-tree(m=k/8, n=2k/8) within ~5% of random graph,\n"
            "both well below fat-tree (~5.5-5.9).");
  return bench::selfcheck_exit();
}
