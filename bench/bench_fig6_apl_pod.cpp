// Figure 6: average path length of server pairs in the same pod.
//
// Flat-tree operates as approximated local random graphs (half the servers
// on edge switches, half on aggregation). Baselines: fat-tree, the global
// random graph (whose "pod" servers scatter network-wide), and the
// two-stage random graph. Paper shape: flat-tree lowest (it even beats
// two-stage RG thanks to the regular edge-aggregation mesh), then
// fat-tree, then two-stage, with the global random graph worst.

#include <cstdio>

#include "common.hpp"
#include "topo/apl.hpp"
#include "topo/fat_tree.hpp"
#include "topo/random_graph.hpp"
#include "topo/two_stage.hpp"

using namespace flattree;

namespace {

/// Server id groups corresponding to the fat-tree pods (the same logical
/// services, wherever each topology physically placed them).
std::vector<std::vector<topo::ServerId>> pod_groups(std::uint32_t k) {
  const std::uint32_t per_pod = k * k / 4;
  std::vector<std::vector<topo::ServerId>> groups(k);
  for (topo::ServerId s = 0; s < k * k * k / 4; ++s) groups[s / per_pod].push_back(s);
  return groups;
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t kmax = 32, kstep = 2, seed = 1;
  std::int64_t threads = 0;
  bool selfcheck = false;
  util::CliParser cli(
      "Figure 6 reproduction: intra-pod server-pair average path length vs k.");
  cli.add_int("kmax", &kmax, "largest fat-tree parameter k");
  cli.add_int("kstep", &kstep, "k sweep step");
  cli.add_int("seed", &seed, "random graph seed");
  bench::add_threads_flag(cli, &threads);
  bench::add_selfcheck_flag(cli, &selfcheck);
  bench::ObsFlags obsf;
  bench::add_obs_flags(cli, &obsf);
  if (!cli.parse(argc, argv)) return cli.exit_code();
  bench::apply_threads(threads);
  bench::apply_selfcheck(selfcheck);
  bench::ObsScope obs_run(obsf, argc, argv);
  obs_run.set_int("threads", threads);
  obs_run.set_int("seed", seed);

  util::Table table({"k", "flat-tree(local)", "fat-tree", "random-graph",
                     "two-stage-random"});
  for (std::uint32_t k : bench::k_values(kmax, kstep)) {
    auto groups = pod_groups(k);
    core::FlatTreeNetwork net = bench::profiled_network(k);
    util::Rng rng(static_cast<std::uint64_t>(seed) * 131 + k);

    topo::Topology local = net.build(core::Mode::LocalRandom);
    topo::Topology fat = topo::build_fat_tree(k).topo;
    topo::Topology rg = topo::build_jellyfish_like_fat_tree(k, rng);
    topo::Topology two_stage = topo::build_two_stage_random_graph(k, rng);
    bench::check_topology(local, "flat-tree(local)");
    bench::check_topology(fat, "fat-tree");
    bench::check_topology(rg, "random-graph");
    bench::check_topology(two_stage, "two-stage-random");
    bench::check_parity(fat, local, "fat-tree vs flat-tree(local)");

    table.begin_row();
    table.integer(k);
    table.num(topo::server_apl_grouped(local, groups).average);
    table.num(topo::server_apl_grouped(fat, groups).average);
    table.num(topo::server_apl_grouped(rg, groups).average);
    table.num(topo::server_apl_grouped(two_stage, groups).average);
  }
  table.print("Figure 6: average path length of server pairs in each pod");
  std::puts("Paper shape: flat-tree < fat-tree < two-stage random < random graph.");
  return bench::selfcheck_exit();
}
