// Extension: packet-level view of conversion — queueing delay and tail
// drops under bursty load, fat-tree vs converted flat-tree.
//
// Flow-level metrics (Figures 7/8) capture steady-state bandwidth; this
// bench injects synchronized packet trains (a shuffle-like burst) through
// compiled FIBs with finite queues, where shorter random-graph paths mean
// fewer serialization/queueing stages per packet.

#include <cstdio>

#include "common.hpp"
#include "routing/ecmp.hpp"
#include "sim/packet_sim.hpp"
#include "topo/fat_tree.hpp"

using namespace flattree;

namespace {

void run_case(util::Table& table, const char* name, const topo::Topology& t,
              const std::vector<sim::PacketFlow>& flows, const sim::PacketSimConfig& cfg) {
  routing::EcmpRouting routing(t.graph());
  auto pairs = routing::all_server_pairs(t);
  routing::Fib fib = routing::compile_fib(t, routing, pairs);
  // ECMP installs shortest-path hops only, so the strict-progress FIB
  // invariant applies (a KSP FIB would need verify_fib instead).
  if (bench::selfcheck_enabled())
    bench::selfcheck_record(check::validate_fib_progress(t, fib, pairs), "fib");
  sim::PacketSimulator simulator(t, fib, cfg);
  sim::PacketStats stats = simulator.run(flows);
  table.begin_row();
  table.add(name);
  table.integer(static_cast<std::int64_t>(stats.injected));
  table.num(100.0 * stats.loss_rate(), 2);
  table.num(stats.mean_delay, 3);
  table.num(stats.p99_delay, 3);
  table.num(stats.finish_time, 2);
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t k = 8, train = 24, seed = 1, queue = 16;
  double nic_rate = 4.0, prop_delay = 0.01;
  std::int64_t threads = 0;
  util::CliParser cli("Extension: packet-level burst behavior across conversions.");
  cli.add_int("k", &k, "fat-tree parameter");
  cli.add_int("train", &train, "packets per flow (burst length)");
  cli.add_int("queue-packets", &queue, "output queue capacity in packets (0 = infinite)");
  cli.add_double("nic-rate", &nic_rate, "injection rate vs unit link capacity");
  cli.add_double("prop-delay", &prop_delay, "per-hop propagation delay");
  cli.add_int("seed", &seed, "RNG seed for the permutation");
  bool selfcheck = false;
  bench::add_threads_flag(cli, &threads);
  bench::add_selfcheck_flag(cli, &selfcheck);
  bench::ObsFlags obsf;
  bench::add_obs_flags(cli, &obsf);
  if (!cli.parse(argc, argv)) return cli.exit_code();
  bench::apply_threads(threads);
  bench::apply_selfcheck(selfcheck);
  bench::ObsScope obs_run(obsf, argc, argv);
  obs_run.set_int("threads", threads);
  obs_run.set_int("seed", seed);

  const std::uint32_t ku = static_cast<std::uint32_t>(k);
  topo::FatTree ft = topo::build_fat_tree(ku);
  core::FlatTreeNetwork net = bench::profiled_network(ku);
  topo::Topology grg = net.build(core::Mode::GlobalRandom);
  bench::check_topology(ft.topo, "fat-tree");
  bench::check_topology(grg, "flat-tree(global)");
  bench::check_parity(ft.topo, grg, "fat-tree vs flat-tree");

  // Synchronized permutation burst: every server fires a train at t = 0.
  util::Rng rng(static_cast<std::uint64_t>(seed));
  auto demands = workload::permutation_traffic(net.params().total_servers(), rng);
  std::vector<sim::PacketFlow> flows;
  for (const auto& d : demands)
    flows.push_back({d.src, d.dst, static_cast<std::uint32_t>(train), 0.0});

  sim::PacketSimConfig cfg;
  cfg.queue_packets = static_cast<std::size_t>(queue);
  cfg.nic_rate = nic_rate;
  cfg.propagation_delay = prop_delay;

  util::Table table({"topology", "packets", "loss %", "mean delay", "p99 delay",
                     "finish time"});
  run_case(table, "fat-tree (clos)", ft.topo, flows, cfg);
  run_case(table, "flat-tree (global RG)", grg, flows, cfg);
  table.print("Extension: packet-level permutation burst");
  std::puts("Shorter converted paths reduce per-packet queueing stages; expect lower\n"
            "delay and earlier finish at comparable or lower loss.");
  return bench::selfcheck_exit();
}
