// Extension: flow-completion-time study on the flow-level simulator.
//
// The paper's control-plane section prescribes ECMP for Clos mode and
// k-shortest-paths for random-graph modes. This bench quantifies that
// pairing: mean/median/p99 FCT for a Poisson workload of heavy-tailed
// flows on (a) fat-tree + ECMP, (b) flat-tree global RG + KSP, and the
// mismatched combinations as the ablation.

#include <cstdio>

#include "common.hpp"
#include "routing/ecmp.hpp"
#include "routing/fib.hpp"
#include "routing/ksp_routing.hpp"
#include "sim/flow_gen.hpp"
#include "sim/flow_sim.hpp"
#include "topo/fat_tree.hpp"
#include "util/stats.hpp"

using namespace flattree;

namespace {

void report(util::Table& table, const std::string& name, const topo::Topology& t,
            routing::Routing& routing, const std::vector<sim::SimFlow>& flows) {
  sim::FlowSimulator simulator(t, routing);
  auto records = simulator.run(flows);
  std::vector<double> fcts;
  util::Accumulator hops;
  fcts.reserve(records.size());
  for (const auto& r : records) {
    fcts.push_back(r.fct());
    hops.add(r.hops);
  }
  util::Distribution dist(std::move(fcts));
  table.begin_row();
  table.add(name);
  table.num(dist.mean(), 4);
  table.num(dist.median(), 4);
  table.num(dist.quantile(0.99), 4);
  table.num(hops.mean(), 3);
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t k = 8, flows = 2000, seed = 1;
  double load = 4.0;
  std::int64_t threads = 0;
  util::CliParser cli("Extension: flow-level FCT for routing/topology pairings.");
  cli.add_int("k", &k, "fat-tree parameter");
  cli.add_int("flows", &flows, "number of flows to simulate");
  cli.add_double("load", &load, "Poisson arrival rate (flows per unit time)");
  cli.add_int("seed", &seed, "RNG seed");
  bool selfcheck = false;
  bench::add_threads_flag(cli, &threads);
  bench::add_selfcheck_flag(cli, &selfcheck);
  bench::ObsFlags obsf;
  bench::add_obs_flags(cli, &obsf);
  if (!cli.parse(argc, argv)) return cli.exit_code();
  bench::apply_threads(threads);
  bench::apply_selfcheck(selfcheck);
  bench::ObsScope obs_run(obsf, argc, argv);
  obs_run.set_int("threads", threads);
  obs_run.set_int("seed", seed);

  const std::uint32_t ku = static_cast<std::uint32_t>(k);
  topo::FatTree ft = topo::build_fat_tree(ku);
  core::FlatTreeNetwork net = bench::profiled_network(ku);
  topo::Topology grg = net.build(core::Mode::GlobalRandom);
  bench::check_topology(ft.topo, "fat-tree");
  bench::check_topology(grg, "flat-tree(global)");
  bench::check_parity(ft.topo, grg, "fat-tree vs flat-tree");

  util::Rng rng(static_cast<std::uint64_t>(seed));
  sim::FlowSizeDist dist;
  auto workload = sim::poisson_flows(static_cast<std::uint32_t>(flows), load,
                                     static_cast<std::uint32_t>(ft.topo.server_count()),
                                     dist, rng);

  util::Table table({"topology+routing", "mean FCT", "median FCT", "p99 FCT", "mean hops"});
  {
    routing::EcmpRouting ecmp(ft.topo.graph());
    report(table, "fat-tree + ECMP", ft.topo, ecmp, workload);
  }
  {
    routing::KspRouting ksp(ft.topo.graph(), 8);
    report(table, "fat-tree + KSP8", ft.topo, ksp, workload);
  }
  {
    routing::EcmpRouting ecmp(grg.graph());
    report(table, "flat-tree(gRG) + ECMP", grg, ecmp, workload);
  }
  {
    routing::KspRouting ksp(grg.graph(), 8);
    // Yen invariants on a sample of switch pairs: loopless, distinct,
    // length-sorted path sets.
    if (bench::selfcheck_enabled()) {
      auto pairs = routing::all_server_pairs(grg);
      for (std::size_t i = 0; i < pairs.size(); i += 97) {
        auto [src, dst] = pairs[i];
        bench::selfcheck_record(
            check::validate_paths(grg.graph(), src, dst, ksp.paths(src, dst)), "ksp");
      }
    }
    report(table, "flat-tree(gRG) + KSP8", grg, ksp, workload);
  }
  table.print("Extension: flow-completion time by topology and routing scheme");
  std::puts("Expected: the converted flat-tree shortens paths (lower mean hops) and\n"
            "KSP exploits its path diversity; ECMP suffices on the Clos fat-tree.");
  return bench::selfcheck_exit();
}
