// Ablation: the (m, n) profiling scheme (paper Sections 2.4 and 3.2) at
// finer granularity than the paper's k/8 step.
//
// For each k, sweeps every feasible (m, n) at step 1 and reports the
// profiled optimum, the paper's choice (k/8, 2k/8), and their gap —
// quantifying how much the coarse profiling grid gives up.

#include <cstdio>

#include "common.hpp"
#include "core/profile.hpp"

using namespace flattree;

int main(int argc, char** argv) {
  std::int64_t kmax = 20, kstep = 4;
  bool dump = false;
  std::int64_t threads = 0;
  util::CliParser cli("Ablation: fine-grained (m, n) profiling.");
  cli.add_int("kmax", &kmax, "largest fat-tree parameter k");
  cli.add_int("kstep", &kstep, "k sweep step");
  cli.add_bool("dump", &dump, "print every sweep point, not just the optima");
  bool selfcheck = false, incremental = false;
  bench::add_threads_flag(cli, &threads);
  bench::add_selfcheck_flag(cli, &selfcheck);
  bench::add_incremental_flag(cli, &incremental);
  bench::ObsFlags obsf;
  bench::add_obs_flags(cli, &obsf);
  if (!cli.parse(argc, argv)) return cli.exit_code();
  bench::apply_threads(threads);
  bench::apply_selfcheck(selfcheck);
  bench::apply_incremental(incremental);
  bench::ObsScope obs_run(obsf, argc, argv);
  obs_run.set_int("threads", threads);
  obs_run.set_int("incremental", incremental ? 1 : 0);

  util::Table table({"k", "best m", "best n", "best APL", "paper m", "paper n",
                     "paper APL", "gap %"});
  for (std::uint32_t k : bench::k_values(kmax, kstep)) {
    core::ProfileResult fine = core::profile_mn(k, core::WiringPattern::Auto,
                                                core::PodChain::Ring, /*step=*/1,
                                                bench::incremental_enabled());
    if (bench::selfcheck_enabled()) {
      core::FlatTreeConfig best;
      best.k = k;
      best.m = fine.best_m;
      best.n = fine.best_n;
      bench::check_topology(core::FlatTreeNetwork(best).build(core::Mode::GlobalRandom),
                            "flat-tree(best m,n)");
    }
    std::uint32_t pm = core::FlatTreeConfig::default_m(k);
    std::uint32_t pn = core::FlatTreeConfig::default_n(k);
    double paper_apl = 0.0;
    for (const core::ProfilePoint& p : fine.points) {
      if (dump) std::printf("  k=%u m=%u n=%u apl=%.4f\n", k, p.m, p.n, p.apl);
      if (p.m == pm && p.n == pn) paper_apl = p.apl;
    }
    table.begin_row();
    table.integer(k);
    table.integer(fine.best_m);
    table.integer(fine.best_n);
    table.num(fine.best_apl);
    table.integer(pm);
    table.integer(pn);
    table.num(paper_apl);
    table.num(paper_apl > 0 ? 100.0 * (paper_apl - fine.best_apl) / fine.best_apl : 0.0, 2);
  }
  table.print("Ablation: step-1 (m, n) profiling vs the paper's k/8 grid");
  std::puts("The paper's coarse grid stays within a few percent of the fine-grained\n"
            "optimum, supporting its profiling scheme.");
  return bench::selfcheck_exit();
}
