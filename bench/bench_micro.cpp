// Microbenchmarks (google-benchmark): cost of the primitives behind the
// figure harnesses — topology construction, conversion, BFS/APL, and the
// max-concurrent-flow solver — plus serial-vs-parallel versions of the two
// embarrassingly parallel kernels (per-source BFS APSP/APL and the
// Garg-Koenemann commodity phase).
//
// Besides the google-benchmark suite, `--exec-json <path>` runs a fixed
// serial-vs-parallel sweep and writes machine-readable results
// (k, threads, wall-ms, speedup, determinism check) so the perf trajectory
// of the exec runtime is tracked per PR:
//
//   $ ./bench_micro --exec-json ../BENCH_exec.json

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/controller.hpp"
#include "exec/parallel_for.hpp"
#include "graph/bfs.hpp"
#include "graph/metrics.hpp"
#include "graph/multi_bfs.hpp"
#include "obs/obs.hpp"
#include "mcf/garg_koenemann.hpp"
#include "topo/apl.hpp"
#include "topo/fat_tree.hpp"
#include "topo/random_graph.hpp"
#include "workload/traffic.hpp"

using namespace flattree;

namespace {

void BM_BuildFatTree(benchmark::State& state) {
  const std::uint32_t k = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(topo::build_fat_tree(k));
}
BENCHMARK(BM_BuildFatTree)->Arg(8)->Arg(16)->Arg(32);

void BM_BuildFlatTreeGlobal(benchmark::State& state) {
  const std::uint32_t k = static_cast<std::uint32_t>(state.range(0));
  core::FlatTreeConfig cfg;
  cfg.k = k;
  core::FlatTreeNetwork net(cfg);
  for (auto _ : state) benchmark::DoNotOptimize(net.build(core::Mode::GlobalRandom));
}
BENCHMARK(BM_BuildFlatTreeGlobal)->Arg(8)->Arg(16)->Arg(32);

void BM_BuildJellyfish(benchmark::State& state) {
  const std::uint32_t k = static_cast<std::uint32_t>(state.range(0));
  util::Rng rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(topo::build_jellyfish_like_fat_tree(k, rng));
}
BENCHMARK(BM_BuildJellyfish)->Arg(8)->Arg(16);

void BM_ServerApl(benchmark::State& state) {
  const std::uint32_t k = static_cast<std::uint32_t>(state.range(0));
  topo::FatTree ft = topo::build_fat_tree(k);
  for (auto _ : state) benchmark::DoNotOptimize(topo::server_apl(ft.topo));
}
BENCHMARK(BM_ServerApl)->Arg(8)->Arg(16)->Arg(24);

// Serial vs parallel: args are {k, threads}. The same kernel runs on a
// global pool of the given size; results are bit-identical across rows.
void BM_ServerAplThreads(benchmark::State& state) {
  const std::uint32_t k = static_cast<std::uint32_t>(state.range(0));
  exec::set_global_threads(static_cast<unsigned>(state.range(1)));
  topo::FatTree ft = topo::build_fat_tree(k);
  for (auto _ : state) benchmark::DoNotOptimize(topo::server_apl(ft.topo));
  exec::set_global_threads(1);
}
BENCHMARK(BM_ServerAplThreads)
    ->Args({16, 1})
    ->Args({16, 2})
    ->Args({16, 4})
    ->Args({24, 1})
    ->Args({24, 4})
    ->UseRealTime();

void BM_ApspThreads(benchmark::State& state) {
  const std::uint32_t k = static_cast<std::uint32_t>(state.range(0));
  exec::set_global_threads(static_cast<unsigned>(state.range(1)));
  topo::FatTree ft = topo::build_fat_tree(k);
  for (auto _ : state) benchmark::DoNotOptimize(graph::apsp_distances(ft.topo.graph()));
  exec::set_global_threads(1);
}
BENCHMARK(BM_ApspThreads)->Args({16, 1})->Args({16, 2})->Args({16, 4})->UseRealTime();

void BM_ConversionPlan(benchmark::State& state) {
  const std::uint32_t k = static_cast<std::uint32_t>(state.range(0));
  core::FlatTreeConfig cfg;
  cfg.k = k;
  core::Controller controller(cfg);
  for (auto _ : state) benchmark::DoNotOptimize(controller.plan(core::Mode::GlobalRandom));
}
BENCHMARK(BM_ConversionPlan)->Arg(8)->Arg(16);

std::vector<mcf::Commodity> broadcast_commodities(const topo::Topology& topo,
                                                  std::uint32_t k,
                                                  std::uint32_t cluster) {
  util::Rng rng(11);
  auto clusters = workload::make_clusters(
      static_cast<std::uint32_t>(topo.server_count()),
      std::min<std::uint32_t>(cluster, static_cast<std::uint32_t>(topo.server_count())),
      workload::Placement::Locality, k * k / 4, rng);
  auto demands = workload::cluster_traffic(clusters, workload::Pattern::Broadcast, rng);
  return mcf::aggregate_to_switches(topo, demands);
}

void BM_MaxConcurrentFlowBroadcast(benchmark::State& state) {
  const std::uint32_t k = static_cast<std::uint32_t>(state.range(0));
  topo::FatTree ft = topo::build_fat_tree(k);
  auto commodities = broadcast_commodities(ft.topo, k, 100);
  mcf::McfOptions opt;
  opt.epsilon = 0.15;
  opt.compute_upper_bound = false;
  for (auto _ : state)
    benchmark::DoNotOptimize(mcf::max_concurrent_flow(ft.topo.graph(), commodities, opt));
}
BENCHMARK(BM_MaxConcurrentFlowBroadcast)->Arg(8)->Arg(12);

void BM_MaxConcurrentFlowThreads(benchmark::State& state) {
  const std::uint32_t k = static_cast<std::uint32_t>(state.range(0));
  exec::set_global_threads(static_cast<unsigned>(state.range(1)));
  topo::FatTree ft = topo::build_fat_tree(k);
  auto commodities = broadcast_commodities(ft.topo, k, 100);
  mcf::McfOptions opt;
  opt.epsilon = 0.15;
  for (auto _ : state)
    benchmark::DoNotOptimize(mcf::max_concurrent_flow(ft.topo.graph(), commodities, opt));
  exec::set_global_threads(1);
}
BENCHMARK(BM_MaxConcurrentFlowThreads)->Args({12, 1})->Args({12, 2})->Args({12, 4})->UseRealTime();

// ---------------------------------------------------------------------------
// --exec-json sweep: fixed workloads timed at several thread counts.

double wall_ms(const std::function<void()>& fn) {
  // Best of three: wall-clock on a shared machine is noisy and we want the
  // achievable time, not the mean of the noise.
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

struct ExecEntry {
  std::string bench;
  std::uint32_t k;
  unsigned threads;
  double ms;
  double speedup;
  bool identical;  ///< result bit-identical to the threads=1 run
};

// Batched-vs-scalar APL on fat-trees: deterministic operation counters are
// the headline (wall-clock on the 1-core container is untrustworthy).
// `scalar_settles` counts nodes settled one BFS per source;
// `batched_settles` counts frontier node expansions — one expansion
// advances up to 64 sources at once, which is exactly the batching win.
struct BitBfsEntry {
  std::uint32_t k;
  double scalar_ms;
  double batched_ms;
  std::uint64_t scalar_settles;
  std::uint64_t batched_settles;
  std::uint64_t words_touched;
  double settle_ratio;  ///< scalar_settles / batched_settles
  bool identical;       ///< batched APL bitwise equal to the scalar kernel
};

int run_exec_sweep(const std::string& path) {
  const std::vector<unsigned> thread_counts{1, 2, 4, 8};
  std::vector<ExecEntry> entries;

  // APL/APSP kernel (the Figure 5/6 hot path).
  for (std::uint32_t k : {16u, 24u}) {
    topo::FatTree ft = topo::build_fat_tree(k);
    double base_ms = 0.0, base_apl = 0.0;
    for (unsigned t : thread_counts) {
      exec::set_global_threads(t);
      double apl = 0.0;
      double ms = wall_ms([&] { apl = topo::server_apl(ft.topo).average; });
      if (t == 1) {
        base_ms = ms;
        base_apl = apl;
      }
      entries.push_back({"apl_fat_tree", k, t, ms, base_ms / ms, apl == base_apl});
    }
  }

  // Garg-Koenemann broadcast throughput (the Figure 7/8 hot path).
  for (std::uint32_t k : {8u, 12u}) {
    topo::FatTree ft = topo::build_fat_tree(k);
    auto commodities = broadcast_commodities(ft.topo, k, 100);
    mcf::McfOptions opt;
    opt.epsilon = 0.12;
    double base_ms = 0.0, base_lo = 0.0, base_up = 0.0;
    for (unsigned t : thread_counts) {
      exec::set_global_threads(t);
      double lo = 0.0, up = 0.0;
      double ms = wall_ms([&] {
        auto r = mcf::max_concurrent_flow(ft.topo.graph(), commodities, opt);
        lo = r.lambda_lower;
        up = r.lambda_upper;
      });
      if (t == 1) {
        base_ms = ms;
        base_lo = lo;
        base_up = up;
      }
      entries.push_back(
          {"gk_broadcast", k, t, ms, base_ms / ms, lo == base_lo && up == base_up});
    }
  }
  exec::set_global_threads(1);

  // Bit-parallel batched BFS vs one-BFS-per-source, same weighted-APL
  // workload and bitwise-compared results. k=48/64 only run the batched
  // engine within reasonable time because of it; the scalar baseline is
  // still measured to keep the comparison honest at every size.
  std::vector<BitBfsEntry> bitbfs;
  for (std::uint32_t k : {16u, 24u, 48u, 64u}) {
    topo::FatTree ft = topo::build_fat_tree(k);
    BitBfsEntry e{};
    e.k = k;
    graph::AplResult scalar{};
    graph::reset_scalar_bfs_settled();
    e.scalar_ms = wall_ms([&] {
      scalar = graph::weighted_apl_scalar(ft.topo.graph(), ft.topo.servers_per_switch(),
                                          /*offset=*/2, /*same_node_dist=*/2);
    });
    e.scalar_settles = graph::scalar_bfs_settled() / 3;  // wall_ms runs 3 reps
    graph::AplResult batched{};
    graph::reset_multi_bfs_stats();
    e.batched_ms = wall_ms([&] { batched = topo::server_apl(ft.topo); });
    graph::MultiBfsStats stats = graph::multi_bfs_stats();
    e.batched_settles = stats.node_expansions / 3;
    e.words_touched = stats.words_touched / 3;
    e.settle_ratio = e.batched_settles
                         ? static_cast<double>(e.scalar_settles) /
                               static_cast<double>(e.batched_settles)
                         : 0.0;
    e.identical = scalar.average == batched.average && scalar.pairs == batched.pairs &&
                  scalar.max_dist == batched.max_dist;
    bitbfs.push_back(e);
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_micro: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"hardware_threads\": %u,\n  \"entries\": [\n",
               exec::hardware_threads());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const ExecEntry& e = entries[i];
    std::fprintf(f,
                 "    {\"bench\": \"%s\", \"k\": %u, \"threads\": %u, "
                 "\"wall_ms\": %.3f, \"speedup\": %.3f, \"identical\": %s}%s\n",
                 e.bench.c_str(), e.k, e.threads, e.ms, e.speedup,
                 e.identical ? "true" : "false", i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"bitbfs\": [\n");
  for (std::size_t i = 0; i < bitbfs.size(); ++i) {
    const BitBfsEntry& e = bitbfs[i];
    std::fprintf(f,
                 "    {\"k\": %u, \"scalar_ms\": %.3f, \"batched_ms\": %.3f, "
                 "\"scalar_settles\": %llu, \"batched_settles\": %llu, "
                 "\"words_touched\": %llu, \"settle_ratio\": %.2f, \"identical\": %s}%s\n",
                 e.k, e.scalar_ms, e.batched_ms,
                 static_cast<unsigned long long>(e.scalar_settles),
                 static_cast<unsigned long long>(e.batched_settles),
                 static_cast<unsigned long long>(e.words_touched), e.settle_ratio,
                 e.identical ? "true" : "false", i + 1 < bitbfs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu entries)\n", path.c_str(), entries.size() + bitbfs.size());
  bool all_identical = true;
  for (const ExecEntry& e : entries) all_identical = all_identical && e.identical;
  for (const BitBfsEntry& e : bitbfs) all_identical = all_identical && e.identical;
  std::printf("determinism across thread counts: %s\n", all_identical ? "OK" : "BROKEN");
  return all_identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off --exec-json / --metrics-json / --trace ([=| ]<path> forms)
  // before google-benchmark sees the args (it owns the remaining argv).
  std::string exec_json, metrics_json, trace_path;
  bench::ArgPeeler peeler;
  peeler.add_string("--exec-json", &exec_json,
                    "write the exec scaling sweep as JSON and exit");
  peeler.add_string("--metrics-json", &metrics_json,
                    "write a JSON run manifest (argv, seed, metrics)");
  peeler.add_string("--trace", &trace_path, "write a JSON-lines span trace");
  std::string peel_error;
  if (!peeler.peel(argc, argv, &peel_error)) {
    std::fprintf(stderr, "bench_micro: %s\nflags handled by bench_micro:\n%s",
                 peel_error.c_str(), peeler.usage().c_str());
    return 1;
  }
  // Anything left that isn't google-benchmark's (--benchmark_*) is an
  // unknown flag: fail with the full listing instead of silently ignoring.
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_", 12) == 0) continue;
    if (std::strcmp(argv[i], "--help") == 0) continue;  // google-benchmark prints usage
    std::fprintf(stderr,
                 "bench_micro: unknown flag '%s'\nflags handled by bench_micro:\n%s"
                 "plus google-benchmark's --benchmark_* flags "
                 "(--benchmark_filter=..., --benchmark_list_tests, ...)\n",
                 argv[i], peeler.usage().c_str());
    return 1;
  }
  obs::RunSession obs_run(argc, argv, metrics_json, trace_path);
  if (obs_run.active()) {
    obs::set_enabled(true);
    if (!trace_path.empty()) obs::start_tracing();
  }
  if (!exec_json.empty()) return run_exec_sweep(exec_json);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
