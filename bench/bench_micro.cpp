// Microbenchmarks (google-benchmark): cost of the primitives behind the
// figure harnesses — topology construction, conversion, BFS/APL, and the
// max-concurrent-flow solver.

#include <benchmark/benchmark.h>

#include "core/controller.hpp"
#include "mcf/garg_koenemann.hpp"
#include "topo/apl.hpp"
#include "topo/fat_tree.hpp"
#include "topo/random_graph.hpp"
#include "workload/traffic.hpp"

using namespace flattree;

namespace {

void BM_BuildFatTree(benchmark::State& state) {
  const std::uint32_t k = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(topo::build_fat_tree(k));
}
BENCHMARK(BM_BuildFatTree)->Arg(8)->Arg(16)->Arg(32);

void BM_BuildFlatTreeGlobal(benchmark::State& state) {
  const std::uint32_t k = static_cast<std::uint32_t>(state.range(0));
  core::FlatTreeConfig cfg;
  cfg.k = k;
  core::FlatTreeNetwork net(cfg);
  for (auto _ : state) benchmark::DoNotOptimize(net.build(core::Mode::GlobalRandom));
}
BENCHMARK(BM_BuildFlatTreeGlobal)->Arg(8)->Arg(16)->Arg(32);

void BM_BuildJellyfish(benchmark::State& state) {
  const std::uint32_t k = static_cast<std::uint32_t>(state.range(0));
  util::Rng rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(topo::build_jellyfish_like_fat_tree(k, rng));
}
BENCHMARK(BM_BuildJellyfish)->Arg(8)->Arg(16);

void BM_ServerApl(benchmark::State& state) {
  const std::uint32_t k = static_cast<std::uint32_t>(state.range(0));
  topo::FatTree ft = topo::build_fat_tree(k);
  for (auto _ : state) benchmark::DoNotOptimize(topo::server_apl(ft.topo));
}
BENCHMARK(BM_ServerApl)->Arg(8)->Arg(16)->Arg(24);

void BM_ConversionPlan(benchmark::State& state) {
  const std::uint32_t k = static_cast<std::uint32_t>(state.range(0));
  core::FlatTreeConfig cfg;
  cfg.k = k;
  core::Controller controller(cfg);
  for (auto _ : state) benchmark::DoNotOptimize(controller.plan(core::Mode::GlobalRandom));
}
BENCHMARK(BM_ConversionPlan)->Arg(8)->Arg(16);

void BM_MaxConcurrentFlowBroadcast(benchmark::State& state) {
  const std::uint32_t k = static_cast<std::uint32_t>(state.range(0));
  topo::FatTree ft = topo::build_fat_tree(k);
  util::Rng rng(11);
  auto clusters = workload::make_clusters(
      static_cast<std::uint32_t>(ft.topo.server_count()),
      std::min<std::uint32_t>(100, static_cast<std::uint32_t>(ft.topo.server_count())),
      workload::Placement::Locality, k * k / 4, rng);
  auto demands = workload::cluster_traffic(clusters, workload::Pattern::Broadcast, rng);
  auto commodities = mcf::aggregate_to_switches(ft.topo, demands);
  mcf::McfOptions opt;
  opt.epsilon = 0.15;
  opt.compute_upper_bound = false;
  for (auto _ : state)
    benchmark::DoNotOptimize(mcf::max_concurrent_flow(ft.topo.graph(), commodities, opt));
}
BENCHMARK(BM_MaxConcurrentFlowBroadcast)->Arg(8)->Arg(12);

}  // namespace

BENCHMARK_MAIN();
