// Section 3.4: hybrid flat-tree.
//
// The network is split into two zones at varying proportions: one operates
// as an approximated global random graph (broadcast clusters), the other
// as approximated local random graphs (20-server all-to-all clusters).
// The paper reports that each zone achieves the same throughput as a
// dedicated complete network under the same traffic, i.e. the zones are
// perfectly segregated.
//
// We report two views per proportion:
//   * isolated per-zone lambda / dedicated-network lambda — with only one
//     zone loaded, a zone can even exceed 1.0 by borrowing the idle other
//     zone's detour capacity;
//   * the joint sustainability factor: both zones loaded simultaneously,
//     each zone's demands pre-scaled by its dedicated lambda, solved as
//     one concurrent flow. A factor ~1.0 means each zone sustains its
//     dedicated throughput at the same time — the paper's segregation
//     claim.

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>

#include "common.hpp"
#include "core/zones.hpp"
#include "inc/apl.hpp"
#include "inc/dynamic_bfs.hpp"
#include "topo/apl.hpp"

using namespace flattree;

namespace {

std::vector<mcf::ServerDemand> zone_demands(const std::vector<topo::ServerId>& servers,
                                            std::uint32_t cluster_size,
                                            workload::Placement placement,
                                            workload::Pattern pattern,
                                            std::uint32_t servers_per_pod,
                                            std::uint64_t seed) {
  util::Rng rng(seed);
  auto clusters =
      workload::make_clusters_subset(servers, cluster_size, placement, servers_per_pod, rng);
  if (clusters.empty()) return {};
  return workload::cluster_traffic(clusters, pattern, rng);
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t k = 8, step_percent = 20, seeds = 2, seed = 1, g_cluster = 40,
               l_cluster = 16;
  double eps = 0.12;
  bool full = false;
  std::int64_t threads = 0;
  util::CliParser cli("Section 3.4 reproduction: hybrid-mode zone segregation.");
  cli.add_int("k", &k, "fat-tree parameter (paper uses 30)");
  cli.add_int("step", &step_percent, "zone proportion step in percent");
  cli.add_int("global-cluster", &g_cluster, "broadcast cluster size (global zone)");
  cli.add_int("local-cluster", &l_cluster, "all-to-all cluster size (local zone)");
  cli.add_int("seeds", &seeds, "placement draws to average");
  cli.add_int("seed", &seed, "base RNG seed");
  cli.add_double("eps", &eps, "Garg-Koenemann epsilon");
  cli.add_bool("full", &full, "paper-scale run: k = 30, 10% steps (slow)");
  bool selfcheck = false, incremental = false;
  bench::add_threads_flag(cli, &threads);
  bench::add_selfcheck_flag(cli, &selfcheck);
  bench::add_incremental_flag(cli, &incremental);
  bench::ObsFlags obsf;
  bench::add_obs_flags(cli, &obsf);
  if (!cli.parse(argc, argv)) return cli.exit_code();
  bench::apply_threads(threads);
  bench::apply_selfcheck(selfcheck);
  bench::apply_incremental(incremental);
  bench::ObsScope obs_run(obsf, argc, argv);
  obs_run.set_int("threads", threads);
  obs_run.set_int("seed", seed);
  obs_run.set_double("eps", eps);
  obs_run.set_int("incremental", incremental ? 1 : 0);
  if (full) {
    k = 30;
    step_percent = 10;
    g_cluster = 1000;
    l_cluster = 20;
  }

  const std::uint32_t ku = static_cast<std::uint32_t>(k);
  const std::uint32_t per_pod = ku * ku / 4;
  core::FlatTreeNetwork net = bench::profiled_network(ku);

  // Dedicated-network references per cluster size (computed lazily: the
  // zone cluster size shrinks when a zone is smaller than the cluster).
  topo::Topology full_global = net.build(core::Mode::GlobalRandom);
  topo::Topology full_local = net.build(core::Mode::LocalRandom);
  bench::check_topology(full_global, "flat-tree(global)");
  bench::check_topology(full_local, "flat-tree(local)");
  bench::check_parity(full_global, full_local, "global vs local build");
  std::map<std::uint32_t, double> ref_global, ref_local;
  auto reference = [&](std::map<std::uint32_t, double>& cache, const topo::Topology& t,
                       std::uint32_t size, workload::Placement placement,
                       workload::Pattern pattern) {
    auto it = cache.find(size);
    if (it != cache.end()) return it->second;
    std::vector<topo::ServerId> all(t.server_count());
    for (topo::ServerId s = 0; s < all.size(); ++s) all[s] = s;
    double sum = 0.0;
    for (std::int64_t s = 0; s < seeds; ++s) {
      auto demands = zone_demands(all, size, placement, pattern, per_pod,
                                  static_cast<std::uint64_t>(seed) * 37 + s);
      sum += bench::throughput(t, demands, eps);
    }
    double v = sum / static_cast<double>(seeds);
    cache.emplace(size, v);
    return v;
  };

  // Incremental sweep state: consecutive proportions convert a few pods
  // between modes, so the hybrid graphs differ by those pods' wiring — the
  // BFS engine repairs across the conversion delta, and the exact-only MCF
  // warm cache resumes any bitwise-repeated instance. Stdout stays
  // byte-identical to cold mode.
  std::unique_ptr<inc::DynamicApsp> apsp;
  std::unique_ptr<inc::McfWarmCache> warm;
  if (bench::incremental_enabled())
    warm = std::make_unique<inc::McfWarmCache>(inc::McfWarmCacheOptions{.exact_only = true});

  util::Table table({"global%", "hybrid apl", "global iso", "global dedicated",
                     "global iso ratio", "local iso", "local dedicated",
                     "local iso ratio", "joint factor"});
  for (std::int64_t pct = step_percent; pct < 100; pct += step_percent) {
    core::ZonePartition zones =
        core::ZonePartition::proportion(ku, static_cast<double>(pct) / 100.0);
    topo::Topology hybrid = net.build(zones.pod_modes);
    bench::check_topology(hybrid, "flat-tree(hybrid)");
    double hybrid_apl;
    if (bench::incremental_enabled()) {
      if (apsp == nullptr)
        apsp = std::make_unique<inc::DynamicApsp>(hybrid.graph());
      else
        apsp->retarget(hybrid.graph());
      hybrid_apl = inc::server_apl(*apsp, hybrid).average;
    } else {
      hybrid_apl = topo::server_apl(hybrid).average;
    }
    bench::check_parity(full_global, hybrid, "global vs hybrid build");
    auto g_servers = core::servers_in_pods(net, zones.pods_in(core::Mode::GlobalRandom));
    auto l_servers = core::servers_in_pods(net, zones.pods_in(core::Mode::LocalRandom));

    std::uint32_t g_size = std::min<std::uint32_t>(static_cast<std::uint32_t>(g_cluster),
                                                   static_cast<std::uint32_t>(g_servers.size()));
    std::uint32_t l_size = std::min<std::uint32_t>(static_cast<std::uint32_t>(l_cluster),
                                                   static_cast<std::uint32_t>(l_servers.size()));
    double g_ref = reference(ref_global, full_global, g_size,
                             workload::Placement::NoLocality, workload::Pattern::Broadcast);
    double l_ref = reference(ref_local, full_local, l_size,
                             workload::Placement::WeakLocality, workload::Pattern::AllToAll);

    double g_iso = 0.0, l_iso = 0.0, joint = 0.0;
    for (std::int64_t s = 0; s < seeds; ++s) {
      auto g_demands = zone_demands(g_servers, g_size, workload::Placement::NoLocality,
                                    workload::Pattern::Broadcast, per_pod,
                                    static_cast<std::uint64_t>(seed) * 101 + pct + s);
      auto l_demands = zone_demands(l_servers, l_size, workload::Placement::WeakLocality,
                                    workload::Pattern::AllToAll, per_pod,
                                    static_cast<std::uint64_t>(seed) * 103 + pct + s);
      g_iso += bench::throughput(hybrid, g_demands, eps);
      l_iso += bench::throughput(hybrid, l_demands, eps);
      // Joint sustainability: each zone's demands scaled by its dedicated
      // lambda; factor 1.0 = both zones hit dedicated throughput at once.
      std::vector<mcf::ServerDemand> scaled;
      scaled.reserve(g_demands.size() + l_demands.size());
      for (auto d : g_demands) {
        d.demand *= g_ref;
        scaled.push_back(d);
      }
      for (auto d : l_demands) {
        d.demand *= l_ref;
        scaled.push_back(d);
      }
      joint += bench::throughput(hybrid, scaled, eps, nullptr, warm.get());
    }
    g_iso /= static_cast<double>(seeds);
    l_iso /= static_cast<double>(seeds);
    joint /= static_cast<double>(seeds);

    table.begin_row();
    table.integer(pct);
    table.num(hybrid_apl, 4);
    table.num(g_iso, 5);
    table.num(g_ref, 5);
    table.num(g_ref > 0 ? g_iso / g_ref : 0.0, 3);
    table.num(l_iso, 5);
    table.num(l_ref, 5);
    table.num(l_ref > 0 ? l_iso / l_ref : 0.0, 3);
    table.num(joint, 3);
    std::fprintf(stderr, "[hybrid] %lld%% done\n", static_cast<long long>(pct));
  }
  table.print("Section 3.4: hybrid flat-tree zone throughput vs dedicated networks");
  std::puts("Paper claim: zones are segregated. Joint factor ~1.0 means both zones\n"
            "sustain their dedicated-network throughput simultaneously; isolated\n"
            "ratios can exceed 1.0 (an unloaded zone lends detour capacity).");
  return bench::selfcheck_exit();
}
