// Extension (paper Sections 1/3.1): converting *oversubscribed* Clos.
//
// "Flat-tree targets at converting generic, especially oversubscribed,
//  Clos networks ... a random graph can provide richer bandwidth and
//  effectively alleviate the oversubscription problem."
//
// Fixes the switch inventory and sweeps the edge oversubscription ratio
// (servers per edge vs effective uplinks), comparing the Clos mode against
// the global-random conversion: APL and broadcast throughput. The expected
// result — the conversion's relative win GROWS with oversubscription —
// is the quantified version of the paper's motivating argument.

#include <cstdio>

#include "common.hpp"
#include "topo/apl.hpp"

using namespace flattree;

int main(int argc, char** argv) {
  std::int64_t pods = 8, d = 4, r = 2, h = 4, seeds = 3, seed = 1, cluster = 60;
  double eps = 0.12;
  std::int64_t threads = 0;
  util::CliParser cli("Extension: flat-tree conversion of oversubscribed Clos.");
  cli.add_int("pods", &pods, "number of pods");
  cli.add_int("d", &d, "edge switches per pod");
  cli.add_int("r", &r, "edge switches per aggregation switch");
  cli.add_int("h", &h, "core uplinks per aggregation switch");
  cli.add_int("cluster", &cluster, "broadcast cluster size");
  cli.add_int("seeds", &seeds, "hot-spot draws to average");
  cli.add_int("seed", &seed, "base RNG seed");
  cli.add_double("eps", &eps, "Garg-Koenemann epsilon");
  bool selfcheck = false;
  bench::add_threads_flag(cli, &threads);
  bench::add_selfcheck_flag(cli, &selfcheck);
  bench::ObsFlags obsf;
  bench::add_obs_flags(cli, &obsf);
  if (!cli.parse(argc, argv)) return cli.exit_code();
  bench::apply_threads(threads);
  bench::apply_selfcheck(selfcheck);
  bench::ObsScope obs_run(obsf, argc, argv);
  obs_run.set_int("threads", threads);
  obs_run.set_int("seed", seed);
  obs_run.set_double("eps", eps);

  const std::uint32_t base_uplinks =
      static_cast<std::uint32_t>(h) / static_cast<std::uint32_t>(r);
  util::Table table({"oversub", "servers/edge", "clos APL", "flat APL", "APL gain%",
                     "clos lambda", "flat lambda", "lambda gain"});
  for (std::uint32_t ratio = 1; ratio <= 4; ++ratio) {
    const std::uint32_t spe = base_uplinks * ratio;
    auto params = topo::ClosParams::make_generic(
        static_cast<std::uint32_t>(pods), static_cast<std::uint32_t>(d),
        static_cast<std::uint32_t>(r), static_cast<std::uint32_t>(h), spe,
        /*edge_ports=*/spe + static_cast<std::uint32_t>(d / r),
        /*agg_ports=*/static_cast<std::uint32_t>(d + h),
        /*core_ports=*/static_cast<std::uint32_t>(pods));
    core::FlatTreeNetwork net(params, core::FlatTreeConfig::kProfiled,
                              core::FlatTreeConfig::kProfiled);
    topo::Topology clos = net.build(core::Mode::Clos);
    topo::Topology flat = net.build(core::Mode::GlobalRandom);
    bench::check_topology(clos, "clos");
    bench::check_topology(flat, "flat-tree(global)");
    bench::check_parity(clos, flat, "clos vs flat-tree");

    double apl_clos = topo::server_apl(clos).average;
    double apl_flat = topo::server_apl(flat).average;

    auto lambda = [&](const topo::Topology& t) {
      return bench::mean_cluster_throughput(
          t, std::min<std::uint32_t>(static_cast<std::uint32_t>(cluster),
                                     static_cast<std::uint32_t>(t.server_count())),
          workload::Placement::NoLocality, workload::Pattern::Broadcast,
          params.servers_per_pod(), eps, static_cast<std::uint64_t>(seed) * 53 + ratio,
          static_cast<std::uint32_t>(seeds));
    };
    double lam_clos = lambda(clos);
    double lam_flat = lambda(flat);

    table.begin_row();
    table.num(params.oversubscription(), 1);
    table.integer(spe);
    table.num(apl_clos, 3);
    table.num(apl_flat, 3);
    table.num(100.0 * (apl_clos - apl_flat) / apl_clos, 1);
    table.num(lam_clos, 5);
    table.num(lam_flat, 5);
    table.num(lam_clos > 0 ? lam_flat / lam_clos : 0.0, 2);
  }
  table.print("Extension: conversion gains vs edge oversubscription ratio");
  std::puts("Paper motivation quantified: the random-graph conversion roughly doubles\n"
            "hot-spot throughput at every subscription ratio, and from 2:1 onward the\n"
            "relative gain grows with oversubscription (the 1:1 row is a very small\n"
            "network where the cluster covers most servers).");
  return bench::selfcheck_exit();
}
