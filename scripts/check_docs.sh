#!/usr/bin/env bash
# Documentation gate (ctest label `docs`). Five checks:
#
#   1. Markdown link integrity — every intra-repo link target in the
#      checked .md files exists on disk (external http(s) links are
#      skipped), every `#anchor` (pure or `file#anchor`) resolves to a
#      heading in the target file, and no dead `[[...]]` wiki-style
#      anchors survive.
#   2. Table-of-contents coverage — every `##` section of DESIGN.md and
#      EXPERIMENTS.md is linked from that file's ToC.
#   3. Header doc coverage — every public header under src/graph/, src/inc/,
#      src/mcf/, src/fault/, src/svc/, src/te/ and src/design/ has a
#      file-level comment, and every namespace-scope declaration (struct/
#      class/enum/free function) is immediately preceded by a doc comment.
#   4. README bench catalog — the bench catalog table in README.md lists
#      every bench binary that exists under bench/.
#
# Usage: scripts/check_docs.sh [repo-root]   (defaults to the script's parent)

set -u
root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root" || exit 2

python3 - "$root" <<'PYEOF'
import os
import re
import sys

root = sys.argv[1]
failures = []


def fail(msg):
    failures.append(msg)


# -- 1. markdown link integrity ---------------------------------------------

MD_FILES = ["README.md", "EXPERIMENTS.md", "DESIGN.md", "ROADMAP.md", "CHANGES.md"]
MD_FILES += sorted(
    os.path.join("docs", f) for f in os.listdir(os.path.join(root, "docs"))
    if f.endswith(".md")
) if os.path.isdir(os.path.join(root, "docs")) else []

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$", re.M)


def github_anchor(heading):
    """GitHub's heading -> anchor rule: lowercase, drop everything but
    word chars / spaces / hyphens, spaces become hyphens."""
    a = heading.strip().lower()
    a = re.sub(r"[^\w\s-]", "", a)
    return a.replace(" ", "-")


def md_text(md):
    text = open(os.path.join(root, md), encoding="utf-8").read()
    # Strip fenced code blocks: their bracket/paren text is not links.
    # (Inline code spans stay — headings keep their `code` text, which
    # GitHub includes when deriving anchors.)
    return re.sub(r"```.*?```", "", text, flags=re.S)


def md_anchors(md):
    return {github_anchor(h) for _, h in HEADING_RE.findall(md_text(md))}


def resolve(md, rel):
    """Path of a relative link target, or None when it doesn't exist."""
    for base in (os.path.dirname(md), ""):
        p = os.path.normpath(os.path.join(base, rel))
        if os.path.exists(os.path.join(root, p)):
            return p
    return None


for md in MD_FILES:
    if not os.path.exists(os.path.join(root, md)):
        continue  # optional files may not exist yet
    text = md_text(md)
    # Dead wiki-style anchors: a [[...]] never renders as a link
    # (inline code spans are exempt — docs may *mention* the syntax).
    for m in re.finditer(r"\[\[[^\]]+\]\]", re.sub(r"`[^`\n]*`", "", text)):
        fail(f"{md}: dead [[...]] anchor: {m.group(0)[:60]}")
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        rel, _, anchor = target.partition("#")
        if rel:
            resolved = resolve(md, rel)
            if resolved is None:
                fail(f"{md}: broken link -> {target}")
                continue
        else:
            resolved = md  # pure intra-file anchor
        if anchor and resolved.endswith(".md"):
            if anchor not in md_anchors(resolved):
                fail(f"{md}: dangling anchor -> {target}")

# -- 1b. ToC coverage: every ## section linked from the file's ToC -----------

for md in ["DESIGN.md", "EXPERIMENTS.md"]:
    text = md_text(md)
    for level, heading in HEADING_RE.findall(text):
        if level != "##" or heading.strip() == "Contents":
            continue
        if f"](#{github_anchor(heading)})" not in text:
            fail(f"{md}: section not in the ToC: {heading[:60]}")

# -- 2. header doc coverage (HEADER_DIRS below) ------------------------------

DECL_RE = re.compile(
    r"^(struct|class|enum)\s+\w+"          # type declarations
    r"|^[A-Za-z_][\w:<>,\s*&]*\s+\w+\("    # free function declarations
)
SKIP_RE = re.compile(r"^(using|namespace|#|template|typedef|}|{|//|///|\*|/\*)")

def covered(lines, i):
    """A declaration at line i counts as documented when the nearest
    non-blank line above it is part of a comment."""
    j = i - 1
    while j >= 0 and lines[j].strip() == "":
        j -= 1
    if j < 0:
        return False
    prev = lines[j].strip()
    return prev.startswith(("//", "///", "/*", "*", "*/")) or prev.endswith("*/")

HEADER_DIRS = ["src/graph", "src/inc", "src/mcf", "src/fault", "src/svc",
               "src/svc/durable", "src/te", "src/design"]
for d in HEADER_DIRS:
    for name in sorted(os.listdir(os.path.join(root, d))):
        if not name.endswith(".hpp"):
            continue
        rel = os.path.join(d, name)
        lines = open(os.path.join(root, rel), encoding="utf-8").read().splitlines()
        # File-level comment: a comment line within the first 3 lines.
        head = [l.strip() for l in lines[:3]]
        if not any(l.startswith(("//", "/*")) for l in head):
            fail(f"{rel}: missing file-level comment")
        depth = 0          # brace depth; only depth<=1 (namespace scope) is public API
        in_block_comment = False
        for i, raw in enumerate(lines):
            line = raw.strip()
            if in_block_comment:
                if "*/" in line:
                    in_block_comment = False
                continue
            if line.startswith("/*") and "*/" not in line:
                in_block_comment = True
                continue
            if depth <= 1 and DECL_RE.match(line) and not SKIP_RE.match(line):
                # `else`/`return` lines can false-match the function regex.
                if not line.startswith(("else", "return", "if", "for", "while")):
                    if not covered(lines, i):
                        fail(f"{rel}:{i + 1}: undocumented public declaration: {line[:60]}")
            depth += raw.count("{") - raw.count("}")

# -- 3. README bench catalog completeness -----------------------------------

bench_dir = os.path.join(root, "bench")
benches = sorted(
    f[:-4] for f in os.listdir(bench_dir) if f.startswith("bench_") and f.endswith(".cpp")
)
readme = open(os.path.join(root, "README.md"), encoding="utf-8").read()
for b in benches:
    if b not in readme:
        fail(f"README.md: bench catalog is missing `{b}`")

# ---------------------------------------------------------------------------

if failures:
    print(f"check_docs: FAILED ({len(failures)} problem(s))")
    for f in failures:
        print(f"  {f}")
    sys.exit(1)
print(f"check_docs: OK ({len(MD_FILES)} md files, "
      f"{sum(1 for d in HEADER_DIRS for f in os.listdir(os.path.join(root, d)) if f.endswith('.hpp'))} headers, "
      f"{len(benches)} benches)")
PYEOF
exit $?
