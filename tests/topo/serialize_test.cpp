#include "topo/serialize.hpp"

#include <gtest/gtest.h>

#include "core/flat_tree.hpp"
#include "topo/fat_tree.hpp"

namespace flattree::topo {
namespace {

void expect_equal(const Topology& a, const Topology& b) {
  ASSERT_EQ(a.switch_count(), b.switch_count());
  ASSERT_EQ(a.link_count(), b.link_count());
  ASSERT_EQ(a.server_count(), b.server_count());
  for (NodeId v = 0; v < a.switch_count(); ++v) {
    EXPECT_EQ(a.info(v).kind, b.info(v).kind);
    EXPECT_EQ(a.info(v).pod, b.info(v).pod);
    EXPECT_EQ(a.info(v).index, b.info(v).index);
    EXPECT_EQ(a.info(v).ports, b.info(v).ports);
  }
  for (graph::LinkId l = 0; l < a.link_count(); ++l) {
    EXPECT_EQ(a.graph().link(l).a, b.graph().link(l).a);
    EXPECT_EQ(a.graph().link(l).b, b.graph().link(l).b);
    EXPECT_DOUBLE_EQ(a.graph().link(l).capacity, b.graph().link(l).capacity);
    EXPECT_EQ(a.link_info(l).origin, b.link_info(l).origin);
  }
  for (ServerId s = 0; s < a.server_count(); ++s) EXPECT_EQ(a.host(s), b.host(s));
}

TEST(Serialize, RoundTripFatTree) {
  FatTree ft = build_fat_tree(6);
  Topology parsed = deserialize(serialize(ft.topo));
  expect_equal(ft.topo, parsed);
  EXPECT_NO_THROW(parsed.validate());
}

TEST(Serialize, RoundTripConvertedFlatTree) {
  core::FlatTreeConfig cfg;
  cfg.k = 8;
  core::FlatTreeNetwork net(cfg);
  Topology original = net.build(core::Mode::GlobalRandom);
  Topology parsed = deserialize(serialize(original));
  expect_equal(original, parsed);
}

TEST(Serialize, RoundTripPreservesCapacitiesAndOrigins) {
  Topology t;
  t.add_switch(SwitchKind::Edge, 2, 1, 8);
  t.add_switch(SwitchKind::Core, -1, 0, 4);
  t.add_link(0, 1, LinkOrigin::InterPodSide, 2.5);
  t.add_server(0);
  Topology parsed = deserialize(serialize(t));
  expect_equal(t, parsed);
  EXPECT_EQ(parsed.info(1).pod, -1);
}

TEST(Serialize, RejectsBadMagic) {
  EXPECT_THROW(deserialize("not-a-topology\n"), std::invalid_argument);
}

TEST(Serialize, RejectsTruncatedInput) {
  FatTree ft = build_fat_tree(4);
  std::string text = serialize(ft.topo);
  EXPECT_THROW(deserialize(text.substr(0, text.size() / 2)), std::invalid_argument);
}

TEST(Serialize, RejectsMalformedRows) {
  std::string bad =
      "flattree-topology v1\nswitches 1\nedge zero 0 4\nlinks 0\nservers 0\n";
  EXPECT_THROW(deserialize(bad), std::invalid_argument);
  std::string bad_kind =
      "flattree-topology v1\nswitches 1\nspine 0 0 4\nlinks 0\nservers 0\n";
  EXPECT_THROW(deserialize(bad_kind), std::invalid_argument);
  std::string bad_origin =
      "flattree-topology v1\nswitches 2\nedge 0 0 4\nedge 0 1 4\nlinks 1\n0 1 1.0 "
      "wormhole\nservers 0\n";
  EXPECT_THROW(deserialize(bad_origin), std::invalid_argument);
}

TEST(Serialize, RejectsBadSectionHeader) {
  std::string bad = "flattree-topology v1\nnodes 0\n";
  EXPECT_THROW(deserialize(bad), std::invalid_argument);
}

TEST(Serialize, EmptySectionsAllowed) {
  Topology t;
  t.add_switch(SwitchKind::Edge, 0, 0, 4);
  Topology parsed = deserialize(serialize(t));
  EXPECT_EQ(parsed.switch_count(), 1u);
  EXPECT_EQ(parsed.link_count(), 0u);
  EXPECT_EQ(parsed.server_count(), 0u);
}

}  // namespace
}  // namespace flattree::topo
