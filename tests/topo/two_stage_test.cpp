#include "topo/two_stage.hpp"

#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "topo/apl.hpp"

namespace flattree::topo {
namespace {

class TwoStageParam : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TwoStageParam, SameEquipmentAsFatTree) {
  const std::uint32_t k = GetParam();
  util::Rng rng(k);
  Topology t = build_two_stage_random_graph(k, rng);
  auto counts = t.kind_counts();
  EXPECT_EQ(counts[0], k * k / 4);
  EXPECT_EQ(counts[1], k * k / 2);
  EXPECT_EQ(counts[2], k * k / 2);
  EXPECT_EQ(t.server_count(), k * k * k / 4);
}

TEST_P(TwoStageParam, SameLinkCountAsFatTree) {
  const std::uint32_t k = GetParam();
  util::Rng rng(k + 1);
  Topology t = build_two_stage_random_graph(k, rng);
  // Fat-tree and flat-tree have 2 * k * (k/2)^2 links; the two-stage
  // baseline is built with the same budget (up to one odd leftover port).
  std::size_t expected = 2u * k * (k / 2) * (k / 2);
  EXPECT_GE(t.link_count() + 1, expected);
  EXPECT_LE(t.link_count(), expected);
}

TEST_P(TwoStageParam, ServersStayInTheirPods) {
  const std::uint32_t k = GetParam();
  util::Rng rng(k + 2);
  Topology t = build_two_stage_random_graph(k, rng);
  const std::uint32_t per_pod = k * k / 4;
  for (ServerId s = 0; s < t.server_count(); ++s) {
    std::int32_t pod = t.info(t.host(s)).pod;
    EXPECT_EQ(pod, static_cast<std::int32_t>(s / per_pod));
  }
}

TEST_P(TwoStageParam, NoServersOnCores) {
  const std::uint32_t k = GetParam();
  util::Rng rng(k + 3);
  Topology t = build_two_stage_random_graph(k, rng);
  for (ServerId s = 0; s < t.server_count(); ++s)
    EXPECT_NE(t.info(t.host(s)).kind, SwitchKind::Core);
}

TEST_P(TwoStageParam, IntraPodLinkCountMatchesFlatTree) {
  const std::uint32_t k = GetParam();
  util::Rng rng(k + 4);
  Topology t = build_two_stage_random_graph(k, rng);
  // Count links with both endpoints in the same pod: flat-tree keeps its
  // (k/2)^2 edge-aggregation mesh per pod.
  std::vector<std::size_t> intra(k, 0);
  for (const auto& link : t.graph().links()) {
    std::int32_t pa = t.info(link.a).pod, pb = t.info(link.b).pod;
    if (pa >= 0 && pa == pb) ++intra[static_cast<std::size_t>(pa)];
  }
  for (std::uint32_t pod = 0; pod < k; ++pod)
    EXPECT_EQ(intra[pod], (k / 2) * (k / 2)) << "pod " << pod;
}

TEST_P(TwoStageParam, ValidAndConnected) {
  const std::uint32_t k = GetParam();
  util::Rng rng(k + 5);
  Topology t = build_two_stage_random_graph(k, rng);
  EXPECT_NO_THROW(t.validate());
}

TEST_P(TwoStageParam, UniformServersWithinPods) {
  const std::uint32_t k = GetParam();
  util::Rng rng(k + 6);
  Topology t = build_two_stage_random_graph(k, rng);
  auto w = t.servers_per_switch();
  for (graph::NodeId v = 0; v < t.switch_count(); ++v) {
    if (t.info(v).kind == SwitchKind::Core) {
      EXPECT_EQ(w[v], 0u);
    } else {
      EXPECT_GE(w[v] + 1, k / 4);  // k^2/4 servers over k switches
      EXPECT_LE(w[v], k / 4 + 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TwoStageParam, ::testing::Values(4u, 6u, 8u, 12u));

TEST(TwoStage, RejectsBadK) {
  util::Rng rng(1);
  EXPECT_THROW(build_two_stage_random_graph(5, rng), std::invalid_argument);
  EXPECT_THROW(build_two_stage_random_graph(2, rng), std::invalid_argument);
}

TEST(TwoStage, DeterministicGivenSeed) {
  util::Rng a(99), b(99);
  Topology t1 = build_two_stage_random_graph(6, a);
  Topology t2 = build_two_stage_random_graph(6, b);
  ASSERT_EQ(t1.link_count(), t2.link_count());
  for (graph::LinkId l = 0; l < t1.link_count(); ++l) {
    EXPECT_EQ(t1.graph().link(l).a, t2.graph().link(l).a);
    EXPECT_EQ(t1.graph().link(l).b, t2.graph().link(l).b);
  }
}

}  // namespace
}  // namespace flattree::topo
