#include "topo/topology.hpp"

#include <gtest/gtest.h>

namespace flattree::topo {
namespace {

Topology tiny() {
  Topology t;
  t.add_switch(SwitchKind::Edge, 0, 0, 4);
  t.add_switch(SwitchKind::Aggregation, 0, 0, 4);
  t.add_switch(SwitchKind::Core, -1, 0, 4);
  t.add_link(0, 1, LinkOrigin::ClosEdgeAgg);
  t.add_link(1, 2, LinkOrigin::PodCore);
  t.add_server(0);
  t.add_server(0);
  t.add_server(1);
  return t;
}

TEST(Topology, CountsAndInfo) {
  Topology t = tiny();
  EXPECT_EQ(t.switch_count(), 3u);
  EXPECT_EQ(t.link_count(), 2u);
  EXPECT_EQ(t.server_count(), 3u);
  EXPECT_EQ(t.info(0).kind, SwitchKind::Edge);
  EXPECT_EQ(t.info(2).kind, SwitchKind::Core);
  EXPECT_EQ(t.info(2).pod, -1);
  EXPECT_EQ(t.link_info(0).origin, LinkOrigin::ClosEdgeAgg);
}

TEST(Topology, ServersPerSwitch) {
  Topology t = tiny();
  auto w = t.servers_per_switch();
  EXPECT_EQ(w[0], 2u);
  EXPECT_EQ(w[1], 1u);
  EXPECT_EQ(w[2], 0u);
}

TEST(Topology, ServersOnSwitch) {
  Topology t = tiny();
  auto on0 = t.servers_on(0);
  ASSERT_EQ(on0.size(), 2u);
  EXPECT_EQ(on0[0], 0u);
  EXPECT_EQ(on0[1], 1u);
}

TEST(Topology, MoveServer) {
  Topology t = tiny();
  t.move_server(0, 2);
  EXPECT_EQ(t.host(0), 2u);
  auto w = t.servers_per_switch();
  EXPECT_EQ(w[0], 1u);
  EXPECT_EQ(w[2], 1u);
}

TEST(Topology, MoveServerOutOfRangeThrows) {
  Topology t = tiny();
  EXPECT_THROW(t.move_server(0, 99), std::out_of_range);
}

TEST(Topology, AddServerBadHostThrows) {
  Topology t = tiny();
  EXPECT_THROW(t.add_server(99), std::out_of_range);
}

TEST(Topology, UsedPortsCountsLinksAndServers) {
  Topology t = tiny();
  EXPECT_EQ(t.used_ports(0), 3u);  // 1 link + 2 servers
  EXPECT_EQ(t.used_ports(1), 3u);  // 2 links + 1 server
  EXPECT_EQ(t.used_ports(2), 1u);
}

TEST(Topology, SwitchesOfAndInPod) {
  Topology t = tiny();
  EXPECT_EQ(t.switches_of(SwitchKind::Edge).size(), 1u);
  EXPECT_EQ(t.switches_of(SwitchKind::Core).size(), 1u);
  EXPECT_EQ(t.switches_in_pod(0).size(), 2u);
  EXPECT_EQ(t.switches_in_pod(-1).size(), 1u);
}

TEST(Topology, KindCounts) {
  Topology t = tiny();
  auto counts = t.kind_counts();
  EXPECT_EQ(counts[0], 1u);  // core
  EXPECT_EQ(counts[1], 1u);  // aggregation
  EXPECT_EQ(counts[2], 1u);  // edge
}

TEST(Topology, ValidatePassesWithinBudget) {
  EXPECT_NO_THROW(tiny().validate());
}

TEST(Topology, ValidateRejectsPortOverflow) {
  Topology t;
  t.add_switch(SwitchKind::Edge, 0, 0, 1);
  t.add_switch(SwitchKind::Edge, 0, 1, 4);
  t.add_link(0, 1, LinkOrigin::Random);
  t.add_server(0);  // switch 0 now uses 2 of 1 ports
  EXPECT_THROW(t.validate(), std::runtime_error);
}

TEST(Topology, ValidateRejectsDisconnected) {
  Topology t;
  t.add_switch(SwitchKind::Edge, 0, 0, 4);
  t.add_switch(SwitchKind::Edge, 0, 1, 4);
  EXPECT_THROW(t.validate(), std::runtime_error);
}

TEST(Topology, SummaryMentionsInventory) {
  std::string s = tiny().summary();
  EXPECT_NE(s.find("3 switches"), std::string::npos);
  EXPECT_NE(s.find("3 servers"), std::string::npos);
}

TEST(Topology, ToStringCoverage) {
  EXPECT_STREQ(to_string(SwitchKind::Core), "core");
  EXPECT_STREQ(to_string(SwitchKind::Aggregation), "aggregation");
  EXPECT_STREQ(to_string(SwitchKind::Edge), "edge");
  EXPECT_STREQ(to_string(LinkOrigin::ClosEdgeAgg), "clos-edge-agg");
  EXPECT_STREQ(to_string(LinkOrigin::InterPodSide), "inter-pod-side");
}

}  // namespace
}  // namespace flattree::topo
