#include "topo/fat_tree.hpp"

#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "topo/apl.hpp"

namespace flattree::topo {
namespace {

class FatTreeParam : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FatTreeParam, EquipmentCountsMatchFormulas) {
  const std::uint32_t k = GetParam();
  FatTree ft = build_fat_tree(k);
  auto counts = ft.topo.kind_counts();
  EXPECT_EQ(counts[0], k * k / 4);      // cores
  EXPECT_EQ(counts[1], k * k / 2);      // aggregation
  EXPECT_EQ(counts[2], k * k / 2);      // edge
  EXPECT_EQ(ft.topo.server_count(), k * k * k / 4);
  // Links: k pods x (k/2)^2 edge-agg + same count agg-core.
  EXPECT_EQ(ft.topo.link_count(), 2u * k * (k / 2) * (k / 2));
}

TEST_P(FatTreeParam, EverySwitchPortBudgetExactlyFull) {
  const std::uint32_t k = GetParam();
  FatTree ft = build_fat_tree(k);
  for (graph::NodeId v = 0; v < ft.topo.switch_count(); ++v)
    EXPECT_EQ(ft.topo.used_ports(v), k) << "switch " << v;
}

TEST_P(FatTreeParam, ValidatesAndConnected) {
  FatTree ft = build_fat_tree(GetParam());
  EXPECT_NO_THROW(ft.topo.validate());
}

TEST_P(FatTreeParam, ServersOnlyOnEdgeSwitches) {
  FatTree ft = build_fat_tree(GetParam());
  for (ServerId s = 0; s < ft.topo.server_count(); ++s)
    EXPECT_EQ(ft.topo.info(ft.topo.host(s)).kind, SwitchKind::Edge);
}

TEST_P(FatTreeParam, InterPodServerDistanceIsSix) {
  const std::uint32_t k = GetParam();
  FatTree ft = build_fat_tree(k);
  auto dist = graph::bfs_distances(ft.topo.graph(), ft.topo.host(ft.server(0, 0, 0)));
  // Server in another pod: edge->agg->core->agg->edge = 4 switch hops (+2).
  graph::NodeId other = ft.topo.host(ft.server(1, 0, 0));
  EXPECT_EQ(dist[other], 4u);
}

TEST_P(FatTreeParam, IntraPodDistances) {
  const std::uint32_t k = GetParam();
  FatTree ft = build_fat_tree(k);
  auto dist = graph::bfs_distances(ft.topo.graph(), ft.edge_switch(0, 0));
  // Same-pod edge switches are 2 apart (via any aggregation switch).
  if (k >= 4) EXPECT_EQ(dist[ft.edge_switch(0, 1)], 2u);
  EXPECT_EQ(dist[ft.agg_switch(0, 0)], 1u);
}

TEST_P(FatTreeParam, CoreWiringPattern) {
  const std::uint32_t k = GetParam();
  FatTree ft = build_fat_tree(k);
  const auto& g = ft.topo.graph();
  // Aggregation switch i connects exactly to cores [i*h, (i+1)*h).
  for (std::uint32_t pod = 0; pod < k; ++pod) {
    for (std::uint32_t i = 0; i < k / 2; ++i) {
      for (std::uint32_t c = 0; c < k * k / 4; ++c) {
        bool expected = c >= i * (k / 2) && c < (i + 1) * (k / 2);
        EXPECT_EQ(g.connected(ft.agg_switch(pod, i), ft.core_switch(c)), expected);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FatTreeParam, ::testing::Values(4u, 6u, 8u, 10u, 14u));

TEST(FatTree, RejectsOddOrTinyK) {
  EXPECT_THROW(build_fat_tree(3), std::invalid_argument);
  EXPECT_THROW(build_fat_tree(2), std::invalid_argument);
  EXPECT_THROW(build_fat_tree(5), std::invalid_argument);
  EXPECT_THROW(build_fat_tree(0), std::invalid_argument);
}

TEST(FatTree, IdLayoutHelpers) {
  FatTree ft = build_fat_tree(4);
  // k=4: per pod 2 edges then 2 aggs; cores after all pods.
  EXPECT_EQ(ft.edge_switch(0, 0), 0u);
  EXPECT_EQ(ft.edge_switch(0, 1), 1u);
  EXPECT_EQ(ft.agg_switch(0, 0), 2u);
  EXPECT_EQ(ft.agg_switch(0, 1), 3u);
  EXPECT_EQ(ft.edge_switch(1, 0), 4u);
  EXPECT_EQ(ft.core_switch(0), 16u);
  EXPECT_EQ(ft.server(0, 0, 0), 0u);
  EXPECT_EQ(ft.server(0, 1, 0), 2u);
  EXPECT_EQ(ft.server(1, 0, 0), 4u);
}

TEST(FatTree, ServerIdsAreConsecutiveWithinEdges) {
  FatTree ft = build_fat_tree(6);
  const auto& p = ft.params;
  for (std::uint32_t pod = 0; pod < p.pods(); ++pod)
    for (std::uint32_t j = 0; j < p.d(); ++j)
      for (std::uint32_t s = 0; s < p.servers_per_edge(); ++s)
        EXPECT_EQ(ft.topo.host(ft.server(pod, j, s)), ft.edge_switch(pod, j));
}

TEST(FatTree, AplMatchesClosedForm) {
  // Fat-tree server APL closed form: pairs on same edge (2), same pod
  // different edge (4), inter-pod (6), weighted by pair counts.
  const std::uint32_t k = 8;
  FatTree ft = build_fat_tree(k);
  double n = k * k * k / 4.0;
  double per_edge = k / 2.0, per_pod = k * k / 4.0;
  double pairs = n * (n - 1) / 2.0;
  double same_edge = n * (per_edge - 1) / 2.0;
  double same_pod = n * (per_pod - per_edge) / 2.0;
  double inter_pod = pairs - same_edge - same_pod;
  double expect = (2 * same_edge + 4 * same_pod + 6 * inter_pod) / pairs;
  auto apl = server_apl(ft.topo);
  EXPECT_NEAR(apl.average, expect, 1e-9);
  EXPECT_EQ(apl.pairs, static_cast<std::uint64_t>(pairs));
  EXPECT_EQ(apl.max_dist, 6u);
}

TEST(ClosParams, DerivedQuantities) {
  ClosParams p;
  p.k = 12;
  EXPECT_EQ(p.pods(), 12u);
  EXPECT_EQ(p.d(), 6u);
  EXPECT_EQ(p.aggs_per_pod(), 6u);
  EXPECT_EQ(p.h(), 6u);
  EXPECT_EQ(p.cores(), 36u);
  EXPECT_EQ(p.servers_per_pod(), 36u);
  EXPECT_EQ(p.total_servers(), 432u);
  EXPECT_EQ(p.total_switches(), 12u * 12u + 36u);
}

}  // namespace
}  // namespace flattree::topo
