#include "topo/debruijn.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "graph/bfs.hpp"

namespace flattree::topo {
namespace {

TEST(DeBruijn, BinaryShapeMatchesTheDefinition) {
  // B(2, 4): 16 switches, degree <= 4, diameter exactly the dimension.
  Topology t = build_debruijn(2, 4, 32, 8);
  EXPECT_EQ(t.switch_count(), 16u);
  EXPECT_EQ(t.server_count(), 32u);
  EXPECT_TRUE(graph::is_connected(t.graph()));
  EXPECT_NO_THROW(t.validate());

  std::uint32_t diameter = 0;
  for (graph::NodeId v = 0; v < t.switch_count(); ++v) {
    EXPECT_LE(t.graph().degree(v), 4u) << "switch " << v;
    for (std::uint32_t d : graph::bfs_distances(t.graph(), v))
      diameter = std::max(diameter, d);
  }
  EXPECT_EQ(diameter, 4u);
}

TEST(DeBruijn, ServersRoundRobinAndLinksAreRandomOrigin) {
  Topology t = build_debruijn(2, 3, 20, 8);
  ASSERT_EQ(t.switch_count(), 8u);
  for (ServerId s = 0; s < t.server_count(); ++s)
    EXPECT_EQ(t.host(s), s % 8u) << "server " << s;
  for (graph::LinkId l = 0; l < t.link_count(); ++l)
    EXPECT_EQ(t.link_info(l).origin, LinkOrigin::Random);
}

TEST(DeBruijn, DeterministicWiring) {
  Topology a = build_debruijn(3, 3, 40, 10);
  Topology b = build_debruijn(3, 3, 40, 10);
  ASSERT_EQ(a.link_count(), b.link_count());
  for (graph::LinkId l = 0; l < a.link_count(); ++l) {
    EXPECT_EQ(a.graph().link(l).a, b.graph().link(l).a);
    EXPECT_EQ(a.graph().link(l).b, b.graph().link(l).b);
  }
}

TEST(DeBruijn, RejectsDegenerateParameters) {
  EXPECT_THROW(build_debruijn(1, 3, 8, 8), std::invalid_argument);   // alphabet
  EXPECT_THROW(build_debruijn(2, 0, 8, 8), std::invalid_argument);   // dimension
  EXPECT_THROW(build_debruijn(2, 23, 8, 8), std::invalid_argument);  // 2^23 switches
  // Port budget too small for degree + server load (validate() trips).
  EXPECT_THROW(build_debruijn(2, 3, 800, 4), std::runtime_error);
}

TEST(DeBruijnLikeFatTree, NearEquipmentParityAgainstK) {
  for (std::uint32_t k : {4u, 8u}) {
    Topology t = build_debruijn_like_fat_tree(k);
    // 2^n switches within the fat-tree's 5k^2/4 switch budget.
    EXPECT_LE(t.switch_count(), 5u * k * k / 4);
    EXPECT_GE(2 * t.switch_count(), 5u * k * k / 4);  // largest such power of two
    EXPECT_EQ(t.server_count(), k * k * k / 4);       // same server-id space
    EXPECT_TRUE(graph::is_connected(t.graph()));
    EXPECT_NO_THROW(t.validate());
  }
}

TEST(DeBruijnLikeFatTree, RequiresEvenKAtLeastFour) {
  EXPECT_THROW(build_debruijn_like_fat_tree(2), std::invalid_argument);
  EXPECT_THROW(build_debruijn_like_fat_tree(5), std::invalid_argument);
}

}  // namespace
}  // namespace flattree::topo
