#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "topo/apl.hpp"
#include "topo/fat_tree.hpp"

namespace flattree::topo {
namespace {

/// 3:1 oversubscribed layout: 6 pods, 4 edges/pod, r = 2 (2 aggregations),
/// h = 4 uplinks, 6 servers per edge vs 2 effective uplinks per edge.
ClosParams oversubscribed() {
  return ClosParams::make_generic(/*pods=*/6, /*d=*/4, /*r=*/2, /*h=*/4,
                                  /*servers_per_edge=*/6, /*edge_ports=*/8,
                                  /*agg_ports=*/8, /*core_ports=*/6);
}

TEST(GenericClos, FatTreeFactoryMatchesDefault) {
  ClosParams a = ClosParams::fat_tree(8);
  ClosParams b;
  b.k = 8;
  EXPECT_EQ(a.pods(), b.pods());
  EXPECT_EQ(a.d(), b.d());
  EXPECT_EQ(a.cores(), b.cores());
  EXPECT_EQ(a.edge_ports(), 8u);
  EXPECT_FALSE(a.is_generic());
  EXPECT_DOUBLE_EQ(a.oversubscription(), 1.0);
}

TEST(GenericClos, DerivedQuantities) {
  ClosParams p = oversubscribed();
  EXPECT_TRUE(p.is_generic());
  EXPECT_EQ(p.pods(), 6u);
  EXPECT_EQ(p.d(), 4u);
  EXPECT_EQ(p.aggs_per_pod(), 2u);
  EXPECT_EQ(p.h(), 4u);
  EXPECT_EQ(p.cores(), 8u);  // d * h/r = 4 * 2
  EXPECT_EQ(p.servers_per_pod(), 24u);
  EXPECT_EQ(p.total_servers(), 144u);
  EXPECT_DOUBLE_EQ(p.oversubscription(), 3.0);
}

TEST(GenericClos, ValidationRejectsBadLayouts) {
  EXPECT_THROW(ClosParams::make_generic(1, 4, 2, 4, 6, 8, 8, 6), std::invalid_argument);
  EXPECT_THROW(ClosParams::make_generic(6, 5, 2, 4, 6, 8, 9, 6), std::invalid_argument);
  EXPECT_THROW(ClosParams::make_generic(6, 4, 2, 3, 6, 8, 7, 6), std::invalid_argument);
  // Edge ports too small (needs servers + d/r = 6 + 2 = 8).
  EXPECT_THROW(ClosParams::make_generic(6, 4, 2, 4, 6, 7, 8, 6), std::invalid_argument);
  // Aggregation ports too small (needs d + h = 8).
  EXPECT_THROW(ClosParams::make_generic(6, 4, 2, 4, 6, 8, 7, 6), std::invalid_argument);
  // Core ports below pod count.
  EXPECT_THROW(ClosParams::make_generic(6, 4, 2, 4, 6, 8, 8, 5), std::invalid_argument);
  EXPECT_THROW(ClosParams::make_generic(6, 4, 0, 4, 6, 8, 8, 6), std::invalid_argument);
}

TEST(BuildClos, OversubscribedCountsAndValidation) {
  FatTree net = build_clos(oversubscribed());
  auto counts = net.topo.kind_counts();
  EXPECT_EQ(counts[0], 8u);   // cores
  EXPECT_EQ(counts[1], 12u);  // aggregations: 6 pods x 2
  EXPECT_EQ(counts[2], 24u);  // edges: 6 pods x 4
  EXPECT_EQ(net.topo.server_count(), 144u);
  // Links: per pod 4*2 mesh + 2*4 uplinks = 16; x6 pods = 96.
  EXPECT_EQ(net.topo.link_count(), 96u);
  EXPECT_NO_THROW(net.topo.validate());
}

TEST(BuildClos, PerLayerPortBudgets) {
  FatTree net = build_clos(oversubscribed());
  for (NodeId v = 0; v < net.topo.switch_count(); ++v) {
    const SwitchInfo& info = net.topo.info(v);
    switch (info.kind) {
      case SwitchKind::Edge:
        EXPECT_EQ(info.ports, 8u);
        EXPECT_EQ(net.topo.used_ports(v), 8u);  // 6 servers + 2 aggs
        break;
      case SwitchKind::Aggregation:
        EXPECT_EQ(info.ports, 8u);
        EXPECT_EQ(net.topo.used_ports(v), 8u);  // 4 edges + 4 cores
        break;
      case SwitchKind::Core:
        EXPECT_EQ(info.ports, 6u);
        EXPECT_EQ(net.topo.used_ports(v), 6u);  // one per pod
        break;
    }
  }
}

TEST(BuildClos, CoreWiringGroupsByAggregation) {
  FatTree net = build_clos(oversubscribed());
  const auto& g = net.topo.graph();
  for (std::uint32_t pod = 0; pod < 6; ++pod) {
    for (std::uint32_t i = 0; i < 2; ++i) {
      for (std::uint32_t c = 0; c < 8; ++c) {
        bool expected = c >= i * 4 && c < (i + 1) * 4;
        EXPECT_EQ(g.connected(net.agg_switch(pod, i), net.core_switch(c)), expected);
      }
    }
  }
}

TEST(BuildClos, OversubscriptionShowsInPathCapacityNotLength) {
  // Path lengths match the balanced structure; the penalty is bandwidth.
  FatTree net = build_clos(oversubscribed());
  auto dist = graph::bfs_distances(net.topo.graph(), net.edge_switch(0, 0));
  EXPECT_EQ(dist[net.edge_switch(1, 0)], 4u);  // edge-agg-core-agg-edge
  EXPECT_EQ(dist[net.edge_switch(0, 1)], 2u);
}

TEST(BuildClos, ServerIdLayoutHolds) {
  FatTree net = build_clos(oversubscribed());
  EXPECT_EQ(net.server(0, 0, 0), 0u);
  EXPECT_EQ(net.server(0, 1, 0), 6u);
  EXPECT_EQ(net.server(1, 0, 0), 24u);
  for (std::uint32_t s = 0; s < 6; ++s)
    EXPECT_EQ(net.topo.host(net.server(2, 3, s)), net.edge_switch(2, 3));
}

}  // namespace
}  // namespace flattree::topo
