#include "topo/apl.hpp"

#include <gtest/gtest.h>

#include "topo/fat_tree.hpp"

namespace flattree::topo {
namespace {

Topology two_switch() {
  Topology t;
  t.add_switch(SwitchKind::Edge, 0, 0, 4);
  t.add_switch(SwitchKind::Edge, 0, 1, 4);
  t.add_link(0, 1, LinkOrigin::Random);
  t.add_server(0);
  t.add_server(0);
  t.add_server(1);
  return t;
}

TEST(ServerApl, TinyTopologyExact) {
  Topology t = two_switch();
  // Pairs: (s0,s1) same switch = 2; (s0,s2), (s1,s2) = 1 hop + 2 = 3.
  auto r = server_apl(t);
  EXPECT_EQ(r.pairs, 3u);
  EXPECT_DOUBLE_EQ(r.average, (2.0 + 3.0 + 3.0) / 3.0);
}

TEST(ServerAplSubset, OnlySubsetPairsCounted) {
  Topology t = two_switch();
  auto r = server_apl_subset(t, {0, 2});
  EXPECT_EQ(r.pairs, 1u);
  EXPECT_DOUBLE_EQ(r.average, 3.0);
}

TEST(ServerAplSubset, SubsetOfOneGivesZeroPairs) {
  Topology t = two_switch();
  auto r = server_apl_subset(t, {0});
  EXPECT_EQ(r.pairs, 0u);
  EXPECT_DOUBLE_EQ(r.average, 0.0);
}

TEST(ServerAplGrouped, MatchesManualCombination) {
  FatTree ft = build_fat_tree(4);
  std::vector<std::vector<ServerId>> groups;
  for (std::uint32_t pod = 0; pod < 4; ++pod) {
    std::vector<ServerId> g;
    for (std::uint32_t s = 0; s < 4; ++s) g.push_back(pod * 4 + s);
    groups.push_back(g);
  }
  auto grouped = server_apl_grouped(ft.topo, groups);
  // Combine by hand.
  long double total = 0;
  std::uint64_t pairs = 0;
  for (const auto& g : groups) {
    auto r = server_apl_subset(ft.topo, g);
    total += static_cast<long double>(r.average) * r.pairs;
    pairs += r.pairs;
  }
  EXPECT_EQ(grouped.pairs, pairs);
  EXPECT_NEAR(grouped.average, static_cast<double>(total / pairs), 1e-12);
}

TEST(ServerAplGrouped, IntraPodFatTreeValue) {
  // Within a fat-tree pod: same-edge pairs distance 2, cross-edge 4.
  FatTree ft = build_fat_tree(8);
  std::vector<ServerId> pod0;
  for (std::uint32_t s = 0; s < ft.params.servers_per_pod(); ++s) pod0.push_back(s);
  auto r = server_apl_subset(ft.topo, pod0);
  double per_edge = 4, n = 16;
  double same_edge = n * (per_edge - 1) / 2;
  double pairs = n * (n - 1) / 2;
  double expect = (2 * same_edge + 4 * (pairs - same_edge)) / pairs;
  EXPECT_NEAR(r.average, expect, 1e-12);
}

TEST(ServerAplGrouped, SkipsTinyGroups) {
  Topology t = two_switch();
  auto r = server_apl_grouped(t, {{0}, {1, 2}});
  EXPECT_EQ(r.pairs, 1u);
}

}  // namespace
}  // namespace flattree::topo
