#include "topo/dot.hpp"

#include <gtest/gtest.h>

#include "core/flat_tree.hpp"
#include "topo/fat_tree.hpp"

namespace flattree::topo {
namespace {

TEST(Dot, ContainsAllSwitchesAndLinks) {
  FatTree ft = build_fat_tree(4);
  std::string dot = to_dot(ft.topo);
  EXPECT_NE(dot.find("graph flattree {"), std::string::npos);
  // Every edge/agg/core switch named once as a node declaration.
  EXPECT_NE(dot.find("E0_0"), std::string::npos);
  EXPECT_NE(dot.find("A3_1"), std::string::npos);
  EXPECT_NE(dot.find("C3"), std::string::npos);
  // Link count: number of " -- " occurrences equals links (no servers).
  std::size_t count = 0;
  for (std::size_t pos = dot.find(" -- "); pos != std::string::npos;
       pos = dot.find(" -- ", pos + 1))
    ++count;
  EXPECT_EQ(count, ft.topo.link_count());
}

TEST(Dot, PodClustersEmitted) {
  FatTree ft = build_fat_tree(4);
  std::string dot = to_dot(ft.topo);
  EXPECT_NE(dot.find("subgraph cluster_pod0"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_pod3"), std::string::npos);
  DotOptions flat;
  flat.cluster_pods = false;
  EXPECT_EQ(to_dot(ft.topo, flat).find("subgraph"), std::string::npos);
}

TEST(Dot, ServersOptIn) {
  FatTree ft = build_fat_tree(4);
  EXPECT_EQ(to_dot(ft.topo).find("s0"), std::string::npos);
  DotOptions with_servers;
  with_servers.include_servers = true;
  std::string dot = to_dot(ft.topo, with_servers);
  EXPECT_NE(dot.find("s0 -- "), std::string::npos);
  EXPECT_NE(dot.find("s15 -- "), std::string::npos);
}

TEST(Dot, SideLinksRenderedBold) {
  core::FlatTreeConfig cfg;
  cfg.k = 8;
  core::FlatTreeNetwork net(cfg);
  std::string dot = to_dot(net.build(core::Mode::GlobalRandom));
  EXPECT_NE(dot.find("[style=bold]"), std::string::npos);    // inter-pod side
  EXPECT_NE(dot.find("[style=dashed]"), std::string::npos);  // converter-local
}

TEST(Dot, ClosedAndParseableShape) {
  FatTree ft = build_fat_tree(4);
  std::string dot = to_dot(ft.topo);
  EXPECT_EQ(dot.back(), '\n');
  EXPECT_NE(dot.rfind("}\n"), std::string::npos);
  // Balanced braces.
  long depth = 0;
  for (char ch : dot) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace flattree::topo
