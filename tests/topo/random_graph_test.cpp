#include "topo/random_graph.hpp"

#include <gtest/gtest.h>

#include <map>

#include "graph/bfs.hpp"
#include "topo/apl.hpp"

namespace flattree::topo {
namespace {

TEST(RandomSimplePairing, RegularDegreesNoSelfNoParallel) {
  util::Rng rng(1);
  std::vector<std::uint32_t> stubs(20, 4);
  auto pairs = random_simple_pairing(stubs, rng);
  EXPECT_EQ(pairs.size(), 40u);
  std::vector<std::uint32_t> degree(20, 0);
  std::map<std::pair<NodeId, NodeId>, int> seen;
  for (auto [a, b] : pairs) {
    EXPECT_NE(a, b);
    ++degree[a];
    ++degree[b];
    auto key = std::minmax(a, b);
    int prior = seen[{key.first, key.second}]++;
    EXPECT_EQ(prior, 0) << "parallel link";
  }
  for (auto d : degree) EXPECT_EQ(d, 4u);
}

TEST(RandomSimplePairing, OddStubSumLeavesOneIdle) {
  util::Rng rng(2);
  std::vector<std::uint32_t> stubs{3, 2, 2};  // sum 7
  auto pairs = random_simple_pairing(stubs, rng);
  EXPECT_EQ(pairs.size(), 3u);
}

TEST(RandomSimplePairing, HeterogeneousStubs) {
  util::Rng rng(3);
  std::vector<std::uint32_t> stubs{1, 2, 3, 4, 2, 2};
  auto pairs = random_simple_pairing(stubs, rng);
  std::vector<std::uint32_t> degree(6, 0);
  for (auto [a, b] : pairs) {
    ++degree[a];
    ++degree[b];
  }
  for (std::size_t v = 0; v < 6; ++v) EXPECT_LE(degree[v], stubs[v]);
  EXPECT_EQ(pairs.size(), 7u);  // sum 14 / 2
}

TEST(RandomSimplePairing, ZeroStubsEverywhere) {
  util::Rng rng(4);
  std::vector<std::uint32_t> stubs(5, 0);
  EXPECT_TRUE(random_simple_pairing(stubs, rng).empty());
}

TEST(RandomSimplePairing, DifferentSeedsDifferentGraphs) {
  std::vector<std::uint32_t> stubs(16, 3);
  util::Rng r1(10), r2(20);
  auto p1 = random_simple_pairing(stubs, r1);
  auto p2 = random_simple_pairing(stubs, r2);
  EXPECT_NE(p1, p2);
}

TEST(BuildRandomGraph, ServersRoundRobin) {
  util::Rng rng(5);
  Topology t = build_random_graph(10, 6, 23, rng);
  auto w = t.servers_per_switch();
  for (std::size_t v = 0; v < 10; ++v) {
    EXPECT_GE(w[v], 2u);
    EXPECT_LE(w[v], 3u);
  }
  EXPECT_EQ(t.server_count(), 23u);
}

TEST(BuildRandomGraph, PortBudgetRespected) {
  util::Rng rng(6);
  Topology t = build_random_graph(12, 5, 12, rng);
  EXPECT_NO_THROW(t.validate());
  for (graph::NodeId v = 0; v < t.switch_count(); ++v) EXPECT_LE(t.used_ports(v), 5u);
}

TEST(BuildRandomGraph, Connected) {
  util::Rng rng(7);
  Topology t = build_random_graph(30, 4, 30, rng);
  EXPECT_TRUE(graph::is_connected(t.graph()));
}

TEST(BuildRandomGraph, TooManyServersThrows) {
  util::Rng rng(8);
  EXPECT_THROW(build_random_graph(2, 2, 10, rng), std::invalid_argument);
}

class JellyfishParam : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(JellyfishParam, SameEquipmentAsFatTree) {
  const std::uint32_t k = GetParam();
  util::Rng rng(k);
  Topology t = build_jellyfish_like_fat_tree(k, rng);
  auto counts = t.kind_counts();
  EXPECT_EQ(counts[0], k * k / 4);
  EXPECT_EQ(counts[1], k * k / 2);
  EXPECT_EQ(counts[2], k * k / 2);
  EXPECT_EQ(t.server_count(), k * k * k / 4);
}

TEST_P(JellyfishParam, NearUniformServerSpread) {
  const std::uint32_t k = GetParam();
  util::Rng rng(k + 1);
  Topology t = build_jellyfish_like_fat_tree(k, rng);
  auto w = t.servers_per_switch();
  std::uint32_t lo = ~0u, hi = 0;
  for (auto c : w) {
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST_P(JellyfishParam, ValidAndConnected) {
  const std::uint32_t k = GetParam();
  util::Rng rng(k + 2);
  Topology t = build_jellyfish_like_fat_tree(k, rng);
  EXPECT_NO_THROW(t.validate());
}

TEST_P(JellyfishParam, AllPortsUsedUpToParity) {
  const std::uint32_t k = GetParam();
  util::Rng rng(k + 3);
  Topology t = build_jellyfish_like_fat_tree(k, rng);
  std::size_t total_used = 0;
  for (graph::NodeId v = 0; v < t.switch_count(); ++v) {
    EXPECT_LE(t.used_ports(v), k);
    total_used += t.used_ports(v);
  }
  std::size_t budget = t.switch_count() * k;
  EXPECT_GE(total_used + 1, budget);  // at most one idle port (odd stub sum)
}

TEST_P(JellyfishParam, ShorterPathsThanFatTree) {
  const std::uint32_t k = GetParam();
  util::Rng rng(k + 4);
  Topology rg = build_jellyfish_like_fat_tree(k, rng);
  FatTree ft = build_fat_tree(k);
  EXPECT_LT(server_apl(rg).average, server_apl(ft.topo).average);
}

INSTANTIATE_TEST_SUITE_P(Sizes, JellyfishParam, ::testing::Values(4u, 6u, 8u, 12u));

TEST(Jellyfish, RejectsBadK) {
  util::Rng rng(1);
  EXPECT_THROW(build_jellyfish_like_fat_tree(3, rng), std::invalid_argument);
  EXPECT_THROW(build_jellyfish_like_fat_tree(2, rng), std::invalid_argument);
}

}  // namespace
}  // namespace flattree::topo
