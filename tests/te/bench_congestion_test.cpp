// End-to-end checks of the bench_congestion binary (ISSUE 7): stdout must
// be byte-identical across --threads counts and with --metrics-json on or
// off (the house invariant every bench carries), and --summary-json must
// emit valid flattree.bench_te.v1 JSON. Skips cleanly when the binary is
// not built.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hpp"

namespace flattree {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f != nullptr) std::fclose(f);
  return f != nullptr;
}

/// Small, fast configuration shared by every invocation.
const char* kArgs = " --k 4 --train 8 --sources 6 --a2a 6";

std::string bench_bin() { return std::string(FT_BENCH_DIR) + "/bench_congestion"; }

int run_to(const std::string& extra, const std::string& out_path) {
  std::string cmd = bench_bin() + kArgs + " " + extra + " > " + out_path + " 2>/dev/null";
  return std::system(cmd.c_str());
}

TEST(BenchCongestion, StdoutByteIdenticalAcrossThreadsAndObs) {
  if (!file_exists(bench_bin())) GTEST_SKIP() << "bench binary not built";
  std::string dir = testing::TempDir();
  std::string t1 = dir + "congestion_t1.txt";
  std::string t8 = dir + "congestion_t8.txt";
  std::string obs = dir + "congestion_obs.txt";
  std::string manifest = dir + "congestion_manifest.json";
  ASSERT_EQ(run_to("--threads 1", t1), 0);
  ASSERT_EQ(run_to("--threads 8", t8), 0);
  ASSERT_EQ(run_to("--threads 8 --metrics-json " + manifest, obs), 0);
  std::string base = slurp(t1);
  ASSERT_FALSE(base.empty());
  EXPECT_EQ(base, slurp(t8));
  EXPECT_EQ(base, slurp(obs));
  // The manifest itself must be valid JSON.
  obs::JsonValue doc;
  obs::JsonError err;
  EXPECT_TRUE(obs::json_parse(slurp(manifest), doc, &err)) << err.message;
  for (const std::string& p : {t1, t8, obs, manifest}) std::remove(p.c_str());
}

TEST(BenchCongestion, SummaryJsonIsValidAndStable) {
  if (!file_exists(bench_bin())) GTEST_SKIP() << "bench binary not built";
  std::string dir = testing::TempDir();
  std::string out = dir + "congestion_out.txt";
  std::string s1 = dir + "congestion_s1.json";
  std::string s2 = dir + "congestion_s2.json";
  ASSERT_EQ(run_to("--threads 1 --summary-json " + s1, out), 0);
  ASSERT_EQ(run_to("--threads 8 --summary-json " + s2, out), 0);
  std::string doc1 = slurp(s1);
  EXPECT_EQ(doc1, slurp(s2));  // summary is part of the determinism contract
  obs::JsonValue doc;
  obs::JsonError err;
  ASSERT_TRUE(obs::json_parse(doc1, doc, &err)) << err.message;
  ASSERT_NE(doc.find("schema"), nullptr);
  EXPECT_EQ(doc.find("schema")->as_string(), "flattree.bench_te.v1");
  ASSERT_NE(doc.find("cases"), nullptr);
  const auto& cases = doc.find("cases")->array();
  // 4 topologies x 3 workloads x 2 schemes.
  EXPECT_EQ(cases.size(), 24u);
  for (const auto& c : cases) {
    ASSERT_NE(c.find("scheme"), nullptr);
    ASSERT_NE(c.find("injected"), nullptr);
    EXPECT_GT(c.find("injected")->as_number(), 0.0);
  }
  ASSERT_NE(doc.find("digest"), nullptr);
  for (const std::string& p : {out, s1, s2}) std::remove(p.c_str());
}

TEST(BenchCongestion, DropTailAndDctcpRowsShareTheWorkload) {
  if (!file_exists(bench_bin())) GTEST_SKIP() << "bench binary not built";
  std::string dir = testing::TempDir();
  std::string out = dir + "congestion_pairs.txt";
  std::string sj = dir + "congestion_pairs.json";
  ASSERT_EQ(run_to("--summary-json " + sj, out), 0);
  obs::JsonValue doc;
  ASSERT_TRUE(obs::json_parse(slurp(sj), doc, nullptr));
  const auto& cases = doc.find("cases")->array();
  // Consecutive rows are the drop-tail / dctcp pair for the same
  // (topology, workload): they must inject the identical packet count —
  // the schemes may differ only where congestion control differs.
  for (std::size_t i = 0; i + 1 < cases.size(); i += 2) {
    EXPECT_EQ(cases[i].find("scheme")->as_string(), "drop-tail");
    EXPECT_EQ(cases[i + 1].find("scheme")->as_string(), "dctcp");
    EXPECT_EQ(cases[i].find("topology")->as_string(),
              cases[i + 1].find("topology")->as_string());
    EXPECT_EQ(cases[i].find("workload")->as_string(),
              cases[i + 1].find("workload")->as_string());
    EXPECT_EQ(cases[i].find("injected")->as_int(),
              cases[i + 1].find("injected")->as_int());
    EXPECT_EQ(cases[i].find("ecn_marked")->as_int(), 0);  // drop-tail never marks
  }
  for (const std::string& p : {out, sj}) std::remove(p.c_str());
}

}  // namespace
}  // namespace flattree
