#include "te/flowlet.hpp"

#include <gtest/gtest.h>

namespace flattree::te {
namespace {

TEST(Flowlet, DisabledGapIsIdentity) {
  FlowletTable off(0.0);
  EXPECT_EQ(off.salt(7, 0.0), 7u);
  EXPECT_EQ(off.salt(7, 100.0), 7u);  // even across huge gaps
  EXPECT_EQ(off.switches(), 0u);
  FlowletTable negative(-1.0);
  EXPECT_EQ(negative.salt(7, 0.0), 7u);
}

TEST(Flowlet, FirstFlowletKeepsTheFlowId) {
  FlowletTable table(1.0);
  // Back-to-back packets stay in flowlet 0: enabling the feature changes
  // nothing until a gap actually occurs.
  EXPECT_EQ(table.salt(42, 0.0), 42u);
  EXPECT_EQ(table.salt(42, 0.5), 42u);
  EXPECT_EQ(table.salt(42, 1.4), 42u);  // gap 0.9 < 1.0
  EXPECT_EQ(table.switches(), 0u);
  EXPECT_EQ(table.flows(), 1u);
}

TEST(Flowlet, GapStartsNewFlowletWithNewSalt) {
  FlowletTable table(1.0);
  std::uint64_t first = table.salt(42, 0.0);
  std::uint64_t second = table.salt(42, 2.0);  // gap 2.0 > 1.0
  EXPECT_EQ(first, 42u);
  EXPECT_NE(second, first);
  EXPECT_EQ(table.switches(), 1u);
  // The new salt is sticky until the next gap.
  EXPECT_EQ(table.salt(42, 2.5), second);
  std::uint64_t third = table.salt(42, 10.0);
  EXPECT_NE(third, second);
  EXPECT_NE(third, first);
  EXPECT_EQ(table.switches(), 2u);
}

TEST(Flowlet, DeterministicAcrossTables) {
  FlowletTable a(0.5), b(0.5);
  for (double t : {0.0, 0.2, 1.0, 1.1, 3.0, 3.2, 9.0})
    EXPECT_EQ(a.salt(11, t), b.salt(11, t));
  EXPECT_EQ(a.switches(), b.switches());
}

TEST(Flowlet, FlowsTrackedIndependently) {
  FlowletTable table(1.0);
  table.salt(1, 0.0);
  table.salt(2, 0.0);
  // Flow 1 pauses past the gap; flow 2 keeps sending.
  table.salt(2, 0.9);
  std::uint64_t s1 = table.salt(1, 5.0);
  std::uint64_t s2 = table.salt(2, 1.5);
  EXPECT_NE(s1, 1u);   // flow 1 re-hashed
  EXPECT_EQ(s2, 2u);   // flow 2 still in flowlet 0
  EXPECT_EQ(table.flows(), 2u);
  EXPECT_EQ(table.switches(), 1u);
}

TEST(Flowlet, SaltsDifferAcrossFlowsAtSameIndex) {
  // Two flows in flowlet 1 must not collapse onto the same salt (the salt
  // mixes the flow id into the substream, not just the index).
  FlowletTable table(1.0);
  table.salt(5, 0.0);
  table.salt(6, 0.0);
  std::uint64_t s5 = table.salt(5, 3.0);
  std::uint64_t s6 = table.salt(6, 3.0);
  EXPECT_NE(s5, s6);
}

}  // namespace
}  // namespace flattree::te
