#include "te/flowlet.hpp"

#include <gtest/gtest.h>

namespace flattree::te {
namespace {

TEST(Flowlet, DisabledGapIsIdentity) {
  FlowletTable off(0.0);
  EXPECT_EQ(off.salt(7, 0.0), 7u);
  EXPECT_EQ(off.salt(7, 100.0), 7u);  // even across huge gaps
  EXPECT_EQ(off.switches(), 0u);
  FlowletTable negative(-1.0);
  EXPECT_EQ(negative.salt(7, 0.0), 7u);
}

TEST(Flowlet, FirstFlowletKeepsTheFlowId) {
  FlowletTable table(1.0);
  // Back-to-back packets stay in flowlet 0: enabling the feature changes
  // nothing until a gap actually occurs.
  EXPECT_EQ(table.salt(42, 0.0), 42u);
  EXPECT_EQ(table.salt(42, 0.5), 42u);
  EXPECT_EQ(table.salt(42, 1.4), 42u);  // gap 0.9 < 1.0
  EXPECT_EQ(table.switches(), 0u);
  EXPECT_EQ(table.flows(), 1u);
}

TEST(Flowlet, GapStartsNewFlowletWithNewSalt) {
  FlowletTable table(1.0);
  std::uint64_t first = table.salt(42, 0.0);
  std::uint64_t second = table.salt(42, 2.0);  // gap 2.0 > 1.0
  EXPECT_EQ(first, 42u);
  EXPECT_NE(second, first);
  EXPECT_EQ(table.switches(), 1u);
  // The new salt is sticky until the next gap.
  EXPECT_EQ(table.salt(42, 2.5), second);
  std::uint64_t third = table.salt(42, 10.0);
  EXPECT_NE(third, second);
  EXPECT_NE(third, first);
  EXPECT_EQ(table.switches(), 2u);
}

TEST(Flowlet, DeterministicAcrossTables) {
  FlowletTable a(0.5), b(0.5);
  for (double t : {0.0, 0.2, 1.0, 1.1, 3.0, 3.2, 9.0})
    EXPECT_EQ(a.salt(11, t), b.salt(11, t));
  EXPECT_EQ(a.switches(), b.switches());
}

TEST(Flowlet, FlowsTrackedIndependently) {
  FlowletTable table(1.0);
  table.salt(1, 0.0);
  table.salt(2, 0.0);
  // Flow 1 pauses past the gap; flow 2 keeps sending.
  table.salt(2, 0.9);
  std::uint64_t s1 = table.salt(1, 5.0);
  std::uint64_t s2 = table.salt(2, 1.5);
  EXPECT_NE(s1, 1u);   // flow 1 re-hashed
  EXPECT_EQ(s2, 2u);   // flow 2 still in flowlet 0
  EXPECT_EQ(table.flows(), 2u);
  EXPECT_EQ(table.switches(), 1u);
}

TEST(Flowlet, LongRunMemoryStaysBounded) {
  // A DES-length stream of short-lived flows: without eviction the table
  // kept one entry per flow forever. With a cap of 64 the sweep must keep
  // the table near the cap while counting every eviction.
  FlowletTable table(1.0, /*max_flows=*/64);
  double now = 0.0;
  for (std::uint64_t flow = 0; flow < 10000; ++flow) {
    now += 0.5;
    table.salt(flow, now);      // each flow sends two packets...
    table.salt(flow, now + 0.1);  // ...and then goes idle forever
  }
  // Survivors are only flows within the 8-gap eviction horizon of the last
  // sweep; the table can exceed the cap by at most the sweep hysteresis
  // (cap + cap/2), never grow with the flow count.
  EXPECT_LE(table.flows(), 64u + 32u);
  EXPECT_GT(table.evictions(), 9000u);
  EXPECT_EQ(table.switches(), 0u);  // no flow ever paused within its life
}

TEST(Flowlet, EvictionPreservesLiveFlowSalts) {
  // One long-lived flow with gaps, salted identically by an unbounded
  // table and by a tiny capped table under churn from one-shot flows.
  FlowletTable unbounded(1.0);
  FlowletTable capped(1.0, /*max_flows=*/16);
  double now = 0.0;
  std::uint64_t next_flow = 1000;
  for (int burst = 0; burst < 40; ++burst) {
    now += 2.0;  // every burst starts a new flowlet (gap 2.0 > 1.0)
    for (int pkt = 0; pkt < 3; ++pkt) {
      now += 0.1;
      EXPECT_EQ(capped.salt(7, now), unbounded.salt(7, now)) << "burst=" << burst;
      // Churn: a fresh one-shot flow per packet keeps the capped table
      // sweeping; flow 7 is always live, so its state must survive.
      capped.salt(next_flow, now);
      ++next_flow;
    }
  }
  EXPECT_GT(capped.evictions(), 0u);
  EXPECT_EQ(capped.switches(), unbounded.switches());
}

TEST(Flowlet, EvictedFlowRestartsAtFlowletZero) {
  FlowletTable table(1.0, /*max_flows=*/4);
  table.salt(1, 0.0);
  table.salt(1, 2.0);  // flowlet 1: salted
  EXPECT_NE(table.salt(1, 2.1), 1u);
  // Push far past the eviction horizon (8 gaps) with enough fresh flows to
  // trigger a sweep; flow 1's entry is idle and goes away.
  for (std::uint64_t f = 10; f < 20; ++f) table.salt(f, 100.0);
  EXPECT_GT(table.evictions(), 0u);
  // The returning flow is indistinguishable from a fresh one: flowlet 0,
  // identity salt — exactly how a real switch's finite table behaves.
  EXPECT_EQ(table.salt(1, 100.5), 1u);
}

TEST(Flowlet, SweepIsDeterministic) {
  // Same observation sequence -> same table size, evictions, and salts,
  // independent of unordered_map iteration order.
  FlowletTable a(0.5, 8), b(0.5, 8);
  for (std::uint64_t f = 0; f < 200; ++f) {
    double t = static_cast<double>(f) * 0.3;
    EXPECT_EQ(a.salt(f % 23, t), b.salt(f % 23, t));
    EXPECT_EQ(a.salt(f, t), b.salt(f, t));
  }
  EXPECT_EQ(a.flows(), b.flows());
  EXPECT_EQ(a.evictions(), b.evictions());
  EXPECT_EQ(a.switches(), b.switches());
}

TEST(Flowlet, SaltsDifferAcrossFlowsAtSameIndex) {
  // Two flows in flowlet 1 must not collapse onto the same salt (the salt
  // mixes the flow id into the substream, not just the index).
  FlowletTable table(1.0);
  table.salt(5, 0.0);
  table.salt(6, 0.0);
  std::uint64_t s5 = table.salt(5, 3.0);
  std::uint64_t s6 = table.salt(6, 3.0);
  EXPECT_NE(s5, s6);
}

}  // namespace
}  // namespace flattree::te
