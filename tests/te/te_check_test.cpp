// Negative controls for check::validate_weighted_fib: every te.wfib.* code
// fires on a deliberately corrupted table and stays quiet on a clean one
// (src/check convention — each violation code earns a test that triggers
// exactly it).

#include "check/te_check.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "check/report.hpp"
#include "routing/ecmp.hpp"
#include "te/wcmp.hpp"
#include "topo/fat_tree.hpp"

namespace flattree::check {
namespace {

bool has_code(const Report& r, const std::string& code) {
  return std::any_of(r.violations.begin(), r.violations.end(),
                     [&](const Violation& v) { return v.code == code; });
}

/// 0 -- 1 -- 2 line with servers at the ends.
topo::Topology line3() {
  topo::Topology t;
  for (int i = 0; i < 3; ++i) t.add_switch(topo::SwitchKind::Edge, 0, i, 4);
  t.add_link(0, 1, topo::LinkOrigin::Random);
  t.add_link(1, 2, topo::LinkOrigin::Random);
  t.add_server(0);
  t.add_server(2);
  return t;
}

te::WeightedFib clean_line_fib() {
  te::WeightedFib fib(3, 64);
  fib.add_route(0, 2, 0, 64);
  fib.add_route(1, 2, 1, 64);
  return fib;
}

TEST(TeCheck, CleanTablePasses) {
  topo::Topology t = line3();
  te::WeightedFib fib = clean_line_fib();
  Report r = validate_weighted_fib(t, fib, {{0, 2}});
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_GT(r.checks_run, 0u);
}

TEST(TeCheck, CompiledFatTreePasses) {
  topo::FatTree ft = topo::build_fat_tree(4);
  routing::EcmpRouting ecmp(ft.topo.graph());
  auto pairs = routing::all_server_pairs(ft.topo);
  te::WeightedFib fib = te::compile_wcmp_paths(ft.topo, ecmp, pairs);
  Report r = validate_weighted_fib(ft.topo, fib, pairs);
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST(TeCheck, FlagsZeroWeightRule) {
  topo::Topology t = line3();
  te::WeightedFib fib = clean_line_fib();
  fib.add_route(1, 2, 0, 0);  // unpruned zero-weight rule
  Report r = validate_weighted_fib(t, fib, {{0, 2}});
  EXPECT_TRUE(has_code(r, "te.wfib.zero_weight")) << r.to_string();
}

TEST(TeCheck, FlagsBadLink) {
  topo::Topology t = line3();
  // Unknown link id.
  te::WeightedFib unknown = clean_line_fib();
  unknown.add_route(0, 2, 99, 64);
  EXPECT_TRUE(has_code(validate_weighted_fib(t, unknown, {{0, 2}}), "te.wfib.bad_link"));
  // Known link, but not incident to the switch holding the rule.
  te::WeightedFib elsewhere = clean_line_fib();
  elsewhere.add_route(0, 2, 1, 64);  // link 1 connects 1--2, not 0
  EXPECT_TRUE(
      has_code(validate_weighted_fib(t, elsewhere, {{0, 2}}), "te.wfib.bad_link"));
}

TEST(TeCheck, FlagsWeightSumViolation) {
  topo::Topology t = line3();
  te::WeightedFib fib(3, 64);
  fib.add_route(0, 2, 0, 63);  // budget is 64
  fib.add_route(1, 2, 1, 64);
  Report r = validate_weighted_fib(t, fib, {{0, 2}});
  EXPECT_TRUE(has_code(r, "te.wfib.weight_sum")) << r.to_string();
}

TEST(TeCheck, FlagsDisconnectedPair) {
  // Two isolated islands: 0--1 and 2 alone.
  topo::Topology t;
  for (int i = 0; i < 3; ++i) t.add_switch(topo::SwitchKind::Edge, 0, i, 4);
  t.add_link(0, 1, topo::LinkOrigin::Random);
  t.add_server(0);
  t.add_server(2);
  te::WeightedFib fib(3, 64);
  Report r = validate_weighted_fib(t, fib, {{0, 2}});
  EXPECT_TRUE(has_code(r, "te.wfib.disconnected")) << r.to_string();
  // A disconnected pair is reported as such, not misclassified as a
  // blackhole the table could have fixed.
  EXPECT_FALSE(has_code(r, "te.wfib.blackhole"));
}

TEST(TeCheck, FlagsBlackhole) {
  topo::Topology t = line3();
  te::WeightedFib fib(3, 64);
  fib.add_route(0, 2, 0, 64);  // nothing installed at 1
  Report r = validate_weighted_fib(t, fib, {{0, 2}});
  EXPECT_TRUE(has_code(r, "te.wfib.blackhole")) << r.to_string();
}

TEST(TeCheck, FlagsLoop) {
  topo::Topology t = line3();
  te::WeightedFib fib(3, 64);
  fib.add_route(0, 2, 0, 64);
  fib.add_route(1, 2, 0, 64);  // bounces back toward 0
  Report r = validate_weighted_fib(t, fib, {{0, 2}});
  EXPECT_TRUE(has_code(r, "te.wfib.loop")) << r.to_string();
}

TEST(TeCheck, FlagsHopLimit) {
  topo::Topology t = line3();
  te::WeightedFib fib = clean_line_fib();
  WeightedFibCheckOptions options;
  options.hop_limit = 1;  // the 0 -> 2 walk needs two hops
  Report r = validate_weighted_fib(t, fib, {{0, 2}}, options);
  EXPECT_TRUE(has_code(r, "te.wfib.hop_limit")) << r.to_string();
}

TEST(TeCheck, OneWalkFaultPerDestination) {
  topo::Topology t = line3();
  te::WeightedFib fib(3, 64);  // empty: both sources blackhole toward 2...
  t.add_server(1);             // ...so pairs (0,2) and (1,2) share the fault
  Report r = validate_weighted_fib(t, fib, {{0, 2}, {1, 2}});
  std::size_t blackholes = 0;
  for (const Violation& v : r.violations)
    if (v.code == "te.wfib.blackhole") ++blackholes;
  EXPECT_EQ(blackholes, 1u);
}

}  // namespace
}  // namespace flattree::check
