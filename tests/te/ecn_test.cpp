// DCTCP/ECN congestion-control loop of sim::PacketSimulator (ISSUE 7
// tentpole): marking, window dynamics, and the headline property — at a
// fixed incast load DCTCP keeps the mean queue below drop-tail while
// losing fewer packets. Everything here is deterministic discrete-event
// time, so the comparisons are exact assertions, not statistics.

#include <gtest/gtest.h>

#include "routing/ecmp.hpp"
#include "sim/packet_sim.hpp"
#include "topo/fat_tree.hpp"
#include "workload/traffic.hpp"

namespace flattree::sim {
namespace {

struct Fixture {
  topo::FatTree ft = topo::build_fat_tree(4);
  routing::EcmpRouting routing{ft.topo.graph()};
  routing::Fib fib =
      routing::compile_fib(ft.topo, routing, routing::all_server_pairs(ft.topo));
};

/// Fixed incast: 12 sources send a train to one sink at NIC rate 4x the
/// link capacity — the sink's edge link must congest.
std::vector<PacketFlow> incast_flows(std::uint32_t train) {
  auto demands = workload::incast_pattern(16, 12, /*seed=*/7);
  std::vector<PacketFlow> flows;
  for (const auto& d : demands) flows.push_back({d.src, d.dst, train, 0.0});
  return flows;
}

PacketSimConfig congested(bool ecn) {
  PacketSimConfig cfg;
  cfg.nic_rate = 4.0;
  cfg.queue_packets = 16;
  cfg.ecn = ecn;
  cfg.ecn_threshold = 4;
  cfg.ack_delay = 0.5;
  return cfg;
}

TEST(Dctcp, HoldsQueueAndLossBelowDropTailAtFixedIncastLoad) {
  Fixture fx;
  auto flows = incast_flows(/*train=*/48);
  PacketSimulator droptail(fx.ft.topo, fx.fib, congested(false));
  PacketSimulator dctcp(fx.ft.topo, fx.fib, congested(true));
  auto base = droptail.run(flows);
  auto ecn = dctcp.run(flows);
  ASSERT_GT(base.dropped, 0u);  // the load must actually congest drop-tail
  EXPECT_LT(ecn.mean_queue, base.mean_queue);
  EXPECT_LT(ecn.dropped, base.dropped);
  EXPECT_LT(ecn.loss_rate(), base.loss_rate());
  // The loop earns the improvement through marking and window cuts.
  EXPECT_GT(ecn.ecn_marked, 0u);
  EXPECT_GT(ecn.window_cuts, 0u);
  EXPECT_EQ(base.ecn_marked, 0u);  // drop-tail never marks
  EXPECT_EQ(base.window_cuts, 0u);
}

TEST(Dctcp, ConservesPacketsAndIsDeterministic) {
  Fixture fx;
  auto flows = incast_flows(/*train=*/32);
  PacketSimulator sim(fx.ft.topo, fx.fib, congested(true));
  auto a = sim.run(flows);
  auto b = sim.run(flows);
  EXPECT_EQ(a.injected, 12u * 32u);
  EXPECT_EQ(a.delivered + a.dropped, a.injected);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.ecn_marked, b.ecn_marked);
  EXPECT_EQ(a.window_cuts, b.window_cuts);
  EXPECT_DOUBLE_EQ(a.fct_p99, b.fct_p99);
  EXPECT_DOUBLE_EQ(a.mean_queue, b.mean_queue);
  EXPECT_DOUBLE_EQ(a.finish_time, b.finish_time);
}

TEST(Dctcp, UncongestedFlowSeesNoMarksOrCuts) {
  Fixture fx;
  PacketSimConfig cfg;
  cfg.ecn = true;
  cfg.ecn_threshold = 8;
  cfg.nic_rate = 1.0;  // injection matches link capacity: queues stay short
  PacketSimulator sim(fx.ft.topo, fx.fib, cfg);
  auto stats = sim.run({{fx.ft.server(0, 0, 0), fx.ft.server(1, 0, 0), 10, 0.0}});
  EXPECT_EQ(stats.delivered, 10u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.ecn_marked, 0u);
  EXPECT_EQ(stats.window_cuts, 0u);
  EXPECT_DOUBLE_EQ(stats.mark_rate(), 0.0);
}

TEST(Dctcp, WindowedRunPopulatesFctPercentiles) {
  Fixture fx;
  auto flows = incast_flows(/*train=*/16);
  PacketSimulator sim(fx.ft.topo, fx.fib, congested(true));
  auto stats = sim.run(flows);
  EXPECT_GT(stats.fct_mean, 0.0);
  EXPECT_GT(stats.fct_p50, 0.0);
  EXPECT_GE(stats.fct_p99, stats.fct_p50);
  EXPECT_GE(stats.fct_max, stats.fct_p99);
  EXPECT_GE(stats.mark_rate(), 0.0);
  EXPECT_LE(stats.mark_rate(), 1.0);
}

TEST(Flowlet, SimCountsSwitchesAndStillDelivers) {
  Fixture fx;
  PacketSimConfig cfg;
  cfg.queue_packets = 0;  // infinite buffers: nothing can be lost
  cfg.nic_rate = 4.0;
  // NIC injection gap is 0.25; a smaller flowlet gap makes every packet
  // its own flowlet, maximizing re-hashing.
  cfg.flowlet_gap = 0.1;
  PacketSimulator sim(fx.ft.topo, fx.fib, cfg);
  auto stats = sim.run({{fx.ft.server(0, 0, 0), fx.ft.server(1, 0, 0), 20, 0.0}});
  EXPECT_EQ(stats.delivered, 20u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.flowlet_switches, 19u);  // every injection after the first
}

TEST(Flowlet, DisabledGapMatchesLegacyByteForByte) {
  Fixture fx;
  std::vector<PacketFlow> flows;
  for (std::uint32_t s = 0; s < 8; ++s)
    flows.push_back({s, static_cast<topo::ServerId>(15 - s), 6, 0.05 * s});
  PacketSimConfig off;  // flowlet_gap = 0: identity salting
  PacketSimulator legacy(fx.ft.topo, fx.fib);
  PacketSimulator salted(fx.ft.topo, fx.fib, off);
  auto a = legacy.run(flows);
  auto b = salted.run(flows);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_DOUBLE_EQ(a.mean_delay, b.mean_delay);
  EXPECT_DOUBLE_EQ(a.finish_time, b.finish_time);
  EXPECT_EQ(b.flowlet_switches, 0u);
}

TEST(Dctcp, InitCwndMustBePositive) {
  Fixture fx;
  PacketSimConfig bad;
  bad.init_cwnd = 0;
  EXPECT_THROW(PacketSimulator(fx.ft.topo, fx.fib, bad), std::invalid_argument);
}

}  // namespace
}  // namespace flattree::sim
