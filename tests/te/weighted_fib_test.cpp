#include "te/weighted_fib.hpp"

#include <gtest/gtest.h>

#include <map>

#include "routing/ecmp.hpp"
#include "te/wcmp.hpp"
#include "topo/fat_tree.hpp"

namespace flattree::te {
namespace {

/// 0 -- 1 -- 2 line with servers at the ends (same shape as the
/// routing::Fib tests use).
topo::Topology line3() {
  topo::Topology t;
  for (int i = 0; i < 3; ++i) t.add_switch(topo::SwitchKind::Edge, 0, i, 4);
  t.add_link(0, 1, topo::LinkOrigin::Random);
  t.add_link(1, 2, topo::LinkOrigin::Random);
  t.add_server(0);
  t.add_server(2);
  return t;
}

/// Diamond 0 -> {1, 2} -> 3 with servers at 0 and 3 (two equal-cost paths).
topo::Topology diamond() {
  topo::Topology t;
  for (int i = 0; i < 4; ++i) t.add_switch(topo::SwitchKind::Edge, 0, i, 4);
  t.add_link(0, 1, topo::LinkOrigin::Random);  // link 0
  t.add_link(0, 2, topo::LinkOrigin::Random);  // link 1
  t.add_link(1, 3, topo::LinkOrigin::Random);  // link 2
  t.add_link(2, 3, topo::LinkOrigin::Random);  // link 3
  t.add_server(0);
  t.add_server(3);
  return t;
}

TEST(WeightedFib, AddAccumulatesAndLooksUp) {
  WeightedFib fib(3, 64);
  fib.add_route(0, 2, 0, 40);
  fib.add_route(0, 2, 0, 24);  // tops up the same rule
  fib.add_route(1, 2, 1, 64);
  ASSERT_EQ(fib.next_hops(0, 2).size(), 1u);
  EXPECT_EQ(fib.next_hops(0, 2)[0].weight, 64u);
  EXPECT_TRUE(fib.next_hops(2, 0).empty());
  EXPECT_EQ(fib.rule_count(), 2u);
  EXPECT_EQ(fib.entry_count(), 2u);
  EXPECT_EQ(fib.total_weight(), 128u);
  EXPECT_EQ(fib.max_rules_per_switch(), 1u);
  EXPECT_EQ(fib.weight_budget(), 64u);
}

TEST(WeightedFib, ZeroBudgetRejected) {
  EXPECT_THROW(WeightedFib(3, 0), std::invalid_argument);
}

TEST(WeightedFib, DestinationsSortedPerSwitch) {
  WeightedFib fib(2, 64);
  fib.add_route(0, 9, 0, 64);
  fib.add_route(0, 3, 0, 64);
  fib.add_route(0, 7, 0, 64);
  EXPECT_EQ(fib.destinations(0), (std::vector<NodeId>{3, 7, 9}));
  EXPECT_TRUE(fib.destinations(1).empty());
}

TEST(WeightedFib, SelectDeterministicSkipsZeroAndThrowsOnMiss) {
  WeightedFib fib(3, 64);
  fib.add_route(0, 2, 0, 0);   // zero-weight rule never selected
  fib.add_route(0, 2, 1, 64);
  for (std::uint64_t id = 0; id < 200; ++id) {
    EXPECT_EQ(fib.select(0, 2, id), 1u);
    EXPECT_EQ(fib.select(0, 2, id), fib.select(0, 2, id));
  }
  EXPECT_THROW(fib.select(1, 2, 0), std::runtime_error);
  WeightedFib zeros(3, 64);
  zeros.add_route(0, 2, 0, 0);
  EXPECT_THROW(zeros.select(0, 2, 0), std::runtime_error);
}

TEST(WeightedFib, SelectTracksWeightsOverFlowSweep) {
  WeightedFib fib(4, 64);
  fib.add_route(0, 3, 0, 48);  // 3:1 split
  fib.add_route(0, 3, 1, 16);
  std::map<graph::LinkId, int> hits;
  const int sweep = 20000;
  for (int id = 0; id < sweep; ++id)
    ++hits[fib.select(0, 3, static_cast<std::uint64_t>(id))];
  double heavy = static_cast<double>(hits[0]) / sweep;
  EXPECT_NEAR(heavy, 0.75, 0.02);  // mix64 is a good hash; 2% slack is ample
  EXPECT_NEAR(static_cast<double>(hits[1]) / sweep, 0.25, 0.02);
}

TEST(VerifyWeightedFib, CompiledFatTreePasses) {
  topo::FatTree ft = topo::build_fat_tree(4);
  routing::EcmpRouting ecmp(ft.topo.graph());
  auto pairs = routing::all_server_pairs(ft.topo);
  WeightedFib fib = compile_wcmp_paths(ft.topo, ecmp, pairs);
  WeightedFibVerification v = verify_weighted_fib(ft.topo, fib, pairs);
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.pairs_checked, pairs.size());
  EXPECT_LE(v.max_walk_hops, 4u);  // fat-tree switch diameter
}

TEST(VerifyWeightedFib, DetectsBlackhole) {
  topo::Topology t = line3();
  WeightedFib fib(3, 64);
  fib.add_route(0, 2, 0, 64);  // installed at 0 but missing at 1
  auto v = verify_weighted_fib(t, fib, {{0, 2}});
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("blackhole"), std::string::npos);
}

TEST(VerifyWeightedFib, DetectsZeroWeightRule) {
  topo::Topology t = line3();
  WeightedFib fib(3, 64);
  fib.add_route(0, 2, 0, 64);
  fib.add_route(1, 2, 1, 64);
  fib.add_route(1, 2, 0, 0);  // corrupt: should have been pruned
  auto v = verify_weighted_fib(t, fib, {{0, 2}});
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("zero-weight"), std::string::npos);
}

TEST(VerifyWeightedFib, DetectsWeightConservationViolation) {
  topo::Topology t = diamond();
  WeightedFib fib(4, 64);
  fib.add_route(0, 3, 0, 32);
  fib.add_route(0, 3, 1, 31);  // sums to 63, budget is 64
  fib.add_route(1, 3, 2, 64);
  fib.add_route(2, 3, 3, 64);
  auto v = verify_weighted_fib(t, fib, {{0, 3}});
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("conservation"), std::string::npos);
}

TEST(VerifyWeightedFib, DetectsLoop) {
  topo::Topology t = line3();
  WeightedFib fib(3, 64);
  fib.add_route(0, 2, 0, 64);
  fib.add_route(1, 2, 0, 64);  // bounces back to 0
  auto v = verify_weighted_fib(t, fib, {{0, 2}});
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("loop"), std::string::npos);
}

TEST(VerifyWeightedFib, HopLimitEnforced) {
  topo::Topology t = line3();
  WeightedFib fib(3, 64);
  fib.add_route(0, 2, 0, 64);
  fib.add_route(1, 2, 1, 64);
  auto relaxed = verify_weighted_fib(t, fib, {{0, 2}});
  EXPECT_TRUE(relaxed.ok) << relaxed.error;
  auto tight = verify_weighted_fib(t, fib, {{0, 2}}, /*hop_limit=*/1);
  EXPECT_FALSE(tight.ok);
  EXPECT_NE(tight.error.find("exceeds"), std::string::npos);
}

}  // namespace
}  // namespace flattree::te
