#include "te/wcmp.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <numeric>

#include "core/flat_tree.hpp"
#include "mcf/commodity.hpp"
#include "mcf/garg_koenemann.hpp"
#include "routing/ecmp.hpp"
#include "routing/ksp_routing.hpp"
#include "topo/fat_tree.hpp"

namespace flattree::te {
namespace {

std::uint64_t weight_sum(const std::vector<std::uint32_t>& w) {
  return std::accumulate(w.begin(), w.end(), std::uint64_t{0});
}

TEST(QuantizeWeights, SumsToBudgetAndTracksShares) {
  auto w = quantize_weights({3.0, 1.0}, 64);
  EXPECT_EQ(w, (std::vector<std::uint32_t>{48, 16}));
  w = quantize_weights({1.0, 1.0, 1.0}, 64);
  EXPECT_EQ(weight_sum(w), 64u);
  // Largest remainder: 64/3 = 21.33 each; the leftover unit goes to the
  // lowest index on the remainder tie.
  EXPECT_EQ(w, (std::vector<std::uint32_t>{22, 21, 21}));
}

TEST(QuantizeWeights, ZeroShareStaysZero) {
  auto w = quantize_weights({5.0, 0.0, 3.0}, 64);
  EXPECT_EQ(weight_sum(w), 64u);
  EXPECT_EQ(w[1], 0u);
  // Negative shares are clamped to zero, not wrapped.
  w = quantize_weights({5.0, -2.0, 3.0}, 16);
  EXPECT_EQ(weight_sum(w), 16u);
  EXPECT_EQ(w[1], 0u);
}

TEST(QuantizeWeights, TinyShareNeverRoundsAllToZero) {
  // One dominant and one tiny share at a small budget: the tiny share may
  // round to zero, but the total must still hit the budget exactly.
  auto w = quantize_weights({1000.0, 1e-9}, 4);
  EXPECT_EQ(weight_sum(w), 4u);
  EXPECT_EQ(w[0], 4u);
}

TEST(QuantizeWeights, ErrorCases) {
  EXPECT_THROW(quantize_weights({1.0}, 0), std::invalid_argument);
  EXPECT_THROW(quantize_weights({0.0, 0.0}, 64), std::invalid_argument);
  EXPECT_THROW(quantize_weights({-1.0}, 64), std::invalid_argument);
}

// Adversarial shares: every pathology below once risked the uint64
// underflow path (assigned > budget -> `budget - assigned` wraps and the
// drain loop hands out ~2^64 weight) or UB in the double->uint32 cast.
// The invariant under test is exact conservation, always.
TEST(QuantizeWeights, AdversarialSharesStillConserveBudget) {
  // Share sum overflows to +inf: every fraction degrades to NaN or 0, so
  // the whole budget flows through the deterministic handout loops.
  auto w = quantize_weights({1e308, 1e308}, 5);
  EXPECT_EQ(weight_sum(w), 5u);
  EXPECT_GT(w[0], 0u);
  EXPECT_GT(w[1], 0u);

  // A single +inf share alongside a finite one (inf/inf -> NaN fraction).
  w = quantize_weights({std::numeric_limits<double>::infinity(), 1.0}, 64);
  EXPECT_EQ(weight_sum(w), 64u);

  // Denormals: fractions stay exact (0.5 each) after the divide-first
  // rewrite; a scale-first formulation would overflow or flush to zero.
  w = quantize_weights({5e-324, 5e-324}, 64);
  EXPECT_EQ(weight_sum(w), 64u);
  EXPECT_EQ(w[0], 32u);
  EXPECT_EQ(w[1], 32u);

  // Huge spread between shares at a large budget.
  w = quantize_weights({std::numeric_limits<double>::max(), 1e-300}, 1u << 30);
  EXPECT_EQ(weight_sum(w), std::uint64_t{1} << 30);

  // NaN share: the total goes NaN, which the no-positive-share guard
  // already rejects (fail loudly, never quantize garbage).
  EXPECT_THROW(quantize_weights({std::numeric_limits<double>::quiet_NaN(), 1.0}, 8),
               std::invalid_argument);
}

TEST(QuantizeWeights, ManyTinySharesAtSmallBudget) {
  // More positive shares than budget units: floors are all zero and the
  // remainder handout must stop exactly at the budget.
  std::vector<double> shares(97, 1e-12);
  auto w = quantize_weights(shares, 13);
  EXPECT_EQ(weight_sum(w), 13u);
  for (std::size_t i = 0; i < w.size(); ++i) EXPECT_LE(w[i], 1u) << i;
}

TEST(CompileWcmpPaths, EcmpMultiplicitiesOnFatTree) {
  topo::FatTree ft = topo::build_fat_tree(4);
  routing::EcmpRouting ecmp(ft.topo.graph());
  auto pairs = routing::all_server_pairs(ft.topo);
  WeightedFib fib = compile_wcmp_paths(ft.topo, ecmp, pairs);
  // Every entry conserves the budget and carries no zero-weight rules
  // (verify_weighted_fib checks both plus loop-freedom).
  auto v = verify_weighted_fib(ft.topo, fib, pairs);
  EXPECT_TRUE(v.ok) << v.error;
  // ECMP on a fat-tree is symmetric: an edge switch splits its upward
  // entries evenly over both aggregation links.
  EXPECT_GT(fib.rule_count(), fib.entry_count());
}

TEST(CompileWcmpPaths, DeterministicAcrossRebuilds) {
  core::FlatTreeConfig cfg;
  cfg.k = 6;
  core::FlatTreeNetwork net(cfg);
  topo::Topology t = net.build(core::Mode::GlobalRandom);
  auto pairs = routing::all_server_pairs(t);
  routing::EcmpRouting e1(t.graph());
  routing::EcmpRouting e2(t.graph());
  WeightedFib a = compile_wcmp_paths(t, e1, pairs);
  WeightedFib b = compile_wcmp_paths(t, e2, pairs);
  ASSERT_EQ(a.rule_count(), b.rule_count());
  ASSERT_EQ(a.total_weight(), b.total_weight());
  for (NodeId at = 0; at < t.switch_count(); ++at)
    for (NodeId dst : a.destinations(at)) {
      const auto& ha = a.next_hops(at, dst);
      const auto& hb = b.next_hops(at, dst);
      ASSERT_EQ(ha.size(), hb.size());
      for (std::size_t i = 0; i < ha.size(); ++i) {
        EXPECT_EQ(ha[i].link, hb[i].link);
        EXPECT_EQ(ha[i].weight, hb[i].weight);
      }
    }
}

TEST(CompileWcmpMcf, SolverSplitsProgramTheFib) {
  topo::FatTree ft = topo::build_fat_tree(4);
  auto pairs = routing::all_server_pairs(ft.topo);
  // Drive the compiler from a real GK solution over a permutation-ish
  // demand (server s -> server s+8 across pods).
  std::vector<mcf::ServerDemand> demands;
  for (std::uint32_t s = 0; s < 8; ++s)
    demands.push_back({s, s + 8, 1.0});
  auto commodities = mcf::aggregate_to_switches(ft.topo, demands);
  mcf::McfOptions opt;
  opt.epsilon = 0.2;
  auto r = mcf::max_concurrent_flow(ft.topo.graph(), commodities, opt);
  ASSERT_EQ(r.arc_flow.size(), ft.topo.graph().link_count() * 2);
  WeightedFib fib = compile_wcmp_mcf(ft.topo, pairs, r.arc_flow);
  auto v = verify_weighted_fib(ft.topo, fib, pairs);
  EXPECT_TRUE(v.ok) << v.error;
}

TEST(CompileWcmpMcf, ZeroFlowFallsBackToEvenSplit) {
  topo::FatTree ft = topo::build_fat_tree(4);
  auto pairs = routing::all_server_pairs(ft.topo);
  // All-zero arc flows: every entry falls back to the even ECMP split but
  // still conserves the budget and stays loop-free.
  std::vector<double> arc_flow(ft.topo.graph().link_count() * 2, 0.0);
  WeightedFib fib = compile_wcmp_mcf(ft.topo, pairs, arc_flow);
  auto v = verify_weighted_fib(ft.topo, fib, pairs);
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_GT(fib.entry_count(), 0u);
}

TEST(CompileWcmpMcf, ArcFlowSizeMismatchRejected) {
  topo::FatTree ft = topo::build_fat_tree(4);
  auto pairs = routing::all_server_pairs(ft.topo);
  std::vector<double> wrong(3, 0.0);
  EXPECT_THROW(compile_wcmp_mcf(ft.topo, pairs, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace flattree::te
