// Flat-tree conversion of generic (oversubscribed) Clos layouts — the
// networks the paper says flat-tree especially targets (Section 1/3.1).

#include <gtest/gtest.h>

#include <map>

#include "core/flat_tree.hpp"
#include "topo/apl.hpp"
#include "topo/fat_tree.hpp"

namespace flattree::core {
namespace {

topo::ClosParams oversubscribed() {
  return topo::ClosParams::make_generic(/*pods=*/6, /*d=*/4, /*r=*/2, /*h=*/4,
                                        /*servers_per_edge=*/6, /*edge_ports=*/8,
                                        /*agg_ports=*/8, /*core_ports=*/6);
}

using LinkKey = std::pair<topo::NodeId, topo::NodeId>;
std::map<LinkKey, std::size_t> link_multiset(const topo::Topology& t) {
  std::map<LinkKey, std::size_t> out;
  for (const auto& l : t.graph().links())
    ++out[{std::min(l.a, l.b), std::max(l.a, l.b)}];
  return out;
}

TEST(GenericFlatTree, ProfiledDefaultsScaleWithGroup) {
  // group = h/r = 2 -> m = round(0.5) = 1, n = round(1) = 1.
  FlatTreeNetwork net(oversubscribed(), FlatTreeConfig::kProfiled,
                      FlatTreeConfig::kProfiled);
  EXPECT_EQ(net.config().m, 1u);
  EXPECT_EQ(net.config().n, 1u);
}

TEST(GenericFlatTree, ConverterAttachmentsRespectR) {
  FlatTreeNetwork net(oversubscribed(), 1, 1);
  // r = 2: edges 0,1 pair with aggregation 0; edges 2,3 with aggregation 1.
  for (const Converter& c : net.converters()) {
    EXPECT_EQ(c.agg, net.agg_switch(c.pod, c.col / 2));
    // Core connector inside edge j's group of h/r = 2 cores.
    std::uint32_t core_index = c.core - net.core_switch(0);
    EXPECT_GE(core_index, c.col * 2);
    EXPECT_LT(core_index, (c.col + 1) * 2);
  }
}

TEST(GenericFlatTree, ClosModeEqualsBuildClos) {
  FlatTreeNetwork net(oversubscribed(), 1, 1);
  topo::Topology clos = net.build(Mode::Clos);
  topo::FatTree reference = topo::build_clos(oversubscribed());
  EXPECT_EQ(link_multiset(clos), link_multiset(reference.topo));
  ASSERT_EQ(clos.server_count(), reference.topo.server_count());
  for (topo::ServerId s = 0; s < clos.server_count(); ++s)
    EXPECT_EQ(clos.host(s), reference.topo.host(s));
}

TEST(GenericFlatTree, AllModesValidateWithinPortBudgets) {
  FlatTreeNetwork net(oversubscribed(), 1, 1);
  for (Mode mode : {Mode::Clos, Mode::GlobalRandom, Mode::LocalRandom}) {
    topo::Topology t = net.build(mode);  // materialize() validates
    EXPECT_EQ(t.server_count(), 144u) << to_string(mode);
    EXPECT_EQ(t.link_count(), 96u) << to_string(mode);
  }
}

TEST(GenericFlatTree, GlobalModeRelocatesServers) {
  FlatTreeNetwork net(oversubscribed(), 1, 1);
  topo::Topology t = net.build(Mode::GlobalRandom);
  std::size_t on_edge = 0, on_agg = 0, on_core = 0;
  for (topo::ServerId s = 0; s < t.server_count(); ++s) {
    switch (t.info(t.host(s)).kind) {
      case topo::SwitchKind::Edge: ++on_edge; break;
      case topo::SwitchKind::Aggregation: ++on_agg; break;
      case topo::SwitchKind::Core: ++on_core; break;
    }
  }
  // 24 (edge, agg) pairs, m = n = 1, even d and ring chain: one server per
  // pair to the aggregation layer and one to the cores.
  EXPECT_EQ(on_agg, 24u);
  EXPECT_EQ(on_core, 24u);
  EXPECT_EQ(on_edge, 144u - 48u);
}

TEST(GenericFlatTree, ConversionShortensOversubscribedPaths) {
  FlatTreeNetwork net(oversubscribed(), 1, 1);
  double clos_apl = topo::server_apl(net.build(Mode::Clos)).average;
  double grg_apl = topo::server_apl(net.build(Mode::GlobalRandom)).average;
  EXPECT_LT(grg_apl, clos_apl);
}

TEST(GenericFlatTree, RejectsOverfullConverterCounts) {
  // group = h/r = 2, so m + n <= 2.
  EXPECT_THROW(FlatTreeNetwork(oversubscribed(), 2, 1), std::invalid_argument);
}

TEST(GenericFlatTree, HybridZonesWork) {
  FlatTreeNetwork net(oversubscribed(), 1, 1);
  std::vector<Mode> modes(6, Mode::LocalRandom);
  modes[0] = modes[1] = modes[2] = Mode::GlobalRandom;
  EXPECT_NO_THROW(net.build(modes));
}

TEST(GenericFlatTree, SquatLayoutWithManyPods) {
  // Wide low-radix layout: 8 pods, 2 edges/pod, r = 1, h = 2,
  // 4 servers/edge (2:1 oversubscribed), 8-port cores.
  auto params = topo::ClosParams::make_generic(8, 2, 1, 2, 4, 8, 8, 8);
  FlatTreeNetwork net(params, 1, 1);
  for (Mode mode : {Mode::Clos, Mode::GlobalRandom, Mode::LocalRandom})
    EXPECT_NO_THROW(net.build(mode)) << to_string(mode);
  EXPECT_DOUBLE_EQ(params.oversubscription(), 2.0);
}

}  // namespace
}  // namespace flattree::core
