#include "core/expansion.hpp"

#include <gtest/gtest.h>

#include "topo/apl.hpp"

namespace flattree::core {
namespace {

/// Expandable layout: 6 pods live, cores sized for 10.
topo::ClosParams expandable() {
  return topo::ClosParams::make_generic(/*pods=*/6, /*d=*/4, /*r=*/2, /*h=*/4,
                                        /*servers_per_edge=*/4, /*edge_ports=*/6,
                                        /*agg_ports=*/8, /*core_ports=*/10);
}

TEST(Expansion, PlanItemizesPhysicalWork) {
  ExpansionPlan plan = plan_expansion(expandable(), 2);
  EXPECT_EQ(plan.pods_added, 2u);
  EXPECT_EQ(plan.after.pods(), 8u);
  EXPECT_EQ(plan.new_switches, 2u * 6u);       // 4 edges + 2 aggs per pod
  EXPECT_EQ(plan.new_servers, 2u * 16u);
  EXPECT_EQ(plan.new_core_links, 2u * 4u * 2u);  // d * h/r per pod
  EXPECT_EQ(plan.side_bundles_spliced, 3u);      // ring seam + 2 pods
}

TEST(Expansion, LinearChainSplicesOneLess) {
  ExpansionPlan plan = plan_expansion(expandable(), 2, PodChain::Linear);
  EXPECT_EQ(plan.side_bundles_spliced, 2u);
}

TEST(Expansion, RejectsWhenCoresFull) {
  // Fat-tree cores are exactly full: no expansion headroom.
  EXPECT_THROW(plan_expansion(topo::ClosParams::fat_tree(8), 1), std::invalid_argument);
  // Generic layout at capacity.
  auto full = topo::ClosParams::make_generic(10, 4, 2, 4, 4, 6, 8, 10);
  EXPECT_THROW(plan_expansion(full, 1), std::invalid_argument);
  EXPECT_THROW(plan_expansion(expandable(), 0), std::invalid_argument);
  EXPECT_THROW(plan_expansion(expandable(), 5), std::invalid_argument);  // 6+5 > 10
}

TEST(Expansion, ExpandedNetworkBuildsAllModes) {
  FlatTreeNetwork base(expandable(), 1, 1);
  ExpansionPlan plan = plan_expansion(expandable(), 2);
  FlatTreeNetwork bigger = expand(base, plan);
  EXPECT_EQ(bigger.params().pods(), 8u);
  EXPECT_EQ(bigger.config().m, base.config().m);
  for (Mode mode : {Mode::Clos, Mode::GlobalRandom, Mode::LocalRandom}) {
    topo::Topology t = bigger.build(mode);
    EXPECT_EQ(t.server_count(), 8u * 16u) << to_string(mode);
  }
}

TEST(Expansion, ExistingServersKeepIdsAndGrowthAppends) {
  FlatTreeNetwork base(expandable(), 1, 1);
  ExpansionPlan plan = plan_expansion(expandable(), 1);
  FlatTreeNetwork bigger = expand(base, plan);
  topo::Topology small = base.build(Mode::Clos);
  topo::Topology large = bigger.build(Mode::Clos);
  // Per-pod switch blocks shift (cores renumber), but the server-id layout
  // within existing pods is append-only.
  for (std::uint32_t pod = 0; pod < 6; ++pod)
    for (std::uint32_t j = 0; j < 4; ++j)
      for (std::uint32_t s = 0; s < 4; ++s)
        EXPECT_EQ(bigger.server(pod, j, s), base.server(pod, j, s));
  EXPECT_GT(large.server_count(), small.server_count());
}

TEST(Expansion, MoreCapacityHelpsGlobalMode) {
  FlatTreeNetwork base(expandable(), 1, 1);
  ExpansionPlan plan = plan_expansion(expandable(), 4);
  FlatTreeNetwork bigger = expand(base, plan);
  // Expanded network stays a well-formed approximated random graph.
  auto apl_small = topo::server_apl(base.build(Mode::GlobalRandom));
  auto apl_large = topo::server_apl(bigger.build(Mode::GlobalRandom));
  EXPECT_GT(apl_large.pairs, apl_small.pairs);
  EXPECT_LT(apl_large.average, 7.0);
}

}  // namespace
}  // namespace flattree::core
