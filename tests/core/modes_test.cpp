// Cross-mode invariants of materialized flat-tree topologies, swept over
// (k, m, n, wiring pattern, chain, mode). These encode the paper's
// Section 2.3 wiring Properties 1 and 2, port-budget feasibility, and the
// conservation laws that make conversions physically realizable.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/flat_tree.hpp"
#include "topo/fat_tree.hpp"

namespace flattree::core {
namespace {

struct Case {
  std::uint32_t k;
  std::uint32_t m;
  std::uint32_t n;
  WiringPattern pattern;
  PodChain chain;
};

std::vector<Case> sweep_cases() {
  std::vector<Case> cases;
  for (std::uint32_t k : {4u, 6u, 8u, 10u, 12u, 16u}) {
    std::uint32_t dm = FlatTreeConfig::default_m(k);
    std::uint32_t dn = FlatTreeConfig::default_n(k);
    cases.push_back({k, dm, dn, WiringPattern::Auto, PodChain::Ring});
  }
  // Pattern and chain variants at a fixed size.
  cases.push_back({8, 1, 2, WiringPattern::Pattern1, PodChain::Ring});
  cases.push_back({8, 1, 2, WiringPattern::Pattern2, PodChain::Ring});
  cases.push_back({8, 1, 2, WiringPattern::Auto, PodChain::Linear});
  cases.push_back({12, 2, 3, WiringPattern::Pattern1, PodChain::Linear});
  // m/n extremes.
  cases.push_back({8, 0, 2, WiringPattern::Auto, PodChain::Ring});   // no 6-port
  cases.push_back({8, 2, 0, WiringPattern::Auto, PodChain::Ring});   // no 4-port
  cases.push_back({8, 2, 2, WiringPattern::Auto, PodChain::Ring});   // m+n = k/2
  cases.push_back({16, 4, 4, WiringPattern::Auto, PodChain::Ring});  // m = w
  return cases;
}

class ModeSweep : public ::testing::TestWithParam<std::tuple<Case, Mode>> {
 protected:
  FlatTreeNetwork make_network() const {
    const Case& c = std::get<0>(GetParam());
    FlatTreeConfig cfg;
    cfg.k = c.k;
    cfg.m = c.m;
    cfg.n = c.n;
    cfg.pattern = c.pattern;
    cfg.chain = c.chain;
    return FlatTreeNetwork(cfg);
  }
};

TEST_P(ModeSweep, MaterializesValidTopology) {
  FlatTreeNetwork net = make_network();
  // materialize() calls Topology::validate() internally (ports, connected).
  EXPECT_NO_THROW(net.build(std::get<1>(GetParam())));
}

TEST_P(ModeSweep, EveryPortBudgetExactlyFull) {
  FlatTreeNetwork net = make_network();
  topo::Topology t = net.build(std::get<1>(GetParam()));
  // Conversion conserves ports: every switch stays exactly full, as in
  // the fat-tree it was built from.
  for (graph::NodeId v = 0; v < t.switch_count(); ++v)
    EXPECT_EQ(t.used_ports(v), net.config().k) << "switch " << v;
}

TEST_P(ModeSweep, LinkAndServerCountsConserved) {
  FlatTreeNetwork net = make_network();
  topo::Topology t = net.build(std::get<1>(GetParam()));
  const std::uint32_t k = net.config().k;
  EXPECT_EQ(t.server_count(), k * k * k / 4);
  // Side/cross turn 2 core connectors into server attachments but add 2
  // side links, so the link count always equals fat-tree's.
  EXPECT_EQ(t.link_count(), 2u * k * (k / 2) * (k / 2));
}

TEST_P(ModeSweep, EdgeAggregationMeshNeverRewired) {
  FlatTreeNetwork net = make_network();
  topo::Topology t = net.build(std::get<1>(GetParam()));
  const auto& p = net.params();
  for (std::uint32_t pod = 0; pod < p.pods(); ++pod)
    for (std::uint32_t j = 0; j < p.d(); ++j)
      for (std::uint32_t i = 0; i < p.aggs_per_pod(); ++i)
        EXPECT_TRUE(t.graph().connected(net.edge_switch(pod, j), net.agg_switch(pod, i)));
}

TEST_P(ModeSweep, ServerDistributionMatchesMode) {
  FlatTreeNetwork net = make_network();
  Mode mode = std::get<1>(GetParam());
  topo::Topology t = net.build(mode);
  const auto& p = net.params();
  const std::uint32_t m = net.config().m, n = net.config().n;

  std::size_t on_edge = 0, on_agg = 0, on_core = 0;
  for (topo::ServerId s = 0; s < t.server_count(); ++s) {
    switch (t.info(t.host(s)).kind) {
      case topo::SwitchKind::Edge: ++on_edge; break;
      case topo::SwitchKind::Aggregation: ++on_agg; break;
      case topo::SwitchKind::Core: ++on_core; break;
    }
  }
  const std::size_t pairs = p.pods() * p.d();  // (edge, agg) pairs network-wide
  switch (mode) {
    case Mode::Clos:
      EXPECT_EQ(on_edge, t.server_count());
      EXPECT_EQ(on_agg, 0u);
      EXPECT_EQ(on_core, 0u);
      break;
    case Mode::LocalRandom:
      EXPECT_EQ(on_agg, pairs * n);
      EXPECT_EQ(on_core, 0u);
      EXPECT_EQ(on_edge, t.server_count() - pairs * n);
      break;
    case Mode::GlobalRandom: {
      EXPECT_EQ(on_agg + on_core, pairs * (m + n));
      EXPECT_GE(on_agg, pairs * n);  // unpaired 6-ports fall back to Local
      // With a ring chain every 6-port is paired, so the counts are exact
      // (odd-d pods keep one middle column unpaired per blade).
      if (net.config().chain == PodChain::Ring && p.d() % 2 == 0)
        EXPECT_EQ(on_core, pairs * m);
      break;
    }
  }
}

TEST_P(ModeSweep, Property1ServersUniformAcrossCores) {
  // Paper Property 1: servers are distributed uniformly across the core
  // switches in global-random mode (where blade B relocates servers to
  // cores). Exactly 2m servers per core whenever every 6-port converter is
  // paired (ring chain, even d) and the resolved rotation is
  // server-uniform — which resolve_pattern(Auto) guarantees.
  FlatTreeNetwork net = make_network();
  Mode mode = std::get<1>(GetParam());
  if (mode != Mode::GlobalRandom) GTEST_SKIP();
  const Case& c = std::get<0>(GetParam());
  if (c.chain != PodChain::Ring || (c.k / 2) % 2 != 0 || c.m == 0) GTEST_SKIP();
  const std::uint32_t group = net.params().h() / net.params().r();
  if (!pattern_server_uniform(net.pattern(), c.m, group))
    GTEST_SKIP() << "explicitly requested non-uniform pattern";

  topo::Topology t = net.build(mode);
  auto w = t.servers_per_switch();
  for (graph::NodeId v = 0; v < t.switch_count(); ++v) {
    if (t.info(v).kind != topo::SwitchKind::Core) continue;
    EXPECT_EQ(w[v], 2 * c.m) << "core " << v;
  }
}

TEST_P(ModeSweep, Property2CoreLinkTypesBalanced) {
  // Paper Property 2: core switches have equal numbers of links of the
  // same type. Check per-core counts of core-edge and core-aggregation
  // links stay within one rotation block of each other.
  FlatTreeNetwork net = make_network();
  Mode mode = std::get<1>(GetParam());
  topo::Topology t = net.build(mode);
  const Case& c = std::get<0>(GetParam());

  std::vector<std::uint32_t> edge_links(t.switch_count(), 0);
  std::vector<std::uint32_t> agg_links(t.switch_count(), 0);
  for (const auto& link : t.graph().links()) {
    for (auto [self, other] : {std::pair{link.a, link.b}, std::pair{link.b, link.a}}) {
      if (t.info(self).kind != topo::SwitchKind::Core) continue;
      if (t.info(other).kind == topo::SwitchKind::Edge) ++edge_links[self];
      if (t.info(other).kind == topo::SwitchKind::Aggregation) ++agg_links[self];
    }
  }
  std::uint32_t e_lo = ~0u, e_hi = 0, a_lo = ~0u, a_hi = 0;
  for (graph::NodeId v = 0; v < t.switch_count(); ++v) {
    if (t.info(v).kind != topo::SwitchKind::Core) continue;
    e_lo = std::min(e_lo, edge_links[v]);
    e_hi = std::max(e_hi, edge_links[v]);
    a_lo = std::min(a_lo, agg_links[v]);
    a_hi = std::max(a_hi, agg_links[v]);
  }
  const std::uint32_t k = net.config().k;
  if (mode == Mode::Clos) {
    EXPECT_EQ(e_hi, 0u);  // Clos has no edge-core links
    EXPECT_EQ(a_lo, k);
    EXPECT_EQ(a_hi, k);
    return;
  }
  // Exact balance needs a fully uniform rotation and all 6-ports paired.
  const std::uint32_t group = net.params().h() / net.params().r();
  if (!pattern_fully_uniform(net.pattern(), c.m, c.n, group) ||
      c.chain != PodChain::Ring || (c.k / 2) % 2 != 0)
    GTEST_SKIP() << "non-uniform rotation or unpaired blades: balance is approximate";
  if (mode == Mode::LocalRandom) {
    EXPECT_EQ(e_lo, 2 * c.n);
    EXPECT_EQ(e_hi, 2 * c.n);
    EXPECT_EQ(a_lo, k - 2 * c.n);
    EXPECT_EQ(a_hi, k - 2 * c.n);
  } else {  // GlobalRandom
    EXPECT_EQ(e_lo, 2 * c.n);
    EXPECT_EQ(e_hi, 2 * c.n);
    EXPECT_EQ(a_lo, k - 2 * c.m - 2 * c.n);
    EXPECT_EQ(a_hi, k - 2 * c.m - 2 * c.n);
  }
}

TEST_P(ModeSweep, LinkOriginsMatchMode) {
  FlatTreeNetwork net = make_network();
  Mode mode = std::get<1>(GetParam());
  topo::Topology t = net.build(mode);
  std::size_t side = 0, converter_local = 0;
  for (graph::LinkId l = 0; l < t.link_count(); ++l) {
    switch (t.link_info(l).origin) {
      case topo::LinkOrigin::InterPodSide: ++side; break;
      case topo::LinkOrigin::ConverterLocal: ++converter_local; break;
      default: break;
    }
  }
  if (mode == Mode::Clos) {
    EXPECT_EQ(side, 0u);
    EXPECT_EQ(converter_local, 0u);
  }
  if (mode == Mode::LocalRandom) {
    EXPECT_EQ(side, 0u);
    const Case& c = std::get<0>(GetParam());
    EXPECT_EQ(converter_local, static_cast<std::size_t>(net.params().pods()) *
                                   net.params().d() * c.n);
  }
  if (mode == Mode::GlobalRandom) {
    const Case& c = std::get<0>(GetParam());
    if (c.m > 0 && c.chain == PodChain::Ring && c.k % 4 == 0) EXPECT_GT(side, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModeSweep,
    ::testing::Combine(::testing::ValuesIn(sweep_cases()),
                       ::testing::Values(Mode::Clos, Mode::GlobalRandom,
                                         Mode::LocalRandom)),
    [](const ::testing::TestParamInfo<std::tuple<Case, Mode>>& info) {
      const Case& c = std::get<0>(info.param);
      std::string name = "k" + std::to_string(c.k) + "_m" + std::to_string(c.m) + "_n" +
                         std::to_string(c.n) + "_" +
                         std::string(to_string(c.pattern) == std::string("auto")
                                         ? "pauto"
                                         : to_string(c.pattern)) +
                         "_" + to_string(c.chain) + "_" + to_string(std::get<1>(info.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(HybridMode, ZonedBuildValidatesAndKeepsCounts) {
  FlatTreeConfig cfg;
  cfg.k = 8;
  FlatTreeNetwork net(cfg);
  std::vector<Mode> modes(net.params().pods(), Mode::LocalRandom);
  for (std::uint32_t p = 0; p < 4; ++p) modes[p] = Mode::GlobalRandom;
  topo::Topology t = net.build(modes);
  EXPECT_EQ(t.link_count(), 2u * 8 * 4 * 4);
  for (graph::NodeId v = 0; v < t.switch_count(); ++v)
    EXPECT_EQ(t.used_ports(v), 8u);
}

TEST(HybridMode, SideLinksOnlyInsideGlobalZone) {
  FlatTreeConfig cfg;
  cfg.k = 8;
  FlatTreeNetwork net(cfg);
  std::vector<Mode> modes(net.params().pods(), Mode::Clos);
  modes[2] = modes[3] = modes[4] = Mode::GlobalRandom;
  topo::Topology t = net.build(modes);
  for (graph::LinkId l = 0; l < t.link_count(); ++l) {
    if (t.link_info(l).origin != topo::LinkOrigin::InterPodSide) continue;
    const auto& link = t.graph().link(l);
    std::int32_t pa = t.info(link.a).pod, pb = t.info(link.b).pod;
    EXPECT_TRUE(modes[static_cast<std::uint32_t>(pa)] == Mode::GlobalRandom &&
                modes[static_cast<std::uint32_t>(pb)] == Mode::GlobalRandom);
  }
}

TEST(HybridMode, AllClosZoneEqualsPureClosLinks) {
  FlatTreeConfig cfg;
  cfg.k = 6;
  FlatTreeNetwork net(cfg);
  std::vector<Mode> modes(net.params().pods(), Mode::Clos);
  topo::Topology hybrid = net.build(modes);
  topo::Topology clos = net.build(Mode::Clos);
  EXPECT_EQ(hybrid.link_count(), clos.link_count());
  for (topo::ServerId s = 0; s < hybrid.server_count(); ++s)
    EXPECT_EQ(hybrid.host(s), clos.host(s));
}

}  // namespace
}  // namespace flattree::core
