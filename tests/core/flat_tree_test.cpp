#include "core/flat_tree.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "topo/fat_tree.hpp"

namespace flattree::core {
namespace {

using LinkKey = std::pair<topo::NodeId, topo::NodeId>;

std::map<LinkKey, std::size_t> link_multiset(const topo::Topology& t) {
  std::map<LinkKey, std::size_t> out;
  for (const auto& l : t.graph().links())
    ++out[{std::min(l.a, l.b), std::max(l.a, l.b)}];
  return out;
}

TEST(FlatTreeConfig, ProfiledDefaults) {
  EXPECT_EQ(FlatTreeConfig::default_m(8), 1u);
  EXPECT_EQ(FlatTreeConfig::default_n(8), 2u);
  EXPECT_EQ(FlatTreeConfig::default_m(16), 2u);
  EXPECT_EQ(FlatTreeConfig::default_n(16), 4u);
  EXPECT_EQ(FlatTreeConfig::default_m(12), 2u);  // 1.5 rounds to 2
  EXPECT_EQ(FlatTreeConfig::default_n(12), 3u);
  EXPECT_EQ(FlatTreeConfig::default_m(4), 1u);   // 0.5 rounds up
}

TEST(FlatTreeNetwork, RejectsBadParameters) {
  FlatTreeConfig cfg;
  cfg.k = 5;
  EXPECT_THROW(FlatTreeNetwork{cfg}, std::invalid_argument);
  cfg.k = 8;
  cfg.m = 3;
  cfg.n = 2;  // m + n > k/2
  EXPECT_THROW(FlatTreeNetwork{cfg}, std::invalid_argument);
}

TEST(FlatTreeNetwork, ConverterCountMatchesLayout) {
  FlatTreeConfig cfg;
  cfg.k = 8;
  cfg.m = 1;
  cfg.n = 2;
  FlatTreeNetwork net(cfg);
  // pods * d * (m+n) = 8 * 4 * 3.
  EXPECT_EQ(net.converters().size(), 96u);
}

TEST(FlatTreeNetwork, ConverterAttachmentsConsistent) {
  FlatTreeConfig cfg;
  cfg.k = 8;
  FlatTreeNetwork net(cfg);
  const auto& params = net.params();
  const std::uint32_t group = params.h() / params.r();
  for (const Converter& c : net.converters()) {
    // Edge and aggregation switches belong to the converter's pod.
    EXPECT_EQ(c.edge, net.edge_switch(c.pod, c.col));
    EXPECT_EQ(c.agg, net.agg_switch(c.pod, c.col / params.r()));
    // Core connector lands in edge j's core group.
    std::uint32_t core_index =
        c.core - net.core_switch(0);
    EXPECT_GE(core_index, c.col * group);
    EXPECT_LT(core_index, (c.col + 1) * group);
    // Tapped server belongs to edge j of the pod.
    EXPECT_EQ(net.pod_of_server(c.server), c.pod);
  }
}

TEST(FlatTreeNetwork, SixPortPairingIsInvolutionAcrossAdjacentPods) {
  FlatTreeConfig cfg;
  cfg.k = 8;
  cfg.chain = PodChain::Ring;
  FlatTreeNetwork net(cfg);
  const auto& cs = net.converters();
  std::size_t paired = 0, canonical = 0;
  for (std::uint32_t i = 0; i < cs.size(); ++i) {
    const Converter& c = cs[i];
    if (c.type == ConverterType::FourPort) {
      EXPECT_EQ(c.peer, kNoPeer);
      continue;
    }
    ASSERT_NE(c.peer, kNoPeer) << "ring chain must pair every 6-port converter";
    const Converter& p = cs[c.peer];
    EXPECT_EQ(p.peer, i);  // involution
    EXPECT_EQ(p.row, c.row);
    // Adjacent pods (ring).
    std::uint32_t diff = (c.pod + net.params().pods() - p.pod) % net.params().pods();
    EXPECT_TRUE(diff == 1 || diff == net.params().pods() - 1);
    EXPECT_NE(c.pair_canonical, p.pair_canonical);
    ++paired;
    canonical += c.pair_canonical;
  }
  EXPECT_EQ(canonical * 2, paired);
}

TEST(FlatTreeNetwork, LinearChainLeavesEndBladesUnpaired) {
  FlatTreeConfig cfg;
  cfg.k = 8;
  cfg.m = 1;
  cfg.n = 1;
  cfg.chain = PodChain::Linear;
  FlatTreeNetwork net(cfg);
  const auto& layout = net.layout();
  std::size_t unpaired = 0;
  for (const Converter& c : net.converters())
    if (c.type == ConverterType::SixPort && c.peer == kNoPeer) ++unpaired;
  // Pod 0's left blade B and last pod's right blade B: m * w each.
  EXPECT_EQ(unpaired, cfg.m * (layout.left_width() + layout.right_width()));
}

TEST(FlatTreeNetwork, PairColumnsFollowShiftFormula) {
  FlatTreeConfig cfg;
  cfg.k = 16;  // w = 4
  FlatTreeNetwork net(cfg);
  const std::uint32_t w = net.layout().left_width();
  for (const Converter& c : net.converters()) {
    if (c.type != ConverterType::SixPort || c.peer == kNoPeer) continue;
    if (c.col >= w) continue;  // consider left-blade members only
    const Converter& peer = net.converters()[c.peer];
    EXPECT_EQ(peer.col, w + side_peer_column(c.row, c.col, w));
    EXPECT_EQ(peer.pod, (c.pod + net.params().pods() - 1) % net.params().pods());
  }
}

TEST(FlatTreeNetwork, ClosModeEqualsFatTreeExactly) {
  for (std::uint32_t k : {4u, 6u, 8u, 12u}) {
    FlatTreeConfig cfg;
    cfg.k = k;
    FlatTreeNetwork net(cfg);
    topo::Topology clos = net.build(Mode::Clos);
    topo::FatTree ft = topo::build_fat_tree(k);
    EXPECT_EQ(link_multiset(clos), link_multiset(ft.topo)) << "k=" << k;
    ASSERT_EQ(clos.server_count(), ft.topo.server_count());
    for (topo::ServerId s = 0; s < clos.server_count(); ++s)
      EXPECT_EQ(clos.host(s), ft.topo.host(s));
  }
}

TEST(FlatTreeNetwork, AssignConfigsRejectsBadPodCount) {
  FlatTreeConfig cfg;
  cfg.k = 4;
  FlatTreeNetwork net(cfg);
  EXPECT_THROW(net.assign_configs(std::vector<Mode>(3, Mode::Clos)),
               std::invalid_argument);
}

TEST(FlatTreeNetwork, MaterializeRejectsInvalidAssignment) {
  FlatTreeConfig cfg;
  cfg.k = 4;
  FlatTreeNetwork net(cfg);
  auto configs = net.assign_configs(Mode::Clos);
  // Corrupt: put a 4-port converter into Side.
  for (std::size_t i = 0; i < net.converters().size(); ++i) {
    if (net.converters()[i].type == ConverterType::FourPort) {
      configs[i] = ConverterConfig::Side;
      break;
    }
  }
  EXPECT_THROW(net.materialize(configs), std::invalid_argument);
}

TEST(FlatTreeNetwork, GlobalModeUsesSideAndCrossByRowParity) {
  FlatTreeConfig cfg;
  cfg.k = 16;  // m = 2 rows: row 0 side, row 1 cross
  FlatTreeNetwork net(cfg);
  auto configs = net.assign_configs(Mode::GlobalRandom);
  for (std::size_t i = 0; i < net.converters().size(); ++i) {
    const Converter& c = net.converters()[i];
    if (c.type == ConverterType::FourPort) {
      EXPECT_EQ(configs[i], ConverterConfig::Local);
    } else if (c.peer != kNoPeer) {
      EXPECT_EQ(configs[i],
                c.row % 2 == 0 ? ConverterConfig::Side : ConverterConfig::Cross);
    }
  }
}

TEST(FlatTreeNetwork, LocalModeConfigs) {
  FlatTreeConfig cfg;
  cfg.k = 8;
  FlatTreeNetwork net(cfg);
  auto configs = net.assign_configs(Mode::LocalRandom);
  for (std::size_t i = 0; i < net.converters().size(); ++i) {
    const Converter& c = net.converters()[i];
    EXPECT_EQ(configs[i], c.type == ConverterType::FourPort ? ConverterConfig::Local
                                                            : ConverterConfig::Default);
  }
}

TEST(FlatTreeNetwork, HybridBoundaryPairsFallBackToStandalone) {
  FlatTreeConfig cfg;
  cfg.k = 8;
  FlatTreeNetwork net(cfg);
  std::vector<Mode> modes(net.params().pods(), Mode::LocalRandom);
  modes[0] = modes[1] = modes[2] = Mode::GlobalRandom;
  auto configs = net.assign_configs(modes);
  EXPECT_EQ(validate_assignment(net.converters(), configs), "");
  for (std::size_t i = 0; i < net.converters().size(); ++i) {
    const Converter& c = net.converters()[i];
    if (c.type != ConverterType::SixPort || c.peer == kNoPeer) continue;
    const Converter& p = net.converters()[c.peer];
    bool both_global = modes[c.pod] == Mode::GlobalRandom &&
                       modes[p.pod] == Mode::GlobalRandom;
    bool is_paired_cfg =
        configs[i] == ConverterConfig::Side || configs[i] == ConverterConfig::Cross;
    EXPECT_EQ(is_paired_cfg, both_global);
  }
}

TEST(FlatTreeNetwork, PodOfServer) {
  FlatTreeConfig cfg;
  cfg.k = 8;
  FlatTreeNetwork net(cfg);
  EXPECT_EQ(net.pod_of_server(0), 0u);
  EXPECT_EQ(net.pod_of_server(net.params().servers_per_pod()), 1u);
  EXPECT_EQ(net.pod_of_server(net.params().total_servers() - 1),
            net.params().pods() - 1);
}

TEST(ModeToString, Coverage) {
  EXPECT_STREQ(to_string(Mode::Clos), "clos");
  EXPECT_STREQ(to_string(Mode::GlobalRandom), "global-random");
  EXPECT_STREQ(to_string(Mode::LocalRandom), "local-random");
}

}  // namespace
}  // namespace flattree::core
