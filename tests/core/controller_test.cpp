#include "core/controller.hpp"

#include <gtest/gtest.h>

#include <map>

namespace flattree::core {
namespace {

FlatTreeConfig small_config() {
  FlatTreeConfig cfg;
  cfg.k = 8;
  return cfg;
}

TEST(Controller, BootsInClos) {
  Controller ctl(small_config());
  for (Mode m : ctl.pod_modes()) EXPECT_EQ(m, Mode::Clos);
  topo::Topology t = ctl.topology();
  for (topo::ServerId s = 0; s < t.server_count(); ++s)
    EXPECT_EQ(t.info(t.host(s)).kind, topo::SwitchKind::Edge);
}

TEST(Controller, NoOpPlanIsEmpty) {
  Controller ctl(small_config());
  ReconfigPlan plan = ctl.plan(Mode::Clos);
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.links_added, 0u);
  EXPECT_EQ(plan.links_removed, 0u);
  EXPECT_EQ(plan.servers_moved, 0u);
}

TEST(Controller, ClosToGlobalTouchesEveryConverter) {
  Controller ctl(small_config());
  ReconfigPlan plan = ctl.plan(Mode::GlobalRandom);
  EXPECT_EQ(plan.steps.size(), ctl.network().converters().size());
  for (const ReconfigStep& s : plan.steps) EXPECT_EQ(s.from, ConverterConfig::Default);
}

TEST(Controller, ClosToLocalTouchesOnlyFourPorts) {
  Controller ctl(small_config());
  ReconfigPlan plan = ctl.plan(Mode::LocalRandom);
  std::size_t four_ports = 0;
  for (const Converter& c : ctl.network().converters())
    if (c.type == ConverterType::FourPort) ++four_ports;
  EXPECT_EQ(plan.steps.size(), four_ports);
  for (const ReconfigStep& s : plan.steps) EXPECT_EQ(s.to, ConverterConfig::Local);
}

TEST(Controller, LinkChurnConservesLinkCount) {
  Controller ctl(small_config());
  ReconfigPlan plan = ctl.plan(Mode::GlobalRandom);
  EXPECT_EQ(plan.links_added, plan.links_removed);
  EXPECT_GT(plan.links_added, 0u);
}

TEST(Controller, ServersMovedMatchesRelocations) {
  Controller ctl(small_config());
  ReconfigPlan plan = ctl.plan(Mode::LocalRandom);
  // Local mode relocates n servers per (edge, agg) pair.
  const auto& p = ctl.network().params();
  EXPECT_EQ(plan.servers_moved, static_cast<std::size_t>(p.pods()) * p.d() *
                                    ctl.network().config().n);
}

TEST(Controller, ApplyUpdatesState) {
  Controller ctl(small_config());
  ReconfigPlan plan = ctl.apply(Mode::GlobalRandom);
  EXPECT_FALSE(plan.empty());
  for (Mode m : ctl.pod_modes()) EXPECT_EQ(m, Mode::GlobalRandom);
  // Re-applying is a no-op.
  EXPECT_TRUE(ctl.apply(Mode::GlobalRandom).empty());
}

TEST(Controller, ApplyThenTopologyMatchesDirectBuild) {
  Controller ctl(small_config());
  ctl.apply(Mode::LocalRandom);
  topo::Topology via_ctl = ctl.topology();
  FlatTreeNetwork net(small_config());
  topo::Topology direct = net.build(Mode::LocalRandom);
  ASSERT_EQ(via_ctl.server_count(), direct.server_count());
  for (topo::ServerId s = 0; s < via_ctl.server_count(); ++s)
    EXPECT_EQ(via_ctl.host(s), direct.host(s));
  EXPECT_EQ(via_ctl.link_count(), direct.link_count());
}

TEST(Controller, RoundTripReturnsToClos) {
  Controller ctl(small_config());
  ReconfigPlan to_global = ctl.apply(Mode::GlobalRandom);
  ReconfigPlan back = ctl.apply(Mode::Clos);
  EXPECT_EQ(to_global.steps.size(), back.steps.size());
  EXPECT_EQ(back.links_added, to_global.links_removed);
  EXPECT_EQ(back.links_removed, to_global.links_added);
  for (Mode m : ctl.pod_modes()) EXPECT_EQ(m, Mode::Clos);
}

TEST(Controller, PerPodTargets) {
  Controller ctl(small_config());
  std::vector<Mode> target(ctl.network().params().pods(), Mode::Clos);
  target[0] = Mode::LocalRandom;
  ReconfigPlan plan = ctl.apply(target);
  // Only pod 0's 4-port converters change.
  for (const ReconfigStep& s : plan.steps)
    EXPECT_EQ(ctl.network().converters()[s.converter].pod, 0u);
  EXPECT_EQ(ctl.pod_modes()[0], Mode::LocalRandom);
  EXPECT_EQ(ctl.pod_modes()[1], Mode::Clos);
}

TEST(Controller, ApplyZonePartition) {
  Controller ctl(small_config());
  ZonePartition zones = ZonePartition::proportion(8, 0.5);
  ctl.apply(zones);
  EXPECT_EQ(ctl.pod_modes()[0], Mode::GlobalRandom);
  EXPECT_EQ(ctl.pod_modes()[7], Mode::LocalRandom);
}

TEST(Controller, PlanDoesNotMutate) {
  Controller ctl(small_config());
  ctl.plan(Mode::GlobalRandom);
  for (Mode m : ctl.pod_modes()) EXPECT_EQ(m, Mode::Clos);
  topo::Topology t = ctl.topology();
  for (topo::ServerId s = 0; s < t.server_count(); ++s)
    EXPECT_EQ(t.info(t.host(s)).kind, topo::SwitchKind::Edge);
}

}  // namespace
}  // namespace flattree::core
