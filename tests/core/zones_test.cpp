#include "core/zones.hpp"

#include <gtest/gtest.h>

namespace flattree::core {
namespace {

TEST(ZonePartition, ProportionSplits) {
  ZonePartition z = ZonePartition::proportion(10, 0.3);
  EXPECT_EQ(z.pods_in(Mode::GlobalRandom).size(), 3u);
  EXPECT_EQ(z.pods_in(Mode::LocalRandom).size(), 7u);
  EXPECT_EQ(z.pod_modes.size(), 10u);
}

TEST(ZonePartition, ProportionExtremes) {
  EXPECT_EQ(ZonePartition::proportion(10, 0.0).pods_in(Mode::GlobalRandom).size(), 0u);
  EXPECT_EQ(ZonePartition::proportion(10, 1.0).pods_in(Mode::GlobalRandom).size(), 10u);
}

TEST(ZonePartition, ProportionRounds) {
  // 0.25 of 10 pods -> lround(2.5) rounds away from zero -> 3.
  EXPECT_EQ(ZonePartition::proportion(10, 0.25).pods_in(Mode::GlobalRandom).size(), 3u);
  EXPECT_EQ(ZonePartition::proportion(30, 0.1).pods_in(Mode::GlobalRandom).size(), 3u);
}

TEST(ZonePartition, CustomRestMode) {
  ZonePartition z = ZonePartition::proportion(6, 0.5, Mode::Clos);
  EXPECT_EQ(z.pods_in(Mode::Clos).size(), 3u);
  EXPECT_TRUE(z.pods_in(Mode::LocalRandom).empty());
}

TEST(ZonePartition, RejectsBadFraction) {
  EXPECT_THROW(ZonePartition::proportion(4, -0.1), std::invalid_argument);
  EXPECT_THROW(ZonePartition::proportion(4, 1.1), std::invalid_argument);
}

TEST(ZonePartition, PodsInAscendingOrder) {
  ZonePartition z;
  z.pod_modes = {Mode::Clos, Mode::GlobalRandom, Mode::Clos, Mode::GlobalRandom};
  auto pods = z.pods_in(Mode::GlobalRandom);
  ASSERT_EQ(pods.size(), 2u);
  EXPECT_EQ(pods[0], 1u);
  EXPECT_EQ(pods[1], 3u);
}

TEST(ServersInPods, MapsPodsToServerRanges) {
  FlatTreeConfig cfg;
  cfg.k = 4;  // 4 servers per pod
  FlatTreeNetwork net(cfg);
  auto servers = servers_in_pods(net, {0, 2});
  ASSERT_EQ(servers.size(), 8u);
  EXPECT_EQ(servers[0], 0u);
  EXPECT_EQ(servers[3], 3u);
  EXPECT_EQ(servers[4], 8u);
  EXPECT_EQ(servers[7], 11u);
}

TEST(ServersInPods, EmptyPods) {
  FlatTreeConfig cfg;
  cfg.k = 4;
  FlatTreeNetwork net(cfg);
  EXPECT_TRUE(servers_in_pods(net, {}).empty());
}

TEST(RecommendZones, ProportionalToWorkload) {
  WorkloadHint hint;
  hint.servers_in_large_clusters = 300;
  hint.servers_in_small_clusters = 100;
  ZonePartition z = recommend_zones(8, hint);
  EXPECT_EQ(z.pods_in(Mode::GlobalRandom).size(), 6u);
  EXPECT_EQ(z.pods_in(Mode::LocalRandom).size(), 2u);
}

TEST(RecommendZones, AtLeastOnePodPerNonEmptyClass) {
  WorkloadHint hint;
  hint.servers_in_large_clusters = 1;
  hint.servers_in_small_clusters = 10000;
  ZonePartition z = recommend_zones(8, hint);
  EXPECT_EQ(z.pods_in(Mode::GlobalRandom).size(), 1u);

  hint.servers_in_large_clusters = 10000;
  hint.servers_in_small_clusters = 1;
  z = recommend_zones(8, hint);
  EXPECT_EQ(z.pods_in(Mode::GlobalRandom).size(), 7u);
}

TEST(RecommendZones, EmptyWorkloadStaysClos) {
  ZonePartition z = recommend_zones(8, WorkloadHint{});
  EXPECT_EQ(z.pods_in(Mode::Clos).size(), 8u);
}

}  // namespace
}  // namespace flattree::core
