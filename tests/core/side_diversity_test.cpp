// Network-level consequences of the inter-pod shifting pattern (paper
// Section 2.5): "We want to connect an edge/aggregation switch to as many
// different switches as possible in the adjacent Pod".

#include <gtest/gtest.h>

#include <set>

#include "core/flat_tree.hpp"

namespace flattree::core {
namespace {

TEST(SideDiversity, EdgeSwitchReachesDistinctAdjacentPodSwitches) {
  // k = 32 -> m = 4 rows of 6-port converters per pair; the shift pattern
  // must land each row's side link on a different adjacent-pod column.
  FlatTreeConfig cfg;
  cfg.k = 32;
  FlatTreeNetwork net(cfg);
  topo::Topology t = net.build(Mode::GlobalRandom);

  for (std::uint32_t pod = 0; pod < 4; ++pod) {  // sample a few pods
    for (std::uint32_t j = 0; j < net.params().d(); ++j) {
      NodeId edge = net.edge_switch(pod, j);
      std::set<NodeId> adjacent_peers;
      for (graph::LinkId l = 0; l < t.link_count(); ++l) {
        if (t.link_info(l).origin != topo::LinkOrigin::InterPodSide) continue;
        const auto& link = t.graph().link(l);
        if (link.a == edge) adjacent_peers.insert(link.b);
        if (link.b == edge) adjacent_peers.insert(link.a);
      }
      // m = 4 side links, all to distinct switches.
      EXPECT_EQ(adjacent_peers.size(), net.config().m) << "pod " << pod << " edge " << j;
    }
  }
}

TEST(SideDiversity, SideAndCrossBothPresent) {
  // Even rows pair as `side` (edge-edge', agg-agg'), odd rows as `cross`
  // (edge-agg'): with m >= 2 the network has both link flavors.
  FlatTreeConfig cfg;
  cfg.k = 16;  // m = 2
  FlatTreeNetwork net(cfg);
  topo::Topology t = net.build(Mode::GlobalRandom);
  bool edge_edge = false, edge_agg = false, agg_agg = false;
  for (graph::LinkId l = 0; l < t.link_count(); ++l) {
    if (t.link_info(l).origin != topo::LinkOrigin::InterPodSide) continue;
    const auto& link = t.graph().link(l);
    auto ka = t.info(link.a).kind, kb = t.info(link.b).kind;
    if (ka == topo::SwitchKind::Edge && kb == topo::SwitchKind::Edge) edge_edge = true;
    if (ka == topo::SwitchKind::Aggregation && kb == topo::SwitchKind::Aggregation)
      agg_agg = true;
    if (ka != kb) edge_agg = true;
  }
  EXPECT_TRUE(edge_edge);
  EXPECT_TRUE(agg_agg);
  EXPECT_TRUE(edge_agg);
}

TEST(SideDiversity, SideLinksOnlyBetweenAdjacentPods) {
  FlatTreeConfig cfg;
  cfg.k = 12;
  FlatTreeNetwork net(cfg);
  topo::Topology t = net.build(Mode::GlobalRandom);
  const std::int32_t pods = static_cast<std::int32_t>(net.params().pods());
  for (graph::LinkId l = 0; l < t.link_count(); ++l) {
    if (t.link_info(l).origin != topo::LinkOrigin::InterPodSide) continue;
    const auto& link = t.graph().link(l);
    std::int32_t pa = t.info(link.a).pod, pb = t.info(link.b).pod;
    std::int32_t diff = (pa - pb + pods) % pods;
    EXPECT_TRUE(diff == 1 || diff == pods - 1)
        << "side link between non-adjacent pods " << pa << " and " << pb;
  }
}

TEST(SideDiversity, SideLinkCountMatchesPairing) {
  // Ring chain, even d: every 6-port pair contributes exactly 2 links.
  for (std::uint32_t k : {8u, 12u, 16u}) {
    FlatTreeConfig cfg;
    cfg.k = k;
    FlatTreeNetwork net(cfg);
    topo::Topology t = net.build(Mode::GlobalRandom);
    std::size_t side = 0;
    for (graph::LinkId l = 0; l < t.link_count(); ++l)
      if (t.link_info(l).origin == topo::LinkOrigin::InterPodSide) ++side;
    std::size_t pairs = 0;
    for (const Converter& c : net.converters())
      if (c.pair_canonical) ++pairs;
    EXPECT_EQ(side, 2 * pairs) << "k=" << k;
    // All 6-ports paired: pairs = pods * d * m / 2.
    EXPECT_EQ(pairs, static_cast<std::size_t>(net.params().pods()) * net.params().d() *
                         net.config().m / 2);
  }
}

}  // namespace
}  // namespace flattree::core
