#include "core/recovery.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/bfs.hpp"

namespace flattree::core {
namespace {

FlatTreeNetwork make_net(std::uint32_t k = 8) {
  FlatTreeConfig cfg;
  cfg.k = k;
  return FlatTreeNetwork(cfg);
}

TEST(FailureSet, Contains) {
  FailureSet f;
  f.failed_switches = {3, 7};
  EXPECT_TRUE(f.contains(3));
  EXPECT_TRUE(f.contains(7));
  EXPECT_FALSE(f.contains(4));
}

TEST(ApplyFailures, RemovesIncidentLinks) {
  FlatTreeNetwork net = make_net();
  topo::Topology t = net.build(Mode::Clos);
  NodeId core0 = net.core_switch(0);
  FailureSet f;
  f.failed_switches = {core0};
  DegradedTopology d = apply_failures(t, f);
  EXPECT_EQ(d.failed_links, net.config().k);  // one link per pod
  EXPECT_EQ(d.topo.link_count(), t.link_count() - net.config().k);
  EXPECT_EQ(d.topo.graph().degree(core0), 0u);
  EXPECT_TRUE(d.stranded_servers.empty());  // Clos keeps servers on edges
}

TEST(ApplyFailures, StrandsServersOnFailedHosts) {
  FlatTreeNetwork net = make_net();
  topo::Topology t = net.build(Mode::GlobalRandom);
  // Find a core hosting servers (side/cross relocations).
  NodeId victim = graph::kInvalidNode;
  auto weights = t.servers_per_switch();
  for (NodeId v = 0; v < t.switch_count(); ++v) {
    if (t.info(v).kind == topo::SwitchKind::Core && weights[v] > 0) {
      victim = v;
      break;
    }
  }
  ASSERT_NE(victim, graph::kInvalidNode);
  FailureSet f;
  f.failed_switches = {victim};
  DegradedTopology d = apply_failures(t, f);
  EXPECT_EQ(d.stranded_servers.size(), weights[victim]);
}

TEST(ApplyFailures, PreservesIdsAndOtherServers) {
  FlatTreeNetwork net = make_net();
  topo::Topology t = net.build(Mode::Clos);
  FailureSet f;
  f.failed_switches = {net.agg_switch(0, 0)};
  DegradedTopology d = apply_failures(t, f);
  ASSERT_EQ(d.topo.switch_count(), t.switch_count());
  ASSERT_EQ(d.topo.server_count(), t.server_count());
  for (topo::ServerId s = 0; s < t.server_count(); ++s)
    EXPECT_EQ(d.topo.host(s), t.host(s));
}

TEST(PlanRecovery, RescuesServersFromFailedCore) {
  FlatTreeNetwork net = make_net();
  auto configs = net.assign_configs(Mode::GlobalRandom);
  topo::Topology t = net.materialize(configs);
  // Fail every core that hosts servers in one group.
  auto weights = t.servers_per_switch();
  FailureSet f;
  for (NodeId v = 0; v < t.switch_count(); ++v)
    if (t.info(v).kind == topo::SwitchKind::Core && weights[v] > 0) {
      f.failed_switches.push_back(v);
      if (f.failed_switches.size() == 3) break;
    }
  ASSERT_FALSE(f.failed_switches.empty());
  std::size_t before = stranded_server_count(net, configs, f);
  EXPECT_GT(before, 0u);

  auto recovered = plan_recovery(net, configs, f).configs;
  EXPECT_EQ(validate_assignment(net.converters(), recovered), "");
  EXPECT_EQ(stranded_server_count(net, recovered, f), 0u);
}

TEST(PlanRecovery, RescuesServersFromFailedEdge) {
  FlatTreeNetwork net = make_net();
  auto configs = net.assign_configs(Mode::Clos);
  FailureSet f;
  f.failed_switches = {net.edge_switch(0, 0)};
  std::size_t before = stranded_server_count(net, configs, f);
  EXPECT_EQ(before, net.params().servers_per_edge());

  auto recovered = plan_recovery(net, configs, f).configs;
  // The m + n tapped servers move to the aggregation switch; the rest are
  // hard-wired to the failed edge switch and cannot be saved.
  std::size_t after = stranded_server_count(net, recovered, f);
  EXPECT_EQ(after, net.params().servers_per_edge() - net.config().m - net.config().n);
}

TEST(PlanRecovery, UntouchedWhenNoRelevantFailure) {
  FlatTreeNetwork net = make_net();
  auto configs = net.assign_configs(Mode::GlobalRandom);
  FailureSet f;
  // Fail a core with no servers under the current configuration.
  topo::Topology t = net.materialize(configs);
  auto weights = t.servers_per_switch();
  for (NodeId v = 0; v < t.switch_count(); ++v)
    if (t.info(v).kind == topo::SwitchKind::Core && weights[v] == 0) {
      f.failed_switches.push_back(v);
      break;
    }
  if (f.failed_switches.empty()) GTEST_SKIP() << "all cores host servers";
  auto recovered = plan_recovery(net, configs, f).configs;
  EXPECT_EQ(recovered, configs);
}

TEST(PlanRecovery, PairFlippedJointly) {
  FlatTreeNetwork net = make_net();
  auto configs = net.assign_configs(Mode::GlobalRandom);
  // Pick any side-configured converter and fail its core.
  std::uint32_t idx = ~0u;
  for (std::uint32_t i = 0; i < net.converters().size(); ++i)
    if (configs[i] == ConverterConfig::Side) {
      idx = i;
      break;
    }
  ASSERT_NE(idx, ~0u);
  FailureSet f;
  f.failed_switches = {net.converters()[idx].core};
  auto recovered = plan_recovery(net, configs, f).configs;
  std::uint32_t peer = net.converters()[idx].peer;
  EXPECT_EQ(recovered[idx], ConverterConfig::Local);
  EXPECT_EQ(recovered[peer], ConverterConfig::Local);
}

TEST(PlanRecovery, FallsBackToEdgeWhenAggAlsoFailed) {
  FlatTreeNetwork net = make_net();
  auto configs = net.assign_configs(Mode::GlobalRandom);
  std::uint32_t idx = ~0u;
  for (std::uint32_t i = 0; i < net.converters().size(); ++i)
    if (configs[i] == ConverterConfig::Side) {
      idx = i;
      break;
    }
  ASSERT_NE(idx, ~0u);
  const Converter& c = net.converters()[idx];
  FailureSet f;
  f.failed_switches = {c.core, c.agg};
  auto recovered = plan_recovery(net, configs, f).configs;
  EXPECT_EQ(recovered[idx], ConverterConfig::Default);  // edge still alive
}

TEST(PlanRecovery, ReportsUnrecoverableWhenAggAndEdgeBothFailed) {
  // Regression: safe_standalone used to return Local when both standalone
  // homes had failed, silently homing the server on the dead aggregation
  // switch and reporting the recovery as successful.
  FlatTreeNetwork net = make_net();
  auto configs = net.assign_configs(Mode::GlobalRandom);
  std::uint32_t idx = ~0u;
  for (std::uint32_t i = 0; i < net.converters().size(); ++i)
    if (configs[i] == ConverterConfig::Side) {
      idx = i;
      break;
    }
  ASSERT_NE(idx, ~0u);
  const Converter& c = net.converters()[idx];
  FailureSet f;
  f.failed_switches = {c.core, c.agg, c.edge};
  RecoveryPlan plan = plan_recovery(net, configs, f);
  // The converter is reported unrecoverable, not silently "rescued".
  // (Other converters tapping the same failed edge/agg blade are reported
  // too; every reported converter must genuinely have both homes dead.)
  EXPECT_TRUE(std::find(plan.unrecoverable.begin(), plan.unrecoverable.end(), idx) !=
              plan.unrecoverable.end());
  for (std::uint32_t u : plan.unrecoverable) {
    EXPECT_TRUE(f.contains(net.converters()[u].agg));
    EXPECT_TRUE(f.contains(net.converters()[u].edge));
  }
  // The assignment stays physically valid and the peer (whose own homes
  // are in the adjacent pod) is recovered normally.
  EXPECT_EQ(validate_assignment(net.converters(), plan.configs), "");
  std::uint32_t peer = c.peer;
  EXPECT_EQ(plan.configs[peer], ConverterConfig::Local);
  // The stranded count agrees: the unrecoverable server stays stranded.
  std::size_t stranded = stranded_server_count(net, plan.configs, f);
  EXPECT_GE(stranded, plan.unrecoverable.size());
  topo::Topology t = net.materialize(plan.configs);
  EXPECT_TRUE(f.contains(t.host(c.server)));
}

TEST(PlanRecovery, UnrecoverableFourPortConverter) {
  FlatTreeNetwork net = make_net();
  auto configs = net.assign_configs(Mode::GlobalRandom);
  std::uint32_t idx = ~0u;
  for (std::uint32_t i = 0; i < net.converters().size(); ++i)
    if (net.converters()[i].type == ConverterType::FourPort) {
      idx = i;
      break;
    }
  ASSERT_NE(idx, ~0u);
  ASSERT_EQ(configs[idx], ConverterConfig::Local);  // global-random 4-port
  const Converter& c = net.converters()[idx];
  FailureSet f;
  f.failed_switches = {c.agg, c.edge};
  RecoveryPlan plan = plan_recovery(net, configs, f);
  ASSERT_FALSE(plan.unrecoverable.empty());
  EXPECT_TRUE(std::find(plan.unrecoverable.begin(), plan.unrecoverable.end(), idx) !=
              plan.unrecoverable.end());
}

// -- input validation / dedup satellites (ISSUE 5) --------------------------

TEST(FailureSet, NormalizeSortsDedupsAndRangeChecks) {
  FailureSet f;
  f.failed_switches = {9, 3, 9, 3, 1};
  f.normalize(16);
  EXPECT_EQ(f.failed_switches, (std::vector<NodeId>{1, 3, 9}));
  EXPECT_TRUE(f.contains(3));   // binary-search path on the sorted set
  EXPECT_FALSE(f.contains(4));

  FailureSet empty;
  empty.normalize(16);  // empty sets are fine everywhere
  EXPECT_TRUE(empty.failed_switches.empty());
  EXPECT_FALSE(empty.contains(0));

  FailureSet bad;
  bad.failed_switches = {16};
  EXPECT_THROW(bad.normalize(16), std::invalid_argument);
}

TEST(FailureMask, CollapsesDuplicatesAndRejectsOutOfRange) {
  FailureSet f;
  f.failed_switches = {5, 2, 5, 2};
  FailureMask mask(f, 8);
  EXPECT_EQ(mask.count(), 2u);
  EXPECT_TRUE(mask.failed(2));
  EXPECT_TRUE(mask.failed(5));
  EXPECT_FALSE(mask.failed(3));

  FailureSet bad;
  bad.failed_switches = {8};
  EXPECT_THROW(FailureMask(bad, 8), std::invalid_argument);
}

// Regression: duplicate and unsorted ids used to flow straight into the
// recovery entry points; they must behave exactly like the deduplicated
// set, and out-of-range ids must throw instead of being ignored.
TEST(ApplyFailures, DuplicateIdsBehaveLikeTheDedupedSet) {
  FlatTreeNetwork net = make_net();
  topo::Topology t = net.build(Mode::GlobalRandom);
  NodeId core0 = net.core_switch(0);
  NodeId agg0 = net.agg_switch(0, 0);
  FailureSet dup, clean;
  dup.failed_switches = {core0, agg0, core0, agg0, core0};
  clean.failed_switches = {agg0, core0};

  DegradedTopology a = apply_failures(t, dup);
  DegradedTopology b = apply_failures(t, clean);
  EXPECT_EQ(a.failed_links, b.failed_links);
  EXPECT_EQ(a.stranded_servers, b.stranded_servers);
  EXPECT_EQ(a.topo.link_count(), b.topo.link_count());

  auto configs = net.assign_configs(Mode::GlobalRandom);
  EXPECT_EQ(plan_recovery(net, configs, dup).configs,
            plan_recovery(net, configs, clean).configs);
  EXPECT_EQ(stranded_server_count(net, configs, dup),
            stranded_server_count(net, configs, clean));

  FailureSet bad;
  bad.failed_switches = {net.params().total_switches()};
  EXPECT_THROW(apply_failures(t, bad), std::invalid_argument);
  EXPECT_THROW(plan_recovery(net, configs, bad), std::invalid_argument);
}

TEST(ApplyFailures, EmptySetIsANoOp) {
  FlatTreeNetwork net = make_net();
  topo::Topology t = net.build(Mode::GlobalRandom);
  FailureSet none;
  DegradedTopology d = apply_failures(t, none);
  EXPECT_EQ(d.failed_links, 0u);
  EXPECT_TRUE(d.stranded_servers.empty());
  EXPECT_EQ(d.topo.link_count(), t.link_count());
  auto configs = net.assign_configs(Mode::GlobalRandom);
  EXPECT_EQ(plan_recovery(net, configs, none).configs, configs);
}

TEST(PlanRecovery, AllCoresFailedFlipsEverythingStandalone) {
  FlatTreeNetwork net = make_net();
  auto configs = net.assign_configs(Mode::GlobalRandom);
  FailureSet f;
  topo::Topology t = net.materialize(configs);
  for (NodeId v = 0; v < t.switch_count(); ++v)
    if (t.info(v).kind == topo::SwitchKind::Core) f.failed_switches.push_back(v);
  ASSERT_FALSE(f.failed_switches.empty());

  RecoveryPlan plan = plan_recovery(net, configs, f);
  EXPECT_EQ(validate_assignment(net.converters(), plan.configs), "");
  EXPECT_TRUE(plan.unrecoverable.empty());  // agg/edge homes all alive
  EXPECT_EQ(stranded_server_count(net, plan.configs, f), 0u);
  for (std::uint32_t i = 0; i < net.converters().size(); ++i) {
    EXPECT_NE(plan.configs[i], ConverterConfig::Side);
    EXPECT_NE(plan.configs[i], ConverterConfig::Cross);
  }
}

// -- plan_recovery edge-case satellites (ISSUE 5) ---------------------------

// Every standalone home of one side/cross member is dead while its
// partner's homes are alive: the member is unrecoverable, the partner must
// still be rescued to a standalone home of its own.
TEST(PlanRecovery, PairMemberWithAllHomesDeadLeavesPartnerRecovered) {
  FlatTreeNetwork net = make_net();
  auto configs = net.assign_configs(Mode::GlobalRandom);
  std::uint32_t idx = ~0u;
  for (std::uint32_t i = 0; i < net.converters().size(); ++i)
    if (configs[i] == ConverterConfig::Side || configs[i] == ConverterConfig::Cross) {
      idx = i;
      break;
    }
  ASSERT_NE(idx, ~0u);
  const Converter& c = net.converters()[idx];
  const Converter& peer = net.converters()[c.peer];
  // Kill both of the member's standalone homes and both cores (so the pair
  // cannot stay jointly configured either). The partner's own standalone
  // homes sit in the other pod and stay alive.
  FailureSet f;
  f.failed_switches = {c.core, c.agg, c.edge, peer.core};
  ASSERT_NE(peer.agg, c.agg);
  ASSERT_NE(peer.edge, c.edge);

  RecoveryPlan plan = plan_recovery(net, configs, f);
  EXPECT_EQ(validate_assignment(net.converters(), plan.configs), "");
  EXPECT_TRUE(std::find(plan.unrecoverable.begin(), plan.unrecoverable.end(), idx) !=
              plan.unrecoverable.end());
  EXPECT_TRUE(std::find(plan.unrecoverable.begin(), plan.unrecoverable.end(), c.peer) ==
              plan.unrecoverable.end());
  EXPECT_EQ(plan.configs[c.peer], ConverterConfig::Local);
  topo::Topology t = net.materialize(plan.configs);
  EXPECT_EQ(t.host(peer.server), peer.agg);
}

// Planning on an already-recovered configuration is idempotent: the same
// failures produce no further churn and the same unrecoverable verdicts.
TEST(PlanRecovery, IdempotentOnARecoveredConfiguration) {
  FlatTreeNetwork net = make_net();
  auto configs = net.assign_configs(Mode::GlobalRandom);
  FailureSet f;
  topo::Topology t = net.materialize(configs);
  auto weights = t.servers_per_switch();
  for (NodeId v = 0; v < t.switch_count(); ++v)
    if (t.info(v).kind == topo::SwitchKind::Core && weights[v] > 0)
      f.failed_switches.push_back(v);
  // Make one converter genuinely unrecoverable too.
  const Converter& c0 = net.converters()[0];
  f.failed_switches.push_back(c0.agg);
  f.failed_switches.push_back(c0.edge);

  RecoveryPlan first = plan_recovery(net, configs, f);
  RecoveryPlan second = plan_recovery(net, first.configs, f);
  EXPECT_EQ(second.configs, first.configs);
  EXPECT_EQ(second.unrecoverable, first.unrecoverable);
  RecoveryPlan third = plan_recovery(net, second.configs, f);
  EXPECT_EQ(third.configs, first.configs);
}

TEST(Recovery, DegradedThroughputImproves) {
  // Recovery must not leave the degraded network worse-connected: all
  // servers reachable again means APL computable where it was not.
  FlatTreeNetwork net = make_net();
  auto configs = net.assign_configs(Mode::GlobalRandom);
  topo::Topology t = net.materialize(configs);
  auto weights = t.servers_per_switch();
  FailureSet f;
  for (NodeId v = 0; v < t.switch_count(); ++v)
    if (t.info(v).kind == topo::SwitchKind::Core && weights[v] > 0) {
      f.failed_switches.push_back(v);
      break;
    }
  auto recovered = plan_recovery(net, configs, f).configs;
  DegradedTopology d = apply_failures(net.materialize(recovered), f);
  EXPECT_TRUE(d.stranded_servers.empty());
  // Every surviving server pair still connected through the degraded net.
  auto dist = graph::bfs_distances(d.topo.graph(), d.topo.host(0));
  for (topo::ServerId s = 0; s < d.topo.server_count(); ++s)
    EXPECT_NE(dist[d.topo.host(s)], graph::kUnreachable);
}

}  // namespace
}  // namespace flattree::core
