#include "core/recovery.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/bfs.hpp"

namespace flattree::core {
namespace {

FlatTreeNetwork make_net(std::uint32_t k = 8) {
  FlatTreeConfig cfg;
  cfg.k = k;
  return FlatTreeNetwork(cfg);
}

TEST(FailureSet, Contains) {
  FailureSet f;
  f.failed_switches = {3, 7};
  EXPECT_TRUE(f.contains(3));
  EXPECT_TRUE(f.contains(7));
  EXPECT_FALSE(f.contains(4));
}

TEST(ApplyFailures, RemovesIncidentLinks) {
  FlatTreeNetwork net = make_net();
  topo::Topology t = net.build(Mode::Clos);
  NodeId core0 = net.core_switch(0);
  FailureSet f;
  f.failed_switches = {core0};
  DegradedTopology d = apply_failures(t, f);
  EXPECT_EQ(d.failed_links, net.config().k);  // one link per pod
  EXPECT_EQ(d.topo.link_count(), t.link_count() - net.config().k);
  EXPECT_EQ(d.topo.graph().degree(core0), 0u);
  EXPECT_TRUE(d.stranded_servers.empty());  // Clos keeps servers on edges
}

TEST(ApplyFailures, StrandsServersOnFailedHosts) {
  FlatTreeNetwork net = make_net();
  topo::Topology t = net.build(Mode::GlobalRandom);
  // Find a core hosting servers (side/cross relocations).
  NodeId victim = graph::kInvalidNode;
  auto weights = t.servers_per_switch();
  for (NodeId v = 0; v < t.switch_count(); ++v) {
    if (t.info(v).kind == topo::SwitchKind::Core && weights[v] > 0) {
      victim = v;
      break;
    }
  }
  ASSERT_NE(victim, graph::kInvalidNode);
  FailureSet f;
  f.failed_switches = {victim};
  DegradedTopology d = apply_failures(t, f);
  EXPECT_EQ(d.stranded_servers.size(), weights[victim]);
}

TEST(ApplyFailures, PreservesIdsAndOtherServers) {
  FlatTreeNetwork net = make_net();
  topo::Topology t = net.build(Mode::Clos);
  FailureSet f;
  f.failed_switches = {net.agg_switch(0, 0)};
  DegradedTopology d = apply_failures(t, f);
  ASSERT_EQ(d.topo.switch_count(), t.switch_count());
  ASSERT_EQ(d.topo.server_count(), t.server_count());
  for (topo::ServerId s = 0; s < t.server_count(); ++s)
    EXPECT_EQ(d.topo.host(s), t.host(s));
}

TEST(PlanRecovery, RescuesServersFromFailedCore) {
  FlatTreeNetwork net = make_net();
  auto configs = net.assign_configs(Mode::GlobalRandom);
  topo::Topology t = net.materialize(configs);
  // Fail every core that hosts servers in one group.
  auto weights = t.servers_per_switch();
  FailureSet f;
  for (NodeId v = 0; v < t.switch_count(); ++v)
    if (t.info(v).kind == topo::SwitchKind::Core && weights[v] > 0) {
      f.failed_switches.push_back(v);
      if (f.failed_switches.size() == 3) break;
    }
  ASSERT_FALSE(f.failed_switches.empty());
  std::size_t before = stranded_server_count(net, configs, f);
  EXPECT_GT(before, 0u);

  auto recovered = plan_recovery(net, configs, f).configs;
  EXPECT_EQ(validate_assignment(net.converters(), recovered), "");
  EXPECT_EQ(stranded_server_count(net, recovered, f), 0u);
}

TEST(PlanRecovery, RescuesServersFromFailedEdge) {
  FlatTreeNetwork net = make_net();
  auto configs = net.assign_configs(Mode::Clos);
  FailureSet f;
  f.failed_switches = {net.edge_switch(0, 0)};
  std::size_t before = stranded_server_count(net, configs, f);
  EXPECT_EQ(before, net.params().servers_per_edge());

  auto recovered = plan_recovery(net, configs, f).configs;
  // The m + n tapped servers move to the aggregation switch; the rest are
  // hard-wired to the failed edge switch and cannot be saved.
  std::size_t after = stranded_server_count(net, recovered, f);
  EXPECT_EQ(after, net.params().servers_per_edge() - net.config().m - net.config().n);
}

TEST(PlanRecovery, UntouchedWhenNoRelevantFailure) {
  FlatTreeNetwork net = make_net();
  auto configs = net.assign_configs(Mode::GlobalRandom);
  FailureSet f;
  // Fail a core with no servers under the current configuration.
  topo::Topology t = net.materialize(configs);
  auto weights = t.servers_per_switch();
  for (NodeId v = 0; v < t.switch_count(); ++v)
    if (t.info(v).kind == topo::SwitchKind::Core && weights[v] == 0) {
      f.failed_switches.push_back(v);
      break;
    }
  if (f.failed_switches.empty()) GTEST_SKIP() << "all cores host servers";
  auto recovered = plan_recovery(net, configs, f).configs;
  EXPECT_EQ(recovered, configs);
}

TEST(PlanRecovery, PairFlippedJointly) {
  FlatTreeNetwork net = make_net();
  auto configs = net.assign_configs(Mode::GlobalRandom);
  // Pick any side-configured converter and fail its core.
  std::uint32_t idx = ~0u;
  for (std::uint32_t i = 0; i < net.converters().size(); ++i)
    if (configs[i] == ConverterConfig::Side) {
      idx = i;
      break;
    }
  ASSERT_NE(idx, ~0u);
  FailureSet f;
  f.failed_switches = {net.converters()[idx].core};
  auto recovered = plan_recovery(net, configs, f).configs;
  std::uint32_t peer = net.converters()[idx].peer;
  EXPECT_EQ(recovered[idx], ConverterConfig::Local);
  EXPECT_EQ(recovered[peer], ConverterConfig::Local);
}

TEST(PlanRecovery, FallsBackToEdgeWhenAggAlsoFailed) {
  FlatTreeNetwork net = make_net();
  auto configs = net.assign_configs(Mode::GlobalRandom);
  std::uint32_t idx = ~0u;
  for (std::uint32_t i = 0; i < net.converters().size(); ++i)
    if (configs[i] == ConverterConfig::Side) {
      idx = i;
      break;
    }
  ASSERT_NE(idx, ~0u);
  const Converter& c = net.converters()[idx];
  FailureSet f;
  f.failed_switches = {c.core, c.agg};
  auto recovered = plan_recovery(net, configs, f).configs;
  EXPECT_EQ(recovered[idx], ConverterConfig::Default);  // edge still alive
}

TEST(PlanRecovery, ReportsUnrecoverableWhenAggAndEdgeBothFailed) {
  // Regression: safe_standalone used to return Local when both standalone
  // homes had failed, silently homing the server on the dead aggregation
  // switch and reporting the recovery as successful.
  FlatTreeNetwork net = make_net();
  auto configs = net.assign_configs(Mode::GlobalRandom);
  std::uint32_t idx = ~0u;
  for (std::uint32_t i = 0; i < net.converters().size(); ++i)
    if (configs[i] == ConverterConfig::Side) {
      idx = i;
      break;
    }
  ASSERT_NE(idx, ~0u);
  const Converter& c = net.converters()[idx];
  FailureSet f;
  f.failed_switches = {c.core, c.agg, c.edge};
  RecoveryPlan plan = plan_recovery(net, configs, f);
  // The converter is reported unrecoverable, not silently "rescued".
  // (Other converters tapping the same failed edge/agg blade are reported
  // too; every reported converter must genuinely have both homes dead.)
  EXPECT_TRUE(std::find(plan.unrecoverable.begin(), plan.unrecoverable.end(), idx) !=
              plan.unrecoverable.end());
  for (std::uint32_t u : plan.unrecoverable) {
    EXPECT_TRUE(f.contains(net.converters()[u].agg));
    EXPECT_TRUE(f.contains(net.converters()[u].edge));
  }
  // The assignment stays physically valid and the peer (whose own homes
  // are in the adjacent pod) is recovered normally.
  EXPECT_EQ(validate_assignment(net.converters(), plan.configs), "");
  std::uint32_t peer = c.peer;
  EXPECT_EQ(plan.configs[peer], ConverterConfig::Local);
  // The stranded count agrees: the unrecoverable server stays stranded.
  std::size_t stranded = stranded_server_count(net, plan.configs, f);
  EXPECT_GE(stranded, plan.unrecoverable.size());
  topo::Topology t = net.materialize(plan.configs);
  EXPECT_TRUE(f.contains(t.host(c.server)));
}

TEST(PlanRecovery, UnrecoverableFourPortConverter) {
  FlatTreeNetwork net = make_net();
  auto configs = net.assign_configs(Mode::GlobalRandom);
  std::uint32_t idx = ~0u;
  for (std::uint32_t i = 0; i < net.converters().size(); ++i)
    if (net.converters()[i].type == ConverterType::FourPort) {
      idx = i;
      break;
    }
  ASSERT_NE(idx, ~0u);
  ASSERT_EQ(configs[idx], ConverterConfig::Local);  // global-random 4-port
  const Converter& c = net.converters()[idx];
  FailureSet f;
  f.failed_switches = {c.agg, c.edge};
  RecoveryPlan plan = plan_recovery(net, configs, f);
  ASSERT_FALSE(plan.unrecoverable.empty());
  EXPECT_TRUE(std::find(plan.unrecoverable.begin(), plan.unrecoverable.end(), idx) !=
              plan.unrecoverable.end());
}

TEST(Recovery, DegradedThroughputImproves) {
  // Recovery must not leave the degraded network worse-connected: all
  // servers reachable again means APL computable where it was not.
  FlatTreeNetwork net = make_net();
  auto configs = net.assign_configs(Mode::GlobalRandom);
  topo::Topology t = net.materialize(configs);
  auto weights = t.servers_per_switch();
  FailureSet f;
  for (NodeId v = 0; v < t.switch_count(); ++v)
    if (t.info(v).kind == topo::SwitchKind::Core && weights[v] > 0) {
      f.failed_switches.push_back(v);
      break;
    }
  auto recovered = plan_recovery(net, configs, f).configs;
  DegradedTopology d = apply_failures(net.materialize(recovered), f);
  EXPECT_TRUE(d.stranded_servers.empty());
  // Every surviving server pair still connected through the degraded net.
  auto dist = graph::bfs_distances(d.topo.graph(), d.topo.host(0));
  for (topo::ServerId s = 0; s < d.topo.server_count(); ++s)
    EXPECT_NE(dist[d.topo.host(s)], graph::kUnreachable);
}

}  // namespace
}  // namespace flattree::core
