#include "core/pod.hpp"

#include <gtest/gtest.h>

namespace flattree::core {
namespace {

topo::ClosParams params(std::uint32_t k) {
  topo::ClosParams p;
  p.k = k;
  return p;
}

TEST(PodLayout, Geometry) {
  PodLayout l(params(8), /*m=*/1, /*n=*/2);
  EXPECT_EQ(l.d, 4u);
  EXPECT_EQ(l.left_width(), 2u);
  EXPECT_EQ(l.right_width(), 2u);
  EXPECT_TRUE(l.on_left(0));
  EXPECT_TRUE(l.on_left(1));
  EXPECT_FALSE(l.on_left(2));
  EXPECT_EQ(l.converters_per_pod(), 12u);  // d*(m+n) = 4*3
}

TEST(PodLayout, OddDSplitsUnevenly) {
  PodLayout l(params(6), 1, 1);
  EXPECT_EQ(l.d, 3u);
  EXPECT_EQ(l.left_width(), 1u);
  EXPECT_EQ(l.right_width(), 2u);
}

TEST(PodLayout, SlotRoundTrip) {
  PodLayout l(params(8), 2, 2);
  for (std::uint32_t slot = 0; slot < l.converters_per_pod(); ++slot) {
    auto info = l.slot_info(slot);
    std::uint32_t back = info.blade_b ? l.blade_b_slot(info.row, info.col)
                                      : l.blade_a_slot(info.row, info.col);
    EXPECT_EQ(back, slot);
  }
}

TEST(PodLayout, BladeAOccupiesLowSlots) {
  PodLayout l(params(8), 1, 2);
  EXPECT_FALSE(l.slot_info(0).blade_b);
  EXPECT_FALSE(l.slot_info(l.n * l.d - 1).blade_b);
  EXPECT_TRUE(l.slot_info(l.n * l.d).blade_b);
}

TEST(PodLayout, TappedServerConvention) {
  PodLayout l(params(8), 2, 2);  // n=2 blade A rows tap servers 0..1
  PodLayout::SlotInfo a0 = l.slot_info(l.blade_a_slot(0, 3));
  PodLayout::SlotInfo a1 = l.slot_info(l.blade_a_slot(1, 3));
  PodLayout::SlotInfo b0 = l.slot_info(l.blade_b_slot(0, 3));
  PodLayout::SlotInfo b1 = l.slot_info(l.blade_b_slot(1, 3));
  EXPECT_EQ(l.tapped_server(a0), 0u);
  EXPECT_EQ(l.tapped_server(a1), 1u);
  EXPECT_EQ(l.tapped_server(b0), 2u);  // n + row
  EXPECT_EQ(l.tapped_server(b1), 3u);
}

TEST(PodLayout, AggPairing) {
  PodLayout l(params(8), 1, 1);
  for (std::uint32_t col = 0; col < l.d; ++col)
    EXPECT_EQ(l.agg_of(col), col);  // r = 1 pairs E_j with A_j
}

TEST(PodLayout, OutOfRangeSlots) {
  PodLayout l(params(8), 1, 1);
  EXPECT_THROW(l.blade_a_slot(1, 0), std::out_of_range);   // only n=1 rows
  EXPECT_THROW(l.blade_b_slot(0, 4), std::out_of_range);   // only d=4 cols
  EXPECT_THROW(l.slot_info(l.converters_per_pod()), std::out_of_range);
}

TEST(PodLayout, RejectsTooManyConverters) {
  // m + n > h/r = k/2.
  EXPECT_THROW(PodLayout(params(8), 3, 2), std::invalid_argument);
  EXPECT_NO_THROW(PodLayout(params(8), 2, 2));
}

TEST(PodLayout, ZeroConvertersAllowed) {
  PodLayout l(params(8), 0, 0);
  EXPECT_EQ(l.converters_per_pod(), 0u);
}

}  // namespace
}  // namespace flattree::core
