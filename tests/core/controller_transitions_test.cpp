// Controller state-transition edges the service loop leans on (ISSUE 6):
// back-to-back conversions through the staged (micro-transaction) path,
// what-if queries against a mid-plan controller, and expansion requests
// while faults are outstanding. These pin down the ordering rules that
// svc::Session turns into protocol errors (svc.convert.in_flight,
// svc.expand.faults_outstanding).

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/controller.hpp"
#include "core/expansion.hpp"
#include "fault/resilient_controller.hpp"

namespace flattree {
namespace {

core::FlatTreeConfig small_config() {
  core::FlatTreeConfig cfg;
  cfg.k = 8;
  return cfg;
}

TEST(ControllerTransitions, BackToBackConversionsReturnHomeExactly) {
  // Clos -> global -> local -> clos through the staged path, one
  // micro-transaction at a time, must land on the boot configuration.
  fault::ResilientController ctl(small_config());
  std::vector<core::ConverterConfig> boot = ctl.current_configs();

  for (core::Mode target : {core::Mode::GlobalRandom, core::Mode::LocalRandom,
                            core::Mode::Clos}) {
    ctl.begin_conversion(target);
    while (ctl.conversion_in_flight()) ASSERT_GT(ctl.advance(1), 0u);
    EXPECT_TRUE(ctl.self_check().ok());
  }
  EXPECT_EQ(ctl.current_configs(), boot);
  for (core::Mode m : ctl.pod_modes()) EXPECT_EQ(m, core::Mode::Clos);
}

TEST(ControllerTransitions, BeginWhileInFlightThrows) {
  fault::ResilientController ctl(small_config());
  ctl.begin_conversion(core::Mode::GlobalRandom);
  ASSERT_TRUE(ctl.conversion_in_flight());
  EXPECT_THROW(ctl.begin_conversion(core::Mode::LocalRandom), std::logic_error);
  // The rejected begin must not have disturbed the in-flight plan.
  EXPECT_TRUE(ctl.conversion_in_flight());
  ctl.run_to_completion();
  EXPECT_FALSE(ctl.conversion_in_flight());
  EXPECT_TRUE(ctl.self_check().ok());
}

TEST(ControllerTransitions, WhatIfMidPlanIsPureAndConsistent) {
  // fault_aware_target is the service's what_if primitive: it must be
  // callable mid-conversion, must not mutate the live state, and must
  // return the same answer before and after the partial application it
  // was asked about (the hypothetical depends on faults, not plan
  // progress).
  fault::ResilientController ctl(small_config());
  ctl.begin_conversion(core::Mode::GlobalRandom);
  ctl.advance(3);
  ASSERT_TRUE(ctl.conversion_in_flight());

  std::vector<core::ConverterConfig> live = ctl.current_configs();
  std::size_t pending = ctl.pending_micro_txs();
  std::vector<core::Mode> target(ctl.network().params().pods(),
                                 core::Mode::LocalRandom);
  std::vector<core::ConverterConfig> hypo = ctl.fault_aware_target(target);
  ASSERT_EQ(hypo.size(), live.size());

  // Pure: nothing about the live controller moved.
  EXPECT_EQ(ctl.current_configs(), live);
  EXPECT_EQ(ctl.pending_micro_txs(), pending);
  EXPECT_TRUE(ctl.conversion_in_flight());

  // Consistent: plan progress does not change the hypothetical.
  ctl.advance(2);
  EXPECT_EQ(ctl.fault_aware_target(target), hypo);
  ctl.run_to_completion();
  EXPECT_EQ(ctl.fault_aware_target(target), hypo);
}

TEST(ControllerTransitions, WhatIfReflectsOutstandingFaults) {
  fault::ResilientController ctl(small_config());
  std::vector<core::Mode> target(ctl.network().params().pods(),
                                 core::Mode::GlobalRandom);
  std::vector<core::ConverterConfig> clean = ctl.fault_aware_target(target);

  // A stuck converter is frozen at its current (Clos/default) config, so
  // the hypothetical global target must differ from the clean one (a
  // Clos-to-global conversion touches every converter).
  fault::FaultEvent ev;
  ev.time = 1.0;
  ev.kind = fault::FaultKind::ConverterStuck;
  ev.a = 0;
  ctl.on_event(ev);
  std::vector<core::ConverterConfig> degraded = ctl.fault_aware_target(target);
  EXPECT_NE(degraded, clean);
  EXPECT_EQ(degraded[0], ctl.current_configs()[0]);  // frozen in place

  // Recovery restores the clean hypothetical.
  ev.time = 2.0;
  ev.kind = fault::FaultKind::ConverterFreed;
  ctl.on_event(ev);
  EXPECT_EQ(ctl.fault_aware_target(target), clean);
}

TEST(ControllerTransitions, EventTimeRegressionThrows) {
  fault::ResilientController ctl(small_config());
  fault::FaultEvent ev;
  ev.time = 5.0;
  ev.kind = fault::FaultKind::SwitchDown;
  ev.a = 0;
  ctl.on_event(ev);
  ev.time = 4.0;
  ev.kind = fault::FaultKind::SwitchUp;
  EXPECT_THROW(ctl.on_event(ev), std::invalid_argument);
  EXPECT_DOUBLE_EQ(ctl.now(), 5.0);
}

TEST(ControllerTransitions, ExpandWithFaultsOutstanding) {
  // core::expand rebuilds the plant from scratch, so the service refuses
  // it while faults are outstanding (the new controller would silently
  // forget them). This pins the underlying mechanics: expansion works on
  // a generic plant, and a fresh controller adopting the expanded network
  // boots all-up in Clos.
  topo::ClosParams params = topo::ClosParams::make_generic(
      /*pods=*/6, /*d=*/4, /*r=*/2, /*h=*/4, /*servers_per_edge=*/4,
      /*edge_ports=*/6, /*agg_ports=*/8, /*core_ports=*/10);
  core::FlatTreeNetwork base(params, 1, 1);
  fault::ResilientController ctl{core::FlatTreeNetwork(base)};

  fault::FaultEvent ev;
  ev.time = 1.0;
  ev.kind = fault::FaultKind::SwitchDown;
  ev.a = 0;
  ctl.on_event(ev);
  ASSERT_FALSE(ctl.fault_state().clean());

  // The plan itself is computable regardless of fault state...
  core::ExpansionPlan plan = core::plan_expansion(ctl.network().params(), 1);
  EXPECT_EQ(plan.pods_added, 1u);

  // ...recovery clears the fault, and the expanded plant adopts cleanly.
  ev.kind = fault::FaultKind::SwitchUp;
  ev.time = 2.0;
  ctl.on_event(ev);
  ASSERT_TRUE(ctl.fault_state().clean());
  core::FlatTreeNetwork bigger = core::expand(ctl.network(), plan);
  EXPECT_EQ(bigger.params().pods(), params.pods() + 1);
  fault::ResilientController fresh(std::move(bigger), ctl.options());
  EXPECT_TRUE(fresh.fault_state().clean());
  EXPECT_FALSE(fresh.conversion_in_flight());
  for (core::Mode m : fresh.pod_modes()) EXPECT_EQ(m, core::Mode::Clos);
  EXPECT_TRUE(fresh.self_check().ok());
}

TEST(ControllerTransitions, FatTreeExpansionIsInfeasible) {
  // A fat-tree's core ports are saturated by construction; plan_expansion
  // must throw rather than fabricate capacity (svc.expand.infeasible).
  core::Controller ctl(small_config());
  EXPECT_THROW(core::plan_expansion(ctl.network().params(), 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace flattree
