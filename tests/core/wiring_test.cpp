#include "core/wiring.hpp"

#include <gtest/gtest.h>

#include <set>

namespace flattree::core {
namespace {

TEST(PatternOffset, Pattern1AdvancesByM) {
  for (std::uint32_t p = 0; p < 10; ++p)
    EXPECT_EQ(pattern_offset(WiringPattern::Pattern1, p, 3, 8), (p * 3) % 8);
}

TEST(PatternOffset, Pattern2AdvancesByMPlusOne) {
  for (std::uint32_t p = 0; p < 10; ++p)
    EXPECT_EQ(pattern_offset(WiringPattern::Pattern2, p, 3, 8), (p * 4) % 8);
}

TEST(PatternOffset, AutoRejected) {
  EXPECT_THROW(pattern_offset(WiringPattern::Auto, 0, 1, 4), std::invalid_argument);
}

TEST(PatternDegenerate, DetectsZeroStep) {
  EXPECT_TRUE(pattern_degenerate(WiringPattern::Pattern1, 4, 4));   // m % g == 0
  EXPECT_TRUE(pattern_degenerate(WiringPattern::Pattern2, 3, 4));   // (m+1) % g == 0
  EXPECT_FALSE(pattern_degenerate(WiringPattern::Pattern1, 3, 4));
  EXPECT_FALSE(pattern_degenerate(WiringPattern::Pattern2, 4, 4));
}

TEST(ResolvePattern, PaperRuleWhenNonDegenerate) {
  // k % 4 == 0 -> pattern 2; otherwise pattern 1.
  EXPECT_EQ(resolve_pattern(WiringPattern::Auto, 16, 2, 8), WiringPattern::Pattern2);
  EXPECT_EQ(resolve_pattern(WiringPattern::Auto, 6, 1, 3), WiringPattern::Pattern1);
}

TEST(ResolvePattern, FallsBackWhenPreferredDegenerate) {
  // k=4: group=2, m=1: pattern 2 step 2 = 0 mod 2 -> degenerate -> pattern 1.
  EXPECT_EQ(resolve_pattern(WiringPattern::Auto, 4, 1, 2), WiringPattern::Pattern1);
  // k=6 with m=3, group=3: pattern 1 degenerate -> pattern 2.
  EXPECT_EQ(resolve_pattern(WiringPattern::Auto, 6, 3, 3), WiringPattern::Pattern2);
}

TEST(ResolvePattern, ExplicitChoiceHonored) {
  EXPECT_EQ(resolve_pattern(WiringPattern::Pattern1, 16, 2, 8), WiringPattern::Pattern1);
  EXPECT_EQ(resolve_pattern(WiringPattern::Pattern2, 6, 1, 3), WiringPattern::Pattern2);
}

TEST(ResolvePattern, ZeroMUsesPaperRule) {
  EXPECT_EQ(resolve_pattern(WiringPattern::Auto, 8, 0, 4), WiringPattern::Pattern2);
}

TEST(AssignCores, CoversGroupExactlyOnce) {
  for (auto pattern : {WiringPattern::Pattern1, WiringPattern::Pattern2}) {
    for (std::uint32_t p = 0; p < 6; ++p) {
      auto a = assign_cores(pattern, p, /*j=*/2, /*m=*/2, /*n=*/3, /*group=*/8);
      std::set<std::uint32_t> cores;
      for (auto c : a.core_of_blade_b) cores.insert(c);
      for (auto c : a.core_of_blade_a) cores.insert(c);
      for (auto c : a.core_of_agg) cores.insert(c);
      EXPECT_EQ(cores.size(), 8u);
      // Group j=2 of size 8 -> cores 16..23.
      EXPECT_EQ(*cores.begin(), 16u);
      EXPECT_EQ(*cores.rbegin(), 23u);
    }
  }
}

TEST(AssignCores, SlotOrderBladeBThenAThenAgg) {
  auto a = assign_cores(WiringPattern::Pattern1, /*p=*/0, /*j=*/0, 2, 3, 8);
  // Offset 0: blade B gets slots 0,1; blade A 2,3,4; agg 5,6,7.
  EXPECT_EQ(a.core_of_blade_b, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(a.core_of_blade_a, (std::vector<std::uint32_t>{2, 3, 4}));
  EXPECT_EQ(a.core_of_agg, (std::vector<std::uint32_t>{5, 6, 7}));
}

TEST(AssignCores, RotationWrapsWithinGroup) {
  auto a = assign_cores(WiringPattern::Pattern1, /*p=*/3, /*j=*/0, 2, 2, 4);
  // Offset = 3*2 mod 4 = 2: blade B slots 2,3; blade A wraps to 0,1.
  EXPECT_EQ(a.core_of_blade_b, (std::vector<std::uint32_t>{2, 3}));
  EXPECT_EQ(a.core_of_blade_a, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_TRUE(a.core_of_agg.empty());
}

TEST(AssignCores, RejectsOverfullGroup) {
  EXPECT_THROW(assign_cores(WiringPattern::Pattern1, 0, 0, 3, 3, 4),
               std::invalid_argument);
}

TEST(AssignCores, ZeroMAndN) {
  auto a = assign_cores(WiringPattern::Pattern1, 2, 1, 0, 0, 4);
  EXPECT_TRUE(a.core_of_blade_b.empty());
  EXPECT_TRUE(a.core_of_blade_a.empty());
  EXPECT_EQ(a.core_of_agg.size(), 4u);
}

TEST(SidePeerColumn, MatchesPaperFormula) {
  const std::uint32_t w = 8;
  for (std::uint32_t i = 0; i < 4; ++i)
    for (std::uint32_t j = 0; j < w; ++j)
      EXPECT_EQ(side_peer_column(i, j, w), (w - 1 - j + i) % w);
}

TEST(SidePeerColumn, BijectivePerRow) {
  const std::uint32_t w = 7;
  for (std::uint32_t i = 0; i < 5; ++i) {
    std::set<std::uint32_t> images;
    for (std::uint32_t j = 0; j < w; ++j) images.insert(side_peer_column(i, j, w));
    EXPECT_EQ(images.size(), w);
  }
}

TEST(SidePeerColumn, RowsShiftRelativeToEachOther) {
  // The design goal: converters in the same column connect to different
  // columns across rows (diversity).
  const std::uint32_t w = 6, j = 2;
  std::set<std::uint32_t> images;
  for (std::uint32_t i = 0; i < w; ++i) images.insert(side_peer_column(i, j, w));
  EXPECT_EQ(images.size(), w);
}

TEST(SidePeerColumn, ErrorCases) {
  EXPECT_THROW(side_peer_column(0, 0, 0), std::invalid_argument);
  EXPECT_THROW(side_peer_column(0, 5, 5), std::invalid_argument);
}

TEST(WiringToString, Coverage) {
  EXPECT_STREQ(to_string(WiringPattern::Pattern1), "pattern1");
  EXPECT_STREQ(to_string(WiringPattern::Pattern2), "pattern2");
  EXPECT_STREQ(to_string(WiringPattern::Auto), "auto");
  EXPECT_STREQ(to_string(PodChain::Ring), "ring");
  EXPECT_STREQ(to_string(PodChain::Linear), "linear");
}

}  // namespace
}  // namespace flattree::core
