#include "core/converter.hpp"

#include <gtest/gtest.h>

namespace flattree::core {
namespace {

Converter four_port() {
  Converter c;
  c.type = ConverterType::FourPort;
  return c;
}

Converter six_port(std::uint32_t peer = kNoPeer) {
  Converter c;
  c.type = ConverterType::SixPort;
  c.peer = peer;
  return c;
}

TEST(ConverterConfig, FourPortAllowsDefaultAndLocalOnly) {
  Converter c = four_port();
  EXPECT_TRUE(config_valid(c, ConverterConfig::Default));
  EXPECT_TRUE(config_valid(c, ConverterConfig::Local));
  EXPECT_FALSE(config_valid(c, ConverterConfig::Side));
  EXPECT_FALSE(config_valid(c, ConverterConfig::Cross));
}

TEST(ConverterConfig, UnpairedSixPortCannotSideOrCross) {
  Converter c = six_port();
  EXPECT_TRUE(config_valid(c, ConverterConfig::Default));
  EXPECT_TRUE(config_valid(c, ConverterConfig::Local));
  EXPECT_FALSE(config_valid(c, ConverterConfig::Side));
  EXPECT_FALSE(config_valid(c, ConverterConfig::Cross));
}

TEST(ConverterConfig, PairedSixPortAllowsAll) {
  Converter c = six_port(1);
  EXPECT_TRUE(config_valid(c, ConverterConfig::Side));
  EXPECT_TRUE(config_valid(c, ConverterConfig::Cross));
}

TEST(ValidateAssignment, AcceptsConsistentPair) {
  std::vector<Converter> cs{six_port(1), six_port(0)};
  cs[1].pair_canonical = true;
  std::vector<ConverterConfig> cfg{ConverterConfig::Side, ConverterConfig::Side};
  EXPECT_EQ(validate_assignment(cs, cfg), "");
  cfg = {ConverterConfig::Cross, ConverterConfig::Cross};
  EXPECT_EQ(validate_assignment(cs, cfg), "");
  cfg = {ConverterConfig::Default, ConverterConfig::Local};
  EXPECT_EQ(validate_assignment(cs, cfg), "");  // both standalone is fine
}

TEST(ValidateAssignment, RejectsMismatchedPair) {
  std::vector<Converter> cs{six_port(1), six_port(0)};
  std::vector<ConverterConfig> cfg{ConverterConfig::Side, ConverterConfig::Cross};
  EXPECT_NE(validate_assignment(cs, cfg), "");
  cfg = {ConverterConfig::Side, ConverterConfig::Default};
  EXPECT_NE(validate_assignment(cs, cfg), "");
}

TEST(ValidateAssignment, RejectsInvalidSingleConfig) {
  std::vector<Converter> cs{four_port()};
  std::vector<ConverterConfig> cfg{ConverterConfig::Side};
  EXPECT_NE(validate_assignment(cs, cfg), "");
}

TEST(ValidateAssignment, RejectsSizeMismatch) {
  std::vector<Converter> cs{four_port()};
  std::vector<ConverterConfig> cfg;
  EXPECT_NE(validate_assignment(cs, cfg), "");
}

TEST(ConverterToString, Coverage) {
  EXPECT_STREQ(to_string(ConverterType::FourPort), "4-port");
  EXPECT_STREQ(to_string(ConverterType::SixPort), "6-port");
  EXPECT_STREQ(to_string(ConverterConfig::Default), "default");
  EXPECT_STREQ(to_string(ConverterConfig::Local), "local");
  EXPECT_STREQ(to_string(ConverterConfig::Side), "side");
  EXPECT_STREQ(to_string(ConverterConfig::Cross), "cross");
}

}  // namespace
}  // namespace flattree::core
