#include "core/profile.hpp"

#include <gtest/gtest.h>

#include "topo/apl.hpp"
#include "topo/fat_tree.hpp"

namespace flattree::core {
namespace {

TEST(ProfileMn, SweepRespectsConstraints) {
  ProfileResult r = profile_mn(8);
  EXPECT_FALSE(r.points.empty());
  for (const ProfilePoint& p : r.points) {
    EXPECT_GE(p.m, 1u);
    EXPECT_GE(p.n, 1u);
    EXPECT_LE(p.m + p.n, 4u);  // k/2
    EXPECT_GT(p.apl, 0.0);
  }
}

TEST(ProfileMn, BestPointIsMinimal) {
  ProfileResult r = profile_mn(8);
  for (const ProfilePoint& p : r.points) EXPECT_LE(r.best_apl, p.apl);
  bool found = false;
  for (const ProfilePoint& p : r.points)
    if (p.m == r.best_m && p.n == r.best_n) {
      found = true;
      EXPECT_DOUBLE_EQ(p.apl, r.best_apl);
    }
  EXPECT_TRUE(found);
}

TEST(ProfileMn, PaperStepIsKOver8) {
  // k=16 -> step 2: all m, n are multiples of 2.
  ProfileResult r = profile_mn(16);
  for (const ProfilePoint& p : r.points) {
    EXPECT_EQ(p.m % 2, 0u);
    EXPECT_EQ(p.n % 2, 0u);
  }
  // Sweep m,n in {2,4,6} with m+n <= 8: (2,2)(2,4)(2,6)(4,2)(4,4)(6,2).
  EXPECT_EQ(r.points.size(), 6u);
}

TEST(ProfileMn, CustomStep) {
  ProfileResult r = profile_mn(8, WiringPattern::Auto, PodChain::Ring, /*step=*/2);
  // m,n in {2} with m+n <= 4: just (2,2).
  ASSERT_EQ(r.points.size(), 1u);
  EXPECT_EQ(r.points[0].m, 2u);
  EXPECT_EQ(r.points[0].n, 2u);
}

TEST(ProfileMn, ProfiledAplBeatsFatTree) {
  ProfileResult r = profile_mn(8);
  topo::FatTree ft = topo::build_fat_tree(8);
  EXPECT_LT(r.best_apl, topo::server_apl(ft.topo).average);
}

TEST(ProfileMn, AplValuesMatchDirectConstruction) {
  ProfileResult r = profile_mn(8);
  for (const ProfilePoint& p : r.points) {
    FlatTreeConfig cfg;
    cfg.k = 8;
    cfg.m = p.m;
    cfg.n = p.n;
    FlatTreeNetwork net(cfg);
    double apl = topo::server_apl(net.build(Mode::GlobalRandom)).average;
    EXPECT_DOUBLE_EQ(apl, p.apl);
  }
}

}  // namespace
}  // namespace flattree::core
