#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace flattree::graph {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.link_count(), 0u);
}

TEST(Graph, AddNodesReturnsFirstId) {
  Graph g;
  EXPECT_EQ(g.add_nodes(3), 0u);
  EXPECT_EQ(g.add_nodes(2), 3u);
  EXPECT_EQ(g.node_count(), 5u);
}

TEST(Graph, AddLinkAndAccessors) {
  Graph g(3);
  LinkId l = g.add_link(0, 2, 2.5);
  EXPECT_EQ(g.link_count(), 1u);
  EXPECT_EQ(g.link(l).a, 0u);
  EXPECT_EQ(g.link(l).b, 2u);
  EXPECT_DOUBLE_EQ(g.link(l).capacity, 2.5);
  EXPECT_EQ(g.link(l).other(0), 2u);
  EXPECT_EQ(g.link(l).other(2), 0u);
}

TEST(Graph, RejectsSelfLoop) {
  Graph g(2);
  EXPECT_THROW(g.add_link(1, 1), std::invalid_argument);
}

TEST(Graph, RejectsOutOfRangeEndpoint) {
  Graph g(2);
  EXPECT_THROW(g.add_link(0, 2), std::out_of_range);
}

TEST(Graph, RejectsNonPositiveCapacity) {
  Graph g(2);
  EXPECT_THROW(g.add_link(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(g.add_link(0, 1, -1.0), std::invalid_argument);
}

TEST(Graph, NeighborsAndDegree) {
  Graph g(4);
  g.add_link(0, 1);
  g.add_link(0, 2);
  g.add_link(0, 3);
  g.add_link(1, 2);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(3), 1u);
  std::size_t count = 0;
  bool saw1 = false, saw2 = false, saw3 = false;
  for (const Arc& arc : g.neighbors(0)) {
    ++count;
    saw1 |= arc.to == 1;
    saw2 |= arc.to == 2;
    saw3 |= arc.to == 3;
  }
  EXPECT_EQ(count, 3u);
  EXPECT_TRUE(saw1 && saw2 && saw3);
}

TEST(Graph, ParallelLinksAllowedAndCounted) {
  Graph g(2);
  g.add_link(0, 1, 1.0);
  g.add_link(0, 1, 2.0);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_TRUE(g.connected(0, 1));
  EXPECT_DOUBLE_EQ(g.capacity_between(0, 1), 3.0);
}

TEST(Graph, ConnectedPredicate) {
  Graph g(3);
  g.add_link(0, 1);
  EXPECT_TRUE(g.connected(0, 1));
  EXPECT_TRUE(g.connected(1, 0));
  EXPECT_FALSE(g.connected(0, 2));
}

TEST(Graph, CsrRebuildsAfterMutation) {
  Graph g(3);
  g.add_link(0, 1);
  EXPECT_EQ(g.degree(0), 1u);  // builds CSR
  g.add_link(0, 2);            // invalidates CSR
  EXPECT_EQ(g.degree(0), 2u);
  g.add_nodes(1);
  g.add_link(0, 3);
  EXPECT_EQ(g.degree(0), 3u);
}

TEST(Graph, ArcLinkIdsMatch) {
  Graph g(3);
  LinkId l0 = g.add_link(0, 1);
  LinkId l1 = g.add_link(1, 2);
  for (const Arc& arc : g.neighbors(1)) {
    if (arc.to == 0) EXPECT_EQ(arc.link, l0);
    if (arc.to == 2) EXPECT_EQ(arc.link, l1);
  }
}

TEST(Graph, NeighborsOutOfRangeThrows) {
  Graph g(1);
  EXPECT_THROW(g.neighbors(1), std::out_of_range);
}

// -- edit journal / tombstones / CSR patching -------------------------------

// Sorted (neighbor, link) multiset at `node`, for order-insensitive compares.
std::vector<std::pair<NodeId, LinkId>> arcs_of(const Graph& g, NodeId node) {
  std::vector<std::pair<NodeId, LinkId>> out;
  for (const Arc& arc : g.neighbors(node)) out.emplace_back(arc.to, arc.link);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(GraphEdits, RemoveHidesLinkAndKeepsSlot) {
  Graph g(3);
  LinkId l01 = g.add_link(0, 1);
  LinkId l12 = g.add_link(1, 2);
  g.ensure_csr();  // build once so the removal exercises the patch path
  g.remove_link(l01);
  EXPECT_EQ(g.link_count(), 2u);
  EXPECT_EQ(g.live_link_count(), 1u);
  EXPECT_FALSE(g.link_live(l01));
  EXPECT_TRUE(g.link_live(l12));
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_FALSE(g.connected(0, 1));
  EXPECT_TRUE(g.connected(1, 2));
  // The slot survives: endpoints and capacity remain readable.
  EXPECT_EQ(g.link(l01).a, 0u);
  EXPECT_EQ(g.link(l01).b, 1u);
}

TEST(GraphEdits, RestoreRevivesLink) {
  Graph g(3);
  LinkId l01 = g.add_link(0, 1, 2.0);
  g.add_link(1, 2);
  g.ensure_csr();
  g.remove_link(l01);
  g.ensure_csr();
  g.restore_link(l01);
  EXPECT_EQ(g.live_link_count(), 2u);
  EXPECT_TRUE(g.link_live(l01));
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_TRUE(g.connected(0, 1));
  EXPECT_DOUBLE_EQ(g.capacity_between(0, 1), 2.0);
}

TEST(GraphEdits, RemoveRestorePreconditions) {
  Graph g(2);
  LinkId l = g.add_link(0, 1);
  EXPECT_THROW(g.remove_link(5), std::out_of_range);
  EXPECT_THROW(g.restore_link(5), std::out_of_range);
  EXPECT_THROW(g.restore_link(l), std::logic_error);  // still live
  g.remove_link(l);
  EXPECT_THROW(g.remove_link(l), std::logic_error);  // already removed
  g.restore_link(l);
  EXPECT_THROW(g.restore_link(l), std::logic_error);
}

TEST(GraphEdits, SetCapacityInPlace) {
  Graph g(2);
  LinkId l = g.add_link(0, 1, 1.0);
  g.set_capacity(l, 4.0);
  EXPECT_DOUBLE_EQ(g.link(l).capacity, 4.0);
  EXPECT_DOUBLE_EQ(g.capacity_between(0, 1), 4.0);
  EXPECT_THROW(g.set_capacity(l, 0.0), std::invalid_argument);
  EXPECT_THROW(g.set_capacity(l, -2.0), std::invalid_argument);
  EXPECT_THROW(g.set_capacity(9, 1.0), std::out_of_range);
}

TEST(GraphEdits, JournalRecordsMutationsInOrder) {
  Graph g(3);
  LinkId l0 = g.add_link(0, 1);
  LinkId l1 = g.add_link(1, 2);
  g.remove_link(l0);
  g.set_capacity(l1, 3.0);
  g.restore_link(l0);
  const auto& j = g.journal();
  ASSERT_EQ(j.size(), 5u);
  EXPECT_EQ(j[0].kind, GraphEdit::Kind::Add);
  EXPECT_EQ(j[0].link, l0);
  EXPECT_EQ(j[1].kind, GraphEdit::Kind::Add);
  EXPECT_EQ(j[2].kind, GraphEdit::Kind::Remove);
  EXPECT_EQ(j[2].link, l0);
  EXPECT_EQ(j[3].kind, GraphEdit::Kind::SetCapacity);
  EXPECT_EQ(j[3].link, l1);
  EXPECT_EQ(j[4].kind, GraphEdit::Kind::Restore);
  EXPECT_EQ(j[4].link, l0);
  EXPECT_EQ(g.edit_epoch(), 5u);
  g.clear_journal();
  EXPECT_TRUE(g.journal().empty());
  EXPECT_EQ(g.edit_epoch(), 5u);  // epoch is not reset by clear_journal
}

TEST(GraphEdits, CopyAndMoveDropJournalKeepLiveness) {
  Graph g(3);
  LinkId l0 = g.add_link(0, 1);
  g.add_link(1, 2);
  g.remove_link(l0);
  Graph c = g;
  EXPECT_TRUE(c.journal().empty());
  EXPECT_EQ(c.live_link_count(), 1u);
  EXPECT_FALSE(c.link_live(l0));
  EXPECT_EQ(arcs_of(c, 1), arcs_of(g, 1));
  Graph m = std::move(c);
  EXPECT_TRUE(m.journal().empty());
  EXPECT_EQ(m.live_link_count(), 1u);
  EXPECT_FALSE(m.link_live(l0));
}

// The central patch-correctness property: after any remove/restore/add
// sequence, adjacency must equal a freshly built graph holding exactly the
// live links.
TEST(GraphEdits, PatchedCsrMatchesFreshBuild) {
  const std::size_t n = 24;
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  auto rnd = [&state](std::uint64_t mod) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state % mod;
  };
  Graph g(n);
  std::vector<LinkId> ids;
  for (std::size_t i = 0; i < 60; ++i) {
    NodeId a = static_cast<NodeId>(rnd(n));
    NodeId b = static_cast<NodeId>(rnd(n));
    if (a == b) continue;
    ids.push_back(g.add_link(a, b, 1.0 + static_cast<double>(rnd(4))));
  }
  g.ensure_csr();
  for (int round = 0; round < 40; ++round) {
    LinkId pick = ids[rnd(ids.size())];
    if (g.link_live(pick))
      g.remove_link(pick);
    else
      g.restore_link(pick);
    // Rebuild from scratch with only the live links and compare adjacency.
    Graph fresh(n);
    std::vector<LinkId> fresh_of(g.link_count(), kInvalidLink);
    for (LinkId id = 0; id < g.link_count(); ++id) {
      if (!g.link_live(id)) continue;
      const Link& l = g.link(id);
      fresh_of[id] = fresh.add_link(l.a, l.b, l.capacity);
    }
    for (NodeId v = 0; v < n; ++v) {
      auto got = arcs_of(g, v);
      for (auto& [to, id] : got) id = fresh_of[id];
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, arcs_of(fresh, v)) << "node " << v << " round " << round;
    }
    EXPECT_EQ(g.live_link_count(), fresh.link_count());
  }
}

// add_link after liveness edits forces the full-rebuild path; adjacency
// must still be exact.
TEST(GraphEdits, AddAfterRemoveRebuildsCorrectly) {
  Graph g(4);
  LinkId l01 = g.add_link(0, 1);
  g.add_link(1, 2);
  g.ensure_csr();
  g.remove_link(l01);
  LinkId l23 = g.add_link(2, 3);
  EXPECT_EQ(g.live_link_count(), 2u);
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_TRUE(g.connected(2, 3));
  EXPECT_TRUE(g.link_live(l23));
  g.restore_link(l01);
  EXPECT_TRUE(g.connected(0, 1));
  EXPECT_EQ(g.degree(1), 2u);
}

// Many flips at once (past the patch threshold) must fall back to a full
// rebuild and still be exact.
TEST(GraphEdits, LargeDeltaFallsBackToFullRebuild) {
  const std::size_t n = 10;
  Graph g(n);
  std::vector<LinkId> ids;
  for (NodeId a = 0; a < n; ++a)
    for (NodeId b = a + 1; b < n; ++b) ids.push_back(g.add_link(a, b));
  g.ensure_csr();
  for (LinkId id : ids) g.remove_link(id);  // 45 flips > max(16, 45/8)
  for (NodeId v = 0; v < n; ++v) EXPECT_EQ(g.degree(v), 0u);
  for (LinkId id : ids) g.restore_link(id);
  for (NodeId v = 0; v < n; ++v) EXPECT_EQ(g.degree(v), n - 1);
}

}  // namespace
}  // namespace flattree::graph
