#include "graph/graph.hpp"

#include <gtest/gtest.h>

namespace flattree::graph {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.link_count(), 0u);
}

TEST(Graph, AddNodesReturnsFirstId) {
  Graph g;
  EXPECT_EQ(g.add_nodes(3), 0u);
  EXPECT_EQ(g.add_nodes(2), 3u);
  EXPECT_EQ(g.node_count(), 5u);
}

TEST(Graph, AddLinkAndAccessors) {
  Graph g(3);
  LinkId l = g.add_link(0, 2, 2.5);
  EXPECT_EQ(g.link_count(), 1u);
  EXPECT_EQ(g.link(l).a, 0u);
  EXPECT_EQ(g.link(l).b, 2u);
  EXPECT_DOUBLE_EQ(g.link(l).capacity, 2.5);
  EXPECT_EQ(g.link(l).other(0), 2u);
  EXPECT_EQ(g.link(l).other(2), 0u);
}

TEST(Graph, RejectsSelfLoop) {
  Graph g(2);
  EXPECT_THROW(g.add_link(1, 1), std::invalid_argument);
}

TEST(Graph, RejectsOutOfRangeEndpoint) {
  Graph g(2);
  EXPECT_THROW(g.add_link(0, 2), std::out_of_range);
}

TEST(Graph, RejectsNonPositiveCapacity) {
  Graph g(2);
  EXPECT_THROW(g.add_link(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(g.add_link(0, 1, -1.0), std::invalid_argument);
}

TEST(Graph, NeighborsAndDegree) {
  Graph g(4);
  g.add_link(0, 1);
  g.add_link(0, 2);
  g.add_link(0, 3);
  g.add_link(1, 2);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(3), 1u);
  std::size_t count = 0;
  bool saw1 = false, saw2 = false, saw3 = false;
  for (const Arc& arc : g.neighbors(0)) {
    ++count;
    saw1 |= arc.to == 1;
    saw2 |= arc.to == 2;
    saw3 |= arc.to == 3;
  }
  EXPECT_EQ(count, 3u);
  EXPECT_TRUE(saw1 && saw2 && saw3);
}

TEST(Graph, ParallelLinksAllowedAndCounted) {
  Graph g(2);
  g.add_link(0, 1, 1.0);
  g.add_link(0, 1, 2.0);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_TRUE(g.connected(0, 1));
  EXPECT_DOUBLE_EQ(g.capacity_between(0, 1), 3.0);
}

TEST(Graph, ConnectedPredicate) {
  Graph g(3);
  g.add_link(0, 1);
  EXPECT_TRUE(g.connected(0, 1));
  EXPECT_TRUE(g.connected(1, 0));
  EXPECT_FALSE(g.connected(0, 2));
}

TEST(Graph, CsrRebuildsAfterMutation) {
  Graph g(3);
  g.add_link(0, 1);
  EXPECT_EQ(g.degree(0), 1u);  // builds CSR
  g.add_link(0, 2);            // invalidates CSR
  EXPECT_EQ(g.degree(0), 2u);
  g.add_nodes(1);
  g.add_link(0, 3);
  EXPECT_EQ(g.degree(0), 3u);
}

TEST(Graph, ArcLinkIdsMatch) {
  Graph g(3);
  LinkId l0 = g.add_link(0, 1);
  LinkId l1 = g.add_link(1, 2);
  for (const Arc& arc : g.neighbors(1)) {
    if (arc.to == 0) EXPECT_EQ(arc.link, l0);
    if (arc.to == 2) EXPECT_EQ(arc.link, l1);
  }
}

TEST(Graph, NeighborsOutOfRangeThrows) {
  Graph g(1);
  EXPECT_THROW(g.neighbors(1), std::out_of_range);
}

}  // namespace
}  // namespace flattree::graph
