#include "graph/bfs.hpp"

#include <gtest/gtest.h>

namespace flattree::graph {
namespace {

Graph path_graph(std::size_t n) {
  Graph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.add_link(i, i + 1);
  return g;
}

Graph cycle_graph(std::size_t n) {
  Graph g = path_graph(n);
  g.add_link(static_cast<NodeId>(n - 1), 0);
  return g;
}

TEST(Bfs, PathGraphDistances) {
  Graph g = path_graph(5);
  auto d = bfs_distances(g, 0);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(d[v], v);
}

TEST(Bfs, CycleGraphDistances) {
  Graph g = cycle_graph(6);
  auto d = bfs_distances(g, 0);
  std::vector<std::uint32_t> expected{0, 1, 2, 3, 2, 1};
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(d[v], expected[v]);
}

TEST(Bfs, UnreachableMarked) {
  Graph g(4);
  g.add_link(0, 1);
  g.add_link(2, 3);
  auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], kUnreachable);
  EXPECT_EQ(d[3], kUnreachable);
}

TEST(Bfs, SymmetricOnUndirected) {
  Graph g(5);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(2, 3);
  g.add_link(3, 4);
  g.add_link(0, 4);
  for (NodeId u = 0; u < 5; ++u) {
    auto du = bfs_distances(g, u);
    for (NodeId v = 0; v < 5; ++v) {
      auto dv = bfs_distances(g, v);
      EXPECT_EQ(du[v], dv[u]);
    }
  }
}

TEST(Bfs, FilteredRespectsMask) {
  // 0-1-2 and a shortcut 0-3-2; masking 3 forces the long way.
  Graph g(4);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(0, 3);
  g.add_link(3, 2);
  std::vector<char> allowed{1, 1, 1, 0};
  auto d = bfs_distances_filtered(g, 0, allowed);
  EXPECT_EQ(d[2], 2u);
  EXPECT_EQ(d[3], kUnreachable);
}

TEST(Bfs, FilteredRejectsBannedSource) {
  Graph g(2);
  g.add_link(0, 1);
  std::vector<char> allowed{0, 1};
  EXPECT_THROW(bfs_distances_filtered(g, 0, allowed), std::invalid_argument);
}

TEST(Bfs, FilteredRejectsBadMaskSize) {
  Graph g(2);
  g.add_link(0, 1);
  std::vector<char> allowed{1};
  EXPECT_THROW(bfs_distances_filtered(g, 0, allowed), std::invalid_argument);
}

TEST(BfsTree, PathExtraction) {
  Graph g = path_graph(4);
  auto t = bfs_tree(g, 0);
  auto p = extract_path(t, 3);
  std::vector<NodeId> expected{0, 1, 2, 3};
  EXPECT_EQ(p, expected);
}

TEST(BfsTree, UnreachableGivesEmptyPath) {
  Graph g(3);
  g.add_link(0, 1);
  auto t = bfs_tree(g, 0);
  EXPECT_TRUE(extract_path(t, 2).empty());
}

TEST(BfsTree, ParentLinksConsistent) {
  Graph g = cycle_graph(5);
  auto t = bfs_tree(g, 0);
  for (NodeId v = 1; v < 5; ++v) {
    ASSERT_NE(t.parent[v], kInvalidNode);
    const Link& l = g.link(t.parent_link[v]);
    EXPECT_TRUE((l.a == v && l.b == t.parent[v]) || (l.b == v && l.a == t.parent[v]));
    EXPECT_EQ(t.dist[v], t.dist[t.parent[v]] + 1);
  }
}

TEST(Connectivity, ConnectedGraph) {
  EXPECT_TRUE(is_connected(path_graph(10)));
  EXPECT_EQ(component_count(path_graph(10)), 1u);
}

TEST(Connectivity, DisconnectedGraph) {
  Graph g(5);
  g.add_link(0, 1);
  g.add_link(2, 3);
  EXPECT_FALSE(is_connected(g));
  EXPECT_EQ(component_count(g), 3u);  // {0,1}, {2,3}, {4}
}

TEST(Connectivity, EmptyAndSingleton) {
  EXPECT_TRUE(is_connected(Graph{}));
  Graph g(1);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(component_count(g), 1u);
}

}  // namespace
}  // namespace flattree::graph
