// Bit-parallel batched BFS (graph::MultiSourceBfs) equivalence battery:
// the engine must reproduce the scalar kernels bit for bit — distances on
// random (including disconnected) graphs, filtered traversals, APSP rows,
// and the long-double APL reductions — at any thread count, with
// deterministic operation counters. Negative controls prove the sampled
// certification hook actually catches corrupted rows.

#include "graph/multi_bfs.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "check/distances.hpp"
#include "exec/parallel_for.hpp"
#include "graph/bfs.hpp"
#include "graph/metrics.hpp"
#include "topo/apl.hpp"
#include "topo/fat_tree.hpp"
#include "util/rng.hpp"

namespace flattree::graph {
namespace {

/// Random multigraph: n nodes, m links sampled uniformly (self-loop-free,
/// parallels allowed — the CSR supports them). Sparse draws leave isolated
/// nodes, covering the disconnected case.
Graph random_graph(std::size_t n, std::size_t m, std::uint64_t seed) {
  util::Rng rng(seed);
  Graph g(n);
  for (std::size_t i = 0; i < m; ++i) {
    NodeId a = static_cast<NodeId>(rng.below(n));
    NodeId b = static_cast<NodeId>(rng.below(n));
    if (a == b) b = static_cast<NodeId>((b + 1) % n);
    g.add_link(a, b);
  }
  return g;
}

TEST(MultiBfs, MatchesScalarOnRandomGraphs) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    // m < n leaves isolated nodes and multiple components.
    for (std::size_t m : {std::size_t{40}, std::size_t{90}, std::size_t{400}}) {
      Graph g = random_graph(100, m, seed);
      std::vector<NodeId> sources(g.node_count());
      for (NodeId v = 0; v < g.node_count(); ++v) sources[v] = v;
      MultiSourceBfs engine(g);
      for (std::size_t begin = 0; begin < sources.size(); begin += kBfsBatchWidth) {
        std::size_t count = std::min(kBfsBatchWidth, sources.size() - begin);
        engine.run(sources.data() + begin, count);
        for (std::size_t i = 0; i < count; ++i) {
          auto scalar = bfs_distances(g, sources[begin + i]);
          auto row = engine.distances(i);
          ASSERT_TRUE(std::equal(scalar.begin(), scalar.end(), row.begin(), row.end()))
              << "seed=" << seed << " m=" << m << " source=" << sources[begin + i];
        }
      }
    }
  }
}

TEST(MultiBfs, MatchesScalarFiltered) {
  Graph g = random_graph(80, 200, 7);
  // Mask out every third node; keep the rest as both sources and targets.
  std::vector<char> allowed(g.node_count(), 1);
  for (NodeId v = 0; v < g.node_count(); v += 3) allowed[v] = 0;
  std::vector<NodeId> sources;
  for (NodeId v = 0; v < g.node_count(); ++v)
    if (allowed[v]) sources.push_back(v);
  MultiSourceBfs engine(g);
  engine.run(sources.data(), std::min(kBfsBatchWidth, sources.size()), &allowed);
  for (std::size_t i = 0; i < engine.batch_size(); ++i) {
    auto scalar = bfs_distances_filtered(g, sources[i], allowed);
    auto row = engine.distances(i);
    EXPECT_TRUE(std::equal(scalar.begin(), scalar.end(), row.begin(), row.end()))
        << "source=" << sources[i];
  }
}

TEST(MultiBfs, RejectsBadBatches) {
  Graph g = random_graph(10, 20, 1);
  MultiSourceBfs engine(g);
  NodeId source = 0;
  EXPECT_THROW(engine.run(&source, 0), std::invalid_argument);
  NodeId out_of_range = 10;
  EXPECT_THROW(engine.run(&out_of_range, 1), std::invalid_argument);
  std::vector<char> bad_mask(5, 1);
  EXPECT_THROW(engine.run(&source, 1, &bad_mask), std::invalid_argument);
  std::vector<char> mask(10, 1);
  mask[0] = 0;
  EXPECT_THROW(engine.run(&source, 1, &mask), std::invalid_argument);
}

TEST(MultiBfs, ReachedCountsAndStats) {
  Graph g(6);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(3, 4);  // node 5 isolated
  MultiSourceBfs engine(g);
  std::vector<NodeId> sources{0, 3, 5};
  reset_multi_bfs_stats();
  engine.run(sources.data(), sources.size());
  EXPECT_EQ(engine.reached(0), 3u);
  EXPECT_EQ(engine.reached(1), 2u);
  EXPECT_EQ(engine.reached(2), 1u);
  MultiBfsStats stats = multi_bfs_stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.sources, 3u);
  EXPECT_EQ(stats.nodes_settled, 6u);  // one per (source, reached node)
  EXPECT_GT(stats.words_touched, 0u);
  EXPECT_GT(stats.node_expansions, 0u);
}

TEST(MultiBfs, ApspMatchesPerSourceScalar) {
  Graph g = random_graph(70, 150, 11);
  auto batched = apsp_distances(g);
  ASSERT_EQ(batched.size(), g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u)
    EXPECT_EQ(batched[u], bfs_distances(g, u)) << "source=" << u;
}

TEST(MultiBfs, WeightedAplBitwiseEqualsScalar) {
  util::Rng rng(13);
  for (std::uint64_t seed : {21ull, 22ull}) {
    Graph g = random_graph(90, 500, seed);  // dense draw: connected whp
    std::vector<std::uint32_t> weight(g.node_count(), 0);
    for (NodeId v = 0; v < g.node_count(); ++v)
      weight[v] = static_cast<std::uint32_t>(rng.below(4));  // zeros included
    AplResult batched = weighted_apl(g, weight, 2, 2);
    AplResult scalar = weighted_apl_scalar(g, weight, 2, 2);
    EXPECT_EQ(batched.average, scalar.average);  // bitwise, not approximate
    EXPECT_EQ(batched.pairs, scalar.pairs);
    EXPECT_EQ(batched.max_dist, scalar.max_dist);
  }
}

TEST(MultiBfs, WeightedAplSubsetBitwiseEqualsScalar) {
  Graph g = random_graph(90, 500, 31);
  std::vector<std::uint32_t> weight(g.node_count(), 1);
  std::vector<char> member(g.node_count(), 0);
  for (NodeId v = 0; v < g.node_count(); v += 2) member[v] = 1;
  for (bool confine : {false, true}) {
    AplResult batched = weighted_apl_subset(g, weight, member, confine, 2, 2);
    AplResult scalar = weighted_apl_subset_scalar(g, weight, member, confine, 2, 2);
    EXPECT_EQ(batched.average, scalar.average) << "confine=" << confine;
    EXPECT_EQ(batched.pairs, scalar.pairs) << "confine=" << confine;
    EXPECT_EQ(batched.max_dist, scalar.max_dist) << "confine=" << confine;
  }
}

TEST(MultiBfs, FatTreeAplBitwiseEqualAcrossThreadCounts) {
  topo::FatTree ft = topo::build_fat_tree(8);
  exec::set_global_threads(1);
  AplResult serial = topo::server_apl(ft.topo);
  AplResult scalar = weighted_apl_scalar(ft.topo.graph(), ft.topo.servers_per_switch(),
                                         /*offset=*/2, /*same_node_dist=*/2);
  reset_multi_bfs_stats();
  exec::set_global_threads(4);
  AplResult parallel = topo::server_apl(ft.topo);
  MultiBfsStats at4 = multi_bfs_stats();
  reset_multi_bfs_stats();
  AplResult again = topo::server_apl(ft.topo);
  MultiBfsStats again4 = multi_bfs_stats();
  exec::set_global_threads(1);
  EXPECT_EQ(serial.average, parallel.average);
  EXPECT_EQ(serial.average, again.average);
  EXPECT_EQ(serial.average, scalar.average);
  EXPECT_EQ(serial.pairs, scalar.pairs);
  // Operation counters are deterministic too: identical across runs.
  EXPECT_EQ(at4.words_touched, again4.words_touched);
  EXPECT_EQ(at4.node_expansions, again4.node_expansions);
  EXPECT_EQ(at4.nodes_settled, again4.nodes_settled);
}

TEST(MultiBfs, DiameterAndUnweightedAplMatchEngine) {
  Graph g = random_graph(60, 400, 41);
  // Reference values straight from scalar BFS rows.
  std::uint64_t pairs = 0;
  long double total = 0.0L;
  std::uint32_t diam = 0;
  bool connected = true;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    auto dist = bfs_distances(g, u);
    for (NodeId v = u + 1; v < g.node_count(); ++v) {
      if (dist[v] == kUnreachable) {
        connected = false;
        continue;
      }
      total += dist[v];
      ++pairs;
      diam = std::max(diam, dist[v]);
    }
  }
  ASSERT_TRUE(connected);  // dense draw; keeps diameter() well-defined
  EXPECT_EQ(diameter(g), diam);
  EXPECT_DOUBLE_EQ(unweighted_apl(g),
                   static_cast<double>(total / static_cast<long double>(pairs)));
}

TEST(MultiBfs, CertifyCatchesCorruptedRow) {
  Graph g = random_graph(50, 120, 51);
  MultiSourceBfs engine(g);
  std::vector<NodeId> sources{0, 1, 2, 3};
  engine.run(sources.data(), sources.size());
  auto row = engine.distances(0);
  std::vector<std::uint32_t> dist(row.begin(), row.end());
  EXPECT_TRUE(check::certify_distances(g, 0, dist).ok());
  // Corrupt one settled entry: the certificate must flag it.
  NodeId victim = 0;
  for (NodeId v = 0; v < g.node_count(); ++v)
    if (dist[v] != kUnreachable && dist[v] > 0) victim = v;
  ASSERT_NE(victim, 0u);
  dist[victim] += 1;
  EXPECT_FALSE(check::certify_distances(g, 0, dist).ok());
}

TEST(MultiBfs, AuditHookSamplesEveryBatch) {
  // Ring + random chords: connected by construction (weighted_apl throws
  // on disconnected weighted pairs).
  Graph g(100);
  for (NodeId v = 0; v < 100; ++v) g.add_link(v, (v + 1) % 100);
  util::Rng rng(61);
  for (int i = 0; i < 200; ++i) {
    NodeId a = static_cast<NodeId>(rng.below(100));
    NodeId b = static_cast<NodeId>(rng.below(100));
    if (a != b) g.add_link(a, b);
  }
  static std::atomic<int> calls{0};
  static std::atomic<int> certified{0};
  calls = 0;
  certified = 0;
  set_distance_audit_hook([](const Graph& graph, NodeId source,
                             const std::vector<std::uint32_t>& dist) {
    calls.fetch_add(1);
    if (check::certify_distances(graph, source, dist).ok()) certified.fetch_add(1);
  });
  ASSERT_TRUE(is_connected(g));
  std::vector<std::uint32_t> weight(g.node_count(), 1);
  weighted_apl(g, weight, 0, 0);
  set_distance_audit_hook(nullptr);
  // 100 sources at batch width 64 -> 2 batches, each sampled once.
  EXPECT_EQ(calls.load(), 2);
  EXPECT_EQ(certified.load(), calls.load());
}

}  // namespace
}  // namespace flattree::graph
