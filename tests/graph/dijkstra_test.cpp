#include "graph/dijkstra.hpp"

#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "util/rng.hpp"

namespace flattree::graph {
namespace {

TEST(Dijkstra, MatchesBfsOnUnitLengths) {
  // Random-ish graph, unit lengths: Dijkstra == BFS.
  Graph g(12);
  util::Rng rng(5);
  for (int i = 0; i < 25; ++i) {
    NodeId a = static_cast<NodeId>(rng.below(12));
    NodeId b = static_cast<NodeId>(rng.below(12));
    if (a != b) g.add_link(a, b);
  }
  std::vector<double> unit(g.link_count(), 1.0);
  for (NodeId s = 0; s < 12; ++s) {
    auto bd = bfs_distances(g, s);
    auto dd = dijkstra(g, s, unit);
    for (NodeId v = 0; v < 12; ++v) {
      if (bd[v] == kUnreachable)
        EXPECT_EQ(dd.dist[v], kInfDistance);
      else
        EXPECT_DOUBLE_EQ(dd.dist[v], bd[v]);
    }
  }
}

TEST(Dijkstra, PrefersCheaperLongerPath) {
  // 0 -> 2 direct costs 10; 0 -> 1 -> 2 costs 3.
  Graph g(3);
  LinkId direct = g.add_link(0, 2);
  g.add_link(0, 1);
  g.add_link(1, 2);
  std::vector<double> len{10.0, 1.0, 2.0};
  auto r = dijkstra(g, 0, len);
  EXPECT_DOUBLE_EQ(r.dist[2], 3.0);
  auto path = extract_path(r, 2);
  std::vector<NodeId> expected{0, 1, 2};
  EXPECT_EQ(path, expected);
  (void)direct;
}

TEST(Dijkstra, ZeroLengthLinksAllowed) {
  Graph g(3);
  g.add_link(0, 1);
  g.add_link(1, 2);
  std::vector<double> len{0.0, 0.0};
  auto r = dijkstra(g, 0, len);
  EXPECT_DOUBLE_EQ(r.dist[2], 0.0);
}

TEST(Dijkstra, ParallelLinksPickCheapest) {
  Graph g(2);
  g.add_link(0, 1);
  g.add_link(0, 1);
  std::vector<double> len{5.0, 2.0};
  auto r = dijkstra(g, 0, len);
  EXPECT_DOUBLE_EQ(r.dist[1], 2.0);
  EXPECT_EQ(r.parent_link[1], 1u);
}

TEST(Dijkstra, LengthSizeMismatchThrows) {
  Graph g(2);
  g.add_link(0, 1);
  std::vector<double> len;
  EXPECT_THROW(dijkstra(g, 0, len), std::invalid_argument);
}

TEST(Dijkstra, ExtractLinkPath) {
  Graph g(4);
  LinkId l0 = g.add_link(0, 1);
  LinkId l1 = g.add_link(1, 2);
  LinkId l2 = g.add_link(2, 3);
  std::vector<double> len{1.0, 1.0, 1.0};
  auto r = dijkstra(g, 0, len);
  auto links = extract_link_path(r, 3);
  std::vector<LinkId> expected{l0, l1, l2};
  EXPECT_EQ(links, expected);
}

TEST(Dijkstra, UnreachableTarget) {
  Graph g(3);
  g.add_link(0, 1);
  std::vector<double> len{1.0};
  auto r = dijkstra(g, 0, len);
  EXPECT_EQ(r.dist[2], kInfDistance);
  EXPECT_TRUE(extract_path(r, 2).empty());
  EXPECT_TRUE(extract_link_path(r, 2).empty());
}

TEST(Dijkstra, EarlyExitVariantExactToTarget) {
  Graph g(6);
  for (NodeId i = 0; i + 1 < 6; ++i) g.add_link(i, i + 1);
  std::vector<double> len(g.link_count(), 1.0);
  auto r = dijkstra_to(g, 0, 3, len);
  EXPECT_DOUBLE_EQ(r.dist[3], 3.0);
  auto p = extract_path(r, 3);
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p.front(), 0u);
  EXPECT_EQ(p.back(), 3u);
}

}  // namespace
}  // namespace flattree::graph
