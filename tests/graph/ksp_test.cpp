#include "graph/ksp.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace flattree::graph {
namespace {

/// The classic Yen example sanity graph: two disjoint routes plus a detour.
Graph diamond() {
  // 0 -- 1 -- 3
  //  \-- 2 --/
  Graph g(4);
  g.add_link(0, 1);
  g.add_link(1, 3);
  g.add_link(0, 2);
  g.add_link(2, 3);
  return g;
}

bool loopless(const Path& p) {
  std::set<NodeId> seen(p.nodes.begin(), p.nodes.end());
  return seen.size() == p.nodes.size();
}

bool valid_path(const Graph& g, const Path& p, NodeId src, NodeId dst) {
  if (p.nodes.empty() || p.nodes.front() != src || p.nodes.back() != dst) return false;
  if (p.links.size() + 1 != p.nodes.size()) return false;
  for (std::size_t i = 0; i < p.links.size(); ++i) {
    const Link& l = g.link(p.links[i]);
    NodeId a = p.nodes[i], b = p.nodes[i + 1];
    if (!((l.a == a && l.b == b) || (l.b == a && l.a == b))) return false;
  }
  return true;
}

TEST(YenKsp, FindsBothDiamondPaths) {
  Graph g = diamond();
  auto paths = yen_ksp_hops(g, 0, 3, 4);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_DOUBLE_EQ(paths[0].length, 2.0);
  EXPECT_DOUBLE_EQ(paths[1].length, 2.0);
  EXPECT_NE(paths[0].nodes, paths[1].nodes);
  for (const Path& p : paths) {
    EXPECT_TRUE(valid_path(g, p, 0, 3));
    EXPECT_TRUE(loopless(p));
  }
}

TEST(YenKsp, LengthsNonDecreasing) {
  Graph g(6);
  util::Rng rng(3);
  for (int i = 0; i < 14; ++i) {
    NodeId a = static_cast<NodeId>(rng.below(6));
    NodeId b = static_cast<NodeId>(rng.below(6));
    if (a != b && !g.connected(a, b)) g.add_link(a, b);
  }
  auto paths = yen_ksp_hops(g, 0, 5, 10);
  for (std::size_t i = 1; i < paths.size(); ++i)
    EXPECT_LE(paths[i - 1].length, paths[i].length);
}

TEST(YenKsp, DistinctPaths) {
  Graph g = diamond();
  g.add_link(0, 3);  // direct shortcut
  auto paths = yen_ksp_hops(g, 0, 3, 5);
  ASSERT_EQ(paths.size(), 3u);
  std::set<std::vector<NodeId>> unique;
  for (const Path& p : paths) {
    EXPECT_TRUE(loopless(p));
    unique.insert(p.nodes);
  }
  EXPECT_EQ(unique.size(), paths.size());
  EXPECT_DOUBLE_EQ(paths[0].length, 1.0);
}

TEST(YenKsp, RespectsWeights) {
  // Weighted: long-hop path is cheaper.
  Graph g(4);
  g.add_link(0, 3);          // weight 10
  g.add_link(0, 1);          // 1
  g.add_link(1, 2);          // 1
  g.add_link(2, 3);          // 1
  std::vector<double> len{10.0, 1.0, 1.0, 1.0};
  auto paths = yen_ksp(g, 0, 3, 2, len);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_DOUBLE_EQ(paths[0].length, 3.0);
  EXPECT_EQ(paths[0].nodes.size(), 4u);
  EXPECT_DOUBLE_EQ(paths[1].length, 10.0);
}

TEST(YenKsp, DisconnectedGivesEmpty) {
  Graph g(3);
  g.add_link(0, 1);
  EXPECT_TRUE(yen_ksp_hops(g, 0, 2, 3).empty());
}

TEST(YenKsp, KZeroGivesEmpty) {
  Graph g = diamond();
  EXPECT_TRUE(yen_ksp_hops(g, 0, 3, 0).empty());
}

TEST(YenKsp, SameSourceTargetThrows) {
  Graph g = diamond();
  EXPECT_THROW(yen_ksp_hops(g, 1, 1, 2), std::invalid_argument);
}

TEST(YenKsp, FewerPathsThanRequested) {
  Graph g(3);
  g.add_link(0, 1);
  g.add_link(1, 2);
  auto paths = yen_ksp_hops(g, 0, 2, 8);
  EXPECT_EQ(paths.size(), 1u);
}

TEST(AllShortestPaths, EnumeratesEcmpSet) {
  Graph g = diamond();
  auto paths = all_shortest_paths(g, 0, 3, 10);
  ASSERT_EQ(paths.size(), 2u);
  for (const Path& p : paths) {
    EXPECT_EQ(p.links.size(), 2u);
    EXPECT_TRUE(valid_path(g, p, 0, 3));
  }
}

TEST(AllShortestPaths, IgnoresLongerPaths) {
  Graph g = diamond();
  g.add_link(0, 3);  // now the only shortest path is direct
  auto paths = all_shortest_paths(g, 0, 3, 10);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].links.size(), 1u);
}

TEST(AllShortestPaths, CapRespected) {
  // Complete bipartite-ish: many equal paths.
  Graph g(6);
  for (NodeId mid : {1u, 2u, 3u, 4u}) {
    g.add_link(0, mid);
    g.add_link(mid, 5);
  }
  auto all = all_shortest_paths(g, 0, 5, 100);
  EXPECT_EQ(all.size(), 4u);
  auto capped = all_shortest_paths(g, 0, 5, 2);
  EXPECT_EQ(capped.size(), 2u);
}

TEST(AllShortestPaths, DisconnectedGivesEmpty) {
  Graph g(2);
  EXPECT_TRUE(all_shortest_paths(g, 0, 1, 5).empty());
}

}  // namespace
}  // namespace flattree::graph
