// End-to-end determinism of the figure benches now that APL runs on the
// bit-parallel batched engine: fig5/fig7 stdout must be byte-identical at
// --threads 1 vs 8, and fig5 must exit clean under --selfcheck (which arms
// the certify_distances audit hook over sampled batched rows).
// FT_BENCH_DIR is injected by CMake; tests skip when binaries are absent.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace flattree {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f != nullptr) std::fclose(f);
  return f != nullptr;
}

/// Runs `bench args > out 2>/dev/null`, returning the exit status.
int run(const std::string& bench, const std::string& args, const std::string& out) {
  std::string cmd = bench + " " + args + " > " + out + " 2>/dev/null";
  return std::system(cmd.c_str());
}

TEST(BitBfsBench, Fig5ByteIdenticalAcrossThreadCounts) {
  std::string bench = std::string(FT_BENCH_DIR) + "/bench_fig5_apl_global";
  if (!file_exists(bench)) GTEST_SKIP() << "bench binary not built: " << bench;
  std::string tmp = testing::TempDir();
  std::string t1 = tmp + "fig5_t1.txt";
  std::string t8 = tmp + "fig5_t8.txt";
  ASSERT_EQ(run(bench, "--kmax 8 --threads 1", t1), 0);
  ASSERT_EQ(run(bench, "--kmax 8 --threads 8", t8), 0);
  std::string out1 = slurp(t1);
  ASSERT_FALSE(out1.empty());
  EXPECT_EQ(out1, slurp(t8));
}

TEST(BitBfsBench, Fig7ByteIdenticalAcrossThreadCounts) {
  std::string bench = std::string(FT_BENCH_DIR) + "/bench_fig7_broadcast";
  if (!file_exists(bench)) GTEST_SKIP() << "bench binary not built: " << bench;
  std::string tmp = testing::TempDir();
  std::string t1 = tmp + "fig7_t1.txt";
  std::string t8 = tmp + "fig7_t8.txt";
  const std::string base = "--kmax 8 --seeds 1";
  ASSERT_EQ(run(bench, base + " --threads 1", t1), 0);
  ASSERT_EQ(run(bench, base + " --threads 8", t8), 0);
  std::string out1 = slurp(t1);
  ASSERT_FALSE(out1.empty());
  EXPECT_EQ(out1, slurp(t8));
}

TEST(BitBfsBench, Fig5SelfcheckCertifiesBatchedRows) {
  std::string bench = std::string(FT_BENCH_DIR) + "/bench_fig5_apl_global";
  if (!file_exists(bench)) GTEST_SKIP() << "bench binary not built: " << bench;
  std::string tmp = testing::TempDir();
  std::string out = tmp + "fig5_selfcheck.txt";
  // --selfcheck flips the exit code on any certification violation, so a
  // zero exit means every sampled batched row passed certify_distances.
  EXPECT_EQ(run(bench, "--kmax 8 --threads 4 --selfcheck", out), 0);
}

}  // namespace
}  // namespace flattree
