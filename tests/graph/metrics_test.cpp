#include "graph/metrics.hpp"

#include <gtest/gtest.h>

namespace flattree::graph {
namespace {

Graph path_graph(std::size_t n) {
  Graph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.add_link(i, i + 1);
  return g;
}

TEST(WeightedApl, TwoNodesOneServerEach) {
  Graph g = path_graph(2);
  std::vector<std::uint32_t> w{1, 1};
  auto r = weighted_apl(g, w, 2, 2);
  EXPECT_EQ(r.pairs, 1u);
  EXPECT_DOUBLE_EQ(r.average, 3.0);  // 1 hop + offset 2
  EXPECT_EQ(r.max_dist, 3u);
}

TEST(WeightedApl, SameNodePairsUseSameNodeDist) {
  Graph g(1);
  std::vector<std::uint32_t> w{3};
  auto r = weighted_apl(g, w, 2, 2);
  EXPECT_EQ(r.pairs, 3u);  // C(3,2)
  EXPECT_DOUBLE_EQ(r.average, 2.0);
}

TEST(WeightedApl, MixedWeightsExactAverage) {
  // Path 0-1-2, weights 2,0,1: pairs: C(2,2)=1 same-node at 2,
  // 2*1 cross pairs at dist 2+2=4 -> avg = (1*2 + 2*4)/3.
  Graph g = path_graph(3);
  std::vector<std::uint32_t> w{2, 0, 1};
  auto r = weighted_apl(g, w, 2, 2);
  EXPECT_EQ(r.pairs, 3u);
  EXPECT_DOUBLE_EQ(r.average, 10.0 / 3.0);
  EXPECT_EQ(r.max_dist, 4u);
}

TEST(WeightedApl, ZeroOffsetIsSwitchLevel) {
  Graph g = path_graph(4);
  std::vector<std::uint32_t> w{1, 0, 0, 1};
  auto r = weighted_apl(g, w, 0, 0);
  EXPECT_DOUBLE_EQ(r.average, 3.0);
}

TEST(WeightedApl, DisconnectedWeightedPairThrows) {
  Graph g(2);
  std::vector<std::uint32_t> w{1, 1};
  EXPECT_THROW(weighted_apl(g, w, 2, 2), std::runtime_error);
}

TEST(WeightedApl, DisconnectedUnweightedNodeIgnored) {
  Graph g(3);
  g.add_link(0, 1);
  std::vector<std::uint32_t> w{1, 1, 0};  // node 2 isolated but weightless
  auto r = weighted_apl(g, w, 2, 2);
  EXPECT_EQ(r.pairs, 1u);
}

TEST(WeightedApl, SizeMismatchThrows) {
  Graph g = path_graph(2);
  std::vector<std::uint32_t> w{1};
  EXPECT_THROW(weighted_apl(g, w, 2, 2), std::invalid_argument);
}

TEST(WeightedAplSubset, ConfinedPathsAreLonger) {
  // Square 0-1-2-3-0 plus diagonal via node 4: 0-4, 4-2.
  Graph g(5);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(2, 3);
  g.add_link(3, 0);
  g.add_link(0, 4);
  g.add_link(4, 2);
  std::vector<std::uint32_t> w{1, 0, 1, 0, 0};
  std::vector<char> member{1, 1, 1, 1, 0};  // exclude the shortcut node
  auto unconfined = weighted_apl_subset(g, w, member, false, 0, 0);
  auto confined = weighted_apl_subset(g, w, member, true, 0, 0);
  EXPECT_DOUBLE_EQ(unconfined.average, 2.0);
  EXPECT_DOUBLE_EQ(confined.average, 2.0);  // square alone still gives 2
  // Remove one square edge: confined must detour, unconfined can shortcut.
  Graph g2(5);
  g2.add_link(0, 1);
  g2.add_link(1, 2);
  g2.add_link(0, 4);
  g2.add_link(4, 2);
  auto conf2 = weighted_apl_subset(g2, w, member, true, 0, 0);
  auto unconf2 = weighted_apl_subset(g2, w, member, false, 0, 0);
  EXPECT_DOUBLE_EQ(conf2.average, 2.0);
  EXPECT_DOUBLE_EQ(unconf2.average, 2.0);
}

TEST(WeightedAplSubset, MemberMaskLimitsPairs) {
  Graph g = path_graph(4);
  std::vector<std::uint32_t> w{1, 1, 1, 1};
  std::vector<char> member{1, 0, 0, 1};
  auto r = weighted_apl_subset(g, w, member, false, 0, 0);
  EXPECT_EQ(r.pairs, 1u);
  EXPECT_DOUBLE_EQ(r.average, 3.0);
}

TEST(UnweightedApl, PathGraphClosedForm) {
  // Path on 3 nodes: distances 1,1,2 -> avg 4/3.
  EXPECT_DOUBLE_EQ(unweighted_apl(path_graph(3)), 4.0 / 3.0);
}

TEST(UnweightedApl, IgnoresDisconnectedPairs) {
  Graph g(3);
  g.add_link(0, 1);
  EXPECT_DOUBLE_EQ(unweighted_apl(g), 1.0);
}

// The unreachable-pair policy on a 2-component graph, both sides: the
// unweighted metric skips disconnected pairs and reports how many it
// skipped; the weighted metric treats any disconnected weighted pair as a
// broken topology and throws.
TEST(UnweightedApl, StatsReportSkippedPairsOnTwoComponents) {
  Graph g(5);  // components {0,1,2} (path) and {3,4}
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(3, 4);
  auto r = unweighted_apl_stats(g);
  // In-component pairs: (0,1),(1,2),(0,2),(3,4) -> distances 1,1,2,1.
  EXPECT_EQ(r.pairs, 4u);
  EXPECT_DOUBLE_EQ(r.average, 5.0 / 4.0);
  // Cross-component pairs: 3 * 2 = 6, skipped but counted.
  EXPECT_EQ(r.unreachable_pairs, 6u);
  EXPECT_DOUBLE_EQ(unweighted_apl(g), r.average);
}

TEST(UnweightedApl, StatsOnFullyDisconnectedGraph) {
  Graph g(3);  // no links at all: nothing to average
  auto r = unweighted_apl_stats(g);
  EXPECT_EQ(r.pairs, 0u);
  EXPECT_EQ(r.unreachable_pairs, 3u);
  EXPECT_DOUBLE_EQ(r.average, 0.0);
}

TEST(WeightedApl, ThrowsOnTwoComponents) {
  Graph g(5);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(3, 4);
  std::vector<std::uint32_t> w(5, 1);
  EXPECT_THROW(weighted_apl(g, w, 0, 0), std::runtime_error);
  EXPECT_THROW(weighted_apl_scalar(g, w, 0, 0), std::runtime_error);
  // Zero-weighting one component makes every weighted pair connected
  // again: the policy is about *weighted* pairs, not global connectivity.
  std::vector<std::uint32_t> one_side{1, 1, 1, 0, 0};
  EXPECT_EQ(weighted_apl(g, one_side, 0, 0).pairs, 3u);
}

TEST(Diameter, PathAndCycle) {
  EXPECT_EQ(diameter(path_graph(5)), 4u);
  Graph cyc = path_graph(6);
  cyc.add_link(5, 0);
  EXPECT_EQ(diameter(cyc), 3u);
}

TEST(Diameter, DisconnectedThrows) {
  Graph g(2);
  EXPECT_THROW(diameter(g), std::runtime_error);
}

TEST(DegreeHistogram, CountsPerDegree) {
  Graph g = path_graph(4);  // degrees 1,2,2,1
  auto h = degree_histogram(g);
  ASSERT_EQ(h.size(), 3u);
  EXPECT_EQ(h[0], 0u);
  EXPECT_EQ(h[1], 2u);
  EXPECT_EQ(h[2], 2u);
}

}  // namespace
}  // namespace flattree::graph
