// End-to-end reproduction checks: the paper's qualitative claims, asserted
// at small scale (k = 8) so the suite stays fast. The bench binaries
// regenerate the full figures.

#include <gtest/gtest.h>

#include "core/controller.hpp"
#include "core/profile.hpp"
#include "core/zones.hpp"
#include "mcf/garg_koenemann.hpp"
#include "routing/ecmp.hpp"
#include "routing/ksp_routing.hpp"
#include "sim/flow_gen.hpp"
#include "sim/flow_sim.hpp"
#include "topo/apl.hpp"
#include "topo/fat_tree.hpp"
#include "topo/random_graph.hpp"
#include "topo/two_stage.hpp"
#include "workload/traffic.hpp"

namespace flattree {
namespace {

constexpr std::uint32_t kK = 8;

double throughput(const topo::Topology& t, const std::vector<mcf::ServerDemand>& demands,
                  double epsilon = 0.15) {
  auto commodities = mcf::aggregate_to_switches(t, demands);
  mcf::McfOptions opt;
  opt.epsilon = epsilon;
  opt.compute_upper_bound = false;
  return mcf::max_concurrent_flow(t.graph(), commodities, opt).lambda_lower;
}

TEST(PaperClaims, Figure5AplOrdering) {
  // Random graph <= flat-tree global RG < fat-tree, flat-tree close to RG.
  core::FlatTreeConfig cfg;
  cfg.k = kK;
  core::FlatTreeNetwork net(cfg);
  util::Rng rng(1);
  double apl_ft = topo::server_apl(topo::build_fat_tree(kK).topo).average;
  double apl_flat = topo::server_apl(net.build(core::Mode::GlobalRandom)).average;
  double apl_rg = topo::server_apl(topo::build_jellyfish_like_fat_tree(kK, rng)).average;
  EXPECT_LT(apl_flat, apl_ft);
  EXPECT_LT(apl_rg, apl_ft);
  // Paper: within 5% of random graph at the profiled (m, n); allow slack
  // at this small scale.
  EXPECT_LT(apl_flat, apl_rg * 1.12);
}

TEST(PaperClaims, Figure6IntraPodApl) {
  // Within-pod server pairs: flat-tree local RG and fat-tree beat the
  // global random graph (whose pod servers scatter network-wide).
  core::FlatTreeConfig cfg;
  cfg.k = kK;
  core::FlatTreeNetwork net(cfg);
  util::Rng rng(2);
  topo::Topology flat = net.build(core::Mode::LocalRandom);
  topo::FatTree ft = topo::build_fat_tree(kK);
  topo::Topology rg = topo::build_jellyfish_like_fat_tree(kK, rng);

  auto pod_groups = [&](const topo::Topology&) {
    std::vector<std::vector<topo::ServerId>> groups(kK);
    const std::uint32_t per_pod = kK * kK / 4;
    for (topo::ServerId s = 0; s < kK * kK * kK / 4; ++s) groups[s / per_pod].push_back(s);
    return groups;
  };
  double a_flat = topo::server_apl_grouped(flat, pod_groups(flat)).average;
  double a_ft = topo::server_apl_grouped(ft.topo, pod_groups(ft.topo)).average;
  double a_rg = topo::server_apl_grouped(rg, pod_groups(rg)).average;
  EXPECT_LT(a_flat, a_rg);
  EXPECT_LT(a_ft, a_rg);
  EXPECT_LT(a_flat, a_ft * 1.05);  // flat-tree at least on par with fat-tree
}

TEST(PaperClaims, Figure7BroadcastThroughput) {
  // Broadcast hot-spot clusters: flat-tree (global RG) and random graph
  // clearly beat fat-tree; flat-tree is close to random graph.
  core::FlatTreeConfig cfg;
  cfg.k = kK;
  core::FlatTreeNetwork net(cfg);
  util::Rng rng(3);
  topo::FatTree ft = topo::build_fat_tree(kK);
  topo::Topology flat = net.build(core::Mode::GlobalRandom);
  topo::Topology rg = topo::build_jellyfish_like_fat_tree(kK, rng);

  const std::uint32_t cluster_size = 100;  // scaled-down 1000-server cluster
  // Average over hot-spot draws: at this small scale a single unlucky hot
  // spot can sit on a port-poor switch in any topology.
  auto run = [&](const topo::Topology& t) {
    double sum = 0.0;
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      util::Rng wl(4 + seed);
      auto clusters =
          workload::make_clusters(t.server_count(), cluster_size,
                                  workload::Placement::Locality, kK * kK / 4, wl);
      auto demands = workload::cluster_traffic(clusters, workload::Pattern::Broadcast, wl);
      sum += throughput(t, demands);
    }
    return sum / 3.0;
  };
  double th_ft = run(ft.topo), th_flat = run(flat), th_rg = run(rg);
  EXPECT_GT(th_flat, th_ft * 1.2);   // paper reports ~1.5x at full scale
  EXPECT_GT(th_rg, th_ft * 1.2);
  EXPECT_GT(th_flat, th_rg * 0.85);  // "very close to random graph"
}

TEST(PaperClaims, Figure8SmallClusterThroughput) {
  // 20-server all-to-all with locality: flat-tree local RG beats fat-tree
  // at least at small k (paper: outperforms two-stage RG for k <= 14).
  core::FlatTreeConfig cfg;
  cfg.k = kK;
  core::FlatTreeNetwork net(cfg);
  util::Rng rng(5);
  topo::FatTree ft = topo::build_fat_tree(kK);
  topo::Topology flat = net.build(core::Mode::LocalRandom);
  topo::Topology two_stage = topo::build_two_stage_random_graph(kK, rng);

  auto run = [&](const topo::Topology& t) {
    util::Rng wl(6);
    auto clusters = workload::make_clusters(t.server_count(), 20,
                                            workload::Placement::Locality, kK * kK / 4, wl);
    auto demands = workload::cluster_traffic(clusters, workload::Pattern::AllToAll, wl);
    return throughput(t, demands);
  };
  double th_flat = run(flat);
  double th_ts = run(two_stage);
  double th_ft = run(ft.topo);
  EXPECT_GT(th_flat, th_ts * 0.9);
  EXPECT_GT(th_flat, 0.0);
  EXPECT_GT(th_ft, 0.0);
}

TEST(PaperClaims, Section34HybridZoneIsolation) {
  // Hybrid mode: each zone's throughput matches a dedicated network of the
  // same mode within solver tolerance.
  core::FlatTreeConfig cfg;
  cfg.k = kK;
  core::FlatTreeNetwork net(cfg);
  core::ZonePartition zones = core::ZonePartition::proportion(kK, 0.5);
  topo::Topology hybrid = net.build(zones.pod_modes);

  // Global zone: broadcast clusters placed on the global pods.
  util::Rng wl(7);
  auto global_servers = core::servers_in_pods(net, zones.pods_in(core::Mode::GlobalRandom));
  auto g_clusters = workload::make_clusters_subset(global_servers, 40,
                                                   workload::Placement::NoLocality,
                                                   kK * kK / 4, wl);
  auto g_demands = workload::cluster_traffic(g_clusters, workload::Pattern::Broadcast, wl);

  auto local_servers = core::servers_in_pods(net, zones.pods_in(core::Mode::LocalRandom));
  auto l_clusters = workload::make_clusters_subset(local_servers, 16,
                                                   workload::Placement::WeakLocality,
                                                   kK * kK / 4, wl);
  auto l_demands = workload::cluster_traffic(l_clusters, workload::Pattern::AllToAll, wl);

  double g_hybrid = throughput(hybrid, g_demands);
  double l_hybrid = throughput(hybrid, l_demands);
  EXPECT_GT(g_hybrid, 0.0);
  EXPECT_GT(l_hybrid, 0.0);

  // Joint workload: zone throughputs should not collapse when both run
  // (shared core, but the paper reports perfect segregation).
  std::vector<mcf::ServerDemand> joint = g_demands;
  joint.insert(joint.end(), l_demands.begin(), l_demands.end());
  double joint_lambda = throughput(hybrid, joint);
  EXPECT_GT(joint_lambda, 0.5 * std::min(g_hybrid, l_hybrid));
}

TEST(Integration, ControllerDrivenConversionAffectsWorkload) {
  core::Controller ctl([] {
    core::FlatTreeConfig cfg;
    cfg.k = kK;
    return cfg;
  }());
  util::Rng wl(8);
  auto clusters = workload::make_clusters(kK * kK * kK / 4, 100,
                                          workload::Placement::NoLocality, kK * kK / 4, wl);
  auto demands = workload::cluster_traffic(clusters, workload::Pattern::Broadcast, wl);

  double clos_lambda = throughput(ctl.topology(), demands);
  ctl.apply(core::Mode::GlobalRandom);
  double grg_lambda = throughput(ctl.topology(), demands);
  EXPECT_GT(grg_lambda, clos_lambda);
}

TEST(Integration, FlowSimulatorRunsOnConvertedTopology) {
  core::FlatTreeConfig cfg;
  cfg.k = 4;
  core::FlatTreeNetwork net(cfg);
  topo::Topology grg = net.build(core::Mode::GlobalRandom);
  routing::KspRouting routing(grg.graph(), 4);
  sim::FlowSimulator simulator(grg, routing);
  util::Rng rng(9);
  sim::FlowSizeDist dist;
  auto flows = sim::poisson_flows(100, 50.0, static_cast<std::uint32_t>(grg.server_count()),
                                  dist, rng);
  auto records = simulator.run(flows);
  ASSERT_EQ(records.size(), 100u);
  for (const auto& r : records) EXPECT_GE(r.fct(), 0.0);
}

TEST(Integration, ProfiledMnMatchesPaperChoiceAtK16) {
  // Paper Section 3.2: the profiled optimum is m = k/8, n = 2k/8. In our
  // construction (m, n) = (k/8, k/8) ties (k/8, 2k/8) exactly at k = 16,
  // so assert the paper's choice attains the minimum rather than that the
  // argmin tie-breaks the same way.
  core::ProfileResult r = core::profile_mn(16);
  EXPECT_EQ(r.best_m, 2u);
  double paper_choice_apl = 0.0;
  for (const core::ProfilePoint& p : r.points)
    if (p.m == 2 && p.n == 4) paper_choice_apl = p.apl;
  EXPECT_NEAR(paper_choice_apl, r.best_apl, r.best_apl * 1e-9);
}

}  // namespace
}  // namespace flattree
