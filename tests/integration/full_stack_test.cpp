// Full-stack integration: controller-driven zoned conversion, FIB
// compilation and verification, and packet-level simulation — every layer
// of the library touched by one scenario.

#include <gtest/gtest.h>

#include "core/controller.hpp"
#include "core/recovery.hpp"
#include "core/zones.hpp"
#include "mcf/garg_koenemann.hpp"
#include "routing/ecmp.hpp"
#include "routing/fib.hpp"
#include "sim/packet_sim.hpp"
#include "topo/serialize.hpp"
#include "workload/traffic.hpp"

namespace flattree {
namespace {

TEST(FullStack, ZonedConversionToVerifiedFibToPackets) {
  // 1. Controller converts to a 50/50 hybrid.
  core::FlatTreeConfig cfg;
  cfg.k = 8;
  core::Controller controller(cfg);
  core::ReconfigPlan plan =
      controller.apply(core::ZonePartition::proportion(8, 0.5));
  EXPECT_FALSE(plan.empty());
  topo::Topology t = controller.topology();

  // 2. Compile ECMP FIBs for every server pair and model-check them.
  routing::EcmpRouting routing(t.graph());
  auto pairs = routing::all_server_pairs(t);
  routing::Fib fib = routing::compile_fib(t, routing, pairs);
  routing::FibVerification verification = routing::verify_fib(t, fib, pairs);
  ASSERT_TRUE(verification.ok) << verification.error;
  EXPECT_GT(fib.rule_count(), 0u);

  // 3. Drive a permutation burst through the verified tables.
  util::Rng rng(21);
  auto demands = workload::permutation_traffic(
      static_cast<std::uint32_t>(t.server_count()), rng);
  std::vector<sim::PacketFlow> flows;
  for (const auto& d : demands) flows.push_back({d.src, d.dst, 4, 0.0});
  sim::PacketSimConfig sim_cfg;
  sim_cfg.queue_packets = 0;  // infinite buffers: everything must arrive
  sim::PacketSimulator simulator(t, fib, sim_cfg);
  sim::PacketStats stats = simulator.run(flows);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.delivered, stats.injected);
  EXPECT_GT(stats.mean_delay, 0.0);
}

TEST(FullStack, FailRecoverRerouteResume) {
  // Convert to global RG, fail a server-hosting core, recover via
  // reconversion, recompile FIBs on the degraded network, and verify the
  // surviving fabric still routes every pair.
  core::FlatTreeConfig cfg;
  cfg.k = 8;
  core::FlatTreeNetwork net(cfg);
  auto configs = net.assign_configs(core::Mode::GlobalRandom);
  topo::Topology healthy = net.materialize(configs);

  core::FailureSet failures;
  auto weights = healthy.servers_per_switch();
  for (topo::NodeId v = 0; v < healthy.switch_count(); ++v)
    if (healthy.info(v).kind == topo::SwitchKind::Core && weights[v] > 0) {
      failures.failed_switches.push_back(v);
      break;
    }
  ASSERT_FALSE(failures.failed_switches.empty());

  core::RecoveryPlan plan = core::plan_recovery(net, configs, failures);
  EXPECT_TRUE(plan.unrecoverable.empty());
  core::DegradedTopology degraded =
      core::apply_failures(net.materialize(plan.configs), failures);
  ASSERT_TRUE(degraded.stranded_servers.empty());

  routing::EcmpRouting routing(degraded.topo.graph());
  auto pairs = routing::all_server_pairs(degraded.topo);
  routing::Fib fib = routing::compile_fib(degraded.topo, routing, pairs);
  routing::FibVerification verification = routing::verify_fib(degraded.topo, fib, pairs);
  EXPECT_TRUE(verification.ok) << verification.error;
}

TEST(FullStack, SnapshotSurvivesSerializationAndSolvesIdentically) {
  // Serialize a converted topology, reload it, and check a throughput run
  // gives the identical certified bound.
  core::FlatTreeConfig cfg;
  cfg.k = 6;
  core::FlatTreeNetwork net(cfg);
  topo::Topology original = net.build(core::Mode::GlobalRandom);
  topo::Topology reloaded = topo::deserialize(topo::serialize(original));

  util::Rng rng(5);
  auto clusters = workload::make_clusters(
      static_cast<std::uint32_t>(original.server_count()), 20,
      workload::Placement::WeakLocality, 9, rng);
  auto demands = workload::cluster_traffic(clusters, workload::Pattern::AllToAll, rng);
  mcf::McfOptions opt;
  opt.epsilon = 0.1;
  auto a = mcf::max_concurrent_flow(original.graph(),
                                    mcf::aggregate_to_switches(original, demands), opt);
  auto b = mcf::max_concurrent_flow(reloaded.graph(),
                                    mcf::aggregate_to_switches(reloaded, demands), opt);
  EXPECT_DOUBLE_EQ(a.lambda_lower, b.lambda_lower);
  EXPECT_DOUBLE_EQ(a.lambda_upper, b.lambda_upper);
}

TEST(FullStack, GkScalesLinearlyWithCapacity) {
  // Property: doubling every capacity doubles lambda (both bounds).
  core::FlatTreeConfig cfg;
  cfg.k = 4;
  core::FlatTreeNetwork net(cfg);
  topo::Topology base = net.build(core::Mode::LocalRandom);

  topo::Topology scaled;
  for (topo::NodeId v = 0; v < base.switch_count(); ++v) {
    const auto& info = base.info(v);
    scaled.add_switch(info.kind, info.pod, info.index, info.ports);
  }
  for (graph::LinkId l = 0; l < base.link_count(); ++l) {
    const auto& link = base.graph().link(l);
    scaled.add_link(link.a, link.b, base.link_info(l).origin, link.capacity * 2.0);
  }
  for (topo::ServerId s = 0; s < base.server_count(); ++s) scaled.add_server(base.host(s));

  std::vector<mcf::ServerDemand> demands{{0, 9, 1.0}, {4, 13, 1.0}, {2, 6, 1.0}};
  mcf::McfOptions opt;
  opt.epsilon = 0.05;
  auto a = mcf::max_concurrent_flow(base.graph(),
                                    mcf::aggregate_to_switches(base, demands), opt);
  auto b = mcf::max_concurrent_flow(scaled.graph(),
                                    mcf::aggregate_to_switches(scaled, demands), opt);
  EXPECT_NEAR(b.lambda_lower, 2.0 * a.lambda_lower, 0.05 * b.lambda_lower);
  EXPECT_NEAR(b.lambda_upper, 2.0 * a.lambda_upper, 0.05 * b.lambda_upper);
}

}  // namespace
}  // namespace flattree
