// Incremental APL must be *bitwise* equal to the cold computation — same
// mean bits, same pair count, same max — across failure sweeps, because
// inc::weighted_apl replicates the cold accumulation's association order
// exactly (see src/inc/apl.cpp).

#include "inc/apl.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "graph/metrics.hpp"
#include "topo/apl.hpp"
#include "topo/fat_tree.hpp"
#include "util/rng.hpp"

namespace flattree::inc {
namespace {

using graph::Graph;
using graph::LinkId;

void expect_bitwise_equal(const graph::AplResult& a, const graph::AplResult& b,
                          const char* what) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.average), std::bit_cast<std::uint64_t>(b.average))
      << what << ": average " << a.average << " vs " << b.average;
  EXPECT_EQ(a.pairs, b.pairs) << what;
  EXPECT_EQ(a.max_dist, b.max_dist) << what;
}

TEST(IncApl, ServerAplMatchesTopoBitwise) {
  topo::FatTree ft = topo::build_fat_tree(4);
  DynamicApsp engine(ft.topo.graph());
  expect_bitwise_equal(inc::server_apl(engine, ft.topo), topo::server_apl(ft.topo),
                       "healthy fat-tree");
}

TEST(IncApl, ServerAplSubsetMatchesTopoBitwise) {
  topo::FatTree ft = topo::build_fat_tree(4);
  DynamicApsp engine(ft.topo.graph());
  std::vector<topo::ServerId> pod0;
  for (topo::ServerId s = 0; s < ft.params.servers_per_pod(); ++s) pod0.push_back(s);
  expect_bitwise_equal(inc::server_apl_subset(engine, ft.topo, pod0),
                       topo::server_apl_subset(ft.topo, pod0), "pod subset");
}

// A failure sweep: kill random switch links step by step, retarget, and
// compare the incremental APL against a cold weighted_apl on the same
// degraded graph. Both sides must agree bit for bit at every level (or
// both must throw the same disconnection error).
TEST(IncApl, FailureSweepStaysBitwiseEqual) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    topo::FatTree ft = topo::build_fat_tree(4);
    auto weight = ft.topo.servers_per_switch();
    Graph target = ft.topo.graph();
    DynamicApsp engine(target);
    util::Rng rng(100 + seed);

    for (int level = 0; level < 6; ++level) {
      std::vector<LinkId> live;
      for (LinkId id = 0; id < target.link_count(); ++id)
        if (target.link_live(id)) live.push_back(id);
      target.remove_link(live[rng.index(live.size())]);
      engine.retarget(target);

      bool cold_throws = false;
      graph::AplResult cold{};
      try {
        cold = graph::weighted_apl(target, weight, 2, 2);
      } catch (const std::runtime_error&) {
        cold_throws = true;
      }
      if (cold_throws) {
        EXPECT_THROW(inc::weighted_apl(engine, weight, 2, 2), std::runtime_error)
            << "seed " << seed << " level " << level;
        break;  // stay on connected sweeps after the first disconnect
      }
      graph::AplResult fast = inc::weighted_apl(engine, weight, 2, 2);
      expect_bitwise_equal(fast, cold, "failure sweep");
    }
  }
}

// Healing back to the healthy topology must also restore the exact healthy
// numbers (restores reuse tombstoned slots; distances repair upward).
TEST(IncApl, HealedSweepRecoversHealthyBits) {
  topo::FatTree ft = topo::build_fat_tree(4);
  auto weight = ft.topo.servers_per_switch();
  graph::AplResult healthy = topo::server_apl(ft.topo);

  Graph target = ft.topo.graph();
  DynamicApsp engine(target);
  util::Rng rng(42);
  std::vector<LinkId> dropped;
  for (int i = 0; i < 4; ++i) {
    std::vector<LinkId> live;
    for (LinkId id = 0; id < target.link_count(); ++id)
      if (target.link_live(id)) live.push_back(id);
    LinkId pick = live[rng.index(live.size())];
    target.remove_link(pick);
    dropped.push_back(pick);
  }
  engine.retarget(target);

  for (auto it = dropped.rbegin(); it != dropped.rend(); ++it) target.restore_link(*it);
  engine.retarget(target);
  expect_bitwise_equal(inc::server_apl(engine, ft.topo), healthy, "healed");
}

TEST(IncApl, WeightSizeMismatchThrows) {
  topo::FatTree ft = topo::build_fat_tree(4);
  DynamicApsp engine(ft.topo.graph());
  std::vector<std::uint32_t> short_weight(3, 1);
  EXPECT_THROW(inc::weighted_apl(engine, short_weight, 2, 2), std::invalid_argument);
}

}  // namespace
}  // namespace flattree::inc
