#include "inc/delta.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace flattree::inc {
namespace {

using graph::Graph;
using graph::LinkId;
using graph::NodeId;

// Sorted live (a, b, capacity) triples, the multiset the delta must match.
std::vector<std::tuple<NodeId, NodeId, double>> live_set(const Graph& g) {
  std::vector<std::tuple<NodeId, NodeId, double>> out;
  for (LinkId id = 0; id < g.link_count(); ++id) {
    if (!g.link_live(id)) continue;
    const auto& l = g.link(id);
    out.emplace_back(std::min(l.a, l.b), std::max(l.a, l.b), l.capacity);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(Delta, IdenticalGraphsEmptyDelta) {
  Graph a(4), b(4);
  a.add_link(0, 1);
  a.add_link(1, 2, 3.0);
  b.add_link(1, 2, 3.0);  // different id order must not matter
  b.add_link(0, 1);
  GraphDelta d = diff_graphs(a, b);
  EXPECT_TRUE(d.empty());
}

TEST(Delta, NodeCountMismatchThrows) {
  Graph a(3), b(4);
  EXPECT_THROW(diff_graphs(a, b), std::invalid_argument);
}

TEST(Delta, PureRemoval) {
  Graph a(3), b(3);
  a.add_link(0, 1);
  LinkId gone = a.add_link(1, 2);
  b.add_link(0, 1);
  GraphDelta d = diff_graphs(a, b);
  ASSERT_EQ(d.remove.size(), 1u);
  EXPECT_EQ(d.remove[0], gone);
  EXPECT_TRUE(d.restore.empty());
  EXPECT_TRUE(d.add.empty());
}

TEST(Delta, PrefersRestoreOverAdd) {
  Graph a(3), b(3);
  a.add_link(0, 1);
  LinkId dead = a.add_link(1, 2, 2.0);
  a.remove_link(dead);
  b.add_link(0, 1);
  b.add_link(2, 1, 2.0);  // flipped endpoints, same capacity -> same key
  GraphDelta d = diff_graphs(a, b);
  ASSERT_EQ(d.restore.size(), 1u);
  EXPECT_EQ(d.restore[0], dead);
  EXPECT_TRUE(d.add.empty());
  EXPECT_TRUE(d.remove.empty());
}

TEST(Delta, CapacityMismatchIsNotAMatch) {
  Graph a(3), b(3);
  a.add_link(0, 1, 1.0);
  b.add_link(0, 1, 2.0);
  GraphDelta d = diff_graphs(a, b);
  EXPECT_EQ(d.remove.size(), 1u);
  EXPECT_EQ(d.add.size(), 1u);
}

TEST(Delta, ParallelLinksMatchByMultiplicity) {
  Graph a(2), b(2);
  a.add_link(0, 1);
  a.add_link(0, 1);
  a.add_link(0, 1);
  b.add_link(0, 1);
  GraphDelta d = diff_graphs(a, b);
  EXPECT_EQ(d.remove.size(), 2u);
  EXPECT_TRUE(d.add.empty());
}

TEST(Delta, ApplyConvergesToTarget) {
  util::Rng rng(7);
  for (int round = 0; round < 30; ++round) {
    const std::size_t n = 12;
    Graph engine(n), target(n);
    for (int i = 0; i < 25; ++i) {
      NodeId x = static_cast<NodeId>(rng.below(n));
      NodeId y = static_cast<NodeId>(rng.below(n));
      if (x != y) engine.add_link(x, y, 1.0 + static_cast<double>(rng.below(3)));
    }
    for (int i = 0; i < 25; ++i) {
      NodeId x = static_cast<NodeId>(rng.below(n));
      NodeId y = static_cast<NodeId>(rng.below(n));
      if (x != y) target.add_link(x, y, 1.0 + static_cast<double>(rng.below(3)));
    }
    GraphDelta d = diff_graphs(engine, target);
    apply_delta(engine, d);
    EXPECT_EQ(live_set(engine), live_set(target)) << "round " << round;
    // A second diff against the same target must now be empty.
    EXPECT_TRUE(diff_graphs(engine, target).empty());
  }
}

TEST(Delta, RoundTripReusesTombstones) {
  Graph engine(4), degraded(4), healthy(4);
  for (auto* g : {&engine, &healthy}) {
    g->add_link(0, 1);
    g->add_link(1, 2);
    g->add_link(2, 3);
  }
  degraded.add_link(0, 1);
  degraded.add_link(2, 3);

  apply_delta(engine, diff_graphs(engine, degraded));
  std::size_t slots_after_degrade = engine.link_count();
  apply_delta(engine, diff_graphs(engine, healthy));
  // Coming back to the healthy set must restore the tombstone, not append.
  EXPECT_EQ(engine.link_count(), slots_after_degrade);
  EXPECT_EQ(live_set(engine), live_set(healthy));
}

}  // namespace
}  // namespace flattree::inc
