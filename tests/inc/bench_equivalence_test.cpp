// End-to-end check of the --incremental contract: a sweep bench's stdout
// must be byte-identical with and without the flag, at more than one
// thread count, while the incremental run's manifest shows the work it
// skipped. FT_BENCH_DIR is injected by CMake; the test skips cleanly when
// the binaries are not built.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace flattree {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f != nullptr) std::fclose(f);
  return f != nullptr;
}

/// Runs `bench args > out 2>/dev/null`, returning the exit status.
int run(const std::string& bench, const std::string& args, const std::string& out) {
  std::string cmd = bench + " " + args + " > " + out + " 2>/dev/null";
  return std::system(cmd.c_str());
}

std::uint64_t metric_value(const std::string& doc, const std::string& name) {
  std::size_t at = doc.find("\"" + name + "\"");
  if (at == std::string::npos) return 0;
  at = doc.find(':', at);
  if (at == std::string::npos) return 0;
  return std::strtoull(doc.c_str() + at + 1, nullptr, 10);
}

TEST(BenchEquivalence, FailureSweepIsByteIdenticalAndCheaper) {
  std::string bench = std::string(FT_BENCH_DIR) + "/bench_failures";
  if (!file_exists(bench)) GTEST_SKIP() << "bench binary not built: " << bench;

  const std::string base = "--max-failures 4 --seeds 1";
  std::string tmp = testing::TempDir();
  for (const char* threads : {"1", "4"}) {
    std::string cold_out = tmp + "bf_cold_" + threads + ".txt";
    std::string inc_out = tmp + "bf_inc_" + threads + ".txt";
    std::string args = base + " --threads " + threads;
    ASSERT_EQ(run(bench, args, cold_out), 0);
    ASSERT_EQ(run(bench, args + " --incremental", inc_out), 0);
    EXPECT_EQ(slurp(cold_out), slurp(inc_out)) << "threads=" << threads;
  }

  // The incremental manifest must show real savings: fewer cold BFS node
  // visits than the cold run, and GK phases inherited via exact resume.
  std::string cold_json = tmp + "bf_cold.json";
  std::string inc_json = tmp + "bf_inc.json";
  ASSERT_EQ(run(bench, base + " --threads 2 --metrics-json=" + cold_json, "/dev/null"), 0);
  ASSERT_EQ(run(bench, base + " --threads 2 --incremental --metrics-json=" + inc_json,
                "/dev/null"),
            0);
  std::string cold_doc = slurp(cold_json);
  std::string inc_doc = slurp(inc_json);
  std::uint64_t cold_visits = metric_value(cold_doc, "graph.bfs.nodes_visited");
  std::uint64_t inc_visits = metric_value(inc_doc, "graph.bfs.nodes_visited");
  ASSERT_GT(cold_visits, 0u);
  EXPECT_LT(inc_visits * 2, cold_visits)
      << "incremental mode should at least halve cold BFS work";
  EXPECT_GT(metric_value(inc_doc, "inc.mcf.warm_phases_saved"), 0u);
  EXPECT_EQ(metric_value(cold_doc, "inc.mcf.warm_phases_saved"), 0u);
}

TEST(BenchEquivalence, AblationSweepIsByteIdentical) {
  std::string bench = std::string(FT_BENCH_DIR) + "/bench_ablation_mn";
  if (!file_exists(bench)) GTEST_SKIP() << "bench binary not built: " << bench;

  std::string tmp = testing::TempDir();
  std::string cold_out = tmp + "ba_cold.txt";
  std::string inc_out = tmp + "ba_inc.txt";
  ASSERT_EQ(run(bench, "--kmax 8 --threads 2", cold_out), 0);
  ASSERT_EQ(run(bench, "--kmax 8 --threads 2 --incremental", inc_out), 0);
  EXPECT_EQ(slurp(cold_out), slurp(inc_out));
}

}  // namespace
}  // namespace flattree
