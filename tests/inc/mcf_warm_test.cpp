// MCF warm-start equivalence: exact resume must be bitwise identical to a
// cold solve with every prior phase saved; dual seeds must keep both
// certified bounds; tampered warm state (negative control) must be caught
// by check::certify.

#include "inc/mcf_warm.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <stdexcept>
#include <vector>

#include "check/certify.hpp"
#include "mcf/garg_koenemann.hpp"
#include "util/rng.hpp"

namespace flattree::inc {
namespace {

using graph::Graph;
using graph::NodeId;

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!bits_equal(a[i], b[i])) return false;
  return true;
}

/// Ring + chords: connected, with enough path diversity for the solver to
/// spread flow.
Graph test_graph() {
  Graph g(8);
  for (NodeId v = 0; v < 8; ++v) g.add_link(v, static_cast<NodeId>((v + 1) % 8));
  g.add_link(0, 4, 2.0);
  g.add_link(2, 6, 2.0);
  g.add_link(1, 5);
  return g;
}

std::vector<mcf::Commodity> test_commodities() {
  return {{0, 3, 1.0}, {1, 6, 1.0}, {4, 7, 0.5}, {2, 5, 1.5}};
}

mcf::McfOptions test_options() {
  mcf::McfOptions opt;
  opt.epsilon = 0.12;
  return opt;
}

TEST(McfWarm, ExactResumeIsBitwiseIdenticalAndSavesAllPhases) {
  Graph g = test_graph();
  auto commodities = test_commodities();
  auto opt = test_options();

  mcf::McfResult cold = mcf::max_concurrent_flow(g, commodities, opt);
  ASSERT_FALSE(cold.truncated);

  McfWarmCache cache;
  mcf::McfResult first = cache.solve(g, commodities, opt);
  EXPECT_EQ(cache.last_tier(), WarmTier::Cold);
  EXPECT_TRUE(bits_equal(first.lambda_lower, cold.lambda_lower));

  mcf::McfResult resumed = cache.solve(g, commodities, opt);
  EXPECT_EQ(cache.last_tier(), WarmTier::ExactResume);
  EXPECT_TRUE(bits_equal(resumed.lambda_lower, cold.lambda_lower));
  EXPECT_TRUE(bits_equal(resumed.lambda_upper, cold.lambda_upper));
  EXPECT_TRUE(bits_equal(resumed.max_congestion, cold.max_congestion));
  EXPECT_TRUE(bits_equal(resumed.arc_flow, cold.arc_flow));
  EXPECT_TRUE(bits_equal(resumed.commodity_routed, cold.commodity_routed));
  EXPECT_EQ(resumed.phases, cold.phases);
  EXPECT_EQ(resumed.warm_phases_saved, cold.phases);
  EXPECT_FALSE(resumed.truncated);

  // A third call resumes again — the exported state stays converged.
  mcf::McfResult again = cache.solve(g, commodities, opt);
  EXPECT_EQ(cache.last_tier(), WarmTier::ExactResume);
  EXPECT_TRUE(bits_equal(again.lambda_lower, cold.lambda_lower));
}

TEST(McfWarm, DualSeedKeepsCertifiedBoundsAcrossLinkChanges) {
  auto commodities = test_commodities();
  auto opt = test_options();
  McfWarmCache cache;

  Graph healthy = test_graph();
  cache.solve(healthy, commodities, opt);
  ASSERT_EQ(cache.last_tier(), WarmTier::Cold);

  // Degraded instance: same node space, one chord gone (rebuilt fresh —
  // the solver rejects tombstoned graphs).
  Graph degraded(8);
  for (NodeId v = 0; v < 8; ++v)
    degraded.add_link(v, static_cast<NodeId>((v + 1) % 8));
  degraded.add_link(0, 4, 2.0);
  degraded.add_link(2, 6, 2.0);
  mcf::McfResult warm = cache.solve(degraded, commodities, opt);
  EXPECT_EQ(cache.last_tier(), WarmTier::DualSeed);
  // solve() already certified internally (it throws otherwise); sanity-check
  // the bracket against an independent cold solve of the same instance.
  mcf::McfResult cold = mcf::max_concurrent_flow(degraded, commodities, opt);
  EXPECT_LE(warm.lambda_lower, warm.lambda_upper);
  EXPECT_LE(warm.lambda_lower, cold.lambda_upper + 1e-12);
  EXPECT_LE(cold.lambda_lower, warm.lambda_upper + 1e-12);

  // Back to healthy: dual seed again (instance differs from the degraded
  // one the cache now remembers).
  mcf::McfResult healed = cache.solve(healthy, commodities, opt);
  EXPECT_EQ(cache.last_tier(), WarmTier::DualSeed);
  EXPECT_LE(healed.lambda_lower, healed.lambda_upper);
}

TEST(McfWarm, ChangedCommoditiesOrEpsilonDowngradeTheTier) {
  Graph g = test_graph();
  auto commodities = test_commodities();
  auto opt = test_options();
  McfWarmCache cache;
  cache.solve(g, commodities, opt);

  // Same graph, different demand vector: not exact, but dual-seedable.
  auto heavier = commodities;
  heavier[0].demand = 2.0;
  cache.solve(g, heavier, opt);
  EXPECT_EQ(cache.last_tier(), WarmTier::DualSeed);

  // Different epsilon: dual lengths were built for another delta — cold.
  auto opt2 = opt;
  opt2.epsilon = 0.2;
  cache.solve(g, commodities, opt2);
  EXPECT_EQ(cache.last_tier(), WarmTier::Cold);
}

TEST(McfWarm, NodeCountChangeGoesCold) {
  auto opt = test_options();
  McfWarmCache cache;
  Graph g = test_graph();
  cache.solve(g, test_commodities(), opt);

  Graph bigger(9);
  for (NodeId v = 0; v < 9; ++v) bigger.add_link(v, static_cast<NodeId>((v + 1) % 9));
  cache.solve(bigger, {{0, 4, 1.0}}, opt);
  EXPECT_EQ(cache.last_tier(), WarmTier::Cold);
}

TEST(McfWarm, CacheOwnsWarmFields) {
  McfWarmCache cache;
  Graph g = test_graph();
  mcf::McfOptions opt = test_options();
  mcf::McfWarmState state;
  opt.warm_start = &state;
  EXPECT_THROW(cache.solve(g, test_commodities(), opt), std::invalid_argument);
  opt.warm_start = nullptr;
  opt.export_state = &state;
  EXPECT_THROW(cache.solve(g, test_commodities(), opt), std::invalid_argument);
}

TEST(McfWarm, SolverRejectsTombstonedGraphs) {
  Graph g = test_graph();
  g.remove_link(0);
  EXPECT_THROW(mcf::max_concurrent_flow(g, test_commodities(), test_options()),
               std::invalid_argument);
}

// -- negative control ------------------------------------------------------

// Corrupt the primal half of an exported warm state and resume "exactly":
// the solver trusts the caller's assertion, but check::certify must reject
// the resulting solution (conservation: arc-flow divergence no longer
// matches the claimed per-commodity routed totals).
TEST(McfWarm, CertifyCatchesCorruptedWarmState) {
  Graph g = test_graph();
  auto commodities = test_commodities();
  mcf::McfOptions opt = test_options();

  mcf::McfWarmState exported;
  opt.export_state = &exported;
  mcf::McfResult clean = mcf::max_concurrent_flow(g, commodities, opt);
  ASSERT_FALSE(clean.truncated);
  ASSERT_TRUE(exported.converged);

  mcf::McfWarmState tampered = exported;
  tampered.exact = true;
  tampered.routed[0] *= 3.0;  // claim commodity 0 shipped 3x what it did

  mcf::McfOptions resume = opt;
  resume.export_state = nullptr;
  resume.warm_start = &tampered;
  mcf::McfResult bogus = mcf::max_concurrent_flow(g, commodities, resume);

  check::CertifyOptions copt;
  copt.epsilon = opt.epsilon;
  check::Report clean_report = check::certify(g, commodities, clean, copt);
  EXPECT_TRUE(clean_report.ok());
  check::Report bogus_report = check::certify(g, commodities, bogus, copt);
  EXPECT_FALSE(bogus_report.ok()) << "corrupted warm state escaped certification";
}

TEST(McfWarm, MalformedWarmStateRejectedUpFront) {
  Graph g = test_graph();
  auto commodities = test_commodities();
  mcf::McfOptions opt = test_options();
  mcf::McfWarmState bad;
  bad.length.assign(3, 1.0);  // wrong arity: must be 2 * link_count
  opt.warm_start = &bad;
  EXPECT_THROW(mcf::max_concurrent_flow(g, commodities, opt), std::invalid_argument);
}

}  // namespace
}  // namespace flattree::inc
