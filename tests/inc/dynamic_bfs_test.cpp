// Equivalence suite for the incremental BFS engine: repaired distance
// arrays must be *bitwise* what a cold BFS computes, across randomized
// delta sequences over many seeds; corruptions must be caught by
// check::certify_distances (negative controls). Also carries the
// ThreadSanitizer regression test for the lazy-CSR double-checked lock on
// the edit-journal path (concurrent read-after-mutate).

#include "inc/dynamic_bfs.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "check/distances.hpp"
#include "graph/bfs.hpp"
#include "util/rng.hpp"

namespace flattree::inc {
namespace {

using graph::Graph;
using graph::kUnreachable;
using graph::LinkId;
using graph::NodeId;

Graph random_graph(util::Rng& rng, std::size_t n, std::size_t links) {
  Graph g(n);
  for (std::size_t i = 0; i < links; ++i) {
    NodeId a = static_cast<NodeId>(rng.below(n));
    NodeId b = static_cast<NodeId>(rng.below(n));
    if (a != b) g.add_link(a, b);
  }
  return g;
}

/// Cold reference: one BFS per source on the engine's current graph.
void expect_all_sources_cold_equal(DynamicApsp& engine, const char* what) {
  const Graph& g = engine.graph();
  for (NodeId s = 0; s < g.node_count(); ++s) {
    const auto& inc_dist = engine.distances(s);
    auto cold = graph::bfs_distances(g, s);
    ASSERT_EQ(inc_dist, cold) << what << ", source " << s;
  }
}

TEST(DynamicBfs, ColdComputeMatchesBfs) {
  util::Rng rng(1);
  Graph g = random_graph(rng, 20, 40);
  DynamicApsp engine(g);
  expect_all_sources_cold_equal(engine, "cold");
}

// The headline property: across randomized remove/restore/add sequences
// over >= 20 seeds, every repaired array equals a cold BFS bitwise, and
// every array passes the distance certificate.
TEST(DynamicBfs, RandomDeltaSequencesStayExact) {
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    util::Rng rng(seed * 1000 + 17);
    const std::size_t n = 18;
    Graph target = random_graph(rng, n, 36);
    DynamicApsp engine(target);
    // Materialize every source once so retargets must repair them all.
    for (NodeId s = 0; s < n; ++s) engine.distances(s);

    for (int step = 0; step < 8; ++step) {
      // Mutate the target: drop a few live links, add a few fresh ones.
      std::vector<LinkId> live;
      for (LinkId id = 0; id < target.link_count(); ++id)
        if (target.link_live(id)) live.push_back(id);
      std::size_t drops = 1 + rng.below(3);
      for (std::size_t i = 0; i < drops && !live.empty(); ++i) {
        std::size_t pick = rng.index(live.size());
        target.remove_link(live[pick]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      }
      std::size_t adds = rng.below(3);
      for (std::size_t i = 0; i < adds; ++i) {
        NodeId a = static_cast<NodeId>(rng.below(n));
        NodeId b = static_cast<NodeId>(rng.below(n));
        if (a != b) target.add_link(a, b);
      }

      engine.retarget(target);
      expect_all_sources_cold_equal(engine, "after retarget");
      check::Report report = engine.verify_all_cached();
      EXPECT_TRUE(report.ok()) << "seed " << seed << " step " << step << "\n"
                               << report.to_string();
    }
  }
}

TEST(DynamicBfs, DisconnectionAndReconnection) {
  // A path graph: killing a middle link splits it; repairs must mark the
  // far side unreachable and bring it back on restore.
  const std::size_t n = 10;
  Graph target(n);
  for (NodeId v = 0; v + 1 < n; ++v) target.add_link(v, v + 1);
  DynamicApsp engine(target);
  for (NodeId s = 0; s < n; ++s) engine.distances(s);

  Graph cut = target;
  cut.remove_link(4);  // link 4 joins nodes 4 and 5
  engine.retarget(cut);
  EXPECT_EQ(engine.distances(0)[9], kUnreachable);
  EXPECT_EQ(engine.distances(9)[0], kUnreachable);
  expect_all_sources_cold_equal(engine, "cut");

  engine.retarget(target);
  EXPECT_EQ(engine.distances(0)[9], 9u);
  expect_all_sources_cold_equal(engine, "healed");
}

TEST(DynamicBfs, AddedShortcutPropagatesBeyondAffectedRegion) {
  // Ring + chord: the chord shortens distances for nodes far from any
  // removal, exercising the phase-3 relaxation on its own.
  const std::size_t n = 12;
  Graph target(n);
  for (NodeId v = 0; v < n; ++v) target.add_link(v, static_cast<NodeId>((v + 1) % n));
  DynamicApsp engine(target);
  for (NodeId s = 0; s < n; ++s) engine.distances(s);

  Graph chord = target;
  chord.add_link(0, 6);
  engine.retarget(chord);
  EXPECT_EQ(engine.distances(0)[6], 1u);
  EXPECT_EQ(engine.distances(8)[4], 4u);  // 8-...-11-0-6-5-4? no: 8-7-6-5-4 stays 4
  EXPECT_EQ(engine.distances(11)[5], 3u);  // 11-0-6-5 via the chord (was 6)
  expect_all_sources_cold_equal(engine, "chord");
}

TEST(DynamicBfs, ChurnThresholdFallsBackToFullBfs) {
  // Path graph: cutting a middle link affects *every* source (each loses
  // the far side of the cut), so threshold 0 forces the full-BFS fallback
  // for all of them.
  const std::size_t n = 16;
  Graph target(n);
  for (NodeId v = 0; v + 1 < n; ++v) target.add_link(v, v + 1);
  DynamicApspOptions opt;
  opt.churn_threshold = 0.0;  // every affected source goes the full-BFS path
  DynamicApsp engine(target, opt);
  for (NodeId s = 0; s < n; ++s) engine.distances(s);

  target.remove_link(7);  // cut between nodes 7 and 8
  RetargetStats stats = engine.retarget(target);
  EXPECT_EQ(stats.sources_rebuilt, n);
  EXPECT_EQ(stats.sources_repaired, 0u);
  EXPECT_EQ(stats.sources_untouched, 0u);
  expect_all_sources_cold_equal(engine, "fallback");

  // Same edit with a permissive threshold repairs instead of rebuilding.
  DynamicApsp lax(engine.graph());
  for (NodeId s = 0; s < n; ++s) lax.distances(s);
  Graph healed = engine.graph();
  healed.restore_link(7);
  RetargetStats lax_stats = lax.retarget(healed);
  EXPECT_EQ(lax_stats.sources_rebuilt, 0u);
  EXPECT_GT(lax_stats.sources_repaired, 0u);
  expect_all_sources_cold_equal(lax, "lax");
}

TEST(DynamicBfs, UntouchedSourcesDoNoWork) {
  // Two disjoint components; edits in one must leave the other's sources
  // untouched.
  Graph target(8);
  target.add_link(0, 1);
  target.add_link(1, 2);
  target.add_link(2, 3);
  LinkId far = target.add_link(4, 5);
  target.add_link(5, 6);
  target.add_link(6, 7);
  DynamicApsp engine(target);
  for (NodeId s = 0; s < 8; ++s) engine.distances(s);

  target.remove_link(far);
  RetargetStats stats = engine.retarget(target);
  // Sources 0..3: tree untouched (their component did not change).
  EXPECT_GE(stats.sources_untouched, 4u);
  expect_all_sources_cold_equal(engine, "disjoint");
}

// -- negative controls -----------------------------------------------------

TEST(DynamicBfs, CertificateCatchesCorruptedCache) {
  util::Rng rng(9);
  Graph target = random_graph(rng, 14, 30);
  DynamicApsp engine(target);
  for (NodeId s = 0; s < 14; ++s) engine.distances(s);
  ASSERT_TRUE(engine.verify_all_cached().ok());

  // Corrupt one entry: shift a node one hop closer than possible.
  const auto& dist = engine.distances(0);
  NodeId victim = 0;
  for (NodeId v = 1; v < 14; ++v)
    if (dist[v] != kUnreachable && dist[v] >= 2) victim = v;
  ASSERT_NE(victim, 0u) << "test graph too small/disconnected";
  engine.corrupt_cache_for_test(0, victim, engine.distances(0)[victim] - 2);
  check::Report report = engine.verify(0);
  EXPECT_FALSE(report.ok());

  // Repairing the graph does not launder corruption: fix it and recheck.
  engine.corrupt_cache_for_test(0, victim, kUnreachable);
  EXPECT_FALSE(engine.verify(0).ok());  // false unreachable is caught too
}

TEST(DistanceCertificate, AcceptsColdBfsAndRejectsTampering) {
  util::Rng rng(11);
  Graph g = random_graph(rng, 16, 34);
  for (NodeId s = 0; s < 4; ++s) {
    auto dist = graph::bfs_distances(g, s);
    EXPECT_TRUE(check::certify_distances(g, s, dist).ok());

    auto broken = dist;
    broken[s] = 1;  // anchor violation
    EXPECT_FALSE(check::certify_distances(g, s, broken).ok());

    broken = dist;
    for (NodeId v = 0; v < 16; ++v) {
      if (v != s && broken[v] != kUnreachable && broken[v] > 0) {
        broken[v] += 5;  // step violation across some link
        break;
      }
    }
    EXPECT_FALSE(check::certify_distances(g, s, broken).ok());

    broken = dist;
    broken.pop_back();  // size violation
    EXPECT_FALSE(check::certify_distances(g, s, broken).ok());
  }
}

// -- concurrency regression (run under the tsan preset, label `inc`) -------

// The lazy-CSR double-checked lock must publish a *patched* index to
// readers that race on the first neighbors() call after an edit-journal
// mutation (remove/restore). Before the fix, only add_link invalidated the
// guard; remove_link left csr_valid_ stale so concurrent readers could see
// the dead link. The mutation itself happens-before the reader threads
// (thread creation), per the documented contract.
TEST(DynamicBfs, ConcurrentReadAfterMutateIsRaceFree) {
  util::Rng rng(13);
  Graph g = random_graph(rng, 24, 60);
  g.ensure_csr();  // build once so the edit takes the patch path

  std::vector<LinkId> live;
  for (LinkId id = 0; id < g.link_count(); ++id)
    if (g.link_live(id)) live.push_back(id);

  for (int round = 0; round < 8; ++round) {
    LinkId flip = live[rng.index(live.size())];
    if (g.link_live(flip))
      g.remove_link(flip);
    else
      g.restore_link(flip);
    // Readers race each other on the lazily patched CSR (the mutation
    // above is sequenced before both threads start).
    auto reader = [&g]() {
      for (NodeId s = 0; s < g.node_count(); s += 3) {
        auto dist = graph::bfs_distances(g, s);
        ASSERT_EQ(dist.size(), g.node_count());
      }
    };
    std::thread t1(reader), t2(reader), t3(reader);
    t1.join();
    t2.join();
    t3.join();
    // The patched view must match what a from-scratch rebuild sees.
    for (NodeId s = 0; s < g.node_count(); ++s) {
      Graph fresh(g.node_count());
      for (LinkId id = 0; id < g.link_count(); ++id)
        if (g.link_live(id)) fresh.add_link(g.link(id).a, g.link(id).b);
      ASSERT_EQ(graph::bfs_distances(g, s), graph::bfs_distances(fresh, s));
    }
  }
}

}  // namespace
}  // namespace flattree::inc
