#include "check/differential.hpp"

#include <gtest/gtest.h>

#include "check/invariants.hpp"

namespace flattree::check {
namespace {

TEST(Differential, GkAgreesWithExactLpAcrossSeeds) {
  // The PR's acceptance bar: on small instances GK must land within
  // (1 + eps) of the exact LP optimum and bracket it, every seed.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    DifferentialSpec spec;
    spec.seed = seed;
    DifferentialOutcome out = run_differential(spec);
    EXPECT_TRUE(out.report.ok())
        << "seed " << seed << ":\n" << out.report.to_string();
    EXPECT_GT(out.exact, 0.0) << "seed " << seed;
    EXPECT_GT(out.gk.lambda_lower, 0.0) << "seed " << seed;
  }
}

TEST(Differential, SimpleGraphInstances) {
  DifferentialSpec spec;
  spec.seed = 5;
  spec.parallel_links = false;
  DifferentialOutcome out = run_differential(spec);
  EXPECT_TRUE(out.report.ok()) << out.report.to_string();
  // The generator honored the simple-graph request.
  topo::Topology t;
  for (graph::NodeId v = 0; v < out.graph.node_count(); ++v)
    t.add_switch(topo::SwitchKind::Edge, 0, v,
                 static_cast<std::uint32_t>(out.graph.node_count()) * 2);
  for (graph::LinkId l = 0; l < out.graph.link_count(); ++l) {
    const graph::Link& link = out.graph.link(l);
    t.add_link(link.a, link.b, topo::LinkOrigin::Random, link.capacity);
  }
  TopologyCheckOptions opts;
  opts.allow_parallel_links = false;
  EXPECT_TRUE(validate(t, opts).ok());
}

TEST(Differential, TighterEpsilonStillAgrees) {
  DifferentialSpec spec;
  spec.seed = 11;
  spec.epsilon = 0.02;
  spec.nodes = 8;
  spec.extra_links = 6;
  spec.commodities = 4;
  DifferentialOutcome out = run_differential(spec);
  EXPECT_TRUE(out.report.ok()) << out.report.to_string();
  // Bracket actually contains the exact optimum.
  EXPECT_LE(out.gk.lambda_lower, out.exact * (1.0 + 1e-6));
  EXPECT_GE(out.gk.lambda_upper, out.exact * (1.0 - 1e-6));
}

TEST(Differential, StrictGapFactorCanFail) {
  // A gap factor of 1.0 demands lambda_lower == exact, which an FPTAS with
  // eps = 0.3 generally misses — proving the harness actually compares.
  bool saw_gap_violation = false;
  for (std::uint64_t seed = 1; seed <= 10 && !saw_gap_violation; ++seed) {
    DifferentialSpec spec;
    spec.seed = seed;
    spec.epsilon = 0.3;
    spec.gap_factor = 1.0000001;
    DifferentialOutcome out = run_differential(spec);
    for (const Violation& v : out.report.violations)
      if (v.code == "diff.gap") saw_gap_violation = true;
  }
  EXPECT_TRUE(saw_gap_violation);
}

}  // namespace
}  // namespace flattree::check
