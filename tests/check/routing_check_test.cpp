#include "check/routing_check.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "check/report.hpp"
#include "core/flat_tree.hpp"
#include "routing/ecmp.hpp"
#include "routing/ksp_routing.hpp"

namespace flattree::check {
namespace {

using topo::LinkOrigin;
using topo::SwitchKind;

bool has_code(const Report& r, const std::string& code) {
  return std::any_of(r.violations.begin(), r.violations.end(),
                     [&](const Violation& v) { return v.code == code; });
}

/// Ring of 5 switches plus a chord, one server each.
topo::Topology ring() {
  topo::Topology t;
  for (std::uint32_t i = 0; i < 5; ++i) {
    t.add_switch(SwitchKind::Edge, 0, i, 6);
    t.add_server(i);
  }
  for (topo::NodeId v = 0; v < 5; ++v)
    t.add_link(v, (v + 1) % 5, LinkOrigin::Random);
  t.add_link(0, 2, LinkOrigin::Random);
  return t;
}

TEST(RoutingCheck, YenPathsPass) {
  topo::Topology t = ring();
  auto paths = graph::yen_ksp_hops(t.graph(), 0, 3, 4);
  ASSERT_FALSE(paths.empty());
  Report r = validate_paths(t.graph(), 0, 3, paths);
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST(RoutingCheck, KspRoutingPathSetsPass) {
  core::FlatTreeConfig cfg;
  cfg.k = 6;
  core::FlatTreeNetwork net(cfg);
  topo::Topology t = net.build(core::Mode::GlobalRandom);
  routing::KspRouting ksp(t.graph(), 8);
  auto pairs = routing::all_server_pairs(t);
  for (std::size_t i = 0; i < pairs.size(); i += 31) {
    auto [src, dst] = pairs[i];
    Report r = validate_paths(t.graph(), src, dst, ksp.paths(src, dst));
    EXPECT_TRUE(r.ok()) << r.to_string();
  }
}

TEST(RoutingCheck, TamperedPathsDetected) {
  topo::Topology t = ring();
  auto paths = graph::yen_ksp_hops(t.graph(), 0, 3, 4);
  ASSERT_GE(paths.size(), 2u);

  auto wrong_endpoint = paths;
  wrong_endpoint[0].nodes.back() = 4;
  EXPECT_TRUE(has_code(validate_paths(t.graph(), 0, 3, wrong_endpoint),
                       "route.path_endpoints"));

  auto looped = paths;
  looped[0].nodes.insert(looped[0].nodes.begin() + 1, looped[0].nodes[0]);
  looped[0].links.push_back(looped[0].links[0]);
  Report r = validate_paths(t.graph(), 0, 3, looped);
  EXPECT_TRUE(has_code(r, "route.path_loop") || has_code(r, "route.path_links"))
      << r.to_string();

  auto unsorted = paths;
  std::swap(unsorted.front(), unsorted.back());
  EXPECT_TRUE(
      has_code(validate_paths(t.graph(), 0, 3, unsorted), "route.path_order"));

  auto duplicated = paths;
  duplicated.push_back(duplicated[0]);
  EXPECT_TRUE(
      has_code(validate_paths(t.graph(), 0, 3, duplicated), "route.path_duplicate"));

  auto bad_link = paths;
  bad_link[0].links[0] = (bad_link[0].links[0] + 1) % t.link_count();
  EXPECT_TRUE(has_code(validate_paths(t.graph(), 0, 3, bad_link), "route.path_links"));
}

TEST(RoutingCheck, EcmpFibMakesStrictProgress) {
  core::FlatTreeConfig cfg;
  cfg.k = 6;
  core::FlatTreeNetwork net(cfg);
  topo::Topology t = net.build(core::Mode::Clos);
  routing::EcmpRouting ecmp(t.graph());
  auto pairs = routing::all_server_pairs(t);
  routing::Fib fib = routing::compile_fib(t, ecmp, pairs);
  Report r = validate_fib_progress(t, fib, pairs);
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_GE(r.checks_run, pairs.size());
}

TEST(RoutingCheck, FibViolationsDetected) {
  topo::Topology t = ring();
  routing::EcmpRouting ecmp(t.graph());
  std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs{{0, 3}};
  routing::Fib fib = routing::compile_fib(t, ecmp, pairs);

  // A backwards rule: at node 3's shortest-path predecessor, install the
  // link pointing away from 3.
  routing::Fib bad = fib;
  bad.add_route(4, 3, /*link 4 joins (4, 0)*/ 4);
  Report r = validate_fib_progress(t, bad, pairs);
  EXPECT_TRUE(has_code(r, "route.fib_progress")) << r.to_string();

  // Missing rules: an empty FIB has no next hop at the source.
  routing::Fib empty(t.switch_count());
  EXPECT_TRUE(has_code(validate_fib_progress(t, empty, pairs), "route.fib_missing"));

  // Disconnected pair: an isolated extra switch.
  topo::Topology island = ring();
  topo::NodeId lone = island.add_switch(SwitchKind::Edge, 1, 0, 2);
  routing::Fib fib2(island.switch_count());
  EXPECT_TRUE(has_code(
      validate_fib_progress(island, fib2, {{0, lone}}), "route.fib_disconnected"));
}

}  // namespace
}  // namespace flattree::check
