#include "check/invariants.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "check/report.hpp"
#include "core/flat_tree.hpp"
#include "core/recovery.hpp"
#include "obs/metrics.hpp"
#include "topo/fat_tree.hpp"
#include "topo/random_graph.hpp"
#include "topo/two_stage.hpp"
#include "util/rng.hpp"

namespace flattree::check {
namespace {

using topo::LinkOrigin;
using topo::SwitchKind;

/// A 3-switch path a-b-c with one server per switch.
topo::Topology tiny() {
  topo::Topology t;
  topo::NodeId a = t.add_switch(SwitchKind::Edge, 0, 0, 4);
  topo::NodeId b = t.add_switch(SwitchKind::Aggregation, 0, 0, 4);
  topo::NodeId c = t.add_switch(SwitchKind::Edge, 0, 1, 4);
  t.add_link(a, b, LinkOrigin::ClosEdgeAgg);
  t.add_link(b, c, LinkOrigin::ClosEdgeAgg);
  t.add_server(a);
  t.add_server(c);
  return t;
}

bool has_code(const Report& r, const std::string& code) {
  return std::any_of(r.violations.begin(), r.violations.end(),
                     [&](const Violation& v) { return v.code == code; });
}

TEST(Invariants, CleanTopologyPasses) {
  Report r = validate(tiny());
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_GT(r.checks_run, 0u);
}

TEST(Invariants, RealBuildersPass) {
  util::Rng rng(7);
  EXPECT_TRUE(validate(topo::build_fat_tree(8).topo).ok());
  // Jellyfish-like builds promise simple graphs.
  TopologyCheckOptions simple;
  simple.allow_parallel_links = false;
  EXPECT_TRUE(validate(topo::build_jellyfish_like_fat_tree(8, rng), simple).ok());
  EXPECT_TRUE(validate(topo::build_two_stage_random_graph(8, rng)).ok());
  core::FlatTreeConfig cfg;
  cfg.k = 8;
  core::FlatTreeNetwork net(cfg);
  EXPECT_TRUE(validate(net.build(core::Mode::Clos)).ok());
  EXPECT_TRUE(validate(net.build(core::Mode::GlobalRandom)).ok());
  EXPECT_TRUE(validate(net.build(core::Mode::LocalRandom)).ok());
}

TEST(Invariants, PortBudgetOverflowDetected) {
  topo::Topology t;
  topo::NodeId a = t.add_switch(SwitchKind::Edge, 0, 0, /*ports=*/2);
  topo::NodeId b = t.add_switch(SwitchKind::Edge, 0, 1, /*ports=*/8);
  t.add_link(a, b, LinkOrigin::Random);
  t.add_link(a, b, LinkOrigin::Random);
  t.add_server(a);  // third port on a 2-port switch
  Report r = validate(t);
  EXPECT_TRUE(has_code(r, "topo.port_budget")) << r.to_string();
}

TEST(Invariants, ParallelLinksFlaggedOnlyWhenDeclaredSimple) {
  topo::Topology t;
  topo::NodeId a = t.add_switch(SwitchKind::Edge, 0, 0, 4);
  topo::NodeId b = t.add_switch(SwitchKind::Edge, 0, 1, 4);
  t.add_link(a, b, LinkOrigin::Random);
  t.add_link(a, b, LinkOrigin::Random);
  EXPECT_TRUE(validate(t).ok());  // multigraph legal by default
  TopologyCheckOptions simple;
  simple.allow_parallel_links = false;
  Report r = validate(t, simple);
  EXPECT_TRUE(has_code(r, "topo.parallel_link")) << r.to_string();
}

TEST(Invariants, StrandedServerDetectedAndDeclarable) {
  topo::Topology t;
  topo::NodeId a = t.add_switch(SwitchKind::Edge, 0, 0, 4);
  topo::NodeId b = t.add_switch(SwitchKind::Edge, 0, 1, 4);
  topo::NodeId dead = t.add_switch(SwitchKind::Edge, 0, 2, 4);
  t.add_link(a, b, LinkOrigin::Random);
  topo::ServerId s = t.add_server(dead);
  TopologyCheckOptions opts;
  opts.allow_isolated_switches = true;  // isolate the connectivity question
  Report r = validate(t, opts);
  EXPECT_TRUE(has_code(r, "topo.stranded_server")) << r.to_string();
  opts.declared_stranded = {s};
  EXPECT_TRUE(validate(t, opts).ok());
}

TEST(Invariants, DisconnectedGraphDetected) {
  topo::Topology t;
  topo::NodeId a = t.add_switch(SwitchKind::Edge, 0, 0, 4);
  topo::NodeId b = t.add_switch(SwitchKind::Edge, 0, 1, 4);
  topo::NodeId c = t.add_switch(SwitchKind::Edge, 0, 2, 4);
  topo::NodeId d = t.add_switch(SwitchKind::Edge, 0, 3, 4);
  t.add_link(a, b, LinkOrigin::Random);
  t.add_link(c, d, LinkOrigin::Random);
  Report r = validate(t);
  EXPECT_TRUE(has_code(r, "topo.connectivity")) << r.to_string();
  // Two live components stay disconnected even with isolated switches
  // exempted.
  TopologyCheckOptions opts;
  opts.allow_isolated_switches = true;
  EXPECT_TRUE(has_code(validate(t, opts), "topo.connectivity"));
  opts.require_connected = false;
  EXPECT_TRUE(validate(t, opts).ok());
}

TEST(Invariants, IsolatedSwitchExemptionMatchesDegradedTopology) {
  // A degraded build: failed switches keep their ids as isolated nodes and
  // their servers are declared stranded — that must validate cleanly.
  core::FlatTreeConfig cfg;
  cfg.k = 8;
  core::FlatTreeNetwork net(cfg);
  auto configs = net.assign_configs(core::Mode::GlobalRandom);
  topo::Topology healthy = net.materialize(configs);
  core::FailureSet f;
  auto weights = healthy.servers_per_switch();
  for (topo::NodeId v = 0; v < healthy.switch_count(); ++v)
    if (healthy.info(v).kind == SwitchKind::Core && weights[v] > 0) {
      f.failed_switches.push_back(v);
      break;
    }
  ASSERT_FALSE(f.failed_switches.empty());
  core::DegradedTopology d = core::apply_failures(healthy, f);

  Report strict = validate(d.topo);
  EXPECT_TRUE(has_code(strict, "topo.connectivity"));  // dead node isolated
  TopologyCheckOptions opts;
  opts.allow_isolated_switches = true;
  opts.declared_stranded = d.stranded_servers;
  Report relaxed = validate(d.topo, opts);
  EXPECT_TRUE(relaxed.ok()) << relaxed.to_string();
}

TEST(Parity, ConversionsShareEquipment) {
  core::FlatTreeConfig cfg;
  cfg.k = 8;
  core::FlatTreeNetwork net(cfg);
  topo::Topology clos = net.build(core::Mode::Clos);
  topo::Topology global = net.build(core::Mode::GlobalRandom);
  topo::Topology local = net.build(core::Mode::LocalRandom);
  EXPECT_TRUE(equipment_parity(clos, global).ok());
  EXPECT_TRUE(equipment_parity(clos, local).ok());
  EXPECT_TRUE(equipment_parity(topo::build_fat_tree(8).topo, clos).ok());
}

TEST(Parity, DetectsEveryMismatch) {
  topo::Topology a = tiny();
  // Switch count.
  {
    topo::Topology b = tiny();
    b.add_switch(SwitchKind::Edge, 1, 0, 4);
    EXPECT_TRUE(has_code(equipment_parity(a, b), "parity.switches"));
  }
  // Kind counts (same total).
  {
    topo::Topology b;
    b.add_switch(SwitchKind::Edge, 0, 0, 4);
    b.add_switch(SwitchKind::Core, 0, 0, 4);
    b.add_switch(SwitchKind::Edge, 0, 1, 4);
    b.add_link(0, 1, LinkOrigin::ClosEdgeAgg);
    b.add_link(1, 2, LinkOrigin::ClosEdgeAgg);
    b.add_server(0);
    b.add_server(2);
    EXPECT_TRUE(has_code(equipment_parity(a, b), "parity.kinds"));
  }
  // Port inventory (same kinds).
  {
    topo::Topology b;
    b.add_switch(SwitchKind::Edge, 0, 0, 8);
    b.add_switch(SwitchKind::Aggregation, 0, 0, 4);
    b.add_switch(SwitchKind::Edge, 0, 1, 4);
    b.add_link(0, 1, LinkOrigin::ClosEdgeAgg);
    b.add_link(1, 2, LinkOrigin::ClosEdgeAgg);
    b.add_server(0);
    b.add_server(2);
    EXPECT_TRUE(has_code(equipment_parity(a, b), "parity.ports"));
  }
  // Servers and links.
  {
    topo::Topology b = tiny();
    b.add_server(0);
    EXPECT_TRUE(has_code(equipment_parity(a, b), "parity.servers"));
  }
  {
    topo::Topology b = tiny();
    b.add_link(0, 2, LinkOrigin::Random);
    EXPECT_TRUE(has_code(equipment_parity(a, b), "parity.links"));
    EXPECT_FALSE(has_code(equipment_parity(a, b, /*require_equal_links=*/false),
                          "parity.links"));
  }
}

TEST(Report, ViolationsBumpObsCounter) {
  obs::set_enabled(true);
  obs::reset_metrics();
  topo::Topology t;
  t.add_switch(SwitchKind::Edge, 0, 0, 4);
  t.add_switch(SwitchKind::Edge, 0, 1, 4);
  t.add_switch(SwitchKind::Edge, 0, 2, 4);
  t.add_link(0, 1, LinkOrigin::Random);
  validate(t);  // switch 2 is isolated: connectivity violation
  auto snap = obs::snapshot_metrics();
  std::uint64_t violations = 0, runs = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name == "check.violations") violations = value;
    if (name == "check.runs") runs = value;
  }
  EXPECT_GE(violations, 1u);
  EXPECT_GE(runs, 1u);
  obs::reset_metrics();
  obs::set_enabled(false);
}

TEST(Report, MergeAndToString) {
  Report a, b;
  a.add("x.one", "first");
  a.note_check(3);
  b.add("x.two", "second");
  b.note_check(2);
  a.merge(b);
  EXPECT_EQ(a.violations.size(), 2u);
  EXPECT_EQ(a.checks_run, 5u);
  std::string s = a.to_string();
  EXPECT_NE(s.find("x.one"), std::string::npos);
  EXPECT_NE(s.find("second"), std::string::npos);
  EXPECT_EQ(Report{}.to_string(), "");
}

}  // namespace
}  // namespace flattree::check
