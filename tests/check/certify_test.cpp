#include "check/certify.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "check/report.hpp"

namespace flattree::check {
namespace {

bool has_code(const Report& r, const std::string& code) {
  return std::any_of(r.violations.begin(), r.violations.end(),
                     [&](const Violation& v) { return v.code == code; });
}

/// Diamond 0-1-3 / 0-2-3 plus a chord; two commodities.
struct Instance {
  graph::Graph g{4};
  std::vector<mcf::Commodity> cs;
  mcf::McfResult r;

  explicit Instance(double epsilon = 0.05) {
    g.add_link(0, 1, 1.0);
    g.add_link(1, 3, 1.0);
    g.add_link(0, 2, 1.0);
    g.add_link(2, 3, 0.5);
    g.add_link(1, 2, 2.0);
    cs = {{0, 3, 1.0}, {1, 2, 0.5}};
    mcf::McfOptions opt;
    opt.epsilon = epsilon;
    r = mcf::max_concurrent_flow(g, cs, opt);
  }
};

TEST(Certify, GenuineResultPasses) {
  Instance in;
  CertifyOptions opts;
  opts.epsilon = 0.05;
  Report report = certify(in.g, in.cs, in.r, opts);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GE(report.checks_run, 5u);
}

TEST(Certify, SizeMismatchesShortCircuit) {
  Instance in;
  mcf::McfResult bad = in.r;
  bad.arc_flow.pop_back();
  Report r1 = certify(in.g, in.cs, bad);
  EXPECT_TRUE(has_code(r1, "mcf.arc_flow_size"));
  EXPECT_EQ(r1.violations.size(), 1u);  // nothing else is meaningful

  bad = in.r;
  bad.commodity_routed.push_back(0.0);
  Report r2 = certify(in.g, in.cs, bad);
  EXPECT_TRUE(has_code(r2, "mcf.routed_size"));
}

TEST(Certify, OverCapacityDetected) {
  Instance in;
  mcf::McfResult bad = in.r;
  bad.arc_flow[0] = in.g.link(0).capacity * 1.5;
  Report report = certify(in.g, in.cs, bad);
  EXPECT_TRUE(has_code(report, "mcf.capacity")) << report.to_string();
}

TEST(Certify, ConservationViolationDetected) {
  Instance in;
  mcf::McfResult bad = in.r;
  // Inject flow out of thin air on one arc: divergence breaks at both
  // endpoints (the arc stays within capacity).
  bad.arc_flow[8] += 0.25;
  Report report = certify(in.g, in.cs, bad);
  EXPECT_TRUE(has_code(report, "mcf.conservation")) << report.to_string();
}

TEST(Certify, InflatedRoutedTotalDetected) {
  Instance in;
  mcf::McfResult bad = in.r;
  // Claim a commodity shipped more than its paths carried.
  bad.commodity_routed[0] += 0.5;
  Report report = certify(in.g, in.cs, bad);
  EXPECT_TRUE(has_code(report, "mcf.conservation")) << report.to_string();
}

TEST(Certify, UnachievedLambdaDetected) {
  Instance in;
  mcf::McfResult bad = in.r;
  // Claim a higher certified bound than the flows support. Dropping a
  // commodity's routed total breaks primal support without touching flows.
  bad.commodity_routed[0] *= 0.5;
  Report report = certify(in.g, in.cs, bad);
  EXPECT_TRUE(has_code(report, "mcf.primal_support")) << report.to_string();
}

TEST(Certify, InvertedBracketDetected) {
  Instance in;
  mcf::McfResult bad = in.r;
  bad.lambda_upper = bad.lambda_lower * 0.5;
  Report report = certify(in.g, in.cs, bad);
  EXPECT_TRUE(has_code(report, "mcf.bracket")) << report.to_string();
}

TEST(Certify, FptasGapCheckedOnlyWhenMeaningful) {
  Instance in;
  // A fabricated huge upper bound breaks the (1 - 3 eps) floor.
  mcf::McfResult bad = in.r;
  bad.lambda_upper = bad.lambda_lower * 10.0;
  CertifyOptions opts;
  opts.epsilon = 0.05;
  EXPECT_TRUE(has_code(certify(in.g, in.cs, bad, opts), "mcf.fptas_gap"));
  // No epsilon -> no gap check.
  EXPECT_FALSE(has_code(certify(in.g, in.cs, bad), "mcf.fptas_gap"));
  // Truncated runs carry no gap promise.
  bad.truncated = true;
  EXPECT_FALSE(has_code(certify(in.g, in.cs, bad, opts), "mcf.fptas_gap"));
  // eps >= 1/3 makes the floor vacuous-or-negative; skipped.
  bad.truncated = false;
  opts.epsilon = 0.5;
  EXPECT_FALSE(has_code(certify(in.g, in.cs, bad, opts), "mcf.fptas_gap"));
}

TEST(Certify, TruncatedRunStillCertifiesPrimally) {
  // max_phases = 1: bounds hold, flows feasible, certificate passes (gap
  // check skipped via result.truncated).
  graph::Graph g(4);
  g.add_link(0, 1, 1.0);
  g.add_link(1, 2, 2.0);
  g.add_link(2, 3, 0.5);
  g.add_link(0, 3, 1.0);
  std::vector<mcf::Commodity> cs{{0, 3, 1.0}, {1, 3, 0.5}};
  mcf::McfOptions opt;
  opt.epsilon = 0.05;
  opt.max_phases = 1;
  auto r = mcf::max_concurrent_flow(g, cs, opt);
  ASSERT_TRUE(r.truncated);
  CertifyOptions opts;
  opts.epsilon = 0.05;
  Report report = certify(g, cs, r, opts);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Certify, SkippedUpperBoundBracketsTrivially) {
  graph::Graph g(2);
  g.add_link(0, 1, 1.0);
  mcf::McfOptions opt;
  opt.epsilon = 0.1;
  opt.compute_upper_bound = false;
  auto r = mcf::max_concurrent_flow(g, {{0, 1, 1.0}}, opt);
  CertifyOptions opts;
  opts.epsilon = 0.1;  // gap check must self-skip on the infinite upper
  Report report = certify(g, {{0, 1, 1.0}}, r, opts);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// -- certify_served: degraded-service certificates (ISSUE 5) ---------------

/// Two components {0,1} / {2,3}; commodity 1 is unreachable.
struct ServedInstance {
  graph::Graph g{4};
  std::vector<mcf::Commodity> cs;
  mcf::McfResult r;

  ServedInstance() {
    g.add_link(0, 1, 1.0);
    g.add_link(2, 3, 1.0);
    cs = {{0, 1, 1.0}, {0, 3, 3.0}};
    mcf::McfOptions opt;
    opt.epsilon = 0.05;
    opt.allow_unreachable = true;
    r = mcf::max_concurrent_flow(g, cs, opt);
  }
};

TEST(CertifyServed, GenuineDegradedResultPasses) {
  ServedInstance in;
  ASSERT_EQ(in.r.unreachable, (std::vector<std::uint32_t>{1}));
  CertifyOptions opts;
  opts.epsilon = 0.05;
  Report report = certify_served(in.g, in.cs, in.r, opts);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(CertifyServed, EquivalentToCertifyWhenNothingExcluded) {
  Instance in;  // fully-connected diamond
  CertifyOptions opts;
  opts.epsilon = 0.05;
  Report plain = certify(in.g, in.cs, in.r, opts);
  Report served = certify_served(in.g, in.cs, in.r, opts);
  EXPECT_EQ(plain.ok(), served.ok());
  EXPECT_TRUE(served.ok()) << served.to_string();
}

TEST(CertifyServed, FlowOnAnExcludedCommodityDetected) {
  ServedInstance in;
  in.r.commodity_routed[1] = 0.25;  // routed through a declared cut
  Report report = certify_served(in.g, in.cs, in.r, {});
  EXPECT_TRUE(has_code(report, "mcf.unreachable_routed")) << report.to_string();
}

TEST(CertifyServed, WrongServedFractionDetected) {
  ServedInstance in;
  in.r.served_fraction = 1.0;  // claims full service while excluding demand
  Report report = certify_served(in.g, in.cs, in.r, {});
  EXPECT_TRUE(has_code(report, "mcf.served_fraction")) << report.to_string();
}

TEST(CertifyServed, MalformedUnreachableIndicesDetected) {
  ServedInstance in;
  mcf::McfResult out_of_range = in.r;
  out_of_range.unreachable = {7};
  Report r1 = certify_served(in.g, in.cs, out_of_range, {});
  EXPECT_TRUE(has_code(r1, "mcf.unreachable_index")) << r1.to_string();

  mcf::McfResult unsorted = in.r;
  unsorted.unreachable = {1, 1};  // not strictly ascending
  Report r2 = certify_served(in.g, in.cs, unsorted, {});
  EXPECT_TRUE(has_code(r2, "mcf.unreachable_index")) << r2.to_string();
}

}  // namespace
}  // namespace flattree::check
