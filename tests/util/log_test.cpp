#include "util/log.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace flattree::util {
namespace {

TEST(ParseLogLevel, AcceptsAllNames) {
  LogLevel out = LogLevel::Warn;
  EXPECT_TRUE(parse_log_level("debug", &out));
  EXPECT_EQ(out, LogLevel::Debug);
  EXPECT_TRUE(parse_log_level("info", &out));
  EXPECT_EQ(out, LogLevel::Info);
  EXPECT_TRUE(parse_log_level("warn", &out));
  EXPECT_EQ(out, LogLevel::Warn);
  EXPECT_TRUE(parse_log_level("warning", &out));
  EXPECT_EQ(out, LogLevel::Warn);
  EXPECT_TRUE(parse_log_level("error", &out));
  EXPECT_EQ(out, LogLevel::Error);
  EXPECT_TRUE(parse_log_level("off", &out));
  EXPECT_EQ(out, LogLevel::Off);
  EXPECT_TRUE(parse_log_level("none", &out));
  EXPECT_EQ(out, LogLevel::Off);
}

TEST(ParseLogLevel, CaseInsensitive) {
  LogLevel out = LogLevel::Warn;
  EXPECT_TRUE(parse_log_level("DEBUG", &out));
  EXPECT_EQ(out, LogLevel::Debug);
  EXPECT_TRUE(parse_log_level("Info", &out));
  EXPECT_EQ(out, LogLevel::Info);
}

TEST(ParseLogLevel, RejectsGarbageAndLeavesOutUntouched) {
  LogLevel out = LogLevel::Error;
  EXPECT_FALSE(parse_log_level("verbose", &out));
  EXPECT_FALSE(parse_log_level("", &out));
  EXPECT_FALSE(parse_log_level("debu", &out));
  EXPECT_FALSE(parse_log_level("debugx", &out));
  EXPECT_FALSE(parse_log_level(nullptr, &out));
  EXPECT_EQ(out, LogLevel::Error);
}

TEST(Log, LevelThresholdRoundTrips) {
  LogLevel before = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  set_log_level(before);
}

TEST(Log, ConcurrentLoggingDoesNotCrash) {
  // Emission is one fwrite per line; under tsan this exercises the
  // level load and the stderr stream from several threads at once.
  LogLevel before = log_level();
  set_log_level(LogLevel::Off);  // keep test output clean
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 100; ++i)
        log_error("thread " + std::to_string(t) + " line " + std::to_string(i));
    });
  }
  for (auto& th : threads) th.join();
  set_log_level(before);
}

}  // namespace
}  // namespace flattree::util
