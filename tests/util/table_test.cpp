#include "util/table.hpp"

#include <gtest/gtest.h>

namespace flattree::util {
namespace {

TEST(Table, RejectsZeroColumns) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, CellAccess) {
  Table t({"a", "b"});
  t.begin_row();
  t.add("x");
  t.integer(42);
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.columns(), 2u);
  EXPECT_EQ(t.at(0, 0), "x");
  EXPECT_EQ(t.at(0, 1), "42");
}

TEST(Table, NumFormatsWithPrecision) {
  Table t({"v"});
  t.begin_row();
  t.num(3.14159, 2);
  EXPECT_EQ(t.at(0, 0), "3.14");
}

TEST(Table, AddBeforeBeginRowThrows) {
  Table t({"a"});
  EXPECT_THROW(t.add("x"), std::logic_error);
}

TEST(Table, TooManyCellsThrows) {
  Table t({"a"});
  t.begin_row();
  t.add("1");
  EXPECT_THROW(t.add("2"), std::logic_error);
}

TEST(Table, AlignedOutputHasHeaderAndSeparator) {
  Table t({"k", "apl"});
  t.begin_row();
  t.integer(4);
  t.num(5.4667, 3);
  std::string s = t.to_aligned();
  EXPECT_NE(s.find("k"), std::string::npos);
  EXPECT_NE(s.find("apl"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_NE(s.find("5.467"), std::string::npos);
}

TEST(Table, CsvRoundTripSimple) {
  Table t({"a", "b"});
  t.begin_row();
  t.add("1");
  t.add("2");
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t({"name"});
  t.begin_row();
  t.add("hello, \"world\"");
  EXPECT_EQ(t.to_csv(), "name\n\"hello, \"\"world\"\"\"\n");
}

TEST(Table, ShortRowsPadInAlignedOutput) {
  Table t({"a", "b"});
  t.begin_row();
  t.add("only");
  EXPECT_NO_THROW(t.to_aligned());
  EXPECT_EQ(t.to_csv(), "a,b\nonly\n");
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(1.0, 0), "1");
  EXPECT_EQ(format_double(0.123456, 4), "0.1235");
  EXPECT_EQ(format_double(-2.5, 1), "-2.5");
}

}  // namespace
}  // namespace flattree::util
