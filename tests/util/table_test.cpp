#include "util/table.hpp"

#include <gtest/gtest.h>

namespace flattree::util {
namespace {

TEST(Table, RejectsZeroColumns) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, CellAccess) {
  Table t({"a", "b"});
  t.begin_row();
  t.add("x");
  t.integer(42);
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.columns(), 2u);
  EXPECT_EQ(t.at(0, 0), "x");
  EXPECT_EQ(t.at(0, 1), "42");
}

TEST(Table, NumFormatsWithPrecision) {
  Table t({"v"});
  t.begin_row();
  t.num(3.14159, 2);
  EXPECT_EQ(t.at(0, 0), "3.14");
}

TEST(Table, AddBeforeBeginRowThrows) {
  Table t({"a"});
  EXPECT_THROW(t.add("x"), std::logic_error);
}

TEST(Table, TooManyCellsThrows) {
  Table t({"a"});
  t.begin_row();
  t.add("1");
  EXPECT_THROW(t.add("2"), std::logic_error);
}

TEST(Table, AlignedOutputHasHeaderAndSeparator) {
  Table t({"k", "apl"});
  t.begin_row();
  t.integer(4);
  t.num(5.4667, 3);
  std::string s = t.to_aligned();
  EXPECT_NE(s.find("k"), std::string::npos);
  EXPECT_NE(s.find("apl"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_NE(s.find("5.467"), std::string::npos);
}

TEST(Table, CsvRoundTripSimple) {
  Table t({"a", "b"});
  t.begin_row();
  t.add("1");
  t.add("2");
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t({"name"});
  t.begin_row();
  t.add("hello, \"world\"");
  EXPECT_EQ(t.to_csv(), "name\n\"hello, \"\"world\"\"\"\n");
}

TEST(Table, ShortRowsPadInAlignedOutput) {
  Table t({"a", "b"});
  t.begin_row();
  t.add("only");
  EXPECT_NO_THROW(t.to_aligned());
  EXPECT_EQ(t.to_csv(), "a,b\nonly\n");
}

TEST(Table, CsvQuotesLineBreaks) {
  Table t({"v"});
  t.begin_row();
  t.add("line1\nline2");
  EXPECT_EQ(t.to_csv(), "v\n\"line1\nline2\"\n");
  Table r({"v"});
  r.begin_row();
  r.add("a\rb");
  EXPECT_EQ(r.to_csv(), "v\n\"a\rb\"\n");
  Table crlf({"v"});
  crlf.begin_row();
  crlf.add("a\r\nb");
  EXPECT_EQ(crlf.to_csv(), "v\n\"a\r\nb\"\n");
}

TEST(CsvEscape, Rfc4180Fields) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape(""), "");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("tab\tok"), "tab\tok");  // tabs need no quoting
  EXPECT_EQ(csv_escape("\r"), "\"\r\"");
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(1.0, 0), "1");
  EXPECT_EQ(format_double(0.123456, 4), "0.1235");
  EXPECT_EQ(format_double(-2.5, 1), "-2.5");
}

}  // namespace
}  // namespace flattree::util
