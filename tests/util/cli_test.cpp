#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace flattree::util {
namespace {

/// Builds a mutable argv from string literals.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    for (auto& s : storage_) ptrs_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

TEST(Cli, ParsesIntSeparateAndEqualsForm) {
  std::int64_t k = 4;
  CliParser cli("test");
  cli.add_int("k", &k, "fat-tree parameter");
  Argv a({"prog", "--k", "16"});
  ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
  EXPECT_EQ(k, 16);

  Argv b({"prog", "--k=32"});
  ASSERT_TRUE(cli.parse(b.argc(), b.argv()));
  EXPECT_EQ(k, 32);
}

TEST(Cli, DefaultsSurviveWhenUnset) {
  std::int64_t k = 8;
  double eps = 0.1;
  CliParser cli("test");
  cli.add_int("k", &k, "k");
  cli.add_double("eps", &eps, "eps");
  Argv a({"prog"});
  ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
  EXPECT_EQ(k, 8);
  EXPECT_EQ(eps, 0.1);
}

TEST(Cli, ParsesDouble) {
  double eps = 0.1;
  CliParser cli("test");
  cli.add_double("eps", &eps, "eps");
  Argv a({"prog", "--eps", "0.25"});
  ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
  EXPECT_DOUBLE_EQ(eps, 0.25);
}

TEST(Cli, BoolFlagForms) {
  bool full = false;
  CliParser cli("test");
  cli.add_bool("full", &full, "full sweep");
  Argv a({"prog", "--full"});
  ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
  EXPECT_TRUE(full);

  Argv b({"prog", "--no-full"});
  ASSERT_TRUE(cli.parse(b.argc(), b.argv()));
  EXPECT_FALSE(full);

  Argv c({"prog", "--full=false"});
  full = true;
  ASSERT_TRUE(cli.parse(c.argc(), c.argv()));
  EXPECT_FALSE(full);
}

TEST(Cli, ParsesString) {
  std::string out = "default.csv";
  CliParser cli("test");
  cli.add_string("out", &out, "output file");
  Argv a({"prog", "--out=results.csv"});
  ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
  EXPECT_EQ(out, "results.csv");
}

TEST(Cli, RejectsUnknownFlag) {
  std::int64_t k = 4;
  CliParser cli("test");
  cli.add_int("k", &k, "k");
  Argv a({"prog", "--unknown", "3"});
  EXPECT_FALSE(cli.parse(a.argc(), a.argv()));
  EXPECT_EQ(cli.exit_code(), 2);
}

TEST(Cli, RejectsBadIntValue) {
  std::int64_t k = 4;
  CliParser cli("test");
  cli.add_int("k", &k, "k");
  Argv a({"prog", "--k", "abc"});
  EXPECT_FALSE(cli.parse(a.argc(), a.argv()));
  EXPECT_EQ(cli.exit_code(), 2);
}

TEST(Cli, RejectsMissingValue) {
  std::int64_t k = 4;
  CliParser cli("test");
  cli.add_int("k", &k, "k");
  Argv a({"prog", "--k"});
  EXPECT_FALSE(cli.parse(a.argc(), a.argv()));
}

TEST(Cli, RejectsPositionalArgument) {
  CliParser cli("test");
  Argv a({"prog", "positional"});
  EXPECT_FALSE(cli.parse(a.argc(), a.argv()));
}

TEST(Cli, HelpReturnsFalseWithZeroExit) {
  std::int64_t k = 4;
  CliParser cli("test");
  cli.add_int("k", &k, "k");
  Argv a({"prog", "--help"});
  EXPECT_FALSE(cli.parse(a.argc(), a.argv()));
  EXPECT_EQ(cli.exit_code(), 0);
}

TEST(Cli, UsageListsFlagsAndDefaults) {
  std::int64_t k = 12;
  CliParser cli("my tool");
  cli.add_int("k", &k, "fat-tree parameter");
  std::string usage = cli.usage();
  EXPECT_NE(usage.find("my tool"), std::string::npos);
  EXPECT_NE(usage.find("--k"), std::string::npos);
  EXPECT_NE(usage.find("default: 12"), std::string::npos);
}

TEST(Cli, EqualsFormWorksForEveryKind) {
  // `--flag=value` must behave exactly like `--flag value` for all kinds —
  // bench scripts rely on `--threads=8` style.
  std::int64_t threads = 0;
  double eps = 0.1;
  bool full = false;
  std::string out = "a";
  CliParser cli("test");
  cli.add_int("threads", &threads, "threads");
  cli.add_double("eps", &eps, "eps");
  cli.add_bool("full", &full, "full");
  cli.add_string("out", &out, "out");
  Argv a({"prog", "--threads=8", "--eps=0.25", "--full=true", "--out=b.csv"});
  ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
  EXPECT_EQ(threads, 8);
  EXPECT_DOUBLE_EQ(eps, 0.25);
  EXPECT_TRUE(full);
  EXPECT_EQ(out, "b.csv");
}

TEST(Cli, EmptyEqualsValueRejectedForNumbers) {
  std::int64_t k = 4;
  CliParser cli("test");
  cli.add_int("k", &k, "k");
  Argv a({"prog", "--k="});
  EXPECT_FALSE(cli.parse(a.argc(), a.argv()));
  EXPECT_EQ(cli.exit_code(), 2);
}

TEST(Cli, NoFormRejectsValue) {
  bool full = false;
  CliParser cli("test");
  cli.add_bool("full", &full, "full");
  Argv a({"prog", "--no-full=true"});
  EXPECT_FALSE(cli.parse(a.argc(), a.argv()));
  EXPECT_EQ(cli.exit_code(), 2);
}

TEST(Cli, NegativeNumbersParse) {
  std::int64_t v = 0;
  CliParser cli("test");
  cli.add_int("v", &v, "v");
  Argv a({"prog", "--v=-5"});
  ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
  EXPECT_EQ(v, -5);
}

}  // namespace
}  // namespace flattree::util
