#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace flattree::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  const std::uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[rng.below(bound)];
  for (std::uint64_t v = 0; v < bound; ++v) {
    EXPECT_NEAR(counts[v], draws / static_cast<int>(bound), draws / 100);
  }
}

TEST(Rng, RangeInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform(2.5, 7.5);
    EXPECT_GE(u, 2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng rng(31);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(41);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  auto orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);  // probability of identity is ~1/50!
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(43);
  Rng child = a.split();
  // Child differs from parent continuation.
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == child()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(42), mix64(42));
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 1000; ++i) outputs.insert(mix64(i));
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

TEST(Rng, SubstreamIsPureFunctionOfSeedAndStream) {
  Rng a = Rng::substream(42, 7);
  Rng b = Rng::substream(42, 7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SubstreamsDecorrelated) {
  // Different stream indices (and different seeds) must give different
  // sequences; adjacent indices are the common parallel-loop case.
  Rng s0 = Rng::substream(42, 0);
  Rng s1 = Rng::substream(42, 1);
  Rng other_seed = Rng::substream(43, 0);
  int equal01 = 0, equal_seed = 0;
  for (int i = 0; i < 64; ++i) {
    std::uint64_t a = s0();
    if (a == s1()) ++equal01;
    if (a == other_seed()) ++equal_seed;
  }
  EXPECT_EQ(equal01, 0);
  EXPECT_EQ(equal_seed, 0);
}

}  // namespace
}  // namespace flattree::util
