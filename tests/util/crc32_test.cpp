#include "util/crc32.hpp"

#include <gtest/gtest.h>

#include <string>

namespace flattree::util {
namespace {

TEST(Crc32, MatchesKnownVectors) {
  // The IEEE check value every CRC-32 implementation must reproduce, plus
  // a couple of fixed vectors so a polynomial or reflection slip cannot
  // sneak through.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_EQ(crc32("a"), 0xE8B7BE43u);
  EXPECT_EQ(crc32(std::string(1, '\0')), 0xD202EF8Du);
}

TEST(Crc32, IncrementalChainEqualsOneShot) {
  const std::string bytes = "the quick brown fox jumps over the lazy dog";
  std::uint32_t state = crc32_init();
  for (char c : bytes) state = crc32_update(state, &c, 1);
  EXPECT_EQ(crc32_final(state), crc32(bytes));
}

TEST(Crc32, DetectsSingleBitFlips) {
  std::string bytes = "r 14 deadbeef 3 {\"op\":\"query\"}";
  std::uint32_t reference = crc32(bytes);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string flipped = bytes;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x01);
    EXPECT_NE(crc32(flipped), reference) << "flip at byte " << i;
  }
}

TEST(Crc32, HexIsFixedWidthLowercaseAndRoundTrips) {
  EXPECT_EQ(crc32_hex(0xCBF43926u), "cbf43926");
  EXPECT_EQ(crc32_hex(0x0000000Au), "0000000a");
  std::uint32_t v = 0;
  ASSERT_TRUE(parse_crc32_hex("cbf43926", v));
  EXPECT_EQ(v, 0xCBF43926u);
  ASSERT_TRUE(parse_crc32_hex("00000000", v));
  EXPECT_EQ(v, 0u);
  // Anything that is not exactly 8 lowercase hex digits is refused: the
  // framed formats are canonical, so "CBF43926" and "cbf4392" are
  // corruption, not alternate spellings.
  EXPECT_FALSE(parse_crc32_hex("CBF43926", v));
  EXPECT_FALSE(parse_crc32_hex("cbf4392", v));
  EXPECT_FALSE(parse_crc32_hex("cbf439261", v));
  EXPECT_FALSE(parse_crc32_hex("cbf4392g", v));
  EXPECT_FALSE(parse_crc32_hex("", v));
}

}  // namespace
}  // namespace flattree::util
