#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace flattree::util {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(5.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_EQ(acc.mean(), 5.0);
  EXPECT_EQ(acc.min(), 5.0);
  EXPECT_EQ(acc.max(), 5.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, KnownMeanAndVariance) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(acc.stdev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
}

TEST(Accumulator, SumMatches) {
  Accumulator acc;
  acc.add(1.5);
  acc.add(2.5);
  acc.add(-1.0);
  EXPECT_NEAR(acc.sum(), 3.0, 1e-12);
}

TEST(Accumulator, MergeEqualsSequential) {
  Accumulator whole, left, right;
  for (int i = 0; i < 50; ++i) {
    double x = std::sin(i) * 10.0;
    whole.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.mean(), 2.0);
}

TEST(Distribution, RejectsEmpty) {
  EXPECT_THROW(Distribution({}), std::invalid_argument);
}

TEST(Distribution, QuantilesOfKnownSamples) {
  Distribution d({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(d.quantile(0.0), 1.0);
  EXPECT_EQ(d.quantile(1.0), 5.0);
  EXPECT_EQ(d.median(), 3.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.1), 1.4);  // interpolated
}

TEST(Distribution, UnsortedInputHandled) {
  Distribution d({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_EQ(d.median(), 3.0);
  EXPECT_DOUBLE_EQ(d.mean(), 3.0);
}

TEST(Distribution, SingleSample) {
  Distribution d({7.0});
  EXPECT_EQ(d.quantile(0.0), 7.0);
  EXPECT_EQ(d.quantile(0.5), 7.0);
  EXPECT_EQ(d.quantile(1.0), 7.0);
}

TEST(Percentile, MatchesDistribution) {
  std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
}

TEST(Percentile, RejectsEmpty) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
}

TEST(Percentile, SingleSampleAnyP) {
  for (double p : {0.0, 1.0, 50.0, 99.0, 100.0})
    EXPECT_EQ(percentile({42.0}, p), 42.0);
}

TEST(Percentile, OutOfRangeClampsToExtremes) {
  std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_EQ(percentile(xs, -10.0), 1.0);
  EXPECT_EQ(percentile(xs, 150.0), 3.0);
}

TEST(Distribution, DuplicateHeavySamples) {
  // 90 copies of 1.0, then 9 of 2.0, one of 100.0: the bulk quantiles
  // sit on the plateau, only the extreme tail sees the outlier.
  std::vector<double> xs(90, 1.0);
  xs.insert(xs.end(), 9, 2.0);
  xs.push_back(100.0);
  Distribution d(xs);
  EXPECT_EQ(d.quantile(0.0), 1.0);
  EXPECT_EQ(d.median(), 1.0);
  EXPECT_EQ(d.quantile(0.89), 1.0);
  EXPECT_EQ(d.quantile(0.95), 2.0);
  EXPECT_EQ(d.quantile(1.0), 100.0);
  // p99 interpolates on the edge of the outlier: between 2 and 100.
  double p99 = d.quantile(0.99);
  EXPECT_GE(p99, 2.0);
  EXPECT_LE(p99, 100.0);
}

TEST(Distribution, AllIdenticalSamples) {
  Distribution d(std::vector<double>(1000, 3.25));
  for (double q : {0.0, 0.01, 0.5, 0.99, 1.0}) EXPECT_EQ(d.quantile(q), 3.25);
  EXPECT_DOUBLE_EQ(d.mean(), 3.25);
}

TEST(Accumulator, StableOnLargeUniformSample) {
  // 10^6 identical values far from zero: the naive sum-of-squares formula
  // suffers catastrophic cancellation here; Welford must report exactly
  // zero variance and the exact mean.
  Accumulator acc;
  const double v = 1e8 + 0.25;
  for (int i = 0; i < 1'000'000; ++i) acc.add(v);
  EXPECT_EQ(acc.count(), 1'000'000u);
  EXPECT_DOUBLE_EQ(acc.mean(), v);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.stdev(), 0.0);
}

TEST(Accumulator, StableOnLargeOffsetUniformGrid) {
  // Uniform grid {K, K+1} with a huge offset K: true sample variance is
  // n/(4(n-1)) ~ 0.25. Welford keeps several digits where the naive
  // formula would lose all of them.
  Accumulator acc;
  const double offset = 1e9;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) acc.add(offset + static_cast<double>(i % 2));
  double expected = 0.25 * static_cast<double>(n) / static_cast<double>(n - 1);
  EXPECT_NEAR(acc.mean(), offset + 0.5, 1e-3);
  EXPECT_NEAR(acc.variance(), expected, 1e-6);
}

TEST(ApproxEqual, RelativeAndAbsolute) {
  EXPECT_TRUE(approx_equal(1.0, 1.0));
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(1.0, 1.001, 1e-2));
  EXPECT_TRUE(approx_equal(1e9, 1e9 + 1.0, 1e-8));
  EXPECT_TRUE(approx_equal(0.0, 0.0));
}

}  // namespace
}  // namespace flattree::util
