// Cross-validation: the Garg-Koenemann FPTAS against the exact simplex LP
// on randomized small instances — the correctness anchor for all
// throughput experiments.

#include <gtest/gtest.h>

#include "mcf/garg_koenemann.hpp"
#include "mcf/lp_exact.hpp"
#include "util/rng.hpp"

namespace flattree::mcf {
namespace {

graph::Graph random_connected_graph(std::size_t nodes, std::size_t extra_links,
                                    util::Rng& rng) {
  graph::Graph g(nodes);
  // Random spanning tree first.
  for (graph::NodeId v = 1; v < nodes; ++v)
    g.add_link(v, static_cast<graph::NodeId>(rng.below(v)),
               0.5 + rng.uniform() * 1.5);
  for (std::size_t i = 0; i < extra_links; ++i) {
    graph::NodeId a = static_cast<graph::NodeId>(rng.below(nodes));
    graph::NodeId b = static_cast<graph::NodeId>(rng.below(nodes));
    if (a != b) g.add_link(a, b, 0.5 + rng.uniform() * 1.5);
  }
  return g;
}

class CrossValidation : public ::testing::TestWithParam<int> {};

TEST_P(CrossValidation, GkBracketsExactOptimum) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  graph::Graph g = random_connected_graph(5 + rng.index(3), 4, rng);
  std::vector<Commodity> cs;
  std::size_t count = 1 + rng.index(3);
  for (std::size_t i = 0; i < count; ++i) {
    graph::NodeId a = static_cast<graph::NodeId>(rng.below(g.node_count()));
    graph::NodeId b = static_cast<graph::NodeId>(rng.below(g.node_count()));
    if (a == b) b = (b + 1) % static_cast<graph::NodeId>(g.node_count());
    cs.push_back({a, b, 0.5 + rng.uniform() * 2.0});
  }

  auto exact = max_concurrent_flow_exact(g, cs);
  ASSERT_TRUE(exact.solved);

  McfOptions opt;
  opt.epsilon = 0.05;
  auto gk = max_concurrent_flow(g, cs, opt);

  // Lower bound is feasible, upper bound is valid, and both are close.
  EXPECT_LE(gk.lambda_lower, exact.lambda * (1 + 1e-6));
  EXPECT_GE(gk.lambda_upper, exact.lambda * (1 - 1e-6));
  EXPECT_GE(gk.lambda_lower, exact.lambda * (1.0 - 3.2 * opt.epsilon));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossValidation, ::testing::Range(0, 12));

TEST(CrossValidation, SingleSourceBroadcastTree) {
  // Binary-tree-ish broadcast: exact LP vs GK.
  graph::Graph g(7);
  g.add_link(0, 1);
  g.add_link(0, 2);
  g.add_link(1, 3);
  g.add_link(1, 4);
  g.add_link(2, 5);
  g.add_link(2, 6);
  std::vector<Commodity> cs;
  for (graph::NodeId t = 1; t < 7; ++t) cs.push_back({0, t, 1.0});
  auto exact = max_concurrent_flow_exact(g, cs);
  ASSERT_TRUE(exact.solved);
  // Links (0,1) and (0,2) each carry 3*lambda -> lambda = 1/3.
  EXPECT_NEAR(exact.lambda, 1.0 / 3.0, 1e-7);
  McfOptions opt;
  opt.epsilon = 0.05;
  auto gk = max_concurrent_flow(g, cs, opt);
  EXPECT_NEAR(gk.lambda_lower, exact.lambda, exact.lambda * 0.16);
}

}  // namespace
}  // namespace flattree::mcf
