#include "mcf/lp_exact.hpp"

#include <gtest/gtest.h>

namespace flattree::mcf {
namespace {

TEST(LpExact, SingleLink) {
  graph::Graph g(2);
  g.add_link(0, 1, 2.0);
  auto r = max_concurrent_flow_exact(g, {{0, 1, 1.0}});
  ASSERT_TRUE(r.solved);
  EXPECT_NEAR(r.lambda, 2.0, 1e-7);
}

TEST(LpExact, SharedBottleneck) {
  graph::Graph g(3);
  g.add_link(0, 1, 1.0);
  g.add_link(1, 2, 1.0);
  auto r = max_concurrent_flow_exact(g, {{0, 2, 1.0}, {1, 2, 1.0}});
  ASSERT_TRUE(r.solved);
  EXPECT_NEAR(r.lambda, 0.5, 1e-7);
}

TEST(LpExact, DiamondUsesBothPaths) {
  graph::Graph g(4);
  g.add_link(0, 1, 1.0);
  g.add_link(1, 3, 1.0);
  g.add_link(0, 2, 1.0);
  g.add_link(2, 3, 1.0);
  auto r = max_concurrent_flow_exact(g, {{0, 3, 1.0}});
  ASSERT_TRUE(r.solved);
  EXPECT_NEAR(r.lambda, 2.0, 1e-7);
}

TEST(LpExact, FullDuplexOpposingFlows) {
  graph::Graph g(2);
  g.add_link(0, 1, 1.0);
  auto r = max_concurrent_flow_exact(g, {{0, 1, 1.0}, {1, 0, 1.0}});
  ASSERT_TRUE(r.solved);
  EXPECT_NEAR(r.lambda, 1.0, 1e-7);
}

TEST(LpExact, AsymmetricDemands) {
  // Demands 1 and 3 over a shared unit link: lambda*(1+3) <= 1.
  graph::Graph g(3);
  g.add_link(0, 1, 1.0);
  g.add_link(1, 2, 1.0);
  auto r = max_concurrent_flow_exact(g, {{0, 2, 1.0}, {0, 2, 3.0}});
  ASSERT_TRUE(r.solved);
  EXPECT_NEAR(r.lambda, 0.25, 1e-7);
}

TEST(LpExact, HeterogeneousCapacities) {
  // 0-1 cap 2 then 1-2 cap 1: bottleneck 1.
  graph::Graph g(3);
  g.add_link(0, 1, 2.0);
  g.add_link(1, 2, 1.0);
  auto r = max_concurrent_flow_exact(g, {{0, 2, 1.0}});
  ASSERT_TRUE(r.solved);
  EXPECT_NEAR(r.lambda, 1.0, 1e-7);
}

TEST(LpExact, TriangleAllToAll) {
  // Unit triangle, all 6 ordered pairs with unit demand. Node cut: each
  // node emits 2*lambda over out-capacity 2 -> lambda = 1, achieved by
  // direct routing.
  graph::Graph g(3);
  g.add_link(0, 1, 1.0);
  g.add_link(1, 2, 1.0);
  g.add_link(2, 0, 1.0);
  std::vector<Commodity> cs;
  for (graph::NodeId a = 0; a < 3; ++a)
    for (graph::NodeId b = 0; b < 3; ++b)
      if (a != b) cs.push_back({a, b, 1.0});
  auto r = max_concurrent_flow_exact(g, cs);
  ASSERT_TRUE(r.solved);
  EXPECT_NEAR(r.lambda, 1.0, 1e-6);
}

TEST(LpExact, RejectsOversizedInstance) {
  graph::Graph g(2);
  g.add_link(0, 1);
  EXPECT_THROW(max_concurrent_flow_exact(g, {{0, 1, 1.0}}, /*max_variables=*/2),
               std::invalid_argument);
}

TEST(LpExact, RejectsDegenerateCommodity) {
  graph::Graph g(2);
  g.add_link(0, 1);
  EXPECT_THROW(max_concurrent_flow_exact(g, {{0, 0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(max_concurrent_flow_exact(g, {}), std::invalid_argument);
}

}  // namespace
}  // namespace flattree::mcf
