// McfOptions::allow_unreachable / McfResult::served_fraction regression
// suite (ISSUE 5): disconnected commodities are excised into an explicit
// served fraction with a certified solve of the reachable sub-instance —
// never a phase-limit truncation or a throw.

#include <gtest/gtest.h>

#include "check/certify.hpp"
#include "mcf/garg_koenemann.hpp"

namespace flattree::mcf {
namespace {

McfOptions served(double eps = 0.05) {
  McfOptions o;
  o.epsilon = eps;
  o.allow_unreachable = true;
  return o;
}

// Two components: {0,1} and {2,3}, no path between them.
graph::Graph split_graph() {
  graph::Graph g(4);
  g.add_link(0, 1, 1.0);
  g.add_link(2, 3, 1.0);
  return g;
}

// Regression: a fully-disconnected commodity group must yield the
// degenerate zero solve with served_fraction = 0 and a zero-violation
// certificate — not a GK phase-limit truncation (the solver never enters
// the phase loop at all) and not an exception.
TEST(ServedFraction, FullyDisconnectedGroupIsCertifiedZeroSolve) {
  graph::Graph g = split_graph();
  std::vector<Commodity> cs = {{0, 2, 1.0}, {1, 3, 2.0}};
  McfResult r = max_concurrent_flow(g, cs, served());
  EXPECT_EQ(r.served_fraction, 0.0);
  EXPECT_EQ(r.unreachable, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_FALSE(r.truncated);
  EXPECT_EQ(r.phases, 0u);
  EXPECT_EQ(r.lambda_lower, 0.0);
  EXPECT_EQ(r.lambda_upper, 0.0);
  for (double f : r.commodity_routed) EXPECT_EQ(f, 0.0);

  check::CertifyOptions copt;
  copt.epsilon = 0.05;
  check::Report report = check::certify_served(g, cs, r, copt);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ServedFraction, PartialDisconnectionSolvesTheReachableShare) {
  graph::Graph g = split_graph();
  // Demand-weighted: reachable 1.0 + 3.0 of total 5.0 -> 0.8.
  std::vector<Commodity> cs = {{0, 1, 1.0}, {0, 3, 1.0}, {2, 3, 3.0}};
  McfResult r = max_concurrent_flow(g, cs, served());
  EXPECT_DOUBLE_EQ(r.served_fraction, 0.8);
  EXPECT_EQ(r.unreachable, (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(r.commodity_routed[1], 0.0);
  EXPECT_GT(r.commodity_routed[0], 0.0);
  EXPECT_GT(r.commodity_routed[2], 0.0);
  // The bracket covers the reachable sub-instance: each component's single
  // link serves its commodity fully (lambda ~= 1/3 from the 3.0 demand).
  EXPECT_GT(r.lambda_lower, 0.0);

  check::CertifyOptions copt;
  copt.epsilon = 0.05;
  check::Report report = check::certify_served(g, cs, r, copt);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ServedFraction, ConnectedInputIsUnchangedByTheFlag) {
  graph::Graph g(3);
  g.add_link(0, 1, 1.0);
  g.add_link(1, 2, 1.0);
  std::vector<Commodity> cs = {{0, 2, 1.0}};
  McfOptions plain;
  plain.epsilon = 0.05;
  McfResult a = max_concurrent_flow(g, cs, plain);
  McfResult b = max_concurrent_flow(g, cs, served());
  EXPECT_EQ(b.served_fraction, 1.0);
  EXPECT_TRUE(b.unreachable.empty());
  // Bitwise-identical solve: the pre-pass finds nothing and falls through.
  EXPECT_EQ(a.lambda_lower, b.lambda_lower);
  EXPECT_EQ(a.arc_flow, b.arc_flow);
}

TEST(ServedFraction, DisconnectedWithoutTheFlagStillThrows) {
  graph::Graph g = split_graph();
  std::vector<Commodity> cs = {{0, 2, 1.0}};
  McfOptions plain;
  plain.epsilon = 0.05;
  EXPECT_THROW(max_concurrent_flow(g, cs, plain), std::invalid_argument);
}

// The deadline-style budget: max_augmentations cuts the solve at a
// deterministic augmentation count with truncated = true, and the partial
// flow still certifies primally.
TEST(ServedFraction, AugmentationBudgetTruncatesDeterministically) {
  graph::Graph g(4);
  g.add_link(0, 1, 1.0);
  g.add_link(1, 3, 1.0);
  g.add_link(0, 2, 1.0);
  g.add_link(2, 3, 0.5);
  std::vector<Commodity> cs = {{0, 3, 1.0}, {1, 2, 0.5}};
  McfOptions budget;
  budget.epsilon = 0.05;
  budget.max_augmentations = 3;
  McfResult r = max_concurrent_flow(g, cs, budget);
  EXPECT_TRUE(r.truncated);
  EXPECT_EQ(r.augmentations, 3u);

  McfResult again = max_concurrent_flow(g, cs, budget);
  EXPECT_EQ(r.lambda_lower, again.lambda_lower);
  EXPECT_EQ(r.arc_flow, again.arc_flow);

  check::CertifyOptions copt;
  copt.epsilon = 0.05;
  check::Report report = check::certify(g, cs, r, copt);
  EXPECT_TRUE(report.ok()) << report.to_string();

  // A generous budget never triggers: same result as unlimited.
  McfOptions loose;
  loose.epsilon = 0.05;
  McfOptions unlimited = loose;
  loose.max_augmentations = 1u << 20;
  McfResult full = max_concurrent_flow(g, cs, loose);
  McfResult ref = max_concurrent_flow(g, cs, unlimited);
  EXPECT_FALSE(full.truncated);
  EXPECT_EQ(full.lambda_lower, ref.lambda_lower);
  EXPECT_EQ(full.arc_flow, ref.arc_flow);
}

}  // namespace
}  // namespace flattree::mcf
