// Solver validation on real (small) flat-tree topologies, not just toy
// graphs: exact simplex LP vs GK FPTAS vs Dinic single-source flow on
// k = 4 networks in each operating mode.

#include <gtest/gtest.h>

#include "core/flat_tree.hpp"
#include "mcf/garg_koenemann.hpp"
#include "mcf/lp_exact.hpp"
#include "mcf/max_flow.hpp"
#include "workload/traffic.hpp"

namespace flattree::mcf {
namespace {

class TopologyValidation : public ::testing::TestWithParam<core::Mode> {};

TEST_P(TopologyValidation, GkBracketsExactOnFlatTreeK4) {
  core::FlatTreeConfig cfg;
  cfg.k = 4;
  core::FlatTreeNetwork net(cfg);
  topo::Topology t = net.build(GetParam());

  // A small multicommodity instance: 4 cross-pod server demands.
  std::vector<ServerDemand> demands{{0, 5, 1.0}, {5, 0, 1.0}, {10, 3, 2.0}, {7, 14, 1.0}};
  auto commodities = aggregate_to_switches(t, demands);
  ASSERT_FALSE(commodities.empty());

  auto exact = max_concurrent_flow_exact(t.graph(), commodities, /*max_variables=*/60'000);
  ASSERT_TRUE(exact.solved);
  EXPECT_GT(exact.lambda, 0.0);

  McfOptions opt;
  opt.epsilon = 0.05;
  auto gk = max_concurrent_flow(t.graph(), commodities, opt);
  EXPECT_LE(gk.lambda_lower, exact.lambda * (1 + 1e-6)) << core::to_string(GetParam());
  EXPECT_GE(gk.lambda_upper, exact.lambda * (1 - 1e-6)) << core::to_string(GetParam());
  EXPECT_GE(gk.lambda_lower, exact.lambda * (1 - 3.2 * opt.epsilon));
}

TEST_P(TopologyValidation, BroadcastAgreesWithDinicOracle) {
  core::FlatTreeConfig cfg;
  cfg.k = 4;
  core::FlatTreeNetwork net(cfg);
  topo::Topology t = net.build(GetParam());

  util::Rng rng(3);
  auto clusters = workload::make_clusters(16, 16, workload::Placement::Locality, 4, rng);
  auto demands = workload::cluster_traffic(clusters, workload::Pattern::Broadcast, rng);
  auto commodities = aggregate_to_switches(t, demands);
  auto groups = group_by_source(commodities);
  ASSERT_EQ(groups.size(), 1u);

  double dinic = single_source_concurrent_flow(t.graph(), groups[0], 1e-6);
  auto exact = max_concurrent_flow_exact(t.graph(), commodities, /*max_variables=*/80'000);
  ASSERT_TRUE(exact.solved);
  EXPECT_NEAR(dinic, exact.lambda, exact.lambda * 1e-3);

  McfOptions opt;
  opt.epsilon = 0.08;
  auto gk = max_concurrent_flow(t.graph(), commodities, opt);
  EXPECT_LE(gk.lambda_lower, dinic * (1 + 1e-4));
  EXPECT_GE(gk.lambda_upper, dinic * (1 - 1e-4));
}

INSTANTIATE_TEST_SUITE_P(Modes, TopologyValidation,
                         ::testing::Values(core::Mode::Clos, core::Mode::GlobalRandom,
                                           core::Mode::LocalRandom),
                         [](const ::testing::TestParamInfo<core::Mode>& info) {
                           std::string name = core::to_string(info.param);
                           for (char& ch : name)
                             if (ch == '-') ch = '_';
                           return name;
                         });

TEST(TopologyValidation, IncastMirrorsBroadcastOnFullDuplex) {
  // With symmetric full-duplex capacities, incast to a hot spot achieves
  // the same lambda as broadcast from it.
  core::FlatTreeConfig cfg;
  cfg.k = 4;
  core::FlatTreeNetwork net(cfg);
  topo::Topology t = net.build(core::Mode::GlobalRandom);
  util::Rng rng(4);
  auto clusters = workload::make_clusters(16, 16, workload::Placement::Locality, 4, rng);
  util::Rng r1(9), r2(9);  // same hot-spot draw
  auto bc = aggregate_to_switches(t, workload::broadcast_traffic(clusters[0], r1));
  auto in = aggregate_to_switches(t, workload::incast_traffic(clusters[0], r2));
  McfOptions opt;
  opt.epsilon = 0.05;
  auto lb = max_concurrent_flow(t.graph(), bc, opt);
  auto li = max_concurrent_flow(t.graph(), in, opt);
  EXPECT_NEAR(lb.lambda_lower, li.lambda_lower, lb.lambda_lower * 0.12);
}

}  // namespace
}  // namespace flattree::mcf
