#include "mcf/max_flow.hpp"

#include <gtest/gtest.h>

#include "mcf/garg_koenemann.hpp"
#include "mcf/lp_exact.hpp"
#include "topo/fat_tree.hpp"
#include "workload/traffic.hpp"

namespace flattree::mcf {
namespace {

TEST(MaxFlow, SingleArc) {
  MaxFlow mf(2);
  mf.add_arc(0, 1, 3.5);
  EXPECT_DOUBLE_EQ(mf.solve(0, 1), 3.5);
}

TEST(MaxFlow, SeriesBottleneck) {
  MaxFlow mf(3);
  mf.add_arc(0, 1, 5.0);
  mf.add_arc(1, 2, 2.0);
  EXPECT_DOUBLE_EQ(mf.solve(0, 2), 2.0);
}

TEST(MaxFlow, ParallelPathsAdd) {
  MaxFlow mf(4);
  mf.add_arc(0, 1, 1.0);
  mf.add_arc(1, 3, 1.0);
  mf.add_arc(0, 2, 2.0);
  mf.add_arc(2, 3, 2.0);
  EXPECT_DOUBLE_EQ(mf.solve(0, 3), 3.0);
}

TEST(MaxFlow, ClassicResidualExample) {
  // Requires routing through the cross arc then undoing it.
  MaxFlow mf(4);
  mf.add_arc(0, 1, 1.0);
  mf.add_arc(0, 2, 1.0);
  mf.add_arc(1, 2, 1.0);
  mf.add_arc(1, 3, 1.0);
  mf.add_arc(2, 3, 1.0);
  EXPECT_DOUBLE_EQ(mf.solve(0, 3), 2.0);
}

TEST(MaxFlow, DisconnectedIsZero) {
  MaxFlow mf(3);
  mf.add_arc(0, 1, 1.0);
  EXPECT_DOUBLE_EQ(mf.solve(0, 2), 0.0);
}

TEST(MaxFlow, ArcFlowsConsistent) {
  MaxFlow mf(3);
  std::size_t a = mf.add_arc(0, 1, 2.0);
  std::size_t b = mf.add_arc(1, 2, 1.0);
  double total = mf.solve(0, 2);
  EXPECT_DOUBLE_EQ(total, 1.0);
  EXPECT_DOUBLE_EQ(mf.arc_flow(a), 1.0);
  EXPECT_DOUBLE_EQ(mf.arc_flow(b), 1.0);
}

TEST(MaxFlow, ResolveResetsState) {
  MaxFlow mf(3);
  mf.add_arc(0, 1, 2.0);
  mf.add_arc(1, 2, 1.0);
  EXPECT_DOUBLE_EQ(mf.solve(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(mf.solve(0, 2), 1.0);  // idempotent
  EXPECT_DOUBLE_EQ(mf.solve(0, 1), 2.0);  // different sink
}

TEST(MaxFlow, ErrorCases) {
  MaxFlow mf(2);
  EXPECT_THROW(mf.add_arc(0, 5, 1.0), std::out_of_range);
  EXPECT_THROW(mf.add_arc(0, 1, -1.0), std::invalid_argument);
  EXPECT_THROW(mf.solve(0, 0), std::invalid_argument);
}

TEST(SingleSourceConcurrent, StarClosedForm) {
  graph::Graph g(5);
  for (graph::NodeId leaf = 1; leaf <= 4; ++leaf) g.add_link(0, leaf, 1.0);
  std::vector<std::pair<graph::NodeId, double>> targets;
  for (graph::NodeId leaf = 1; leaf <= 4; ++leaf) targets.emplace_back(leaf, 1.0);
  EXPECT_NEAR(single_source_concurrent_flow(g, 0, targets), 1.0, 1e-5);
}

TEST(SingleSourceConcurrent, BinaryTreeBroadcast) {
  graph::Graph g(7);
  g.add_link(0, 1);
  g.add_link(0, 2);
  g.add_link(1, 3);
  g.add_link(1, 4);
  g.add_link(2, 5);
  g.add_link(2, 6);
  std::vector<std::pair<graph::NodeId, double>> targets;
  for (graph::NodeId t = 1; t < 7; ++t) targets.emplace_back(t, 1.0);
  EXPECT_NEAR(single_source_concurrent_flow(g, 0, targets), 1.0 / 3.0, 1e-5);
}

TEST(SingleSourceConcurrent, MatchesExactLp) {
  graph::Graph g(5);
  g.add_link(0, 1, 1.0);
  g.add_link(0, 2, 2.0);
  g.add_link(1, 3, 1.0);
  g.add_link(2, 3, 1.0);
  g.add_link(2, 4, 0.5);
  g.add_link(3, 4, 1.0);
  std::vector<Commodity> cs{{0, 3, 1.0}, {0, 4, 2.0}};
  auto exact = max_concurrent_flow_exact(g, cs);
  ASSERT_TRUE(exact.solved);
  std::vector<std::pair<graph::NodeId, double>> targets{{3, 1.0}, {4, 2.0}};
  EXPECT_NEAR(single_source_concurrent_flow(g, 0, targets), exact.lambda, 1e-4);
}

TEST(SingleSourceConcurrent, BracketsGargKoenemann) {
  // Fat-tree broadcast, single cluster: exact max-flow value must sit in
  // the GK [lower, upper] bracket.
  topo::FatTree ft = topo::build_fat_tree(4);
  util::Rng rng(5);
  auto clusters = workload::make_clusters(16, 16, workload::Placement::Locality, 4, rng);
  auto demands = workload::cluster_traffic(clusters, workload::Pattern::Broadcast, rng);
  auto commodities = aggregate_to_switches(ft.topo, demands);
  auto groups = group_by_source(commodities);
  ASSERT_EQ(groups.size(), 1u);
  double exact = single_source_concurrent_flow(ft.topo.graph(), groups[0], 1e-6);
  McfOptions opt;
  opt.epsilon = 0.05;
  auto gk = max_concurrent_flow(ft.topo.graph(), commodities, opt);
  EXPECT_LE(gk.lambda_lower, exact * (1 + 1e-6));
  EXPECT_GE(gk.lambda_upper, exact * (1 - 1e-6));
  EXPECT_GE(gk.lambda_lower, exact * 0.84);
}

TEST(SingleSourceConcurrent, UnreachableTargetThrows) {
  graph::Graph g(3);
  g.add_link(0, 1);
  std::vector<std::pair<graph::NodeId, double>> targets{{2, 1.0}};
  EXPECT_THROW(single_source_concurrent_flow(g, 0, targets), std::invalid_argument);
}

TEST(SingleSourceConcurrent, ErrorCases) {
  graph::Graph g(2);
  g.add_link(0, 1);
  std::vector<std::pair<graph::NodeId, double>> empty;
  EXPECT_THROW(single_source_concurrent_flow(g, 0, empty), std::invalid_argument);
  std::vector<std::pair<graph::NodeId, double>> self{{0, 1.0}};
  EXPECT_THROW(single_source_concurrent_flow(g, 0, self), std::invalid_argument);
  std::vector<std::pair<graph::NodeId, double>> bad{{1, -1.0}};
  EXPECT_THROW(single_source_concurrent_flow(g, 0, bad), std::invalid_argument);
}

}  // namespace
}  // namespace flattree::mcf
