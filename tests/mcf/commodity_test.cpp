#include "mcf/commodity.hpp"

#include <gtest/gtest.h>

namespace flattree::mcf {
namespace {

topo::Topology two_switch() {
  topo::Topology t;
  t.add_switch(topo::SwitchKind::Edge, 0, 0, 8);
  t.add_switch(topo::SwitchKind::Edge, 0, 1, 8);
  t.add_link(0, 1, topo::LinkOrigin::Random);
  for (int i = 0; i < 4; ++i) t.add_server(0);
  for (int i = 0; i < 4; ++i) t.add_server(1);
  return t;
}

TEST(Aggregate, MergesDuplicatesAndSumsDemand) {
  topo::Topology t = two_switch();
  std::vector<ServerDemand> demands{{0, 4, 1.0}, {1, 5, 2.0}, {2, 6, 0.5}};
  auto cs = aggregate_to_switches(t, demands);
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_EQ(cs[0].src, 0u);
  EXPECT_EQ(cs[0].dst, 1u);
  EXPECT_DOUBLE_EQ(cs[0].demand, 3.5);
}

TEST(Aggregate, DropsSameSwitchPairs) {
  topo::Topology t = two_switch();
  std::vector<ServerDemand> demands{{0, 1, 1.0}, {4, 5, 1.0}};
  EXPECT_TRUE(aggregate_to_switches(t, demands).empty());
}

TEST(Aggregate, KeepsDirectionsSeparate) {
  topo::Topology t = two_switch();
  std::vector<ServerDemand> demands{{0, 4, 1.0}, {4, 0, 3.0}};
  auto cs = aggregate_to_switches(t, demands);
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_EQ(cs[0].src, 0u);
  EXPECT_DOUBLE_EQ(cs[0].demand, 1.0);
  EXPECT_EQ(cs[1].src, 1u);
  EXPECT_DOUBLE_EQ(cs[1].demand, 3.0);
}

TEST(Aggregate, OutputSortedBySrcThenDst) {
  topo::Topology t;
  for (int i = 0; i < 4; ++i) t.add_switch(topo::SwitchKind::Edge, 0, i, 8);
  for (int i = 0; i < 4; ++i) t.add_server(static_cast<graph::NodeId>(i));
  std::vector<ServerDemand> demands{{3, 0, 1}, {1, 2, 1}, {1, 0, 1}, {0, 3, 1}};
  auto cs = aggregate_to_switches(t, demands);
  ASSERT_EQ(cs.size(), 4u);
  for (std::size_t i = 1; i < cs.size(); ++i) {
    EXPECT_TRUE(cs[i - 1].src < cs[i].src ||
                (cs[i - 1].src == cs[i].src && cs[i - 1].dst < cs[i].dst));
  }
}

TEST(Aggregate, PreservesTotalCrossSwitchDemand) {
  topo::Topology t = two_switch();
  std::vector<ServerDemand> demands{{0, 4, 1.0}, {1, 5, 1.0}, {4, 2, 2.0}, {0, 1, 7.0}};
  auto cs = aggregate_to_switches(t, demands);
  EXPECT_DOUBLE_EQ(total_demand(cs), 4.0);  // the 7.0 is same-switch
}

TEST(GroupBySource, GroupsAndTotals) {
  std::vector<Commodity> cs{{0, 1, 1.0}, {0, 2, 2.0}, {3, 1, 0.5}};
  auto groups = group_by_source(cs);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].src, 0u);
  EXPECT_EQ(groups[0].targets.size(), 2u);
  EXPECT_DOUBLE_EQ(groups[0].total_demand, 3.0);
  EXPECT_EQ(groups[1].src, 3u);
  EXPECT_DOUBLE_EQ(groups[1].total_demand, 0.5);
}

TEST(GroupBySource, EmptyInput) {
  EXPECT_TRUE(group_by_source({}).empty());
}

TEST(TotalDemand, Sums) {
  std::vector<Commodity> cs{{0, 1, 1.5}, {1, 0, 2.5}};
  EXPECT_DOUBLE_EQ(total_demand(cs), 4.0);
  EXPECT_DOUBLE_EQ(total_demand({}), 0.0);
}

}  // namespace
}  // namespace flattree::mcf
