#include "mcf/garg_koenemann.hpp"

#include <gtest/gtest.h>
#include <cmath>
#include <limits>


namespace flattree::mcf {
namespace {

McfOptions tight() {
  McfOptions o;
  o.epsilon = 0.05;
  return o;
}

TEST(GargKoenemann, SingleCommoditySinglePath) {
  graph::Graph g(2);
  g.add_link(0, 1, 2.0);
  auto r = max_concurrent_flow(g, {{0, 1, 1.0}}, tight());
  // One link of capacity 2, demand 1 -> lambda = 2.
  EXPECT_NEAR(r.lambda_lower, 2.0, 0.02);
  EXPECT_GE(r.lambda_upper + 1e-9, r.lambda_lower);
  EXPECT_LE(r.lambda_upper, 2.0 * 1.2);
}

TEST(GargKoenemann, DemandScalesInversely) {
  graph::Graph g(2);
  g.add_link(0, 1, 1.0);
  auto r1 = max_concurrent_flow(g, {{0, 1, 1.0}}, tight());
  auto r4 = max_concurrent_flow(g, {{0, 1, 4.0}}, tight());
  EXPECT_NEAR(r1.lambda_lower / r4.lambda_lower, 4.0, 0.1);
}

TEST(GargKoenemann, ParallelLinksAddCapacity) {
  graph::Graph g(2);
  g.add_link(0, 1, 1.0);
  g.add_link(0, 1, 1.0);
  auto r = max_concurrent_flow(g, {{0, 1, 1.0}}, tight());
  EXPECT_NEAR(r.lambda_lower, 2.0, 0.05);
}

TEST(GargKoenemann, TwoCommoditiesShareBottleneck) {
  // Path 0-1-2: commodity 0->2 and 1->2 share link (1,2): lambda = 0.5.
  graph::Graph g(3);
  g.add_link(0, 1, 1.0);
  g.add_link(1, 2, 1.0);
  auto r = max_concurrent_flow(g, {{0, 2, 1.0}, {1, 2, 1.0}}, tight());
  EXPECT_NEAR(r.lambda_lower, 0.5, 0.01);
  EXPECT_NEAR(r.lambda_upper, 0.5, 0.05);
}

TEST(GargKoenemann, OpposingCommoditiesUseFullDuplex) {
  // Full-duplex model: 0->1 and 1->0 each get the full capacity.
  graph::Graph g(2);
  g.add_link(0, 1, 1.0);
  auto r = max_concurrent_flow(g, {{0, 1, 1.0}, {1, 0, 1.0}}, tight());
  EXPECT_NEAR(r.lambda_lower, 1.0, 0.02);
}

TEST(GargKoenemann, DiamondSplitsFlow) {
  // Two disjoint 2-hop paths: single commodity gets lambda = 2.
  graph::Graph g(4);
  g.add_link(0, 1, 1.0);
  g.add_link(1, 3, 1.0);
  g.add_link(0, 2, 1.0);
  g.add_link(2, 3, 1.0);
  auto r = max_concurrent_flow(g, {{0, 3, 1.0}}, tight());
  EXPECT_NEAR(r.lambda_lower, 2.0, 0.05);
}

TEST(GargKoenemann, BroadcastStarBoundedByRoot) {
  // Star: center 0 with 4 leaves; broadcast 0 -> each leaf, unit demands.
  // Each leaf link carries lambda -> lambda = 1.
  graph::Graph g(5);
  for (graph::NodeId leaf = 1; leaf <= 4; ++leaf) g.add_link(0, leaf, 1.0);
  std::vector<Commodity> cs;
  for (graph::NodeId leaf = 1; leaf <= 4; ++leaf) cs.push_back({0, leaf, 1.0});
  auto r = max_concurrent_flow(g, cs, tight());
  EXPECT_NEAR(r.lambda_lower, 1.0, 0.02);
}

TEST(GargKoenemann, RescaledFlowRespectsCapacities) {
  graph::Graph g(4);
  g.add_link(0, 1, 1.0);
  g.add_link(1, 2, 2.0);
  g.add_link(2, 3, 0.5);
  g.add_link(0, 3, 1.0);
  auto r = max_concurrent_flow(g, {{0, 3, 1.0}, {1, 3, 0.5}}, tight());
  ASSERT_EQ(r.arc_flow.size(), g.link_count() * 2);
  for (std::size_t l = 0; l < g.link_count(); ++l) {
    double cap = g.link(static_cast<graph::LinkId>(l)).capacity;
    EXPECT_LE(r.arc_flow[2 * l], cap * (1.0 + 1e-9));
    EXPECT_LE(r.arc_flow[2 * l + 1], cap * (1.0 + 1e-9));
  }
  EXPECT_NEAR(r.max_congestion > 0 ? 1.0 : 0.0, 1.0, 1e-9);
}

TEST(GargKoenemann, BoundsBracketTheOptimum) {
  graph::Graph g(6);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(2, 3);
  g.add_link(3, 4);
  g.add_link(4, 5);
  g.add_link(5, 0);
  g.add_link(0, 3);
  auto r = max_concurrent_flow(g, {{0, 3, 1.0}, {1, 4, 1.0}, {2, 5, 1.0}}, tight());
  EXPECT_GT(r.lambda_lower, 0.0);
  EXPECT_LE(r.lambda_lower, r.lambda_upper * (1 + 1e-9));
  // FPTAS quality: gap within ~3 epsilon.
  EXPECT_GE(r.lambda_lower, r.lambda_upper * (1.0 - 3.2 * 0.05));
}

TEST(GargKoenemann, TighterEpsilonTightensGap) {
  graph::Graph g(4);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(2, 3);
  g.add_link(3, 0);
  std::vector<Commodity> cs{{0, 2, 1.0}, {1, 3, 1.0}};
  McfOptions loose;
  loose.epsilon = 0.5;
  McfOptions fine;
  fine.epsilon = 0.03;
  auto rl = max_concurrent_flow(g, cs, loose);
  auto rf = max_concurrent_flow(g, cs, fine);
  EXPECT_LE(rf.lambda_upper - rf.lambda_lower, rl.lambda_upper - rl.lambda_lower + 1e-9);
}

TEST(GargKoenemann, ErrorCases) {
  graph::Graph g(3);
  g.add_link(0, 1);
  EXPECT_THROW(max_concurrent_flow(g, {}, tight()), std::invalid_argument);
  EXPECT_THROW(max_concurrent_flow(g, {{0, 0, 1.0}}, tight()), std::invalid_argument);
  EXPECT_THROW(max_concurrent_flow(g, {{0, 1, -1.0}}, tight()), std::invalid_argument);
  EXPECT_THROW(max_concurrent_flow(g, {{0, 2, 1.0}}, tight()), std::invalid_argument);
  McfOptions bad;
  bad.epsilon = 1.5;
  EXPECT_THROW(max_concurrent_flow(g, {{0, 1, 1.0}}, bad), std::invalid_argument);
}

TEST(GargKoenemann, UpperBoundSkippable) {
  graph::Graph g(2);
  g.add_link(0, 1);
  McfOptions o;
  o.epsilon = 0.1;
  o.compute_upper_bound = false;
  auto r = max_concurrent_flow(g, {{0, 1, 1.0}}, o);
  EXPECT_GT(r.lambda_lower, 0.0);
  EXPECT_TRUE(std::isinf(r.lambda_upper));
}

TEST(GargKoenemann, RejectsZeroCapacityLinks) {
  // Regression: length[a] = delta / cap used to divide by zero (or produce
  // a zero length for an infinite capacity), poisoning d_sum and every
  // Dijkstra run with inf/NaN instead of failing fast. Zero and negative
  // capacities are rejected at graph construction; non-finite ones pass
  // add_link's `capacity <= 0` guard and must be rejected by the solver.
  graph::Graph g(3);
  g.add_link(0, 1, 1.0);
  EXPECT_THROW(g.add_link(1, 2, 0.0), std::invalid_argument);

  graph::Graph neg(2);
  EXPECT_THROW(neg.add_link(0, 1, -2.0), std::invalid_argument);

  graph::Graph inf_cap(2);
  inf_cap.add_link(0, 1, std::numeric_limits<double>::infinity());
  EXPECT_THROW(max_concurrent_flow(inf_cap, {{0, 1, 1.0}}, tight()),
               std::invalid_argument);

  graph::Graph nan_cap(2);
  nan_cap.add_link(0, 1, std::numeric_limits<double>::quiet_NaN());
  EXPECT_THROW(max_concurrent_flow(nan_cap, {{0, 1, 1.0}}, tight()),
               std::invalid_argument);
}

TEST(GargKoenemann, TruncatedRunKeepsPrimalFeasibleLowerBound) {
  // Stop the solver after a single phase: the reported lambda_lower must
  // still be achieved by the rescaled flows (primal-feasible), the flag
  // must say the run was truncated, and the bounds must still bracket.
  graph::Graph g(4);
  g.add_link(0, 1, 1.0);
  g.add_link(1, 2, 2.0);
  g.add_link(2, 3, 0.5);
  g.add_link(0, 3, 1.0);
  std::vector<Commodity> cs{{0, 3, 1.0}, {1, 3, 0.5}};
  McfOptions o;
  o.epsilon = 0.05;
  o.max_phases = 1;
  auto r = max_concurrent_flow(g, cs, o);
  EXPECT_TRUE(r.truncated);
  EXPECT_GT(r.lambda_lower, 0.0);
  EXPECT_LE(r.lambda_lower, r.lambda_upper * (1 + 1e-9));
  // Primal feasibility after rescaling: no arc over capacity, and every
  // commodity ships at least lambda_lower times its demand.
  ASSERT_EQ(r.arc_flow.size(), g.link_count() * 2);
  for (std::size_t a = 0; a < r.arc_flow.size(); ++a) {
    double cap = g.link(static_cast<graph::LinkId>(a / 2)).capacity;
    EXPECT_LE(r.arc_flow[a], cap * (1.0 + 1e-9));
  }
  ASSERT_EQ(r.commodity_routed.size(), cs.size());
  for (std::size_t i = 0; i < cs.size(); ++i)
    EXPECT_GE(r.commodity_routed[i], r.lambda_lower * cs[i].demand - 1e-9);
  // A converged run reports truncated == false.
  auto full = max_concurrent_flow(g, cs, tight());
  EXPECT_FALSE(full.truncated);
}

TEST(GargKoenemann, CommodityRoutedMatchesArcFlowDivergence) {
  graph::Graph g(5);
  g.add_link(0, 1, 1.0);
  g.add_link(1, 2, 1.5);
  g.add_link(2, 3, 0.7);
  g.add_link(3, 4, 1.0);
  g.add_link(4, 0, 2.0);
  g.add_link(1, 3, 1.0);
  std::vector<Commodity> cs{{0, 2, 1.0}, {0, 3, 0.5}, {2, 4, 1.5}};
  auto r = max_concurrent_flow(g, cs, tight());
  ASSERT_EQ(r.commodity_routed.size(), cs.size());
  // Divergence of arc_flow at each node == net routed supply there.
  std::vector<double> div(g.node_count(), 0.0);
  for (std::size_t a = 0; a < r.arc_flow.size(); ++a) {
    const graph::Link& l = g.link(static_cast<graph::LinkId>(a / 2));
    div[a % 2 == 0 ? l.a : l.b] += r.arc_flow[a];
    div[a % 2 == 0 ? l.b : l.a] -= r.arc_flow[a];
  }
  for (std::size_t i = 0; i < cs.size(); ++i) {
    div[cs[i].src] -= r.commodity_routed[i];
    div[cs[i].dst] += r.commodity_routed[i];
  }
  for (graph::NodeId v = 0; v < g.node_count(); ++v) EXPECT_NEAR(div[v], 0.0, 1e-7);
}

TEST(GargKoenemann, StatsPopulated) {
  graph::Graph g(3);
  g.add_link(0, 1);
  g.add_link(1, 2);
  auto r = max_concurrent_flow(g, {{0, 2, 1.0}}, tight());
  EXPECT_GT(r.phases, 0u);
  EXPECT_GT(r.augmentations, 0u);
  EXPECT_GT(r.dijkstra_runs, 0u);
}

}  // namespace
}  // namespace flattree::mcf
