#include "mcf/garg_koenemann.hpp"

#include <gtest/gtest.h>
#include <cmath>


namespace flattree::mcf {
namespace {

McfOptions tight() {
  McfOptions o;
  o.epsilon = 0.05;
  return o;
}

TEST(GargKoenemann, SingleCommoditySinglePath) {
  graph::Graph g(2);
  g.add_link(0, 1, 2.0);
  auto r = max_concurrent_flow(g, {{0, 1, 1.0}}, tight());
  // One link of capacity 2, demand 1 -> lambda = 2.
  EXPECT_NEAR(r.lambda_lower, 2.0, 0.02);
  EXPECT_GE(r.lambda_upper + 1e-9, r.lambda_lower);
  EXPECT_LE(r.lambda_upper, 2.0 * 1.2);
}

TEST(GargKoenemann, DemandScalesInversely) {
  graph::Graph g(2);
  g.add_link(0, 1, 1.0);
  auto r1 = max_concurrent_flow(g, {{0, 1, 1.0}}, tight());
  auto r4 = max_concurrent_flow(g, {{0, 1, 4.0}}, tight());
  EXPECT_NEAR(r1.lambda_lower / r4.lambda_lower, 4.0, 0.1);
}

TEST(GargKoenemann, ParallelLinksAddCapacity) {
  graph::Graph g(2);
  g.add_link(0, 1, 1.0);
  g.add_link(0, 1, 1.0);
  auto r = max_concurrent_flow(g, {{0, 1, 1.0}}, tight());
  EXPECT_NEAR(r.lambda_lower, 2.0, 0.05);
}

TEST(GargKoenemann, TwoCommoditiesShareBottleneck) {
  // Path 0-1-2: commodity 0->2 and 1->2 share link (1,2): lambda = 0.5.
  graph::Graph g(3);
  g.add_link(0, 1, 1.0);
  g.add_link(1, 2, 1.0);
  auto r = max_concurrent_flow(g, {{0, 2, 1.0}, {1, 2, 1.0}}, tight());
  EXPECT_NEAR(r.lambda_lower, 0.5, 0.01);
  EXPECT_NEAR(r.lambda_upper, 0.5, 0.05);
}

TEST(GargKoenemann, OpposingCommoditiesUseFullDuplex) {
  // Full-duplex model: 0->1 and 1->0 each get the full capacity.
  graph::Graph g(2);
  g.add_link(0, 1, 1.0);
  auto r = max_concurrent_flow(g, {{0, 1, 1.0}, {1, 0, 1.0}}, tight());
  EXPECT_NEAR(r.lambda_lower, 1.0, 0.02);
}

TEST(GargKoenemann, DiamondSplitsFlow) {
  // Two disjoint 2-hop paths: single commodity gets lambda = 2.
  graph::Graph g(4);
  g.add_link(0, 1, 1.0);
  g.add_link(1, 3, 1.0);
  g.add_link(0, 2, 1.0);
  g.add_link(2, 3, 1.0);
  auto r = max_concurrent_flow(g, {{0, 3, 1.0}}, tight());
  EXPECT_NEAR(r.lambda_lower, 2.0, 0.05);
}

TEST(GargKoenemann, BroadcastStarBoundedByRoot) {
  // Star: center 0 with 4 leaves; broadcast 0 -> each leaf, unit demands.
  // Each leaf link carries lambda -> lambda = 1.
  graph::Graph g(5);
  for (graph::NodeId leaf = 1; leaf <= 4; ++leaf) g.add_link(0, leaf, 1.0);
  std::vector<Commodity> cs;
  for (graph::NodeId leaf = 1; leaf <= 4; ++leaf) cs.push_back({0, leaf, 1.0});
  auto r = max_concurrent_flow(g, cs, tight());
  EXPECT_NEAR(r.lambda_lower, 1.0, 0.02);
}

TEST(GargKoenemann, RescaledFlowRespectsCapacities) {
  graph::Graph g(4);
  g.add_link(0, 1, 1.0);
  g.add_link(1, 2, 2.0);
  g.add_link(2, 3, 0.5);
  g.add_link(0, 3, 1.0);
  auto r = max_concurrent_flow(g, {{0, 3, 1.0}, {1, 3, 0.5}}, tight());
  ASSERT_EQ(r.arc_flow.size(), g.link_count() * 2);
  for (std::size_t l = 0; l < g.link_count(); ++l) {
    double cap = g.link(static_cast<graph::LinkId>(l)).capacity;
    EXPECT_LE(r.arc_flow[2 * l], cap * (1.0 + 1e-9));
    EXPECT_LE(r.arc_flow[2 * l + 1], cap * (1.0 + 1e-9));
  }
  EXPECT_NEAR(r.max_congestion > 0 ? 1.0 : 0.0, 1.0, 1e-9);
}

TEST(GargKoenemann, BoundsBracketTheOptimum) {
  graph::Graph g(6);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(2, 3);
  g.add_link(3, 4);
  g.add_link(4, 5);
  g.add_link(5, 0);
  g.add_link(0, 3);
  auto r = max_concurrent_flow(g, {{0, 3, 1.0}, {1, 4, 1.0}, {2, 5, 1.0}}, tight());
  EXPECT_GT(r.lambda_lower, 0.0);
  EXPECT_LE(r.lambda_lower, r.lambda_upper * (1 + 1e-9));
  // FPTAS quality: gap within ~3 epsilon.
  EXPECT_GE(r.lambda_lower, r.lambda_upper * (1.0 - 3.2 * 0.05));
}

TEST(GargKoenemann, TighterEpsilonTightensGap) {
  graph::Graph g(4);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(2, 3);
  g.add_link(3, 0);
  std::vector<Commodity> cs{{0, 2, 1.0}, {1, 3, 1.0}};
  McfOptions loose;
  loose.epsilon = 0.5;
  McfOptions fine;
  fine.epsilon = 0.03;
  auto rl = max_concurrent_flow(g, cs, loose);
  auto rf = max_concurrent_flow(g, cs, fine);
  EXPECT_LE(rf.lambda_upper - rf.lambda_lower, rl.lambda_upper - rl.lambda_lower + 1e-9);
}

TEST(GargKoenemann, ErrorCases) {
  graph::Graph g(3);
  g.add_link(0, 1);
  EXPECT_THROW(max_concurrent_flow(g, {}, tight()), std::invalid_argument);
  EXPECT_THROW(max_concurrent_flow(g, {{0, 0, 1.0}}, tight()), std::invalid_argument);
  EXPECT_THROW(max_concurrent_flow(g, {{0, 1, -1.0}}, tight()), std::invalid_argument);
  EXPECT_THROW(max_concurrent_flow(g, {{0, 2, 1.0}}, tight()), std::invalid_argument);
  McfOptions bad;
  bad.epsilon = 1.5;
  EXPECT_THROW(max_concurrent_flow(g, {{0, 1, 1.0}}, bad), std::invalid_argument);
}

TEST(GargKoenemann, UpperBoundSkippable) {
  graph::Graph g(2);
  g.add_link(0, 1);
  McfOptions o;
  o.epsilon = 0.1;
  o.compute_upper_bound = false;
  auto r = max_concurrent_flow(g, {{0, 1, 1.0}}, o);
  EXPECT_GT(r.lambda_lower, 0.0);
  EXPECT_TRUE(std::isinf(r.lambda_upper));
}

TEST(GargKoenemann, StatsPopulated) {
  graph::Graph g(3);
  g.add_link(0, 1);
  g.add_link(1, 2);
  auto r = max_concurrent_flow(g, {{0, 2, 1.0}}, tight());
  EXPECT_GT(r.phases, 0u);
  EXPECT_GT(r.augmentations, 0u);
  EXPECT_GT(r.dijkstra_runs, 0u);
}

}  // namespace
}  // namespace flattree::mcf
