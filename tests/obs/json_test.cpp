#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace flattree::obs {
namespace {

TEST(JsonEscape, PassesPlainText) {
  EXPECT_EQ(json_escape("hello world"), "hello world");
  EXPECT_EQ(json_escape(""), "");
}

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonNumber, RoundTripsExactly) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(1.5), "1.5");
  EXPECT_EQ(json_number(-2.25), "-2.25");
  // Shortest form that parses back to the same double.
  double v = 0.1;
  EXPECT_EQ(std::stod(json_number(v)), v);
  v = 1.0 / 3.0;
  EXPECT_EQ(std::stod(json_number(v)), v);
  v = 1e300;
  EXPECT_EQ(std::stod(json_number(v)), v);
}

TEST(JsonNumber, NonFiniteClampsToZero) {
  EXPECT_EQ(json_number(std::nan("")), "0");
  EXPECT_EQ(json_number(INFINITY), "0");
}

TEST(JsonWriter, NestedDocument) {
  JsonWriter w;
  w.begin_object();
  w.key("a");
  w.int_value(-3);
  w.key("b");
  w.begin_array();
  w.string_value("x");
  w.uint_value(7);
  w.bool_value(true);
  w.null_value();
  w.end_array();
  w.key("c");
  w.begin_object();
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":-3,"b":["x",7,true,null],"c":{}})");
  EXPECT_TRUE(json_valid(w.str()));
}

TEST(JsonWriter, EscapesKeysAndStrings) {
  JsonWriter w;
  w.begin_object();
  w.key("he\"y");
  w.string_value("line\nbreak");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"he\\\"y\":\"line\\nbreak\"}");
  EXPECT_TRUE(json_valid(w.str()));
}

TEST(JsonValid, AcceptsWellFormed) {
  EXPECT_TRUE(json_valid("{}"));
  EXPECT_TRUE(json_valid("[]"));
  EXPECT_TRUE(json_valid("[1,2.5,-3e10,\"s\",true,false,null]"));
  EXPECT_TRUE(json_valid(R"({"a":{"b":[{"c":1}]}})"));
  EXPECT_TRUE(json_valid("  {\"k\" : [ 1 , 2 ] }  "));
}

TEST(JsonValid, RejectsMalformed) {
  EXPECT_FALSE(json_valid(""));
  EXPECT_FALSE(json_valid("{"));
  EXPECT_FALSE(json_valid("{\"a\":}"));
  EXPECT_FALSE(json_valid("[1,2,]"));
  EXPECT_FALSE(json_valid("{\"a\":1,}"));
  EXPECT_FALSE(json_valid("{'a':1}"));
  EXPECT_FALSE(json_valid("[1] trailing"));
  EXPECT_FALSE(json_valid("nul"));
  EXPECT_FALSE(json_valid("\"unterminated"));
}

TEST(JsonValid, RejectsRunawayNesting) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_FALSE(json_valid(deep));  // depth cap, not a stack overflow
}

// -- materializing parser (json_parse) ---------------------------------------

/// Parses `text` expecting failure; returns the JsonError for inspection.
JsonError parse_error(const std::string& text) {
  JsonValue v;
  JsonError err;
  EXPECT_FALSE(json_parse(text, v, &err)) << text;
  return err;
}

TEST(JsonParse, MaterializesScalars) {
  JsonValue v;
  ASSERT_TRUE(json_parse("null", v));
  EXPECT_TRUE(v.is_null());
  ASSERT_TRUE(json_parse("true", v));
  EXPECT_TRUE(v.as_bool());
  ASSERT_TRUE(json_parse("-42", v));
  ASSERT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), -42);
  ASSERT_TRUE(json_parse("2.5e-1", v));
  ASSERT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.as_number(), 0.25);
  ASSERT_TRUE(json_parse("\"a\\nb\"", v));
  EXPECT_EQ(v.as_string(), "a\nb");
}

TEST(JsonParse, MaterializesContainersInDocumentOrder) {
  JsonValue v;
  ASSERT_TRUE(json_parse(R"({"z":1,"a":[true,null,{"k":"v"}]})", v));
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.object().size(), 2u);
  EXPECT_EQ(v.object()[0].first, "z");  // document order, not sorted
  EXPECT_EQ(v.object()[1].first, "a");
  const JsonValue* arr = v.find("a");
  ASSERT_NE(arr, nullptr);
  ASSERT_EQ(arr->array().size(), 3u);
  EXPECT_EQ(arr->array()[2].find("k")->as_string(), "v");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, StableErrorCodes) {
  EXPECT_EQ(parse_error("").code, "json.expected_value");
  EXPECT_EQ(parse_error("{\"a\":}").code, "json.expected_value");
  EXPECT_EQ(parse_error("\"unterminated").code, "json.truncated");
  EXPECT_EQ(parse_error("\"bad \\q escape\"").code, "json.bad_escape");
  EXPECT_EQ(parse_error("\"\\u12g4\"").code, "json.bad_escape");
  EXPECT_EQ(parse_error(std::string("\"a") + '\x01' + "b\"").code,
            "json.control_in_string");
  EXPECT_EQ(parse_error("trux").code, "json.bad_literal");
  EXPECT_EQ(parse_error("01").code, "json.bad_number");
  EXPECT_EQ(parse_error("1.x").code, "json.bad_number");
  EXPECT_EQ(parse_error("1ex").code, "json.bad_number");
  EXPECT_EQ(parse_error("{1:2}").code, "json.expected_string");
  EXPECT_EQ(parse_error("{\"a\" 1}").code, "json.expected_colon");
  EXPECT_EQ(parse_error("[1 2]").code, "json.expected_comma_or_close");
  EXPECT_EQ(parse_error("{\"a\":1 \"b\":2}").code, "json.expected_comma_or_close");
  EXPECT_EQ(parse_error("{} {}").code, "json.trailing");
}

TEST(JsonParse, TruncatedInputIsItsOwnErrorClass) {
  // Every way of cutting a document at end-of-input maps to one stable
  // code, json.truncated, so callers can distinguish "feed me more bytes"
  // from "this will never parse" (ISSUE 10). Each cut class in turn:
  // mid-escape, mid-\u escape, inside a string, mid-UTF-8 sequence,
  // mid-number (sign / fraction / exponent), mid-literal, and inside an
  // open container.
  EXPECT_EQ(parse_error("\"a\\").code, "json.truncated");
  EXPECT_EQ(parse_error("\"a\\u12").code, "json.truncated");
  EXPECT_EQ(parse_error("\"abc").code, "json.truncated");
  EXPECT_EQ(parse_error("\"caf\xC3").code, "json.truncated");          // cut UTF-8 lead
  EXPECT_EQ(parse_error("\"\xE2\x82").code, "json.truncated");         // cut 3-byte seq
  EXPECT_EQ(parse_error("-").code, "json.truncated");
  EXPECT_EQ(parse_error("1.").code, "json.truncated");
  EXPECT_EQ(parse_error("1e").code, "json.truncated");
  EXPECT_EQ(parse_error("1e+").code, "json.truncated");
  EXPECT_EQ(parse_error("tru").code, "json.truncated");
  EXPECT_EQ(parse_error("fals").code, "json.truncated");
  EXPECT_EQ(parse_error("[1,").code, "json.truncated");
  EXPECT_EQ(parse_error("[1").code, "json.truncated");
  EXPECT_EQ(parse_error("{\"a\":").code, "json.truncated");
  EXPECT_EQ(parse_error("{\"a\"").code, "json.truncated");
  EXPECT_EQ(parse_error("{\"a\":1").code, "json.truncated");
  EXPECT_EQ(parse_error("{").code, "json.truncated");

  // The position always lands inside the buffer: a string cut points at
  // its opening quote, a structural cut at the end of what was read.
  JsonError err = parse_error("{\"k\":\n\"abc");
  EXPECT_EQ(err.code, "json.truncated");
  EXPECT_EQ(err.line, 2u);
  EXPECT_EQ(err.column, 1u);
  err = parse_error("[1,2,\n");
  EXPECT_EQ(err.code, "json.truncated");
  EXPECT_EQ(err.line, 2u);
  EXPECT_EQ(err.column, 1u);

  // An empty (or all-whitespace) document is not "truncated": nothing was
  // started, so the original code stands.
  EXPECT_EQ(parse_error("").code, "json.expected_value");
  EXPECT_EQ(parse_error("  \n ").code, "json.expected_value");
}

TEST(JsonParse, RejectsDuplicateKeys) {
  // "Last key wins" would make request handling order-dependent; the
  // protocol rejects the ambiguity outright.
  JsonError err = parse_error(R"({"op":"query","op":"stats"})");
  EXPECT_EQ(err.code, "json.duplicate_key");
  EXPECT_NE(err.message.find("op"), std::string::npos);
  // The position is the duplicate key's opening quote.
  EXPECT_EQ(err.line, 1);
  EXPECT_EQ(err.column, 15);
}

TEST(JsonParse, RejectsNonFiniteNumbers) {
  // A capacity of 1e999 overflows to inf in strtod; leaking that into
  // solver state would poison GK, so the parser fails loudly instead.
  EXPECT_EQ(parse_error("1e999").code, "json.number_nonfinite");
  EXPECT_EQ(parse_error("-1e999").code, "json.number_nonfinite");
  EXPECT_EQ(parse_error(R"({"demand":1e999})").code, "json.number_nonfinite");
  // Bare non-finite tokens are not JSON at all.
  EXPECT_EQ(parse_error("NaN").code, "json.expected_value");
  EXPECT_EQ(parse_error("Infinity").code, "json.expected_value");
}

TEST(JsonParse, RejectsRunawayNesting) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_EQ(parse_error(deep).code, "json.depth");
}

TEST(JsonParse, ReportsLineAndColumn) {
  JsonError err = parse_error("{\"a\":1,\n  \"b\":nul}");
  EXPECT_EQ(err.code, "json.bad_literal");
  EXPECT_EQ(err.line, 2u);
  EXPECT_EQ(err.column, 7u);

  err = parse_error("[1,2,\n3,\n4 5]");
  EXPECT_EQ(err.code, "json.expected_comma_or_close");
  EXPECT_EQ(err.line, 3u);
  EXPECT_EQ(err.column, 3u);

  err = parse_error("x");
  EXPECT_EQ(err.line, 1u);
  EXPECT_EQ(err.column, 1u);
}

TEST(JsonParse, IntVsDoubleSplit) {
  JsonValue v;
  ASSERT_TRUE(json_parse("9007199254740993", v));  // 2^53 + 1, still int64
  EXPECT_TRUE(v.is_int());
  ASSERT_TRUE(json_parse("1.0", v));
  EXPECT_TRUE(v.is_double());
  ASSERT_TRUE(json_parse("1e2", v));  // exponent form stays a double token
  EXPECT_TRUE(v.is_double());
  // -0 must stay a double so canonical re-emission round-trips the sign.
  ASSERT_TRUE(json_parse("-0", v));
  EXPECT_TRUE(v.is_double());
}

TEST(JsonParse, CanonicalReemissionIsAFixpoint) {
  // Whitespace and number spellings normalize once, then never again.
  const char* text = "  {\"a\" : [ 1 , 2.50 , \"x\" ] , \"b\" : true }  ";
  JsonValue v;
  ASSERT_TRUE(json_parse(text, v));
  std::string once = v.to_json();
  JsonValue v2;
  ASSERT_TRUE(json_parse(once, v2));
  EXPECT_EQ(v2.to_json(), once);
  EXPECT_EQ(once, R"({"a":[1,2.5,"x"],"b":true})");
}

/// Random JsonValue tree: every kind reachable, bounded depth/fanout,
/// unique object keys (duplicates are a parse error by design).
JsonValue random_value(util::Rng& rng, int depth) {
  std::uint64_t kind = rng.below(depth >= 3 ? 5 : 7);
  switch (kind) {
    case 0: return JsonValue::make_null();
    case 1: return JsonValue::make_bool(rng.chance(0.5));
    case 2: return JsonValue::make_int(rng.range(-1000000, 1000000));
    case 3: {
      double d = rng.uniform(-1e9, 1e9);
      if (rng.chance(0.25)) d = rng.uniform();  // exercise fractional spellings
      return JsonValue::make_double(d);
    }
    case 4: {
      static const char* pool[] = {"", "plain", "esc\"ape", "tab\there",
                                   "new\nline", "uni\x01code", "back\\slash"};
      return JsonValue::make_string(pool[rng.below(7)]);
    }
    case 5: {
      JsonValue arr = JsonValue::make_array();
      std::uint64_t n = rng.below(4);
      for (std::uint64_t i = 0; i < n; ++i)
        arr.array().push_back(random_value(rng, depth + 1));
      return arr;
    }
    default: {
      JsonValue obj = JsonValue::make_object();
      std::uint64_t n = rng.below(4);
      for (std::uint64_t i = 0; i < n; ++i)
        obj.object().emplace_back("k" + std::to_string(i),
                                  random_value(rng, depth + 1));
      return obj;
    }
  }
}

TEST(JsonParse, RandomizedWriteParseWriteRoundTrip) {
  util::Rng rng(20260809);
  for (int trial = 0; trial < 500; ++trial) {
    JsonValue v = random_value(rng, 0);
    std::string written = v.to_json();
    ASSERT_TRUE(json_valid(written)) << written;
    JsonValue parsed;
    JsonError err;
    ASSERT_TRUE(json_parse(written, parsed, &err))
        << written << " -> " << err.code << ": " << err.message;
    EXPECT_EQ(parsed.to_json(), written);  // byte-equal round trip
  }
}

}  // namespace
}  // namespace flattree::obs
