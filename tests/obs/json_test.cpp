#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace flattree::obs {
namespace {

TEST(JsonEscape, PassesPlainText) {
  EXPECT_EQ(json_escape("hello world"), "hello world");
  EXPECT_EQ(json_escape(""), "");
}

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonNumber, RoundTripsExactly) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(1.5), "1.5");
  EXPECT_EQ(json_number(-2.25), "-2.25");
  // Shortest form that parses back to the same double.
  double v = 0.1;
  EXPECT_EQ(std::stod(json_number(v)), v);
  v = 1.0 / 3.0;
  EXPECT_EQ(std::stod(json_number(v)), v);
  v = 1e300;
  EXPECT_EQ(std::stod(json_number(v)), v);
}

TEST(JsonNumber, NonFiniteClampsToZero) {
  EXPECT_EQ(json_number(std::nan("")), "0");
  EXPECT_EQ(json_number(INFINITY), "0");
}

TEST(JsonWriter, NestedDocument) {
  JsonWriter w;
  w.begin_object();
  w.key("a");
  w.int_value(-3);
  w.key("b");
  w.begin_array();
  w.string_value("x");
  w.uint_value(7);
  w.bool_value(true);
  w.null_value();
  w.end_array();
  w.key("c");
  w.begin_object();
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":-3,"b":["x",7,true,null],"c":{}})");
  EXPECT_TRUE(json_valid(w.str()));
}

TEST(JsonWriter, EscapesKeysAndStrings) {
  JsonWriter w;
  w.begin_object();
  w.key("he\"y");
  w.string_value("line\nbreak");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"he\\\"y\":\"line\\nbreak\"}");
  EXPECT_TRUE(json_valid(w.str()));
}

TEST(JsonValid, AcceptsWellFormed) {
  EXPECT_TRUE(json_valid("{}"));
  EXPECT_TRUE(json_valid("[]"));
  EXPECT_TRUE(json_valid("[1,2.5,-3e10,\"s\",true,false,null]"));
  EXPECT_TRUE(json_valid(R"({"a":{"b":[{"c":1}]}})"));
  EXPECT_TRUE(json_valid("  {\"k\" : [ 1 , 2 ] }  "));
}

TEST(JsonValid, RejectsMalformed) {
  EXPECT_FALSE(json_valid(""));
  EXPECT_FALSE(json_valid("{"));
  EXPECT_FALSE(json_valid("{\"a\":}"));
  EXPECT_FALSE(json_valid("[1,2,]"));
  EXPECT_FALSE(json_valid("{\"a\":1,}"));
  EXPECT_FALSE(json_valid("{'a':1}"));
  EXPECT_FALSE(json_valid("[1] trailing"));
  EXPECT_FALSE(json_valid("nul"));
  EXPECT_FALSE(json_valid("\"unterminated"));
}

TEST(JsonValid, RejectsRunawayNesting) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_FALSE(json_valid(deep));  // depth cap, not a stack overflow
}

}  // namespace
}  // namespace flattree::obs
