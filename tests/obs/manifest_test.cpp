#include "obs/manifest.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace flattree::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

const char* kArgv[] = {"/path/to/bench_fake", "--seed", "7"};

TEST(Manifest, JsonIsValidAndCarriesSchemaKeys) {
  RunSession run(3, kArgv, "", "");
  run.set_int("seed", 7);
  run.set_int("threads", 2);
  run.set_double("eps", 0.12);
  run.set_string("mode", "global-random");
  std::string doc = run.manifest_json();
  EXPECT_TRUE(json_valid(doc)) << doc;
  // Every documented top-level key of flattree.run.v1 (manifest.hpp).
  for (const char* key :
       {"\"schema\"", "\"name\"", "\"argv\"", "\"git\"", "\"hardware_threads\"",
        "\"wall_time_s\"", "\"fields\"", "\"subsystems\"", "\"metrics\""})
    EXPECT_NE(doc.find(key), std::string::npos) << key;
  EXPECT_NE(doc.find("\"flattree.run.v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"bench_fake\""), std::string::npos);
  EXPECT_NE(doc.find("\"--seed\""), std::string::npos);
  EXPECT_NE(doc.find("\"seed\":7"), std::string::npos);
  EXPECT_NE(doc.find("\"eps\":0.12"), std::string::npos);
  EXPECT_NE(doc.find("\"mode\":\"global-random\""), std::string::npos);
  for (const char* key : {"\"counters\"", "\"gauges\"", "\"histograms\""})
    EXPECT_NE(doc.find(key), std::string::npos) << key;
}

TEST(Manifest, InactiveWithoutPaths) {
  RunSession run(3, kArgv, "", "");
  EXPECT_FALSE(run.active());
  EXPECT_TRUE(run.finish());  // no-op, nothing written
}

TEST(Manifest, WritesFileOnFinish) {
  std::string path = testing::TempDir() + "manifest_test_out.json";
  {
    RunSession run(3, kArgv, path, "");
    EXPECT_TRUE(run.active());
    run.set_int("seed", 7);
    EXPECT_TRUE(run.finish());
    EXPECT_TRUE(run.finish());  // idempotent
  }
  std::string doc = slurp(path);
  EXPECT_TRUE(json_valid(doc)) << doc;
  EXPECT_NE(doc.find("\"flattree.run.v1\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Manifest, DestructorWrites) {
  std::string path = testing::TempDir() + "manifest_test_dtor.json";
  { RunSession run(3, kArgv, path, ""); }
  EXPECT_TRUE(json_valid(slurp(path)));
  std::remove(path.c_str());
}

TEST(Manifest, MetricsSnapshotLandsInDocument) {
  bool before = enabled();
  set_enabled(true);
  reset_metrics();
  Counter("manifesttest.sub.count").add(21);
  RunSession run(3, kArgv, "", "");
  std::string doc = run.manifest_json();
  reset_metrics();
  set_enabled(before);
  EXPECT_NE(doc.find("\"manifesttest.sub.count\":21"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"manifesttest\""), std::string::npos);  // in subsystems
}

TEST(Manifest, FinishFailsOnUnwritablePath) {
  RunSession run(3, kArgv, "/nonexistent_dir_zz/manifest.json", "");
  EXPECT_FALSE(run.finish());
}

TEST(GitDescribe, ReturnsSomething) {
  std::string v = git_describe();
  EXPECT_FALSE(v.empty());  // a description or the "unknown" fallback
}

}  // namespace
}  // namespace flattree::obs
