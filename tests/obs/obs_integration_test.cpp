// End-to-end observability: run a small multi-subsystem workload with
// metrics on and assert (a) the snapshot covers >= 4 instrumented
// subsystems, (b) counter totals are identical at different thread counts,
// and (c) instrumentation does not change computed results.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "core/recovery.hpp"
#include "exec/parallel_for.hpp"
#include "mcf/garg_koenemann.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/ksp_routing.hpp"
#include "sim/flow_gen.hpp"
#include "sim/flow_sim.hpp"
#include "topo/apl.hpp"
#include "topo/fat_tree.hpp"
#include "workload/traffic.hpp"

namespace flattree {
namespace {

constexpr std::uint32_t kK = 4;

struct WorkloadResult {
  double apl = 0.0;
  double lambda = 0.0;
  double last_finish = 0.0;
  obs::MetricsSnapshot snap;
};

/// Touches core (flat-tree build + conversion + recovery), topo + graph +
/// exec (APL), mcf (GK solve), routing + sim (flow simulation).
WorkloadResult run_workload(unsigned threads) {
  exec::set_global_threads(threads);
  obs::reset_metrics();
  WorkloadResult out;

  core::FlatTreeConfig cfg;
  cfg.k = kK;
  core::Controller controller(cfg);
  controller.apply(core::Mode::GlobalRandom);
  topo::Topology t = controller.topology();
  out.apl = topo::server_apl(t).average;

  core::FailureSet failures;
  failures.failed_switches.push_back(0);
  core::apply_failures(t, failures);

  workload::Cluster cluster{{0, 1, 2, 3, 4, 5}};
  auto demands = workload::all_to_all_traffic(cluster);
  auto commodities = mcf::aggregate_to_switches(t, demands);
  mcf::McfOptions opt;
  opt.epsilon = 0.2;
  out.lambda = mcf::max_concurrent_flow(t.graph(), commodities, opt).lambda_lower;

  routing::KspRouting routing(t.graph(), 4);
  sim::FlowSimulator simulator(t, routing);
  std::vector<sim::SimFlow> flows;
  for (std::uint32_t i = 0; i < 8; ++i)
    flows.push_back({i, static_cast<topo::ServerId>((i + 5) % 16), 1.0, 0.1 * i});
  for (const auto& rec : simulator.run(flows))
    out.last_finish = std::max(out.last_finish, rec.finish);

  out.snap = obs::snapshot_metrics();
  exec::set_global_threads(0);
  return out;
}

std::uint64_t counter_value(const obs::MetricsSnapshot& snap, const std::string& name) {
  for (const auto& [n, v] : snap.counters)
    if (n == name) return v;
  return 0;
}

TEST(ObsIntegration, WorkloadCoversAtLeastFourSubsystems) {
  bool before = obs::enabled();
  obs::set_enabled(true);
  WorkloadResult r = run_workload(2);
  obs::reset_metrics();
  obs::set_enabled(before);

  auto subs = r.snap.subsystems();
  for (const char* want : {"core", "graph", "mcf", "sim", "topo"})
    EXPECT_NE(std::find(subs.begin(), subs.end(), want), subs.end())
        << "missing subsystem " << want;
  EXPECT_GE(subs.size(), 4u);

  EXPECT_GE(counter_value(r.snap, "core.flat_tree.builds"), 1u);
  EXPECT_GE(counter_value(r.snap, "core.controller.applies"), 1u);
  EXPECT_GE(counter_value(r.snap, "core.recovery.failure_sets_applied"), 1u);
  EXPECT_GE(counter_value(r.snap, "graph.apl.sources_visited"), 1u);
  EXPECT_GE(counter_value(r.snap, "mcf.gk.solves"), 1u);
  EXPECT_GE(counter_value(r.snap, "mcf.gk.phases"), 1u);
  EXPECT_GE(counter_value(r.snap, "routing.ksp.paths_selected"), 1u);
  EXPECT_GE(counter_value(r.snap, "sim.flow.completions"), 8u);
}

TEST(ObsIntegration, CountersIdenticalAcrossThreadCounts) {
  bool before = obs::enabled();
  obs::set_enabled(true);
  WorkloadResult r1 = run_workload(1);
  WorkloadResult r4 = run_workload(4);
  obs::reset_metrics();
  obs::set_enabled(before);

  EXPECT_EQ(r1.apl, r4.apl);
  EXPECT_EQ(r1.lambda, r4.lambda);
  EXPECT_EQ(r1.last_finish, r4.last_finish);
  ASSERT_EQ(r1.snap.counters.size(), r4.snap.counters.size());
  for (std::size_t i = 0; i < r1.snap.counters.size(); ++i) {
    EXPECT_EQ(r1.snap.counters[i].first, r4.snap.counters[i].first);
    // exec.pool.busy_ns and worker-busy histograms are wall-clock
    // measurements; everything else must match exactly.
    const std::string& name = r1.snap.counters[i].first;
    if (name.find("busy") != std::string::npos) continue;
    EXPECT_EQ(r1.snap.counters[i].second, r4.snap.counters[i].second) << name;
  }
}

TEST(ObsIntegration, InstrumentationDoesNotChangeResults) {
  bool before = obs::enabled();
  obs::set_enabled(false);
  WorkloadResult off = run_workload(2);
  obs::set_enabled(true);
  WorkloadResult on = run_workload(2);
  obs::reset_metrics();
  obs::set_enabled(before);

  EXPECT_EQ(off.apl, on.apl);
  EXPECT_EQ(off.lambda, on.lambda);
  EXPECT_EQ(off.last_finish, on.last_finish);
  // And the disabled run recorded nothing.
  EXPECT_EQ(counter_value(off.snap, "mcf.gk.solves"), 0u);
  EXPECT_GE(counter_value(on.snap, "mcf.gk.solves"), 1u);
}

}  // namespace
}  // namespace flattree
