// Runs a real bench binary with --metrics-json/--trace and checks the
// emitted manifest: parseable JSON, the documented flattree.run.v1 keys,
// and at least four distinct instrumented subsystems. FT_BENCH_DIR is
// injected by CMake and points at the bench build directory.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace flattree {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f != nullptr) std::fclose(f);
  return f != nullptr;
}

/// Crude extraction of the "subsystems":[...] string array.
std::vector<std::string> subsystems_of(const std::string& doc) {
  std::vector<std::string> out;
  std::size_t at = doc.find("\"subsystems\":[");
  if (at == std::string::npos) return out;
  at += 14;
  std::size_t end = doc.find(']', at);
  std::string body = doc.substr(at, end - at);
  std::size_t pos = 0;
  while ((pos = body.find('"', pos)) != std::string::npos) {
    std::size_t close = body.find('"', pos + 1);
    if (close == std::string::npos) break;
    out.push_back(body.substr(pos + 1, close - pos - 1));
    pos = close + 1;
  }
  return out;
}

TEST(BenchManifest, Fig5EmitsSchemaConformantManifest) {
  std::string bench = std::string(FT_BENCH_DIR) + "/bench_fig5_apl_global";
  if (!file_exists(bench)) GTEST_SKIP() << "bench binary not built: " << bench;

  std::string manifest = testing::TempDir() + "bench_manifest_fig5.json";
  std::string trace = testing::TempDir() + "bench_manifest_fig5.jsonl";
  std::string cmd = bench + " --kmax 8 --threads 2 --metrics-json=" + manifest +
                    " --trace=" + trace + " > /dev/null 2>&1";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  std::string doc = slurp(manifest);
  ASSERT_FALSE(doc.empty());
  EXPECT_TRUE(obs::json_valid(doc)) << doc;

  // Documented flattree.run.v1 top-level keys (src/obs/manifest.hpp).
  for (const char* key :
       {"\"schema\"", "\"name\"", "\"argv\"", "\"git\"", "\"hardware_threads\"",
        "\"wall_time_s\"", "\"fields\"", "\"subsystems\"", "\"metrics\"",
        "\"counters\"", "\"gauges\"", "\"histograms\""})
    EXPECT_NE(doc.find(key), std::string::npos) << key;
  EXPECT_NE(doc.find("\"flattree.run.v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"bench_fig5_apl_global\""), std::string::npos);
  EXPECT_NE(doc.find("\"--kmax\""), std::string::npos);  // argv captured
  EXPECT_NE(doc.find("\"seed\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"threads\":2"), std::string::npos);

  auto subs = subsystems_of(doc);
  EXPECT_GE(subs.size(), 4u) << doc;

  // Trace: first line is the meta record, every line valid JSON.
  std::ifstream tin(trace);
  std::string line;
  ASSERT_TRUE(std::getline(tin, line));
  EXPECT_NE(line.find("\"event\":\"trace_meta\""), std::string::npos);
  int checked = 0;
  while (std::getline(tin, line) && checked < 50) {
    EXPECT_TRUE(obs::json_valid(line)) << line;
    ++checked;
  }
  EXPECT_GT(checked, 0);

  std::remove(manifest.c_str());
  std::remove(trace.c_str());
}

TEST(BenchManifest, Fig5OutputUnchangedByObsFlags) {
  std::string bench = std::string(FT_BENCH_DIR) + "/bench_fig5_apl_global";
  if (!file_exists(bench)) GTEST_SKIP() << "bench binary not built: " << bench;

  std::string plain = testing::TempDir() + "bench_plain.txt";
  std::string obs_out = testing::TempDir() + "bench_obs.txt";
  std::string manifest = testing::TempDir() + "bench_obs_manifest.json";
  std::string base = bench + " --kmax 6 --threads 1";
  ASSERT_EQ(std::system((base + " > " + plain + " 2>/dev/null").c_str()), 0);
  ASSERT_EQ(std::system((base + " --metrics-json=" + manifest + " > " + obs_out +
                         " 2>/dev/null")
                            .c_str()),
            0);
  EXPECT_EQ(slurp(plain), slurp(obs_out));  // stdout bit-identical
  std::remove(plain.c_str());
  std::remove(obs_out.c_str());
  std::remove(manifest.c_str());
}

}  // namespace
}  // namespace flattree
