#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "exec/parallel_for.hpp"

namespace flattree::obs {
namespace {

/// RAII: enables obs for one test, restores the previous state after.
class ObsOn {
 public:
  ObsOn() : before_(enabled()) {
    set_enabled(true);
    reset_metrics();
  }
  ~ObsOn() {
    reset_metrics();
    set_enabled(before_);
  }

 private:
  bool before_;
};

std::uint64_t counter_value(const MetricsSnapshot& snap, const std::string& name) {
  for (const auto& [n, v] : snap.counters)
    if (n == name) return v;
  return 0;
}

const HistogramSnapshot* find_hist(const MetricsSnapshot& snap, const std::string& name) {
  for (const auto& h : snap.histograms)
    if (h.name == name) return &h;
  return nullptr;
}

TEST(Metrics, DisabledRecordingIsDropped) {
  bool before = enabled();
  set_enabled(false);
  reset_metrics();
  Counter c("test.disabled.counter");
  c.add(100);
  Histogram h("test.disabled.hist", {1.0, 2.0});
  h.observe(1.5);
  set_enabled(true);
  auto snap = snapshot_metrics();
  set_enabled(before);
  EXPECT_EQ(counter_value(snap, "test.disabled.counter"), 0u);
  const HistogramSnapshot* hs = find_hist(snap, "test.disabled.hist");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 0u);
}

TEST(Metrics, CounterAccumulates) {
  ObsOn on;
  Counter c("test.metrics.counter");
  c.inc();
  c.add(9);
  auto snap = snapshot_metrics();
  EXPECT_EQ(counter_value(snap, "test.metrics.counter"), 10u);
}

TEST(Metrics, SameNameSharesOneMetric) {
  ObsOn on;
  Counter a("test.metrics.shared");
  Counter b("test.metrics.shared");
  EXPECT_EQ(a.id(), b.id());
  a.inc();
  b.inc();
  EXPECT_EQ(counter_value(snapshot_metrics(), "test.metrics.shared"), 2u);
}

TEST(Metrics, GaugeSetAndRecordMax) {
  ObsOn on;
  Gauge g("test.metrics.gauge");
  g.set(2.5);
  g.set(1.5);  // last write wins
  Gauge m("test.metrics.gauge_max");
  m.record_max(1.0);
  m.record_max(3.0);
  m.record_max(2.0);
  auto snap = snapshot_metrics();
  double gv = 0.0, mv = 0.0;
  for (const auto& [n, v] : snap.gauges) {
    if (n == "test.metrics.gauge") gv = v;
    if (n == "test.metrics.gauge_max") mv = v;
  }
  EXPECT_EQ(gv, 1.5);
  EXPECT_EQ(mv, 3.0);
}

TEST(Metrics, HistogramBucketsAndStats) {
  ObsOn on;
  Histogram h("test.metrics.hist", {1.0, 10.0, 100.0});
  for (double v : {0.5, 0.7, 5.0, 50.0, 500.0, 1000.0}) h.observe(v);
  auto snap = snapshot_metrics();
  const HistogramSnapshot* hs = find_hist(snap, "test.metrics.hist");
  ASSERT_NE(hs, nullptr);
  ASSERT_EQ(hs->buckets.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(hs->buckets[0], 2u);      // <= 1
  EXPECT_EQ(hs->buckets[1], 1u);      // <= 10
  EXPECT_EQ(hs->buckets[2], 1u);      // <= 100
  EXPECT_EQ(hs->buckets[3], 2u);      // overflow
  EXPECT_EQ(hs->count, 6u);
  EXPECT_EQ(hs->min, 0.5);
  EXPECT_EQ(hs->max, 1000.0);
  EXPECT_NEAR(hs->sum, 1556.2, 1e-9);
}

TEST(Metrics, ExponentialAndLinearBounds) {
  auto exp = Histogram::exponential_bounds(1.0, 2.0, 4);
  ASSERT_EQ(exp.size(), 4u);
  EXPECT_EQ(exp[0], 1.0);
  EXPECT_EQ(exp[1], 2.0);
  EXPECT_EQ(exp[2], 4.0);
  EXPECT_EQ(exp[3], 8.0);
  auto lin = Histogram::linear_bounds(0.5, 0.25, 3);
  ASSERT_EQ(lin.size(), 3u);
  EXPECT_EQ(lin[0], 0.5);
  EXPECT_EQ(lin[1], 0.75);
  EXPECT_EQ(lin[2], 1.0);
  ASSERT_TRUE(std::is_sorted(exp.begin(), exp.end()));
  ASSERT_TRUE(std::is_sorted(lin.begin(), lin.end()));
}

TEST(Metrics, ResetZeroesButKeepsRegistrations) {
  ObsOn on;
  Counter c("test.metrics.reset_me");
  c.add(5);
  reset_metrics();
  auto snap = snapshot_metrics();
  EXPECT_EQ(counter_value(snap, "test.metrics.reset_me"), 0u);
  bool registered = false;
  for (const auto& [n, v] : snap.counters) registered = registered || n == "test.metrics.reset_me";
  EXPECT_TRUE(registered);
}

TEST(Metrics, SnapshotIsNameSorted) {
  ObsOn on;
  Counter("test.metrics.zz").inc();
  Counter("test.metrics.aa").inc();
  auto snap = snapshot_metrics();
  ASSERT_TRUE(std::is_sorted(
      snap.counters.begin(), snap.counters.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
}

TEST(Metrics, ThreadShardsMergeDeterministically) {
  // The same parallel workload must yield identical counter totals and
  // histogram buckets at every thread count (integer merges commute).
  auto run = [](unsigned threads) {
    exec::set_global_threads(threads);
    reset_metrics();
    Counter c("test.metrics.par_counter");
    Histogram h("test.metrics.par_hist", {10.0, 100.0, 1000.0});
    exec::parallel_for(1000, [&](std::size_t i) {
      c.add(i % 3 + 1);
      h.observe(static_cast<double>(i));
    });
    return snapshot_metrics();
  };
  ObsOn on;
  auto s1 = run(1);
  auto s4 = run(4);
  exec::set_global_threads(0);
  EXPECT_EQ(counter_value(s1, "test.metrics.par_counter"),
            counter_value(s4, "test.metrics.par_counter"));
  EXPECT_EQ(counter_value(s1, "test.metrics.par_counter"), 1999u);  // sum of i%3+1
  const HistogramSnapshot* h1 = find_hist(s1, "test.metrics.par_hist");
  const HistogramSnapshot* h4 = find_hist(s4, "test.metrics.par_hist");
  ASSERT_NE(h1, nullptr);
  ASSERT_NE(h4, nullptr);
  EXPECT_EQ(h1->buckets, h4->buckets);
  EXPECT_EQ(h1->count, h4->count);
  EXPECT_EQ(h1->min, h4->min);
  EXPECT_EQ(h1->max, h4->max);
}

TEST(Metrics, PlainThreadsFlushOnExit) {
  ObsOn on;
  Counter c("test.metrics.raw_thread");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < 100; ++i) c.inc();
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter_value(snapshot_metrics(), "test.metrics.raw_thread"), 400u);
}

TEST(Metrics, SubsystemsListsDottedPrefixesWithLiveValues) {
  ObsOn on;
  Counter("alpha.one.count").inc();
  Counter("beta.two.count").add(3);
  Counter("gamma.zero.count");  // registered but zero: not a live subsystem
  auto subs = snapshot_metrics().subsystems();
  EXPECT_NE(std::find(subs.begin(), subs.end(), "alpha"), subs.end());
  EXPECT_NE(std::find(subs.begin(), subs.end(), "beta"), subs.end());
  EXPECT_EQ(std::find(subs.begin(), subs.end(), "gamma"), subs.end());
}

}  // namespace
}  // namespace flattree::obs
