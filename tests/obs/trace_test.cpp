#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"

namespace flattree::obs {
namespace {

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string temp_path(const char* name) { return testing::TempDir() + name; }

TEST(Trace, InertWithoutStart) {
  stop_tracing();
  { OBS_SPAN("test.inert"); }
  EXPECT_FALSE(tracing());
}

TEST(Trace, RecordsAndCountsSpans) {
  start_tracing();
  EXPECT_TRUE(tracing());
  {
    OBS_SPAN("test.outer");
    { OBS_SPAN("test.inner"); }
    { OBS_SPAN("test.inner"); }
  }
  stop_tracing();
  EXPECT_EQ(trace_span_count(), 3u);
}

TEST(Trace, StartClearsPreviousSession) {
  start_tracing();
  { OBS_SPAN("test.old"); }
  start_tracing();
  { OBS_SPAN("test.new"); }
  stop_tracing();
  EXPECT_EQ(trace_span_count(), 1u);
}

TEST(Trace, WriteEmitsValidJsonLines) {
  std::string path = temp_path("trace_test_out.jsonl");
  start_tracing();
  {
    OBS_SPAN("test.write.outer");
    OBS_SPAN("test.write.inner");
  }
  ASSERT_TRUE(write_trace(path));
  EXPECT_FALSE(tracing());  // write stops the session
  auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);  // meta + 2 spans
  for (const std::string& line : lines) EXPECT_TRUE(json_valid(line)) << line;
  EXPECT_NE(lines[0].find("\"event\":\"trace_meta\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"spans\":2"), std::string::npos);
  // Spans are sorted by start time: outer opened first.
  EXPECT_NE(lines[1].find("test.write.outer"), std::string::npos);
  EXPECT_NE(lines[1].find("\"depth\":0"), std::string::npos);
  EXPECT_NE(lines[2].find("test.write.inner"), std::string::npos);
  EXPECT_NE(lines[2].find("\"depth\":1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Trace, NestingDepthFollowsScopes) {
  std::string path = temp_path("trace_test_depth.jsonl");
  start_tracing();
  {
    OBS_SPAN("test.depth.a");
    {
      OBS_SPAN("test.depth.b");
      { OBS_SPAN("test.depth.c"); }
    }
  }
  ASSERT_TRUE(write_trace(path));
  auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_NE(lines[3].find("\"depth\":2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Trace, ThreadsGetDistinctOrdinals) {
  std::string path = temp_path("trace_test_tids.jsonl");
  start_tracing();
  std::thread t1([] { OBS_SPAN("test.tid.worker"); });
  t1.join();
  std::thread t2([] { OBS_SPAN("test.tid.worker"); });
  t2.join();
  { OBS_SPAN("test.tid.main"); }
  ASSERT_TRUE(write_trace(path));
  auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 4u);
  // Three spans from three threads: at least two distinct tids among them.
  std::ostringstream all;
  for (std::size_t i = 1; i < lines.size(); ++i) all << lines[i] << '\n';
  std::string joined = all.str();
  int distinct = 0;
  for (const char* tid : {"\"tid\":0", "\"tid\":1", "\"tid\":2"})
    if (joined.find(tid) != std::string::npos) ++distinct;
  EXPECT_GE(distinct, 2);
  std::remove(path.c_str());
}

TEST(Trace, WriteToUnwritablePathFails) {
  start_tracing();
  { OBS_SPAN("test.unwritable"); }
  EXPECT_FALSE(write_trace("/nonexistent_dir_zz/trace.jsonl"));
}

}  // namespace
}  // namespace flattree::obs
