// Thread-count invariance of the parallelized evaluation kernels: every
// number a bench reports must be bit-identical at --threads 1, 2, and 8.
// These tests run each kernel under global pools of those sizes and compare
// results with exact (bitwise) equality — no tolerances.

#include <gtest/gtest.h>

#include <vector>

#include "exec/parallel_for.hpp"
#include "graph/bfs.hpp"
#include "mcf/commodity.hpp"
#include "mcf/garg_koenemann.hpp"
#include "routing/ksp_routing.hpp"
#include "topo/apl.hpp"
#include "topo/fat_tree.hpp"
#include "util/rng.hpp"
#include "workload/cluster.hpp"
#include "workload/traffic.hpp"

namespace flattree {
namespace {

const unsigned kThreadCounts[] = {1, 2, 8};

/// Restores a single-thread global pool when a test exits.
struct PoolGuard {
  ~PoolGuard() { exec::set_global_threads(1); }
};

TEST(Determinism, WeightedAplBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  topo::FatTree ft = topo::build_fat_tree(8);

  exec::set_global_threads(1);
  graph::AplResult base = topo::server_apl(ft.topo);
  EXPECT_GT(base.average, 0.0);

  for (unsigned threads : kThreadCounts) {
    exec::set_global_threads(threads);
    graph::AplResult r = topo::server_apl(ft.topo);
    EXPECT_EQ(r.average, base.average) << "threads=" << threads;
    EXPECT_EQ(r.pairs, base.pairs);
    EXPECT_EQ(r.max_dist, base.max_dist);
  }
}

TEST(Determinism, ApspMatchesSerialBfs) {
  PoolGuard guard;
  topo::FatTree ft = topo::build_fat_tree(6);
  const graph::Graph& g = ft.topo.graph();

  exec::set_global_threads(8);
  auto apsp = graph::apsp_distances(g);
  ASSERT_EQ(apsp.size(), g.node_count());
  for (graph::NodeId u = 0; u < g.node_count(); ++u)
    EXPECT_EQ(apsp[u], graph::bfs_distances(g, u));
}

TEST(Determinism, KspPathDbBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  topo::FatTree ft = topo::build_fat_tree(4);
  const graph::Graph& g = ft.topo.graph();

  exec::set_global_threads(1);
  routing::KspRouting base(g, /*k=*/8);
  base.precompute_all_pairs();

  for (unsigned threads : kThreadCounts) {
    exec::set_global_threads(threads);
    routing::KspRouting r(g, /*k=*/8);
    r.precompute_all_pairs();
    ASSERT_EQ(r.cached_pairs(), base.cached_pairs());
    for (graph::NodeId s = 0; s < g.node_count(); ++s) {
      for (graph::NodeId d = 0; d < g.node_count(); ++d) {
        if (s == d) continue;
        const auto& pa = base.paths(s, d);
        const auto& pb = r.paths(s, d);
        ASSERT_EQ(pa.size(), pb.size());
        for (std::size_t i = 0; i < pa.size(); ++i) {
          EXPECT_EQ(pa[i].nodes, pb[i].nodes);
          EXPECT_EQ(pa[i].links, pb[i].links);
        }
      }
    }
  }
}

std::vector<mcf::Commodity> broadcast_commodities(const topo::Topology& topo,
                                                  std::uint32_t k) {
  util::Rng rng(11);
  auto clusters = workload::make_clusters(
      static_cast<std::uint32_t>(topo.server_count()),
      std::min<std::uint32_t>(60, static_cast<std::uint32_t>(topo.server_count())),
      workload::Placement::Locality, k * k / 4, rng);
  auto demands = workload::cluster_traffic(clusters, workload::Pattern::Broadcast, rng);
  return mcf::aggregate_to_switches(topo, demands);
}

TEST(Determinism, GargKoenemannBoundsBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  topo::FatTree ft = topo::build_fat_tree(6);
  auto commodities = broadcast_commodities(ft.topo, 6);
  mcf::McfOptions opt;
  opt.epsilon = 0.1;

  exec::set_global_threads(1);
  mcf::McfResult base = mcf::max_concurrent_flow(ft.topo.graph(), commodities, opt);
  EXPECT_GT(base.lambda_lower, 0.0);

  for (unsigned threads : kThreadCounts) {
    exec::set_global_threads(threads);
    mcf::McfResult r = mcf::max_concurrent_flow(ft.topo.graph(), commodities, opt);
    EXPECT_EQ(r.lambda_lower, base.lambda_lower) << "threads=" << threads;
    EXPECT_EQ(r.lambda_upper, base.lambda_upper) << "threads=" << threads;
    EXPECT_EQ(r.max_congestion, base.max_congestion);
    EXPECT_EQ(r.phases, base.phases);
    EXPECT_EQ(r.augmentations, base.augmentations);
    EXPECT_EQ(r.dijkstra_runs, base.dijkstra_runs);
    EXPECT_EQ(r.arc_flow, base.arc_flow);  // exact per-arc equality
  }
}

TEST(Determinism, ExceptionFromParallelKernelPropagates) {
  PoolGuard guard;
  // A disconnected weighted pair must throw out of the parallel APL loop at
  // any thread count.
  graph::Graph g(4);
  g.add_link(0, 1);
  g.add_link(2, 3);
  std::vector<std::uint32_t> weight{1, 1, 1, 1};
  for (unsigned threads : kThreadCounts) {
    exec::set_global_threads(threads);
    EXPECT_THROW(graph::weighted_apl(g, weight, 2, 2), std::runtime_error);
  }
}

TEST(Determinism, SubstreamSeedingIndependentOfChunkSchedule) {
  PoolGuard guard;
  // The canonical parallel randomized-loop pattern: chunk i draws from
  // Rng::substream(seed, i). The collected draws must not depend on the
  // thread count.
  auto draws_at = [](unsigned threads) {
    exec::set_global_threads(threads);
    std::vector<std::uint64_t> out(64);
    exec::parallel_for(out.size(), [&](std::size_t i) {
      util::Rng rng = util::Rng::substream(123, i);
      out[i] = rng();
    });
    return out;
  };
  auto base = draws_at(1);
  EXPECT_EQ(draws_at(2), base);
  EXPECT_EQ(draws_at(8), base);
}

}  // namespace
}  // namespace flattree
