#include "exec/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "exec/parallel_for.hpp"

namespace flattree::exec {
namespace {

TEST(ThreadPool, StartStopAtEverySize) {
  // Construction spawns threads-1 workers; destruction joins them. Cycle a
  // few sizes to catch shutdown races (tsan runs this suite too).
  for (unsigned threads : {1u, 2u, 3u, 8u}) {
    for (int cycle = 0; cycle < 3; ++cycle) {
      ThreadPool pool(threads);
      EXPECT_EQ(pool.threads(), threads);
      std::atomic<int> hits{0};
      pool.run(10, [&](std::size_t) { hits.fetch_add(1); });
      EXPECT_EQ(hits.load(), 10);
    }
  }
}

TEST(ThreadPool, ZeroMeansDefaultThreads) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.threads(), default_threads());
  EXPECT_GE(default_threads(), 1u);
  EXPECT_GE(hardware_threads(), 1u);
}

TEST(ThreadPool, EveryChunkRunsExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(257);
  pool.run(counts.size(), [&](std::size_t c) { counts[c].fetch_add(1); });
  for (auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, EmptyJobIsNoOp) {
  ThreadPool pool(4);
  bool ran = false;
  pool.run(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SingleChunkRunsInline) {
  ThreadPool pool(4);
  int hits = 0;  // no atomic needed: one chunk executes on the caller
  pool.run(1, [&](std::size_t c) {
    EXPECT_EQ(c, 0u);
    ++hits;
  });
  EXPECT_EQ(hits, 1);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  for (unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_THROW(pool.run(64,
                          [&](std::size_t c) {
                            if (c == 37) throw std::runtime_error("boom");
                          }),
                 std::runtime_error);
    // The pool survives a failed job and accepts the next one.
    std::atomic<int> hits{0};
    pool.run(8, [&](std::size_t) { hits.fetch_add(1); });
    EXPECT_EQ(hits.load(), 8);
  }
}

TEST(ThreadPool, ExceptionAbortsRemainingChunks) {
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  EXPECT_THROW(pool.run(10000,
                        [&](std::size_t c) {
                          if (c == 0) throw std::runtime_error("early");
                          executed.fetch_add(1);
                        }),
               std::runtime_error);
  // Not all 9999 remaining chunks should have run after the abort flag set.
  EXPECT_LT(executed.load(), 10000);
}

TEST(ThreadPool, NestedRunRejected) {
  for (unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.run(4, [&](std::size_t) { pool.run(2, [](std::size_t) {}); }),
        std::logic_error);
  }
}

TEST(ThreadPool, InTaskReflectsExecutionContext) {
  EXPECT_FALSE(ThreadPool::in_task());
  ThreadPool pool(2);
  std::atomic<int> in_task_count{0};
  pool.run(16, [&](std::size_t) {
    if (ThreadPool::in_task()) in_task_count.fetch_add(1);
  });
  EXPECT_EQ(in_task_count.load(), 16);
  EXPECT_FALSE(ThreadPool::in_task());
}

TEST(ParallelFor, VisitsEveryIndex) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
}

TEST(ParallelFor, EmptyAndSingleElementRanges) {
  ThreadPool pool(4);
  int hits = 0;
  parallel_for(pool, 0, [&](std::size_t) { ++hits; });
  EXPECT_EQ(hits, 0);
  parallel_for(pool, 1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++hits;
  });
  EXPECT_EQ(hits, 1);

  EXPECT_EQ(parallel_reduce(pool, 0, 1, 7, [](std::size_t, std::size_t, std::size_t) { return 1; },
                            [](int a, int b) { return a + b; }),
            7);
}

TEST(ParallelFor, ChunkingIndependentOfThreadCount) {
  EXPECT_EQ(chunk_count(10, 3), 4u);
  EXPECT_EQ(chunk_count(0, 3), 0u);
  EXPECT_EQ(chunk_count(3, 0), 3u);  // grain 0 treated as 1
  Range last = chunk_range(10, 3, 3);
  EXPECT_EQ(last.begin, 9u);
  EXPECT_EQ(last.end, 10u);
}

TEST(ParallelFor, NestedCallsFallBackToSequential) {
  ThreadPool pool(4);
  std::atomic<int> inner_hits{0};
  parallel_for(pool, 8, [&](std::size_t) {
    // Nested parallel_for must not throw — it degrades to a plain loop.
    parallel_for(pool, 4, [&](std::size_t) { inner_hits.fetch_add(1); });
  });
  EXPECT_EQ(inner_hits.load(), 32);
}

TEST(ParallelFor, ReduceIsOrderedAndDeterministic) {
  // Sum of floats chosen so that reassociation changes the result: partials
  // must combine in chunk order regardless of thread count.
  std::vector<double> values(1001);
  for (std::size_t i = 0; i < values.size(); ++i)
    values[i] = (i % 2 ? 1.0 : -1.0) / static_cast<double>(i + 1);

  auto sum_at = [&](unsigned threads) {
    ThreadPool pool(threads);
    return parallel_reduce(
        pool, values.size(), /*grain=*/7, 0.0,
        [&](std::size_t b, std::size_t e, std::size_t) {
          double s = 0.0;
          for (std::size_t i = b; i < e; ++i) s += values[i];
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  double base = sum_at(1);
  for (unsigned threads : {2u, 3u, 8u}) {
    for (int rep = 0; rep < 5; ++rep) EXPECT_EQ(sum_at(threads), base);
  }
}

TEST(GlobalPool, SetThreadsReplacesPool) {
  set_global_threads(3);
  EXPECT_EQ(global_pool().threads(), 3u);
  std::atomic<int> hits{0};
  parallel_for(100, [&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 100);
  set_global_threads(1);
  EXPECT_EQ(global_pool().threads(), 1u);
}

}  // namespace
}  // namespace flattree::exec
