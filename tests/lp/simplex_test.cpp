#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace flattree::lp {
namespace {

TEST(Simplex, BasicMaximization) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> optimum 12 at (4, 0).
  LpProblem p(2);
  p.set_objective(0, 3);
  p.set_objective(1, 2);
  p.add_row({1, 1}, RowType::Le, 4);
  p.add_row({1, 3}, RowType::Le, 6);
  auto s = solve(p);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  EXPECT_NEAR(s.objective, 12.0, 1e-9);
  EXPECT_NEAR(s.x[0], 4.0, 1e-9);
  EXPECT_NEAR(s.x[1], 0.0, 1e-9);
}

TEST(Simplex, InteriorOptimum) {
  // max x + y s.t. 2x + y <= 4, x + 2y <= 4 -> (4/3, 4/3), obj 8/3.
  LpProblem p(2);
  p.set_objective(0, 1);
  p.set_objective(1, 1);
  p.add_row({2, 1}, RowType::Le, 4);
  p.add_row({1, 2}, RowType::Le, 4);
  auto s = solve(p);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  EXPECT_NEAR(s.objective, 8.0 / 3.0, 1e-9);
  EXPECT_NEAR(s.x[0], 4.0 / 3.0, 1e-9);
}

TEST(Simplex, EqualityConstraints) {
  // max x s.t. x + y == 3, y >= 0.5 -> x = 2.5.
  LpProblem p(2);
  p.set_objective(0, 1);
  p.add_row({1, 1}, RowType::Eq, 3);
  p.add_row({0, 1}, RowType::Ge, 0.5);
  auto s = solve(p);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  EXPECT_NEAR(s.objective, 2.5, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  LpProblem p(1);
  p.add_row({1}, RowType::Ge, 2);
  p.add_row({1}, RowType::Le, 1);
  EXPECT_EQ(solve(p).status, LpStatus::Infeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LpProblem p(1);
  p.set_objective(0, 1);
  p.add_row({-1}, RowType::Le, 1);
  EXPECT_EQ(solve(p).status, LpStatus::Unbounded);
}

TEST(Simplex, NegativeRhsNormalized) {
  // x >= 2 written as -x <= -2; max -x -> optimum -2.
  LpProblem p(1);
  p.set_objective(0, -1);
  p.add_row({-1}, RowType::Le, -2);
  auto s = solve(p);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  EXPECT_NEAR(s.objective, -2.0, 1e-9);
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
}

TEST(Simplex, NoConstraintsZeroOrUnbounded) {
  LpProblem p(2);
  p.set_objective(0, -1);
  auto s = solve(p);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  EXPECT_EQ(s.objective, 0.0);
  p.set_objective(1, 1);
  EXPECT_EQ(solve(p).status, LpStatus::Unbounded);
}

TEST(Simplex, SparseRowsAccumulateDuplicates) {
  LpProblem p(2);
  p.set_objective(0, 1);
  p.add_row_sparse({{0, 1.0}, {0, 1.0}, {1, 1.0}}, RowType::Le, 4);  // 2x + y <= 4
  auto s = solve(p);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
}

TEST(Simplex, DegenerateVertexHandled) {
  // Redundant constraints meeting at the optimum (classic degeneracy).
  LpProblem p(2);
  p.set_objective(0, 1);
  p.set_objective(1, 1);
  p.add_row({1, 0}, RowType::Le, 1);
  p.add_row({0, 1}, RowType::Le, 1);
  p.add_row({1, 1}, RowType::Le, 2);  // redundant at optimum
  auto s = solve(p);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
}

TEST(Simplex, RedundantEqualityRows) {
  LpProblem p(2);
  p.set_objective(0, 1);
  p.add_row({1, 1}, RowType::Eq, 2);
  p.add_row({2, 2}, RowType::Eq, 4);  // same constraint scaled
  auto s = solve(p);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
}

TEST(Simplex, MaxFlowAsLp) {
  // Max-flow 0->3 on the diamond (two unit paths): variables = 4 path
  // arcs... modelled as two path variables with a shared middle link.
  // max f1 + f2, f1 <= 1, f2 <= 1, f1 + f2 <= 1.5.
  LpProblem p(2);
  p.set_objective(0, 1);
  p.set_objective(1, 1);
  p.add_row({1, 0}, RowType::Le, 1);
  p.add_row({0, 1}, RowType::Le, 1);
  p.add_row({1, 1}, RowType::Le, 1.5);
  auto s = solve(p);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  EXPECT_NEAR(s.objective, 1.5, 1e-9);
}

TEST(Simplex, RandomLpsFeasibilityAndOptimalityCertificates) {
  // Random bounded LPs: verify the returned x is feasible and no
  // coordinate ascent direction improves (weak certificate).
  util::Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    std::size_t vars = 2 + rng.index(3);
    std::size_t rows = 2 + rng.index(4);
    LpProblem p(vars);
    for (std::size_t v = 0; v < vars; ++v) p.set_objective(v, rng.uniform(0.1, 2.0));
    for (std::size_t r = 0; r < rows; ++r) {
      std::vector<double> coeffs(vars);
      for (auto& c : coeffs) c = rng.uniform(0.1, 1.0);  // positive -> bounded
      p.add_row(coeffs, RowType::Le, rng.uniform(1.0, 5.0));
    }
    auto s = solve(p);
    ASSERT_EQ(s.status, LpStatus::Optimal);
    for (std::size_t r = 0; r < rows; ++r) {
      double lhs = 0;
      for (std::size_t v = 0; v < vars; ++v) lhs += p.row_coeffs(r)[v] * s.x[v];
      EXPECT_LE(lhs, p.row_rhs(r) + 1e-7);
    }
    for (double xv : s.x) EXPECT_GE(xv, -1e-9);
  }
}

TEST(LpProblem, RowAccessorsAndErrors) {
  LpProblem p(2);
  p.add_row({1, 2}, RowType::Ge, 3);
  EXPECT_EQ(p.num_rows(), 1u);
  EXPECT_EQ(p.row_type(0), RowType::Ge);
  EXPECT_EQ(p.row_rhs(0), 3.0);
  EXPECT_EQ(p.row_coeffs(0)[1], 2.0);
  EXPECT_THROW(p.add_row({1}, RowType::Le, 1), std::invalid_argument);
  EXPECT_THROW(p.set_objective(5, 1.0), std::out_of_range);
}

TEST(LpStatus, ToStringCoverage) {
  EXPECT_STREQ(to_string(LpStatus::Optimal), "optimal");
  EXPECT_STREQ(to_string(LpStatus::Infeasible), "infeasible");
  EXPECT_STREQ(to_string(LpStatus::Unbounded), "unbounded");
  EXPECT_STREQ(to_string(LpStatus::IterationLimit), "iteration-limit");
}

}  // namespace
}  // namespace flattree::lp
