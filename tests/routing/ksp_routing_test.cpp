#include "routing/ksp_routing.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/flat_tree.hpp"

namespace flattree::routing {
namespace {

graph::Graph ring(std::size_t n) {
  graph::Graph g(n);
  for (graph::NodeId i = 0; i < n; ++i)
    g.add_link(i, static_cast<graph::NodeId>((i + 1) % n));
  return g;
}

TEST(KspRouting, ReturnsUpToKPaths) {
  graph::Graph g = ring(6);
  KspRouting routing(g, 4);
  // A ring has exactly 2 loopless paths between any pair.
  EXPECT_EQ(routing.paths(0, 3).size(), 2u);
}

TEST(KspRouting, PathsSortedByLength) {
  graph::Graph g = ring(7);
  KspRouting routing(g, 4);
  const auto& paths = routing.paths(0, 2);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_LE(paths[0].length, paths[1].length);
  EXPECT_DOUBLE_EQ(paths[0].length, 2.0);
  EXPECT_DOUBLE_EQ(paths[1].length, 5.0);
}

TEST(KspRouting, SelectionUsesNonShortestPathsToo) {
  graph::Graph g = ring(6);
  KspRouting routing(g, 8);
  std::set<std::size_t> lengths;
  for (std::uint64_t flow = 0; flow < 100; ++flow)
    lengths.insert(routing.select(0, 2, flow).links.size());
  EXPECT_EQ(lengths.size(), 2u);  // both ring directions get traffic
}

TEST(KspRouting, DeterministicSelection) {
  graph::Graph g = ring(6);
  KspRouting routing(g, 8);
  EXPECT_EQ(routing.select(0, 3, 7).nodes, routing.select(0, 3, 7).nodes);
}

TEST(KspRouting, DisconnectedThrows) {
  graph::Graph g(3);
  g.add_link(0, 1);
  KspRouting routing(g, 4);
  EXPECT_THROW(routing.paths(0, 2), std::runtime_error);
}

TEST(KspRouting, WorksOnConvertedFlatTree) {
  core::FlatTreeConfig cfg;
  cfg.k = 4;
  core::FlatTreeNetwork net(cfg);
  topo::Topology grg = net.build(core::Mode::GlobalRandom);
  KspRouting routing(grg.graph(), 8);
  const auto& paths = routing.paths(0, static_cast<graph::NodeId>(grg.switch_count() - 1));
  EXPECT_GE(paths.size(), 2u);
  for (const auto& p : paths) {
    EXPECT_EQ(p.nodes.front(), 0u);
    EXPECT_EQ(p.nodes.back(), grg.switch_count() - 1);
  }
}

}  // namespace
}  // namespace flattree::routing
