#include "routing/ecmp.hpp"

#include <gtest/gtest.h>

#include <map>

#include "topo/fat_tree.hpp"

namespace flattree::routing {
namespace {

graph::Graph diamond() {
  graph::Graph g(4);
  g.add_link(0, 1);
  g.add_link(1, 3);
  g.add_link(0, 2);
  g.add_link(2, 3);
  return g;
}

TEST(Ecmp, PathSetContainsAllShortest) {
  graph::Graph g = diamond();
  EcmpRouting routing(g);
  const auto& paths = routing.paths(0, 3);
  EXPECT_EQ(paths.size(), 2u);
  for (const auto& p : paths) EXPECT_EQ(p.links.size(), 2u);
}

TEST(Ecmp, SelectionDeterministic) {
  graph::Graph g = diamond();
  EcmpRouting routing(g);
  const graph::Path& p1 = routing.select(0, 3, 42);
  const graph::Path& p2 = routing.select(0, 3, 42);
  EXPECT_EQ(p1.nodes, p2.nodes);
}

TEST(Ecmp, DifferentFlowsSpreadAcrossPaths) {
  graph::Graph g = diamond();
  EcmpRouting routing(g);
  std::map<std::vector<graph::NodeId>, int> counts;
  for (std::uint64_t flow = 0; flow < 200; ++flow)
    ++counts[routing.select(0, 3, flow).nodes];
  ASSERT_EQ(counts.size(), 2u);
  for (const auto& [nodes, count] : counts) EXPECT_GT(count, 50);
}

TEST(Ecmp, SaltChangesSelection) {
  graph::Graph g = diamond();
  EcmpRouting r0(g, 64, 0), r1(g, 64, 12345);
  int differing = 0;
  for (std::uint64_t flow = 0; flow < 64; ++flow)
    if (r0.select(0, 3, flow).nodes != r1.select(0, 3, flow).nodes) ++differing;
  EXPECT_GT(differing, 10);
}

TEST(Ecmp, MaxPathsCapRespected) {
  // 6 parallel 2-hop routes, cap at 3.
  graph::Graph g(8);
  for (graph::NodeId mid = 1; mid <= 6; ++mid) {
    g.add_link(0, mid);
    g.add_link(mid, 7);
  }
  EcmpRouting routing(g, 3);
  EXPECT_EQ(routing.paths(0, 7).size(), 3u);
}

TEST(Ecmp, DisconnectedThrows) {
  graph::Graph g(2);
  EcmpRouting routing(g);
  EXPECT_THROW(routing.paths(0, 1), std::runtime_error);
}

TEST(Ecmp, FatTreeEcmpPathCount) {
  // Inter-pod pairs in a k-ary fat-tree have (k/2)^2 shortest paths.
  topo::FatTree ft = topo::build_fat_tree(4);
  EcmpRouting routing(ft.topo.graph(), 64);
  const auto& paths = routing.paths(ft.edge_switch(0, 0), ft.edge_switch(1, 0));
  EXPECT_EQ(paths.size(), 4u);
  for (const auto& p : paths) EXPECT_EQ(p.links.size(), 4u);
  // Intra-pod pairs have k/2 equal-cost paths (one per aggregation switch).
  EXPECT_EQ(routing.paths(ft.edge_switch(0, 0), ft.edge_switch(0, 1)).size(), 2u);
}

TEST(Ecmp, CachesPathSets) {
  graph::Graph g = diamond();
  EcmpRouting routing(g);
  const auto& a = routing.paths(0, 3);
  const auto& b = routing.paths(0, 3);
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace flattree::routing
