#include "routing/fib.hpp"

#include <gtest/gtest.h>

#include <map>

#include "core/flat_tree.hpp"
#include "routing/ecmp.hpp"
#include "routing/ksp_routing.hpp"
#include "topo/fat_tree.hpp"

namespace flattree::routing {
namespace {

topo::Topology line3() {
  topo::Topology t;
  for (int i = 0; i < 3; ++i) t.add_switch(topo::SwitchKind::Edge, 0, i, 4);
  t.add_link(0, 1, topo::LinkOrigin::Random);
  t.add_link(1, 2, topo::LinkOrigin::Random);
  t.add_server(0);
  t.add_server(2);
  return t;
}

TEST(Fib, AddAndLookup) {
  Fib fib(3);
  fib.add_route(0, 2, 0);
  fib.add_route(1, 2, 1);
  fib.add_route(0, 2, 0);  // duplicate ignored
  EXPECT_EQ(fib.next_hops(0, 2).size(), 1u);
  EXPECT_EQ(fib.next_hops(1, 2).size(), 1u);
  EXPECT_TRUE(fib.next_hops(2, 0).empty());
  EXPECT_EQ(fib.rule_count(), 2u);
  EXPECT_EQ(fib.entry_count(), 2u);
}

TEST(Fib, SelectDeterministicAndThrowsOnMiss) {
  Fib fib(3);
  fib.add_route(0, 2, 0);
  EXPECT_EQ(fib.select(0, 2, 99), 0u);
  EXPECT_EQ(fib.select(0, 2, 99), fib.select(0, 2, 99));
  EXPECT_THROW(fib.select(1, 2, 0), std::runtime_error);
}

TEST(Fib, MaxRulesPerSwitch) {
  Fib fib(2);
  fib.add_route(0, 1, 0);
  fib.add_route(0, 1, 1);
  fib.add_route(1, 0, 0);
  EXPECT_EQ(fib.max_rules_per_switch(), 2u);
}

TEST(AllServerPairs, OnlyHostingSwitches) {
  topo::Topology t = line3();
  auto pairs = all_server_pairs(t);
  ASSERT_EQ(pairs.size(), 2u);  // (0,2) and (2,0); switch 1 hosts nothing
  EXPECT_EQ(pairs[0].first, 0u);
  EXPECT_EQ(pairs[0].second, 2u);
}

TEST(CompileFib, InstallsHopByHop) {
  topo::Topology t = line3();
  EcmpRouting routing(t.graph());
  Fib fib = compile_fib(t, routing, all_server_pairs(t));
  EXPECT_EQ(fib.next_hops(0, 2).size(), 1u);
  EXPECT_EQ(fib.next_hops(1, 2).size(), 1u);
  EXPECT_EQ(fib.next_hops(2, 0).size(), 1u);
  EXPECT_EQ(fib.next_hops(1, 0).size(), 1u);
}

TEST(VerifyFib, EcmpOnFatTreeIsLoopFree) {
  topo::FatTree ft = topo::build_fat_tree(4);
  EcmpRouting routing(ft.topo.graph());
  auto pairs = all_server_pairs(ft.topo);
  Fib fib = compile_fib(ft.topo, routing, pairs);
  FibVerification v = verify_fib(ft.topo, fib, pairs);
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.pairs_checked, pairs.size());
  EXPECT_LE(v.max_walk_hops, 4u);  // fat-tree switch diameter
}

TEST(VerifyFib, EcmpOnConvertedFlatTreeIsLoopFree) {
  core::FlatTreeConfig cfg;
  cfg.k = 6;
  core::FlatTreeNetwork net(cfg);
  topo::Topology grg = net.build(core::Mode::GlobalRandom);
  EcmpRouting routing(grg.graph());
  auto pairs = all_server_pairs(grg);
  Fib fib = compile_fib(grg, routing, pairs);
  FibVerification v = verify_fib(grg, fib, pairs);
  EXPECT_TRUE(v.ok) << v.error;
}

TEST(VerifyFib, HopByHopKspOnRingLoops) {
  // Ring of 6 with sources 0 and 3: their KSP detour paths toward shared
  // destinations traverse nodes 4/5 in opposite directions, so hop-by-hop
  // installation lets a walk bounce 4 -> 5 -> 4 (the classic reason KSP
  // needs pinned paths rather than per-hop rules).
  topo::Topology t;
  for (int i = 0; i < 6; ++i) t.add_switch(topo::SwitchKind::Edge, 0, i, 4);
  for (graph::NodeId i = 0; i < 6; ++i)
    t.add_link(i, (i + 1) % 6, topo::LinkOrigin::Random);
  t.add_server(0);
  t.add_server(2);
  t.add_server(3);
  KspRouting routing(t.graph(), 4);
  auto pairs = all_server_pairs(t);
  Fib fib = compile_fib(t, routing, pairs);
  FibVerification v = verify_fib(t, fib, pairs);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("loop"), std::string::npos);
}

TEST(VerifyFib, DetectsBlackhole) {
  topo::Topology t = line3();
  Fib fib(3);
  fib.add_route(0, 2, 0);  // installed at 0 but missing at 1
  FibVerification v = verify_fib(t, fib, {{0, 2}});
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("blackhole"), std::string::npos);
}

TEST(VerifyFib, HopLimitEnforced) {
  topo::Topology t = line3();
  EcmpRouting routing(t.graph());
  auto pairs = all_server_pairs(t);
  Fib fib = compile_fib(t, routing, pairs);
  FibVerification tight = verify_fib(t, fib, pairs, /*hop_limit=*/1);
  EXPECT_FALSE(tight.ok);
  EXPECT_NE(tight.error.find("exceeds"), std::string::npos);
}

TEST(FibSelect, StableAcrossRebuildsAndThreadCounts) {
  // select() is a pure function of (at, dst, flow_id): two independently
  // compiled FIBs over the same topology must route every flow id the
  // same way, regardless of compilation order or the exec pool size the
  // enclosing bench happened to use (nothing in the FIB reads the pool).
  topo::FatTree ft = topo::build_fat_tree(4);
  EcmpRouting r1(ft.topo.graph());
  EcmpRouting r2(ft.topo.graph());
  auto pairs = all_server_pairs(ft.topo);
  Fib a = compile_fib(ft.topo, r1, pairs);
  Fib b = compile_fib(ft.topo, r2, pairs);
  for (auto [src, dst] : pairs)
    for (std::uint64_t flow = 0; flow < 32; ++flow)
      EXPECT_EQ(a.select(src, dst, flow), b.select(src, dst, flow));
}

TEST(FibSelect, FlowSweepSpreadsAcrossEqualCostHops) {
  // Distribution sanity over a deterministic flow-id sweep: an edge switch
  // with two equal-cost uplinks should see a near-even split (the hash is
  // mix64; an exact bound would overfit, but 40/60 catches a broken hash
  // or an always-first-hop regression).
  topo::FatTree ft = topo::build_fat_tree(4);
  EcmpRouting routing(ft.topo.graph());
  auto pairs = all_server_pairs(ft.topo);
  Fib fib = compile_fib(ft.topo, routing, pairs);
  auto [src, dst] = pairs[0];
  graph::NodeId inter_pod_dst = 0;
  bool found = false;
  for (auto [s, d] : pairs)
    if (s == src && fib.next_hops(src, d).size() >= 2) {
      inter_pod_dst = d;
      found = true;
      break;
    }
  ASSERT_TRUE(found);
  const auto& hops = fib.next_hops(src, inter_pod_dst);
  std::map<graph::LinkId, int> hits;
  const int sweep = 4000;
  for (int flow = 0; flow < sweep; ++flow)
    ++hits[fib.select(src, inter_pod_dst, static_cast<std::uint64_t>(flow))];
  for (const auto& [link, count] : hits) {
    double share = static_cast<double>(count) / sweep;
    double even = 1.0 / static_cast<double>(hops.size());
    EXPECT_GT(share, even - 0.1) << "link " << link;
    EXPECT_LT(share, even + 0.1) << "link " << link;
  }
  EXPECT_EQ(hits.size(), hops.size());  // every hop gets traffic
}

TEST(VerifyFib, RuleCountsReasonableOnFatTree) {
  topo::FatTree ft = topo::build_fat_tree(4);
  EcmpRouting routing(ft.topo.graph());
  auto pairs = all_server_pairs(ft.topo);
  Fib fib = compile_fib(ft.topo, routing, pairs);
  // 8 hosting edge switches; every switch needs entries for at most 8
  // destinations (7 at edges).
  EXPECT_LE(fib.entry_count(), ft.topo.switch_count() * 8);
  EXPECT_GT(fib.rule_count(), fib.entry_count());  // ECMP multipath
}

}  // namespace
}  // namespace flattree::routing
