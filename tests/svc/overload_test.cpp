// Overload protection (ISSUE 10): the pre-parse line-size cap, per-session
// admission control, and the deterministic deadline floor — each with its
// pinned svc.overload.* code, its journal gap class, a negative control
// proving the cap is off by default, and the byte-identity check that
// shedding decisions do not depend on the thread count.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "exec/parallel_for.hpp"
#include "obs/json.hpp"
#include "svc/service.hpp"

namespace flattree::svc {
namespace {

struct RunResult {
  std::string responses;
  std::string journal;
  ServiceStats stats;
};

RunResult run_service(const std::string& script, ServiceOptions opt = {}) {
  std::ostringstream journal;
  opt.journal = &journal;
  Service service(opt);
  std::istringstream in(script);
  std::ostringstream out;
  service.run(in, out);
  return {out.str(), journal.str(), service.stats()};
}

/// Parses the `index`-th response line (0-based) into a JsonValue.
obs::JsonValue response_at(const std::string& responses, std::size_t index) {
  std::istringstream in(responses);
  std::string line;
  for (std::size_t i = 0; i <= index; ++i) {
    EXPECT_TRUE(static_cast<bool>(std::getline(in, line))) << "response " << index;
  }
  obs::JsonValue v;
  obs::JsonError err;
  EXPECT_TRUE(obs::json_parse(line, v, &err)) << line << " -> " << err.code;
  return v;
}

bool response_ok(const obs::JsonValue& v) {
  const obs::JsonValue* ok = v.find("ok");
  return ok != nullptr && ok->is_bool() && ok->as_bool();
}

std::string error_code(const obs::JsonValue& v) {
  const obs::JsonValue* err = v.find("error");
  if (err == nullptr) return "";
  const obs::JsonValue* code = err->find("code");
  return code != nullptr ? code->as_string() : "";
}

TEST(Overload, LineCapShedsBeforeParsing) {
  // The long line is not even valid JSON: the cap must shed it without the
  // parser ever seeing it, as an `oversize` gap frame in the journal.
  std::string long_line(100, 'x');
  std::string script = "{\"op\":\"build\",\"k\":4}\n" + long_line +
                       "\n{\"op\":\"query\"}\n";
  ServiceOptions opt;
  opt.max_line_bytes = 64;
  RunResult r = run_service(script, opt);

  EXPECT_EQ(error_code(response_at(r.responses, 1)), "svc.overload.line_too_long");
  EXPECT_TRUE(response_ok(response_at(r.responses, 2)));  // later lines unaffected
  EXPECT_EQ(r.stats.shed_oversize, 1u);
  EXPECT_EQ(r.stats.rejected, 1u);
  EXPECT_NE(r.journal.find("x 2 oversize"), std::string::npos) << r.journal;
  EXPECT_EQ(r.journal.find('x', r.journal.find("x 2 oversize") + 1),
            std::string::npos);  // exactly one gap frame
}

TEST(Overload, CapsAreOffByDefault) {
  // The same hostile line parses (and is rejected as JSON, not shed) when
  // no cap is armed: overload protection is strictly opt-in.
  std::string long_line(100, 'x');
  RunResult r = run_service(long_line + "\n");
  EXPECT_EQ(r.stats.shed_oversize, 0u);
  EXPECT_EQ(r.stats.shed_queue, 0u);
  EXPECT_EQ(r.stats.shed_deadline, 0u);
  EXPECT_EQ(r.stats.rejected, 1u);  // still a parse rejection
  EXPECT_NE(error_code(response_at(r.responses, 0)), "svc.overload.line_too_long");
}

TEST(Overload, QueueCapBoundsPerSessionAdmission) {
  // With max_queued=1 the second same-session read-only request in a batch
  // is shed at admission; it renders in stream order as a `queue` gap.
  std::string script =
      "{\"op\":\"build\",\"k\":4}\n"
      "{\"op\":\"query\",\"id\":\"a\"}\n"
      "{\"op\":\"query\",\"id\":\"b\"}\n";
  ServiceOptions opt;
  opt.max_queued = 1;
  opt.max_batch = 8;  // large enough that nothing flushes between the queries
  RunResult r = run_service(script, opt);

  EXPECT_TRUE(response_ok(response_at(r.responses, 1)));
  EXPECT_EQ(error_code(response_at(r.responses, 2)), "svc.overload.queue_full");
  EXPECT_EQ(r.stats.shed_queue, 1u);
  EXPECT_NE(r.journal.find("x 3 queue"), std::string::npos) << r.journal;
}

TEST(Overload, QueueDepthIsPerSession) {
  // Admission control is a per-shard bound, not a global one: one queued
  // query per session fits under max_queued=1 even in the same batch.
  std::string script =
      "{\"op\":\"build\",\"k\":4}\n"
      "{\"op\":\"build\",\"k\":4,\"session\":1}\n"
      "{\"op\":\"query\"}\n"
      "{\"op\":\"query\",\"session\":1}\n";
  ServiceOptions opt;
  opt.max_queued = 1;
  opt.max_batch = 8;
  RunResult r = run_service(script, opt);

  EXPECT_TRUE(response_ok(response_at(r.responses, 2)));
  EXPECT_TRUE(response_ok(response_at(r.responses, 3)));
  EXPECT_EQ(r.stats.shed_queue, 0u);
}

TEST(Overload, DeadlineFloorShedsQueuedHopelessRequests) {
  // The floor is deterministic: each queued request ahead costs at least
  // min_augmentations / augmentations_per_ms = 32/4000 = 0.008 ms at the
  // defaults. A 0.001 ms deadline behind one queued query can never be met
  // and is shed; the same deadline at depth 0 is admitted (the SLO layer
  // truncates the solve instead).
  std::string shed_script =
      "{\"op\":\"build\",\"k\":4}\n"
      "{\"op\":\"query\",\"id\":\"a\"}\n"
      "{\"op\":\"query\",\"id\":\"b\",\"deadline_ms\":0.001}\n";
  ServiceOptions opt;
  opt.max_queued = 8;  // arms the floor without tripping queue_full
  opt.max_batch = 8;
  RunResult r = run_service(shed_script, opt);
  EXPECT_EQ(error_code(response_at(r.responses, 2)), "svc.overload.deadline");
  EXPECT_EQ(r.stats.shed_deadline, 1u);
  EXPECT_NE(r.journal.find("x 3 deadline"), std::string::npos) << r.journal;

  std::string ok_script =
      "{\"op\":\"build\",\"k\":4}\n"
      "{\"op\":\"query\",\"id\":\"b\",\"deadline_ms\":0.001}\n";
  RunResult front = run_service(ok_script, opt);
  EXPECT_TRUE(response_ok(response_at(front.responses, 1)));
  EXPECT_EQ(front.stats.shed_deadline, 0u);
}

TEST(Overload, ShedRequestsAreNeverEvaluated) {
  // Shedding must save the work, not just the response: the solve counter
  // matches a run that never submitted the shed line at all.
  ServiceOptions opt;
  opt.max_queued = 1;
  opt.max_batch = 8;
  RunResult with_shed = run_service(
      "{\"op\":\"build\",\"k\":4}\n"
      "{\"op\":\"query\",\"id\":\"a\"}\n"
      "{\"op\":\"query\",\"id\":\"b\"}\n",
      opt);
  RunResult without = run_service(
      "{\"op\":\"build\",\"k\":4}\n"
      "{\"op\":\"query\",\"id\":\"a\"}\n",
      opt);
  EXPECT_EQ(with_shed.stats.shed_queue, 1u);
  EXPECT_EQ(with_shed.stats.solves, without.stats.solves);
}

TEST(Overload, SheddingIsByteIdenticalAcrossThreads) {
  // Admission decisions depend only on stream order, never on scheduling:
  // the full overload battery sheds the same lines with the same bytes at
  // any thread count.
  // One shed of each class: c hits the deadline floor at depth 1 (shed
  // entries hold no depth, so b still fits), d trips queue_full at depth 2,
  // and the non-JSON line trips the byte cap.
  std::string script =
      "{\"op\":\"build\",\"k\":4}\n"
      "{\"op\":\"query\",\"id\":\"a\"}\n"
      "{\"op\":\"query\",\"id\":\"c\",\"deadline_ms\":0.001}\n"
      "{\"op\":\"query\",\"id\":\"b\"}\n"
      "{\"op\":\"query\",\"id\":\"d\"}\n" +
      std::string(100, 'x') +
      "\n"
      "{\"op\":\"stats\"}\n";
  ServiceOptions opt;
  opt.max_line_bytes = 64;
  opt.max_queued = 2;
  opt.max_batch = 8;

  exec::set_global_threads(1);
  RunResult one = run_service(script, opt);
  EXPECT_EQ(one.stats.shed_deadline + one.stats.shed_queue + one.stats.shed_oversize,
            3u)
      << one.responses;

  exec::set_global_threads(8);
  RunResult eight = run_service(script, opt);
  EXPECT_EQ(eight.responses, one.responses);
  EXPECT_EQ(eight.journal, one.journal);
  exec::set_global_threads(0);
}

}  // namespace
}  // namespace flattree::svc
