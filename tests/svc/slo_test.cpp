// SLO deadline budgets: the deadline_ms -> augmentation-budget map must be
// a pure, monotone function of the request (no wall clock), and a budgeted
// solve must stay certified — truncation widens the bracket, it never
// invalidates it. The warm path must remain bitwise identical to cold
// under a budget, because the service's batch layout (warm sequential vs
// cold parallel) must never show in the response bytes.

#include "svc/slo.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "check/certify.hpp"

namespace flattree::svc {
namespace {

using graph::Graph;
using graph::NodeId;

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Ring + chords (the inc::McfWarmCache test graph): enough path diversity
/// that GK needs many augmentations, so small budgets truncate.
Graph test_graph() {
  Graph g(8);
  for (NodeId v = 0; v < 8; ++v) g.add_link(v, static_cast<NodeId>((v + 1) % 8));
  g.add_link(0, 4, 2.0);
  g.add_link(2, 6, 2.0);
  g.add_link(1, 5);
  return g;
}

std::vector<mcf::Commodity> test_commodities() {
  return {{0, 3, 1.0}, {1, 6, 1.0}, {4, 7, 0.5}, {2, 5, 1.5}};
}

TEST(SloBudget, ZeroDeadlineMeansUnlimited) {
  SloPolicy policy;
  EXPECT_EQ(budget_augmentations(policy, 0.0), 0u);
  EXPECT_EQ(budget_augmentations(policy, -1.0), 0u);
}

TEST(SloBudget, ScalesWithDeadlineAndPolicy) {
  SloPolicy policy;
  policy.augmentations_per_ms = 1000.0;
  policy.min_augmentations = 8;
  EXPECT_EQ(budget_augmentations(policy, 2.0), 2000u);
  EXPECT_EQ(budget_augmentations(policy, 0.5), 500u);
  policy.augmentations_per_ms = 250.0;
  EXPECT_EQ(budget_augmentations(policy, 2.0), 500u);
}

TEST(SloBudget, FloorsTinyDeadlines) {
  // Even an unmeetable deadline buys enough work for a usable bound.
  SloPolicy policy;
  policy.augmentations_per_ms = 1000.0;
  policy.min_augmentations = 32;
  EXPECT_EQ(budget_augmentations(policy, 0.001), 32u);
  EXPECT_EQ(budget_augmentations(policy, 0.032), 32u);
  EXPECT_EQ(budget_augmentations(policy, 0.033), 33u);
}

TEST(SloBudget, MonotoneInDeadline) {
  SloPolicy policy;
  std::uint64_t prev = 0;
  for (double dl : {0.01, 0.1, 1.0, 10.0, 100.0, 1000.0}) {
    std::uint64_t b = budget_augmentations(policy, dl);
    EXPECT_GE(b, prev) << dl;
    prev = b;
  }
}

TEST(SloBudget, SaturatesInsteadOfOverflowing) {
  SloPolicy policy;
  std::uint64_t cap = budget_augmentations(policy, 1e300);
  EXPECT_EQ(cap, 9000000000000000000ull);
  EXPECT_EQ(budget_augmentations(policy, 1e308), cap);
}

TEST(SloSolveTest, UnlimitedBudgetIsNotTruncated) {
  Graph g = test_graph();
  SloSolve s = solve_with_budget(g, test_commodities(), 0.12, /*budget=*/0,
                                 /*warm=*/nullptr);
  EXPECT_FALSE(s.result.truncated);
  EXPECT_TRUE(s.certified);
  EXPECT_GT(s.result.lambda_lower, 0.0);
  EXPECT_GE(s.result.lambda_upper, s.result.lambda_lower);
}

TEST(SloSolveTest, TinyBudgetTruncatesButStaysCertified) {
  Graph g = test_graph();
  SloSolve s = solve_with_budget(g, test_commodities(), 0.12, /*budget=*/3,
                                 /*warm=*/nullptr);
  EXPECT_TRUE(s.result.truncated);
  EXPECT_EQ(s.budget, 3u);
  // The truncated answer is still externally verified evidence: the flows
  // are feasible and the bracket is valid, just wider.
  EXPECT_TRUE(s.certified);
  SloSolve full = solve_with_budget(g, test_commodities(), 0.12, 0, nullptr);
  EXPECT_LE(s.result.lambda_lower, full.result.lambda_lower);
  EXPECT_GE(s.result.lambda_upper, full.result.lambda_lower);
}

TEST(SloSolveTest, EmptyCommoditiesAreVacuouslyCertified) {
  Graph g = test_graph();
  SloSolve s = solve_with_budget(g, {}, 0.12, 100, nullptr);
  EXPECT_TRUE(s.certified);
  EXPECT_FALSE(s.result.truncated);
  EXPECT_EQ(s.result.lambda_lower, 0.0);
}

TEST(SloSolveTest, WarmResumeIsBitwiseIdenticalUnderBudget) {
  Graph g = test_graph();
  auto commodities = test_commodities();
  inc::McfWarmCache warm(inc::McfWarmCacheOptions{/*exact_only=*/true});

  // A budget generous enough to converge: the state exports converged and
  // the identical instance resumes exactly.
  const std::uint64_t budget = 1000000;
  SloSolve cold = solve_with_budget(g, commodities, 0.12, budget, nullptr);
  ASSERT_FALSE(cold.result.truncated);
  solve_with_budget(g, commodities, 0.12, budget, &warm);  // populate
  SloSolve resumed = solve_with_budget(g, commodities, 0.12, budget, &warm);
  EXPECT_EQ(warm.last_tier(), inc::WarmTier::ExactResume);
  EXPECT_TRUE(bits_equal(resumed.result.lambda_lower, cold.result.lambda_lower));
  EXPECT_TRUE(bits_equal(resumed.result.lambda_upper, cold.result.lambda_upper));
  EXPECT_EQ(resumed.certified, cold.certified);
}

TEST(SloSolveTest, TruncatedSolvesNeverResume) {
  // A truncated run stops before D(l) >= 1, so its exported state is not
  // converged and the next identical solve runs cold — warm caching can
  // never make a budgeted answer diverge from the cold path.
  Graph g = test_graph();
  auto commodities = test_commodities();
  inc::McfWarmCache warm(inc::McfWarmCacheOptions{/*exact_only=*/true});

  SloSolve cold = solve_with_budget(g, commodities, 0.12, /*budget=*/10, nullptr);
  ASSERT_TRUE(cold.result.truncated);
  solve_with_budget(g, commodities, 0.12, 10, &warm);
  SloSolve again = solve_with_budget(g, commodities, 0.12, 10, &warm);
  EXPECT_EQ(warm.last_tier(), inc::WarmTier::Cold);
  EXPECT_TRUE(bits_equal(again.result.lambda_lower, cold.result.lambda_lower));
  EXPECT_TRUE(bits_equal(again.result.lambda_upper, cold.result.lambda_upper));
}

TEST(SloSolveTest, BudgetIsPartOfTheWarmInstanceKey) {
  // A resume across different budgets would replay the old budget's
  // trajectory; the cache must treat a budget change as a new instance.
  Graph g = test_graph();
  auto commodities = test_commodities();
  inc::McfWarmCache warm(inc::McfWarmCacheOptions{/*exact_only=*/true});

  solve_with_budget(g, commodities, 0.12, /*budget=*/1000000, &warm);  // converges
  SloSolve cold = solve_with_budget(g, commodities, 0.12, /*budget=*/0, nullptr);
  SloSolve switched = solve_with_budget(g, commodities, 0.12, /*budget=*/0, &warm);
  EXPECT_EQ(warm.last_tier(), inc::WarmTier::Cold);  // key mismatch, no resume
  EXPECT_TRUE(bits_equal(switched.result.lambda_lower, cold.result.lambda_lower));
  EXPECT_TRUE(bits_equal(switched.result.lambda_upper, cold.result.lambda_upper));
}

}  // namespace
}  // namespace flattree::svc
