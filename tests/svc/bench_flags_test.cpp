// bench flag handling (ISSUE 6 satellite): bench::ArgPeeler — the
// wrapper-main half of the unknown-flag contract (util::CliParser rejects
// unknown flags itself; ArgPeeler is for mains like bench_micro that must
// strip repo flags before handing argv to another parser) — plus a
// regression run of the real bench_micro binary: an unknown flag must
// fail loudly and list the valid flags instead of being swallowed.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"

namespace flattree {
namespace {

/// Builds a mutable argv from string literals (peel edits it in place).
struct Argv {
  explicit Argv(std::vector<std::string> args) : storage(std::move(args)) {
    for (std::string& s : storage) ptrs.push_back(s.data());
    argc = static_cast<int>(ptrs.size());
  }
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
  int argc = 0;
  char** argv() { return ptrs.data(); }
};

TEST(ArgPeeler, PeelsBothValueForms) {
  bench::ArgPeeler peeler;
  std::string metrics, trace;
  peeler.add_string("--metrics-json", &metrics, "run manifest path");
  peeler.add_string("--trace", &trace, "span trace path");

  Argv a({"bench_micro", "--metrics-json=m.json", "--benchmark_filter=apl",
          "--trace", "t.jsonl"});
  std::string error;
  ASSERT_TRUE(peeler.peel(a.argc, a.argv(), &error)) << error;
  EXPECT_EQ(metrics, "m.json");
  EXPECT_EQ(trace, "t.jsonl");
  // Unregistered arguments survive, order preserved, argc shrunk.
  ASSERT_EQ(a.argc, 2);
  EXPECT_STREQ(a.argv()[0], "bench_micro");
  EXPECT_STREQ(a.argv()[1], "--benchmark_filter=apl");
}

TEST(ArgPeeler, MissingValueIsAnError) {
  bench::ArgPeeler peeler;
  std::string metrics;
  peeler.add_string("--metrics-json", &metrics, "run manifest path");

  Argv a({"bench_micro", "--metrics-json"});
  std::string error;
  EXPECT_FALSE(peeler.peel(a.argc, a.argv(), &error));
  EXPECT_NE(error.find("--metrics-json"), std::string::npos);
  EXPECT_NE(error.find("requires a value"), std::string::npos);
}

TEST(ArgPeeler, LeavesUnknownFlagsForTheCaller) {
  bench::ArgPeeler peeler;
  std::string metrics;
  peeler.add_string("--metrics-json", &metrics, "run manifest path");

  Argv a({"bench_micro", "--bogus", "--metrics-json=m.json", "--also-bogus=1"});
  std::string error;
  ASSERT_TRUE(peeler.peel(a.argc, a.argv(), &error));
  ASSERT_EQ(a.argc, 3);
  EXPECT_STREQ(a.argv()[1], "--bogus");
  EXPECT_STREQ(a.argv()[2], "--also-bogus=1");
}

TEST(ArgPeeler, DashedPacketFlagsPeelInBothValueForms) {
  // The packet-bench flag family (ISSUE 7): multi-dash names must peel in
  // both --name=value and --name value forms like any other flag.
  bench::ArgPeeler peeler;
  std::string queue, nic, prop;
  peeler.add_string("--queue-packets", &queue, "queue capacity");
  peeler.add_string("--nic-rate", &nic, "injection rate");
  peeler.add_string("--prop-delay", &prop, "per-hop delay");

  Argv a({"bench", "--queue-packets=32", "--nic-rate", "4.0", "--prop-delay=0.01"});
  std::string error;
  ASSERT_TRUE(peeler.peel(a.argc, a.argv(), &error)) << error;
  EXPECT_EQ(queue, "32");
  EXPECT_EQ(nic, "4.0");
  EXPECT_EQ(prop, "0.01");
  ASSERT_EQ(a.argc, 1);
}

TEST(ArgPeeler, PrefixFlagDoesNotSwallowLongerFlag) {
  // --queue must not match --queue-packets (peeling is exact-name plus a
  // value separator, not prefix matching).
  bench::ArgPeeler peeler;
  std::string queue;
  peeler.add_string("--queue", &queue, "legacy name");
  Argv a({"bench", "--queue-packets=32"});
  std::string error;
  ASSERT_TRUE(peeler.peel(a.argc, a.argv(), &error));
  EXPECT_TRUE(queue.empty());
  ASSERT_EQ(a.argc, 2);
  EXPECT_STREQ(a.argv()[1], "--queue-packets=32");
}

TEST(ArgPeeler, UsageListsEveryFlag) {
  bench::ArgPeeler peeler;
  std::string a, b;
  peeler.add_string("--metrics-json", &a, "run manifest path");
  peeler.add_string("--trace", &b, "span trace path");
  std::string usage = peeler.usage();
  EXPECT_NE(usage.find("--metrics-json=VALUE"), std::string::npos);
  EXPECT_NE(usage.find("run manifest path"), std::string::npos);
  EXPECT_NE(usage.find("--trace=VALUE"), std::string::npos);
}

// -- the real binaries -------------------------------------------------------

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f != nullptr) std::fclose(f);
  return f != nullptr;
}

TEST(BenchFlags, BenchMicroRejectsUnknownFlagsWithAListing) {
  std::string bin = std::string(FT_BENCH_DIR) + "/bench_micro";
  if (!file_exists(bin)) GTEST_SKIP() << "bench binary not built: " << bin;

  std::string err_path = testing::TempDir() + "bench_micro_badflag.txt";
  std::string cmd = bin + " --bogus > /dev/null 2> " + err_path;
  EXPECT_NE(std::system(cmd.c_str()), 0);
  std::string err = slurp(err_path);
  EXPECT_NE(err.find("--bogus"), std::string::npos) << err;
  // Both halves of the contract are in the message: the peeled repo flags
  // and the pass-through --benchmark_* namespace.
  EXPECT_NE(err.find("--metrics-json"), std::string::npos) << err;
  EXPECT_NE(err.find("--benchmark_"), std::string::npos) << err;
  std::remove(err_path.c_str());
}

TEST(BenchFlags, BenchMicroStillAcceptsItsOwnFlags) {
  std::string bin = std::string(FT_BENCH_DIR) + "/bench_micro";
  if (!file_exists(bin)) GTEST_SKIP() << "bench binary not built: " << bin;

  // A peeled flag plus a benchmark flag: filter to nothing so it's fast.
  std::string cmd = bin +
                    " --benchmark_list_tests=true"
                    " > /dev/null 2>&1";
  EXPECT_EQ(std::system(cmd.c_str()), 0);
}

TEST(BenchFlags, BenchServiceRejectsUnknownFlags) {
  std::string bin = std::string(FT_BENCH_DIR) + "/bench_service";
  if (!file_exists(bin)) GTEST_SKIP() << "bench binary not built: " << bin;

  std::string err_path = testing::TempDir() + "bench_service_badflag.txt";
  EXPECT_NE(std::system((bin + " --frobnicate > /dev/null 2> " + err_path).c_str()),
            0);
  std::string err = slurp(err_path);
  EXPECT_NE(err.find("frobnicate"), std::string::npos) << err;
  EXPECT_NE(err.find("--slo-json"), std::string::npos) << err;  // usage listing
  std::remove(err_path.c_str());
}

TEST(BenchFlags, BenchServiceEmitsSloJson) {
  std::string bin = std::string(FT_BENCH_DIR) + "/bench_service";
  if (!file_exists(bin)) GTEST_SKIP() << "bench binary not built: " << bin;

  std::string json_path = testing::TempDir() + "bench_svc.json";
  std::string cmd = bin +
                    " --k 4 --cluster 8 --rounds 2 --threads 2 --slo-json=" +
                    json_path + " > /dev/null 2>&1";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;
  std::string doc = slurp(json_path);
  ASSERT_FALSE(doc.empty());
  EXPECT_TRUE(obs::json_valid(doc)) << doc;
  for (const char* key :
       {"\"schema\":\"flattree.bench_svc.v1\"", "\"requests\"", "\"accepted\"",
        "\"digest\"", "\"slo\"", "\"hit_rate\"", "\"latency_ms\"", "\"p50\"",
        "\"p99\"", "\"truncated_solves\"", "\"certified_solves\""})
    EXPECT_NE(doc.find(key), std::string::npos) << key;
  std::remove(json_path.c_str());
}

TEST(BenchFlags, BenchPacketUsesRenamedQueueFlag) {
  std::string bin = std::string(FT_BENCH_DIR) + "/bench_packet";
  if (!file_exists(bin)) GTEST_SKIP() << "bench binary not built: " << bin;

  // The old --queue spelling is gone; --queue-packets and --prop-delay are
  // the supported forms (ISSUE 7 satellite).
  std::string err_path = testing::TempDir() + "bench_packet_badflag.txt";
  EXPECT_NE(std::system((bin + " --k 4 --queue 8 > /dev/null 2> " + err_path).c_str()),
            0);
  std::string err = slurp(err_path);
  EXPECT_NE(err.find("--queue-packets"), std::string::npos) << err;  // usage listing
  EXPECT_NE(err.find("--prop-delay"), std::string::npos) << err;
  std::remove(err_path.c_str());

  std::string cmd = bin +
                    " --k 4 --train 4 --queue-packets 8 --nic-rate 2.0"
                    " --prop-delay 0.02 > /dev/null 2>&1";
  EXPECT_EQ(std::system(cmd.c_str()), 0) << cmd;
}

}  // namespace
}  // namespace flattree
