// flattree_svc end to end, out of process: the acceptance matrix from
// ISSUE 6 — a saved session script replayed through the binary produces
// byte-identical response streams and journals at --threads 1 vs 8, with
// observability on or off, cold vs --incremental, and when the journal is
// fed back as the next --script. FT_SVC_BIN / FT_BENCH_DIR are injected
// by CMake; the tests skip cleanly if a binary is missing.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace flattree {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f != nullptr) std::fclose(f);
  return f != nullptr;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

/// The saved session script: build, traffic, faults, staged conversion,
/// deadlined queries, what-if, expansion probe, stats. Every line is
/// accepted, so responses (not just journals) must match across replays.
std::string session_script() {
  return R"({"op":"hello","id":"h"}
{"op":"build","k":4}
{"op":"traffic","cluster":8,"pattern":"broadcast","placement":"none","seed":7}
{"op":"fault","events":[{"t":1,"kind":"switch_down","a":0}],"advance":2}
{"op":"query","id":"q1"}
{"op":"query","id":"q2","deadline_ms":0.01}
{"op":"what_if","target":"global","deadline_ms":5}
{"op":"convert","target":"global","advance":0}
{"op":"convert","advance":1000000}
{"op":"fault","events":[{"t":2,"kind":"switch_up","a":0}]}
{"op":"convert","target":"clos"}
{"op":"stats"}
)";
}

struct BinRun {
  int exit_code = -1;
  std::string stdout_text;
  std::string journal;
};

BinRun run_svc(const std::string& bin, const std::string& script_path,
               const std::string& tag, const std::string& extra_flags) {
  std::string out_path = testing::TempDir() + "svc_out_" + tag + ".jsonl";
  std::string journal_path = testing::TempDir() + "svc_journal_" + tag + ".jsonl";
  std::string cmd = bin + " --script " + script_path + " --journal " + journal_path +
                    " " + extra_flags + " > " + out_path + " 2>/dev/null";
  BinRun r;
  r.exit_code = std::system(cmd.c_str());
  r.stdout_text = slurp(out_path);
  r.journal = slurp(journal_path);
  std::remove(out_path.c_str());
  std::remove(journal_path.c_str());
  return r;
}

TEST(SvcBinary, ReplayMatrixIsByteIdentical) {
  std::string bin = FT_SVC_BIN;
  if (!file_exists(bin)) GTEST_SKIP() << "binary not built: " << bin;

  std::string script_path = testing::TempDir() + "svc_session.jsonl";
  write_file(script_path, session_script());

  BinRun reference = run_svc(bin, script_path, "ref", "--threads 1");
  ASSERT_EQ(reference.exit_code, 0);
  ASSERT_FALSE(reference.stdout_text.empty());
  ASSERT_FALSE(reference.journal.empty());

  std::string manifest = testing::TempDir() + "svc_manifest.json";
  const struct {
    const char* tag;
    std::string flags;
  } variants[] = {
      {"t8", "--threads 8"},
      {"inc1", "--threads 1 --incremental"},
      {"inc8", "--threads 8 --incremental"},
      {"obs", "--threads 2 --metrics-json=" + manifest},
  };
  for (const auto& v : variants) {
    BinRun got = run_svc(bin, script_path, v.tag, v.flags);
    EXPECT_EQ(got.exit_code, 0) << v.flags;
    EXPECT_EQ(got.stdout_text, reference.stdout_text) << v.flags;
    EXPECT_EQ(got.journal, reference.journal) << v.flags;
  }
  std::remove(manifest.c_str());
  std::remove(script_path.c_str());
}

/// Drops journal v2 commit frames (`c `/`u ` lines): commit placement
/// intentionally tracks batch (durability) boundaries, but the record and
/// gap sequence must be batch-invariant.
std::string strip_commits(const std::string& journal) {
  std::string out;
  std::size_t pos = 0;
  while (pos < journal.size()) {
    std::size_t nl = journal.find('\n', pos);
    if (nl == std::string::npos) nl = journal.size() - 1;
    std::string line = journal.substr(pos, nl + 1 - pos);
    if (line.rfind("c ", 0) != 0 && line.rfind("u ", 0) != 0) out += line;
    pos = nl + 1;
  }
  return out;
}

TEST(SvcBinary, BatchLayoutNeverShowsInResponses) {
  // max_batch is a protocol-surface knob only where it is deliberately
  // reported (the hello handshake and the `stats` counters); every other
  // response must be byte-identical whether a query ran warm in a batch
  // of one or cold in a parallel batch. The script drops both ops. The
  // journal's records and gaps must match too; only commit-frame placement
  // may move, since commits *are* the batch boundaries.
  std::string bin = FT_SVC_BIN;
  if (!file_exists(bin)) GTEST_SKIP() << "binary not built: " << bin;

  std::string script_path = testing::TempDir() + "svc_session_nostats.jsonl";
  std::string script = session_script();
  script.erase(0, script.find('\n') + 1);  // drop the hello line
  script.erase(script.find("{\"op\":\"stats\"}\n"));
  write_file(script_path, script);

  BinRun one = run_svc(bin, script_path, "b1", "--threads 8 --batch 1 --incremental");
  ASSERT_EQ(one.exit_code, 0);
  for (const char* flags : {"--threads 8 --batch 8", "--threads 1 --batch 32"}) {
    BinRun wide = run_svc(bin, script_path, "bN", flags);
    EXPECT_EQ(wide.exit_code, 0) << flags;
    EXPECT_EQ(wide.stdout_text, one.stdout_text) << flags;
    EXPECT_EQ(strip_commits(wide.journal), strip_commits(one.journal)) << flags;
  }
  std::remove(script_path.c_str());
}

TEST(SvcBinary, JournalReplaysAsAFixpoint) {
  std::string bin = FT_SVC_BIN;
  if (!file_exists(bin)) GTEST_SKIP() << "binary not built: " << bin;

  // Include rejected lines: they get responses but must not be journaled,
  // and the journal must replay with zero rejections.
  std::string script_path = testing::TempDir() + "svc_session_dirty.jsonl";
  write_file(script_path, session_script() + "this is not json\n{\"op\":\"nope\"}\n");

  BinRun first = run_svc(bin, script_path, "dirty", "--threads 2");
  ASSERT_EQ(first.exit_code, 0);
  EXPECT_NE(first.stdout_text.find("\"ok\":false"), std::string::npos);
  EXPECT_EQ(first.journal.find("not json"), std::string::npos);

  std::string journal_path = testing::TempDir() + "svc_replay_input.jsonl";
  write_file(journal_path, first.journal);
  BinRun replayed = run_svc(bin, journal_path, "replay", "--threads 2");
  ASSERT_EQ(replayed.exit_code, 0);
  EXPECT_EQ(replayed.journal, first.journal);  // journal(replay(journal)) == journal
  EXPECT_EQ(replayed.stdout_text.find("\"ok\":false"), std::string::npos);

  std::remove(script_path.c_str());
  std::remove(journal_path.c_str());
}

TEST(SvcBinary, SelfcheckExitsCleanOnAValidSession) {
  std::string bin = FT_SVC_BIN;
  if (!file_exists(bin)) GTEST_SKIP() << "binary not built: " << bin;

  std::string script_path = testing::TempDir() + "svc_selfcheck.jsonl";
  write_file(script_path, session_script());
  BinRun r = run_svc(bin, script_path, "sc", "--threads 2 --selfcheck");
  EXPECT_EQ(r.exit_code, 0);
  std::remove(script_path.c_str());
}

TEST(SvcBinary, UnknownFlagFailsWithUsage) {
  std::string bin = FT_SVC_BIN;
  if (!file_exists(bin)) GTEST_SKIP() << "binary not built: " << bin;

  std::string err_path = testing::TempDir() + "svc_badflag.txt";
  std::string cmd = bin + " --no-such-flag < /dev/null > /dev/null 2> " + err_path;
  EXPECT_NE(std::system(cmd.c_str()), 0);
  std::string err = slurp(err_path);
  // The error names the offending flag and lists the valid ones.
  EXPECT_NE(err.find("no-such-flag"), std::string::npos) << err;
  EXPECT_NE(err.find("--script"), std::string::npos) << err;
  EXPECT_NE(err.find("--journal"), std::string::npos) << err;
  std::remove(err_path.c_str());
}

TEST(SvcBinary, MissingScriptFileExitsTwo) {
  std::string bin = FT_SVC_BIN;
  if (!file_exists(bin)) GTEST_SKIP() << "binary not built: " << bin;

  int status = std::system(
      (bin + " --script /nonexistent/session.jsonl > /dev/null 2>&1").c_str());
  EXPECT_EQ(WEXITSTATUS(status), 2);
}

}  // namespace
}  // namespace flattree
