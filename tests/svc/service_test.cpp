// svc::Service end to end, in process: the byte-identity matrix (threads
// 1 vs 8, obs on vs off, cold vs incremental), the journal's replay
// fixpoint, deadline-budgeted responses, the protocol error paths, and
// deterministic batch accounting. This is the sockets-free version of the
// acceptance criterion the flattree_svc binary test repeats out of
// process.

#include "svc/service.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "exec/parallel_for.hpp"
#include "obs/metrics.hpp"

namespace flattree::svc {
namespace {

struct RunResult {
  std::string responses;
  std::string journal;
  ServiceStats stats;
  std::size_t violations = 0;
};

RunResult run_service(const std::string& script, ServiceOptions opt = {}) {
  std::ostringstream journal;
  opt.journal = &journal;
  Service service(opt);
  std::istringstream in(script);
  std::ostringstream out;
  service.run(in, out);
  return {out.str(), journal.str(), service.stats(), service.selfcheck_violations()};
}

/// Parses the `index`-th response line (0-based) into a JsonValue.
obs::JsonValue response_at(const std::string& responses, std::size_t index) {
  std::istringstream in(responses);
  std::string line;
  for (std::size_t i = 0; i <= index; ++i) {
    EXPECT_TRUE(static_cast<bool>(std::getline(in, line))) << "response " << index;
  }
  obs::JsonValue v;
  obs::JsonError err;
  EXPECT_TRUE(obs::json_parse(line, v, &err)) << line << " -> " << err.code;
  return v;
}

bool response_ok(const obs::JsonValue& v) {
  const obs::JsonValue* ok = v.find("ok");
  return ok != nullptr && ok->is_bool() && ok->as_bool();
}

std::string error_code(const obs::JsonValue& v) {
  const obs::JsonValue* err = v.find("error");
  if (err == nullptr) return "";
  const obs::JsonValue* code = err->find("code");
  return code != nullptr ? code->as_string() : "";
}

/// A small but complete session: build, traffic, faults, a staged
/// conversion, queries (one deadlined), a what-if, expand-as-plan, stats.
std::string full_script() {
  return R"({"op":"hello","id":1}
{"op":"build","k":4}
{"op":"traffic","cluster":8,"pattern":"broadcast","placement":"none","seed":7}
{"op":"fault","events":[{"t":1,"kind":"switch_down","a":0}],"advance":2}
{"op":"query","id":"q1"}
{"op":"query","id":"q2","deadline_ms":0.01}
{"op":"what_if","target":"global"}
{"op":"convert","target":"global","advance":0}
{"op":"convert","advance":1000000}
{"op":"fault","events":[{"t":2,"kind":"switch_up","a":0}]}
{"op":"convert","target":"clos"}
{"op":"stats"}
)";
}

TEST(Service, ByteIdentityAcrossThreadsObsAndIncremental) {
  const std::string script = full_script();
  ServiceOptions base;
  base.max_batch = 4;

  exec::set_global_threads(1);
  RunResult reference = run_service(script, base);
  ASSERT_FALSE(reference.responses.empty());

  struct Config {
    unsigned threads;
    bool obs;
    bool incremental;
  };
  const Config configs[] = {{8, false, false}, {1, false, true}, {8, false, true},
                            {1, true, false},  {8, true, true}};
  for (const Config& c : configs) {
    exec::set_global_threads(c.threads);
    obs::set_enabled(c.obs);
    ServiceOptions opt = base;
    opt.incremental = c.incremental;
    RunResult got = run_service(script, opt);
    EXPECT_EQ(got.responses, reference.responses)
        << "threads=" << c.threads << " obs=" << c.obs << " inc=" << c.incremental;
    EXPECT_EQ(got.journal, reference.journal);
  }
  obs::set_enabled(false);
  exec::set_global_threads(0);
}

TEST(Service, JournalIsAReplayFixpoint) {
  // The v2 journal frames the canonical form of every accepted request and
  // marks rejected lines with content-free gap frames. Replaying it as the
  // script must reproduce the same state trajectory, the same counters
  // (including the rejections, reconstructed from the gaps), and journal
  // the exact same bytes.
  std::string script = full_script() +
                       "this line is not json\n"
                       "{\"op\":\"frobnicate\"}\n";
  RunResult first = run_service(script);
  EXPECT_EQ(first.stats.rejected, 2u);

  RunResult replayed = run_service(first.journal);
  EXPECT_EQ(replayed.stats.rejected, first.stats.rejected);
  EXPECT_EQ(replayed.stats.accepted, first.stats.accepted);
  EXPECT_EQ(replayed.stats.batches, first.stats.batches);
  EXPECT_EQ(replayed.stats.max_batch, first.stats.max_batch);
  EXPECT_EQ(replayed.journal, first.journal);  // fixpoint
}

TEST(Service, RejectedRequestsAreNotJournaled) {
  RunResult r = run_service(
      "{\"op\":\"query\"}\n"          // not built -> rejected
      "{\"op\":\"hello\"}\n"          // accepted
      "not json at all\n"             // parse error -> rejected
      "{\"op\":\"build\",\"k\":-3}\n"  // bad params -> rejected
  );
  EXPECT_EQ(r.stats.accepted, 1u);
  EXPECT_EQ(r.stats.rejected, 3u);
  EXPECT_EQ(r.stats.journal_lines, 1u);
  // Only the accepted request's bytes appear (as a record frame); the
  // rejected lines leave content-free gap frames, never their payloads.
  EXPECT_NE(r.journal.find("2 {\"op\":\"hello\"}\n"), std::string::npos) << r.journal;
  EXPECT_EQ(r.journal.find("query"), std::string::npos) << r.journal;
  EXPECT_EQ(r.journal.find("not json"), std::string::npos) << r.journal;
  EXPECT_EQ(r.journal.find("build"), std::string::npos) << r.journal;
  EXPECT_NE(r.journal.find("x 1 reject"), std::string::npos) << r.journal;
  EXPECT_NE(r.journal.find("x 3 reject"), std::string::npos) << r.journal;
  EXPECT_NE(r.journal.find("x 4 reject"), std::string::npos) << r.journal;
}

TEST(Service, EveryLineGetsAResponseInOrder) {
  RunResult r = run_service(
      "{\"op\":\"hello\",\"id\":\"a\"}\n"
      "garbage\n"
      "{\"op\":\"hello\",\"id\":\"b\"}\n");
  std::istringstream in(r.responses);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  // seq is the 1-based input line number, even for the malformed line.
  EXPECT_NE(lines[0].find("\"seq\":1"), std::string::npos);
  EXPECT_NE(lines[0].find("\"id\":\"a\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"seq\":2"), std::string::npos);
  EXPECT_NE(lines[1].find("\"ok\":false"), std::string::npos);
  EXPECT_NE(lines[2].find("\"seq\":3"), std::string::npos);
  EXPECT_NE(lines[2].find("\"id\":\"b\""), std::string::npos);
}

TEST(Service, DeadlinedQueryIsTruncatedAndCertified) {
  RunResult r = run_service(full_script());
  // Response 6 (0-based 5) is the deadline_ms:0.01 query.
  obs::JsonValue v = response_at(r.responses, 5);
  ASSERT_TRUE(response_ok(v));
  const obs::JsonValue* truncated = v.find("truncated");
  const obs::JsonValue* certified = v.find("certified");
  const obs::JsonValue* budget = v.find("budget");
  ASSERT_NE(truncated, nullptr);
  ASSERT_NE(certified, nullptr);
  ASSERT_NE(budget, nullptr);
  EXPECT_TRUE(truncated->as_bool());  // 40 augmentations cannot converge
  EXPECT_TRUE(certified->as_bool());  // but the bracket still certifies
  EXPECT_EQ(budget->as_int(), 40);    // 0.01 ms * 4000 augs/ms

  // The undeadlined query (0-based 4) must not be truncated.
  obs::JsonValue free_q = response_at(r.responses, 4);
  ASSERT_TRUE(response_ok(free_q));
  EXPECT_FALSE(free_q.find("truncated")->as_bool());
  EXPECT_EQ(free_q.find("budget")->as_int(), 0);
}

TEST(Service, QueryBeforeBuildIsRejected) {
  RunResult r = run_service("{\"op\":\"query\"}\n{\"op\":\"what_if\",\"target\":\"clos\"}\n");
  EXPECT_EQ(error_code(response_at(r.responses, 0)), "svc.session.not_built");
  EXPECT_EQ(error_code(response_at(r.responses, 1)), "svc.session.not_built");
}

TEST(Service, ConvertWhileInFlightIsRejected) {
  RunResult r = run_service(
      "{\"op\":\"build\",\"k\":4}\n"
      "{\"op\":\"convert\",\"target\":\"global\",\"advance\":1}\n"
      "{\"op\":\"convert\",\"target\":\"local\"}\n"   // still in flight
      "{\"op\":\"convert\",\"advance\":1000000}\n"     // drain
      "{\"op\":\"convert\",\"target\":\"local\"}\n");  // now legal
  obs::JsonValue begin = response_at(r.responses, 1);
  ASSERT_TRUE(response_ok(begin));
  EXPECT_TRUE(begin.find("in_flight")->as_bool());
  EXPECT_EQ(error_code(response_at(r.responses, 2)), "svc.convert.in_flight");
  EXPECT_TRUE(response_ok(response_at(r.responses, 3)));
  EXPECT_TRUE(response_ok(response_at(r.responses, 4)));
}

TEST(Service, WhatIfIsLegalMidConversion) {
  RunResult r = run_service(
      "{\"op\":\"build\",\"k\":4}\n"
      "{\"op\":\"convert\",\"target\":\"global\",\"advance\":1}\n"
      "{\"op\":\"what_if\",\"target\":\"local\"}\n");
  obs::JsonValue v = response_at(r.responses, 2);
  EXPECT_TRUE(response_ok(v)) << error_code(v);
  EXPECT_NE(v.find("steps"), nullptr);
}

TEST(Service, FaultBatchIsAtomic) {
  // The second event regresses time, so the whole batch must be rejected
  // and the first event must NOT have been applied: the follow-up query
  // sees zero down switches.
  RunResult r = run_service(
      "{\"op\":\"build\",\"k\":4}\n"
      "{\"op\":\"fault\",\"events\":[{\"t\":5,\"kind\":\"switch_down\",\"a\":0},"
      "{\"t\":4,\"kind\":\"switch_up\",\"a\":0}]}\n"
      "{\"op\":\"query\",\"lambda\":false}\n");
  EXPECT_EQ(error_code(response_at(r.responses, 1)), "svc.fault.time_regression");
  obs::JsonValue q = response_at(r.responses, 2);
  ASSERT_TRUE(response_ok(q));
  EXPECT_EQ(q.find("down_switches")->as_int(), 0);
}

TEST(Service, MalformedFaultEventRejectsBatch) {
  RunResult r = run_service(
      "{\"op\":\"build\",\"k\":4}\n"
      "{\"op\":\"fault\",\"events\":[{\"t\":1,\"kind\":\"switch_down\",\"a\":0},"
      "{\"t\":2,\"kind\":\"no_such_kind\",\"a\":1}]}\n"
      "{\"op\":\"query\",\"lambda\":false}\n");
  EXPECT_EQ(error_code(response_at(r.responses, 1)), "svc.fault.bad_event");
  obs::JsonValue q = response_at(r.responses, 2);
  ASSERT_TRUE(response_ok(q));
  EXPECT_EQ(q.find("down_switches")->as_int(), 0);
}

TEST(Service, BadAdvanceRejectsFaultBatchBeforeApply) {
  // 'advance' validates with the rest of the request, before any event is
  // applied: a batch of valid events with a malformed advance is rejected
  // without touching the session and without a journal line.
  RunResult r = run_service(
      "{\"op\":\"build\",\"k\":4}\n"
      "{\"op\":\"fault\",\"events\":[{\"t\":1,\"kind\":\"switch_down\",\"a\":0}],"
      "\"advance\":-1}\n"
      "{\"op\":\"query\",\"lambda\":false}\n");
  EXPECT_EQ(error_code(response_at(r.responses, 1)), "svc.request.bad_field");
  obs::JsonValue q = response_at(r.responses, 2);
  ASSERT_TRUE(response_ok(q));
  EXPECT_EQ(q.find("down_switches")->as_int(), 0);
  EXPECT_EQ(r.journal.find("\"op\":\"fault\""), std::string::npos);
}

TEST(Service, TrafficDefaultClusterClampsToPlant) {
  // k=4 fat tree has 16 servers, fewer than the default cluster size of
  // 40; the default clamps to the plant so the workload is non-empty.
  RunResult r = run_service(
      "{\"op\":\"build\",\"k\":4}\n"
      "{\"op\":\"traffic\",\"seed\":1}\n");
  obs::JsonValue v = response_at(r.responses, 1);
  ASSERT_TRUE(response_ok(v)) << error_code(v);
  EXPECT_GT(v.find("demands")->as_int(), 0);
}

TEST(Service, ExpandWithFaultsOutstandingIsRejected) {
  // Generic expandable plant (fat-trees have no core headroom).
  std::string build =
      "{\"op\":\"build\",\"pods\":6,\"d\":4,\"r\":2,\"h\":4,"
      "\"servers_per_edge\":4,\"edge_ports\":6,\"agg_ports\":8,"
      "\"core_ports\":10,\"m\":1,\"n\":1}\n";
  RunResult r = run_service(
      build +
      "{\"op\":\"fault\",\"events\":[{\"t\":1,\"kind\":\"switch_down\",\"a\":0}]}\n"
      "{\"op\":\"expand\",\"pods\":1,\"apply\":true}\n"
      "{\"op\":\"expand\",\"pods\":1}\n"  // plan-only is fine under faults
      "{\"op\":\"fault\",\"events\":[{\"t\":2,\"kind\":\"switch_up\",\"a\":0}]}\n"
      "{\"op\":\"expand\",\"pods\":1,\"apply\":true}\n");
  ASSERT_TRUE(response_ok(response_at(r.responses, 0)))
      << error_code(response_at(r.responses, 0));
  EXPECT_EQ(error_code(response_at(r.responses, 2)), "svc.expand.faults_outstanding");
  obs::JsonValue plan_only = response_at(r.responses, 3);
  ASSERT_TRUE(response_ok(plan_only));
  EXPECT_FALSE(plan_only.find("applied")->as_bool());
  obs::JsonValue applied = response_at(r.responses, 5);
  ASSERT_TRUE(response_ok(applied)) << error_code(applied);
  EXPECT_TRUE(applied.find("applied")->as_bool());
  EXPECT_EQ(applied.find("pods_after")->as_int(), 7);
}

TEST(Service, ExpandOnFatTreeIsInfeasible) {
  RunResult r = run_service(
      "{\"op\":\"build\",\"k\":4}\n"
      "{\"op\":\"expand\",\"pods\":1}\n");
  EXPECT_EQ(error_code(response_at(r.responses, 1)), "svc.expand.infeasible");
}

TEST(Service, SessionsAreIsolatedShards) {
  RunResult r = run_service(
      "{\"op\":\"build\",\"k\":4,\"session\":2}\n"
      "{\"op\":\"query\",\"session\":2,\"lambda\":false}\n"
      "{\"op\":\"query\",\"session\":3,\"lambda\":false}\n");
  EXPECT_TRUE(response_ok(response_at(r.responses, 1)));
  EXPECT_EQ(error_code(response_at(r.responses, 2)), "svc.session.not_built");
}

TEST(Service, BatchAccountingIsDeterministic) {
  // 5 consecutive read-only requests with max_batch 2 -> batches of
  // 2, 2, 1; boundaries depend only on the input and the cap.
  ServiceOptions opt;
  opt.max_batch = 2;
  const std::string script =
      "{\"op\":\"hello\"}\n{\"op\":\"hello\"}\n{\"op\":\"hello\"}\n"
      "{\"op\":\"hello\"}\n{\"op\":\"hello\"}\n";
  exec::set_global_threads(1);
  RunResult seq = run_service(script, opt);
  exec::set_global_threads(8);
  RunResult par = run_service(script, opt);
  exec::set_global_threads(0);

  EXPECT_EQ(seq.stats.batches, 3u);
  EXPECT_EQ(seq.stats.max_batch, 2u);
  EXPECT_EQ(par.stats.batches, seq.stats.batches);
  EXPECT_EQ(par.stats.max_batch, seq.stats.max_batch);
  EXPECT_EQ(par.responses, seq.responses);

  // A mutating op forces a boundary mid-stream.
  RunResult split = run_service(
      "{\"op\":\"hello\"}\n{\"op\":\"stats\"}\n{\"op\":\"hello\"}\n", opt);
  EXPECT_EQ(split.stats.batches, 2u);
  EXPECT_EQ(split.stats.max_batch, 1u);
}

TEST(Service, StatsOpReportsDeterministicCounters) {
  RunResult r = run_service(full_script());
  obs::JsonValue stats = response_at(r.responses, 11);
  ASSERT_TRUE(response_ok(stats));
  EXPECT_EQ(stats.find("lines")->as_int(), 12);
  EXPECT_EQ(stats.find("accepted")->as_int(), 11);  // excludes the stats op itself
  EXPECT_EQ(stats.find("rejected")->as_int(), 0);
  EXPECT_EQ(stats.find("fault_events")->as_int(), 2);
  EXPECT_GE(stats.find("solves")->as_int(), 3);
  EXPECT_GE(stats.find("truncated_solves")->as_int(), 1);
  // No wall-clock fields: the stats payload must be byte-stable.
  EXPECT_EQ(stats.find("wall_ms"), nullptr);
  EXPECT_EQ(stats.find("elapsed"), nullptr);
}

TEST(Service, SelfcheckPassesOnACleanSession) {
  ServiceOptions opt;
  opt.selfcheck = true;
  RunResult r = run_service(full_script(), opt);
  EXPECT_EQ(r.violations, 0u);
}

}  // namespace
}  // namespace flattree::svc
