// flattree_svc --recover end to end, out of process (ISSUE 10): a journal
// file severed mid-record recovers to a byte-identical journal and the
// exact remaining response stream; a crash after a periodic snapshot
// restores through the snapshot and resumes; a corrupted journal or
// snapshot is refused with exit code 3; a headerless v1 journal recovers
// through the upgrade path and leaves a v2 file behind.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace flattree {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f != nullptr) std::fclose(f);
  return f != nullptr;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

/// The full session script; mutating ops, deadlined queries, and one
/// rejected line so the journal carries a gap frame across the crash.
std::string session_script() {
  return R"({"op":"hello","id":"h"}
{"op":"build","k":4}
{"op":"traffic","cluster":8,"pattern":"broadcast","placement":"none","seed":7}
{"op":"fault","events":[{"t":1,"kind":"switch_down","a":0}],"advance":2}
{"op":"query","id":"q1"}
not json at all
{"op":"convert","target":"global","advance":0}
{"op":"convert","advance":1000000}
{"op":"query","id":"q2"}
{"op":"stats"}
)";
}

struct BinRun {
  int exit_code = -1;
  std::string stdout_text;
  std::string stderr_text;
};

/// Runs the binary with explicit flags; journal/snapshot files are the
/// caller's to create, inspect, and remove.
BinRun run_svc(const std::string& bin, const std::string& flags,
               const std::string& tag) {
  std::string out_path = testing::TempDir() + "rec_out_" + tag + ".jsonl";
  std::string err_path = testing::TempDir() + "rec_err_" + tag + ".txt";
  std::string cmd = bin + " " + flags + " > " + out_path + " 2> " + err_path;
  BinRun r;
  int status = std::system(cmd.c_str());
  r.exit_code = WEXITSTATUS(status);
  r.stdout_text = slurp(out_path);
  r.stderr_text = slurp(err_path);
  std::remove(out_path.c_str());
  std::remove(err_path.c_str());
  return r;
}

TEST(RecoveryBinary, SeveredJournalRecoversByteIdentical) {
  std::string bin = FT_SVC_BIN;
  if (!file_exists(bin)) GTEST_SKIP() << "binary not built: " << bin;

  std::string script_path = testing::TempDir() + "rec_session.jsonl";
  std::string journal_path = testing::TempDir() + "rec_journal.jsonl";
  write_file(script_path, session_script());

  BinRun ref = run_svc(
      bin, "--threads 1 --script " + script_path + " --journal " + journal_path,
      "ref");
  ASSERT_EQ(ref.exit_code, 0) << ref.stderr_text;
  std::string ref_journal = slurp(journal_path);
  ASSERT_FALSE(ref_journal.empty());

  // Sever the file mid way through its final record frame — a torn write.
  std::size_t last_record = ref_journal.rfind("\nr ");
  ASSERT_NE(last_record, std::string::npos);
  std::size_t cut = last_record + 8;
  write_file(journal_path, ref_journal.substr(0, cut));

  BinRun rec = run_svc(bin,
                       "--threads 1 --recover --script " + script_path +
                           " --journal " + journal_path,
                       "rec");
  EXPECT_EQ(rec.exit_code, 0) << rec.stderr_text;
  EXPECT_NE(rec.stderr_text.find("resuming after line"), std::string::npos)
      << rec.stderr_text;
  // The combined on-disk journal is the uninterrupted journal, byte for
  // byte, and stdout is exactly the not-yet-durable tail of the session.
  EXPECT_EQ(slurp(journal_path), ref_journal);
  ASSERT_FALSE(rec.stdout_text.empty());
  ASSERT_LE(rec.stdout_text.size(), ref.stdout_text.size());
  EXPECT_EQ(rec.stdout_text,
            ref.stdout_text.substr(ref.stdout_text.size() - rec.stdout_text.size()));

  std::remove(script_path.c_str());
  std::remove(journal_path.c_str());
}

TEST(RecoveryBinary, SnapshotRestoreResumesAfterACrash) {
  std::string bin = FT_SVC_BIN;
  if (!file_exists(bin)) GTEST_SKIP() << "binary not built: " << bin;

  // Crash emulation with a faithful disk state: run only the first five
  // lines (journal + periodic snapshot on disk, snapshot never ahead of
  // the journal — exactly what a crash after line five leaves), then tear
  // the tail and hand --recover the full session.
  std::string script = session_script();
  std::string prefix;
  std::size_t pos = 0;
  for (int i = 0; i < 5; ++i) pos = script.find('\n', pos) + 1;
  prefix = script.substr(0, pos);

  std::string prefix_path = testing::TempDir() + "rec_snap_prefix.jsonl";
  std::string script_path = testing::TempDir() + "rec_snap_session.jsonl";
  std::string journal_path = testing::TempDir() + "rec_snap_journal.jsonl";
  std::string snapshot_path = testing::TempDir() + "rec_snap_state.txt";
  write_file(prefix_path, prefix);
  write_file(script_path, script);

  BinRun ref = run_svc(bin,
                       "--threads 1 --script " + script_path + " --journal " +
                           journal_path,
                       "snapref");
  ASSERT_EQ(ref.exit_code, 0) << ref.stderr_text;

  BinRun crash = run_svc(bin,
                         "--threads 1 --snapshot-every 1 --script " + prefix_path +
                             " --journal " + journal_path + " --snapshot " +
                             snapshot_path,
                         "crash");
  ASSERT_EQ(crash.exit_code, 0) << crash.stderr_text;
  ASSERT_TRUE(file_exists(snapshot_path)) << "no periodic snapshot written";
  write_file(journal_path, slurp(journal_path) + "r 999 dead");  // torn tail

  BinRun rec = run_svc(bin,
                       "--threads 1 --recover --script " + script_path +
                           " --journal " + journal_path + " --snapshot " +
                           snapshot_path + " --snapshot-every 1",
                       "snaprec");
  EXPECT_EQ(rec.exit_code, 0) << rec.stderr_text;
  EXPECT_NE(rec.stderr_text.find("resuming after line 5"), std::string::npos)
      << rec.stderr_text;
  EXPECT_NE(rec.stderr_text.find("truncating"), std::string::npos)
      << rec.stderr_text;
  // Responses for lines six onward, byte-equal to the uninterrupted run's.
  ASSERT_FALSE(rec.stdout_text.empty());
  EXPECT_EQ(rec.stdout_text,
            ref.stdout_text.substr(ref.stdout_text.size() - rec.stdout_text.size()));

  // A corrupted snapshot is refused outright.
  std::string snap = slurp(snapshot_path);
  std::size_t at = snap.find("stats ");
  ASSERT_NE(at, std::string::npos);
  snap[at + 6] = snap[at + 6] == '9' ? '8' : '9';
  write_file(snapshot_path, snap);
  BinRun bad = run_svc(bin,
                       "--threads 1 --recover --script " + script_path +
                           " --journal " + journal_path + " --snapshot " +
                           snapshot_path,
                       "snapbad");
  EXPECT_EQ(bad.exit_code, 3);
  EXPECT_NE(bad.stderr_text.find("svc.snapshot."), std::string::npos)
      << bad.stderr_text;

  std::remove(prefix_path.c_str());
  std::remove(script_path.c_str());
  std::remove(journal_path.c_str());
  std::remove(snapshot_path.c_str());
}

TEST(RecoveryBinary, CorruptJournalIsRefusedWithExitThree) {
  std::string bin = FT_SVC_BIN;
  if (!file_exists(bin)) GTEST_SKIP() << "binary not built: " << bin;

  std::string script_path = testing::TempDir() + "rec_bad_session.jsonl";
  std::string journal_path = testing::TempDir() + "rec_bad_journal.jsonl";
  write_file(script_path, session_script());
  BinRun ref = run_svc(
      bin, "--threads 1 --script " + script_path + " --journal " + journal_path,
      "badref");
  ASSERT_EQ(ref.exit_code, 0);

  // Flip one byte inside the first record's payload; later commits stay
  // valid, so this is corruption, not a torn tail.
  std::string journal = slurp(journal_path);
  std::size_t at = journal.find("{\"op\":\"hello\"");
  ASSERT_NE(at, std::string::npos);
  journal[at + 7] ^= 0x20;
  write_file(journal_path, journal);

  BinRun rec = run_svc(bin,
                       "--threads 1 --recover --script " + script_path +
                           " --journal " + journal_path,
                       "badrec");
  EXPECT_EQ(rec.exit_code, 3);
  EXPECT_NE(rec.stderr_text.find("svc.journal.corrupt_record"), std::string::npos)
      << rec.stderr_text;
  EXPECT_TRUE(rec.stdout_text.empty());
  // The refusal must not have modified the file: recovery is read-validate
  // first, truncate only what a clean parse proved torn.
  EXPECT_EQ(slurp(journal_path), journal);

  std::remove(script_path.c_str());
  std::remove(journal_path.c_str());
}

TEST(RecoveryBinary, HeaderlessV1JournalRecoversThroughUpgrade) {
  std::string bin = FT_SVC_BIN;
  if (!file_exists(bin)) GTEST_SKIP() << "binary not built: " << bin;

  // A pre-framing journal: bare canonical lines for the first two requests.
  std::string script = session_script();
  std::string script_path = testing::TempDir() + "rec_v1_session.jsonl";
  std::string journal_path = testing::TempDir() + "rec_v1_journal.jsonl";
  write_file(script_path, script);
  std::size_t two = script.find('\n', script.find('\n') + 1) + 1;
  write_file(journal_path, script.substr(0, two));

  BinRun rec = run_svc(bin,
                       "--threads 1 --recover --script " + script_path +
                           " --journal " + journal_path,
                       "v1rec");
  EXPECT_EQ(rec.exit_code, 0) << rec.stderr_text;
  EXPECT_NE(rec.stderr_text.find("resuming after line 2"), std::string::npos)
      << rec.stderr_text;
  // The file on disk is now a v2 journal: upgraded `u` commits for the
  // durable prefix, CRC-framed records for the resumed tail.
  std::string upgraded = slurp(journal_path);
  EXPECT_EQ(upgraded.rfind("# flattree-svc-journal v2", 0), 0u) << upgraded;
  EXPECT_NE(upgraded.find("\nu "), std::string::npos) << upgraded;
  EXPECT_NE(upgraded.find("\nc "), std::string::npos) << upgraded;

  std::remove(script_path.c_str());
  std::remove(journal_path.c_str());
}

}  // namespace
}  // namespace flattree
