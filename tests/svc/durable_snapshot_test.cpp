// Snapshot v1 unit coverage (ISSUE 10): the encode/decode byte-exact
// round trip, every decode refusal path with its pinned code, and the
// check::validate_snapshot invariant battery on both a live service's
// snapshot and hand-broken ones.

#include "svc/durable/snapshot.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "check/snapshot_check.hpp"
#include "svc/service.hpp"
#include "util/crc32.hpp"

namespace flattree::svc::durable {
namespace {

/// A hand-built snapshot with two sessions and non-trivial counters.
ServiceSnapshot sample_snapshot() {
  ServiceSnapshot s;
  s.stats.lines = 9;
  s.stats.accepted = 7;
  s.stats.rejected = 2;
  s.stats.fault_events = 3;
  s.stats.solves = 4;
  s.stats.truncated_solves = 1;
  s.stats.certified_solves = 1;
  s.stats.batches = 2;
  s.stats.max_batch = 3;
  s.stats.journal_lines = 7;
  s.stats.shed_oversize = 1;
  s.stats.shed_queue = 1;
  s.stats.shed_deadline = 0;
  s.stats.by_op[static_cast<std::size_t>(Op::Build)] = 2;
  s.stats.by_op[static_cast<std::size_t>(Op::Query)] = 5;
  s.groups_committed = 6;
  SnapshotSession a;
  a.id = 0;
  a.records.push_back({"build", 1, R"({"op":"build","k":4})"});
  a.records.push_back({"fault", 4, R"({"op":"fault","events":[]})"});
  SnapshotSession b;
  b.id = 2;
  b.records.push_back({"build", 7, R"({"op":"build","k":4,"session":2})"});
  s.sessions.push_back(std::move(a));
  s.sessions.push_back(std::move(b));
  return s;
}

TEST(Snapshot, EncodeDecodeIsAByteExactRoundTrip) {
  ServiceSnapshot s = sample_snapshot();
  std::string bytes = encode_snapshot(s);
  EXPECT_EQ(bytes.compare(0, std::string(kSnapshotHeaderV1).size(), kSnapshotHeaderV1),
            0);

  ServiceSnapshot d;
  SnapshotError err;
  ASSERT_TRUE(decode_snapshot(bytes, d, err)) << err.code << ": " << err.message;
  // encode(decode(s)) == s, byte for byte — the canonical-encoding contract.
  EXPECT_EQ(encode_snapshot(d), bytes);
  EXPECT_EQ(d.stats.lines, 9u);
  EXPECT_EQ(d.stats.by_op[static_cast<std::size_t>(Op::Query)], 5u);
  EXPECT_EQ(d.groups_committed, 6u);
  ASSERT_EQ(d.sessions.size(), 2u);
  EXPECT_EQ(d.sessions[1].id, 2u);
  ASSERT_EQ(d.sessions[0].records.size(), 2u);
  EXPECT_EQ(d.sessions[0].records[1].op, "fault");
  EXPECT_EQ(d.sessions[0].records[1].seq, 4u);
}

TEST(Snapshot, DecodeRefusesEachCorruptionClass) {
  const std::string bytes = encode_snapshot(sample_snapshot());
  ServiceSnapshot d;
  SnapshotError err;

  ASSERT_FALSE(decode_snapshot("# some other file v9\n", d, err));
  EXPECT_EQ(err.code, "svc.snapshot.bad_header");

  // Cut mid-line (a torn snapshot write): truncated, not corrupt.
  ASSERT_FALSE(decode_snapshot(bytes.substr(0, bytes.size() - 3), d, err));
  EXPECT_EQ(err.code, "svc.snapshot.truncated");

  // Complete lines but no `end` trailer.
  std::string no_end = bytes.substr(0, bytes.rfind("end "));
  ASSERT_FALSE(decode_snapshot(no_end, d, err));
  EXPECT_EQ(err.code, "svc.snapshot.truncated");

  // One flipped payload byte: the trailer CRC refuses before any field is
  // trusted.
  std::string flipped = bytes;
  std::size_t at = flipped.find("groups 6");
  ASSERT_NE(at, std::string::npos);
  flipped[at + 7] = '7';
  ASSERT_FALSE(decode_snapshot(flipped, d, err));
  EXPECT_EQ(err.code, "svc.snapshot.corrupt");
  EXPECT_NE(err.message.find("CRC"), std::string::npos);
}

TEST(Snapshot, DecodeRefusesABadRecordBehindAValidTrailer) {
  // A record whose own CRC disagrees, re-sealed with a recomputed trailer
  // (the attack the per-record CRC exists for: the trailer alone cannot
  // localize which record went bad).
  std::string bytes = encode_snapshot(sample_snapshot());
  std::size_t at = bytes.find("\"k\":4}");
  ASSERT_NE(at, std::string::npos);
  bytes[at + 4] = '6';  // record bytes no longer match the record CRC
  const std::size_t payload_begin = bytes.find('\n') + 1;
  const std::size_t end_at = bytes.rfind("end ");
  const std::string payload = bytes.substr(payload_begin, end_at - payload_begin);
  bytes = bytes.substr(0, end_at) + "end " + util::crc32_hex(util::crc32(payload)) +
          "\n";
  ServiceSnapshot d;
  SnapshotError err;
  ASSERT_FALSE(decode_snapshot(bytes, d, err));
  EXPECT_EQ(err.code, "svc.snapshot.bad_record");
  EXPECT_EQ(err.line, 6u);  // header, stats, ops, groups, session, then the record
}

TEST(Snapshot, ValidateBatteryPassesALiveServiceSnapshot) {
  ServiceOptions opt;
  Service service(opt);
  std::istringstream in(
      "{\"op\":\"build\",\"k\":4}\n"
      "{\"op\":\"traffic\",\"seed\":1}\n"
      "{\"op\":\"query\"}\n"
      "{\"op\":\"build\",\"k\":4,\"session\":3}\n"
      "{\"op\":\"nonsense\"}\n");
  std::ostringstream out;
  service.run(in, out);
  ServiceSnapshot s = service.snapshot_state();
  check::Report rep = check::validate_snapshot(s);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  ASSERT_EQ(s.sessions.size(), 2u);  // shards 0 and 3 hold state
  EXPECT_EQ(s.sessions[0].records[0].op, "build");
}

TEST(Snapshot, ValidateBatteryFlagsBrokenInvariants) {
  ServiceSnapshot s = sample_snapshot();
  ASSERT_TRUE(check::validate_snapshot(s).ok())
      << check::validate_snapshot(s).to_string();  // clean baseline

  s.stats.accepted = 8;  // no longer the sum of by_op, and lines != a + r
  check::Report rep = check::validate_snapshot(s);
  EXPECT_FALSE(rep.ok());
  ASSERT_GE(rep.violations.size(), 2u);
  EXPECT_EQ(rep.violations[0].code, "snapshot.counter");

  s = sample_snapshot();
  s.sessions[0].records[0].op = "query";  // read-only op in a history
  rep = check::validate_snapshot(s);
  EXPECT_FALSE(rep.ok());
  bool saw_record = false;
  for (const auto& v : rep.violations) saw_record |= v.code == "snapshot.record";
  EXPECT_TRUE(saw_record);

  s = sample_snapshot();
  s.sessions[0].records[1].seq = 1;  // seq must strictly increase
  EXPECT_FALSE(check::validate_snapshot(s).ok());

  s = sample_snapshot();
  std::swap(s.sessions[0], s.sessions[1]);  // ids must ascend
  EXPECT_FALSE(check::validate_snapshot(s).ok());

  EXPECT_TRUE(check::validate_snapshot(ServiceSnapshot{}).ok());  // empty is clean
}

}  // namespace
}  // namespace flattree::svc::durable
