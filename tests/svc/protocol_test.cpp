// flattree-svc.v1 wire protocol: op tokens, the read-only (batchable)
// subset, envelope validation with stable error codes, and byte-exact
// response rendering (the fixed schema/seq/id/op/ok key order every
// replay-equivalence test compares against).

#include "svc/protocol.hpp"

#include <gtest/gtest.h>

#include <string>

namespace flattree::svc {
namespace {

Request must_parse(const std::string& line, std::uint64_t seq = 1) {
  Request req;
  RequestError err;
  EXPECT_TRUE(parse_request(line, seq, req, err))
      << line << " -> " << err.code << ": " << err.message;
  return req;
}

RequestError must_fail(const std::string& line, std::uint64_t seq = 1) {
  Request req;
  RequestError err;
  EXPECT_FALSE(parse_request(line, seq, req, err)) << line;
  return err;
}

TEST(Protocol, OpTokensRoundTrip) {
  const Op all[] = {Op::Hello,  Op::Build,  Op::Traffic, Op::Fault,
                    Op::Convert, Op::WhatIf, Op::Expand,  Op::Query,
                    Op::Stats,  Op::Manifest};
  for (Op op : all) {
    Op back;
    ASSERT_TRUE(parse_op(to_string(op), back)) << to_string(op);
    EXPECT_EQ(back, op);
  }
  Op out;
  EXPECT_FALSE(parse_op("", out));
  EXPECT_FALSE(parse_op("HELLO", out));  // tokens are lowercase, exact
  EXPECT_FALSE(parse_op("whatif", out));
}

TEST(Protocol, ReadOnlySubsetIsExactlyTheBatchableOps) {
  EXPECT_TRUE(read_only(Op::Hello));
  EXPECT_TRUE(read_only(Op::Query));
  EXPECT_TRUE(read_only(Op::WhatIf));
  EXPECT_FALSE(read_only(Op::Build));
  EXPECT_FALSE(read_only(Op::Traffic));
  EXPECT_FALSE(read_only(Op::Fault));
  EXPECT_FALSE(read_only(Op::Convert));
  EXPECT_FALSE(read_only(Op::Expand));
  EXPECT_FALSE(read_only(Op::Stats));     // reads mutable counters
  EXPECT_FALSE(read_only(Op::Manifest));  // writes a file
}

TEST(Protocol, ParsesEnvelopeDefaults) {
  Request req = must_parse(R"({"op":"query"})", 7);
  EXPECT_EQ(req.op, Op::Query);
  EXPECT_EQ(req.seq, 7u);
  EXPECT_EQ(req.session, 0u);
  EXPECT_EQ(req.id_json, "");
  EXPECT_DOUBLE_EQ(req.deadline_ms, 0.0);
  EXPECT_EQ(req.canonical, R"({"op":"query"})");
}

TEST(Protocol, ParsesFullEnvelope) {
  Request req =
      must_parse(R"({"op":"what_if","id":"q-1","session":3,"deadline_ms":2.5})");
  EXPECT_EQ(req.op, Op::WhatIf);
  EXPECT_EQ(req.id_json, "\"q-1\"");
  EXPECT_EQ(req.session, 3u);
  EXPECT_DOUBLE_EQ(req.deadline_ms, 2.5);
  // Canonical form preserves document key order (it is the journal line).
  EXPECT_EQ(req.canonical,
            R"({"op":"what_if","id":"q-1","session":3,"deadline_ms":2.5})");
}

TEST(Protocol, IdMayBeAnyScalar) {
  EXPECT_EQ(must_parse(R"({"op":"hello","id":42})").id_json, "42");
  EXPECT_EQ(must_parse(R"({"op":"hello","id":true})").id_json, "true");
  EXPECT_EQ(must_parse(R"({"op":"hello","id":null})").id_json, "null");
  EXPECT_EQ(must_parse(R"({"op":"hello","id":-1.5})").id_json, "-1.5");
  EXPECT_EQ(must_fail(R"({"op":"hello","id":[1]})").code, "svc.request.bad_field");
  EXPECT_EQ(must_fail(R"({"op":"hello","id":{}})").code, "svc.request.bad_field");
}

TEST(Protocol, EnvelopeErrorCodes) {
  // Parse errors surface the json.* code with position info; an input cut
  // mid-document is the truncation class, not a generic expected_value.
  RequestError err = must_fail("{\"op\":");
  EXPECT_EQ(err.code, "json.truncated");
  EXPECT_GT(err.line, 0u);
  EXPECT_GT(err.column, 0u);

  EXPECT_EQ(must_fail("[1,2]").code, "svc.request.not_object");
  EXPECT_EQ(must_fail("42").code, "svc.request.not_object");
  EXPECT_EQ(must_fail("{}").code, "svc.request.missing_op");
  EXPECT_EQ(must_fail(R"({"op":42})").code, "svc.request.missing_op");

  err = must_fail(R"({"op":"frobnicate"})");
  EXPECT_EQ(err.code, "svc.request.unknown_op");
  // The message lists the valid tokens so a client can self-correct.
  EXPECT_NE(err.message.find("hello"), std::string::npos);
  EXPECT_NE(err.message.find("what_if"), std::string::npos);
  EXPECT_NE(err.message.find("manifest"), std::string::npos);
}

TEST(Protocol, SessionBounds) {
  EXPECT_EQ(must_parse(R"({"op":"query","session":0})").session, 0u);
  EXPECT_EQ(must_parse(R"({"op":"query","session":31})").session,
            kMaxSessions - 1);
  EXPECT_EQ(must_fail(R"({"op":"query","session":32})").code,
            "svc.request.bad_field");
  EXPECT_EQ(must_fail(R"({"op":"query","session":-1})").code,
            "svc.request.bad_field");
  EXPECT_EQ(must_fail(R"({"op":"query","session":1.5})").code,
            "svc.request.bad_field");
}

TEST(Protocol, DeadlineValidation) {
  EXPECT_DOUBLE_EQ(must_parse(R"({"op":"query","deadline_ms":0})").deadline_ms, 0.0);
  EXPECT_DOUBLE_EQ(must_parse(R"({"op":"query","deadline_ms":0.25})").deadline_ms,
                   0.25);
  EXPECT_EQ(must_fail(R"({"op":"query","deadline_ms":-1})").code,
            "svc.request.bad_field");
  EXPECT_EQ(must_fail(R"({"op":"query","deadline_ms":"soon"})").code,
            "svc.request.bad_field");
}

TEST(Protocol, ResponseEnvelopeKeyOrderIsFixed) {
  Request req = must_parse(R"({"op":"query","id":9,"session":1})", 4);
  obs::JsonValue payload = obs::JsonValue::make_object();
  put(payload, "stranded", jint(0));
  put(payload, "apl", jdouble(3.5));
  EXPECT_EQ(render_response(req, payload),
            R"({"schema":"flattree-svc.v1","seq":4,"id":9,"op":"query","ok":true,)"
            R"("stranded":0,"apl":3.5})");

  // Without an id the key is omitted entirely (never "id":null).
  Request bare = must_parse(R"({"op":"hello"})", 1);
  EXPECT_EQ(render_response(bare, obs::JsonValue::make_object()),
            R"({"schema":"flattree-svc.v1","seq":1,"op":"hello","ok":true})");
}

TEST(Protocol, ErrorEnvelopes) {
  Request req = must_parse(R"({"op":"convert","id":"c7"})", 3);
  RequestError err{"svc.convert.in_flight", "conversion already in flight", 0, 0};
  EXPECT_EQ(render_error(req, err),
            R"({"schema":"flattree-svc.v1","seq":3,"id":"c7","op":"convert",)"
            R"("ok":false,"error":{"code":"svc.convert.in_flight",)"
            R"("message":"conversion already in flight"}})");

  // Line errors carry position info but no id/op (none was parsed).
  RequestError parse_err{"json.trailing", "trailing characters after document", 1, 9};
  EXPECT_EQ(render_line_error(5, parse_err),
            R"({"schema":"flattree-svc.v1","seq":5,"ok":false,)"
            R"("error":{"code":"json.trailing",)"
            R"("message":"trailing characters after document","line":1,"col":9}})");
}

TEST(Protocol, CanonicalFormIsAParseFixpoint) {
  Request req = must_parse(
      "  {\"op\" : \"traffic\", \"cluster\" : 16, \"seed\" : 1e1 }  ");
  Request again = must_parse(req.canonical);
  EXPECT_EQ(again.canonical, req.canonical);
  // 1e1 is a double token; its canonical spelling is json_number's.
  EXPECT_EQ(req.canonical, R"({"op":"traffic","cluster":16,"seed":1e+01})");
}

}  // namespace
}  // namespace flattree::svc
