// Journal v2 unit coverage (ISSUE 10): writer -> reader round trips, the
// torn-tail sweep (every byte prefix of a journal parses, and durability
// never exceeds the last commit), pinned corruption codes with 1-based
// record numbers, v1 auto-detection, and the explicit v1 -> v2 upgrade
// path. The crash-matrix test drives the same reader through the full
// service; this file pins the format itself.

#include "svc/durable/journal.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace flattree::svc::durable {
namespace {

/// A three-group journal exercising records, gaps of every class, and
/// tallies. Returns the bytes; `boundaries` gets the byte offset after
/// each commit (the clean-tear cut points).
std::string sample_journal(std::vector<std::uint64_t>* boundaries = nullptr) {
  std::ostringstream os;
  JournalWriter w(os);
  w.append_record(1, R"({"op":"build","k":4})");
  w.append_record(2, R"({"op":"query"})");
  w.add_tally({2, 1, 1, 0});
  w.commit();
  if (boundaries != nullptr) boundaries->push_back(os.str().size());
  w.append_gap(3, "reject");
  w.append_record(4, R"({"op":"fault","events":[]})");
  w.add_tally({0, 0, 0, 3});
  w.commit();
  if (boundaries != nullptr) boundaries->push_back(os.str().size());
  w.append_record(5, R"({"op":"query","id":"q"})");
  w.append_gap(6, "oversize");
  w.append_gap(7, "queue");
  w.append_gap(8, "deadline");
  w.commit();
  if (boundaries != nullptr) boundaries->push_back(os.str().size());
  return os.str();
}

TEST(Journal, WriterReaderRoundTrip) {
  std::string bytes = sample_journal();
  EXPECT_EQ(bytes.compare(0, std::string(kJournalHeaderV2).size(), kJournalHeaderV2),
            0);

  JournalContents c;
  JournalError err;
  ASSERT_TRUE(read_journal(bytes, c, err)) << err.code << ": " << err.message;
  EXPECT_EQ(c.version, 2);
  ASSERT_EQ(c.groups.size(), 3u);
  EXPECT_EQ(c.records, 4u);
  EXPECT_EQ(c.last_seq, 8u);
  EXPECT_EQ(c.committed_bytes, bytes.size());
  EXPECT_EQ(c.truncated_bytes, 0u);

  const JournalGroup& g0 = c.groups[0];
  ASSERT_EQ(g0.entries.size(), 2u);
  EXPECT_TRUE(g0.tally_known);
  EXPECT_EQ(g0.records, 2u);
  EXPECT_EQ(g0.tally.solves, 2u);
  EXPECT_EQ(g0.tally.truncated, 1u);
  EXPECT_EQ(g0.tally.certified, 1u);
  EXPECT_EQ(g0.entries[0].seq, 1u);
  EXPECT_EQ(g0.entries[0].canonical, R"({"op":"build","k":4})");

  const JournalGroup& g1 = c.groups[1];
  ASSERT_EQ(g1.entries.size(), 2u);
  EXPECT_FALSE(g1.entries[0].is_record);
  EXPECT_EQ(g1.entries[0].gap_class, "reject");
  EXPECT_EQ(g1.records, 1u);
  EXPECT_EQ(g1.tally.fault_events, 3u);

  const JournalGroup& g2 = c.groups[2];
  ASSERT_EQ(g2.entries.size(), 4u);
  EXPECT_EQ(g2.entries[1].gap_class, "oversize");
  EXPECT_EQ(g2.entries[2].gap_class, "queue");
  EXPECT_EQ(g2.entries[3].gap_class, "deadline");
}

TEST(Journal, EmptyAndHeaderOnlyAreValid) {
  JournalContents c;
  JournalError err;
  ASSERT_TRUE(read_journal("", c, err));
  EXPECT_TRUE(c.groups.empty());
  EXPECT_EQ(c.committed_bytes, 0u);

  std::string header = std::string(kJournalHeaderV2) + '\n';
  ASSERT_TRUE(read_journal(header, c, err));
  EXPECT_TRUE(c.groups.empty());
  EXPECT_EQ(c.committed_bytes, header.size());
  EXPECT_EQ(c.truncated_bytes, 0u);
}

TEST(Journal, EveryBytePrefixParsesAsATornTail) {
  // A crash can only shorten the file. Whatever byte it stops at, the
  // reader must accept the prefix, keep exactly the groups whose commit
  // frame survived whole, and report the rest as the torn tail — never a
  // corruption error, never durability past the cut.
  std::vector<std::uint64_t> boundaries;
  std::string bytes = sample_journal(&boundaries);
  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    JournalContents c;
    JournalError err;
    ASSERT_TRUE(read_journal(bytes.substr(0, cut), c, err))
        << "cut " << cut << ": " << err.code;
    std::size_t want_groups = 0;
    for (std::uint64_t b : boundaries)
      if (b <= cut) ++want_groups;
    EXPECT_EQ(c.groups.size(), want_groups) << "cut " << cut;
    EXPECT_LE(c.committed_bytes, cut) << "cut " << cut;
    EXPECT_EQ(c.committed_bytes + c.truncated_bytes, cut) << "cut " << cut;
    // Re-reading just the durable prefix is a fixpoint: same groups, no tail.
    JournalContents again;
    ASSERT_TRUE(read_journal(bytes.substr(0, c.committed_bytes), again, err));
    EXPECT_EQ(again.groups.size(), want_groups) << "cut " << cut;
    EXPECT_EQ(again.truncated_bytes, 0u) << "cut " << cut;
  }
}

TEST(Journal, CorruptRecordIsRefusedWithRecordNumber) {
  // Flip one payload byte of the *first* record while the journal still
  // ends with later commits: a complete line that fails its CRC can only
  // be corruption (a tear would have shortened the file instead).
  std::string bytes = sample_journal();
  std::size_t at = bytes.find("\"k\":4");
  ASSERT_NE(at, std::string::npos);
  bytes[at + 4] = '5';
  JournalContents c;
  JournalError err;
  ASSERT_FALSE(read_journal(bytes, c, err));
  EXPECT_EQ(err.code, "svc.journal.corrupt_record");
  EXPECT_EQ(err.record, 1u);

  // Same flip in the third record: the 1-based record number follows.
  bytes = sample_journal();
  at = bytes.find("\"events\":[]");
  ASSERT_NE(at, std::string::npos);
  bytes[at + 10] = 'x';
  ASSERT_FALSE(read_journal(bytes, c, err));
  EXPECT_EQ(err.code, "svc.journal.corrupt_record");
  EXPECT_EQ(err.record, 3u);
}

TEST(Journal, CorruptGapAndCommitHaveTheirOwnCodes) {
  std::string bytes = sample_journal();
  std::size_t at = bytes.find("x 3 reject");
  ASSERT_NE(at, std::string::npos);
  std::string tampered = bytes;
  tampered.replace(at, 10, "x 3 oversiz");  // class no longer matches its crc
  JournalContents c;
  JournalError err;
  ASSERT_FALSE(read_journal(tampered, c, err));
  EXPECT_EQ(err.code, "svc.journal.corrupt_gap");
  EXPECT_EQ(err.record, 2u);  // records seen before the bad gap

  // Tamper the first commit's record count: the chain check catches a
  // commit that does not cover its group even when the line is well formed.
  at = bytes.find("\nc 2 ");
  ASSERT_NE(at, std::string::npos);
  tampered = bytes;
  tampered[at + 3] = '3';
  ASSERT_FALSE(read_journal(tampered, c, err));
  EXPECT_EQ(err.code, "svc.journal.corrupt_commit");
  EXPECT_EQ(err.record, 2u);
}

TEST(Journal, ForeignLineMidStreamIsCorruption) {
  std::string bytes = sample_journal();
  std::size_t at = bytes.find("x 3 reject");
  ASSERT_NE(at, std::string::npos);
  bytes.insert(at, "how did this get here\n");
  JournalContents c;
  JournalError err;
  ASSERT_FALSE(read_journal(bytes, c, err));
  EXPECT_EQ(err.code, "svc.journal.corrupt_record");
  EXPECT_EQ(err.record, 3u);  // next record ordinal
}

TEST(Journal, HeaderlessBytesAutoDetectAsV1) {
  std::string v1 =
      "{\"op\":\"build\",\"k\":4}\n"
      "{\"op\":\"query\"}\n"
      "{\"op\":\"stats\"}\n"
      "{\"op\":\"partial";  // torn tail, no newline
  JournalContents c;
  JournalError err;
  ASSERT_TRUE(read_journal(v1, c, err)) << err.code;
  EXPECT_EQ(c.version, 1);
  ASSERT_EQ(c.groups.size(), 3u);
  for (const JournalGroup& g : c.groups) {
    EXPECT_FALSE(g.tally_known);  // recovery must re-evaluate, not fast-forward
    EXPECT_EQ(g.records, 1u);
  }
  EXPECT_EQ(c.groups[1].entries[0].seq, 2u);
  EXPECT_EQ(c.groups[1].entries[0].canonical, "{\"op\":\"query\"}");
  EXPECT_EQ(c.truncated_bytes, std::string("{\"op\":\"partial").size());

  std::string junk = "{\"op\":\"query\"}\nnot a json line\n";
  ASSERT_FALSE(read_journal(junk, c, err));
  EXPECT_EQ(err.code, "svc.journal.bad_v1_line");
  EXPECT_EQ(err.record, 2u);
}

TEST(Journal, V1UpgradeRoundTrips) {
  std::string v1 =
      "{\"op\":\"build\",\"k\":4}\n"
      "{\"op\":\"query\"}\n"
      "{\"op\":\"torn";  // dropped by the upgrade
  std::string v2;
  JournalError err;
  ASSERT_TRUE(upgrade_v1_journal(v1, v2, err)) << err.code;
  EXPECT_EQ(v2.compare(0, std::string(kJournalHeaderV2).size(), kJournalHeaderV2), 0);

  JournalContents upgraded, direct;
  ASSERT_TRUE(read_journal(v2, upgraded, err)) << err.code;
  ASSERT_TRUE(read_journal(v1, direct, err)) << err.code;
  ASSERT_EQ(upgraded.groups.size(), direct.groups.size());
  EXPECT_EQ(upgraded.truncated_bytes, 0u);  // the upgrade already dropped the tear
  for (std::size_t i = 0; i < upgraded.groups.size(); ++i) {
    EXPECT_FALSE(upgraded.groups[i].tally_known);  // `u` commits: tally unknown
    ASSERT_EQ(upgraded.groups[i].entries.size(), 1u);
    EXPECT_EQ(upgraded.groups[i].entries[0].canonical,
              direct.groups[i].entries[0].canonical);
    EXPECT_EQ(upgraded.groups[i].entries[0].seq, direct.groups[i].entries[0].seq);
  }

  std::string bad = "{\"op\":\"query\"}\n{\"op\":\n";
  ASSERT_FALSE(upgrade_v1_journal(bad, v2, err));
  EXPECT_EQ(err.code, "svc.journal.bad_v1_line");
  EXPECT_EQ(err.record, 2u);
  EXPECT_NE(err.message.find("json.truncated"), std::string::npos);
}

TEST(Journal, ResumeWriterAppendsWithoutAHeader) {
  // The --recover path truncates the torn tail, then appends. The
  // resumed writer must not emit a second header, and the combined bytes
  // must read back as one journal.
  std::ostringstream first;
  {
    JournalWriter w(first);
    w.append_record(1, R"({"op":"build","k":4})");
    w.commit();
  }
  std::ostringstream second;
  {
    JournalWriter w(second, /*resume=*/true);
    w.append_record(2, R"({"op":"query"})");
    w.commit();
  }
  EXPECT_EQ(second.str().find(kJournalHeaderV2), std::string::npos);
  JournalContents c;
  JournalError err;
  ASSERT_TRUE(read_journal(first.str() + second.str(), c, err)) << err.code;
  ASSERT_EQ(c.groups.size(), 2u);
  EXPECT_EQ(c.records, 2u);
  EXPECT_EQ(c.last_seq, 2u);
}

TEST(Journal, EmptyCommitIsANoOp) {
  std::ostringstream os;
  JournalWriter w(os);
  w.add_tally({5, 0, 0, 0});  // tally with no frames: discarded, not committed
  w.commit();
  EXPECT_EQ(os.str(), std::string(kJournalHeaderV2) + '\n');
  EXPECT_EQ(w.groups_committed(), 0u);
  // The discarded tally must not leak into the next group.
  w.append_record(1, R"({"op":"query"})");
  w.commit();
  JournalContents c;
  JournalError err;
  ASSERT_TRUE(read_journal(os.str(), c, err)) << err.code;
  ASSERT_EQ(c.groups.size(), 1u);
  EXPECT_EQ(c.groups[0].tally.solves, 0u);
}

}  // namespace
}  // namespace flattree::svc::durable
