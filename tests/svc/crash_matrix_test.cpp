// The crash matrix (ISSUE 10 acceptance): sever the journal at every cut
// point in the default fault::CrashPlan — each commit (frame) boundary
// plus every byte of the final record frame — recover a fresh service
// from snapshot + journal, resume the remaining request stream, and
// byte-compare every response and the combined journal against the
// uninterrupted run. Also the satellite replay-equivalence matrix:
// journal(replay(recover(snapshot, journal_suffix))) == journal at
// threads 1 and 8, obs on/off, incremental on/off, and the corrupted
// non-tail record negative control.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "exec/parallel_for.hpp"
#include "fault/crash.hpp"
#include "obs/metrics.hpp"
#include "svc/service.hpp"

namespace flattree::svc {
namespace {

/// The session under test: two shards, faults, a staged conversion,
/// deadlined queries, and two rejected lines (gap frames in the journal).
std::string crash_script() {
  return R"({"op":"hello","id":1}
{"op":"build","k":4}
{"op":"traffic","cluster":8,"pattern":"broadcast","placement":"none","seed":7}
{"op":"fault","events":[{"t":1,"kind":"switch_down","a":0}],"advance":2}
{"op":"query","id":"q1"}
this line is not json
{"op":"query","id":"q2","deadline_ms":0.01}
{"op":"build","k":4,"session":1}
{"op":"query","session":1,"lambda":false}
{"op":"convert","target":"global","advance":0}
{"op":"convert","advance":1000000}
{"op":"fault","events":[{"t":2,"kind":"switch_up","a":0}]}
{"op":"frobnicate"}
{"op":"query","id":"q3"}
{"op":"stats"}
)";
}

/// Drops the first `n` lines of `text` (each line '\n'-terminated).
std::string drop_lines(const std::string& text, std::uint64_t n) {
  std::size_t pos = 0;
  for (std::uint64_t i = 0; i < n && pos < text.size(); ++i)
    pos = text.find('\n', pos) + 1;
  return text.substr(pos);
}

ServiceOptions crash_options() {
  ServiceOptions opt;
  opt.max_batch = 2;  // small batches -> many commit points to cut at
  return opt;
}

/// One uninterrupted reference run with periodic snapshots. Each captured
/// snapshot is paired with the journal size at the moment it was written,
/// so a cut knows which snapshot file would have been on disk.
struct Reference {
  std::string responses;
  std::string journal;
  std::vector<std::pair<std::uint64_t, std::string>> snapshots;
};

Reference run_reference() {
  Reference ref;
  std::ostringstream journal;
  ServiceOptions opt = crash_options();
  opt.journal = &journal;
  opt.snapshot_every = 2;
  opt.snapshot_sink = [&](const std::string& bytes) {
    ref.snapshots.emplace_back(journal.str().size(), bytes);
  };
  Service service(opt);
  std::istringstream in(crash_script());
  std::ostringstream out;
  service.run(in, out);
  ref.responses = out.str();
  ref.journal = journal.str();
  return ref;
}

/// The default plan from the acceptance criteria: a cut after every frame
/// (line) boundary, plus every byte of the final record frame.
fault::CrashPlan default_plan(const std::string& journal) {
  std::vector<std::uint64_t> boundaries;
  std::size_t pos = 0;
  while ((pos = journal.find('\n', pos)) != std::string::npos) {
    ++pos;
    boundaries.push_back(pos);
  }
  std::size_t last_record = journal.rfind("\nr ");
  EXPECT_NE(last_record, std::string::npos);
  std::size_t record_end = journal.find('\n', last_record + 1);
  return fault::merge_plans(fault::crash_after_each_frame(boundaries),
                            fault::crash_every_byte(last_record + 1, record_end + 1));
}

/// Recovers from the surviving journal prefix (+ optional snapshot),
/// resumes the remaining script, and returns {response suffix, combined
/// journal}. Fails the test on any recovery refusal.
struct Recovered {
  std::string responses;
  std::string journal;
  std::uint64_t resume_seq = 0;
};

Recovered recover_and_resume(const Reference& ref, std::uint64_t cut,
                             bool use_snapshot, bool incremental = false) {
  Recovered result;
  std::string prefix = ref.journal.substr(0, cut);
  durable::JournalContents contents;
  durable::JournalError jerr;
  EXPECT_TRUE(durable::read_journal(prefix, contents, jerr))
      << "cut " << cut << ": " << jerr.code;
  EXPECT_LE(contents.committed_bytes, cut);
  std::string durable_prefix = prefix.substr(0, contents.committed_bytes);

  durable::ServiceSnapshot snap;
  bool have_snap = false;
  if (use_snapshot) {
    // The latest snapshot written while the durable prefix still covered
    // it — what the atomic tmp+rename maintenance would have on disk.
    for (const auto& [size, bytes] : ref.snapshots) {
      if (size > contents.committed_bytes) break;
      durable::SnapshotError serr;
      EXPECT_TRUE(durable::decode_snapshot(bytes, snap, serr)) << serr.code;
      have_snap = true;
    }
  }

  std::ostringstream journal2;
  ServiceOptions opt = crash_options();
  opt.journal = &journal2;
  opt.journal_resume = true;
  opt.incremental = incremental;
  opt.snapshot_every = 2;
  opt.snapshot_sink = [](const std::string&) {};  // cadence on, capture unused
  Service service(opt);
  RecoverStats rs;
  std::string error;
  EXPECT_TRUE(service.recover(have_snap ? &snap : nullptr, contents, rs, error))
      << "cut " << cut << ": " << error;
  result.resume_seq = rs.resume_seq;

  std::istringstream in(drop_lines(crash_script(), rs.resume_seq));
  std::ostringstream out;
  service.run(in, out);
  result.responses = out.str();
  result.journal = durable_prefix + journal2.str();
  return result;
}

TEST(CrashMatrix, EveryCutPointRecoversByteIdentical) {
  exec::set_global_threads(1);
  Reference ref = run_reference();
  ASSERT_FALSE(ref.journal.empty());
  ASSERT_FALSE(ref.snapshots.empty());

  fault::CrashPlan plan = default_plan(ref.journal);
  ASSERT_GT(plan.cuts.size(), 20u);
  for (std::uint64_t cut : plan.cuts) {
    for (bool use_snapshot : {true, false}) {
      Recovered got = recover_and_resume(ref, cut, use_snapshot);
      // The response stream picks up exactly where the durable prefix
      // ends, and the combined journal is the uninterrupted journal.
      EXPECT_EQ(got.responses, drop_lines(ref.responses, got.resume_seq))
          << "cut " << cut << " snapshot=" << use_snapshot;
      EXPECT_EQ(got.journal, ref.journal)
          << "cut " << cut << " snapshot=" << use_snapshot;
    }
  }
  exec::set_global_threads(0);
}

TEST(CrashMatrix, CorruptedNonTailRecordIsRefused) {
  exec::set_global_threads(1);
  Reference ref = run_reference();
  // Flip a byte inside the first record frame's payload: the journal
  // still ends with later valid commits, so this cannot be mistaken for
  // a torn tail and recovery must refuse rather than guess.
  std::size_t at = ref.journal.find("{\"op\":\"hello\"");
  ASSERT_NE(at, std::string::npos);
  std::string corrupted = ref.journal;
  corrupted[at + 7] ^= 0x20;
  durable::JournalContents contents;
  durable::JournalError jerr;
  ASSERT_FALSE(durable::read_journal(corrupted, contents, jerr));
  EXPECT_EQ(jerr.code, "svc.journal.corrupt_record");
  EXPECT_EQ(jerr.record, 1u);
  exec::set_global_threads(0);
}

TEST(CrashMatrix, ReplayEquivalenceAcrossThreadsObsAndIncremental) {
  // Satellite: journal(replay(recover(snapshot, journal_suffix))) ==
  // journal, byte for byte, across the whole determinism matrix. The cut
  // is a mid-stream commit boundary so the recovery has both a snapshot
  // to restore and a journal suffix to replay.
  exec::set_global_threads(1);
  Reference ref = run_reference();
  fault::CrashPlan plan = default_plan(ref.journal);
  const std::uint64_t cut = plan.cuts[plan.cuts.size() / 2];

  struct Config {
    unsigned threads;
    bool obs;
    bool incremental;
  };
  const Config configs[] = {{1, false, false}, {8, false, false}, {1, true, false},
                            {8, true, false},  {1, false, true},  {8, false, true},
                            {1, true, true},   {8, true, true}};
  for (const Config& c : configs) {
    exec::set_global_threads(c.threads);
    obs::set_enabled(c.obs);
    Recovered got = recover_and_resume(ref, cut, /*use_snapshot=*/true,
                                       c.incremental);
    EXPECT_EQ(got.journal, ref.journal)
        << "threads=" << c.threads << " obs=" << c.obs << " inc=" << c.incremental;
    EXPECT_EQ(got.responses, drop_lines(ref.responses, got.resume_seq));

    // And the recovered journal replays as a fixpoint: feeding it back as
    // the input script journals the exact same bytes.
    std::ostringstream journal3;
    ServiceOptions opt = crash_options();
    opt.journal = &journal3;
    opt.incremental = c.incremental;
    Service replayer(opt);
    std::istringstream in(got.journal);
    std::ostringstream out;
    replayer.run(in, out);
    EXPECT_EQ(journal3.str(), got.journal)
        << "threads=" << c.threads << " obs=" << c.obs << " inc=" << c.incremental;
  }
  obs::set_enabled(false);
  exec::set_global_threads(0);
}

}  // namespace
}  // namespace flattree::svc
