#include "workload/traffic.hpp"

#include <gtest/gtest.h>

#include <set>

namespace flattree::workload {
namespace {

Cluster cluster_of(std::initializer_list<ServerId> servers) {
  Cluster c;
  c.servers = servers;
  return c;
}

TEST(Broadcast, OneSourceToAllOthers) {
  util::Rng rng(1);
  Cluster c = cluster_of({3, 7, 9, 11});
  auto demands = broadcast_traffic(c, rng);
  ASSERT_EQ(demands.size(), 3u);
  ServerId hot = demands[0].src;
  std::set<ServerId> dsts;
  for (const auto& d : demands) {
    EXPECT_EQ(d.src, hot);
    EXPECT_NE(d.dst, hot);
    EXPECT_DOUBLE_EQ(d.demand, 1.0);
    dsts.insert(d.dst);
  }
  EXPECT_EQ(dsts.size(), 3u);
}

TEST(Incast, AllOthersToOneSink) {
  util::Rng rng(2);
  Cluster c = cluster_of({1, 2, 3, 4, 5});
  auto demands = incast_traffic(c, rng);
  ASSERT_EQ(demands.size(), 4u);
  ServerId hot = demands[0].dst;
  for (const auto& d : demands) {
    EXPECT_EQ(d.dst, hot);
    EXPECT_NE(d.src, hot);
  }
}

TEST(BroadcastIncast, HotSpotIsClusterMember) {
  util::Rng rng(3);
  Cluster c = cluster_of({10, 20, 30});
  auto b = broadcast_traffic(c, rng);
  EXPECT_TRUE(b[0].src == 10 || b[0].src == 20 || b[0].src == 30);
  auto i = incast_traffic(c, rng);
  EXPECT_TRUE(i[0].dst == 10 || i[0].dst == 20 || i[0].dst == 30);
}

TEST(BroadcastIncast, TooSmallClusterThrows) {
  util::Rng rng(4);
  Cluster c = cluster_of({5});
  EXPECT_THROW(broadcast_traffic(c, rng), std::invalid_argument);
  EXPECT_THROW(incast_traffic(c, rng), std::invalid_argument);
}

TEST(AllToAll, EveryOrderedPairOnce) {
  Cluster c = cluster_of({1, 2, 3});
  auto demands = all_to_all_traffic(c);
  ASSERT_EQ(demands.size(), 6u);
  std::set<std::pair<ServerId, ServerId>> pairs;
  for (const auto& d : demands) {
    EXPECT_NE(d.src, d.dst);
    pairs.insert({d.src, d.dst});
  }
  EXPECT_EQ(pairs.size(), 6u);
}

TEST(ClusterTraffic, ConcatenatesAcrossClusters) {
  util::Rng rng(5);
  std::vector<Cluster> clusters{cluster_of({0, 1, 2}), cluster_of({3, 4, 5})};
  auto bc = cluster_traffic(clusters, Pattern::Broadcast, rng);
  EXPECT_EQ(bc.size(), 4u);  // 2 per cluster
  auto aa = cluster_traffic(clusters, Pattern::AllToAll, rng);
  EXPECT_EQ(aa.size(), 12u);
  auto in = cluster_traffic(clusters, Pattern::Incast, rng);
  EXPECT_EQ(in.size(), 4u);
}

TEST(ClusterTraffic, DemandsStayWithinCluster) {
  util::Rng rng(6);
  std::vector<Cluster> clusters{cluster_of({0, 1, 2}), cluster_of({10, 11, 12})};
  for (auto pattern : {Pattern::Broadcast, Pattern::Incast, Pattern::AllToAll}) {
    for (const auto& d : cluster_traffic(clusters, pattern, rng)) {
      bool both_low = d.src <= 2 && d.dst <= 2;
      bool both_high = d.src >= 10 && d.dst >= 10;
      EXPECT_TRUE(both_low || both_high);
    }
  }
}

TEST(Permutation, NoFixedPointsAndFullCoverage) {
  util::Rng rng(7);
  auto demands = permutation_traffic(64, rng);
  ASSERT_EQ(demands.size(), 64u);
  std::set<ServerId> srcs, dsts;
  for (const auto& d : demands) {
    EXPECT_NE(d.src, d.dst);
    srcs.insert(d.src);
    dsts.insert(d.dst);
  }
  EXPECT_EQ(srcs.size(), 64u);
  EXPECT_EQ(dsts.size(), 64u);
}

TEST(Permutation, TinyCases) {
  util::Rng rng(8);
  auto demands = permutation_traffic(2, rng);
  ASSERT_EQ(demands.size(), 2u);
  EXPECT_NE(demands[0].src, demands[0].dst);
  EXPECT_THROW(permutation_traffic(1, rng), std::invalid_argument);
}

TEST(Pattern, ToStringCoverage) {
  EXPECT_STREQ(to_string(Pattern::Broadcast), "broadcast");
  EXPECT_STREQ(to_string(Pattern::Incast), "incast");
  EXPECT_STREQ(to_string(Pattern::AllToAll), "all-to-all");
}

TEST(IncastPattern, DistinctSourcesOneSinkNoSelfPairs) {
  auto demands = incast_pattern(64, 12, /*seed=*/5);
  ASSERT_EQ(demands.size(), 12u);
  ServerId sink = demands[0].dst;
  std::set<ServerId> srcs;
  for (const auto& d : demands) {
    EXPECT_EQ(d.dst, sink);
    EXPECT_NE(d.src, sink);
    EXPECT_LT(d.src, 64u);
    EXPECT_DOUBLE_EQ(d.demand, 1.0);
    srcs.insert(d.src);
  }
  EXPECT_EQ(srcs.size(), 12u);  // sources are distinct
}

TEST(IncastPattern, PureFunctionOfSeed) {
  auto a = incast_pattern(64, 12, 5);
  auto b = incast_pattern(64, 12, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
  }
  // A different seed moves the sink or the source set.
  auto c = incast_pattern(64, 12, 6);
  bool differs = c[0].dst != a[0].dst;
  for (std::size_t i = 0; !differs && i < a.size(); ++i) differs = a[i].src != c[i].src;
  EXPECT_TRUE(differs);
}

TEST(IncastPattern, FullFanInAndErrorCases) {
  auto all = incast_pattern(16, 15, 3);  // every other server sends
  EXPECT_EQ(all.size(), 15u);
  EXPECT_THROW(incast_pattern(1, 1, 0), std::invalid_argument);
  EXPECT_THROW(incast_pattern(16, 0, 0), std::invalid_argument);
  EXPECT_THROW(incast_pattern(16, 16, 0), std::invalid_argument);
}

}  // namespace
}  // namespace flattree::workload
