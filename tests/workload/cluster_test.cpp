#include "workload/cluster.hpp"

#include <gtest/gtest.h>

#include <set>

namespace flattree::workload {
namespace {

void check_partition(const std::vector<Cluster>& clusters, std::uint32_t size,
                     std::uint32_t total) {
  std::set<ServerId> seen;
  for (const Cluster& c : clusters) {
    EXPECT_EQ(c.servers.size(), size);
    for (ServerId s : c.servers) {
      EXPECT_LT(s, total);
      EXPECT_TRUE(seen.insert(s).second) << "server " << s << " in two clusters";
    }
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(total / size) * size);
}

class PlacementParam : public ::testing::TestWithParam<Placement> {};

TEST_P(PlacementParam, PartitionIsDisjointAndFullSized) {
  util::Rng rng(1);
  auto clusters = make_clusters(128, 20, GetParam(), 16, rng);
  EXPECT_EQ(clusters.size(), 6u);  // floor(128/20)
  check_partition(clusters, 20, 128);
}

TEST_P(PlacementParam, ExactDivision) {
  util::Rng rng(2);
  auto clusters = make_clusters(100, 20, GetParam(), 25, rng);
  EXPECT_EQ(clusters.size(), 5u);
  check_partition(clusters, 20, 100);
}

INSTANTIATE_TEST_SUITE_P(All, PlacementParam,
                         ::testing::Values(Placement::Locality, Placement::WeakLocality,
                                           Placement::NoLocality));

TEST(Locality, ClustersAreConsecutive) {
  util::Rng rng(3);
  auto clusters = make_clusters(64, 8, Placement::Locality, 16, rng);
  for (std::size_t c = 0; c < clusters.size(); ++c)
    for (std::size_t i = 0; i < 8; ++i)
      EXPECT_EQ(clusters[c].servers[i], c * 8 + i);
}

TEST(WeakLocality, ClustersStayInOnePodWhenTheyFit) {
  // Pods of 32 servers, clusters of 8: 8 | 32, so no cluster ever needs to
  // spill (a pod's free count is always a multiple of the cluster size).
  util::Rng rng(4);
  auto clusters = make_clusters(128, 8, Placement::WeakLocality, 32, rng);
  for (const Cluster& c : clusters) {
    std::set<std::uint32_t> pods;
    for (ServerId s : c.servers) pods.insert(s / 32);
    EXPECT_EQ(pods.size(), 1u);
  }
}

TEST(WeakLocality, SpillsWhenClusterExceedsPod) {
  // Cluster 20 > pod 4: must span pods but still partition correctly.
  util::Rng rng(5);
  auto clusters = make_clusters(64, 20, Placement::WeakLocality, 4, rng);
  EXPECT_EQ(clusters.size(), 3u);
  check_partition(clusters, 20, 64);
}

TEST(WeakLocality, UsesVariousPods) {
  util::Rng rng(6);
  auto clusters = make_clusters(256, 16, Placement::WeakLocality, 32, rng);
  std::set<std::uint32_t> first_pods;
  for (const Cluster& c : clusters) first_pods.insert(c.servers[0] / 32);
  EXPECT_GT(first_pods.size(), 1u);  // not all clusters in one pod
}

TEST(NoLocality, SpreadsAcrossNetwork) {
  util::Rng rng(7);
  auto clusters = make_clusters(512, 64, Placement::NoLocality, 64, rng);
  // A random 64-subset of 512 servers across 8 pods almost surely touches
  // more than 2 pods.
  for (const Cluster& c : clusters) {
    std::set<std::uint32_t> pods;
    for (ServerId s : c.servers) pods.insert(s / 64);
    EXPECT_GT(pods.size(), 2u);
  }
}

TEST(MakeClusters, LeftoverServersIdle) {
  util::Rng rng(8);
  auto clusters = make_clusters(50, 20, Placement::Locality, 25, rng);
  EXPECT_EQ(clusters.size(), 2u);  // 10 servers idle
}

TEST(MakeClusters, ErrorCases) {
  util::Rng rng(9);
  EXPECT_THROW(make_clusters(10, 0, Placement::Locality, 5, rng), std::invalid_argument);
  EXPECT_THROW(make_clusters(10, 2, Placement::Locality, 0, rng), std::invalid_argument);
}

TEST(MakeClustersSubset, RestrictsToEligible) {
  util::Rng rng(10);
  std::vector<ServerId> eligible;
  for (ServerId s = 100; s < 140; ++s) eligible.push_back(s);
  auto clusters = make_clusters_subset(eligible, 10, Placement::NoLocality, 16, rng);
  EXPECT_EQ(clusters.size(), 4u);
  for (const Cluster& c : clusters)
    for (ServerId s : c.servers) {
      EXPECT_GE(s, 100u);
      EXPECT_LT(s, 140u);
    }
}

TEST(MakeClusters, DeterministicGivenSeed) {
  util::Rng a(11), b(11);
  auto c1 = make_clusters(64, 8, Placement::NoLocality, 16, a);
  auto c2 = make_clusters(64, 8, Placement::NoLocality, 16, b);
  ASSERT_EQ(c1.size(), c2.size());
  for (std::size_t i = 0; i < c1.size(); ++i) EXPECT_EQ(c1[i].servers, c2[i].servers);
}

TEST(Placement, ToStringCoverage) {
  EXPECT_STREQ(to_string(Placement::Locality), "locality");
  EXPECT_STREQ(to_string(Placement::WeakLocality), "weak-locality");
  EXPECT_STREQ(to_string(Placement::NoLocality), "no-locality");
}

}  // namespace
}  // namespace flattree::workload
