// design::Candidate: canonical form, the factories' validation rules, and
// the byte-exact encode/decode round trip (the same contract fault
// scenario files carry).

#include "design/candidate.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace flattree::design {
namespace {

using core::Mode;

TEST(Candidate, UniformIsOneZone) {
  Candidate c = Candidate::uniform(8, Mode::GlobalRandom);
  EXPECT_EQ(c.pods(), 8u);
  ASSERT_EQ(c.zones().size(), 1u);
  EXPECT_EQ(c.zones()[0], (Zone{0, 8, Mode::GlobalRandom}));
  EXPECT_THROW(Candidate::uniform(0, Mode::Clos), std::invalid_argument);
}

TEST(Candidate, FromPodModesMergesRuns) {
  std::vector<Mode> modes = {Mode::Clos, Mode::Clos, Mode::GlobalRandom,
                             Mode::GlobalRandom, Mode::GlobalRandom,
                             Mode::LocalRandom};
  Candidate c = Candidate::from_pod_modes(modes);
  ASSERT_EQ(c.zones().size(), 3u);
  EXPECT_EQ(c.zones()[0], (Zone{0, 2, Mode::Clos}));
  EXPECT_EQ(c.zones()[1], (Zone{2, 5, Mode::GlobalRandom}));
  EXPECT_EQ(c.zones()[2], (Zone{5, 6, Mode::LocalRandom}));
  EXPECT_EQ(c.pod_modes(), modes);  // round trip back to the flat vector
}

TEST(Candidate, FromZonesCanonicalizesAdjacentSameMode) {
  Candidate c = Candidate::from_zones(
      6, {{0, 3, Mode::Clos}, {3, 6, Mode::Clos}});
  ASSERT_EQ(c.zones().size(), 1u);
  EXPECT_EQ(c, Candidate::uniform(6, Mode::Clos));
}

TEST(Candidate, FromZonesRejectsGapsOverlapsAndEmptyZones) {
  using Z = std::vector<Zone>;
  EXPECT_THROW(Candidate::from_zones(6, Z{{0, 3, Mode::Clos}}),
               std::invalid_argument);  // does not cover [0, 6)
  EXPECT_THROW(
      Candidate::from_zones(6, Z{{0, 4, Mode::Clos}, {3, 6, Mode::LocalRandom}}),
      std::invalid_argument);  // overlap
  EXPECT_THROW(
      Candidate::from_zones(6, Z{{0, 2, Mode::Clos}, {3, 6, Mode::LocalRandom}}),
      std::invalid_argument);  // gap
  EXPECT_THROW(
      Candidate::from_zones(6, Z{{0, 0, Mode::Clos}, {0, 6, Mode::LocalRandom}}),
      std::invalid_argument);  // empty zone
  EXPECT_THROW(Candidate::from_zones(6, Z{}), std::invalid_argument);
}

TEST(Candidate, PodsInCollectsAscending) {
  Candidate c = Candidate::from_zones(8, {{0, 2, Mode::LocalRandom},
                                          {2, 6, Mode::GlobalRandom},
                                          {6, 8, Mode::LocalRandom}});
  EXPECT_EQ(c.pods_in(Mode::LocalRandom),
            (std::vector<std::uint32_t>{0, 1, 6, 7}));
  EXPECT_EQ(c.pods_in(Mode::GlobalRandom),
            (std::vector<std::uint32_t>{2, 3, 4, 5}));
  EXPECT_TRUE(c.pods_in(Mode::Clos).empty());
}

TEST(Candidate, EncodeDecodeRoundTripsByteExact) {
  Candidate c = Candidate::from_zones(8, {{0, 5, Mode::GlobalRandom},
                                          {5, 7, Mode::Clos},
                                          {7, 8, Mode::LocalRandom}});
  std::string text = c.encode();
  // decode(encode(c)) == c ...
  EXPECT_EQ(Candidate::decode(text), c);
  // ... and encode(decode(s)) == s, byte for byte, for canonical s.
  EXPECT_EQ(Candidate::decode(text).encode(), text);
}

TEST(Candidate, EncodeIsTheDocumentedTextFormat) {
  Candidate c = Candidate::from_zones(4, {{0, 3, Mode::Clos},
                                          {3, 4, Mode::LocalRandom}});
  EXPECT_EQ(c.encode(),
            "# flattree-design-candidate v1\n"
            "pods 4\n"
            "zone 0 3 clos\n"
            "zone 3 4 local-random\n");
}

TEST(Candidate, DecodeIgnoresBlankAndCommentLines) {
  Candidate c = Candidate::decode(
      "# flattree-design-candidate v1\n"
      "\n"
      "# a comment\n"
      "pods 4\n"
      "zone 0 4 global-random\n"
      "\n");
  EXPECT_EQ(c, Candidate::uniform(4, Mode::GlobalRandom));
}

TEST(Candidate, DecodeRejectsMalformedInput) {
  EXPECT_THROW(Candidate::decode(""), std::runtime_error);
  EXPECT_THROW(Candidate::decode("pods 4\nzone 0 4 clos\n"),
               std::runtime_error);  // missing header
  EXPECT_THROW(Candidate::decode("# flattree-design-candidate v1\n"
                                 "zone 0 4 clos\n"),
               std::runtime_error);  // missing pods line
  EXPECT_THROW(Candidate::decode("# flattree-design-candidate v1\n"
                                 "pods 4\n"
                                 "zone 0 4 mesh\n"),
               std::runtime_error);  // unknown mode token
  EXPECT_THROW(Candidate::decode("# flattree-design-candidate v1\n"
                                 "pods 4\n"
                                 "zone 0 3 clos\n"),
               std::runtime_error);  // coverage failure surfaces as decode error
  EXPECT_THROW(Candidate::decode("# flattree-design-candidate v1\n"
                                 "pods 4\n"
                                 "frob 0 4 clos\n"),
               std::runtime_error);  // unknown directive
}

}  // namespace
}  // namespace flattree::design
