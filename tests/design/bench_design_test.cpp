// End-to-end checks of the bench_design binary (ISSUE 9): stdout must be
// byte-identical across --threads counts and with --metrics-json on or
// off (the house invariant every bench carries), and --summary-json must
// emit valid flattree.bench_design.v1 JSON whose default run beats the
// best uniform mode. Skips cleanly when the binary is not built.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hpp"

namespace flattree {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f != nullptr) std::fclose(f);
  return f != nullptr;
}

/// Small, fast configuration for the byte-identity matrix.
const char* kFastArgs = " --k 4 --iters 10";

std::string bench_bin() { return std::string(FT_BENCH_DIR) + "/bench_design"; }

int run_to(const std::string& extra, const std::string& out_path) {
  std::string cmd = bench_bin() + " " + extra + " > " + out_path + " 2>/dev/null";
  return std::system(cmd.c_str());
}

TEST(BenchDesign, StdoutByteIdenticalAcrossThreadsAndObs) {
  if (!file_exists(bench_bin())) GTEST_SKIP() << "bench binary not built";
  std::string dir = testing::TempDir();
  std::string t1 = dir + "design_t1.txt";
  std::string t8 = dir + "design_t8.txt";
  std::string obs = dir + "design_obs.txt";
  std::string manifest = dir + "design_manifest.json";
  ASSERT_EQ(run_to(std::string(kFastArgs) + " --threads 1", t1), 0);
  ASSERT_EQ(run_to(std::string(kFastArgs) + " --threads 8", t8), 0);
  ASSERT_EQ(run_to(std::string(kFastArgs) + " --threads 8 --metrics-json " + manifest,
                   obs),
            0);
  std::string base = slurp(t1);
  ASSERT_FALSE(base.empty());
  EXPECT_EQ(base, slurp(t8));
  EXPECT_EQ(base, slurp(obs));
  // The manifest must be valid JSON and carry the design.* counters.
  obs::JsonValue doc;
  obs::JsonError err;
  std::string manifest_text = slurp(manifest);
  EXPECT_TRUE(obs::json_parse(manifest_text, doc, &err)) << err.message;
  EXPECT_NE(manifest_text.find("design.candidates_scored"), std::string::npos);
  EXPECT_NE(manifest_text.find("design.moves_accepted"), std::string::npos);
  for (const std::string& p : {t1, t8, obs, manifest}) std::remove(p.c_str());
}

TEST(BenchDesign, SelfcheckPassesWithoutChangingTheBytes) {
  if (!file_exists(bench_bin())) GTEST_SKIP() << "bench binary not built";
  std::string dir = testing::TempDir();
  std::string plain = dir + "design_plain.txt";
  std::string checked = dir + "design_checked.txt";
  ASSERT_EQ(run_to(kFastArgs, plain), 0);
  ASSERT_EQ(run_to(std::string(kFastArgs) + " --selfcheck", checked), 0);
  std::string base = slurp(plain);
  ASSERT_FALSE(base.empty());
  EXPECT_EQ(base, slurp(checked));
  for (const std::string& p : {plain, checked}) std::remove(p.c_str());
}

TEST(BenchDesign, DefaultRunBeatsTheBestUniformMode) {
  // The ISSUE 9 acceptance criterion: the default search (k=8) must find
  // a certified hybrid layout whose mixed-workload objective beats every
  // uniform mode. Summary JSON is also part of the determinism contract.
  if (!file_exists(bench_bin())) GTEST_SKIP() << "bench binary not built";
  std::string dir = testing::TempDir();
  std::string out = dir + "design_default.txt";
  std::string sj = dir + "design_default.json";
  ASSERT_EQ(run_to("--summary-json " + sj, out), 0);

  obs::JsonValue doc;
  obs::JsonError err;
  ASSERT_TRUE(obs::json_parse(slurp(sj), doc, &err)) << err.message;
  ASSERT_NE(doc.find("schema"), nullptr);
  EXPECT_EQ(doc.find("schema")->as_string(), "flattree.bench_design.v1");
  ASSERT_NE(doc.find("beats_uniform"), nullptr);
  EXPECT_TRUE(doc.find("beats_uniform")->as_bool());

  ASSERT_NE(doc.find("uniforms"), nullptr);
  const auto& uniforms = doc.find("uniforms")->array();
  ASSERT_EQ(uniforms.size(), 3u);
  const obs::JsonValue* best = doc.find("best");
  ASSERT_NE(best, nullptr);
  ASSERT_NE(best->find("certified"), nullptr);
  EXPECT_TRUE(best->find("certified")->as_bool());
  for (const auto& u : uniforms) {
    EXPECT_TRUE(u.find("certified")->as_bool());
    EXPECT_GT(best->find("objective")->as_number(),
              u.find("objective")->as_number());
  }
  ASSERT_NE(doc.find("debruijn"), nullptr);
  EXPECT_GT(doc.find("debruijn")->find("objective")->as_number(), 0.0);
  ASSERT_NE(doc.find("digest"), nullptr);
  for (const std::string& p : {out, sj}) std::remove(p.c_str());
}

TEST(BenchDesign, SummaryJsonStableAcrossThreads) {
  if (!file_exists(bench_bin())) GTEST_SKIP() << "bench binary not built";
  std::string dir = testing::TempDir();
  std::string out = dir + "design_sj_out.txt";
  std::string s1 = dir + "design_s1.json";
  std::string s2 = dir + "design_s2.json";
  ASSERT_EQ(run_to(std::string(kFastArgs) + " --threads 1 --summary-json " + s1, out), 0);
  ASSERT_EQ(run_to(std::string(kFastArgs) + " --threads 8 --summary-json " + s2, out), 0);
  std::string doc1 = slurp(s1);
  ASSERT_FALSE(doc1.empty());
  EXPECT_EQ(doc1, slurp(s2));
  for (const std::string& p : {out, s1, s2}) std::remove(p.c_str());
}

}  // namespace
}  // namespace flattree
