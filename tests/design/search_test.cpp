// design::search: move application/proposal semantics and the ISSUE 9
// determinism contract — the same seed and workload mix must produce the
// identical accepted-move sequence and final layout at any thread count,
// with the winner certified cold.

#include "design/search.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "exec/parallel_for.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace flattree::design {
namespace {

using core::Mode;

core::FlatTreeNetwork small_net() {
  core::FlatTreeConfig cfg;
  cfg.k = 4;
  return core::FlatTreeNetwork(cfg);
}

/// A cheap mix for the walk tests: few demands, loose epsilon.
WorkloadMix small_mix() {
  WorkloadMix mix;
  mix.epsilon = 0.3;
  mix.components.push_back(
      {PatternKind::Broadcast, Affinity::Global, 8, 1,
       workload::Placement::NoLocality, 1.0, 1.0});
  mix.components.push_back(
      {PatternKind::AllToAll, Affinity::Local, 4, 1,
       workload::Placement::WeakLocality, 1.0, 1.0});
  return mix;
}

TEST(Move, FlipChangesOneZonesMode) {
  Candidate c = Candidate::uniform(4, Mode::Clos);
  auto flipped = apply_move(c, {MoveKind::FlipMode, 0, 0, Mode::GlobalRandom});
  ASSERT_TRUE(flipped.has_value());
  EXPECT_EQ(*flipped, Candidate::uniform(4, Mode::GlobalRandom));
  // Same-mode flip is a no-op and therefore infeasible.
  EXPECT_FALSE(apply_move(c, {MoveKind::FlipMode, 0, 0, Mode::Clos}).has_value());
  EXPECT_FALSE(apply_move(c, {MoveKind::FlipMode, 3, 0, Mode::LocalRandom})
                   .has_value());  // zone out of range
}

TEST(Move, BoundaryShiftsOnePod) {
  Candidate c = Candidate::from_zones(
      6, {{0, 3, Mode::Clos}, {3, 6, Mode::GlobalRandom}});
  auto left = apply_move(c, {MoveKind::MoveBoundary, 1, 1, Mode::Clos});
  ASSERT_TRUE(left.has_value());
  EXPECT_EQ(left->zones()[0], (Zone{0, 4, Mode::Clos}));
  auto right = apply_move(c, {MoveKind::MoveBoundary, 1, 0, Mode::Clos});
  ASSERT_TRUE(right.has_value());
  EXPECT_EQ(right->zones()[0], (Zone{0, 2, Mode::Clos}));
  // A shift that would empty a zone is infeasible.
  Candidate tight = Candidate::from_zones(
      2, {{0, 1, Mode::Clos}, {1, 2, Mode::GlobalRandom}});
  EXPECT_FALSE(
      apply_move(tight, {MoveKind::MoveBoundary, 1, 1, Mode::Clos}).has_value());
}

TEST(Move, SplitMergeAndSwap) {
  Candidate c = Candidate::uniform(6, Mode::Clos);
  auto split = apply_move(c, {MoveKind::SplitZone, 0, 4, Mode::LocalRandom});
  ASSERT_TRUE(split.has_value());
  ASSERT_EQ(split->zones().size(), 2u);
  EXPECT_EQ(split->zones()[1], (Zone{4, 6, Mode::LocalRandom}));
  // Splitting off the same mode would merge right back: infeasible.
  EXPECT_FALSE(apply_move(c, {MoveKind::SplitZone, 0, 4, Mode::Clos}).has_value());

  // Merge: the larger zone's mode wins.
  auto merged = apply_move(*split, {MoveKind::MergeZones, 0, 0, Mode::Clos});
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(*merged, Candidate::uniform(6, Mode::Clos));

  auto swapped = apply_move(*split, {MoveKind::SwapModes, 0, 1, Mode::Clos});
  ASSERT_TRUE(swapped.has_value());
  EXPECT_EQ(swapped->zones()[0].mode, Mode::LocalRandom);
  EXPECT_EQ(swapped->zones()[1].mode, Mode::Clos);
  // Swapping two same-mode zones is a no-op: infeasible.
  Candidate alt = Candidate::from_zones(6, {{0, 2, Mode::Clos},
                                            {2, 4, Mode::LocalRandom},
                                            {4, 6, Mode::Clos}});
  EXPECT_FALSE(apply_move(alt, {MoveKind::SwapModes, 0, 2, Mode::Clos}).has_value());
}

TEST(Move, ProposalsAreFeasibleWhenNotNull) {
  Candidate c = Candidate::from_zones(8, {{0, 5, Mode::GlobalRandom},
                                          {5, 8, Mode::LocalRandom}});
  util::Rng rng = util::Rng::substream(7, 0);
  int applied = 0;
  for (int i = 0; i < 200; ++i) {
    auto move = propose_move(c, rng);
    if (!move.has_value()) continue;
    auto next = apply_move(c, *move);
    EXPECT_TRUE(next.has_value()) << to_string(*move);
    ++applied;
  }
  EXPECT_GT(applied, 0);
}

TEST(Search, DeterministicAcrossThreadCounts) {
  core::FlatTreeNetwork net = small_net();
  WorkloadMix mix = small_mix();
  SearchOptions opt;
  opt.seed = 3;
  opt.iterations = 12;

  exec::set_global_threads(1);
  SearchResult a = search(net, mix, opt);
  exec::set_global_threads(8);
  SearchResult b = search(net, mix, opt);
  exec::set_global_threads(0);

  // Identical accepted-move sequence (the replay witness) ...
  ASSERT_EQ(a.accepted_moves.size(), b.accepted_moves.size());
  for (std::size_t i = 0; i < a.accepted_moves.size(); ++i) {
    EXPECT_EQ(a.accepted_moves[i].iteration, b.accepted_moves[i].iteration);
    EXPECT_EQ(to_string(a.accepted_moves[i].move),
              to_string(b.accepted_moves[i].move));
    EXPECT_EQ(a.accepted_moves[i].objective, b.accepted_moves[i].objective);
  }
  // ... the identical final layout, byte for byte ...
  EXPECT_EQ(a.best.encode(), b.best.encode());
  EXPECT_EQ(a.best_cold.objective, b.best_cold.objective);
  // ... and identical walk accounting.
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.skipped, b.skipped);
}

TEST(Search, DeterministicWithObsOnOrOff) {
  core::FlatTreeNetwork net = small_net();
  WorkloadMix mix = small_mix();
  SearchOptions opt;
  opt.iterations = 10;

  SearchResult off = search(net, mix, opt);
  obs::set_enabled(true);
  SearchResult on = search(net, mix, opt);
  obs::set_enabled(false);
  EXPECT_EQ(off.best.encode(), on.best.encode());
  EXPECT_EQ(off.accepted, on.accepted);
  EXPECT_EQ(off.best_cold.objective, on.best_cold.objective);
}

TEST(Search, WinnerIsCertifiedAndNeverBelowTheBestUniform) {
  core::FlatTreeNetwork net = small_net();
  SearchOptions opt;
  opt.iterations = 16;
  SearchResult r = search(net, small_mix(), opt);

  ASSERT_EQ(r.uniforms.size(), 3u);
  for (const UniformScore& u : r.uniforms) EXPECT_TRUE(u.certified);
  EXPECT_TRUE(r.certified);

  double best_uniform = 0.0;
  for (const UniformScore& u : r.uniforms)
    best_uniform = std::max(best_uniform, u.score.objective);
  // The walk starts from the best uniform and keeps the best-so-far, so
  // the certified winner can never fall below it.
  EXPECT_GE(r.best_cold.objective, best_uniform - 1e-9);

  // The demand count is layout-independent: every uniform baseline and the
  // winner score the same declared workload.
  for (const UniformScore& u : r.uniforms)
    EXPECT_EQ(u.score.demands, r.best_cold.demands);

  // Every iteration lands in the trajectory exactly once.
  ASSERT_EQ(r.trajectory.size(), opt.iterations);
  EXPECT_EQ(r.accepted + r.rejected + r.skipped, opt.iterations);
}

TEST(Search, AcceptedMovesReplayToTheFinalLayout) {
  core::FlatTreeNetwork net = small_net();
  SearchOptions opt;
  opt.iterations = 16;
  SearchResult r = search(net, small_mix(), opt);

  // Replaying the accepted-move log from the best uniform layout must
  // visit the reported best candidate (the walk's current layout passes
  // through it; the best is the prefix with the highest warm objective).
  Candidate current = Candidate::uniform(net.params().pods(), r.best_uniform);
  bool visited = current == r.best;
  for (const AcceptedMove& am : r.accepted_moves) {
    auto next = apply_move(current, am.move);
    ASSERT_TRUE(next.has_value()) << to_string(am.move);
    current = *next;
    visited = visited || current == r.best;
  }
  EXPECT_TRUE(visited);
}

}  // namespace
}  // namespace flattree::design
