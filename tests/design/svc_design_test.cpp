// The svc `design` op, in process: response shape, deadline-driven
// iteration budgeting, mix validation errors, read-only batching, and the
// byte-identity matrix (threads, obs, batch layout) — the same contract
// the rest of the flattree-svc.v1 surface carries.

#include "svc/service.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "exec/parallel_for.hpp"
#include "obs/metrics.hpp"

namespace flattree::svc {
namespace {

struct RunResult {
  std::string responses;
  std::string journal;
  ServiceStats stats;
};

RunResult run_service(const std::string& script, ServiceOptions opt = {}) {
  std::ostringstream journal;
  opt.journal = &journal;
  Service service(opt);
  std::istringstream in(script);
  std::ostringstream out;
  service.run(in, out);
  return {out.str(), journal.str(), service.stats()};
}

/// Parses the `index`-th response line (0-based) into a JsonValue.
obs::JsonValue response_at(const std::string& responses, std::size_t index) {
  std::istringstream in(responses);
  std::string line;
  for (std::size_t i = 0; i <= index; ++i) {
    EXPECT_TRUE(static_cast<bool>(std::getline(in, line))) << "response " << index;
  }
  obs::JsonValue v;
  obs::JsonError err;
  EXPECT_TRUE(obs::json_parse(line, v, &err)) << line << " -> " << err.code;
  return v;
}

bool response_ok(const obs::JsonValue& v) {
  const obs::JsonValue* ok = v.find("ok");
  return ok != nullptr && ok->is_bool() && ok->as_bool();
}

std::string error_code(const obs::JsonValue& v) {
  const obs::JsonValue* err = v.find("error");
  if (err == nullptr) return "";
  const obs::JsonValue* code = err->find("code");
  return code != nullptr ? code->as_string() : "";
}

TEST(SvcDesign, RespondsWithALayoutAndCertifiedObjective) {
  RunResult r = run_service(
      "{\"op\":\"build\",\"k\":4}\n"
      "{\"op\":\"design\",\"iters\":8}\n");
  obs::JsonValue v = response_at(r.responses, 1);
  ASSERT_TRUE(response_ok(v));
  const obs::JsonValue* p = &v;  // payload fields inline in the envelope
  EXPECT_EQ(p->find("pods")->as_int(), 4);
  EXPECT_EQ(p->find("iters")->as_int(), 8);
  EXPECT_EQ(p->find("budget")->as_int(), 0);  // no deadline: unlimited
  EXPECT_GT(p->find("objective")->as_number(), 0.0);
  EXPECT_TRUE(p->find("certified")->as_bool());
  ASSERT_NE(p->find("layout"), nullptr);
  EXPECT_EQ(p->find("layout")->array().size(), 4u);  // one token per pod
  ASSERT_NE(p->find("moves"), nullptr);
  EXPECT_EQ(p->find("moves")->array().size(),
            static_cast<std::size_t>(p->find("accepted")->as_int()));
  // Decided iterations partition into accepted/rejected/skipped.
  EXPECT_EQ(p->find("accepted")->as_int() + p->find("rejected")->as_int() +
                p->find("skipped")->as_int(),
            8);
}

TEST(SvcDesign, DeadlineCapsTheIterationCount) {
  // SloPolicy defaults: 0.25 iterations/ms, floor 4 — a 10 ms deadline
  // budgets 4 iterations and caps the requested 64.
  RunResult r = run_service(
      "{\"op\":\"build\",\"k\":4}\n"
      "{\"op\":\"design\",\"iters\":64,\"deadline_ms\":10}\n");
  obs::JsonValue v = response_at(r.responses, 1);
  ASSERT_TRUE(response_ok(v));
  const obs::JsonValue* p = &v;
  EXPECT_EQ(p->find("budget")->as_int(), 4);
  EXPECT_EQ(p->find("iters")->as_int(), 4);
}

TEST(SvcDesign, RequiresABuiltSessionAndAValidMix) {
  RunResult r = run_service(
      "{\"op\":\"design\"}\n"
      "{\"op\":\"build\",\"k\":4}\n"
      "{\"op\":\"design\",\"mix\":[]}\n"
      "{\"op\":\"design\",\"mix\":[{\"kind\":\"frobnicate\"}]}\n"
      "{\"op\":\"design\",\"mix\":[{\"kind\":\"broadcast\",\"cluster\":1}]}\n"
      "{\"op\":\"design\",\"iters\":4,\"mix\":"
      "[{\"kind\":\"broadcast\",\"affinity\":\"global\",\"cluster\":8,\"count\":1}]}\n");
  EXPECT_EQ(error_code(response_at(r.responses, 0)), "svc.session.not_built");
  EXPECT_EQ(error_code(response_at(r.responses, 2)), "svc.design.bad_mix");
  EXPECT_EQ(error_code(response_at(r.responses, 3)), "svc.design.bad_mix");
  EXPECT_EQ(error_code(response_at(r.responses, 4)), "svc.design.bad_mix");
  EXPECT_TRUE(response_ok(response_at(r.responses, 5)));  // custom mix works
}

/// Drops journal v2 commit frames: commit placement intentionally tracks
/// batch (durability) boundaries, but records must be batch-invariant.
std::string strip_commits(const std::string& journal) {
  std::string out;
  std::size_t pos = 0;
  while (pos < journal.size()) {
    std::size_t nl = journal.find('\n', pos);
    if (nl == std::string::npos) nl = journal.size() - 1;
    std::string line = journal.substr(pos, nl + 1 - pos);
    if (line.rfind("c ", 0) != 0 && line.rfind("u ", 0) != 0) out += line;
    pos = nl + 1;
  }
  return out;
}

TEST(SvcDesign, ByteIdenticalAcrossThreadsObsAndBatchLayout) {
  // Three identical read-only design requests: batched (max_batch 3) and
  // unbatched (max_batch 1) evaluations must produce the same bytes, at
  // any thread count, with observability on or off. Only commit-frame
  // placement may move across batch widths — commits are the batch
  // boundaries.
  const std::string script =
      "{\"op\":\"build\",\"k\":4}\n"
      "{\"op\":\"design\",\"iters\":6,\"id\":\"a\"}\n"
      "{\"op\":\"design\",\"iters\":6,\"id\":\"b\"}\n"
      "{\"op\":\"design\",\"iters\":6,\"seed\":2,\"id\":\"c\"}\n";

  ServiceOptions base;
  base.max_batch = 1;
  exec::set_global_threads(1);
  RunResult reference = run_service(script, base);
  ASSERT_FALSE(reference.responses.empty());

  struct Config {
    unsigned threads;
    bool obs;
    std::size_t max_batch;
  };
  const Config configs[] = {{8, false, 1}, {1, false, 3}, {8, true, 3}};
  for (const Config& c : configs) {
    exec::set_global_threads(c.threads);
    obs::set_enabled(c.obs);
    ServiceOptions opt;
    opt.max_batch = c.max_batch;
    RunResult got = run_service(script, opt);
    EXPECT_EQ(got.responses, reference.responses)
        << "threads=" << c.threads << " obs=" << c.obs
        << " max_batch=" << c.max_batch;
    if (c.max_batch == 1) EXPECT_EQ(got.journal, reference.journal);
    EXPECT_EQ(strip_commits(got.journal), strip_commits(reference.journal));
  }
  obs::set_enabled(false);
  exec::set_global_threads(0);

  // Identical requests answer identically; a different seed diverges.
  obs::JsonValue a = response_at(reference.responses, 1);
  obs::JsonValue b = response_at(reference.responses, 2);
  obs::JsonValue c = response_at(reference.responses, 3);
  EXPECT_EQ(a.find("objective")->as_number(), b.find("objective")->as_number());
  EXPECT_EQ(c.find("iters")->as_int(), 6);
}

TEST(SvcDesign, StatsCountDesignWorkDeterministically) {
  RunResult r = run_service(
      "{\"op\":\"build\",\"k\":4}\n"
      "{\"op\":\"design\",\"iters\":4}\n"
      "{\"op\":\"stats\"}\n");
  obs::JsonValue stats = response_at(r.responses, 2);
  ASSERT_TRUE(response_ok(stats));
  const obs::JsonValue* p = &stats;
  const obs::JsonValue* ops = p->find("ops");
  ASSERT_NE(ops, nullptr);
  ASSERT_NE(ops->find("design"), nullptr);
  EXPECT_EQ(ops->find("design")->as_int(), 1);
  // 3 uniforms + initial warm score + decided moves + cold rescore.
  obs::JsonValue d = response_at(r.responses, 1);
  const std::int64_t decided =
      d.find("accepted")->as_int() + d.find("rejected")->as_int();
  EXPECT_EQ(p->find("solves")->as_int(), 3 + 1 + decided + 1);
  EXPECT_GE(p->find("certified_solves")->as_int(), 4);  // 3 uniforms + winner
}

}  // namespace
}  // namespace flattree::svc
