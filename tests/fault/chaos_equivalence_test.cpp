// End-to-end determinism contract of bench_chaos: the availability
// timeline is a pure function of the fault trace, so stdout must be
// byte-identical across --threads 1 / 8, with and without --incremental,
// and across a --save-scenario -> --load-scenario round trip of the same
// trace. --selfcheck must exit 0 (zero violations after every injected
// event, including mid-reconfiguration ones). FT_BENCH_DIR is injected by
// CMake; the test skips cleanly when the binary is not built.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace flattree {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f != nullptr) std::fclose(f);
  return f != nullptr;
}

int run(const std::string& bench, const std::string& args, const std::string& out) {
  std::string cmd = bench + " " + args + " > " + out + " 2>/dev/null";
  return std::system(cmd.c_str());
}

const char* kBase = "--k 4 --duration 25 --seed 11 --report-every 3";

TEST(ChaosEquivalence, TimelineIsByteIdenticalAcrossThreads) {
  std::string bench = std::string(FT_BENCH_DIR) + "/bench_chaos";
  if (!file_exists(bench)) GTEST_SKIP() << "bench binary not built: " << bench;
  std::string tmp = testing::TempDir();

  std::string t1 = tmp + "chaos_t1.txt", t8 = tmp + "chaos_t8.txt";
  ASSERT_EQ(run(bench, std::string(kBase) + " --threads 1", t1), 0);
  ASSERT_EQ(run(bench, std::string(kBase) + " --threads 8", t8), 0);
  std::string ref = slurp(t1);
  ASSERT_FALSE(ref.empty());
  EXPECT_EQ(ref, slurp(t8));

  std::string inc = tmp + "chaos_inc.txt";
  ASSERT_EQ(run(bench, std::string(kBase) + " --threads 8 --incremental", inc), 0);
  EXPECT_EQ(ref, slurp(inc));
}

TEST(ChaosEquivalence, SaveReplayReproducesTheTimeline) {
  std::string bench = std::string(FT_BENCH_DIR) + "/bench_chaos";
  if (!file_exists(bench)) GTEST_SKIP() << "bench binary not built: " << bench;
  std::string tmp = testing::TempDir();

  std::string trace = tmp + "chaos_trace.txt";
  std::string gen = tmp + "chaos_gen.txt", replay = tmp + "chaos_replay.txt";
  ASSERT_EQ(run(bench, std::string(kBase) + " --save-scenario " + trace, gen), 0);
  ASSERT_EQ(run(bench, std::string(kBase) + " --load-scenario " + trace, replay), 0);
  std::string ref = slurp(gen);
  ASSERT_FALSE(ref.empty());
  EXPECT_EQ(ref, slurp(replay));

  // Save -> load -> save is a fixpoint of the v1 text format.
  std::string trace2 = tmp + "chaos_trace2.txt";
  std::string resave = tmp + "chaos_resave.txt";
  ASSERT_EQ(run(bench,
                std::string(kBase) + " --load-scenario " + trace + " --save-scenario " +
                    trace2,
                resave),
            0);
  EXPECT_EQ(slurp(trace), slurp(trace2));
}

TEST(ChaosEquivalence, SelfcheckPassesAndDoesNotPerturbOutput) {
  std::string bench = std::string(FT_BENCH_DIR) + "/bench_chaos";
  if (!file_exists(bench)) GTEST_SKIP() << "bench binary not built: " << bench;
  std::string tmp = testing::TempDir();

  std::string plain = tmp + "chaos_plain.txt", checked = tmp + "chaos_checked.txt";
  ASSERT_EQ(run(bench, kBase, plain), 0);
  // Exit 0 == every event boundary validated with zero violations.
  ASSERT_EQ(run(bench, std::string(kBase) + " --selfcheck", checked), 0);
  EXPECT_EQ(slurp(plain), slurp(checked));
}

}  // namespace
}  // namespace flattree
