#include "fault/event.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace flattree::fault {
namespace {

TEST(FaultEvent, KindTokensRoundTrip) {
  for (int k = 0; k < 6; ++k) {
    FaultKind kind = static_cast<FaultKind>(k);
    FaultKind parsed;
    ASSERT_TRUE(parse_fault_kind(to_string(kind), parsed)) << to_string(kind);
    EXPECT_EQ(parsed, kind);
  }
  FaultKind scratch;
  EXPECT_FALSE(parse_fault_kind("link_sideways", scratch));
  EXPECT_FALSE(parse_fault_kind("", scratch));
}

TEST(FaultEvent, OrderingIsTotal) {
  // (time, kind, a, b) — any two distinct events are strictly ordered, so
  // coinciding timestamps still replay identically everywhere.
  std::vector<FaultEvent> events;
  for (double t : {1.0, 2.0})
    for (int k : {0, 2})
      for (std::uint32_t a : {0u, 3u}) {
        FaultEvent e;
        e.time = t;
        e.kind = static_cast<FaultKind>(k);
        e.a = a;
        e.b = a + 1;
        events.push_back(e);
      }
  std::sort(events.begin(), events.end());
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_TRUE(events[i - 1] < events[i]);
    EXPECT_FALSE(events[i] < events[i - 1]);
    EXPECT_FALSE(events[i] == events[i - 1]);
  }
}

TEST(FaultEvent, PairKeyNormalizesOrientation) {
  EXPECT_EQ(pair_key(2, 9), pair_key(9, 2));
  EXPECT_NE(pair_key(2, 9), pair_key(2, 8));
  EXPECT_EQ(pair_key(7, 7), pair_key(7, 7));
}

}  // namespace
}  // namespace flattree::fault
