#include "fault/crash.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace flattree::fault {
namespace {

TEST(CrashPlan, FrameBoundariesAreNormalized) {
  // Unsorted, duplicated boundary offsets come straight from a writer's
  // bookkeeping; the plan is always sorted-unique.
  CrashPlan p = crash_after_each_frame({40, 10, 40, 25, 10});
  EXPECT_EQ(p.cuts, (std::vector<std::uint64_t>{10, 25, 40}));
}

TEST(CrashPlan, EveryByteSweepsInclusiveRange) {
  CrashPlan p = crash_every_byte(5, 9);
  EXPECT_EQ(p.cuts, (std::vector<std::uint64_t>{5, 6, 7, 8, 9}));
  EXPECT_EQ(crash_every_byte(3, 3).cuts, (std::vector<std::uint64_t>{3}));
  EXPECT_TRUE(crash_every_byte(9, 5).cuts.empty());  // empty range, not a crash
}

TEST(CrashPlan, MergeIsSortedUnion) {
  CrashPlan a = crash_after_each_frame({10, 30});
  CrashPlan b = crash_every_byte(28, 32);
  CrashPlan m = merge_plans(a, b);
  EXPECT_EQ(m.cuts, (std::vector<std::uint64_t>{10, 28, 29, 30, 31, 32}));
}

TEST(CrashPlan, SampleKeepsEndpointsAndIsDeterministic) {
  CrashPlan full = crash_every_byte(100, 399);  // 300 cuts
  CrashPlan s1 = sample_cuts(full, 16, 42);
  CrashPlan s2 = sample_cuts(full, 16, 42);
  EXPECT_EQ(s1.cuts, s2.cuts);  // substream-seeded, not time-seeded
  EXPECT_EQ(s1.cuts.size(), 16u);
  EXPECT_EQ(s1.cuts.front(), 100u);  // first and last cut always survive
  EXPECT_EQ(s1.cuts.back(), 399u);
  EXPECT_TRUE(std::is_sorted(s1.cuts.begin(), s1.cuts.end()));
  for (std::uint64_t c : s1.cuts) {
    EXPECT_GE(c, 100u);
    EXPECT_LE(c, 399u);
  }
  // A different seed picks a different middle.
  CrashPlan s3 = sample_cuts(full, 16, 43);
  EXPECT_NE(s1.cuts, s3.cuts);

  // Plans already under the cap pass through untouched.
  CrashPlan small = crash_every_byte(1, 4);
  EXPECT_EQ(sample_cuts(small, 16, 42).cuts, small.cuts);
}

}  // namespace
}  // namespace flattree::fault
