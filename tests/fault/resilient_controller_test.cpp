#include "fault/resilient_controller.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/converter.hpp"
#include "fault/fault_check.hpp"
#include "fault/scenario.hpp"

namespace flattree::fault {
namespace {

using core::ConverterConfig;
using core::Mode;

core::FlatTreeConfig make_cfg(std::uint32_t k = 4) {
  core::FlatTreeConfig cfg;
  cfg.k = k;
  return cfg;
}

FaultEvent ev(double t, FaultKind kind, std::uint32_t a, std::uint32_t b = 0) {
  FaultEvent e;
  e.time = t;
  e.kind = kind;
  e.a = a;
  e.b = b;
  return e;
}

void expect_valid(const ResilientController& ctl, const char* where) {
  EXPECT_EQ(core::validate_assignment(ctl.network().converters(), ctl.current_configs()),
            "")
      << where;
  check::Report r = ctl.self_check();
  EXPECT_TRUE(r.ok()) << where << ": " << r.to_string();
}

TEST(ResilientController, ConvertsCleanlyWithoutFaults) {
  ResilientController ctl(make_cfg());
  // With no faults the fault-aware target is exactly the mode assignment.
  std::vector<Mode> goal(ctl.network().params().pods(), Mode::GlobalRandom);
  EXPECT_EQ(ctl.fault_aware_target(goal), ctl.network().assign_configs(goal));

  ctl.begin_conversion(Mode::GlobalRandom);
  EXPECT_TRUE(ctl.conversion_in_flight());
  // Micro-transaction granularity: the assignment is valid at *every*
  // intermediate boundary, not just at the end.
  while (ctl.conversion_in_flight()) {
    ASSERT_EQ(ctl.advance(1), 1u);
    expect_valid(ctl, "mid-conversion");
  }
  EXPECT_EQ(ctl.current_configs(), ctl.network().assign_configs(Mode::GlobalRandom));
  EXPECT_EQ(ctl.pod_modes(), goal);
}

TEST(ResilientController, RejectsTimeRegressionsAndDoubleConversions) {
  ResilientController ctl(make_cfg());
  ctl.on_event(ev(5.0, FaultKind::SwitchDown, 0));
  EXPECT_THROW(ctl.on_event(ev(4.0, FaultKind::SwitchUp, 0)), std::invalid_argument);
  ctl.begin_conversion(Mode::GlobalRandom);
  EXPECT_THROW(ctl.begin_conversion(Mode::LocalRandom), std::logic_error);
}

// Link-granularity degradation while idle: cutting every link of a *live*
// edge switch must re-home its tapped servers onto the aggregation switch
// (a live switch with a dead uplink is no home), and the repairs must roll
// the configuration forward to the clean Clos assignment again.
TEST(ResilientController, IsolatedLiveEdgeRehomesAndRepairsRollForward) {
  ResilientController ctl(make_cfg());
  const core::FlatTreeNetwork& net = ctl.network();
  NodeId edge0 = net.edge_switch(0, 0);
  topo::Topology clos = ctl.topology();

  std::vector<std::pair<NodeId, NodeId>> cut;
  const graph::Graph& g = clos.graph();
  for (graph::LinkId l = 0; l < g.link_count(); ++l)
    if (g.link(l).a == edge0 || g.link(l).b == edge0)
      cut.emplace_back(g.link(l).a, g.link(l).b);
  ASSERT_FALSE(cut.empty());

  double t = 1.0;
  for (auto [a, b] : cut) ctl.on_event(ev(t++, FaultKind::LinkDown, a, b));
  EXPECT_FALSE(ctl.fault_state().switch_down(edge0));
  expect_valid(ctl, "edge isolated");

  // Every converter tapping edge0 was re-homed to its aggregation switch.
  std::size_t rehomed = 0;
  for (std::uint32_t i = 0; i < net.converters().size(); ++i)
    if (net.converters()[i].edge == edge0) {
      EXPECT_EQ(ctl.current_configs()[i], ConverterConfig::Local);
      ++rehomed;
    }
  EXPECT_GT(rehomed, 0u);
  // Only the hard-wired (converter-less) servers of edge0 stay stranded.
  for (topo::ServerId s : ctl.stranded_servers())
    EXPECT_EQ(clos.host(s), edge0);

  for (auto [a, b] : cut) ctl.on_event(ev(t++, FaultKind::LinkUp, a, b));
  EXPECT_TRUE(ctl.fault_state().clean());
  EXPECT_EQ(ctl.current_configs(), net.assign_configs(Mode::Clos));
  EXPECT_TRUE(ctl.stranded_servers().empty());
  expect_valid(ctl, "after repair");
}

// A fault landing mid-reconfiguration: the applied prefix stays recorded,
// the controller replans from the live partial state, and validity holds
// at every step in between.
TEST(ResilientController, MidFlightSwitchFailureReplans) {
  ResilientController ctl(make_cfg());
  const core::FlatTreeNetwork& net = ctl.network();
  ctl.begin_conversion(Mode::GlobalRandom);
  ASSERT_GT(ctl.pending_micro_txs(), 4u);
  ctl.advance(2);  // partial prefix applied
  expect_valid(ctl, "prefix applied");

  // Fail a core switch that some pending side/cross transaction targets.
  NodeId victim = graph::kInvalidNode;
  auto target = net.assign_configs(Mode::GlobalRandom);
  for (std::uint32_t i = 0; i < net.converters().size(); ++i)
    if ((target[i] == ConverterConfig::Side || target[i] == ConverterConfig::Cross) &&
        ctl.current_configs()[i] != target[i]) {
      victim = net.converters()[i].core;
      break;
    }
  ASSERT_NE(victim, graph::kInvalidNode);

  EventOutcome out = ctl.on_event(ev(1.0, FaultKind::SwitchDown, victim));
  EXPECT_TRUE(out.changed);
  EXPECT_GT(out.replans, 0u);
  expect_valid(ctl, "after mid-flight failure");

  ctl.run_to_completion();
  EXPECT_FALSE(ctl.conversion_in_flight());
  expect_valid(ctl, "completed around the fault");
  // No converter may home its server on the dead switch: the replanned
  // configuration routed around it.
  for (std::uint32_t i = 0; i < net.converters().size(); ++i) {
    const core::Converter& c = net.converters()[i];
    ConverterConfig cc = ctl.current_configs()[i];
    NodeId home = cc == ConverterConfig::Default  ? c.edge
                  : cc == ConverterConfig::Local ? c.agg
                                                 : c.core;
    EXPECT_NE(home, victim) << "converter " << i;
  }
}

// A stuck converter is physically immovable: conversions and recovery must
// leave it in place (and its pair partner consistent) until it is freed.
TEST(ResilientController, StuckConverterFreezesItsConfiguration) {
  ResilientController ctl(make_cfg());
  const core::FlatTreeNetwork& net = ctl.network();
  // Pick a converter that global-random wants in a paired state.
  auto target = net.assign_configs(Mode::GlobalRandom);
  std::uint32_t idx = ~0u;
  for (std::uint32_t i = 0; i < net.converters().size(); ++i)
    if (target[i] == ConverterConfig::Side) {
      idx = i;
      break;
    }
  ASSERT_NE(idx, ~0u);

  ctl.on_event(ev(1.0, FaultKind::ConverterStuck, idx));
  ctl.begin_conversion(Mode::GlobalRandom);
  ctl.run_to_completion();
  EXPECT_FALSE(ctl.conversion_in_flight());
  // Frozen at the boot (Default) configuration; the rest converted.
  EXPECT_EQ(ctl.current_configs()[idx], ConverterConfig::Default);
  EXPECT_NE(ctl.current_configs(), net.assign_configs(Mode::GlobalRandom));
  expect_valid(ctl, "converted around the stuck converter");

  // Freeing it lets the next recovery pass finish the conversion.
  ctl.on_event(ev(2.0, FaultKind::ConverterFreed, idx));
  EXPECT_EQ(ctl.current_configs(), net.assign_configs(Mode::GlobalRandom));
  expect_valid(ctl, "after freeing");
}

// Replan budget exhaustion: the conversion aborts, rolls back to the
// pre-plan configuration, parks behind an event-count backoff, and retries
// once the backoff drains.
TEST(ResilientController, AbortRollsBackAndRetriesAfterBackoff) {
  ResilientOptions opt;
  opt.max_replans = 0;  // first blocked transaction aborts immediately
  opt.backoff_events = 2;
  ResilientController ctl(make_cfg(), opt);
  const core::FlatTreeNetwork& net = ctl.network();
  std::vector<ConverterConfig> boot = ctl.current_configs();

  ctl.begin_conversion(Mode::GlobalRandom);
  // Fail a core some pending transaction needs: with a zero replan budget
  // the conversion must abort and roll back.
  auto target = net.assign_configs(Mode::GlobalRandom);
  std::uint32_t idx = ~0u;
  for (std::uint32_t i = 0; i < net.converters().size(); ++i)
    if (target[i] == ConverterConfig::Side) {
      idx = i;
      break;
    }
  ASSERT_NE(idx, ~0u);
  NodeId victim = net.converters()[idx].core;
  EventOutcome out = ctl.on_event(ev(1.0, FaultKind::SwitchDown, victim));
  EXPECT_TRUE(out.rolled_back);
  EXPECT_FALSE(ctl.conversion_in_flight());
  expect_valid(ctl, "after rollback");
  // Rollback returned to the boot configs, then the recovery pass re-homed
  // around the dead core — which homes nothing in Clos, so configs match.
  EXPECT_EQ(ctl.current_configs(), boot);

  // Two unrelated events drain the backoff; the second one relaunches.
  EventOutcome d1 = ctl.on_event(ev(2.0, FaultKind::SwitchDown, victim == 0 ? 1u : 0u));
  EXPECT_TRUE(d1.deferred);
  EXPECT_FALSE(ctl.conversion_in_flight());
  EventOutcome d2 = ctl.on_event(ev(3.0, FaultKind::SwitchUp, victim == 0 ? 1u : 0u));
  EXPECT_TRUE(d2.deferred);
  EXPECT_TRUE(ctl.conversion_in_flight());  // retry launched after backoff
  ctl.run_to_completion();
  expect_valid(ctl, "retried conversion");
  // The dead core is still avoided: its side/cross states became standalone.
  EXPECT_EQ(ctl.current_configs()[idx], ConverterConfig::Local);
}

// The controller is a pure function of the event sequence: two instances
// fed the same trace hold identical configuration histories.
TEST(ResilientController, IdenticalTracesGiveIdenticalHistories) {
  core::FlatTreeConfig cfg = make_cfg();
  core::FlatTreeNetwork net(cfg);
  topo::Topology clos = net.build(Mode::Clos);
  ScenarioParams p;
  p.duration = 30.0;
  p.seed = 21;
  p.switches = {80.0, 4.0};
  p.link = {100.0, 3.0};
  p.converter = {120.0, 5.0};
  p.pod_power = {300.0, 4.0};
  p.flap_probability = 0.3;
  Scenario sc = generate_scenario(clos, p, net.converters().size(), net.params().pods());
  ASSERT_FALSE(sc.events.empty());

  ResilientController a(cfg), b(cfg);
  a.begin_conversion(Mode::GlobalRandom);
  b.begin_conversion(Mode::GlobalRandom);
  for (const FaultEvent& e : sc.events) {
    a.on_event(e);
    a.advance(2);
    b.on_event(e);
    b.advance(2);
    ASSERT_EQ(a.current_configs(), b.current_configs()) << "t=" << e.time;
  }
}

// The tentpole acceptance bar in miniature: a dense random trace with every
// fault class enabled lands between the micro-transactions of an in-flight
// conversion, and the full validity battery passes after every event.
TEST(ResilientController, RandomTraceHoldsInvariantsAfterEveryEvent) {
  core::FlatTreeConfig cfg = make_cfg();
  core::FlatTreeNetwork net(cfg);
  topo::Topology clos = net.build(Mode::Clos);
  ScenarioParams p;
  p.duration = 40.0;
  p.seed = 9;
  p.switches = {60.0, 4.0};
  p.link = {70.0, 3.0};
  p.converter = {80.0, 5.0};
  p.pod_power = {250.0, 4.0};
  p.flap_probability = 0.4;
  Scenario sc = generate_scenario(clos, p, net.converters().size(), net.params().pods());
  ASSERT_GT(sc.events.size(), 20u);

  ResilientController ctl(cfg);
  ctl.begin_conversion(Mode::GlobalRandom);
  for (const FaultEvent& e : sc.events) {
    ctl.on_event(e);
    ctl.advance(2);
    ASSERT_EQ(core::validate_assignment(net.converters(), ctl.current_configs()), "")
        << "t=" << e.time;
    check::Report r = ctl.self_check();
    ASSERT_TRUE(r.ok()) << "t=" << e.time << ": " << r.to_string();
  }
  // Every generated failure carries its repair: the plant unwinds clean
  // and the conservation certificate holds.
  ctl.run_to_completion();
  EXPECT_TRUE(ctl.fault_state().clean());
  EXPECT_TRUE(check_conserved(ctl.fault_state()).ok());
  expect_valid(ctl, "final");
}

}  // namespace
}  // namespace flattree::fault
