#include "fault/fault_check.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/converter.hpp"
#include "fault/resilient_controller.hpp"
#include "obs/metrics.hpp"

namespace flattree::fault {
namespace {

using core::ConverterConfig;
using core::Mode;

core::FlatTreeNetwork make_net(std::uint32_t k = 4) {
  core::FlatTreeConfig cfg;
  cfg.k = k;
  return core::FlatTreeNetwork(cfg);
}

FaultEvent ev(double t, FaultKind kind, std::uint32_t a, std::uint32_t b = 0) {
  FaultEvent e;
  e.time = t;
  e.kind = kind;
  e.a = a;
  e.b = b;
  return e;
}

bool has_code(const check::Report& r, const std::string& code) {
  return std::any_of(r.violations.begin(), r.violations.end(),
                     [&](const check::Violation& v) { return v.code == code; });
}

TEST(CheckDegraded, CleanPlantPasses) {
  core::FlatTreeNetwork net = make_net();
  FaultState state(net.params().total_switches(), net.converters().size());
  check::Report r = check_degraded(net, net.assign_configs(Mode::Clos), state);
  EXPECT_TRUE(r.ok()) << r.to_string();
}

// Negative control for fault.assignment: a half-flipped side/cross pair is
// exactly the state micro-transaction atomicity exists to prevent.
TEST(CheckDegraded, HalfFlippedPairFlagged) {
  core::FlatTreeNetwork net = make_net();
  auto configs = net.assign_configs(Mode::GlobalRandom);
  std::uint32_t idx = ~0u;
  for (std::uint32_t i = 0; i < net.converters().size(); ++i)
    if (configs[i] == ConverterConfig::Side) {
      idx = i;
      break;
    }
  ASSERT_NE(idx, ~0u);
  configs[idx] = ConverterConfig::Local;  // peer still Side
  FaultState state(net.params().total_switches(), net.converters().size());
  check::Report r = check_degraded(net, configs, state);
  EXPECT_TRUE(has_code(r, "fault.assignment")) << r.to_string();
}

// Negative control for fault.avoidable_home: a server homed on a down
// switch while a usable standalone alternative exists.
TEST(CheckDegraded, AvoidableDeadHomeFlagged) {
  core::FlatTreeNetwork net = make_net();
  auto configs = net.assign_configs(Mode::Clos);  // all homes on edges
  FaultState state(net.params().total_switches(), net.converters().size());
  NodeId edge0 = net.edge_switch(0, 0);
  state.apply(ev(1.0, FaultKind::SwitchDown, edge0));

  check::Report r = check_degraded(net, configs, state);
  EXPECT_TRUE(has_code(r, "fault.avoidable_home")) << r.to_string();

  // The same state is acceptable mid-conversion: the flag is an idle-state
  // guarantee and can be switched off.
  DegradedCheckOptions opts;
  opts.flag_avoidable_homes = false;
  check::Report relaxed = check_degraded(net, configs, state, opts);
  EXPECT_FALSE(has_code(relaxed, "fault.avoidable_home")) << relaxed.to_string();

  // A stuck converter exempts its home: nothing could have been done.
  for (std::uint32_t i = 0; i < net.converters().size(); ++i)
    if (net.converters()[i].edge == edge0)
      state.apply(ev(2.0, FaultKind::ConverterStuck, i));
  check::Report stuck = check_degraded(net, configs, state);
  EXPECT_FALSE(has_code(stuck, "fault.avoidable_home")) << stuck.to_string();
}

// The genuinely-unrecoverable exemption: when no standalone home is usable
// either, a dead home is not "avoidable".
TEST(CheckDegraded, UnrecoverableHomeNotFlagged) {
  core::FlatTreeNetwork net = make_net();
  auto configs = net.assign_configs(Mode::Clos);
  FaultState state(net.params().total_switches(), net.converters().size());
  // Down the whole pod 0 (every edge and agg): pod-0 converters have no
  // usable standalone home at all.
  double t = 1.0;
  const topo::Topology clos = net.build(Mode::Clos);
  for (NodeId v = 0; v < net.params().total_switches(); ++v)
    if (clos.info(v).kind != topo::SwitchKind::Core && clos.info(v).pod == 0)
      state.apply(ev(t++, FaultKind::SwitchDown, v));
  check::Report r = check_degraded(net, configs, state);
  EXPECT_FALSE(has_code(r, "fault.avoidable_home")) << r.to_string();
}

TEST(CheckConserved, HoldsMidTraceAndAfterUnwind) {
  FaultState s(8, 2);
  EXPECT_TRUE(check_conserved(s).ok());
  s.apply(ev(1.0, FaultKind::SwitchDown, 2));
  s.apply(ev(1.5, FaultKind::LinkDown, 0, 1));
  s.apply(ev(2.0, FaultKind::ConverterStuck, 1));
  EXPECT_TRUE(check_conserved(s).ok());  // down > up, matched by active counts
  s.apply(ev(3.0, FaultKind::SwitchUp, 2));
  s.apply(ev(3.5, FaultKind::LinkUp, 0, 1));
  s.apply(ev(4.0, FaultKind::ConverterFreed, 1));
  EXPECT_TRUE(s.clean());
  EXPECT_TRUE(check_conserved(s).ok());
}

// The obs counters mirror the tallies: fault.apply.* / fault.unapply.*
// pairs are equal exactly when the plant is clean.
TEST(CheckConserved, ObsCountersMirrorTallies) {
  bool before = obs::enabled();
  obs::set_enabled(true);
  obs::reset_metrics();
  FaultState s(8, 2);
  s.apply(ev(1.0, FaultKind::SwitchDown, 3));
  s.apply(ev(2.0, FaultKind::LinkDown, 4, 5));
  s.apply(ev(3.0, FaultKind::LinkUp, 4, 5));
  s.apply(ev(4.0, FaultKind::SwitchUp, 3));
  obs::MetricsSnapshot snap = obs::snapshot_metrics();
  obs::set_enabled(before);
  auto value = [&](const std::string& name) -> std::uint64_t {
    for (const auto& [n, v] : snap.counters)
      if (n == name) return v;
    return 0;
  };
  EXPECT_EQ(value("fault.apply.switch_down"), 1u);
  EXPECT_EQ(value("fault.unapply.switch_up"), 1u);
  EXPECT_EQ(value("fault.apply.link_down"), value("fault.unapply.link_up"));
  EXPECT_TRUE(s.clean());
}

// ResilientController::self_check composes the battery: a controller mid
// conversion relaxes the avoidable-home flag, an idle one enforces it.
TEST(CheckDegraded, SelfCheckTracksConversionState) {
  core::FlatTreeConfig cfg;
  cfg.k = 4;
  ResilientController ctl(cfg);
  EXPECT_TRUE(ctl.self_check().ok());
  ctl.begin_conversion(Mode::GlobalRandom);
  EXPECT_TRUE(ctl.conversion_in_flight());
  EXPECT_TRUE(ctl.self_check().ok());
  ctl.run_to_completion();
  EXPECT_TRUE(ctl.self_check().ok());
}

}  // namespace
}  // namespace flattree::fault
