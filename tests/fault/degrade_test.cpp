#include "fault/degrade.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "core/flat_tree.hpp"
#include "fault/scenario.hpp"
#include "graph/bfs.hpp"

namespace flattree::fault {
namespace {

core::FlatTreeNetwork make_net(std::uint32_t k = 4) {
  core::FlatTreeConfig cfg;
  cfg.k = k;
  return core::FlatTreeNetwork(cfg);
}

TEST(Degrade, DropCountsAndStrandedAgree) {
  core::FlatTreeNetwork net = make_net();
  topo::Topology clos = net.build(core::Mode::Clos);
  FaultState state(net.params().total_switches(), 0);
  FaultEvent e;
  e.time = 1.0;
  e.kind = FaultKind::SwitchDown;
  e.a = net.edge_switch(0, 0);
  state.apply(e);
  DegradeResult d = degrade(clos, state);
  EXPECT_EQ(d.dropped_links, clos.link_count() - d.topo.link_count());
  EXPECT_EQ(d.stranded.size(), net.params().servers_per_edge());
  EXPECT_TRUE(std::is_sorted(d.stranded.begin(), d.stranded.end()));
}

// A FaultedGraph built mid-trace must agree with one that followed the
// trace from the start (the seeding path vs the event path).
TEST(FaultedGraph, MidTraceConstructionMatchesEventPath) {
  core::FlatTreeNetwork net = make_net();
  topo::Topology clos = net.build(core::Mode::Clos);
  ScenarioParams p;
  p.duration = 30.0;
  p.seed = 17;
  p.switches = {40.0, 5.0};
  p.link = {50.0, 4.0};
  p.pod_power = {120.0, 4.0};
  Scenario sc = generate_scenario(clos, p, 0, net.params().pods());
  ASSERT_GT(sc.events.size(), 4u);

  FaultState state(net.params().total_switches(), 0);
  FaultedGraph followed(clos, state);
  std::size_t half = sc.events.size() / 2;
  for (std::size_t i = 0; i < half; ++i)
    if (state.apply(sc.events[i])) followed.on_event(state, sc.events[i]);

  FaultedGraph seeded(clos, state);  // built from the mid-trace state
  EXPECT_EQ(seeded.graph().live_link_count(), followed.graph().live_link_count());
  for (graph::LinkId l = 0; l < clos.graph().link_count(); ++l)
    EXPECT_EQ(seeded.graph().link_live(l), followed.graph().link_live(l)) << "link " << l;
  EXPECT_EQ(seeded.stranded(state), followed.stranded(state));
}

// -- concurrency regression (run under the tsan preset, label `fault`) ------

// The fault apply/unapply path mutates the shared graph through the edit
// journal (remove_link/restore_link patch the lazily rebuilt CSR). Readers
// that race on the first neighbors() call after an on_event mutation must
// see the patched index — the same ConcurrentReadAfterMutateIsRaceFree
// contract the inc suite pins for raw journal edits, here exercised
// through FaultState + FaultedGraph. The mutation happens-before the
// reader threads (thread creation).
TEST(FaultedGraph, ConcurrentReadAfterMutateIsRaceFree) {
  core::FlatTreeNetwork net = make_net();
  topo::Topology clos = net.build(core::Mode::Clos);
  ScenarioParams p;
  p.duration = 16.0;
  p.seed = 23;
  p.switches = {30.0, 3.0};
  p.link = {40.0, 3.0};
  p.flap_probability = 0.5;
  Scenario sc = generate_scenario(clos, p, 0, net.params().pods());
  ASSERT_FALSE(sc.events.empty());

  FaultState state(net.params().total_switches(), 0);
  FaultedGraph fg(clos, state);
  const graph::Graph& g = fg.graph();
  for (const FaultEvent& e : sc.events) {
    if (!state.apply(e)) continue;
    fg.on_event(state, e);  // tombstones/restores links in the journal
    auto reader = [&g]() {
      for (graph::NodeId s = 0; s < g.node_count(); s += 4) {
        auto dist = graph::bfs_distances(g, s);
        ASSERT_EQ(dist.size(), g.node_count());
      }
    };
    std::thread t1(reader), t2(reader), t3(reader);
    t1.join();
    t2.join();
    t3.join();
    // The patched view equals the cold degraded rebuild.
    DegradeResult d = degrade(clos, state);
    ASSERT_EQ(g.live_link_count(), d.topo.graph().link_count());
    ASSERT_EQ(graph::bfs_distances(g, 0), graph::bfs_distances(d.topo.graph(), 0));
  }
  EXPECT_TRUE(state.clean());
  EXPECT_EQ(fg.links_removed(), fg.links_restored());
}

}  // namespace
}  // namespace flattree::fault
