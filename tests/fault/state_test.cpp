#include "fault/state.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/flat_tree.hpp"
#include "fault/degrade.hpp"
#include "fault/fault_check.hpp"
#include "fault/scenario.hpp"
#include "graph/bfs.hpp"

namespace flattree::fault {
namespace {

core::FlatTreeNetwork make_net(std::uint32_t k = 4) {
  core::FlatTreeConfig cfg;
  cfg.k = k;
  return core::FlatTreeNetwork(cfg);
}

FaultEvent ev(double t, FaultKind kind, std::uint32_t a, std::uint32_t b = 0) {
  FaultEvent e;
  e.time = t;
  e.kind = kind;
  e.a = a;
  e.b = b;
  return e;
}

// Down *counts*, not booleans: overlapping failures (a pod power cut plus
// an individual switch fault inside it) unwind only at the last repair.
TEST(FaultState, OverlappingFailuresUnwindExactly) {
  FaultState s(8, 4);
  EXPECT_TRUE(s.apply(ev(1.0, FaultKind::SwitchDown, 3)));   // power domain
  EXPECT_FALSE(s.apply(ev(2.0, FaultKind::SwitchDown, 3)));  // individual fault
  EXPECT_TRUE(s.switch_down(3));
  EXPECT_EQ(s.down_switch_count(), 1u);
  EXPECT_FALSE(s.apply(ev(3.0, FaultKind::SwitchUp, 3)));  // power restored
  EXPECT_TRUE(s.switch_down(3));                           // still individually down
  EXPECT_TRUE(s.apply(ev(4.0, FaultKind::SwitchUp, 3)));
  EXPECT_FALSE(s.switch_down(3));
  EXPECT_TRUE(s.clean());
  EXPECT_TRUE(check_conserved(s).ok());
}

TEST(FaultState, LinkFaultsKeyOnNormalizedPairs) {
  FaultState s(8, 0);
  EXPECT_TRUE(s.apply(ev(1.0, FaultKind::LinkDown, 5, 2)));
  EXPECT_TRUE(s.pair_down(2, 5));
  EXPECT_TRUE(s.pair_down(5, 2));  // orientation-free
  EXPECT_FALSE(s.apply(ev(2.0, FaultKind::LinkDown, 2, 5)));
  EXPECT_FALSE(s.apply(ev(3.0, FaultKind::LinkUp, 5, 2)));
  EXPECT_TRUE(s.apply(ev(4.0, FaultKind::LinkUp, 2, 5)));
  EXPECT_FALSE(s.pair_down(2, 5));
  EXPECT_TRUE(check_conserved(s).ok());
}

TEST(FaultState, RejectsOutOfRangeAndUnmatchedRepairs) {
  FaultState s(4, 2);
  EXPECT_THROW(s.apply(ev(1.0, FaultKind::SwitchDown, 4)), std::invalid_argument);
  EXPECT_THROW(s.apply(ev(1.0, FaultKind::ConverterStuck, 2)), std::invalid_argument);
  EXPECT_THROW(s.apply(ev(1.0, FaultKind::SwitchUp, 0)), std::invalid_argument);
  EXPECT_THROW(s.apply(ev(1.0, FaultKind::LinkUp, 0, 1)), std::invalid_argument);
  EXPECT_THROW(s.apply(ev(1.0, FaultKind::ConverterFreed, 0)), std::invalid_argument);
}

TEST(FaultState, FailedSwitchesIsNormalized) {
  FaultState s(16, 0);
  s.apply(ev(1.0, FaultKind::SwitchDown, 9));
  s.apply(ev(2.0, FaultKind::SwitchDown, 4));
  s.apply(ev(3.0, FaultKind::SwitchDown, 12));
  core::FailureSet f = s.failed_switches();
  EXPECT_EQ(f.failed_switches, (std::vector<NodeId>{4, 9, 12}));
  EXPECT_TRUE(f.contains(9));
  EXPECT_FALSE(f.contains(5));
}

// The journal-maintained FaultedGraph must agree with a cold degrade()
// rebuild at every instant of a trace, and a fully played trace restores
// every tombstoned slot.
TEST(FaultedGraph, TracksColdDegradeAcrossATrace) {
  core::FlatTreeNetwork net = make_net();
  topo::Topology clos = net.build(core::Mode::Clos);
  ScenarioParams p;
  p.duration = 40.0;
  p.seed = 5;
  p.switches = {50.0, 4.0};
  p.link = {60.0, 3.0};
  p.pod_power = {150.0, 3.0};
  p.flap_probability = 0.5;
  Scenario sc = generate_scenario(clos, p, 0, net.params().pods());
  ASSERT_FALSE(sc.events.empty());

  FaultState state(net.params().total_switches(), 0);
  FaultedGraph fg(clos, state);
  for (const FaultEvent& e : sc.events) {
    if (state.apply(e)) fg.on_event(state, e);
    DegradeResult d = degrade(clos, state);
    ASSERT_EQ(fg.graph().live_link_count(), d.topo.graph().link_count());
    ASSERT_EQ(fg.stranded(state), d.stranded);
    // Distances must match too (same live adjacency, different storage).
    auto live = graph::bfs_distances(fg.graph(), 0);
    auto cold = graph::bfs_distances(d.topo.graph(), 0);
    ASSERT_EQ(live, cold);
  }
  EXPECT_TRUE(state.clean());
  EXPECT_EQ(fg.links_removed(), fg.links_restored());
  EXPECT_EQ(fg.graph().live_link_count(), clos.graph().link_count());
}

// Link-granularity strandedness: a *live* host whose every link is dead
// still strands its servers, in both degrade forms.
TEST(FaultedGraph, IsolatedLiveHostStrandsServers) {
  core::FlatTreeNetwork net = make_net();
  topo::Topology clos = net.build(core::Mode::Clos);
  // Pick a switch that hosts servers and cut all its links.
  NodeId host = clos.host(0);
  FaultState state(net.params().total_switches(), 0);
  FaultedGraph fg(clos, state);
  const graph::Graph& g = clos.graph();
  double t = 1.0;
  for (graph::LinkId l = 0; l < g.link_count(); ++l) {
    if (g.link(l).a != host && g.link(l).b != host) continue;
    FaultEvent e = ev(t++, FaultKind::LinkDown, g.link(l).a, g.link(l).b);
    if (state.apply(e)) fg.on_event(state, e);
  }
  EXPECT_FALSE(state.switch_down(host));
  DegradeResult d = degrade(clos, state);
  EXPECT_FALSE(d.stranded.empty());
  EXPECT_EQ(fg.stranded(state), d.stranded);
  for (ServerId s : d.stranded) EXPECT_EQ(clos.host(s), host);
}

TEST(FaultState, StuckConvertersAreTracked) {
  FaultState s(4, 3);
  EXPECT_TRUE(s.apply(ev(1.0, FaultKind::ConverterStuck, 1)));
  EXPECT_TRUE(s.converter_stuck(1));
  EXPECT_FALSE(s.converter_stuck(0));
  EXPECT_EQ(s.stuck_converter_count(), 1u);
  EXPECT_TRUE(s.apply(ev(2.0, FaultKind::ConverterFreed, 1)));
  EXPECT_TRUE(s.clean());
}

}  // namespace
}  // namespace flattree::fault
