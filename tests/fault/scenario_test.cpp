#include "fault/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>

#include "core/flat_tree.hpp"
#include "fault/state.hpp"

namespace flattree::fault {
namespace {

core::FlatTreeNetwork make_net(std::uint32_t k = 4) {
  core::FlatTreeConfig cfg;
  cfg.k = k;
  return core::FlatTreeNetwork(cfg);
}

ScenarioParams busy_params(std::uint64_t seed = 7) {
  ScenarioParams p;
  p.duration = 50.0;
  p.seed = seed;
  p.switches = {60.0, 3.0};
  p.link = {80.0, 2.0};
  p.converter = {90.0, 4.0};
  p.pod_power = {200.0, 3.0};
  p.flap_probability = 0.3;
  return p;
}

TEST(Scenario, GenerationIsDeterministicAndSorted) {
  core::FlatTreeNetwork net = make_net();
  topo::Topology clos = net.build(core::Mode::Clos);
  ScenarioParams p = busy_params();
  Scenario a = generate_scenario(clos, p, net.converters().size(), net.params().pods());
  Scenario b = generate_scenario(clos, p, net.converters().size(), net.params().pods());
  ASSERT_FALSE(a.events.empty());
  EXPECT_EQ(a.events, b.events);
  EXPECT_TRUE(std::is_sorted(a.events.begin(), a.events.end()));

  Scenario c = generate_scenario(clos, busy_params(8), net.converters().size(),
                                 net.params().pods());
  EXPECT_NE(a.events, c.events);  // the seed actually steers the draw
}

// Class isolation: re-parameterizing one fault class must not perturb the
// subsequence another class draws (each entity owns a substream).
TEST(Scenario, FaultClassesDrawIndependently) {
  core::FlatTreeNetwork net = make_net();
  topo::Topology clos = net.build(core::Mode::Clos);
  ScenarioParams with = busy_params();
  ScenarioParams without = with;
  without.converter.mtbf = 0.0;  // disable one class entirely
  without.pod_power.mtbf = 0.0;
  Scenario a = generate_scenario(clos, with, net.converters().size(), net.params().pods());
  Scenario b =
      generate_scenario(clos, without, net.converters().size(), net.params().pods());

  auto only = [](const Scenario& s, auto pred) {
    std::vector<FaultEvent> out;
    for (const FaultEvent& e : s.events)
      if (pred(e.kind)) out.push_back(e);
    return out;
  };
  auto is_link = [](FaultKind k) {
    return k == FaultKind::LinkDown || k == FaultKind::LinkUp;
  };
  EXPECT_EQ(only(a, is_link), only(b, is_link));
  EXPECT_TRUE(only(b, [](FaultKind k) {
                return k == FaultKind::ConverterStuck || k == FaultKind::ConverterFreed;
              }).empty());
}

// Every failure carries its repair: a full playback returns the plant to
// all-up with conserved tallies.
TEST(Scenario, FullPlaybackUnwindsExactly) {
  core::FlatTreeNetwork net = make_net();
  topo::Topology clos = net.build(core::Mode::Clos);
  Scenario s = generate_scenario(clos, busy_params(), net.converters().size(),
                                 net.params().pods());
  FaultState state(net.params().total_switches(), net.converters().size());
  for (const FaultEvent& e : s.events) state.apply(e);
  EXPECT_TRUE(state.clean());
  const auto& tally = state.tally();
  EXPECT_EQ(tally[static_cast<std::size_t>(FaultKind::LinkDown)],
            tally[static_cast<std::size_t>(FaultKind::LinkUp)]);
  EXPECT_EQ(tally[static_cast<std::size_t>(FaultKind::SwitchDown)],
            tally[static_cast<std::size_t>(FaultKind::SwitchUp)]);
  EXPECT_EQ(tally[static_cast<std::size_t>(FaultKind::ConverterStuck)],
            tally[static_cast<std::size_t>(FaultKind::ConverterFreed)]);
}

TEST(Scenario, FlappingAlternatesAndEndsUp) {
  core::FlatTreeNetwork net = make_net();
  topo::Topology clos = net.build(core::Mode::Clos);
  ScenarioParams p;
  p.duration = 60.0;
  p.seed = 11;
  p.link = {40.0, 3.0};
  p.flap_probability = 1.0;  // every outage flaps
  Scenario s = generate_scenario(clos, p, 0, 0);
  ASSERT_FALSE(s.events.empty());
  // Per pair the trace must strictly alternate down/up starting down.
  std::map<std::uint64_t, std::vector<FaultKind>> per_pair;
  for (const FaultEvent& e : s.events) per_pair[pair_key(e.a, e.b)].push_back(e.kind);
  bool saw_burst = false;
  for (const auto& [key, kinds] : per_pair) {
    ASSERT_EQ(kinds.size() % 2, 0u);
    for (std::size_t i = 0; i < kinds.size(); ++i)
      EXPECT_EQ(kinds[i], i % 2 == 0 ? FaultKind::LinkDown : FaultKind::LinkUp);
    if (kinds.size() >= 4) saw_burst = true;  // >1 cycle within one outage
  }
  EXPECT_TRUE(saw_burst);
}

TEST(Scenario, SaveLoadRoundTripsBitwise) {
  core::FlatTreeNetwork net = make_net();
  topo::Topology clos = net.build(core::Mode::Clos);
  Scenario s = generate_scenario(clos, busy_params(), net.converters().size(),
                                 net.params().pods());
  std::ostringstream out;
  save_scenario(s, out);
  std::istringstream in(out.str());
  Scenario r = load_scenario(in);
  EXPECT_EQ(r.duration, s.duration);
  EXPECT_EQ(r.seed, s.seed);
  ASSERT_EQ(r.events.size(), s.events.size());
  for (std::size_t i = 0; i < s.events.size(); ++i) {
    EXPECT_EQ(r.events[i], s.events[i]) << "event " << i;
    EXPECT_EQ(r.events[i].time, s.events[i].time) << "event " << i;  // exact bits
  }

  // Save -> load -> save is a fixpoint (the replay-equivalence contract).
  std::ostringstream again;
  save_scenario(r, again);
  EXPECT_EQ(again.str(), out.str());
}

TEST(Scenario, LoadRejectsMalformedInput) {
  std::istringstream bad_header("# not-a-scenario\n");
  EXPECT_THROW(load_scenario(bad_header), std::runtime_error);
  std::istringstream bad_kind(
      "# flattree-fault-scenario v1\nduration 10\nseed 1\ne 1.0 link_sideways 0 1\n");
  EXPECT_THROW(load_scenario(bad_kind), std::runtime_error);
  std::istringstream truncated("# flattree-fault-scenario v1\nduration 10\nseed 1\ne 1.0\n");
  EXPECT_THROW(load_scenario(truncated), std::runtime_error);
}

TEST(Scenario, LoadRejectsNonFiniteTimes) {
  // "inf"/"nan" spellings parse in strtod but would poison every ordering
  // comparison downstream; the loader refuses them with a stable message
  // (ISSUE 10). Each accepted spelling of non-finite in turn.
  for (const char* t : {"inf", "-inf", "nan", "infinity", "1e999"}) {
    std::istringstream in(std::string("# flattree-fault-scenario v1\nduration 10\n") +
                          "seed 1\ne " + t + " switch_down 2 0\n");
    try {
      load_scenario(in);
      FAIL() << "accepted non-finite time " << t;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("non-finite time"), std::string::npos) << t;
    }
  }
  std::istringstream bad_duration(
      "# flattree-fault-scenario v1\nduration inf\nseed 1\n");
  EXPECT_THROW(load_scenario(bad_duration), std::runtime_error);
  std::istringstream junk_time(
      "# flattree-fault-scenario v1\nduration 10\nseed 1\ne 1.0x switch_down 2 0\n");
  EXPECT_THROW(load_scenario(junk_time), std::runtime_error);
}

TEST(Scenario, LoadRejectsDuplicateEvents) {
  // An exact duplicate — whether adjacent in the file or separated by
  // other lines (out of order) — is refused after the resort; a pure
  // reorder without duplication still loads (see LoadResortsHandEdited).
  std::istringstream adjacent(
      "# flattree-fault-scenario v1\nduration 10\nseed 1\n"
      "e 1.0 switch_down 2 0\ne 1.0 switch_down 2 0\n");
  std::istringstream out_of_order(
      "# flattree-fault-scenario v1\nduration 10\nseed 1\n"
      "e 1.0 switch_down 2 0\ne 2.0 switch_up 2 0\ne 1.0 switch_down 2 0\n");
  for (std::istringstream* in : {&adjacent, &out_of_order}) {
    try {
      load_scenario(*in);
      FAIL() << "accepted duplicate event";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("duplicate event"), std::string::npos);
      EXPECT_NE(std::string(e.what()).find("switch_down 2 0"), std::string::npos);
    }
  }
  // Same time, different entity is legitimate (pod power downs a whole
  // pod at one instant) and must keep loading.
  std::istringstream same_instant(
      "# flattree-fault-scenario v1\nduration 10\nseed 1\n"
      "e 1.0 switch_down 2 0\ne 1.0 switch_down 3 0\n"
      "e 2.0 switch_up 2 0\ne 2.0 switch_up 3 0\n");
  EXPECT_EQ(load_scenario(same_instant).events.size(), 4u);
}

TEST(Scenario, LoadResortsHandEditedTraces) {
  std::istringstream in(
      "# flattree-fault-scenario v1\nduration 10\nseed 1\n"
      "e 5.0 switch_up 2 0\ne 1.0 switch_down 2 0\n");
  Scenario s = load_scenario(in);
  ASSERT_EQ(s.events.size(), 2u);
  EXPECT_EQ(s.events[0].kind, FaultKind::SwitchDown);
  EXPECT_EQ(s.events[1].kind, FaultKind::SwitchUp);
}

}  // namespace
}  // namespace flattree::fault
