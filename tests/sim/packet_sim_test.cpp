#include "sim/packet_sim.hpp"

#include <gtest/gtest.h>

#include "routing/ecmp.hpp"
#include "topo/fat_tree.hpp"

namespace flattree::sim {
namespace {

struct Fixture {
  topo::FatTree ft = topo::build_fat_tree(4);
  routing::EcmpRouting routing{ft.topo.graph()};
  routing::Fib fib =
      routing::compile_fib(ft.topo, routing, routing::all_server_pairs(ft.topo));
};

TEST(PacketSim, SinglePacketDelayClosedForm) {
  Fixture fx;
  PacketSimConfig cfg;
  cfg.propagation_delay = 0.01;
  PacketSimulator sim(fx.ft.topo, fx.fib, cfg);
  // Inter-pod path: 4 switch hops; delay = 4 * (1/cap + prop).
  auto stats = sim.run({{fx.ft.server(0, 0, 0), fx.ft.server(1, 0, 0), 1, 0.0}});
  EXPECT_EQ(stats.injected, 1u);
  EXPECT_EQ(stats.delivered, 1u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_NEAR(stats.mean_delay, 4 * (1.0 + 0.01), 1e-9);
}

TEST(PacketSim, SameSwitchDeliveryIsImmediate) {
  Fixture fx;
  PacketSimulator sim(fx.ft.topo, fx.fib);
  auto stats = sim.run({{fx.ft.server(0, 0, 0), fx.ft.server(0, 0, 1), 1, 0.0}});
  EXPECT_EQ(stats.delivered, 1u);
  EXPECT_DOUBLE_EQ(stats.mean_delay, 0.0);  // no switch hops in the fabric
}

TEST(PacketSim, TrainQueuesBehindItself) {
  Fixture fx;
  PacketSimConfig cfg;
  cfg.propagation_delay = 0.0;
  cfg.nic_rate = 10.0;  // injection faster than the 1.0-capacity links
  cfg.queue_packets = 0;  // infinite queues
  PacketSimulator sim(fx.ft.topo, fx.fib, cfg);
  auto stats = sim.run({{fx.ft.server(0, 0, 0), fx.ft.server(1, 0, 0), 10, 0.0}});
  EXPECT_EQ(stats.delivered, 10u);
  // First packet: 4 hops x 1.0; last packet injected at 0.9 but serialized
  // behind 9 predecessors on the first link: leaves hop1 at 10, arrives
  // after 3 more hops at 13 -> delay 12.1; mean grows beyond the base 4.
  EXPECT_GT(stats.mean_delay, 4.0);
  EXPECT_NEAR(stats.max_delay, 13.0 - 0.9, 1e-9);
}

TEST(PacketSim, FiniteQueuesDropTail) {
  Fixture fx;
  PacketSimConfig cfg;
  cfg.nic_rate = 100.0;  // slam the first queue
  cfg.queue_packets = 4;
  PacketSimulator sim(fx.ft.topo, fx.fib, cfg);
  auto stats = sim.run({{fx.ft.server(0, 0, 0), fx.ft.server(1, 0, 0), 50, 0.0}});
  EXPECT_EQ(stats.injected, 50u);
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_EQ(stats.delivered + stats.dropped, 50u);
  EXPECT_GT(stats.loss_rate(), 0.0);
}

TEST(PacketSim, DisjointFlowsDontInterfere) {
  Fixture fx;
  PacketSimConfig cfg;
  cfg.propagation_delay = 0.0;
  PacketSimulator sim(fx.ft.topo, fx.fib, cfg);
  // Two flows inside different pods, entirely disjoint paths.
  auto stats = sim.run({{fx.ft.server(0, 0, 0), fx.ft.server(0, 1, 0), 5, 0.0},
                        {fx.ft.server(2, 0, 0), fx.ft.server(2, 1, 0), 5, 0.0}});
  EXPECT_EQ(stats.delivered, 10u);
  // Intra-pod: 2 hops; NIC-paced injection (gap 1.0) matches link rate so
  // no queueing: every packet sees exactly 2.0.
  EXPECT_NEAR(stats.mean_delay, 2.0, 1e-9);
  EXPECT_NEAR(stats.max_delay, 2.0, 1e-9);
}

TEST(PacketSim, DeterministicAcrossRuns) {
  Fixture fx;
  PacketSimulator sim(fx.ft.topo, fx.fib);
  std::vector<PacketFlow> flows;
  for (std::uint32_t s = 0; s < 8; ++s)
    flows.push_back({s, static_cast<topo::ServerId>(15 - s), 6, 0.05 * s});
  auto a = sim.run(flows);
  auto b = sim.run(flows);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_DOUBLE_EQ(a.mean_delay, b.mean_delay);
  EXPECT_DOUBLE_EQ(a.finish_time, b.finish_time);
}

TEST(PacketSim, AllPacketsAccountedUnderLoad) {
  Fixture fx;
  PacketSimConfig cfg;
  cfg.queue_packets = 8;
  cfg.nic_rate = 4.0;
  PacketSimulator sim(fx.ft.topo, fx.fib, cfg);
  std::vector<PacketFlow> flows;
  for (std::uint32_t s = 0; s < 16; ++s)
    flows.push_back({s, static_cast<topo::ServerId>((s + 5) % 16), 20, 0.0});
  auto stats = sim.run(flows);
  EXPECT_EQ(stats.injected, 320u);
  EXPECT_EQ(stats.delivered + stats.dropped, stats.injected);
  EXPECT_GT(stats.finish_time, 0.0);
}

TEST(PacketSim, ErrorCases) {
  Fixture fx;
  PacketSimulator sim(fx.ft.topo, fx.fib);
  EXPECT_THROW(sim.run({}), std::invalid_argument);
  EXPECT_THROW(sim.run({{3, 3, 1, 0.0}}), std::invalid_argument);
  PacketSimConfig bad;
  bad.packet_size = 0.0;
  EXPECT_THROW(PacketSimulator(fx.ft.topo, fx.fib, bad), std::invalid_argument);
}

TEST(PacketSim, MissingFibRouteThrows) {
  Fixture fx;
  routing::Fib empty(fx.ft.topo.switch_count());
  PacketSimulator sim(fx.ft.topo, empty);
  EXPECT_THROW(sim.run({{fx.ft.server(0, 0, 0), fx.ft.server(1, 0, 0), 1, 0.0}}),
               std::runtime_error);
}

// -- edge-case hardening (ISSUE 7 satellite) ---------------------------------

TEST(PacketSim, NothingDeliveredReportsZeroStats) {
  // Zero-packet flows are legal no-ops; with nothing injected every
  // delay/FCT statistic is a defined 0.0 rather than NaN.
  Fixture fx;
  PacketSimulator sim(fx.ft.topo, fx.fib);
  auto stats = sim.run({{fx.ft.server(0, 0, 0), fx.ft.server(1, 0, 0), 0, 0.0}});
  EXPECT_EQ(stats.injected, 0u);
  EXPECT_EQ(stats.delivered, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_delay, 0.0);
  EXPECT_DOUBLE_EQ(stats.p99_delay, 0.0);
  EXPECT_DOUBLE_EQ(stats.max_delay, 0.0);
  EXPECT_DOUBLE_EQ(stats.fct_mean, 0.0);
  EXPECT_DOUBLE_EQ(stats.fct_p50, 0.0);
  EXPECT_DOUBLE_EQ(stats.fct_p99, 0.0);
  EXPECT_DOUBLE_EQ(stats.fct_max, 0.0);
  EXPECT_DOUBLE_EQ(stats.loss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(stats.mark_rate(), 0.0);
  EXPECT_DOUBLE_EQ(stats.mean_queue, 0.0);
  EXPECT_DOUBLE_EQ(stats.max_queue, 0.0);
}

TEST(PacketSim, InfiniteBuffersNeverDrop) {
  // queue_packets = 0 is the documented infinite-buffer mode: even a
  // severe incast cannot lose a packet, it only queues.
  Fixture fx;
  PacketSimConfig cfg;
  cfg.queue_packets = 0;
  cfg.nic_rate = 100.0;
  PacketSimulator sim(fx.ft.topo, fx.fib, cfg);
  std::vector<PacketFlow> flows;
  for (std::uint32_t s = 0; s < 8; ++s)
    flows.push_back({s, fx.ft.server(3, 1, 1), 25, 0.0});
  auto stats = sim.run(flows);
  EXPECT_EQ(stats.injected, 200u);
  EXPECT_EQ(stats.delivered, 200u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_GT(stats.max_queue, 16.0);  // far beyond any finite default
}

TEST(PacketSim, SrcEqualsDstRejectedEvenAmongValidFlows) {
  // Documented choice: src == dst flows are rejected (the fabric model has
  // nothing to simulate), not silently delivered at zero hops.
  Fixture fx;
  PacketSimulator sim(fx.ft.topo, fx.fib);
  EXPECT_THROW(sim.run({{fx.ft.server(0, 0, 0), fx.ft.server(1, 0, 0), 1, 0.0},
                        {5, 5, 1, 0.0}}),
               std::invalid_argument);
}

TEST(PacketSim, FctTracksLastPacketOfEachFlow) {
  Fixture fx;
  PacketSimConfig cfg;
  cfg.propagation_delay = 0.0;
  cfg.nic_rate = 1.0;
  PacketSimulator sim(fx.ft.topo, fx.fib, cfg);
  // Intra-pod 2-hop path at matched rates: packet p is injected at p and
  // delivered at p + 2, so a 5-packet flow started at 0 completes at 6.
  auto stats = sim.run({{fx.ft.server(0, 0, 0), fx.ft.server(0, 1, 0), 5, 0.0}});
  EXPECT_EQ(stats.delivered, 5u);
  EXPECT_NEAR(stats.fct_mean, 6.0, 1e-9);
  EXPECT_NEAR(stats.fct_p50, 6.0, 1e-9);
  EXPECT_NEAR(stats.fct_max, 6.0, 1e-9);
}

}  // namespace
}  // namespace flattree::sim
