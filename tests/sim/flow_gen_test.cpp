#include "sim/flow_gen.hpp"

#include <gtest/gtest.h>

namespace flattree::sim {
namespace {

TEST(FlowSizeDist, SamplesWithinBounds) {
  FlowSizeDist dist;
  util::Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    double s = dist.sample(rng);
    EXPECT_GE(s, dist.short_lo);
    EXPECT_LE(s, dist.long_hi * (1 + 1e-9));
  }
}

TEST(FlowSizeDist, EmpiricalMeanMatchesAnalytic) {
  FlowSizeDist dist;
  util::Rng rng(2);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += dist.sample(rng);
  EXPECT_NEAR(sum / n, dist.mean(), dist.mean() * 0.05);
}

TEST(FlowSizeDist, MostFlowsAreShort) {
  FlowSizeDist dist;
  util::Rng rng(3);
  int shorts = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i)
    if (dist.sample(rng) <= dist.short_hi) ++shorts;
  EXPECT_NEAR(static_cast<double>(shorts) / n, dist.p_short, 0.02);
}

TEST(PoissonFlows, CountAndOrdering) {
  FlowSizeDist dist;
  util::Rng rng(4);
  auto flows = poisson_flows(500, 10.0, 64, dist, rng);
  ASSERT_EQ(flows.size(), 500u);
  for (std::size_t i = 1; i < flows.size(); ++i)
    EXPECT_GE(flows[i].arrival, flows[i - 1].arrival);
  for (const auto& f : flows) {
    EXPECT_NE(f.src, f.dst);
    EXPECT_LT(f.src, 64u);
    EXPECT_LT(f.dst, 64u);
    EXPECT_GT(f.size, 0.0);
  }
}

TEST(PoissonFlows, InterArrivalMeanMatchesRate) {
  FlowSizeDist dist;
  util::Rng rng(5);
  auto flows = poisson_flows(20000, 5.0, 16, dist, rng);
  double span = flows.back().arrival;
  EXPECT_NEAR(span / 20000.0, 0.2, 0.02);
}

TEST(PoissonFlows, ErrorCases) {
  FlowSizeDist dist;
  util::Rng rng(6);
  EXPECT_THROW(poisson_flows(10, 1.0, 1, dist, rng), std::invalid_argument);
  EXPECT_THROW(poisson_flows(10, 0.0, 8, dist, rng), std::invalid_argument);
}

TEST(FlowsFromDemands, MapsFields) {
  std::vector<mcf::ServerDemand> demands{{1, 2, 3.0}, {4, 5, 0.5}};
  auto flows = flows_from_demands(demands, 2.0);
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_EQ(flows[0].src, 1u);
  EXPECT_EQ(flows[0].dst, 2u);
  EXPECT_DOUBLE_EQ(flows[0].size, 6.0);
  EXPECT_DOUBLE_EQ(flows[1].size, 1.0);
  EXPECT_EQ(flows[0].arrival, 0.0);
}

}  // namespace
}  // namespace flattree::sim
