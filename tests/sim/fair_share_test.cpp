#include "sim/fair_share.hpp"

#include <gtest/gtest.h>

namespace flattree::sim {
namespace {

TEST(FairShare, SingleFlowGetsFullCapacity) {
  FairShareProblem p;
  p.capacity = {2.0};
  p.flow_resources = {{0}};
  auto rates = max_min_rates(p);
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0], 2.0);
}

TEST(FairShare, EqualSplitOnSharedLink) {
  FairShareProblem p;
  p.capacity = {1.0};
  p.flow_resources = {{0}, {0}, {0}, {0}};
  auto rates = max_min_rates(p);
  for (double r : rates) EXPECT_DOUBLE_EQ(r, 0.25);
}

TEST(FairShare, ClassicTwoLinkExample) {
  // Link A cap 1 shared by flows 1,2; link B cap 2 used by flow 2 and 3.
  // Max-min: flow1 = flow2 = 0.5 (A saturates), flow3 = 1.5 (B fills).
  FairShareProblem p;
  p.capacity = {1.0, 2.0};
  p.flow_resources = {{0}, {0, 1}, {1}};
  auto rates = max_min_rates(p);
  EXPECT_DOUBLE_EQ(rates[0], 0.5);
  EXPECT_DOUBLE_EQ(rates[1], 0.5);
  EXPECT_DOUBLE_EQ(rates[2], 1.5);
}

TEST(FairShare, BottleneckSaturation) {
  // Every resource with at least one flow frozen at it must be saturated
  // or every flow on it bottlenecked elsewhere at a lower-or-equal rate.
  FairShareProblem p;
  p.capacity = {1.0, 1.0, 3.0};
  p.flow_resources = {{0, 2}, {1, 2}, {2}, {0, 1}};
  auto rates = max_min_rates(p);
  // Feasibility: no resource over capacity.
  std::vector<double> used(p.capacity.size(), 0.0);
  for (std::size_t f = 0; f < rates.size(); ++f)
    for (auto r : p.flow_resources[f]) used[r] += rates[f];
  for (std::size_t r = 0; r < used.size(); ++r)
    EXPECT_LE(used[r], p.capacity[r] + 1e-9);
  // Max-min property: each flow has a saturated resource.
  for (std::size_t f = 0; f < rates.size(); ++f) {
    bool has_bottleneck = false;
    for (auto r : p.flow_resources[f])
      if (used[r] >= p.capacity[r] - 1e-9) has_bottleneck = true;
    EXPECT_TRUE(has_bottleneck) << "flow " << f << " could grow";
  }
}

TEST(FairShare, DuplicateResourceEntriesCountOnce) {
  FairShareProblem p;
  p.capacity = {1.0};
  p.flow_resources = {{0, 0, 0}};
  auto rates = max_min_rates(p);
  EXPECT_DOUBLE_EQ(rates[0], 1.0);
}

TEST(FairShare, SymmetricFlowsGetEqualRates) {
  FairShareProblem p;
  p.capacity = {1.0, 1.0, 1.0};
  p.flow_resources = {{0, 1}, {1, 2}, {2, 0}};
  auto rates = max_min_rates(p);
  EXPECT_NEAR(rates[0], rates[1], 1e-12);
  EXPECT_NEAR(rates[1], rates[2], 1e-12);
  EXPECT_NEAR(rates[0], 0.5, 1e-12);
}

TEST(FairShare, NoFlows) {
  FairShareProblem p;
  p.capacity = {1.0};
  EXPECT_TRUE(max_min_rates(p).empty());
}

TEST(FairShare, ErrorCases) {
  FairShareProblem p;
  p.capacity = {1.0};
  p.flow_resources = {{}};
  EXPECT_THROW(max_min_rates(p), std::invalid_argument);
  p.flow_resources = {{5}};
  EXPECT_THROW(max_min_rates(p), std::invalid_argument);
  p.capacity = {0.0};
  p.flow_resources = {{0}};
  EXPECT_THROW(max_min_rates(p), std::invalid_argument);
}

TEST(FairShare, ManyFlowsScales) {
  FairShareProblem p;
  p.capacity.assign(50, 1.0);
  for (int f = 0; f < 500; ++f)
    p.flow_resources.push_back({static_cast<std::uint32_t>(f % 50),
                                static_cast<std::uint32_t>((f * 7) % 50)});
  auto rates = max_min_rates(p);
  EXPECT_EQ(rates.size(), 500u);
  for (double r : rates) EXPECT_GT(r, 0.0);
}

}  // namespace
}  // namespace flattree::sim
