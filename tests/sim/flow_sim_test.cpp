#include "sim/flow_sim.hpp"

#include <gtest/gtest.h>

#include "routing/ecmp.hpp"
#include "topo/fat_tree.hpp"

namespace flattree::sim {
namespace {

struct Fixture {
  topo::FatTree ft = topo::build_fat_tree(4);
  routing::EcmpRouting routing{ft.topo.graph()};
  FlowSimulator simulator{ft.topo, routing};
};

TEST(FlowSim, SingleFlowFctEqualsSizeOverNicRate) {
  Fixture fx;
  // One inter-pod flow, NIC rate 1: FCT = size.
  std::vector<SimFlow> flows{{fx.ft.server(0, 0, 0), fx.ft.server(1, 0, 0), 3.0, 0.0}};
  auto records = fx.simulator.run(flows);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_NEAR(records[0].fct(), 3.0, 1e-9);
  EXPECT_EQ(records[0].hops, 4u);  // edge-agg-core-agg-edge
}

TEST(FlowSim, SameSwitchFlowHasZeroHops) {
  Fixture fx;
  std::vector<SimFlow> flows{{fx.ft.server(0, 0, 0), fx.ft.server(0, 0, 1), 1.0, 0.0}};
  auto records = fx.simulator.run(flows);
  EXPECT_EQ(records[0].hops, 0u);
  EXPECT_NEAR(records[0].fct(), 1.0, 1e-9);  // NIC-limited
}

TEST(FlowSim, TwoFlowsShareSourceNic) {
  Fixture fx;
  // Same source server, two destinations: NIC 1.0 shared -> each at 0.5.
  std::vector<SimFlow> flows{
      {fx.ft.server(0, 0, 0), fx.ft.server(1, 0, 0), 1.0, 0.0},
      {fx.ft.server(0, 0, 0), fx.ft.server(2, 0, 0), 1.0, 0.0},
  };
  auto records = fx.simulator.run(flows);
  EXPECT_NEAR(records[0].fct(), 2.0, 1e-9);
  EXPECT_NEAR(records[1].fct(), 2.0, 1e-9);
}

TEST(FlowSim, LateArrivalWaitsAndShares) {
  Fixture fx;
  // Flow B arrives at t=1 sharing A's NIC; A then slows down.
  std::vector<SimFlow> flows{
      {fx.ft.server(0, 0, 0), fx.ft.server(1, 0, 0), 2.0, 0.0},
      {fx.ft.server(0, 0, 0), fx.ft.server(2, 0, 0), 0.5, 1.0},
  };
  auto records = fx.simulator.run(flows);
  // A sends 1 unit by t=1, then both at 0.5: B done at t=2, A resumes
  // rate 1 with 0.5 left -> done at 2.5.
  EXPECT_NEAR(records[1].finish, 2.0, 1e-9);
  EXPECT_NEAR(records[0].finish, 2.5, 1e-9);
}

TEST(FlowSim, HigherNicCapacitySpeedsUp) {
  Fixture fx;
  SimConfig cfg;
  cfg.nic_capacity = 4.0;
  FlowSimulator fast(fx.ft.topo, fx.routing, cfg);
  std::vector<SimFlow> flows{{fx.ft.server(0, 0, 0), fx.ft.server(1, 0, 0), 4.0, 0.0}};
  auto records = fast.run(flows);
  // Now link-limited at 1.0? Path links have capacity 1 -> rate 1.
  EXPECT_NEAR(records[0].fct(), 4.0, 1e-9);
  // Same-switch flow is NIC-limited only -> rate 4.
  std::vector<SimFlow> local{{fx.ft.server(0, 0, 0), fx.ft.server(0, 0, 1), 4.0, 0.0}};
  EXPECT_NEAR(fast.run(local)[0].fct(), 1.0, 1e-9);
}

TEST(FlowSim, RecordsKeepInputOrder) {
  Fixture fx;
  std::vector<SimFlow> flows{
      {fx.ft.server(0, 0, 0), fx.ft.server(1, 0, 0), 1.0, 5.0},  // arrives later
      {fx.ft.server(2, 0, 0), fx.ft.server(3, 0, 0), 1.0, 0.0},
  };
  auto records = fx.simulator.run(flows);
  EXPECT_EQ(records[0].flow.arrival, 5.0);
  EXPECT_EQ(records[1].flow.arrival, 0.0);
  EXPECT_NEAR(records[0].finish, 6.0, 1e-9);
  EXPECT_NEAR(records[1].finish, 1.0, 1e-9);
}

TEST(FlowSim, ManyParallelFlowsAllComplete) {
  Fixture fx;  // k = 4 fat-tree: 16 servers
  std::vector<SimFlow> flows;
  for (std::uint32_t s = 0; s < 16; ++s)
    flows.push_back({s, static_cast<topo::ServerId>((s + 8) % 16), 1.0,
                     static_cast<double>(s) * 0.1});
  auto records = fx.simulator.run(flows);
  for (const auto& r : records) {
    EXPECT_GT(r.finish, r.flow.arrival);
    EXPECT_LT(r.finish, 100.0);
  }
}

TEST(FlowSim, ErrorCases) {
  Fixture fx;
  EXPECT_THROW(fx.simulator.run({}), std::invalid_argument);
  std::vector<SimFlow> self{{0, 0, 1.0, 0.0}};
  EXPECT_THROW(fx.simulator.run(self), std::invalid_argument);
}

TEST(FlowSim, DeterministicAcrossRuns) {
  Fixture fx;
  std::vector<SimFlow> flows;
  for (std::uint32_t s = 0; s < 8; ++s)
    flows.push_back({s, static_cast<topo::ServerId>(15 - s), 1.0 + s, 0.0});
  auto r1 = fx.simulator.run(flows);
  auto r2 = fx.simulator.run(flows);
  for (std::size_t i = 0; i < r1.size(); ++i)
    EXPECT_DOUBLE_EQ(r1[i].finish, r2[i].finish);
}

}  // namespace
}  // namespace flattree::sim
