// Throughput study: the paper's evaluation methodology end to end on one
// network size, with solver certificates.
//
//   $ ./throughput_study [--k 8] [--eps 0.08]
//
// Builds fat-tree, flat-tree (both modes), and the random-graph baselines
// from identical equipment, runs the two paper workloads, and reports the
// max concurrent flow value with its duality upper bound — every number
// carries its own optimality certificate.

#include <cstdio>

#include "core/flat_tree.hpp"
#include "exec/parallel_for.hpp"
#include "mcf/garg_koenemann.hpp"
#include "topo/fat_tree.hpp"
#include "topo/random_graph.hpp"
#include "topo/two_stage.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/traffic.hpp"

using namespace flattree;

int main(int argc, char** argv) {
  std::int64_t k = 8, seed = 1, cluster_big = 100, cluster_small = 20, threads = 0;
  double eps = 0.08;
  util::CliParser cli("Throughput study with optimality certificates.");
  cli.add_int("k", &k, "fat-tree parameter");
  cli.add_int("seed", &seed, "RNG seed");
  cli.add_int("big-cluster", &cluster_big, "broadcast cluster size");
  cli.add_int("small-cluster", &cluster_small, "all-to-all cluster size");
  cli.add_double("eps", &eps, "Garg-Koenemann epsilon");
  cli.add_int("threads", &threads,
              "execution threads (0 = FLATTREE_THREADS env / hardware concurrency)");
  if (!cli.parse(argc, argv)) return cli.exit_code();
  exec::set_global_threads(threads > 0 ? static_cast<unsigned>(threads) : 0);

  const std::uint32_t ku = static_cast<std::uint32_t>(k);
  const std::uint32_t per_pod = ku * ku / 4;
  core::FlatTreeConfig cfg;
  cfg.k = ku;
  core::FlatTreeNetwork net(cfg);
  util::Rng rng(static_cast<std::uint64_t>(seed));

  struct Entry {
    const char* name;
    topo::Topology topo;
  };
  std::vector<Entry> topologies;
  topologies.push_back({"fat-tree", topo::build_fat_tree(ku).topo});
  topologies.push_back({"flat-tree global RG", net.build(core::Mode::GlobalRandom)});
  topologies.push_back({"flat-tree local RG", net.build(core::Mode::LocalRandom)});
  topologies.push_back({"random graph", topo::build_jellyfish_like_fat_tree(ku, rng)});
  topologies.push_back({"two-stage random", topo::build_two_stage_random_graph(ku, rng)});

  util::Table table({"topology", "workload", "lambda (lower)", "upper bound", "gap %"});
  for (const Entry& entry : topologies) {
    for (int w = 0; w < 2; ++w) {
      util::Rng wl(static_cast<std::uint64_t>(seed) + 17);
      std::uint32_t size = static_cast<std::uint32_t>(w == 0 ? cluster_big : cluster_small);
      size = std::min<std::uint32_t>(size,
                                     static_cast<std::uint32_t>(entry.topo.server_count()));
      auto clusters = workload::make_clusters(
          static_cast<std::uint32_t>(entry.topo.server_count()), size,
          w == 0 ? workload::Placement::Locality : workload::Placement::WeakLocality,
          per_pod, wl);
      auto demands = workload::cluster_traffic(
          clusters, w == 0 ? workload::Pattern::Broadcast : workload::Pattern::AllToAll, wl);
      auto commodities = mcf::aggregate_to_switches(entry.topo, demands);
      mcf::McfOptions opt;
      opt.epsilon = eps;
      auto r = mcf::max_concurrent_flow(entry.topo.graph(), commodities, opt);
      table.begin_row();
      table.add(entry.name);
      table.add(w == 0 ? "broadcast/locality" : "all-to-all/weak");
      table.num(r.lambda_lower, 5);
      table.num(r.lambda_upper, 5);
      table.num(100.0 * (r.lambda_upper - r.lambda_lower) / r.lambda_upper, 1);
    }
  }
  table.print("Throughput with Garg-Koenemann certificates");
  return 0;
}
