// Quickstart: build a flat-tree, convert it between its operating modes,
// and measure what changes.
//
//   $ ./quickstart [--k 8]
//
// Walks the core API end to end: FlatTreeNetwork (the physical plant),
// Controller (the centralized control plane), Topology (a materialized
// logical network), and the average-path-length metric.

#include <cstdio>

#include "core/controller.hpp"
#include "topo/apl.hpp"
#include "util/cli.hpp"

using namespace flattree;

int main(int argc, char** argv) {
  std::int64_t k = 8;
  util::CliParser cli("Flat-tree quickstart: build, convert, measure.");
  cli.add_int("k", &k, "fat-tree parameter (even, >= 4)");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  // A Controller owns the physical plant and boots in Clos mode.
  core::FlatTreeConfig config;
  config.k = static_cast<std::uint32_t>(k);
  core::Controller controller(config);
  const core::FlatTreeNetwork& net = controller.network();

  std::printf("flat-tree k=%u: %s\n", net.config().k, controller.topology().summary().c_str());
  std::printf("converters: %zu (%u four-port + %u six-port per pod), wiring %s\n",
              net.converters().size(), net.layout().n * net.layout().d,
              net.layout().m * net.layout().d, core::to_string(net.pattern()));

  // Measure each operating mode.
  for (core::Mode mode :
       {core::Mode::Clos, core::Mode::GlobalRandom, core::Mode::LocalRandom}) {
    core::ReconfigPlan plan = controller.apply(mode);
    topo::Topology t = controller.topology();
    auto apl = topo::server_apl(t);
    std::printf(
        "\nmode %-13s  reconfigured %4zu converters (%zu links changed, %zu servers moved)\n"
        "  server-pair APL %.3f hops (max %u), %zu links, all port budgets respected\n",
        core::to_string(mode), plan.steps.size(), plan.links_added, plan.servers_moved,
        apl.average, apl.max_dist, t.link_count());
  }

  // And back to Clos: conversions are fully reversible.
  core::ReconfigPlan back = controller.apply(core::Mode::Clos);
  std::printf("\nreverted to clos (%zu converter changes) — conversion is reversible.\n",
              back.steps.size());
  return 0;
}
