// Flow-level simulation: what conversion buys individual flows.
//
//   $ ./fct_simulation [--k 8] [--flows 1000]
//
// Replays the same Poisson workload of heavy-tailed flows on the Clos
// fat-tree (ECMP routing) and on the converted global-random-graph
// flat-tree (k-shortest-paths routing, as the paper's control plane
// prescribes), and compares flow completion times.

#include <cstdio>

#include "core/flat_tree.hpp"
#include "routing/ecmp.hpp"
#include "routing/ksp_routing.hpp"
#include "sim/flow_gen.hpp"
#include "sim/flow_sim.hpp"
#include "topo/fat_tree.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

using namespace flattree;

int main(int argc, char** argv) {
  std::int64_t k = 8, flows = 1000, seed = 1;
  double load = 4.0;
  util::CliParser cli("Flow-completion-time comparison: Clos vs converted flat-tree.");
  cli.add_int("k", &k, "fat-tree parameter");
  cli.add_int("flows", &flows, "number of flows");
  cli.add_double("load", &load, "Poisson arrival rate");
  cli.add_int("seed", &seed, "RNG seed");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  const std::uint32_t ku = static_cast<std::uint32_t>(k);
  topo::FatTree ft = topo::build_fat_tree(ku);
  core::FlatTreeConfig cfg;
  cfg.k = ku;
  core::FlatTreeNetwork net(cfg);
  topo::Topology grg = net.build(core::Mode::GlobalRandom);

  util::Rng rng(static_cast<std::uint64_t>(seed));
  sim::FlowSizeDist dist;
  auto workload = sim::poisson_flows(static_cast<std::uint32_t>(flows), load,
                                     static_cast<std::uint32_t>(ft.topo.server_count()),
                                     dist, rng);
  std::printf("workload: %lld flows, Poisson rate %.1f, mean size %.3f\n\n",
              static_cast<long long>(flows), load, dist.mean());

  auto report = [&](const char* name, const topo::Topology& t, routing::Routing& routing) {
    sim::FlowSimulator simulator(t, routing);
    auto records = simulator.run(workload);
    std::vector<double> fcts;
    util::Accumulator hops;
    for (const auto& r : records) {
      fcts.push_back(r.fct());
      hops.add(r.hops);
    }
    util::Distribution d(std::move(fcts));
    std::printf("%-28s mean FCT %.4f  median %.4f  p99 %.4f  mean hops %.2f\n", name,
                d.mean(), d.median(), d.quantile(0.99), hops.mean());
  };

  routing::EcmpRouting ecmp(ft.topo.graph());
  report("fat-tree + ECMP", ft.topo, ecmp);
  routing::KspRouting ksp(grg.graph(), 8);
  report("flat-tree(global RG) + KSP8", grg, ksp);

  std::printf("\nconversion shortens paths; KSP exploits the random-graph diversity.\n");
  return 0;
}
