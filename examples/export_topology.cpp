// Export: snapshot any operating mode to Graphviz DOT and the v1 text
// format — for rendering conversions or feeding external tooling.
//
//   $ ./export_topology --k 4 --mode global --out /tmp/flattree
//   $ dot -Tsvg /tmp/flattree.dot -o flattree.svg

#include <cstdio>
#include <fstream>

#include "core/flat_tree.hpp"
#include "topo/dot.hpp"
#include "topo/serialize.hpp"
#include "util/cli.hpp"

using namespace flattree;

int main(int argc, char** argv) {
  std::int64_t k = 4;
  std::string mode = "global";
  std::string out = "flattree";
  bool servers = false;
  util::CliParser cli("Export a flat-tree operating mode to .dot and .topo files.");
  cli.add_int("k", &k, "fat-tree parameter");
  cli.add_string("mode", &mode, "clos | global | local");
  cli.add_string("out", &out, "output path prefix");
  cli.add_bool("servers", &servers, "include server nodes in the DOT render");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  core::Mode m;
  if (mode == "clos") {
    m = core::Mode::Clos;
  } else if (mode == "global") {
    m = core::Mode::GlobalRandom;
  } else if (mode == "local") {
    m = core::Mode::LocalRandom;
  } else {
    std::fprintf(stderr, "unknown --mode '%s' (want clos|global|local)\n", mode.c_str());
    return 2;
  }

  core::FlatTreeConfig cfg;
  cfg.k = static_cast<std::uint32_t>(k);
  core::FlatTreeNetwork net(cfg);
  topo::Topology t = net.build(m);

  topo::DotOptions dot_options;
  dot_options.include_servers = servers;
  std::string dot_path = out + ".dot";
  std::string topo_path = out + ".topo";
  {
    std::ofstream f(dot_path);
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", dot_path.c_str());
      return 1;
    }
    f << topo::to_dot(t, dot_options);
  }
  {
    std::ofstream f(topo_path);
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", topo_path.c_str());
      return 1;
    }
    f << topo::serialize(t);
  }

  // Round-trip sanity so the snapshot is trustworthy.
  topo::Topology parsed = topo::deserialize(topo::serialize(t));
  std::printf("%s mode (%s)\nwrote %s (render: dot -Tsvg %s) and %s (round-trip ok: %s)\n",
              core::to_string(m), t.summary().c_str(), dot_path.c_str(), dot_path.c_str(),
              topo_path.c_str(),
              parsed.link_count() == t.link_count() ? "yes" : "NO");
  return 0;
}
