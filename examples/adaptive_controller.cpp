// Adaptive operation (paper Sections 2.6 and 5): the controller reconverts
// the network as the workload mix shifts, e.g. across a daily cycle.
//
//   $ ./adaptive_controller [--k 8]
//
// Three workload phases (analytics-heavy night, service-heavy day, mixed
// evening) are measured under every static mode and under the controller's
// recommended zoning, showing that adapting the topology tracks the best
// static choice in each phase.

#include <cstdio>

#include "core/controller.hpp"
#include "core/zones.hpp"
#include "mcf/garg_koenemann.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/traffic.hpp"

using namespace flattree;

namespace {

struct Phase {
  const char* name;
  double large_fraction;  ///< share of servers in big broadcast clusters
};

double lambda(const topo::Topology& t, const std::vector<mcf::ServerDemand>& demands) {
  auto commodities = mcf::aggregate_to_switches(t, demands);
  if (commodities.empty()) return 0.0;
  mcf::McfOptions opt;
  opt.epsilon = 0.15;
  opt.compute_upper_bound = false;
  return mcf::max_concurrent_flow(t.graph(), commodities, opt).lambda_lower;
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t k = 8, seed = 1;
  util::CliParser cli("Adaptive controller: reconvert as the workload mix shifts.");
  cli.add_int("k", &k, "fat-tree parameter");
  cli.add_int("seed", &seed, "workload RNG seed");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  const std::uint32_t ku = static_cast<std::uint32_t>(k);
  const std::uint32_t per_pod = ku * ku / 4;
  core::FlatTreeConfig cfg;
  cfg.k = ku;
  core::Controller controller(cfg);
  const core::FlatTreeNetwork& net = controller.network();
  const std::uint32_t total = net.params().total_servers();

  const Phase phases[] = {{"night (batch analytics)", 0.9},
                          {"day (small services)", 0.2},
                          {"evening (mixed)", 0.5}};

  util::Table table({"phase", "static clos", "static global", "static local",
                     "adaptive zones", "reconfig steps"});
  for (const Phase& phase : phases) {
    // Build the phase's workload: big broadcast clusters for the "large"
    // share, 16-server all-to-all clusters for the rest.
    util::Rng rng(static_cast<std::uint64_t>(seed) * 71 + static_cast<std::uint64_t>(
                                                              phase.large_fraction * 100));
    std::uint32_t large_servers =
        static_cast<std::uint32_t>(phase.large_fraction * total);
    std::vector<topo::ServerId> large_pool, small_pool;
    for (topo::ServerId s = 0; s < total; ++s)
      (s < large_servers ? large_pool : small_pool).push_back(s);

    std::vector<mcf::ServerDemand> demands;
    if (large_pool.size() >= 2) {
      auto clusters = workload::make_clusters_subset(
          large_pool, std::min<std::uint32_t>(40, static_cast<std::uint32_t>(large_pool.size())),
          workload::Placement::NoLocality, per_pod, rng);
      auto part = workload::cluster_traffic(clusters, workload::Pattern::Broadcast, rng);
      demands.insert(demands.end(), part.begin(), part.end());
    }
    if (small_pool.size() >= 16) {
      auto clusters = workload::make_clusters_subset(small_pool, 16,
                                                     workload::Placement::WeakLocality,
                                                     per_pod, rng);
      auto part = workload::cluster_traffic(clusters, workload::Pattern::AllToAll, rng);
      demands.insert(demands.end(), part.begin(), part.end());
    }

    // Static references.
    double clos = lambda(net.build(core::Mode::Clos), demands);
    double global = lambda(net.build(core::Mode::GlobalRandom), demands);
    double local = lambda(net.build(core::Mode::LocalRandom), demands);

    // Adaptive: recommend zones from the observed mix and reconvert.
    core::WorkloadHint hint;
    hint.servers_in_large_clusters = large_servers;
    hint.servers_in_small_clusters = total - large_servers;
    core::ReconfigPlan plan = controller.apply(core::recommend_zones(ku, hint));
    double adaptive = lambda(controller.topology(), demands);

    table.begin_row();
    table.add(phase.name);
    table.num(clos, 5);
    table.num(global, 5);
    table.num(local, 5);
    table.num(adaptive, 5);
    table.integer(static_cast<std::int64_t>(plan.steps.size()));
  }
  table.print("Adaptive reconversion across workload phases");
  std::puts("The adaptive column tracks the best static mode per phase while paying\n"
            "only incremental converter reconfigurations between phases.");
  return 0;
}
