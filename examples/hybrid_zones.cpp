// Hybrid-mode operation: zoned topologies driven by workload placement
// (paper Sections 2.6 and 3.4).
//
//   $ ./hybrid_zones [--k 8]
//
// A mixed workload arrives (large broadcast clusters + small all-to-all
// clusters). The controller recommends a zone split, converts the network,
// places each class into its zone, and reports per-zone throughput
// against a dedicated network of the same mode.

#include <cstdio>

#include "core/controller.hpp"
#include "core/zones.hpp"
#include "mcf/garg_koenemann.hpp"
#include "util/cli.hpp"
#include "workload/traffic.hpp"

using namespace flattree;

namespace {

double lambda(const topo::Topology& t, const std::vector<mcf::ServerDemand>& demands) {
  auto commodities = mcf::aggregate_to_switches(t, demands);
  mcf::McfOptions opt;
  opt.epsilon = 0.12;
  opt.compute_upper_bound = false;
  return mcf::max_concurrent_flow(t.graph(), commodities, opt).lambda_lower;
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t k = 8, seed = 1;
  util::CliParser cli("Hybrid flat-tree: zoned conversion driven by workloads.");
  cli.add_int("k", &k, "fat-tree parameter (even, >= 4)");
  cli.add_int("seed", &seed, "workload RNG seed");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  const std::uint32_t ku = static_cast<std::uint32_t>(k);
  const std::uint32_t per_pod = ku * ku / 4;
  core::FlatTreeConfig config;
  config.k = ku;
  core::Controller controller(config);
  const core::FlatTreeNetwork& net = controller.network();
  const std::uint32_t total = net.params().total_servers();

  // Incoming workload: 60% of servers in big broadcast clusters, 40% in
  // small all-to-all clusters.
  core::WorkloadHint hint;
  hint.servers_in_large_clusters = total * 6 / 10;
  hint.servers_in_small_clusters = total - hint.servers_in_large_clusters;
  core::ZonePartition zones = core::recommend_zones(ku, hint);
  std::printf("workload: %llu servers in large clusters, %llu in small ones\n",
              static_cast<unsigned long long>(hint.servers_in_large_clusters),
              static_cast<unsigned long long>(hint.servers_in_small_clusters));
  std::printf("recommended zones: %zu pods global-random, %zu pods local-random\n",
              zones.pods_in(core::Mode::GlobalRandom).size(),
              zones.pods_in(core::Mode::LocalRandom).size());

  core::ReconfigPlan plan = controller.apply(zones);
  std::printf("converted with %zu converter reconfigurations\n\n", plan.steps.size());
  topo::Topology hybrid = controller.topology();

  // Place each workload class into its zone and measure.
  util::Rng rng(static_cast<std::uint64_t>(seed));
  auto g_servers = core::servers_in_pods(net, zones.pods_in(core::Mode::GlobalRandom));
  auto l_servers = core::servers_in_pods(net, zones.pods_in(core::Mode::LocalRandom));
  std::uint32_t g_size = std::min<std::uint32_t>(40, static_cast<std::uint32_t>(g_servers.size()));
  std::uint32_t l_size = std::min<std::uint32_t>(16, static_cast<std::uint32_t>(l_servers.size()));

  auto g_clusters = workload::make_clusters_subset(g_servers, g_size,
                                                   workload::Placement::NoLocality,
                                                   per_pod, rng);
  auto l_clusters = workload::make_clusters_subset(l_servers, l_size,
                                                   workload::Placement::WeakLocality,
                                                   per_pod, rng);
  auto g_demands = workload::cluster_traffic(g_clusters, workload::Pattern::Broadcast, rng);
  auto l_demands = workload::cluster_traffic(l_clusters, workload::Pattern::AllToAll, rng);

  double g_zone = lambda(hybrid, g_demands);
  double l_zone = lambda(hybrid, l_demands);
  std::printf("global zone: %zu broadcast clusters of %u -> lambda %.5f\n",
              g_clusters.size(), g_size, g_zone);
  std::printf("local zone:  %zu all-to-all clusters of %u -> lambda %.5f\n",
              l_clusters.size(), l_size, l_zone);

  // Paper Section 3.4: each zone should match a dedicated network.
  double g_dedicated = lambda(net.build(core::Mode::GlobalRandom), g_demands);
  double l_dedicated = lambda(net.build(core::Mode::LocalRandom), l_demands);
  std::printf("\ndedicated-network references: global %.5f (ratio %.2f), "
              "local %.5f (ratio %.2f)\n",
              g_dedicated, g_zone / g_dedicated, l_dedicated, l_zone / l_dedicated);
  std::printf("ratios near 1.0 reproduce the paper's zone-segregation claim.\n");
  return 0;
}
