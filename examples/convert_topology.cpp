// Conversion walk-through: what a flat-tree reconfiguration physically is.
//
//   $ ./convert_topology [--k 4]
//
// Prints the pod geometry (paper Figure 3), the per-edge core assignments
// under the pod-core wiring pattern (Figure 4), the inter-pod side pairing
// (Section 2.5), and then the exact converter-by-converter plan for
// converting Clos -> approximated global random graph.

#include <cstdio>

#include "core/controller.hpp"
#include "util/cli.hpp"

using namespace flattree;

int main(int argc, char** argv) {
  std::int64_t k = 4;
  std::int64_t max_steps = 12;
  util::CliParser cli("Flat-tree conversion walk-through (keep k small to read it).");
  cli.add_int("k", &k, "fat-tree parameter (even, >= 4)");
  cli.add_int("max-steps", &max_steps, "reconfiguration steps to print");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  core::FlatTreeConfig config;
  config.k = static_cast<std::uint32_t>(k);
  core::Controller controller(config);
  const core::FlatTreeNetwork& net = controller.network();
  const core::PodLayout& layout = net.layout();

  std::printf("== pod geometry (paper Fig. 3) ==\n");
  std::printf("d=%u edge switches/pod, %u aggregation, blades: A %u x %u (4-port),"
              " B %u x %u (6-port) per side\n",
              layout.d, layout.d / layout.r, layout.n, layout.left_width(), layout.m,
              layout.left_width());
  std::printf("resolved pod-core wiring: %s, chain: %s\n\n",
              core::to_string(net.pattern()), core::to_string(net.config().chain));

  std::printf("== converter attachments in pod 0 ==\n");
  for (std::uint32_t slot = 0; slot < layout.converters_per_pod(); ++slot) {
    const core::Converter& c = net.converters()[net.converter_index(0, slot)];
    std::printf("  %-6s row %u col %u: edge sw%-3u agg sw%-3u core sw%-3u server %-3u",
                core::to_string(c.type), c.row, c.col, c.edge, c.agg, c.core, c.server);
    if (c.peer != core::kNoPeer) {
      const core::Converter& p = net.converters()[c.peer];
      std::printf("  side-> pod %u col %u row %u", p.pod, p.col, p.row);
    }
    std::printf("\n");
  }

  std::printf("\n== conversion plan: clos -> global random graph ==\n");
  core::ReconfigPlan plan = controller.plan(core::Mode::GlobalRandom);
  std::printf("%zu converter reconfigurations; %zu links removed, %zu added, "
              "%zu servers re-homed\n",
              plan.steps.size(), plan.links_removed, plan.links_added, plan.servers_moved);
  for (std::size_t i = 0; i < plan.steps.size() && i < static_cast<std::size_t>(max_steps);
       ++i) {
    const core::ReconfigStep& s = plan.steps[i];
    const core::Converter& c = net.converters()[s.converter];
    std::printf("  #%-4u pod %u %-6s row %u col %u: %-7s -> %s\n", s.converter, c.pod,
                core::to_string(c.type), c.row, c.col, core::to_string(s.from),
                core::to_string(s.to));
  }
  if (plan.steps.size() > static_cast<std::size_t>(max_steps))
    std::printf("  ... %zu more\n", plan.steps.size() - static_cast<std::size_t>(max_steps));

  controller.apply(core::Mode::GlobalRandom);
  std::printf("\napplied. topology now: %s\n", controller.topology().summary().c_str());
  return 0;
}
