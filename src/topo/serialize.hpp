#pragma once
// Plain-text topology serialization.
//
// A stable, diff-able format so experiments can snapshot materialized
// topologies, compare conversions out-of-band, or feed external tools.
//
//   flattree-topology v1
//   switches <count>
//   <kind> <pod> <index> <ports>        # one per switch, id order
//   links <count>
//   <a> <b> <capacity> <origin>         # one per link, id order
//   servers <count>
//   <host>                              # one per server, id order

#include <string>

#include "topo/topology.hpp"

namespace flattree::topo {

/// Renders the topology in the v1 text format.
std::string serialize(const Topology& topo);

/// Parses the v1 text format. Throws std::invalid_argument with a
/// line-numbered message on malformed input.
Topology deserialize(const std::string& text);

}  // namespace flattree::topo
