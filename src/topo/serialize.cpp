#include "topo/serialize.hpp"

#include <cstdint>
#include <sstream>
#include <stdexcept>

namespace flattree::topo {

namespace {

const char* kMagic = "flattree-topology v1";

SwitchKind parse_kind(const std::string& token, std::size_t line) {
  if (token == "core") return SwitchKind::Core;
  if (token == "aggregation") return SwitchKind::Aggregation;
  if (token == "edge") return SwitchKind::Edge;
  throw std::invalid_argument("deserialize: unknown switch kind '" + token + "' at line " +
                              std::to_string(line));
}

LinkOrigin parse_origin(const std::string& token, std::size_t line) {
  if (token == "clos-edge-agg") return LinkOrigin::ClosEdgeAgg;
  if (token == "pod-core") return LinkOrigin::PodCore;
  if (token == "converter-local") return LinkOrigin::ConverterLocal;
  if (token == "inter-pod-side") return LinkOrigin::InterPodSide;
  if (token == "random") return LinkOrigin::Random;
  throw std::invalid_argument("deserialize: unknown link origin '" + token + "' at line " +
                              std::to_string(line));
}

/// Reads one non-empty line or throws.
std::string next_line(std::istringstream& in, std::size_t& line) {
  std::string s;
  while (std::getline(in, s)) {
    ++line;
    if (!s.empty()) return s;
  }
  throw std::invalid_argument("deserialize: unexpected end of input after line " +
                              std::to_string(line));
}

std::size_t parse_section(const std::string& header, const char* name, std::size_t line) {
  std::istringstream is(header);
  std::string key;
  std::size_t count = 0;
  if (!(is >> key >> count) || key != name)
    throw std::invalid_argument(std::string("deserialize: expected '") + name +
                                " <count>' at line " + std::to_string(line));
  return count;
}

}  // namespace

std::string serialize(const Topology& topo) {
  std::ostringstream os;
  os << kMagic << '\n';
  os << "switches " << topo.switch_count() << '\n';
  for (NodeId v = 0; v < topo.switch_count(); ++v) {
    const SwitchInfo& info = topo.info(v);
    os << to_string(info.kind) << ' ' << info.pod << ' ' << info.index << ' ' << info.ports
       << '\n';
  }
  os << "links " << topo.link_count() << '\n';
  for (graph::LinkId l = 0; l < topo.link_count(); ++l) {
    const graph::Link& link = topo.graph().link(l);
    os << link.a << ' ' << link.b << ' ' << link.capacity << ' '
       << to_string(topo.link_info(l).origin) << '\n';
  }
  os << "servers " << topo.server_count() << '\n';
  for (ServerId s = 0; s < topo.server_count(); ++s) os << topo.host(s) << '\n';
  return os.str();
}

Topology deserialize(const std::string& text) {
  std::istringstream in(text);
  std::size_t line = 0;
  if (next_line(in, line) != kMagic)
    throw std::invalid_argument("deserialize: bad magic header (want '" +
                                std::string(kMagic) + "')");

  Topology topo;
  std::size_t switches = parse_section(next_line(in, line), "switches", line);
  for (std::size_t i = 0; i < switches; ++i) {
    std::istringstream row(next_line(in, line));
    std::string kind;
    std::int32_t pod;
    std::uint32_t index, ports;
    if (!(row >> kind >> pod >> index >> ports))
      throw std::invalid_argument("deserialize: malformed switch at line " +
                                  std::to_string(line));
    topo.add_switch(parse_kind(kind, line), pod, index, ports);
  }

  std::size_t links = parse_section(next_line(in, line), "links", line);
  for (std::size_t i = 0; i < links; ++i) {
    std::istringstream row(next_line(in, line));
    std::uint32_t a, b;
    double capacity;
    std::string origin;
    if (!(row >> a >> b >> capacity >> origin))
      throw std::invalid_argument("deserialize: malformed link at line " +
                                  std::to_string(line));
    topo.add_link(a, b, parse_origin(origin, line), capacity);
  }

  std::size_t servers = parse_section(next_line(in, line), "servers", line);
  for (std::size_t i = 0; i < servers; ++i) {
    std::istringstream row(next_line(in, line));
    std::uint32_t host;
    if (!(row >> host))
      throw std::invalid_argument("deserialize: malformed server at line " +
                                  std::to_string(line));
    topo.add_server(host);
  }
  return topo;
}

}  // namespace flattree::topo
