#include "topo/fat_tree.hpp"

#include <algorithm>
#include <stdexcept>

namespace flattree::topo {

ClosParams ClosParams::fat_tree(std::uint32_t k) {
  ClosParams p;
  p.k = k;
  return p;
}

ClosParams ClosParams::make_generic(std::uint32_t pods, std::uint32_t d, std::uint32_t r,
                                    std::uint32_t h, std::uint32_t servers_per_edge,
                                    std::uint32_t edge_ports, std::uint32_t agg_ports,
                                    std::uint32_t core_ports) {
  if (pods < 2) throw std::invalid_argument("ClosParams: need at least 2 pods");
  if (r == 0 || d == 0 || h == 0 || servers_per_edge == 0)
    throw std::invalid_argument("ClosParams: zero layout parameter");
  if (d % r != 0)
    throw std::invalid_argument("ClosParams: r must divide d (edges per aggregation)");
  if (h % r != 0)
    throw std::invalid_argument("ClosParams: r must divide h (per-edge core groups)");
  if (edge_ports < servers_per_edge + d / r)
    throw std::invalid_argument("ClosParams: edge ports < servers + aggregation links");
  if (agg_ports < d + h)
    throw std::invalid_argument("ClosParams: aggregation ports < d + h");
  if (core_ports < pods)
    throw std::invalid_argument("ClosParams: core ports < pods (one link per pod)");
  ClosParams p;
  p.generic_ = true;
  p.pods_ = pods;
  p.d_ = d;
  p.r_ = r;
  p.h_ = h;
  p.spe_ = servers_per_edge;
  p.edge_ports_ = edge_ports;
  p.agg_ports_ = agg_ports;
  p.core_ports_ = core_ports;
  // Keep k meaningful-ish for diagnostics: the largest port budget.
  p.k = std::max({edge_ports, agg_ports, core_ports});
  return p;
}

NodeId FatTree::edge_switch(std::uint32_t pod, std::uint32_t j) const {
  return pod * (params.d() + params.aggs_per_pod()) + j;
}

NodeId FatTree::agg_switch(std::uint32_t pod, std::uint32_t i) const {
  return pod * (params.d() + params.aggs_per_pod()) + params.d() + i;
}

NodeId FatTree::core_switch(std::uint32_t c) const {
  return params.pods() * (params.d() + params.aggs_per_pod()) + c;
}

ServerId FatTree::server(std::uint32_t pod, std::uint32_t j, std::uint32_t s) const {
  return (pod * params.d() + j) * params.servers_per_edge() + s;
}

FatTree build_clos(const ClosParams& p) {
  FatTree ft;
  ft.params = p;

  // Switches: per pod edges then aggs, then all cores (see header layout).
  for (std::uint32_t pod = 0; pod < p.pods(); ++pod) {
    for (std::uint32_t j = 0; j < p.d(); ++j)
      ft.topo.add_switch(SwitchKind::Edge, static_cast<std::int32_t>(pod), j,
                         p.edge_ports());
    for (std::uint32_t i = 0; i < p.aggs_per_pod(); ++i)
      ft.topo.add_switch(SwitchKind::Aggregation, static_cast<std::int32_t>(pod), i,
                         p.agg_ports());
  }
  for (std::uint32_t c = 0; c < p.cores(); ++c)
    ft.topo.add_switch(SwitchKind::Core, -1, c, p.core_ports());

  // Intra-pod complete bipartite edge-aggregation mesh.
  for (std::uint32_t pod = 0; pod < p.pods(); ++pod)
    for (std::uint32_t j = 0; j < p.d(); ++j)
      for (std::uint32_t i = 0; i < p.aggs_per_pod(); ++i)
        ft.topo.add_link(ft.edge_switch(pod, j), ft.agg_switch(pod, i),
                         LinkOrigin::ClosEdgeAgg);

  // Pod-core wiring (paper Figure 4a): Ai -> cores [i*h, (i+1)*h).
  for (std::uint32_t pod = 0; pod < p.pods(); ++pod)
    for (std::uint32_t i = 0; i < p.aggs_per_pod(); ++i)
      for (std::uint32_t u = 0; u < p.h(); ++u)
        ft.topo.add_link(ft.agg_switch(pod, i), ft.core_switch(i * p.h() + u),
                         LinkOrigin::PodCore);

  // Servers, consecutive within edge switches.
  for (std::uint32_t pod = 0; pod < p.pods(); ++pod)
    for (std::uint32_t j = 0; j < p.d(); ++j)
      for (std::uint32_t s = 0; s < p.servers_per_edge(); ++s)
        ft.topo.add_server(ft.edge_switch(pod, j));

  return ft;
}

FatTree build_fat_tree(std::uint32_t k) {
  if (k < 4 || k % 2 != 0)
    throw std::invalid_argument("build_fat_tree: k must be even and >= 4");
  return build_clos(ClosParams::fat_tree(k));
}

}  // namespace flattree::topo
