#include "topo/apl.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace flattree::topo {

namespace {

obs::Counter c_apl_runs("topo.apl.runs");
obs::Counter c_apl_grouped("topo.apl.grouped_runs");

}  // namespace

graph::AplResult server_apl(const Topology& topo) {
  OBS_SPAN("topo.apl.server_apl");
  c_apl_runs.inc();
  return graph::weighted_apl(topo.graph(), topo.servers_per_switch(), /*offset=*/2,
                             /*same_node_dist=*/2);
}

graph::AplResult server_apl_subset(const Topology& topo,
                                   const std::vector<ServerId>& subset) {
  std::vector<std::uint32_t> weight(topo.switch_count(), 0);
  for (ServerId s : subset) ++weight[topo.host(s)];
  return graph::weighted_apl(topo.graph(), weight, /*offset=*/2, /*same_node_dist=*/2);
}

graph::AplResult server_apl_grouped(const Topology& topo,
                                    const std::vector<std::vector<ServerId>>& groups) {
  OBS_SPAN("topo.apl.server_apl_grouped");
  c_apl_grouped.inc();
  long double total = 0.0L;
  std::uint64_t pairs = 0;
  std::uint32_t max_dist = 0;
  for (const auto& group : groups) {
    if (group.size() < 2) continue;
    graph::AplResult r = server_apl_subset(topo, group);
    total += static_cast<long double>(r.average) * static_cast<long double>(r.pairs);
    pairs += r.pairs;
    max_dist = std::max(max_dist, r.max_dist);
  }
  graph::AplResult out;
  out.pairs = pairs;
  out.max_dist = max_dist;
  out.average = pairs ? static_cast<double>(total / static_cast<long double>(pairs)) : 0.0;
  return out;
}

}  // namespace flattree::topo
