#include "topo/topology.hpp"

#include <array>
#include <sstream>
#include <stdexcept>

#include "graph/bfs.hpp"

namespace flattree::topo {

const char* to_string(SwitchKind kind) {
  switch (kind) {
    case SwitchKind::Core: return "core";
    case SwitchKind::Aggregation: return "aggregation";
    case SwitchKind::Edge: return "edge";
  }
  return "?";
}

const char* to_string(LinkOrigin origin) {
  switch (origin) {
    case LinkOrigin::ClosEdgeAgg: return "clos-edge-agg";
    case LinkOrigin::PodCore: return "pod-core";
    case LinkOrigin::ConverterLocal: return "converter-local";
    case LinkOrigin::InterPodSide: return "inter-pod-side";
    case LinkOrigin::Random: return "random";
  }
  return "?";
}

NodeId Topology::add_switch(SwitchKind kind, std::int32_t pod, std::uint32_t index,
                            std::uint32_t ports) {
  NodeId id = graph_.add_nodes(1);
  switch_info_.push_back(SwitchInfo{kind, pod, index, ports});
  return id;
}

LinkId Topology::add_link(NodeId a, NodeId b, LinkOrigin origin, double capacity) {
  LinkId id = graph_.add_link(a, b, capacity);
  link_info_.push_back(LinkInfo{origin});
  return id;
}

ServerId Topology::add_server(NodeId host) {
  if (host >= graph_.node_count())
    throw std::out_of_range("Topology::add_server: host out of range");
  server_host_.push_back(host);
  return static_cast<ServerId>(server_host_.size() - 1);
}

void Topology::move_server(ServerId server, NodeId new_host) {
  if (new_host >= graph_.node_count())
    throw std::out_of_range("Topology::move_server: host out of range");
  server_host_.at(server) = new_host;
}

std::vector<std::uint32_t> Topology::servers_per_switch() const {
  std::vector<std::uint32_t> count(graph_.node_count(), 0);
  for (NodeId host : server_host_) ++count[host];
  return count;
}

std::vector<ServerId> Topology::servers_on(NodeId node) const {
  std::vector<ServerId> out;
  for (ServerId s = 0; s < server_host_.size(); ++s)
    if (server_host_[s] == node) out.push_back(s);
  return out;
}

std::size_t Topology::used_ports(NodeId node) const {
  std::size_t used = graph_.degree(node);
  for (NodeId host : server_host_)
    if (host == node) ++used;
  return used;
}

std::vector<NodeId> Topology::switches_of(SwitchKind kind) const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < switch_info_.size(); ++n)
    if (switch_info_[n].kind == kind) out.push_back(n);
  return out;
}

std::vector<NodeId> Topology::switches_in_pod(std::int32_t pod) const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < switch_info_.size(); ++n)
    if (switch_info_[n].pod == pod) out.push_back(n);
  return out;
}

std::array<std::size_t, 3> Topology::kind_counts() const {
  std::array<std::size_t, 3> counts{0, 0, 0};
  for (const auto& info : switch_info_) counts[static_cast<std::size_t>(info.kind)]++;
  return counts;
}

void Topology::validate() const {
  std::vector<std::size_t> used(graph_.node_count(), 0);
  for (const auto& link : graph_.links()) {
    ++used[link.a];
    ++used[link.b];
  }
  for (NodeId host : server_host_) ++used[host];
  for (NodeId n = 0; n < graph_.node_count(); ++n) {
    if (used[n] > switch_info_[n].ports) {
      std::ostringstream os;
      os << "Topology::validate: switch " << n << " (" << to_string(switch_info_[n].kind)
         << ", pod " << switch_info_[n].pod << ", index " << switch_info_[n].index
         << ") uses " << used[n] << " ports but has only " << switch_info_[n].ports;
      throw std::runtime_error(os.str());
    }
  }
  if (!graph::is_connected(graph_))
    throw std::runtime_error("Topology::validate: switch graph is disconnected");
}

std::string Topology::summary() const {
  auto counts = kind_counts();
  std::ostringstream os;
  os << switch_count() << " switches (" << counts[0] << " core, " << counts[1]
     << " aggregation, " << counts[2] << " edge), " << link_count() << " links, "
     << server_count() << " servers";
  return os.str();
}

}  // namespace flattree::topo
