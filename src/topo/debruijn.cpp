#include "topo/debruijn.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

namespace flattree::topo {

Topology build_debruijn(std::uint32_t symbols, std::uint32_t dimension,
                        std::uint32_t num_servers, std::uint32_t ports) {
  if (symbols < 2) throw std::invalid_argument("debruijn: symbols must be >= 2");
  if (dimension < 1) throw std::invalid_argument("debruijn: dimension must be >= 1");
  std::uint64_t count = 1;
  for (std::uint32_t i = 0; i < dimension; ++i) {
    count *= symbols;
    if (count > (std::uint64_t{1} << 22))
      throw std::invalid_argument("debruijn: switch count exceeds 2^22");
  }
  const auto n = static_cast<std::uint32_t>(count);

  // Undirected successor edges, deduplicated: (x, (symbols*x + c) mod n)
  // normalized to (min, max). Self-loops (fixed points of the shift map,
  // e.g. the all-zeros string) are dropped; 2-cycles collapse to one edge.
  std::set<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t x = 0; x < n; ++x) {
    for (std::uint32_t c = 0; c < symbols; ++c) {
      const auto y = static_cast<std::uint32_t>(
          (static_cast<std::uint64_t>(x) * symbols + c) % n);
      if (x == y) continue;
      edges.emplace(std::min(x, y), std::max(x, y));
    }
  }

  Topology t;
  for (std::uint32_t x = 0; x < n; ++x)
    t.add_switch(SwitchKind::Core, /*pod=*/-1, /*index=*/x, ports);
  for (const auto& [a, b] : edges) t.add_link(a, b, LinkOrigin::Random);
  for (std::uint32_t s = 0; s < num_servers; ++s) t.add_server(s % n);
  t.validate();
  return t;
}

Topology build_debruijn_like_fat_tree(std::uint32_t k) {
  if (k < 4 || k % 2 != 0)
    throw std::invalid_argument("debruijn: k must be even and >= 4");
  const std::uint32_t switch_budget = 5 * k * k / 4;
  std::uint32_t dimension = 1;
  while ((std::uint64_t{1} << (dimension + 1)) <= switch_budget) ++dimension;
  const std::uint32_t n = std::uint32_t{1} << dimension;
  const std::uint32_t servers = k * k * k / 4;
  const std::uint32_t per_switch = (servers + n - 1) / n;
  // Binary De Bruijn degree is at most 4; the budget must also cover the
  // round-robin server load (small k needs more than k ports for that).
  const std::uint32_t ports = std::max(k, 4 + per_switch);
  return build_debruijn(2, dimension, servers, ports);
}

}  // namespace flattree::topo
