#pragma once
// Two-stage random graph baseline (paper Section 3.1).
//
// "...two-stage random graph, which first forms random graphs in each Pod
//  with the same number of links as flat-tree, and takes the Pods as super
//  nodes to form another layer of random graph together with core switches."
//
// Stage 1: each pod's k switches form a random simple graph with the same
// number of intra-pod links as flat-tree (k^2/4, the edge-aggregation mesh
// size), and the pod's k^2/4 servers are spread uniformly over its switches.
// Stage 2: pods become super nodes with their k^2/4 leftover ports; together
// with the (k/2)^2 core switches (k ports each) they form a random graph.
// Super-level self-loops are forbidden; parallel super-links map to distinct
// switch pairs where possible. Every super-endpoint lands on a uniformly
// random switch of the pod that still has free ports.

#include <cstdint>

#include "topo/fat_tree.hpp"
#include "topo/topology.hpp"
#include "util/rng.hpp"

namespace flattree::topo {

/// Builds the two-stage random graph with fat-tree(k) equipment.
/// Switch ids use the fat-tree layout (pod edges, pod aggs, cores).
/// Retries internally until connected; throws after `max_attempts`.
Topology build_two_stage_random_graph(std::uint32_t k, util::Rng& rng,
                                      std::uint32_t max_attempts = 64);

}  // namespace flattree::topo
