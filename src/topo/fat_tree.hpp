#pragma once
// k-ary fat-tree builder [Al-Fares et al., SIGCOMM'08].
//
// The paper evaluates on fat-tree because it upper-bounds Clos performance
// (Section 3.1). A k-ary fat-tree has k pods, each with k/2 edge and k/2
// aggregation switches; (k/2)^2 core switches; k/2 servers per edge switch
// (k^3/4 total). All switches have k ports.
//
// Identifier layout (relied on by flat-tree conversion and by the locality
// workload placements):
//   * switches: pod 0 edges E0..E_{k/2-1}, pod 0 aggs A0..A_{k/2-1},
//     pod 1 ..., then cores C0..C_{(k/2)^2-1};
//   * servers: consecutive within an edge switch, edge switches consecutive
//     within a pod, pods consecutive — so consecutive server ids are
//     physically adjacent.
//   * core wiring: aggregation switch Ai of every pod connects to the h=k/2
//     cores C_{i*h} .. C_{i*h+h-1} (the paper's Figure 4a pattern).

#include <cstdint>

#include "topo/topology.hpp"

namespace flattree::topo {

/// Parameters of a (generalized) Clos pod, in the paper's Section 2.2
/// notation. Defaults derive everything from the fat-tree parameter k
/// (d = k/2, r = 1, h = k/2, servers_per_edge = k/2, pods = k, uniform
/// k-port switches); `make_generic` overrides the layout — including
/// *oversubscribed* designs (more servers per edge switch than uplinks),
/// the case the paper says flat-tree especially targets. Per-layer port
/// budgets may then differ (bigger edge switches, small cores).
struct ClosParams {
  std::uint32_t k = 4;  ///< fat-tree parameter (switch port count), even, >= 4

  std::uint32_t pods() const { return generic_ ? pods_ : k; }
  std::uint32_t d() const { return generic_ ? d_ : k / 2; }  ///< edge switches per pod
  std::uint32_t r() const { return generic_ ? r_ : 1; }      ///< edges per aggregation
  std::uint32_t aggs_per_pod() const { return d() / r(); }
  std::uint32_t h() const { return generic_ ? h_ : k / 2; }  ///< uplinks per aggregation
  std::uint32_t servers_per_edge() const { return generic_ ? spe_ : k / 2; }
  /// Core switches: one group of h/r per edge index (paper Section 2.3).
  std::uint32_t cores() const { return d() * (h() / r()); }
  std::uint32_t servers_per_pod() const { return d() * servers_per_edge(); }
  std::uint32_t total_servers() const { return pods() * servers_per_pod(); }
  std::uint32_t total_switches() const { return pods() * (d() + aggs_per_pod()) + cores(); }

  // Per-layer port budgets (uniform k for the fat-tree case).
  std::uint32_t edge_ports() const { return generic_ ? edge_ports_ : k; }
  std::uint32_t agg_ports() const { return generic_ ? agg_ports_ : k; }
  std::uint32_t core_ports() const { return generic_ ? core_ports_ : k; }

  bool is_generic() const { return generic_; }
  /// Edge oversubscription ratio: server capacity over uplink capacity.
  double oversubscription() const {
    return static_cast<double>(servers_per_edge()) /
           (static_cast<double>(h()) / static_cast<double>(r()));
  }

  /// Builds a generic (possibly oversubscribed) Clos layout. Validates:
  /// r | d, r | h, h/r >= 1, edge ports >= servers_per_edge + d/r,
  /// aggregation ports >= d + h, core ports >= pods, pods >= 2.
  /// Throws std::invalid_argument on violations.
  static ClosParams make_generic(std::uint32_t pods, std::uint32_t d, std::uint32_t r,
                                 std::uint32_t h, std::uint32_t servers_per_edge,
                                 std::uint32_t edge_ports, std::uint32_t agg_ports,
                                 std::uint32_t core_ports);

  /// Fat-tree layout for parameter k (equivalent to `{.k = k}`).
  static ClosParams fat_tree(std::uint32_t k);

 private:
  bool generic_ = false;
  std::uint32_t pods_ = 0, d_ = 0, r_ = 1, h_ = 0, spe_ = 0;
  std::uint32_t edge_ports_ = 0, agg_ports_ = 0, core_ports_ = 0;
};

/// A built Clos network (fat-tree or generic) with id-mapping helpers.
struct FatTree {
  ClosParams params;
  Topology topo;

  NodeId edge_switch(std::uint32_t pod, std::uint32_t j) const;
  NodeId agg_switch(std::uint32_t pod, std::uint32_t i) const;
  NodeId core_switch(std::uint32_t c) const;
  /// Server `s` (0-based) attached to edge switch j of pod p.
  ServerId server(std::uint32_t pod, std::uint32_t j, std::uint32_t s) const;
};

/// Builds the k-ary fat-tree. Throws std::invalid_argument unless k is even
/// and >= 4.
FatTree build_fat_tree(std::uint32_t k);

/// Builds any (possibly oversubscribed) Clos network described by `params`
/// with the same id layout and the paper's Figure 4a pod-core wiring
/// (aggregation A_i of every pod to cores [i*h, (i+1)*h)).
FatTree build_clos(const ClosParams& params);

}  // namespace flattree::topo
