#pragma once
// De Bruijn flat topology baseline ("A Flat and Scalable Data Center
// Network Topology Based on De Bruijn Graphs", PAPERS.md).
//
// A single-layer switch fabric whose wiring is the undirected De Bruijn
// graph B(symbols, dimension): switches are the symbols^dimension strings
// of length `dimension` over a `symbols`-letter alphabet, and switch x
// links to every left-shift successor (symbols*x + c) mod symbols^dimension.
// Unlike Jellyfish the wiring is *deterministic* — no RNG, no pairing
// retries — which makes it a useful fixed flat design for the conversion-
// plan search (src/design) to compare against: flat like a converted
// flat-tree, but with zero reconfiguration freedom.
//
// Shape notes: the undirected simple graph has degree <= 2*symbols
// (self-loops on the all-same-symbol strings are dropped, 2-cycles
// deduplicate), diameter exactly `dimension`, and it is connected for any
// symbols >= 2, so Topology::validate() holds by construction.

#include <cstdint>

#include "topo/topology.hpp"

namespace flattree::topo {

/// Builds the undirected De Bruijn fabric B(symbols, dimension) with
/// `num_servers` servers spread round-robin over the symbols^dimension
/// switches and a uniform per-switch port budget of `ports`. Links carry
/// LinkOrigin::Random (they replace a random-graph fabric in benches) and
/// unit capacity. Throws std::invalid_argument when symbols < 2,
/// dimension < 1, or the switch count exceeds 2^22, and
/// std::runtime_error (from Topology::validate) when any switch would
/// exceed its port budget; the result satisfies Topology::validate().
Topology build_debruijn(std::uint32_t symbols, std::uint32_t dimension,
                        std::uint32_t num_servers, std::uint32_t ports);

/// De Bruijn plant sized against fat-tree(k): binary alphabet, dimension
/// chosen as the largest n with 2^n switches within the fat-tree's
/// 5k^2/4 switch budget, hosting all k^3/4 servers round-robin (the
/// server-id space matches topo::build_fat_tree(k), so demand vectors
/// transfer unchanged). Equipment parity is *near* rather than exact —
/// 2^n <= 5k^2/4 switches, and the per-switch port budget is
/// max(k, 4 + ceil(servers/switches)) so small k still hosts its server
/// load — the deliberate, documented deviation of a fixed flat baseline.
/// Requires even k >= 4.
Topology build_debruijn_like_fat_tree(std::uint32_t k);

}  // namespace flattree::topo
