#include "topo/dot.hpp"

#include <map>
#include <sstream>

namespace flattree::topo {

namespace {

const char* kind_color(SwitchKind kind) {
  switch (kind) {
    case SwitchKind::Core: return "lightcoral";
    case SwitchKind::Aggregation: return "lightblue";
    case SwitchKind::Edge: return "lightgreen";
  }
  return "white";
}

const char* origin_style(LinkOrigin origin) {
  switch (origin) {
    case LinkOrigin::ClosEdgeAgg: return "solid";
    case LinkOrigin::PodCore: return "solid";
    case LinkOrigin::ConverterLocal: return "dashed";
    case LinkOrigin::InterPodSide: return "bold";
    case LinkOrigin::Random: return "dotted";
  }
  return "solid";
}

std::string node_name(const Topology& topo, NodeId v) {
  const SwitchInfo& info = topo.info(v);
  std::ostringstream os;
  switch (info.kind) {
    case SwitchKind::Core: os << "C" << info.index; break;
    case SwitchKind::Aggregation: os << "A" << info.pod << "_" << info.index; break;
    case SwitchKind::Edge: os << "E" << info.pod << "_" << info.index; break;
  }
  return os.str();
}

}  // namespace

std::string to_dot(const Topology& topo, const DotOptions& options) {
  std::ostringstream os;
  os << "graph flattree {\n  node [shape=box, style=filled];\n";

  // Group switches by pod for cluster rendering.
  std::map<std::int32_t, std::vector<NodeId>> pods;
  for (NodeId v = 0; v < topo.switch_count(); ++v) pods[topo.info(v).pod].push_back(v);

  auto emit_switch = [&](NodeId v, const std::string& indent) {
    os << indent << node_name(topo, v) << " [fillcolor=" << kind_color(topo.info(v).kind)
       << "];\n";
  };

  for (const auto& [pod, nodes] : pods) {
    if (options.cluster_pods && pod >= 0) {
      os << "  subgraph cluster_pod" << pod << " {\n    label=\"pod " << pod << "\";\n";
      for (NodeId v : nodes) emit_switch(v, "    ");
      os << "  }\n";
    } else {
      for (NodeId v : nodes) emit_switch(v, "  ");
    }
  }

  if (options.include_servers) {
    os << "  node [shape=circle, fillcolor=white, width=0.2, label=\"\"];\n";
    for (ServerId s = 0; s < topo.server_count(); ++s) {
      os << "  s" << s << ";\n";
      os << "  s" << s << " -- " << node_name(topo, topo.host(s)) << " [style=dotted];\n";
    }
  }

  for (graph::LinkId l = 0; l < topo.link_count(); ++l) {
    const graph::Link& link = topo.graph().link(l);
    os << "  " << node_name(topo, link.a) << " -- " << node_name(topo, link.b)
       << " [style=" << origin_style(topo.link_info(l).origin) << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace flattree::topo
