#include "topo/two_stage.hpp"

#include <stdexcept>

#include "graph/bfs.hpp"
#include "topo/random_graph.hpp"

namespace flattree::topo {

namespace {

Topology try_build(std::uint32_t k, util::Rng& rng) {
  ClosParams p;
  p.k = k;
  const std::uint32_t per_pod_switches = p.d() + p.aggs_per_pod();  // = k
  const std::uint32_t cores = p.cores();
  const std::uint32_t pods = p.pods();

  Topology topo;
  for (std::uint32_t pod = 0; pod < pods; ++pod) {
    for (std::uint32_t j = 0; j < p.d(); ++j)
      topo.add_switch(SwitchKind::Edge, static_cast<std::int32_t>(pod), j, k);
    for (std::uint32_t i = 0; i < p.aggs_per_pod(); ++i)
      topo.add_switch(SwitchKind::Aggregation, static_cast<std::int32_t>(pod), i, k);
  }
  for (std::uint32_t c = 0; c < cores; ++c) topo.add_switch(SwitchKind::Core, -1, c, k);

  auto pod_switch = [&](std::uint32_t pod, std::uint32_t s) -> NodeId {
    return pod * per_pod_switches + s;
  };
  auto core_switch = [&](std::uint32_t c) -> NodeId { return pods * per_pod_switches + c; };

  // Servers: uniform within each pod (round-robin over its k switches).
  for (std::uint32_t pod = 0; pod < pods; ++pod)
    for (std::uint32_t s = 0; s < p.servers_per_pod(); ++s)
      topo.add_server(pod_switch(pod, s % per_pod_switches));

  std::vector<std::uint32_t> free_ports(topo.switch_count());
  auto servers = topo.servers_per_switch();
  for (NodeId v = 0; v < topo.switch_count(); ++v) free_ports[v] = k - servers[v];

  // Stage 1: intra-pod random graph with k^2/4 links (flat-tree's count).
  const std::uint32_t intra_links = p.d() * p.aggs_per_pod();
  for (std::uint32_t pod = 0; pod < pods; ++pod) {
    // Random simple graph on k nodes with exactly `intra_links` links:
    // give each node 2*intra_links/k stubs (k^2/4 links over k nodes ->
    // k/2 stubs each, always integral for even k).
    std::vector<std::uint32_t> stubs(per_pod_switches, 2 * intra_links / per_pod_switches);
    auto pairs = random_simple_pairing(stubs, rng, 8);
    for (auto [a, b] : pairs) {
      NodeId u = pod_switch(pod, a), v = pod_switch(pod, b);
      topo.add_link(u, v, LinkOrigin::Random);
      --free_ports[u];
      --free_ports[v];
    }
  }

  // Stage 2: super-node random graph over pods + cores. Pods expose their
  // leftover ports (k^2/4 each); cores expose k each. Multi-links between
  // the same super pair are allowed; self-pairs are repaired by swapping.
  std::vector<std::uint32_t> super_stubs(pods + cores);
  for (std::uint32_t pod = 0; pod < pods; ++pod) {
    std::uint32_t total = 0;
    for (std::uint32_t s = 0; s < per_pod_switches; ++s)
      total += free_ports[pod_switch(pod, s)];
    super_stubs[pod] = total;
  }
  for (std::uint32_t c = 0; c < cores; ++c) super_stubs[pods + c] = k;

  std::vector<std::uint32_t> pool;
  for (std::uint32_t v = 0; v < super_stubs.size(); ++v)
    for (std::uint32_t s = 0; s < super_stubs[v]; ++s) pool.push_back(v);
  if (pool.size() % 2 != 0) pool.pop_back();
  rng.shuffle(pool);
  // Repair super-level self-pairs by swapping with random partners. A swap
  // can break an earlier pair, so sweep repeatedly until clean.
  bool clean = false;
  for (int pass = 0; pass < 200 && !clean; ++pass) {
    clean = true;
    for (std::size_t i = 0; i + 1 < pool.size(); i += 2) {
      if (pool[i] != pool[i + 1]) continue;
      clean = false;
      std::size_t j = rng.index(pool.size());
      std::swap(pool[i + 1], pool[j]);
    }
  }
  if (!clean) throw std::runtime_error("two-stage: could not repair super self-pairs");

  // Map super endpoints to concrete switches with free ports.
  auto pick_switch = [&](std::uint32_t super) -> NodeId {
    if (super >= pods) return core_switch(super - pods);
    // Uniform among the pod's free ports (weight by free port count).
    std::uint32_t total = 0;
    for (std::uint32_t s = 0; s < per_pod_switches; ++s)
      total += free_ports[pod_switch(super, s)];
    if (total == 0) throw std::runtime_error("two-stage: pod out of free ports");
    std::uint32_t pick = static_cast<std::uint32_t>(rng.below(total));
    for (std::uint32_t s = 0; s < per_pod_switches; ++s) {
      NodeId v = pod_switch(super, s);
      if (pick < free_ports[v]) return v;
      pick -= free_ports[v];
    }
    throw std::logic_error("two-stage: pick_switch fell through");
  };

  for (std::size_t i = 0; i + 1 < pool.size(); i += 2) {
    NodeId u = pick_switch(pool[i]);
    NodeId v = pick_switch(pool[i + 1]);
    topo.add_link(u, v, LinkOrigin::Random);
    --free_ports[u];
    --free_ports[v];
  }
  return topo;
}

}  // namespace

Topology build_two_stage_random_graph(std::uint32_t k, util::Rng& rng,
                                      std::uint32_t max_attempts) {
  if (k < 4 || k % 2 != 0)
    throw std::invalid_argument("build_two_stage_random_graph: k must be even and >= 4");
  for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    Topology topo = try_build(k, rng);
    if (graph::is_connected(topo.graph())) return topo;
  }
  throw std::runtime_error("build_two_stage_random_graph: failed to draw connected graph");
}

}  // namespace flattree::topo
