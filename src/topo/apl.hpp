#pragma once
// Server-pair average path length on a Topology (paper Figures 5 and 6).
//
// Server-to-server distance = switch-level hop distance between the host
// switches + 2 attachment links (2 when the servers share a switch).
// Converter switches are physical-layer and contribute no hops.

#include <cstdint>
#include <vector>

#include "graph/metrics.hpp"
#include "topo/topology.hpp"

namespace flattree::topo {

/// APL over all unordered server pairs of the topology.
graph::AplResult server_apl(const Topology& topo);

/// APL over unordered pairs within the given server subset; paths may use
/// the whole network (the paper's Figure 6 reading: pairs are *placed* in a
/// pod, routing is unrestricted).
graph::AplResult server_apl_subset(const Topology& topo,
                                   const std::vector<ServerId>& subset);

/// Combined APL over several disjoint groups (e.g. one group per pod):
/// pair-weighted mean of per-group APLs.
graph::AplResult server_apl_grouped(const Topology& topo,
                                    const std::vector<std::vector<ServerId>>& groups);

}  // namespace flattree::topo
