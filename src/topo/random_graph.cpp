#include "topo/random_graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "graph/bfs.hpp"

namespace flattree::topo {

namespace {

using Pair = std::pair<NodeId, NodeId>;

std::uint64_t key_of(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

/// One configuration-model draw followed by edge-swap repair.
/// Returns true on success (all edges simple).
bool try_pairing(const std::vector<std::uint32_t>& stubs, util::Rng& rng,
                 std::vector<Pair>& edges) {
  std::vector<NodeId> pool;
  for (NodeId v = 0; v < stubs.size(); ++v)
    for (std::uint32_t s = 0; s < stubs[v]; ++s) pool.push_back(v);
  if (pool.size() % 2 != 0) {
    // Leave one port idle on the highest-degree node (deterministic choice).
    auto it = std::max_element(stubs.begin(), stubs.end());
    NodeId victim = static_cast<NodeId>(it - stubs.begin());
    pool.erase(std::find(pool.begin(), pool.end(), victim));
  }
  rng.shuffle(pool);

  edges.clear();
  edges.reserve(pool.size() / 2);
  std::unordered_map<std::uint64_t, std::uint32_t> count;
  for (std::size_t i = 0; i + 1 < pool.size(); i += 2) {
    edges.emplace_back(pool[i], pool[i + 1]);
    ++count[key_of(pool[i], pool[i + 1])];
  }

  auto is_bad = [&](const Pair& e) {
    return e.first == e.second || count[key_of(e.first, e.second)] > 1;
  };

  // Edge-swap repair: exchange endpoints with a random partner edge until
  // no self-loops or duplicates remain.
  const std::size_t kRounds = 200;
  for (std::size_t round = 0; round < kRounds; ++round) {
    std::vector<std::size_t> bad;
    for (std::size_t i = 0; i < edges.size(); ++i)
      if (is_bad(edges[i])) bad.push_back(i);
    if (bad.empty()) return true;

    bool improved = false;
    for (std::size_t i : bad) {
      if (!is_bad(edges[i])) continue;  // fixed as a side effect earlier
      for (int attempt = 0; attempt < 32; ++attempt) {
        std::size_t j = rng.index(edges.size());
        if (j == i) continue;
        auto [a1, b1] = edges[i];
        auto [a2, b2] = edges[j];
        // Candidate swap: (a1,b2) and (a2,b1).
        if (a1 == b2 || a2 == b1) continue;
        std::uint64_t k_old1 = key_of(a1, b1), k_old2 = key_of(a2, b2);
        std::uint64_t k_new1 = key_of(a1, b2), k_new2 = key_of(a2, b1);
        // Simulate count updates.
        --count[k_old1];
        --count[k_old2];
        bool ok = count[k_new1] == 0 && count[k_new2] == 0 && k_new1 != k_new2;
        if (!ok) {
          ++count[k_old1];
          ++count[k_old2];
          continue;
        }
        ++count[k_new1];
        ++count[k_new2];
        edges[i] = {a1, b2};
        edges[j] = {a2, b1};
        improved = true;
        break;
      }
    }
    if (!improved) break;  // stuck; caller reshuffles
  }
  return false;
}

}  // namespace

std::vector<Pair> random_simple_pairing(const std::vector<std::uint32_t>& stubs,
                                        util::Rng& rng, std::uint32_t max_attempts) {
  std::vector<Pair> edges;
  for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt)
    if (try_pairing(stubs, rng, edges)) return edges;
  throw std::runtime_error("random_simple_pairing: failed to build a simple graph");
}

Topology build_random_graph(std::uint32_t num_switches, std::uint32_t ports,
                            std::uint32_t num_servers, util::Rng& rng,
                            std::uint32_t max_attempts) {
  if (num_switches == 0) throw std::invalid_argument("build_random_graph: no switches");
  for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    Topology topo;
    for (std::uint32_t v = 0; v < num_switches; ++v)
      topo.add_switch(SwitchKind::Edge, -1, v, ports);
    // Round-robin server spread: per-switch counts differ by at most one.
    for (std::uint32_t s = 0; s < num_servers; ++s) topo.add_server(s % num_switches);

    std::vector<std::uint32_t> stubs(num_switches);
    auto servers = topo.servers_per_switch();
    for (std::uint32_t v = 0; v < num_switches; ++v) {
      if (servers[v] > ports)
        throw std::invalid_argument("build_random_graph: more servers than ports");
      stubs[v] = ports - servers[v];
    }
    auto pairs = random_simple_pairing(stubs, rng, 1);
    for (auto [a, b] : pairs) topo.add_link(a, b, LinkOrigin::Random);
    if (graph::is_connected(topo.graph())) return topo;
  }
  throw std::runtime_error("build_random_graph: failed to draw a connected graph");
}

Topology build_jellyfish_like_fat_tree(std::uint32_t k, util::Rng& rng) {
  ClosParams p;
  p.k = k;
  if (k < 4 || k % 2 != 0)
    throw std::invalid_argument("build_jellyfish_like_fat_tree: k must be even and >= 4");
  const std::uint32_t switches = p.total_switches();
  const std::uint32_t servers = p.total_servers();
  for (std::uint32_t attempt = 0; attempt < 64; ++attempt) {
    Topology topo;
    // Preserve the equipment inventory labels (pure bookkeeping).
    for (std::uint32_t pod = 0; pod < p.pods(); ++pod) {
      for (std::uint32_t j = 0; j < p.d(); ++j)
        topo.add_switch(SwitchKind::Edge, static_cast<std::int32_t>(pod), j, k);
      for (std::uint32_t i = 0; i < p.aggs_per_pod(); ++i)
        topo.add_switch(SwitchKind::Aggregation, static_cast<std::int32_t>(pod), i, k);
    }
    for (std::uint32_t c = 0; c < p.cores(); ++c)
      topo.add_switch(SwitchKind::Core, -1, c, k);

    for (std::uint32_t s = 0; s < servers; ++s) topo.add_server(s % switches);

    std::vector<std::uint32_t> stubs(switches);
    auto per_switch = topo.servers_per_switch();
    for (std::uint32_t v = 0; v < switches; ++v) stubs[v] = k - per_switch[v];
    auto pairs = random_simple_pairing(stubs, rng, 4);
    for (auto [a, b] : pairs) topo.add_link(a, b, LinkOrigin::Random);
    if (graph::is_connected(topo.graph())) return topo;
  }
  throw std::runtime_error("build_jellyfish_like_fat_tree: failed to draw connected graph");
}

}  // namespace flattree::topo
