#pragma once
// Jellyfish-style random graph built from the same equipment as a fat-tree
// [Singla et al., NSDI'12], the paper's performance-optimal baseline.
//
// All 5k^2/4 switches (k^2 pod switches + k^2/4 cores) are treated as equal:
// the k^3/4 servers are spread round-robin (so per-switch server counts
// differ by at most one), and every remaining port joins a uniform random
// simple graph (no self-loops, no parallel links) built with the
// configuration model plus edge-swap repair.

#include <cstdint>

#include "topo/fat_tree.hpp"
#include "topo/topology.hpp"
#include "util/rng.hpp"

namespace flattree::topo {

/// Builds a random graph with exactly `num_switches` switches of
/// `ports` ports each and `num_servers` servers spread round-robin.
/// Remaining ports are fully consumed by random links when their total is
/// even; one port is left idle otherwise. Retries seeds internally until
/// the graph is simple and connected (throws after `max_attempts`).
Topology build_random_graph(std::uint32_t num_switches, std::uint32_t ports,
                            std::uint32_t num_servers, util::Rng& rng,
                            std::uint32_t max_attempts = 64);

/// Same equipment as fat-tree(k): 5k^2/4 switches with k ports, k^3/4
/// servers. Switch kinds/pod labels are preserved from the fat-tree
/// inventory for equipment accounting, but play no topological role.
Topology build_jellyfish_like_fat_tree(std::uint32_t k, util::Rng& rng);

/// Random regular-ish multiport wiring helper: connects `stubs[i]` free
/// ports of node i into a simple random graph (degree(i) == stubs[i] when
/// the stub sum is even and a simple graph exists; best effort repair
/// otherwise). Returns the added (a,b) pairs. Exposed for the two-stage
/// builder and for tests.
std::vector<std::pair<NodeId, NodeId>> random_simple_pairing(
    const std::vector<std::uint32_t>& stubs, util::Rng& rng,
    std::uint32_t max_attempts = 64);

}  // namespace flattree::topo
