#pragma once
// Data center topology model shared by all architectures.
//
// A Topology is a switch-level multigraph plus server attachments. Servers
// are not graph nodes: the paper's metrics (path length, max concurrent
// flow with relaxed server links) operate at switch level, with servers
// entering as per-switch weights / demand endpoints. Each switch carries a
// port budget; links and attached servers consume ports, and validate()
// checks the budget — the key physical-feasibility invariant for converted
// topologies.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace flattree::topo {

using graph::LinkId;
using graph::NodeId;
using ServerId = std::uint32_t;

/// Role a switch was manufactured for. Conversions never change the kind —
/// a converted random graph still reports its Clos equipment inventory.
enum class SwitchKind : std::uint8_t { Core, Aggregation, Edge };

/// How a link came to exist; used by wiring property tests and reports.
enum class LinkOrigin : std::uint8_t {
  ClosEdgeAgg,   ///< intra-pod edge-aggregation link (never rewired)
  PodCore,       ///< pod-to-core link (agg-core, edge-core, or core-server side)
  ConverterLocal,///< intra-pod link created by a converter configuration
  InterPodSide,  ///< side link between 6-port converters in adjacent pods
  Random,        ///< link of a random-graph baseline
};

const char* to_string(SwitchKind kind);
const char* to_string(LinkOrigin origin);

struct SwitchInfo {
  SwitchKind kind = SwitchKind::Edge;
  std::int32_t pod = -1;      ///< -1 for core switches
  std::uint32_t index = 0;    ///< index within (kind, pod)
  std::uint32_t ports = 0;    ///< physical port budget
};

struct LinkInfo {
  LinkOrigin origin = LinkOrigin::Random;
};

class Topology {
 public:
  // -- construction -------------------------------------------------------
  NodeId add_switch(SwitchKind kind, std::int32_t pod, std::uint32_t index,
                    std::uint32_t ports);
  LinkId add_link(NodeId a, NodeId b, LinkOrigin origin, double capacity = 1.0);
  ServerId add_server(NodeId host);
  /// Reattaches an existing server (conversions relocate servers).
  void move_server(ServerId server, NodeId new_host);

  // -- topology views ------------------------------------------------------
  const graph::Graph& graph() const { return graph_; }
  std::size_t switch_count() const { return graph_.node_count(); }
  std::size_t link_count() const { return graph_.link_count(); }
  std::size_t server_count() const { return server_host_.size(); }

  const SwitchInfo& info(NodeId node) const { return switch_info_.at(node); }
  const LinkInfo& link_info(LinkId link) const { return link_info_.at(link); }
  NodeId host(ServerId server) const { return server_host_.at(server); }
  const std::vector<NodeId>& server_hosts() const { return server_host_; }

  /// Servers attached to each switch (the APL weight vector).
  std::vector<std::uint32_t> servers_per_switch() const;
  /// Server ids attached to `node`, in id order.
  std::vector<ServerId> servers_on(NodeId node) const;

  /// Ports in use at `node` = link endpoints + attached servers.
  std::size_t used_ports(NodeId node) const;

  /// Switches of a given kind (ids in creation order).
  std::vector<NodeId> switches_of(SwitchKind kind) const;
  /// Switches belonging to pod `pod` (any kind).
  std::vector<NodeId> switches_in_pod(std::int32_t pod) const;

  /// Count of switches per kind: [core, aggregation, edge].
  std::array<std::size_t, 3> kind_counts() const;

  // -- invariants ----------------------------------------------------------
  /// Throws std::runtime_error (with a description) if any switch exceeds
  /// its port budget or the switch graph is disconnected.
  void validate() const;

  /// Human-readable one-line inventory, e.g. for example programs.
  std::string summary() const;

 private:
  graph::Graph graph_;
  std::vector<SwitchInfo> switch_info_;
  std::vector<LinkInfo> link_info_;
  std::vector<NodeId> server_host_;
};

}  // namespace flattree::topo
