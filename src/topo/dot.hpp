#pragma once
// Graphviz DOT export for topologies — visual inspection of conversions
// (render with `dot -Tsvg` or `neato`).

#include <string>

#include "topo/topology.hpp"

namespace flattree::topo {

struct DotOptions {
  bool include_servers = false;  ///< emit server nodes (large at scale)
  bool cluster_pods = true;      ///< wrap each pod in a DOT subgraph cluster
};

/// Renders the switch-level topology as an undirected DOT graph. Switch
/// nodes are labelled by kind/pod/index and colored by kind; link styles
/// follow their LinkOrigin.
std::string to_dot(const Topology& topo, const DotOptions& options = {});

}  // namespace flattree::topo
