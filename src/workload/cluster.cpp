#include "workload/cluster.hpp"

#include <algorithm>
#include <stdexcept>

namespace flattree::workload {

const char* to_string(Placement placement) {
  switch (placement) {
    case Placement::Locality: return "locality";
    case Placement::WeakLocality: return "weak-locality";
    case Placement::NoLocality: return "no-locality";
  }
  return "?";
}

std::vector<Cluster> make_clusters_subset(const std::vector<ServerId>& eligible,
                                          std::uint32_t size, Placement placement,
                                          std::uint32_t servers_per_pod, util::Rng& rng) {
  if (size == 0) throw std::invalid_argument("make_clusters: zero cluster size");
  if (servers_per_pod == 0)
    throw std::invalid_argument("make_clusters: zero servers per pod");
  const std::size_t cluster_count = eligible.size() / size;
  std::vector<Cluster> clusters;
  clusters.reserve(cluster_count);

  switch (placement) {
    case Placement::Locality: {
      for (std::size_t c = 0; c < cluster_count; ++c) {
        Cluster cl;
        cl.servers.assign(eligible.begin() + static_cast<long>(c * size),
                          eligible.begin() + static_cast<long>((c + 1) * size));
        clusters.push_back(std::move(cl));
      }
      break;
    }
    case Placement::NoLocality: {
      std::vector<ServerId> pool = eligible;
      rng.shuffle(pool);
      for (std::size_t c = 0; c < cluster_count; ++c) {
        Cluster cl;
        cl.servers.assign(pool.begin() + static_cast<long>(c * size),
                          pool.begin() + static_cast<long>((c + 1) * size));
        std::sort(cl.servers.begin(), cl.servers.end());
        clusters.push_back(std::move(cl));
      }
      break;
    }
    case Placement::WeakLocality: {
      // Free servers per pod, shuffled within each pod.
      std::vector<std::vector<ServerId>> pod_free;
      for (ServerId s : eligible) {
        std::size_t pod = s / servers_per_pod;
        if (pod >= pod_free.size()) pod_free.resize(pod + 1);
        pod_free[pod].push_back(s);
      }
      std::vector<std::size_t> pods_with_free;
      for (std::size_t p = 0; p < pod_free.size(); ++p) {
        rng.shuffle(pod_free[p]);
        if (!pod_free[p].empty()) pods_with_free.push_back(p);
      }
      for (std::size_t c = 0; c < cluster_count; ++c) {
        Cluster cl;
        std::uint32_t need = size;
        while (need > 0) {
          if (pods_with_free.empty())
            throw std::logic_error("make_clusters: ran out of servers");
          // Prefer a random pod that can hold the whole remainder; fall
          // back to any pod with free servers (the cluster then spills).
          std::size_t pick_at = rng.index(pods_with_free.size());
          for (std::size_t probe = 0; probe < pods_with_free.size(); ++probe) {
            std::size_t idx = (pick_at + probe) % pods_with_free.size();
            if (pod_free[pods_with_free[idx]].size() >= need) {
              pick_at = idx;
              break;
            }
          }
          auto& free = pod_free[pods_with_free[pick_at]];
          std::uint32_t take = static_cast<std::uint32_t>(
              std::min<std::size_t>(need, free.size()));
          for (std::uint32_t i = 0; i < take; ++i) {
            cl.servers.push_back(free.back());
            free.pop_back();
          }
          need -= take;
          if (free.empty())
            pods_with_free.erase(pods_with_free.begin() + static_cast<long>(pick_at));
        }
        std::sort(cl.servers.begin(), cl.servers.end());
        clusters.push_back(std::move(cl));
      }
      break;
    }
  }
  return clusters;
}

std::vector<Cluster> make_clusters(std::uint32_t total_servers, std::uint32_t size,
                                   Placement placement, std::uint32_t servers_per_pod,
                                   util::Rng& rng) {
  std::vector<ServerId> all(total_servers);
  for (std::uint32_t s = 0; s < total_servers; ++s) all[s] = s;
  return make_clusters_subset(all, size, placement, servers_per_pod, rng);
}

}  // namespace flattree::workload
