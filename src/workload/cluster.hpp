#pragma once
// Service clusters and their placement (paper Section 3.1/3.3).
//
// Measurement studies cited by the paper find two pervasive patterns:
// broadcast/incast between a hot-spot server and a large cluster
// (simulated as 1000-server clusters), and all-to-all within small
// clusters (20 servers). Each server joins exactly one cluster; leftover
// servers (total % size) stay idle.
//
// Placement policies:
//   Locality     clusters packed over consecutive server ids (fat-tree id
//                order = physical adjacency)
//   WeakLocality clusters packed randomly within pods while free servers
//                remain — the paper's worst-case model of resource
//                fragmentation (a cluster spills to another random pod only
//                when its pod runs out)
//   NoLocality   servers drawn uniformly from the whole network

#include <cstdint>
#include <vector>

#include "topo/topology.hpp"
#include "util/rng.hpp"

namespace flattree::workload {

using topo::ServerId;

struct Cluster {
  std::vector<ServerId> servers;
};

enum class Placement : std::uint8_t { Locality, WeakLocality, NoLocality };

const char* to_string(Placement placement);

/// Partitions servers [0, total_servers) into floor(total/size) clusters of
/// exactly `size` servers under the given placement. `servers_per_pod`
/// defines pod boundaries for WeakLocality (use the builder's layout).
std::vector<Cluster> make_clusters(std::uint32_t total_servers, std::uint32_t size,
                                   Placement placement, std::uint32_t servers_per_pod,
                                   util::Rng& rng);

/// Restriction of make_clusters to an arbitrary server subset (hybrid-mode
/// zones): only `eligible` servers are clustered; WeakLocality pods are
/// still derived from `servers_per_pod`.
std::vector<Cluster> make_clusters_subset(const std::vector<ServerId>& eligible,
                                          std::uint32_t size, Placement placement,
                                          std::uint32_t servers_per_pod, util::Rng& rng);

}  // namespace flattree::workload
