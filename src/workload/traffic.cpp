#include "workload/traffic.hpp"

#include <stdexcept>

namespace flattree::workload {

const char* to_string(Pattern pattern) {
  switch (pattern) {
    case Pattern::Broadcast: return "broadcast";
    case Pattern::Incast: return "incast";
    case Pattern::AllToAll: return "all-to-all";
  }
  return "?";
}

std::vector<ServerDemand> broadcast_traffic(const Cluster& cluster, util::Rng& rng) {
  if (cluster.servers.size() < 2)
    throw std::invalid_argument("broadcast_traffic: cluster too small");
  ServerId hot = cluster.servers[rng.index(cluster.servers.size())];
  std::vector<ServerDemand> out;
  out.reserve(cluster.servers.size() - 1);
  for (ServerId s : cluster.servers)
    if (s != hot) out.push_back({hot, s, 1.0});
  return out;
}

std::vector<ServerDemand> incast_traffic(const Cluster& cluster, util::Rng& rng) {
  if (cluster.servers.size() < 2)
    throw std::invalid_argument("incast_traffic: cluster too small");
  ServerId hot = cluster.servers[rng.index(cluster.servers.size())];
  std::vector<ServerDemand> out;
  out.reserve(cluster.servers.size() - 1);
  for (ServerId s : cluster.servers)
    if (s != hot) out.push_back({s, hot, 1.0});
  return out;
}

std::vector<ServerDemand> all_to_all_traffic(const Cluster& cluster) {
  std::vector<ServerDemand> out;
  out.reserve(cluster.servers.size() * (cluster.servers.size() - 1));
  for (ServerId a : cluster.servers)
    for (ServerId b : cluster.servers)
      if (a != b) out.push_back({a, b, 1.0});
  return out;
}

std::vector<ServerDemand> cluster_traffic(const std::vector<Cluster>& clusters,
                                          Pattern pattern, util::Rng& rng) {
  std::vector<ServerDemand> out;
  for (const Cluster& cluster : clusters) {
    std::vector<ServerDemand> part;
    switch (pattern) {
      case Pattern::Broadcast: part = broadcast_traffic(cluster, rng); break;
      case Pattern::Incast: part = incast_traffic(cluster, rng); break;
      case Pattern::AllToAll: part = all_to_all_traffic(cluster); break;
    }
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

std::vector<ServerDemand> permutation_traffic(std::uint32_t total_servers, util::Rng& rng) {
  if (total_servers < 2)
    throw std::invalid_argument("permutation_traffic: need at least two servers");
  std::vector<ServerId> perm(total_servers);
  for (std::uint32_t s = 0; s < total_servers; ++s) perm[s] = s;
  // Re-draw until no fixed points (fast for any realistic size); bounded
  // fallback rotates the identity if astronomically unlucky.
  for (int attempt = 0; attempt < 64; ++attempt) {
    rng.shuffle(perm);
    bool fixed = false;
    for (std::uint32_t s = 0; s < total_servers; ++s)
      if (perm[s] == s) {
        fixed = true;
        break;
      }
    if (!fixed) break;
    if (attempt == 63)
      for (std::uint32_t s = 0; s < total_servers; ++s) perm[s] = (s + 1) % total_servers;
  }
  std::vector<ServerDemand> out;
  out.reserve(total_servers);
  for (std::uint32_t s = 0; s < total_servers; ++s) out.push_back({s, perm[s], 1.0});
  return out;
}

std::vector<ServerDemand> incast_pattern(std::uint32_t total_servers,
                                         std::uint32_t sources, std::uint64_t seed) {
  if (total_servers < 2)
    throw std::invalid_argument("incast_pattern: need at least two servers");
  if (sources == 0 || sources >= total_servers)
    throw std::invalid_argument("incast_pattern: need 1 <= sources < total_servers");
  util::Rng sink_rng = util::Rng::substream(seed, 0);
  ServerId sink = static_cast<ServerId>(sink_rng.index(total_servers));
  std::vector<ServerId> candidates;
  candidates.reserve(total_servers - 1);
  for (std::uint32_t s = 0; s < total_servers; ++s)
    if (s != sink) candidates.push_back(s);
  util::Rng pick_rng = util::Rng::substream(seed, 1);
  pick_rng.shuffle(candidates);
  std::vector<ServerDemand> out;
  out.reserve(sources);
  for (std::uint32_t i = 0; i < sources; ++i) out.push_back({candidates[i], sink, 1.0});
  return out;
}

}  // namespace flattree::workload
