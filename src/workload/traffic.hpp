#pragma once
// Traffic pattern generation: turns clusters into server-level demands
// (paper Section 3.3) ready for aggregation into MCF commodities.

#include <cstdint>
#include <vector>

#include "mcf/commodity.hpp"
#include "workload/cluster.hpp"

namespace flattree::workload {

using mcf::ServerDemand;

/// Broadcast: one random member is the source of a unit demand to every
/// other member.
std::vector<ServerDemand> broadcast_traffic(const Cluster& cluster, util::Rng& rng);

/// Incast: one random member is the destination of a unit demand from
/// every other member.
std::vector<ServerDemand> incast_traffic(const Cluster& cluster, util::Rng& rng);

/// All-to-all: a unit demand between every ordered member pair.
std::vector<ServerDemand> all_to_all_traffic(const Cluster& cluster);

/// Applies `pattern` to every cluster and concatenates the demands.
enum class Pattern : std::uint8_t { Broadcast, Incast, AllToAll };
const char* to_string(Pattern pattern);
std::vector<ServerDemand> cluster_traffic(const std::vector<Cluster>& clusters,
                                          Pattern pattern, util::Rng& rng);

/// Random permutation traffic over [0, total): each server sends one unit
/// to a distinct random server (derangement-ish; no self-pairs). Used by
/// the flow-level simulator benches.
std::vector<ServerDemand> permutation_traffic(std::uint32_t total_servers, util::Rng& rng);

/// Fabric-wide incast over [0, total): `sources` distinct random servers
/// each send one unit to a single random sink (never a self-pair). Pure
/// function of (total_servers, sources, seed) — sink and source choices
/// come from Rng::substream(seed, ...), so the pattern is identical at any
/// thread count or call site. Requires 1 <= sources < total_servers.
/// Used by bench_congestion for the many-to-one congestion workload.
std::vector<ServerDemand> incast_pattern(std::uint32_t total_servers,
                                         std::uint32_t sources, std::uint64_t seed);

}  // namespace flattree::workload
