#pragma once
// Fixed-size thread pool with a chunked task queue ("work-stealing-lite").
//
// One pool = one fixed worker set. A job is a count of independent chunks;
// workers (plus the calling thread, which participates) claim chunk indices
// from a shared atomic cursor until the queue drains. There is no task
// graph and no stealing between per-worker deques — the shared cursor gives
// the same load-balancing effect for the embarrassingly parallel loops this
// library exists for (per-source BFS, per-commodity shortest paths) at a
// fraction of the complexity.
//
// Determinism contract: the pool itself never reorders *results* — callers
// that want deterministic output write per-chunk results into preallocated
// slots (see parallel_for.hpp) and reduce them in chunk order afterwards.
// Chunk *execution* order is unspecified.
//
// Exceptions: the first exception thrown by any chunk aborts the job
// (remaining chunks are skipped) and is rethrown from run() on the calling
// thread. Nested run() calls from inside a chunk are rejected with
// std::logic_error; the higher-level parallel_for helpers degrade to
// sequential execution instead, so composed parallel code still works.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace flattree::exec {

/// Number of threads the hardware offers (>= 1).
unsigned hardware_threads();

/// Default worker count: the FLATTREE_THREADS environment variable when set
/// to a positive integer, otherwise hardware_threads().
unsigned default_threads();

class ThreadPool {
 public:
  /// Creates `threads` total execution threads (the caller of run() counts
  /// as one, so `threads - 1` workers are spawned). `threads == 0` means
  /// default_threads(). With `threads == 1` the pool is a pure sequential
  /// fallback: run() executes chunks inline in index order.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution threads (workers + participating caller).
  unsigned threads() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Executes fn(chunk) for every chunk in [0, chunks), blocking until all
  /// chunks finish. Rethrows the first chunk exception. Throws
  /// std::logic_error when called from inside any pool task on this thread.
  void run(std::size_t chunks, const std::function<void(std::size_t)>& fn);

  /// True while the current thread is executing a pool chunk (of any pool).
  static bool in_task();

 private:
  void worker_loop();
  void work(const std::function<void(std::size_t)>& fn);

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable job_cv_;   ///< wakes workers on a new job / stop
  std::condition_variable done_cv_;  ///< wakes the caller when a job drains
  const std::function<void(std::size_t)>* job_ = nullptr;  // valid while active_ > 0
  std::size_t job_id_ = 0;     ///< generation counter workers wait on
  std::size_t chunks_ = 0;     ///< chunk count of the current job
  unsigned active_ = 0;        ///< workers still inside the current job
  bool stop_ = false;
  std::exception_ptr error_;   ///< first chunk exception of the current job

  std::atomic<std::size_t> cursor_{0};  ///< next unclaimed chunk
  std::atomic<bool> abort_{false};      ///< set on first chunk exception
};

}  // namespace flattree::exec
