#pragma once
// Deterministic parallel loops over index ranges.
//
// The chunking of [0, n) depends ONLY on n and the grain (never on the
// thread count), and reductions combine per-chunk partials in ascending
// chunk order on the calling thread. Floating-point accumulation therefore
// produces bit-identical results at any thread count — the property every
// figure bench relies on for its `--threads 1` vs `--threads 8`
// byte-identical output guarantee.
//
// All helpers degrade gracefully:
//   * pool.threads() == 1  -> inline sequential execution (same chunk order)
//   * called from inside a pool task (nested parallelism) -> sequential,
//     because ThreadPool::run rejects nesting.
//
// Randomized chunk bodies should derive their RNG from the chunk index via
// util::Rng::substream(seed, chunk) so the stream assignment is also
// independent of the thread count.

#include <cstddef>
#include <utility>
#include <vector>

#include "exec/thread_pool.hpp"

namespace flattree::exec {

/// Half-open index range of one chunk.
struct Range {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Number of grain-sized chunks covering [0, n). grain == 0 is treated as 1.
inline std::size_t chunk_count(std::size_t n, std::size_t grain) {
  if (grain == 0) grain = 1;
  return (n + grain - 1) / grain;
}

/// The c-th grain-sized chunk of [0, n).
inline Range chunk_range(std::size_t n, std::size_t grain, std::size_t c) {
  if (grain == 0) grain = 1;
  std::size_t begin = c * grain;
  std::size_t end = begin + grain < n ? begin + grain : n;
  return {begin, end};
}

/// Runs body(begin, end, chunk) for every grain-sized chunk of [0, n).
/// Falls back to sequential in-order execution when nested inside a task.
template <typename Body>
void parallel_for_chunked(ThreadPool& pool, std::size_t n, std::size_t grain,
                          Body&& body) {
  const std::size_t chunks = chunk_count(n, grain);
  if (chunks == 0) return;
  if (ThreadPool::in_task()) {
    for (std::size_t c = 0; c < chunks; ++c) {
      Range r = chunk_range(n, grain, c);
      body(r.begin, r.end, c);
    }
    return;
  }
  pool.run(chunks, [&](std::size_t c) {
    Range r = chunk_range(n, grain, c);
    body(r.begin, r.end, c);
  });
}

/// Runs body(i) for every i in [0, n), grain indices per task.
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t n, Body&& body, std::size_t grain = 1) {
  parallel_for_chunked(pool, n, grain,
                       [&](std::size_t begin, std::size_t end, std::size_t) {
                         for (std::size_t i = begin; i < end; ++i) body(i);
                       });
}

/// Ordered deterministic reduction: partials[c] = map(begin, end, c) per
/// chunk (computed in parallel), then folded left-to-right in chunk order
/// with combine(acc, partial) on the calling thread. The result is
/// independent of the thread count and of chunk execution order.
template <typename T, typename Map, typename Combine>
T parallel_reduce(ThreadPool& pool, std::size_t n, std::size_t grain, T identity,
                  Map&& map, Combine&& combine) {
  const std::size_t chunks = chunk_count(n, grain);
  if (chunks == 0) return identity;
  std::vector<T> partials(chunks, identity);
  parallel_for_chunked(pool, n, grain,
                       [&](std::size_t begin, std::size_t end, std::size_t c) {
                         partials[c] = map(begin, end, c);
                       });
  T acc = std::move(identity);
  for (std::size_t c = 0; c < chunks; ++c) acc = combine(std::move(acc), std::move(partials[c]));
  return acc;
}

/// Shared process-wide pool, created on first use with default_threads().
ThreadPool& global_pool();

/// Replaces the global pool with one of `threads` threads (0 = default).
/// Call from a single thread before parallel work starts (benches do this
/// right after flag parsing); not safe concurrently with global_pool() use.
void set_global_threads(unsigned threads);

/// Convenience overloads on the global pool.
template <typename Body>
void parallel_for(std::size_t n, Body&& body, std::size_t grain = 1) {
  parallel_for(global_pool(), n, std::forward<Body>(body), grain);
}

template <typename Body>
void parallel_for_chunked(std::size_t n, std::size_t grain, Body&& body) {
  parallel_for_chunked(global_pool(), n, grain, std::forward<Body>(body));
}

template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t n, std::size_t grain, T identity, Map&& map,
                  Combine&& combine) {
  return parallel_reduce(global_pool(), n, grain, std::move(identity),
                         std::forward<Map>(map), std::forward<Combine>(combine));
}

}  // namespace flattree::exec
