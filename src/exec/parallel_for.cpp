#include "exec/parallel_for.hpp"

#include <memory>
#include <mutex>

namespace flattree::exec {

namespace {
std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;
}  // namespace

ThreadPool& global_pool() {
  std::lock_guard lock(g_pool_mutex);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>();
  return *g_pool;
}

void set_global_threads(unsigned threads) {
  std::lock_guard lock(g_pool_mutex);
  if (g_pool && g_pool->threads() == (threads == 0 ? default_threads() : threads)) return;
  g_pool = std::make_unique<ThreadPool>(threads);
}

}  // namespace flattree::exec
