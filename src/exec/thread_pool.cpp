#include "exec/thread_pool.hpp"

#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace flattree::exec {

namespace {

obs::Counter c_jobs("exec.pool.jobs");
obs::Gauge g_threads("exec.pool.threads");
obs::Counter c_chunks("exec.pool.chunks");
obs::Counter c_busy_ns("exec.pool.busy_ns");
obs::Histogram h_worker_busy("exec.pool.worker_busy_ms",
                             obs::Histogram::exponential_bounds(0.01, 4.0, 12));

std::uint64_t busy_clock_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

thread_local bool t_in_task = false;

/// RAII marker for "this thread is executing pool chunks".
struct TaskScope {
  TaskScope() { t_in_task = true; }
  ~TaskScope() { t_in_task = false; }
};

}  // namespace

unsigned hardware_threads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

unsigned default_threads() {
  if (const char* env = std::getenv("FLATTREE_THREADS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) return static_cast<unsigned>(v);
  }
  return hardware_threads();
}

bool ThreadPool::in_task() { return t_in_task; }

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = default_threads();
  workers_.reserve(threads - 1);
  for (unsigned i = 0; i + 1 < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::work(const std::function<void(std::size_t)>& fn) {
  TaskScope scope;
  // Observability: count chunks executed by this thread and the time spent
  // claiming+executing them ("busy", as opposed to waiting for a job), then
  // merge this thread's metric shard so a snapshot taken after run()
  // returns already sees everything. All of it is skipped when disabled.
  const bool observe = obs::enabled();
  const std::uint64_t t0 = observe ? busy_clock_ns() : 0;
  std::uint64_t executed = 0;
  for (;;) {
    std::size_t c = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (c >= chunks_ || abort_.load(std::memory_order_relaxed)) break;
    try {
      fn(c);
      ++executed;
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!error_) error_ = std::current_exception();
      abort_.store(true, std::memory_order_relaxed);
    }
  }
  if (observe) {
    std::uint64_t busy = busy_clock_ns() - t0;
    c_chunks.add(executed);
    c_busy_ns.add(busy);
    h_worker_busy.observe(static_cast<double>(busy) / 1e6);
    obs::flush_thread_metrics();
  }
}

void ThreadPool::worker_loop() {
  std::size_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn;
    {
      std::unique_lock lock(mutex_);
      job_cv_.wait(lock, [&] { return stop_ || job_id_ != seen; });
      if (stop_) return;
      seen = job_id_;
      fn = job_;
    }
    work(*fn);
    {
      std::lock_guard lock(mutex_);
      if (--active_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::run(std::size_t chunks, const std::function<void(std::size_t)>& fn) {
  if (t_in_task)
    throw std::logic_error(
        "ThreadPool::run: nested parallel call from inside a pool task "
        "(use exec::parallel_for, which falls back to sequential)");
  if (chunks == 0) return;
  OBS_SPAN("exec.run");
  c_jobs.inc();
  g_threads.set(threads());
  if (workers_.empty() || chunks == 1) {
    // Sequential fallback: same chunk order as the deterministic reduction,
    // no synchronization. Exceptions propagate directly.
    const bool observe = obs::enabled();
    const std::uint64_t t0 = observe ? busy_clock_ns() : 0;
    TaskScope scope;
    for (std::size_t c = 0; c < chunks; ++c) fn(c);
    if (observe) {
      std::uint64_t busy = busy_clock_ns() - t0;
      c_chunks.add(chunks);
      c_busy_ns.add(busy);
      h_worker_busy.observe(static_cast<double>(busy) / 1e6);
    }
    return;
  }
  {
    std::lock_guard lock(mutex_);
    job_ = &fn;
    chunks_ = chunks;
    cursor_.store(0, std::memory_order_relaxed);
    abort_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    active_ = static_cast<unsigned>(workers_.size());
    ++job_id_;
  }
  job_cv_.notify_all();
  work(fn);  // the caller is one of the execution threads
  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [&] { return active_ == 0; });
  job_ = nullptr;
  if (error_) std::rethrow_exception(error_);
}

}  // namespace flattree::exec
