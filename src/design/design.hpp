#pragma once
// Umbrella header for the conversion-plan design search (src/design).
//
//   design::Candidate          zone layout + per-zone mode, canonical text codec
//   design::WorkloadMix        declared traffic mix, affinity-placed demands
//   design::Evaluator          warm incremental scorer (DynamicApsp + McfWarmCache)
//   design::search             deterministic annealing over the move set
//
// See docs/design_search.md (mirrored as DESIGN.md section 13) for the
// objective definition, the move set, the annealing schedule, the
// determinism contract, and the certification story.

#include "design/candidate.hpp"
#include "design/objective.hpp"
#include "design/search.hpp"
