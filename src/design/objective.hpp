#pragma once
// Workload-mix objective for the conversion-plan search.
//
// A WorkloadMix declares the traffic the operator expects: a weighted
// list of components (broadcast, incast, all-to-all, permutation, skewed
// ML-training rings), each with a zone *affinity* — the conversion mode
// whose zone the controller would place it into (paper Section 3.4:
// large clusters into the global-random zone, small all-to-all into the
// local-random zone). Scoring a Candidate realizes that placement with
// *zone priority*: each component's cluster members are drawn from the
// servers homed in pods of the matching mode first, spilling into a
// shuffled draw from the rest of the fabric when the zone is too small.
// The declared workload never shrinks with the layout — cluster count
// and sizes are fixed by the mix, only membership moves — so objectives
// are comparable across candidates (a search cannot "win" by starving a
// component of eligible servers). All components are concatenated into
// one demand vector and the objective is the certified
// max-concurrent-flow lower bound of the joint instance — the guaranteed
// fraction of the declared mix every flow can ship simultaneously.
// Higher is better.
//
// Demand generation is a pure function of (mix, candidate, plant): every
// random choice comes from Rng::substream(mix.seed, component index), so
// the same mix scores identically at any thread count, call site, or
// evaluation order — the property the search's replayability rests on.
//
// Two scoring paths share the demand generator: Evaluator keeps an
// inc::DynamicApsp + inc::McfWarmCache pair alive across candidates (the
// incremental path the annealer drives), while score_cold_certified
// rebuilds everything from scratch and runs the full check::validate +
// check::certify battery (the path winners must survive before being
// reported).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "core/flat_tree.hpp"
#include "design/candidate.hpp"
#include "inc/apl.hpp"
#include "inc/mcf_warm.hpp"
#include "mcf/commodity.hpp"
#include "workload/cluster.hpp"
#include "workload/traffic.hpp"

namespace flattree::design {

/// Traffic shape of one mix component (paper Section 3.3 patterns plus
/// the permutation and skewed ML-training rings from the bench suite).
enum class PatternKind : std::uint8_t {
  Broadcast,   ///< one member sources a unit demand to every other member
  Incast,      ///< one member sinks a unit demand from every other member
  AllToAll,    ///< unit demand between every ordered member pair
  Permutation, ///< random cyclic permutation over the eligible servers
  MlTraining,  ///< per-cluster all-reduce rings, one hot cluster skewed
};

/// Token form of a PatternKind ("broadcast", "incast", "all-to-all",
/// "permutation", "ml-training").
const char* to_string(PatternKind kind);

/// Inverse of to_string(PatternKind); throws std::runtime_error on an
/// unknown token.
PatternKind parse_pattern_kind(const std::string& token);

/// Zone affinity: which conversion mode's zone a component's clusters
/// are placed into (zone-priority, spilling into the rest of the fabric
/// when the zone is too small — see the file header). Any draws from the
/// whole fabric. Permutation components ignore affinity entirely (the
/// cycle always spans every server).
enum class Affinity : std::uint8_t { Global, Local, Clos, Any };

/// Token form of an Affinity ("global", "local", "clos", "any").
const char* to_string(Affinity affinity);

/// Inverse of to_string(Affinity); throws std::runtime_error on an
/// unknown token.
Affinity parse_affinity(const std::string& token);

/// One weighted component of the declared workload mix.
struct Component {
  PatternKind kind = PatternKind::AllToAll;
  Affinity affinity = Affinity::Any;
  std::uint32_t cluster = 16;  ///< cluster size (Permutation ignores it)
  /// Clusters to place; 0 = as many as fit the fabric. Fixed per mix so
  /// the demand count is layout-independent (Permutation ignores it).
  std::uint32_t count = 0;
  workload::Placement placement = workload::Placement::NoLocality;
  double weight = 1.0;  ///< demand scale relative to the other components
  double skew = 4.0;    ///< MlTraining hot-cluster multiplier (others ignore)
};

/// The declared workload mix a design search optimizes for.
struct WorkloadMix {
  std::vector<Component> components;
  std::uint64_t seed = 1;  ///< substream base for every random choice
  double epsilon = 0.2;    ///< FPTAS accuracy for the throughput solves

  /// The bench/svc default mix: a pod-spanning broadcast bound for the
  /// global zone, small all-to-all bound for the local zone, and a
  /// fabric-wide skewed ML-training component — the mixed workload of
  /// paper Section 3.4 that a hybrid layout should beat any uniform
  /// mode on.
  static WorkloadMix defaults();
};

/// Mix demands for a candidate layout on a flat-tree plant: per-component
/// affinity placement as described in the file header. Pure function of
/// its arguments.
std::vector<mcf::ServerDemand> mix_demands(const core::FlatTreeNetwork& net,
                                           const Candidate& candidate,
                                           const WorkloadMix& mix);

/// Mix demands for a fixed flat topology (e.g. the De Bruijn baseline):
/// every component draws from all `total_servers` servers (affinities
/// have no zones to bind to). `servers_per_pod` supplies the pod
/// granularity WeakLocality placement clusters against — pass the
/// competing plant's value so cluster shapes are comparable.
std::vector<mcf::ServerDemand> mix_demands_all(std::uint32_t total_servers,
                                               std::uint32_t servers_per_pod,
                                               const WorkloadMix& mix);

/// One scored candidate (or baseline).
struct Score {
  double objective = 0.0;     ///< certified-format concurrent-flow lower bound
  double lambda_upper = 0.0;  ///< LP-duality upper bound of the same solve
  double apl = 0.0;           ///< server-weighted average path length (hops)
  std::uint64_t demands = 0;  ///< server-level demand count of the mix
};

/// Warm incremental scorer: one inc::DynamicApsp (retargeted per
/// candidate) and one inc::McfWarmCache (dual seeding allowed — every
/// warm result is re-certified inside the cache, and the search's final
/// winner is additionally re-scored cold) shared across score() calls.
class Evaluator {
 public:
  /// Binds the scorer to a plant and a mix. `net` must outlive the
  /// Evaluator.
  Evaluator(const core::FlatTreeNetwork& net, WorkloadMix mix);

  /// Scores one candidate through the warm engines.
  Score score(const Candidate& candidate);

  /// Number of throughput solves run so far (one per score()).
  std::uint64_t solves() const { return solves_; }

 private:
  const core::FlatTreeNetwork* net_;
  WorkloadMix mix_;
  std::unique_ptr<inc::DynamicApsp> apsp_;
  inc::McfWarmCache warm_;
  std::uint64_t solves_ = 0;
};

/// Cold scoring of a fixed topology against explicit demands: fresh
/// check::validate battery, cold solve, full check::certify. Violations
/// merge into `report` when provided.
Score score_topology_cold(const topo::Topology& t,
                          const std::vector<mcf::ServerDemand>& demands,
                          double epsilon, check::Report* report = nullptr);

/// Cold certified score of a candidate layout: materializes the topology
/// from scratch and delegates to score_topology_cold with the mix's
/// demands. This is the number the search reports for winners.
Score score_cold_certified(const core::FlatTreeNetwork& net,
                           const Candidate& candidate, const WorkloadMix& mix,
                           check::Report* report = nullptr);

}  // namespace flattree::design
