#include "design/objective.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/zones.hpp"
#include "mcf/garg_koenemann.hpp"
#include "topo/apl.hpp"
#include "util/rng.hpp"

namespace flattree::design {
namespace {

using mcf::ServerDemand;
using topo::ServerId;
using util::Rng;

// Substream layout under mix.seed: component i draws every random choice
// (cluster placement, pattern endpoints, hot-cluster pick) from stream
// kComponentStream + i, so adding/reordering components never perturbs
// the others' demands.
constexpr std::uint64_t kComponentStream = 101;

std::vector<ServerId> all_servers(std::uint32_t total) {
  std::vector<ServerId> servers(total);
  for (std::uint32_t s = 0; s < total; ++s) servers[s] = s;
  return servers;
}

// Per-cluster all-reduce ring: member j sends one unit to member j+1
// (mod size) — the ring schedule of data-parallel training steps. The
// hot cluster's demands are scaled by `skew`.
void ml_training_demands(const std::vector<workload::Cluster>& clusters,
                         double weight, double skew, Rng& rng,
                         std::vector<ServerDemand>& out) {
  if (clusters.empty()) return;
  const std::size_t hot = rng.index(clusters.size());
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    const auto& members = clusters[c].servers;
    if (members.size() < 2) continue;
    const double demand = c == hot ? weight * skew : weight;
    for (std::size_t j = 0; j < members.size(); ++j)
      out.push_back(ServerDemand{members[j],
                                 members[(j + 1) % members.size()], demand});
  }
}

// Random cyclic permutation over the eligible servers, unit demands.
void permutation_demands(std::vector<ServerId> eligible, double weight,
                         Rng& rng, std::vector<ServerDemand>& out) {
  if (eligible.size() < 2) return;
  rng.shuffle(eligible);
  for (std::size_t i = 0; i < eligible.size(); ++i)
    out.push_back(ServerDemand{eligible[i],
                               eligible[(i + 1) % eligible.size()], weight});
}

void component_demands(const Component& comp, std::size_t index,
                       const std::vector<ServerId>& zone,
                       const std::vector<ServerId>& everyone,
                       std::uint32_t servers_per_pod, std::uint64_t seed,
                       std::vector<ServerDemand>& out) {
  Rng rng = Rng::substream(seed, kComponentStream + index);
  if (everyone.size() < 2) return;

  // Permutation spans every server regardless of affinity (its internal
  // shuffle makes zone ordering irrelevant), so its size is trivially
  // layout-independent.
  if (comp.kind == PatternKind::Permutation) {
    permutation_demands(everyone, comp.weight, rng, out);
    return;
  }

  const auto size = static_cast<std::uint32_t>(
      std::clamp<std::uint64_t>(comp.cluster, 2, everyone.size()));
  const std::uint32_t want =
      comp.count != 0
          ? comp.count
          : std::max<std::uint32_t>(
                1, static_cast<std::uint32_t>(everyone.size()) / size);
  const std::size_t need =
      std::min<std::size_t>(std::size_t{size} * want, everyone.size());

  // Zone-priority selection: the affinity zone's servers first; when the
  // zone cannot hold every cluster, the remainder spills into a shuffled
  // draw from the rest of the fabric. The declared workload never
  // shrinks with the layout — only its placement moves.
  std::vector<ServerId> selection = zone;
  if (selection.size() < need) {
    std::vector<ServerId> rest;
    rest.reserve(everyone.size() - zone.size());
    std::size_t zi = 0;  // `zone` is an ascending subset of `everyone`
    for (ServerId s : everyone) {
      if (zi < zone.size() && zone[zi] == s) {
        ++zi;
      } else {
        rest.push_back(s);
      }
    }
    rng.shuffle(rest);
    selection.insert(selection.end(), rest.begin(),
                     rest.begin() +
                         static_cast<std::ptrdiff_t>(need - selection.size()));
  }

  auto clusters = workload::make_clusters_subset(selection, size, comp.placement,
                                                 servers_per_pod, rng);
  if (clusters.size() > want) clusters.resize(want);
  if (comp.kind == PatternKind::MlTraining) {
    ml_training_demands(clusters, comp.weight, comp.skew, rng, out);
    return;
  }
  const workload::Pattern pattern =
      comp.kind == PatternKind::Broadcast  ? workload::Pattern::Broadcast
      : comp.kind == PatternKind::Incast   ? workload::Pattern::Incast
                                           : workload::Pattern::AllToAll;
  const std::size_t first = out.size();
  auto demands = workload::cluster_traffic(clusters, pattern, rng);
  out.insert(out.end(), demands.begin(), demands.end());
  if (comp.weight != 1.0)
    for (std::size_t i = first; i < out.size(); ++i) out[i].demand *= comp.weight;
}

std::vector<ServerId> eligible_servers(const core::FlatTreeNetwork& net,
                                       const Candidate& candidate,
                                       Affinity affinity,
                                       const std::vector<ServerId>& everyone) {
  core::Mode mode = core::Mode::Clos;
  switch (affinity) {
    case Affinity::Global: mode = core::Mode::GlobalRandom; break;
    case Affinity::Local: mode = core::Mode::LocalRandom; break;
    case Affinity::Clos: mode = core::Mode::Clos; break;
    case Affinity::Any: return everyone;
  }
  return core::servers_in_pods(net, candidate.pods_in(mode));
}

}  // namespace

const char* to_string(PatternKind kind) {
  switch (kind) {
    case PatternKind::Broadcast: return "broadcast";
    case PatternKind::Incast: return "incast";
    case PatternKind::AllToAll: return "all-to-all";
    case PatternKind::Permutation: return "permutation";
    case PatternKind::MlTraining: return "ml-training";
  }
  return "?";
}

PatternKind parse_pattern_kind(const std::string& token) {
  if (token == "broadcast") return PatternKind::Broadcast;
  if (token == "incast") return PatternKind::Incast;
  if (token == "all-to-all") return PatternKind::AllToAll;
  if (token == "permutation") return PatternKind::Permutation;
  if (token == "ml-training") return PatternKind::MlTraining;
  throw std::runtime_error("design mix: unknown pattern kind '" + token + "'");
}

const char* to_string(Affinity affinity) {
  switch (affinity) {
    case Affinity::Global: return "global";
    case Affinity::Local: return "local";
    case Affinity::Clos: return "clos";
    case Affinity::Any: return "any";
  }
  return "?";
}

Affinity parse_affinity(const std::string& token) {
  if (token == "global") return Affinity::Global;
  if (token == "local") return Affinity::Local;
  if (token == "clos") return Affinity::Clos;
  if (token == "any") return Affinity::Any;
  throw std::runtime_error("design mix: unknown affinity '" + token + "'");
}

WorkloadMix WorkloadMix::defaults() {
  WorkloadMix mix;
  mix.components = {
      // Pod-spanning broadcast: wants the global-random zone's short
      // inter-pod paths (paper Figure 7).
      Component{PatternKind::Broadcast, Affinity::Global, 40, 1,
                workload::Placement::NoLocality, 1.0, 1.0},
      // Small all-to-all: wants a local-random zone (paper Figure 8).
      Component{PatternKind::AllToAll, Affinity::Local, 12, 3,
                workload::Placement::WeakLocality, 1.0, 1.0},
      // Fabric-wide skewed training rings: indifferent to zoning, loads
      // the whole plant so single-zone layouts cannot starve it.
      Component{PatternKind::MlTraining, Affinity::Any, 16, 2,
                workload::Placement::WeakLocality, 0.5, 4.0},
  };
  return mix;
}

std::vector<ServerDemand> mix_demands(const core::FlatTreeNetwork& net,
                                      const Candidate& candidate,
                                      const WorkloadMix& mix) {
  if (candidate.pods() != net.params().pods())
    throw std::invalid_argument("design mix: candidate pod count != plant");
  const auto everyone = all_servers(net.params().total_servers());
  std::vector<ServerDemand> out;
  for (std::size_t i = 0; i < mix.components.size(); ++i) {
    const Component& comp = mix.components[i];
    const auto eligible = eligible_servers(net, candidate, comp.affinity, everyone);
    component_demands(comp, i, eligible, everyone,
                      net.params().servers_per_pod(), mix.seed, out);
  }
  return out;
}

std::vector<ServerDemand> mix_demands_all(std::uint32_t total_servers,
                                          std::uint32_t servers_per_pod,
                                          const WorkloadMix& mix) {
  const auto everyone = all_servers(total_servers);
  std::vector<ServerDemand> out;
  for (std::size_t i = 0; i < mix.components.size(); ++i)
    component_demands(mix.components[i], i, everyone, everyone,
                      servers_per_pod, mix.seed, out);
  return out;
}

Evaluator::Evaluator(const core::FlatTreeNetwork& net, WorkloadMix mix)
    : net_(&net), mix_(std::move(mix)) {}

Score Evaluator::score(const Candidate& candidate) {
  const topo::Topology t = net_->build(candidate.pod_modes());
  if (!apsp_) {
    apsp_ = std::make_unique<inc::DynamicApsp>(t.graph());
  } else {
    apsp_->retarget(t.graph());
  }
  const graph::AplResult apl = inc::server_apl(*apsp_, t);
  const auto demands = mix_demands(*net_, candidate, mix_);
  const auto commodities = mcf::aggregate_to_switches(t, demands);
  mcf::McfOptions options;
  options.epsilon = mix_.epsilon;
  const mcf::McfResult result = warm_.solve(t.graph(), commodities, options);
  ++solves_;
  return Score{result.lambda_lower, result.lambda_upper, apl.average,
               demands.size()};
}

Score score_topology_cold(const topo::Topology& t,
                          const std::vector<ServerDemand>& demands,
                          double epsilon, check::Report* report) {
  check::Report local;
  check::Report& rep = report ? *report : local;
  rep.merge(check::validate(t));
  const graph::AplResult apl = topo::server_apl(t);
  const auto commodities = mcf::aggregate_to_switches(t, demands);
  mcf::McfOptions options;
  options.epsilon = epsilon;
  const mcf::McfResult result = mcf::max_concurrent_flow(t.graph(), commodities, options);
  check::CertifyOptions certify;
  certify.epsilon = epsilon;
  rep.merge(check::certify(t.graph(), commodities, result, certify));
  return Score{result.lambda_lower, result.lambda_upper, apl.average,
               demands.size()};
}

Score score_cold_certified(const core::FlatTreeNetwork& net,
                           const Candidate& candidate, const WorkloadMix& mix,
                           check::Report* report) {
  const topo::Topology t = net.build(candidate.pod_modes());
  return score_topology_cold(t, mix_demands(net, candidate, mix), mix.epsilon,
                             report);
}

}  // namespace flattree::design
