#pragma once
// Deterministic local-search/annealing over conversion-plan candidates.
//
// The search walks the zone-layout space with five neighborhood moves
// (flip a zone's mode, shift a zone boundary, split a zone, merge two
// adjacent zones, swap two zones' modes). Every random choice of
// iteration i — move proposal and Metropolis acceptance draw — comes
// from Rng::substream(seed, kMoveStream + i), so a run is a pure
// function of (plant, mix, options): replayable at any thread count,
// with the accepted-move log as the replay witness.
//
// Schedule: greedy uphill plus simulated-annealing downhill acceptance
// with a geometric temperature T_i = initial_temperature * scale *
// cooling^i, where scale is the best uniform objective (temperatures are
// declared as fractions of the objective, not absolute throughputs).
//
// Scoring during the walk uses the warm incremental Evaluator; the three
// uniform baselines and the final winner are scored cold and certified
// (check::validate + check::certify) — the reported numbers never depend
// on warm-path state.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/flat_tree.hpp"
#include "design/candidate.hpp"
#include "design/objective.hpp"
#include "util/rng.hpp"

namespace flattree::design {

/// Neighborhood move kinds (see file header).
enum class MoveKind : std::uint8_t {
  FlipMode,      ///< re-mode one zone
  MoveBoundary,  ///< shift a zone boundary by one pod
  SplitZone,     ///< split a zone, re-mode the right part
  MergeZones,    ///< merge two adjacent zones (larger zone's mode wins)
  SwapModes,     ///< swap the modes of two zones
};

/// Token form of a MoveKind ("flip", "boundary", "split", "merge", "swap").
const char* to_string(MoveKind kind);

/// One concrete move. Operand meaning per kind: FlipMode {zone, mode};
/// MoveBoundary {zone = boundary index b in [1, zones), arg = 1 to grow
/// the left zone, 0 to grow the right}; SplitZone {zone, arg = split
/// offset, mode for the right part}; MergeZones {zone = left zone of the
/// pair}; SwapModes {zone, arg = partner zone}.
struct Move {
  MoveKind kind = MoveKind::FlipMode;
  std::uint32_t zone = 0;
  std::uint32_t arg = 0;
  core::Mode mode = core::Mode::Clos;
};

/// Compact single-line rendering ("flip z1 -> local-random") used by the
/// accepted-move log, bench output, and the determinism tests.
std::string to_string(const Move& move);

/// Applies `move` to `candidate`; std::nullopt when the move is
/// infeasible against this layout (out-of-range operands, empty-zone
/// results, or a no-op swap).
std::optional<Candidate> apply_move(const Candidate& candidate, const Move& move);

/// Draws one move proposal from `rng`. std::nullopt when the drawn kind
/// is infeasible for this layout (e.g. MergeZones on a single zone) —
/// the search counts those as skipped iterations.
std::optional<Move> propose_move(const Candidate& candidate, util::Rng& rng);

/// Search knobs. Defaults match bench_design's defaults.
struct SearchOptions {
  std::uint64_t seed = 1;            ///< substream base for the move stream
  std::uint32_t iterations = 32;     ///< annealing iterations
  double initial_temperature = 0.05; ///< fraction of the best uniform objective
  double cooling = 0.92;             ///< geometric temperature factor
};

/// Cold certified score of one uniform baseline mode.
struct UniformScore {
  core::Mode mode = core::Mode::Clos;
  Score score;
  bool certified = false;  ///< validate + certify battery passed
};

/// One accepted move of the walk (the replay witness).
struct AcceptedMove {
  std::uint32_t iteration = 0;
  Move move;
  double objective = 0.0;  ///< warm objective after the move
};

/// One objective-trajectory sample (every iteration is recorded).
struct TrajectoryPoint {
  std::uint32_t iteration = 0;
  double temperature = 0.0;
  double current = 0.0;  ///< objective of the current candidate
  double best = 0.0;     ///< best warm objective so far
};

/// Everything a search run produces.
struct SearchResult {
  Candidate best;               ///< best layout found
  Score best_warm;              ///< its warm score during the walk
  Score best_cold;              ///< its cold certified re-score
  bool certified = false;       ///< cold re-score passed the full battery
  std::vector<UniformScore> uniforms;  ///< Clos/Global/Local baselines
  core::Mode best_uniform = core::Mode::Clos;  ///< argmax of `uniforms`
  std::uint32_t accepted = 0;
  std::uint32_t rejected = 0;
  std::uint32_t skipped = 0;    ///< infeasible proposals
  std::vector<AcceptedMove> accepted_moves;
  std::vector<TrajectoryPoint> trajectory;
};

/// Runs the full search: uniform baselines (cold, certified), annealing
/// walk from the best uniform layout (warm Evaluator), cold certified
/// re-score of the winner. Deterministic for fixed (net, mix, options).
SearchResult search(const core::FlatTreeNetwork& net, const WorkloadMix& mix,
                    const SearchOptions& options);

}  // namespace flattree::design
