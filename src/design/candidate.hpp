#pragma once
// Conversion-plan candidates for the automated design search.
//
// A Candidate is a hybrid-zone layout over a flat-tree plant: an ordered
// list of contiguous pod ranges (zones), each operating one conversion
// mode (paper Sections 2.6/3.4). Candidates are always held in *canonical
// form* — zones ascending, covering [0, pods) exactly, no empty zone, no
// two adjacent zones with the same mode — so structural equality, the
// text encoding, and the search's accepted-move log are all well defined.
// The text format round-trips byte-exactly (decode(encode(c)) == c and
// encode(decode(s)) == s for canonical s), mirroring fault scenario files.

#include <cstdint>
#include <string>
#include <vector>

#include "core/flat_tree.hpp"

namespace flattree::design {

/// One zone: pods [begin, end) all operate `mode`.
struct Zone {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  core::Mode mode = core::Mode::Clos;

  /// Structural equality (canonical candidates compare by value).
  bool operator==(const Zone&) const = default;
};

/// A canonical zone layout over a fixed pod count. Construct through the
/// named factories; the constructorless canonical invariant is what makes
/// encode/decode and operator== trustworthy.
class Candidate {
 public:
  /// Single zone spanning every pod. Throws std::invalid_argument when
  /// pods == 0.
  static Candidate uniform(std::uint32_t pods, core::Mode mode);

  /// Canonicalizes an explicit per-pod mode vector (the
  /// core::ZonePartition representation) into merged zones.
  static Candidate from_pod_modes(const std::vector<core::Mode>& modes);

  /// Builds from explicit zones: they must be non-empty, ascending, and
  /// cover [0, pods) exactly (std::invalid_argument otherwise). Adjacent
  /// same-mode zones are merged into canonical form.
  static Candidate from_zones(std::uint32_t pods, std::vector<Zone> zones);

  /// Pod count covered by the layout.
  std::uint32_t pods() const { return pods_; }

  /// Canonical zones, ascending.
  const std::vector<Zone>& zones() const { return zones_; }

  /// Flat per-pod mode vector — the core::FlatTreeNetwork::build input.
  std::vector<core::Mode> pod_modes() const;

  /// Pods operating `mode`, ascending (cf. core::ZonePartition::pods_in).
  std::vector<std::uint32_t> pods_in(core::Mode mode) const;

  /// Canonical text encoding: a "# flattree-design-candidate v1" header,
  /// a "pods N" line, then one "zone BEGIN END MODE" line per zone with
  /// core::to_string mode tokens. Newline-terminated.
  std::string encode() const;

  /// Parses the v1 text format (blank lines and additional "#" comment
  /// lines are ignored). Throws std::runtime_error on malformed input:
  /// missing header, unknown directives or mode tokens, or zones that
  /// fail the from_zones coverage rules.
  static Candidate decode(const std::string& text);

  /// Structural equality over (pods, zones); canonical form makes this a
  /// true layout equality.
  bool operator==(const Candidate&) const = default;

 private:
  std::uint32_t pods_ = 0;
  std::vector<Zone> zones_;
};

}  // namespace flattree::design
