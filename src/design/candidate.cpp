#include "design/candidate.hpp"

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace flattree::design {
namespace {

core::Mode parse_mode_token(const std::string& token) {
  if (token == "clos") return core::Mode::Clos;
  if (token == "global-random") return core::Mode::GlobalRandom;
  if (token == "local-random") return core::Mode::LocalRandom;
  throw std::runtime_error("design candidate: unknown mode token '" + token + "'");
}

}  // namespace

Candidate Candidate::uniform(std::uint32_t pods, core::Mode mode) {
  return from_zones(pods, {Zone{0, pods, mode}});
}

Candidate Candidate::from_pod_modes(const std::vector<core::Mode>& modes) {
  std::vector<Zone> zones;
  for (std::uint32_t p = 0; p < modes.size(); ++p) {
    if (!zones.empty() && zones.back().mode == modes[p]) {
      zones.back().end = p + 1;
    } else {
      zones.push_back(Zone{p, p + 1, modes[p]});
    }
  }
  return from_zones(static_cast<std::uint32_t>(modes.size()), std::move(zones));
}

Candidate Candidate::from_zones(std::uint32_t pods, std::vector<Zone> zones) {
  if (pods == 0) throw std::invalid_argument("design candidate: pods must be > 0");
  std::uint32_t cursor = 0;
  std::vector<Zone> merged;
  for (const Zone& z : zones) {
    if (z.begin != cursor || z.end <= z.begin)
      throw std::invalid_argument("design candidate: zones must be non-empty, "
                                  "ascending, and cover [0, pods)");
    cursor = z.end;
    if (!merged.empty() && merged.back().mode == z.mode) {
      merged.back().end = z.end;
    } else {
      merged.push_back(z);
    }
  }
  if (cursor != pods)
    throw std::invalid_argument("design candidate: zones must cover [0, pods)");
  Candidate c;
  c.pods_ = pods;
  c.zones_ = std::move(merged);
  return c;
}

std::vector<core::Mode> Candidate::pod_modes() const {
  std::vector<core::Mode> modes(pods_, core::Mode::Clos);
  for (const Zone& z : zones_)
    for (std::uint32_t p = z.begin; p < z.end; ++p) modes[p] = z.mode;
  return modes;
}

std::vector<std::uint32_t> Candidate::pods_in(core::Mode mode) const {
  std::vector<std::uint32_t> pods;
  for (const Zone& z : zones_)
    if (z.mode == mode)
      for (std::uint32_t p = z.begin; p < z.end; ++p) pods.push_back(p);
  return pods;
}

std::string Candidate::encode() const {
  std::ostringstream out;
  out << "# flattree-design-candidate v1\n";
  out << "pods " << pods_ << "\n";
  for (const Zone& z : zones_)
    out << "zone " << z.begin << " " << z.end << " " << core::to_string(z.mode)
        << "\n";
  return out.str();
}

Candidate Candidate::decode(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  bool header = false;
  bool have_pods = false;
  std::uint32_t pods = 0;
  std::vector<Zone> zones;
  while (std::getline(in, line)) {
    if (!header) {
      if (line != "# flattree-design-candidate v1")
        throw std::runtime_error("design candidate: missing v1 header");
      header = true;
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string directive;
    fields >> directive;
    if (directive == "pods") {
      if (!(fields >> pods))
        throw std::runtime_error("design candidate: bad pods line");
      have_pods = true;
    } else if (directive == "zone") {
      Zone z;
      std::string token;
      if (!(fields >> z.begin >> z.end >> token))
        throw std::runtime_error("design candidate: bad zone line: " + line);
      z.mode = parse_mode_token(token);
      zones.push_back(z);
    } else {
      throw std::runtime_error("design candidate: unknown directive '" +
                               directive + "'");
    }
  }
  if (!header) throw std::runtime_error("design candidate: missing v1 header");
  if (!have_pods) throw std::runtime_error("design candidate: missing pods line");
  try {
    return from_zones(pods, std::move(zones));
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("design candidate: ") + e.what());
  }
}

}  // namespace flattree::design
