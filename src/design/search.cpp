#include "design/search.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"

namespace flattree::design {
namespace {

using util::Rng;

// Substream layout under SearchOptions::seed: iteration i draws its move
// proposal and acceptance coin from stream kMoveStream + i. Disjoint from
// the objective's component streams (those hang off WorkloadMix::seed).
constexpr std::uint64_t kMoveStream = 1u << 20;

obs::Counter c_scored("design.candidates_scored");
obs::Counter c_accepted("design.moves_accepted");
obs::Counter c_rejected("design.moves_rejected");
obs::Counter c_skipped("design.moves_skipped");
obs::Counter c_rescore("design.certify_rescore");

// The two modes other than `mode`, in enum order.
std::array<core::Mode, 2> other_modes(core::Mode mode) {
  switch (mode) {
    case core::Mode::Clos:
      return {core::Mode::GlobalRandom, core::Mode::LocalRandom};
    case core::Mode::GlobalRandom:
      return {core::Mode::Clos, core::Mode::LocalRandom};
    case core::Mode::LocalRandom:
    default:
      return {core::Mode::Clos, core::Mode::GlobalRandom};
  }
}

}  // namespace

const char* to_string(MoveKind kind) {
  switch (kind) {
    case MoveKind::FlipMode: return "flip";
    case MoveKind::MoveBoundary: return "boundary";
    case MoveKind::SplitZone: return "split";
    case MoveKind::MergeZones: return "merge";
    case MoveKind::SwapModes: return "swap";
  }
  return "?";
}

std::string to_string(const Move& move) {
  std::ostringstream out;
  out << to_string(move.kind) << " z" << move.zone;
  switch (move.kind) {
    case MoveKind::FlipMode:
      out << " -> " << core::to_string(move.mode);
      break;
    case MoveKind::MoveBoundary:
      out << (move.arg != 0 ? " right" : " left");
      break;
    case MoveKind::SplitZone:
      out << " at " << move.arg << " -> " << core::to_string(move.mode);
      break;
    case MoveKind::MergeZones:
      out << "+z" << move.zone + 1;
      break;
    case MoveKind::SwapModes:
      out << "<->z" << move.arg;
      break;
  }
  return out.str();
}

std::optional<Candidate> apply_move(const Candidate& candidate, const Move& move) {
  auto zones = candidate.zones();
  const auto nz = static_cast<std::uint32_t>(zones.size());
  switch (move.kind) {
    case MoveKind::FlipMode: {
      if (move.zone >= nz || zones[move.zone].mode == move.mode)
        return std::nullopt;
      zones[move.zone].mode = move.mode;
      break;
    }
    case MoveKind::MoveBoundary: {
      // Boundary b sits between zones b-1 and b; arg=1 grows the left
      // zone into the right, arg=0 the other way. The shrinking zone
      // must keep at least one pod.
      const std::uint32_t b = move.zone;
      if (b == 0 || b >= nz) return std::nullopt;
      if (move.arg != 0) {
        if (zones[b].end - zones[b].begin < 2) return std::nullopt;
        ++zones[b - 1].end;
        ++zones[b].begin;
      } else {
        if (zones[b - 1].end - zones[b - 1].begin < 2) return std::nullopt;
        --zones[b - 1].end;
        --zones[b].begin;
      }
      break;
    }
    case MoveKind::SplitZone: {
      if (move.zone >= nz) return std::nullopt;
      Zone& z = zones[move.zone];
      const std::uint32_t size = z.end - z.begin;
      if (move.arg == 0 || move.arg >= size) return std::nullopt;
      if (move.mode == z.mode) return std::nullopt;  // would merge right back
      const Zone right{z.begin + move.arg, z.end, move.mode};
      z.end = right.begin;
      zones.insert(zones.begin() + move.zone + 1, right);
      break;
    }
    case MoveKind::MergeZones: {
      if (move.zone + 1 >= nz) return std::nullopt;
      Zone& left = zones[move.zone];
      const Zone& right = zones[move.zone + 1];
      // Larger zone's mode wins; ties go left.
      if (right.end - right.begin > left.end - left.begin)
        left.mode = right.mode;
      left.end = right.end;
      zones.erase(zones.begin() + move.zone + 1);
      break;
    }
    case MoveKind::SwapModes: {
      if (move.zone >= nz || move.arg >= nz || move.zone == move.arg)
        return std::nullopt;
      if (zones[move.zone].mode == zones[move.arg].mode) return std::nullopt;
      std::swap(zones[move.zone].mode, zones[move.arg].mode);
      break;
    }
  }
  return Candidate::from_zones(candidate.pods(), std::move(zones));
}

std::optional<Move> propose_move(const Candidate& candidate, util::Rng& rng) {
  const auto& zones = candidate.zones();
  const auto nz = static_cast<std::uint32_t>(zones.size());
  Move move;
  move.kind = static_cast<MoveKind>(rng.below(5));
  switch (move.kind) {
    case MoveKind::FlipMode: {
      move.zone = static_cast<std::uint32_t>(rng.below(nz));
      move.mode = other_modes(zones[move.zone].mode)[rng.below(2)];
      break;
    }
    case MoveKind::MoveBoundary: {
      if (nz < 2) return std::nullopt;
      move.zone = 1 + static_cast<std::uint32_t>(rng.below(nz - 1));
      move.arg = static_cast<std::uint32_t>(rng.below(2));
      break;
    }
    case MoveKind::SplitZone: {
      move.zone = static_cast<std::uint32_t>(rng.below(nz));
      const Zone& z = zones[move.zone];
      const std::uint32_t size = z.end - z.begin;
      if (size < 2) return std::nullopt;
      move.arg = 1 + static_cast<std::uint32_t>(rng.below(size - 1));
      move.mode = other_modes(z.mode)[rng.below(2)];
      break;
    }
    case MoveKind::MergeZones: {
      if (nz < 2) return std::nullopt;
      move.zone = static_cast<std::uint32_t>(rng.below(nz - 1));
      break;
    }
    case MoveKind::SwapModes: {
      if (nz < 2) return std::nullopt;
      move.zone = static_cast<std::uint32_t>(rng.below(nz));
      auto partner = static_cast<std::uint32_t>(rng.below(nz - 1));
      if (partner >= move.zone) ++partner;
      move.arg = partner;
      if (zones[move.zone].mode == zones[move.arg].mode) return std::nullopt;
      break;
    }
  }
  return move;
}

SearchResult search(const core::FlatTreeNetwork& net, const WorkloadMix& mix,
                    const SearchOptions& options) {
  SearchResult result;
  const std::uint32_t pods = net.params().pods();

  // Uniform baselines, cold and certified. They double as the search's
  // reference point: the walk starts from the best of them.
  for (core::Mode mode :
       {core::Mode::Clos, core::Mode::GlobalRandom, core::Mode::LocalRandom}) {
    check::Report report;
    UniformScore u;
    u.mode = mode;
    u.score = score_cold_certified(net, Candidate::uniform(pods, mode), mix,
                                   &report);
    u.certified = report.ok();
    result.uniforms.push_back(u);
  }
  double uniform_best = result.uniforms.front().score.objective;
  result.best_uniform = result.uniforms.front().mode;
  for (const UniformScore& u : result.uniforms) {
    if (u.score.objective > uniform_best) {
      uniform_best = u.score.objective;
      result.best_uniform = u.mode;
    }
  }

  Evaluator eval(net, mix);
  Candidate current = Candidate::uniform(pods, result.best_uniform);
  Score current_score = eval.score(current);
  c_scored.inc();
  result.best = current;
  result.best_warm = current_score;

  // Temperatures are fractions of the best uniform objective, so the
  // same schedule works at any plant size or mix scale.
  const double scale = std::max(std::abs(uniform_best), 1e-12);
  for (std::uint32_t iter = 0; iter < options.iterations; ++iter) {
    Rng rng = Rng::substream(options.seed, kMoveStream + iter);
    const double temperature =
        options.initial_temperature * scale * std::pow(options.cooling, iter);
    std::optional<Move> move = propose_move(current, rng);
    std::optional<Candidate> next =
        move ? apply_move(current, *move) : std::nullopt;
    if (!next) {
      ++result.skipped;
      c_skipped.inc();
      result.trajectory.push_back(TrajectoryPoint{
          iter, temperature, current_score.objective,
          result.best_warm.objective});
      continue;
    }
    const Score next_score = eval.score(*next);
    c_scored.inc();
    const double delta = next_score.objective - current_score.objective;
    const bool accept =
        delta >= 0.0 ||
        (temperature > 0.0 && rng.uniform() < std::exp(delta / temperature));
    if (accept) {
      current = std::move(*next);
      current_score = next_score;
      ++result.accepted;
      c_accepted.inc();
      result.accepted_moves.push_back(
          AcceptedMove{iter, *move, next_score.objective});
      if (next_score.objective > result.best_warm.objective) {
        result.best = current;
        result.best_warm = next_score;
      }
    } else {
      ++result.rejected;
      c_rejected.inc();
    }
    result.trajectory.push_back(TrajectoryPoint{
        iter, temperature, current_score.objective, result.best_warm.objective});
  }

  // The winner's reported number never comes from the warm path: cold
  // rebuild, full validate + certify battery.
  check::Report report;
  result.best_cold = score_cold_certified(net, result.best, mix, &report);
  result.certified = report.ok();
  c_rescore.inc();
  return result;
}

}  // namespace flattree::design
