#include "sim/flow_gen.hpp"

#include <cmath>
#include <stdexcept>

namespace flattree::sim {

double FlowSizeDist::sample(util::Rng& rng) const {
  if (rng.chance(p_short)) return rng.uniform(short_lo, short_hi);
  // Bounded Pareto inverse-CDF sampling.
  double u = rng.uniform();
  double la = std::pow(long_lo, alpha), ha = std::pow(long_hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

double FlowSizeDist::mean() const {
  double short_mean = 0.5 * (short_lo + short_hi);
  double long_mean;
  if (alpha == 1.0) {
    long_mean = std::log(long_hi / long_lo) * long_lo * long_hi / (long_hi - long_lo);
  } else {
    // Bounded Pareto mean: L^a/(1-(L/H)^a) * a/(a-1) * (L^{1-a} - H^{1-a}).
    long_mean = std::pow(long_lo, alpha) / (1.0 - std::pow(long_lo / long_hi, alpha)) *
                alpha / (alpha - 1.0) *
                (std::pow(long_lo, 1.0 - alpha) - std::pow(long_hi, 1.0 - alpha));
  }
  return p_short * short_mean + (1.0 - p_short) * long_mean;
}

std::vector<SimFlow> poisson_flows(std::uint32_t count, double arrival_rate,
                                   std::uint32_t total_servers, const FlowSizeDist& dist,
                                   util::Rng& rng) {
  if (total_servers < 2)
    throw std::invalid_argument("poisson_flows: need at least two servers");
  if (arrival_rate <= 0.0)
    throw std::invalid_argument("poisson_flows: non-positive arrival rate");
  std::vector<SimFlow> flows;
  flows.reserve(count);
  double t = 0.0;
  for (std::uint32_t i = 0; i < count; ++i) {
    t += rng.exponential(arrival_rate);
    SimFlow f;
    f.arrival = t;
    f.size = dist.sample(rng);
    f.src = static_cast<topo::ServerId>(rng.below(total_servers));
    do {
      f.dst = static_cast<topo::ServerId>(rng.below(total_servers));
    } while (f.dst == f.src);
    flows.push_back(f);
  }
  return flows;
}

std::vector<SimFlow> flows_from_demands(const std::vector<mcf::ServerDemand>& demands,
                                        double size_scale) {
  std::vector<SimFlow> flows;
  flows.reserve(demands.size());
  for (const auto& d : demands) {
    SimFlow f;
    f.src = d.src;
    f.dst = d.dst;
    f.size = d.demand * size_scale;
    f.arrival = 0.0;
    flows.push_back(f);
  }
  return flows;
}

}  // namespace flattree::sim
