#pragma once
// Discrete-event packet-level simulator.
//
// Complements the fluid flow-level simulator (sim/flow_sim.hpp) with
// queueing behavior: packets traverse the switch fabric hop by hop through
// per-direction output queues, forwarded by a compiled FIB
// (routing/fib.hpp) with per-flow hashing — store-and-forward with finite
// buffers, so congestion shows up as queueing delay and tail drops rather
// than a fair-share rate.
//
// Time units: a packet of size 1 takes 1/capacity time units to serialize
// onto a link of that capacity; propagation delay is per hop and constant.

#include <cstdint>
#include <vector>

#include "routing/fib.hpp"
#include "topo/topology.hpp"

namespace flattree::sim {

struct PacketSimConfig {
  double packet_size = 1.0;       ///< serialization units per packet
  double propagation_delay = 0.01;///< per-hop propagation latency
  std::size_t queue_packets = 16; ///< per-output-queue capacity; 0 = infinite
  double nic_rate = 1.0;          ///< server injection rate (packets/size units)
};

/// A packet train: `packets` packets injected back-to-back at the source
/// NIC rate starting at `start`.
struct PacketFlow {
  topo::ServerId src = 0;
  topo::ServerId dst = 0;
  std::uint32_t packets = 1;
  double start = 0.0;
};

struct PacketStats {
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  double mean_delay = 0.0;  ///< injection-to-delivery, delivered packets
  double max_delay = 0.0;
  double p99_delay = 0.0;
  double finish_time = 0.0; ///< when the last packet left the network

  double loss_rate() const {
    return injected ? static_cast<double>(dropped) / static_cast<double>(injected) : 0.0;
  }
};

class PacketSimulator {
 public:
  /// `fib` must cover every (host(src), host(dst)) switch pair the flows
  /// use (compile via routing::compile_fib). Both references must outlive
  /// the simulator.
  PacketSimulator(const topo::Topology& topo, const routing::Fib& fib,
                  PacketSimConfig config = {});

  /// Runs all flows to completion (or drop) and returns aggregate stats.
  /// Deterministic for a given input ordering.
  PacketStats run(const std::vector<PacketFlow>& flows);

 private:
  const topo::Topology& topo_;
  const routing::Fib& fib_;
  PacketSimConfig config_;
};

}  // namespace flattree::sim
