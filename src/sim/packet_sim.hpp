#pragma once
// Discrete-event packet-level simulator.
//
// Complements the fluid flow-level simulator (sim/flow_sim.hpp) with
// queueing behavior: packets traverse the switch fabric hop by hop through
// per-direction output queues, forwarded by a compiled FIB
// (routing/fib.hpp) or weighted WCMP FIB (te/weighted_fib.hpp) with
// per-flow hashing — store-and-forward with finite buffers, so congestion
// shows up as queueing delay and tail drops rather than a fair-share rate.
//
// Traffic-engineering extensions (all deterministic discrete-event time,
// no wall clock; see DESIGN.md §11):
//
//   * Flowlet load balancing: with flowlet_gap > 0, a flow that pauses
//     longer than the gap re-hashes onto a fresh path salt
//     (te::FlowletTable) at the next injection.
//   * ECN / DCTCP congestion control: with ecn = true, queues mark packets
//     that arrive to an occupancy >= ecn_threshold; sources run a per-flow
//     congestion window with an alpha-EWMA of the marked fraction,
//     multiplicative decrease once per marked window, additive increase
//     otherwise, and a multiplicative cut on loss. With ecn = false the
//     simulator is the drop-tail baseline and behaves exactly as before
//     this layer existed (open-loop NIC-paced injection).
//
// Time units: a packet of size 1 takes 1/capacity time units to serialize
// onto a link of that capacity; propagation delay is per hop and constant.

#include <cstdint>
#include <vector>

#include "routing/fib.hpp"
#include "te/weighted_fib.hpp"
#include "topo/topology.hpp"

namespace flattree::sim {

struct PacketSimConfig {
  double packet_size = 1.0;       ///< serialization units per packet
  double propagation_delay = 0.01;///< per-hop propagation latency
  std::size_t queue_packets = 16; ///< per-output-queue capacity; 0 = infinite
  double nic_rate = 1.0;          ///< server injection rate (packets/size units)

  // -- traffic engineering (PR 7) ------------------------------------------
  double flowlet_gap = 0.0;       ///< idle gap starting a new flowlet; <= 0 off
  bool ecn = false;               ///< DCTCP loop on; false = drop-tail baseline
  std::size_t ecn_threshold = 8;  ///< mark at enqueue when occupancy >= K
  double dctcp_gain = 0.0625;     ///< g of the alpha-EWMA (DCTCP's 1/16)
  std::uint32_t init_cwnd = 8;    ///< initial per-flow congestion window
  double ack_delay = 0.0;         ///< delivery/drop feedback latency to source
};

/// A packet train: `packets` packets injected back-to-back at the source
/// NIC rate starting at `start` (window-clocked instead when ecn is on).
struct PacketFlow {
  topo::ServerId src = 0;
  topo::ServerId dst = 0;
  std::uint32_t packets = 1;
  double start = 0.0;
};

struct PacketStats {
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  double mean_delay = 0.0;  ///< injection-to-delivery, delivered packets (0 if none)
  double max_delay = 0.0;   ///< 0.0 when nothing is delivered
  double p99_delay = 0.0;   ///< 0.0 when nothing is delivered
  double finish_time = 0.0; ///< when the last packet left the network

  // -- flow completion times (per-flow last delivery minus start; flows
  //    with no delivered packet are excluded; all 0.0 when none qualify) --
  double fct_mean = 0.0;
  double fct_p50 = 0.0;
  double fct_p99 = 0.0;
  double fct_max = 0.0;

  // -- congestion signals ---------------------------------------------------
  std::uint64_t ecn_marked = 0;     ///< delivered packets marked at >= 1 hop
  std::uint64_t window_cuts = 0;    ///< multiplicative cwnd decreases
  std::uint64_t flowlet_switches = 0; ///< flowlet re-hashes
  double mean_queue = 0.0;          ///< occupancy sampled at each arc arrival
  double max_queue = 0.0;           ///< largest occupancy sampled

  double loss_rate() const {
    return injected ? static_cast<double>(dropped) / static_cast<double>(injected) : 0.0;
  }
  /// Fraction of delivered packets that carried an ECN mark.
  double mark_rate() const {
    return delivered ? static_cast<double>(ecn_marked) / static_cast<double>(delivered)
                     : 0.0;
  }
};

class PacketSimulator {
 public:
  /// `fib` must cover every (host(src), host(dst)) switch pair the flows
  /// use (compile via routing::compile_fib). Both references must outlive
  /// the simulator.
  PacketSimulator(const topo::Topology& topo, const routing::Fib& fib,
                  PacketSimConfig config = {});

  /// WCMP variant: forwarding choices come from the weighted FIB (compile
  /// via te::compile_wcmp_*). Same coverage/lifetime requirements.
  PacketSimulator(const topo::Topology& topo, const te::WeightedFib& fib,
                  PacketSimConfig config = {});

  /// Runs all flows to completion (or drop) and returns aggregate stats.
  /// Deterministic for a given input ordering. Flows with src == dst are
  /// rejected (std::invalid_argument): the fabric model has nothing to
  /// simulate for them, and silently delivering at zero hops would skew
  /// delay statistics. Zero-packet flows are legal no-ops, so a run that
  /// delivers nothing reports every delay/FCT statistic as 0.0.
  PacketStats run(const std::vector<PacketFlow>& flows);

 private:
  PacketStats run_open_loop(const std::vector<PacketFlow>& flows);
  PacketStats run_windowed(const std::vector<PacketFlow>& flows);
  graph::LinkId select(topo::NodeId at, topo::NodeId dst, std::uint64_t salt) const;

  const topo::Topology& topo_;
  const routing::Fib* fib_ = nullptr;
  const te::WeightedFib* wfib_ = nullptr;
  PacketSimConfig config_;
};

}  // namespace flattree::sim
