#include "sim/fair_share.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace flattree::sim {

std::vector<double> max_min_rates(const FairShareProblem& problem) {
  const std::size_t flows = problem.flow_resources.size();
  const std::size_t resources = problem.capacity.size();
  for (double c : problem.capacity)
    if (c <= 0.0) throw std::invalid_argument("max_min_rates: non-positive capacity");

  // Deduplicated resource lists (a flow uses a resource once).
  std::vector<std::vector<std::uint32_t>> uses(flows);
  for (std::size_t f = 0; f < flows; ++f) {
    uses[f] = problem.flow_resources[f];
    if (uses[f].empty())
      throw std::invalid_argument("max_min_rates: flow with no resources");
    std::sort(uses[f].begin(), uses[f].end());
    uses[f].erase(std::unique(uses[f].begin(), uses[f].end()), uses[f].end());
    for (std::uint32_t r : uses[f])
      if (r >= resources) throw std::invalid_argument("max_min_rates: bad resource id");
  }

  std::vector<double> rate(flows, 0.0);
  std::vector<char> frozen(flows, 0);
  std::vector<double> used(resources, 0.0);
  std::vector<std::uint32_t> active_count(resources, 0);
  for (std::size_t f = 0; f < flows; ++f)
    for (std::uint32_t r : uses[f]) ++active_count[r];

  double level = 0.0;  // common rate of all still-active flows
  std::size_t remaining = flows;
  while (remaining > 0) {
    // Smallest per-resource headroom per active flow.
    double increment = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < resources; ++r) {
      if (active_count[r] == 0) continue;
      increment = std::min(increment,
                           (problem.capacity[r] - used[r]) /
                               static_cast<double>(active_count[r]));
    }
    if (!std::isfinite(increment))
      throw std::logic_error("max_min_rates: active flow on no resource");
    increment = std::max(increment, 0.0);
    level += increment;
    for (std::size_t r = 0; r < resources; ++r)
      if (active_count[r] > 0)
        used[r] += increment * static_cast<double>(active_count[r]);

    // Freeze flows on saturated resources.
    constexpr double kTol = 1e-12;
    std::vector<char> saturated(resources, 0);
    for (std::size_t r = 0; r < resources; ++r)
      if (active_count[r] > 0 && problem.capacity[r] - used[r] <= kTol * problem.capacity[r])
        saturated[r] = 1;
    bool any = false;
    for (std::size_t f = 0; f < flows; ++f) {
      if (frozen[f]) continue;
      bool freeze = false;
      for (std::uint32_t r : uses[f])
        if (saturated[r]) {
          freeze = true;
          break;
        }
      if (!freeze) continue;
      frozen[f] = 1;
      rate[f] = level;
      --remaining;
      any = true;
      for (std::uint32_t r : uses[f]) --active_count[r];
    }
    if (!any)
      throw std::logic_error("max_min_rates: no progress (numerical stall)");
  }
  return rate;
}

}  // namespace flattree::sim
