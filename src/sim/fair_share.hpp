#pragma once
// Max-min fair rate allocation by progressive filling.
//
// The flow-level simulator models TCP-like bandwidth sharing: all flows'
// rates grow together until some resource (link direction or server NIC)
// saturates; flows crossing it freeze, and the rest keep growing. This is
// the water-filling allocation, unique for max-min fairness.

#include <cstdint>
#include <vector>

namespace flattree::sim {

struct FairShareProblem {
  /// Resource capacities (> 0).
  std::vector<double> capacity;
  /// For each flow, the resources it occupies (each must be non-empty;
  /// duplicates within one flow are allowed and count once).
  std::vector<std::vector<std::uint32_t>> flow_resources;
};

/// Returns the max-min fair rate per flow. Throws std::invalid_argument on
/// empty resource lists or non-positive capacities.
std::vector<double> max_min_rates(const FairShareProblem& problem);

}  // namespace flattree::sim
