#include "sim/packet_sim.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "te/flowlet.hpp"
#include "util/stats.hpp"

namespace flattree::sim {

namespace {

obs::Counter c_pkt_events("sim.packet.events_processed");
obs::Counter c_pkt_injected("sim.packet.injected");
obs::Counter c_pkt_delivered("sim.packet.delivered");
obs::Counter c_pkt_dropped("sim.packet.dropped");
obs::Histogram h_pkt_delay("sim.packet.delay",
                           obs::Histogram::exponential_bounds(1e-7, 4.0, 16));
obs::Counter c_ecn_marked("sim.ecn.marked");
obs::Counter c_ecn_window_cuts("sim.ecn.window_cuts");
obs::Counter c_flowlet_switches("sim.flowlet.switches");

struct Packet {
  std::uint64_t flow_id = 0;      ///< index into the flow table
  std::uint64_t salt = 0;         ///< flowlet-salted id fed to the FIB hash
  topo::NodeId dst_switch = 0;
  double injected_at = 0.0;
  bool marked = false;            ///< ECN CE bit (set at a hot queue)
  bool dropped = false;
};

/// Event kinds of the windowed (ECN) loop; the open loop only uses Arrive.
enum class EventKind : std::uint8_t { Arrive, Credit, Inject };

struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;  ///< FIFO tie-break for determinism
  EventKind kind = EventKind::Arrive;
  topo::NodeId at = 0;    ///< switch the packet arrives at (Arrive only)
  std::size_t idx = 0;    ///< packet index (Arrive/Credit) or flow index (Inject)

  bool operator>(const Event& o) const {
    if (time != o.time) return time > o.time;
    return seq > o.seq;
  }
};

/// Per-directed-arc transmit state: when the line frees up and how many
/// packets are waiting or in flight.
struct ArcState {
  double busy_until = 0.0;
  std::size_t queued = 0;
};

/// Departure bookkeeping: queued counts drain when the head leaves the
/// wire; model it by scheduling the decrement together with the arrival
/// (store-and-forward: the packet occupies the queue until received).
struct Drain {
  double time;
  std::size_t arc;
  bool operator>(const Drain& o) const { return time > o.time; }
};

/// Queue-occupancy sampling shared by both loops (sampled at each arc
/// arrival, before the drop decision).
struct QueueSampler {
  double sum = 0.0;
  double peak = 0.0;
  std::uint64_t samples = 0;

  void sample(std::size_t queued) {
    sum += static_cast<double>(queued);
    peak = std::max(peak, static_cast<double>(queued));
    ++samples;
  }
  void finalize(PacketStats& stats) const {
    stats.mean_queue = samples ? sum / static_cast<double>(samples) : 0.0;
    stats.max_queue = peak;
  }
};

/// Distribution wrap-up shared by both loops: per-packet delay and
/// per-flow completion-time percentiles (all 0.0 when nothing qualifies).
void finalize_distributions(PacketStats& stats, std::vector<double>& delays,
                            const std::vector<PacketFlow>& flows,
                            const std::vector<double>& last_delivery) {
  if (!delays.empty()) {
    util::Distribution dist(std::move(delays));
    stats.mean_delay = dist.mean();
    stats.max_delay = dist.quantile(1.0);
    stats.p99_delay = dist.quantile(0.99);
  }
  std::vector<double> fcts;
  fcts.reserve(flows.size());
  for (std::size_t f = 0; f < flows.size(); ++f)
    if (last_delivery[f] >= 0.0) fcts.push_back(last_delivery[f] - flows[f].start);
  if (!fcts.empty()) {
    util::Distribution dist(std::move(fcts));
    stats.fct_mean = dist.mean();
    stats.fct_p50 = dist.quantile(0.50);
    stats.fct_p99 = dist.quantile(0.99);
    stats.fct_max = dist.quantile(1.0);
  }
}

}  // namespace

PacketSimulator::PacketSimulator(const topo::Topology& topo, const routing::Fib& fib,
                                 PacketSimConfig config)
    : topo_(topo), fib_(&fib), config_(config) {
  if (config_.packet_size <= 0 || config_.nic_rate <= 0)
    throw std::invalid_argument("PacketSimulator: non-positive packet size or NIC rate");
  if (config_.init_cwnd == 0)
    throw std::invalid_argument("PacketSimulator: init_cwnd must be positive");
}

PacketSimulator::PacketSimulator(const topo::Topology& topo, const te::WeightedFib& fib,
                                 PacketSimConfig config)
    : topo_(topo), wfib_(&fib), config_(config) {
  if (config_.packet_size <= 0 || config_.nic_rate <= 0)
    throw std::invalid_argument("PacketSimulator: non-positive packet size or NIC rate");
  if (config_.init_cwnd == 0)
    throw std::invalid_argument("PacketSimulator: init_cwnd must be positive");
}

graph::LinkId PacketSimulator::select(topo::NodeId at, topo::NodeId dst,
                                      std::uint64_t salt) const {
  try {
    return wfib_ != nullptr ? wfib_->select(at, dst, salt) : fib_->select(at, dst, salt);
  } catch (const std::runtime_error&) {
    throw std::runtime_error("PacketSimulator: FIB has no route for a flow's pair");
  }
}

PacketStats PacketSimulator::run(const std::vector<PacketFlow>& flows) {
  if (flows.empty()) throw std::invalid_argument("PacketSimulator::run: no flows");
  for (const PacketFlow& flow : flows)
    if (flow.src == flow.dst)
      throw std::invalid_argument("PacketSimulator: src == dst");
  OBS_SPAN("sim.packet.run");
  return config_.ecn ? run_windowed(flows) : run_open_loop(flows);
}

PacketStats PacketSimulator::run_open_loop(const std::vector<PacketFlow>& flows) {
  const std::size_t arcs = topo_.link_count() * 2;
  std::vector<ArcState> arc_state(arcs);
  std::vector<Packet> packets;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  std::uint64_t seq = 0;

  PacketStats stats;
  std::vector<double> delays;
  std::vector<double> last_delivery(flows.size(), -1.0);
  QueueSampler queues;
  te::FlowletTable flowlets(config_.flowlet_gap);

  // Inject: packets enter their source host switch at NIC pace. Flowlet
  // salts are a per-flow function of the injection times, so they can be
  // assigned during this pre-scheduling pass.
  const double injection_gap = config_.packet_size / config_.nic_rate;
  for (std::size_t f = 0; f < flows.size(); ++f) {
    const PacketFlow& flow = flows[f];
    topo::NodeId dst_switch = topo_.host(flow.dst);
    for (std::uint32_t p = 0; p < flow.packets; ++p) {
      double t = flow.start + static_cast<double>(p) * injection_gap;
      Packet pkt;
      pkt.flow_id = static_cast<std::uint64_t>(f);
      pkt.salt = flowlets.salt(pkt.flow_id, t);
      pkt.dst_switch = dst_switch;
      pkt.injected_at = t;
      packets.push_back(pkt);
      events.push({t, seq++, EventKind::Arrive, topo_.host(flow.src), packets.size() - 1});
      ++stats.injected;
    }
  }
  c_pkt_injected.add(stats.injected);

  std::priority_queue<Drain, std::vector<Drain>, std::greater<>> drains;

  while (!events.empty()) {
    Event ev = events.top();
    events.pop();
    c_pkt_events.inc();
    while (!drains.empty() && drains.top().time <= ev.time) {
      --arc_state[drains.top().arc].queued;
      drains.pop();
    }
    const Packet& pkt = packets[ev.idx];

    if (ev.at == pkt.dst_switch) {
      ++stats.delivered;
      double delay = ev.time - pkt.injected_at;
      c_pkt_delivered.inc();
      h_pkt_delay.observe(delay);
      delays.push_back(delay);
      last_delivery[pkt.flow_id] = std::max(last_delivery[pkt.flow_id], ev.time);
      stats.finish_time = std::max(stats.finish_time, ev.time);
      continue;
    }

    graph::LinkId link = select(ev.at, pkt.dst_switch, pkt.salt);
    const graph::Link& l = topo_.graph().link(link);
    std::size_t arc = 2 * link + (l.a == ev.at ? 0 : 1);
    ArcState& state = arc_state[arc];
    queues.sample(state.queued);

    if (config_.queue_packets != 0 && state.queued >= config_.queue_packets) {
      ++stats.dropped;
      c_pkt_dropped.inc();
      stats.finish_time = std::max(stats.finish_time, ev.time);
      continue;
    }
    double service = config_.packet_size / l.capacity;
    double depart = std::max(ev.time, state.busy_until) + service;
    state.busy_until = depart;
    ++state.queued;
    double arrive = depart + config_.propagation_delay;
    drains.push({arrive, arc});
    events.push({arrive, seq++, EventKind::Arrive, l.other(ev.at), ev.idx});
  }

  stats.flowlet_switches = flowlets.switches();
  c_flowlet_switches.add(stats.flowlet_switches);
  queues.finalize(stats);
  finalize_distributions(stats, delays, flows, last_delivery);
  return stats;
}

PacketStats PacketSimulator::run_windowed(const std::vector<PacketFlow>& flows) {
  const std::size_t arcs = topo_.link_count() * 2;
  std::vector<ArcState> arc_state(arcs);
  std::vector<Packet> packets;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  std::priority_queue<Drain, std::vector<Drain>, std::greater<>> drains;
  std::uint64_t seq = 0;

  PacketStats stats;
  std::vector<double> delays;
  std::vector<double> last_delivery(flows.size(), -1.0);
  QueueSampler queues;
  te::FlowletTable flowlets(config_.flowlet_gap);

  // DCTCP source state, one per flow. alpha starts at 1.0 (react strongly
  // to the first marked window, the conservative standard choice).
  struct FlowState {
    std::uint32_t sent = 0;
    std::uint32_t inflight = 0;
    std::uint32_t cwnd = 1;
    std::uint32_t window_size = 1;   ///< cwnd at the start of this window
    std::uint32_t window_acked = 0;
    std::uint32_t window_marked = 0;
    double alpha = 1.0;
    double nic_free = 0.0;
    bool inject_pending = false;     ///< an Inject event is already queued
  };
  std::vector<FlowState> state(flows.size());
  const double injection_gap = config_.packet_size / config_.nic_rate;

  for (std::size_t f = 0; f < flows.size(); ++f) {
    FlowState& fs = state[f];
    fs.cwnd = config_.init_cwnd;
    fs.window_size = fs.cwnd;
    fs.nic_free = flows[f].start;
    fs.inject_pending = true;
    events.push({flows[f].start, seq++, EventKind::Inject, 0, f});
  }

  // Sends one packet of flow f at `now` if the window and NIC allow, then
  // keeps an Inject event queued while more could be sent.
  auto pump = [&](std::size_t f, double now) {
    FlowState& fs = state[f];
    const PacketFlow& flow = flows[f];
    if (fs.sent < flow.packets && fs.inflight < fs.cwnd && fs.nic_free <= now) {
      Packet pkt;
      pkt.flow_id = static_cast<std::uint64_t>(f);
      pkt.salt = flowlets.salt(pkt.flow_id, now);
      pkt.dst_switch = topo_.host(flow.dst);
      pkt.injected_at = now;
      packets.push_back(pkt);
      events.push({now, seq++, EventKind::Arrive, topo_.host(flow.src),
                   packets.size() - 1});
      ++fs.sent;
      ++fs.inflight;
      fs.nic_free = now + injection_gap;
      ++stats.injected;
    }
    if (!fs.inject_pending && fs.sent < flow.packets && fs.inflight < fs.cwnd) {
      fs.inject_pending = true;
      events.push({std::max(now, fs.nic_free), seq++, EventKind::Inject, 0, f});
    }
  };

  // ACK/NACK bookkeeping at the source: the DCTCP loop proper.
  auto credit = [&](std::size_t packet_idx, double now) {
    const Packet& pkt = packets[packet_idx];
    std::size_t f = static_cast<std::size_t>(pkt.flow_id);
    FlowState& fs = state[f];
    --fs.inflight;
    if (pkt.dropped) {
      // Loss: multiplicative decrease and a fresh window (fast-retransmit
      // abstraction; the packet itself is not retransmitted).
      fs.cwnd = std::max(1u, fs.cwnd / 2);
      ++stats.window_cuts;
      fs.window_size = fs.cwnd;
      fs.window_acked = 0;
      fs.window_marked = 0;
    } else {
      ++fs.window_acked;
      if (pkt.marked) ++fs.window_marked;
      if (fs.window_acked >= fs.window_size) {
        double fraction = static_cast<double>(fs.window_marked) /
                          static_cast<double>(fs.window_acked);
        fs.alpha = (1.0 - config_.dctcp_gain) * fs.alpha + config_.dctcp_gain * fraction;
        if (fs.window_marked > 0) {
          fs.cwnd = std::max(
              1u, static_cast<std::uint32_t>(static_cast<double>(fs.cwnd) *
                                             (1.0 - fs.alpha / 2.0)));
          ++stats.window_cuts;
        } else {
          ++fs.cwnd;  // additive increase per clean window
        }
        fs.window_size = fs.cwnd;
        fs.window_acked = 0;
        fs.window_marked = 0;
      }
    }
    pump(f, now);
  };

  while (!events.empty()) {
    Event ev = events.top();
    events.pop();
    c_pkt_events.inc();
    while (!drains.empty() && drains.top().time <= ev.time) {
      --arc_state[drains.top().arc].queued;
      drains.pop();
    }

    if (ev.kind == EventKind::Inject) {
      state[ev.idx].inject_pending = false;
      pump(ev.idx, ev.time);
      continue;
    }
    if (ev.kind == EventKind::Credit) {
      credit(ev.idx, ev.time);
      continue;
    }

    Packet& pkt = packets[ev.idx];
    if (ev.at == pkt.dst_switch) {
      ++stats.delivered;
      double delay = ev.time - pkt.injected_at;
      c_pkt_delivered.inc();
      h_pkt_delay.observe(delay);
      delays.push_back(delay);
      if (pkt.marked) ++stats.ecn_marked;
      last_delivery[pkt.flow_id] = std::max(last_delivery[pkt.flow_id], ev.time);
      stats.finish_time = std::max(stats.finish_time, ev.time);
      events.push({ev.time + config_.ack_delay, seq++, EventKind::Credit, 0, ev.idx});
      continue;
    }

    graph::LinkId link = select(ev.at, pkt.dst_switch, pkt.salt);
    const graph::Link& l = topo_.graph().link(link);
    std::size_t arc = 2 * link + (l.a == ev.at ? 0 : 1);
    ArcState& astate = arc_state[arc];
    queues.sample(astate.queued);

    if (config_.queue_packets != 0 && astate.queued >= config_.queue_packets) {
      ++stats.dropped;
      c_pkt_dropped.inc();
      pkt.dropped = true;
      stats.finish_time = std::max(stats.finish_time, ev.time);
      events.push({ev.time + config_.ack_delay, seq++, EventKind::Credit, 0, ev.idx});
      continue;
    }
    if (astate.queued >= config_.ecn_threshold) pkt.marked = true;
    double service = config_.packet_size / l.capacity;
    double depart = std::max(ev.time, astate.busy_until) + service;
    astate.busy_until = depart;
    ++astate.queued;
    double arrive = depart + config_.propagation_delay;
    drains.push({arrive, arc});
    events.push({arrive, seq++, EventKind::Arrive, l.other(ev.at), ev.idx});
  }

  c_pkt_injected.add(stats.injected);
  c_ecn_marked.add(stats.ecn_marked);
  c_ecn_window_cuts.add(stats.window_cuts);
  stats.flowlet_switches = flowlets.switches();
  c_flowlet_switches.add(stats.flowlet_switches);
  queues.finalize(stats);
  finalize_distributions(stats, delays, flows, last_delivery);
  return stats;
}

}  // namespace flattree::sim
