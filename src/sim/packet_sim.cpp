#include "sim/packet_sim.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/stats.hpp"

namespace flattree::sim {

namespace {

obs::Counter c_pkt_events("sim.packet.events_processed");
obs::Counter c_pkt_injected("sim.packet.injected");
obs::Counter c_pkt_delivered("sim.packet.delivered");
obs::Counter c_pkt_dropped("sim.packet.dropped");
obs::Histogram h_pkt_delay("sim.packet.delay",
                           obs::Histogram::exponential_bounds(1e-7, 4.0, 16));

struct Packet {
  std::uint64_t flow_id = 0;
  topo::NodeId dst_switch = 0;
  double injected_at = 0.0;
};

struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;  ///< FIFO tie-break for determinism
  topo::NodeId at = 0;    ///< switch the packet arrives at
  std::size_t packet = 0; ///< index into the packet table

  bool operator>(const Event& o) const {
    if (time != o.time) return time > o.time;
    return seq > o.seq;
  }
};

/// Per-directed-arc transmit state: when the line frees up and how many
/// packets are waiting or in flight.
struct ArcState {
  double busy_until = 0.0;
  std::size_t queued = 0;
};

}  // namespace

PacketSimulator::PacketSimulator(const topo::Topology& topo, const routing::Fib& fib,
                                 PacketSimConfig config)
    : topo_(topo), fib_(fib), config_(config) {
  if (config_.packet_size <= 0 || config_.nic_rate <= 0)
    throw std::invalid_argument("PacketSimulator: non-positive packet size or NIC rate");
}

PacketStats PacketSimulator::run(const std::vector<PacketFlow>& flows) {
  if (flows.empty()) throw std::invalid_argument("PacketSimulator::run: no flows");
  OBS_SPAN("sim.packet.run");

  const std::size_t arcs = topo_.link_count() * 2;
  std::vector<ArcState> arc_state(arcs);
  std::vector<Packet> packets;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  std::uint64_t seq = 0;

  PacketStats stats;
  std::vector<double> delays;

  // Inject: packets enter their source host switch at NIC pace.
  const double injection_gap = config_.packet_size / config_.nic_rate;
  for (std::size_t f = 0; f < flows.size(); ++f) {
    const PacketFlow& flow = flows[f];
    if (flow.src == flow.dst)
      throw std::invalid_argument("PacketSimulator: src == dst");
    topo::NodeId dst_switch = topo_.host(flow.dst);
    for (std::uint32_t p = 0; p < flow.packets; ++p) {
      double t = flow.start + static_cast<double>(p) * injection_gap;
      packets.push_back({static_cast<std::uint64_t>(f), dst_switch, t});
      events.push({t, seq++, topo_.host(flow.src), packets.size() - 1});
      ++stats.injected;
    }
  }
  c_pkt_injected.add(stats.injected);

  // Departure bookkeeping: queued counts drain when the head leaves the
  // wire; model it by scheduling the decrement together with the arrival
  // (store-and-forward: the packet occupies the queue until received).
  struct Drain {
    double time;
    std::size_t arc;
    bool operator>(const Drain& o) const { return time > o.time; }
  };
  std::priority_queue<Drain, std::vector<Drain>, std::greater<>> drains;

  while (!events.empty()) {
    Event ev = events.top();
    events.pop();
    c_pkt_events.inc();
    while (!drains.empty() && drains.top().time <= ev.time) {
      --arc_state[drains.top().arc].queued;
      drains.pop();
    }
    const Packet& pkt = packets[ev.packet];

    if (ev.at == pkt.dst_switch) {
      ++stats.delivered;
      double delay = ev.time - pkt.injected_at;
      c_pkt_delivered.inc();
      h_pkt_delay.observe(delay);
      delays.push_back(delay);
      stats.finish_time = std::max(stats.finish_time, ev.time);
      continue;
    }

    graph::LinkId link;
    try {
      link = fib_.select(ev.at, pkt.dst_switch, pkt.flow_id);
    } catch (const std::runtime_error&) {
      throw std::runtime_error("PacketSimulator: FIB has no route for a flow's pair");
    }
    const graph::Link& l = topo_.graph().link(link);
    std::size_t arc = 2 * link + (l.a == ev.at ? 0 : 1);
    ArcState& state = arc_state[arc];

    if (config_.queue_packets != 0 && state.queued >= config_.queue_packets) {
      ++stats.dropped;
      c_pkt_dropped.inc();
      stats.finish_time = std::max(stats.finish_time, ev.time);
      continue;
    }
    double service = config_.packet_size / l.capacity;
    double depart = std::max(ev.time, state.busy_until) + service;
    state.busy_until = depart;
    ++state.queued;
    double arrive = depart + config_.propagation_delay;
    drains.push({arrive, arc});
    events.push({arrive, seq++, l.other(ev.at), ev.packet});
  }

  if (!delays.empty()) {
    util::Distribution dist(delays);
    stats.mean_delay = dist.mean();
    stats.max_delay = dist.quantile(1.0);
    stats.p99_delay = dist.quantile(0.99);
  }
  return stats;
}

}  // namespace flattree::sim
