#pragma once
// Event-driven flow-level network simulator.
//
// Flows are fluid: each active flow transmits at its max-min fair rate
// (sim/fair_share.hpp) over the resources it occupies — every directed
// link on its switch path plus the source and destination server NICs.
// Rates are recomputed at every arrival and completion, which is exact
// for the fluid model. Extends the paper's evaluation with flow-completion
// -time comparisons across topologies and routing schemes.

#include <cstdint>
#include <vector>

#include "routing/paths.hpp"
#include "topo/topology.hpp"

namespace flattree::sim {

struct SimFlow {
  topo::ServerId src = 0;
  topo::ServerId dst = 0;
  double size = 1.0;     ///< data volume (capacity units x time)
  double arrival = 0.0;  ///< arrival time
};

struct FlowRecord {
  SimFlow flow;
  double finish = 0.0;
  std::uint32_t hops = 0;  ///< switch-path links (0 = same-switch)
  double fct() const { return finish - flow.arrival; }
};

struct SimConfig {
  double nic_capacity = 1.0;  ///< server NIC rate, in link-capacity units
};

class FlowSimulator {
 public:
  /// `routing` selects switch-level paths on `topo`'s graph; both must
  /// outlive the simulator.
  FlowSimulator(const topo::Topology& topo, routing::Routing& routing,
                SimConfig config = {});

  /// Simulates to completion and returns one record per flow (input
  /// order). Throws std::invalid_argument on empty input or src == dst.
  std::vector<FlowRecord> run(std::vector<SimFlow> flows);

 private:
  const topo::Topology& topo_;
  routing::Routing& routing_;
  SimConfig config_;
};

}  // namespace flattree::sim
