#include "sim/flow_sim.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/fair_share.hpp"

namespace flattree::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

obs::Counter c_flows("sim.flow.flows");
obs::Counter c_completions("sim.flow.completions");
obs::Counter c_recomputes("sim.flow.rate_recomputes");
obs::Histogram h_fct("sim.flow.fct",
                     obs::Histogram::exponential_bounds(1e-3, 4.0, 16));
}

FlowSimulator::FlowSimulator(const topo::Topology& topo, routing::Routing& routing,
                             SimConfig config)
    : topo_(topo), routing_(routing), config_(config) {}

std::vector<FlowRecord> FlowSimulator::run(std::vector<SimFlow> flows) {
  if (flows.empty()) throw std::invalid_argument("FlowSimulator::run: no flows");
  OBS_SPAN("sim.flow.run");
  c_flows.add(flows.size());

  // Resources: directed link arcs [0, 2L), then server NICs [2L, 2L + S).
  const std::size_t links = topo_.link_count();
  const std::size_t nic_base = 2 * links;
  FairShareProblem base;
  base.capacity.assign(nic_base + topo_.server_count(), 1.0);
  for (std::size_t l = 0; l < links; ++l) {
    double c = topo_.graph().link(static_cast<graph::LinkId>(l)).capacity;
    base.capacity[2 * l] = c;
    base.capacity[2 * l + 1] = c;
  }
  for (std::size_t s = 0; s < topo_.server_count(); ++s)
    base.capacity[nic_base + s] = config_.nic_capacity;

  struct Active {
    std::size_t index;  ///< into the input vector
    double remaining;
    std::vector<std::uint32_t> resources;
  };

  // Per-flow resource sets (computed at admission, so routing sees the
  // arrival order).
  auto resources_of = [&](const SimFlow& f, std::uint32_t& hops) {
    if (f.src == f.dst) throw std::invalid_argument("FlowSimulator: src == dst");
    std::vector<std::uint32_t> out;
    graph::NodeId a = topo_.host(f.src), b = topo_.host(f.dst);
    if (a != b) {
      const graph::Path& p = routing_.select(
          a, b, (static_cast<std::uint64_t>(f.src) << 32) | f.dst);
      hops = static_cast<std::uint32_t>(p.links.size());
      for (std::size_t i = 0; i < p.links.size(); ++i) {
        // Direction: arc 2l if traversed a->b of the link, else 2l+1.
        const graph::Link& link = topo_.graph().link(p.links[i]);
        bool forward = p.nodes[i] == link.a;
        out.push_back(static_cast<std::uint32_t>(2 * p.links[i] + (forward ? 0 : 1)));
      }
    } else {
      hops = 0;
    }
    out.push_back(static_cast<std::uint32_t>(nic_base + f.src));
    out.push_back(static_cast<std::uint32_t>(nic_base + f.dst));
    return out;
  };

  // Arrival order (stable on ties by input order).
  std::vector<std::size_t> order(flows.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return flows[x].arrival < flows[y].arrival;
  });

  std::vector<FlowRecord> records(flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) records[i].flow = flows[i];

  std::vector<Active> active;
  std::vector<double> rates;
  double now = flows[order.front()].arrival;
  std::size_t next_arrival = 0;

  auto recompute = [&]() {
    if (active.empty()) {
      rates.clear();
      return;
    }
    FairShareProblem p;
    p.capacity = base.capacity;
    p.flow_resources.reserve(active.size());
    for (const Active& a : active) p.flow_resources.push_back(a.resources);
    rates = max_min_rates(p);
  };

  while (!active.empty() || next_arrival < order.size()) {
    // Next completion under current rates.
    double completion_at = kInf;
    for (std::size_t i = 0; i < active.size(); ++i)
      if (rates[i] > 0.0)
        completion_at = std::min(completion_at, now + active[i].remaining / rates[i]);
    double arrival_at =
        next_arrival < order.size() ? flows[order[next_arrival]].arrival : kInf;
    double t = std::min(completion_at, arrival_at);
    if (t == kInf) throw std::logic_error("FlowSimulator: stalled (zero rates)");

    // Advance transmission.
    double dt = t - now;
    for (std::size_t i = 0; i < active.size(); ++i) active[i].remaining -= rates[i] * dt;
    now = t;

    // Retire completed flows.
    constexpr double kTol = 1e-9;
    for (std::size_t i = active.size(); i-- > 0;) {
      if (active[i].remaining <= kTol * records[active[i].index].flow.size) {
        records[active[i].index].finish = now;
        c_completions.inc();
        h_fct.observe(now - records[active[i].index].flow.arrival);
        active.erase(active.begin() + static_cast<long>(i));
      }
    }
    // Admit arrivals.
    while (next_arrival < order.size() && flows[order[next_arrival]].arrival <= now) {
      std::size_t idx = order[next_arrival++];
      Active a;
      a.index = idx;
      a.remaining = flows[idx].size;
      std::uint32_t hops = 0;
      a.resources = resources_of(flows[idx], hops);
      records[idx].hops = hops;
      active.push_back(std::move(a));
    }
    c_recomputes.inc();
    recompute();
  }
  return records;
}

}  // namespace flattree::sim
