#pragma once
// Synthetic flow workload generation for the flow-level simulator.
//
// Production flow traces are proprietary; per DESIGN.md we substitute a
// synthetic heavy-tailed mixture calibrated to the well-known data center
// shape (most flows short, most bytes in long flows): with probability
// `p_short` sizes are uniform in [short_lo, short_hi], otherwise bounded
// Pareto(alpha) over [long_lo, long_hi]. Arrivals are Poisson.

#include <cstdint>
#include <vector>

#include "mcf/commodity.hpp"
#include "sim/flow_sim.hpp"
#include "util/rng.hpp"

namespace flattree::sim {

struct FlowSizeDist {
  double p_short = 0.8;
  double short_lo = 0.01, short_hi = 0.1;
  double long_lo = 1.0, long_hi = 100.0;
  double alpha = 1.2;  ///< Pareto tail index

  double sample(util::Rng& rng) const;
  /// Analytic mean of the mixture.
  double mean() const;
};

/// `count` flows between uniform random distinct server pairs, Poisson
/// arrivals with the given rate, sizes from `dist`.
std::vector<SimFlow> poisson_flows(std::uint32_t count, double arrival_rate,
                                   std::uint32_t total_servers, const FlowSizeDist& dist,
                                   util::Rng& rng);

/// One flow per server demand, all arriving at t = 0, size = demand scaled
/// by `size_scale` (bridges MCF workloads into the simulator).
std::vector<SimFlow> flows_from_demands(const std::vector<mcf::ServerDemand>& demands,
                                        double size_scale = 1.0);

}  // namespace flattree::sim
