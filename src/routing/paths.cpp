#include "routing/paths.hpp"

namespace flattree::routing {

const std::vector<Path>* PathDb::find(NodeId src, NodeId dst) const {
  auto it = map_.find(key(src, dst));
  return it == map_.end() ? nullptr : &it->second;
}

void PathDb::set(NodeId src, NodeId dst, std::vector<Path> paths) {
  map_[key(src, dst)] = std::move(paths);
}

}  // namespace flattree::routing
