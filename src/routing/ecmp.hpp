#pragma once
// Equal-cost multi-path routing [RFC 2992], the paper's Clos-mode scheme.
//
// All minimum-hop paths between a switch pair (capped at `max_paths`) are
// enumerated once; each flow picks one by deterministic hash, emulating
// per-flow ECMP hashing in commodity switches.

#include "routing/paths.hpp"

namespace flattree::routing {

class EcmpRouting : public Routing {
 public:
  /// `salt` perturbs the flow hash (distinct switches hash differently).
  explicit EcmpRouting(const graph::Graph& g, std::size_t max_paths = 64,
                       std::uint64_t salt = 0);

  const Path& select(NodeId src, NodeId dst, std::uint64_t flow_id) override;
  const std::vector<Path>& paths(NodeId src, NodeId dst) override;

 private:
  const graph::Graph& graph_;
  std::size_t max_paths_;
  std::uint64_t salt_;
  PathDb db_;
};

}  // namespace flattree::routing
