#include "routing/ecmp.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace flattree::routing {

EcmpRouting::EcmpRouting(const graph::Graph& g, std::size_t max_paths, std::uint64_t salt)
    : graph_(g), max_paths_(max_paths), salt_(salt) {}

const std::vector<Path>& EcmpRouting::paths(NodeId src, NodeId dst) {
  if (const auto* cached = db_.find(src, dst)) return *cached;
  auto computed = graph::all_shortest_paths(graph_, src, dst, max_paths_);
  if (computed.empty()) throw std::runtime_error("EcmpRouting: pair disconnected");
  db_.set(src, dst, std::move(computed));
  return *db_.find(src, dst);
}

const Path& EcmpRouting::select(NodeId src, NodeId dst, std::uint64_t flow_id) {
  const auto& set = paths(src, dst);
  std::uint64_t h = util::mix64(flow_id ^ salt_ ^
                                ((static_cast<std::uint64_t>(src) << 32) | dst));
  return set[h % set.size()];
}

}  // namespace flattree::routing
