#pragma once
// k-shortest-paths routing, the paper's scheme for (approximated) random
// graphs [Singla et al., NSDI'12 use k = 8].

#include <utility>

#include "routing/paths.hpp"

namespace flattree::routing {

class KspRouting : public Routing {
 public:
  explicit KspRouting(const graph::Graph& g, std::size_t k = 8, std::uint64_t salt = 0);

  const Path& select(NodeId src, NodeId dst, std::uint64_t flow_id) override;
  const std::vector<Path>& paths(NodeId src, NodeId dst) override;

  /// Bulk-computes the path sets for `pairs` over the exec pool (Yen runs
  /// are independent per pair) and installs them in deterministic pair
  /// order, skipping pairs already cached. The resulting database is
  /// byte-identical at any thread count. Throws on a disconnected pair.
  void precompute(const std::vector<std::pair<NodeId, NodeId>>& pairs);

  /// precompute() over every ordered pair of distinct switches.
  void precompute_all_pairs();

  std::size_t cached_pairs() const { return db_.pairs(); }

 private:
  const graph::Graph& graph_;
  std::size_t k_;
  std::uint64_t salt_;
  PathDb db_;
};

}  // namespace flattree::routing
