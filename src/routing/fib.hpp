#pragma once
// Forwarding-table (FIB) compilation — the paper's SDN story made concrete
// (Section 2.6: flat-tree topologies are known in advance, so shortest
// paths can be precomputed and "program[med] ... via SDN" instead of
// learned).
//
// A Fib maps, at every switch, a destination switch to the set of next-hop
// links a packet may take. compile_fib() builds the table from a routing
// scheme's path sets; verify_fib() model-checks it: every (src, dst) pair
// reaches the destination over every greedy walk, without loops, within a
// hop bound — the property an operator would want before installing rules.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "routing/paths.hpp"
#include "topo/topology.hpp"

namespace flattree::routing {

/// Per-switch forwarding table: destination -> candidate next-hop links.
class Fib {
 public:
  explicit Fib(std::size_t switches);

  /// Adds a candidate next hop at `at` toward `dst` via `link`
  /// (idempotent).
  void add_route(NodeId at, NodeId dst, graph::LinkId link);

  /// Candidate links at `at` toward `dst` (empty if none installed).
  const std::vector<graph::LinkId>& next_hops(NodeId at, NodeId dst) const;

  /// Deterministic per-flow choice among the candidates; throws
  /// std::runtime_error when no route is installed.
  graph::LinkId select(NodeId at, NodeId dst, std::uint64_t flow_id) const;

  std::size_t switch_count() const { return tables_.size(); }
  /// Total number of (switch, destination, link) rules.
  std::size_t rule_count() const;
  /// Number of (switch, destination) entries.
  std::size_t entry_count() const;
  /// Largest per-switch rule count (TCAM pressure proxy).
  std::size_t max_rules_per_switch() const;

 private:
  // destination -> next-hop links, per switch.
  std::vector<std::unordered_map<NodeId, std::vector<graph::LinkId>>> tables_;
  static const std::vector<graph::LinkId> kEmpty;
};

/// Compiles a FIB for every ordered pair in `pairs` (use
/// all_server_pairs() for the usual case). Paths come from `routing`
/// (ECMP or KSP path sets); every link of every candidate path is
/// installed hop by hop. Note that hop-by-hop installation of *non-
/// shortest* path sets (KSP) can mix hops of different paths into loops —
/// verify_fib() detects this; production KSP routing pins paths end to
/// end instead (tunnels), which per-flow select() emulates.
Fib compile_fib(const topo::Topology& topo, Routing& routing,
                const std::vector<std::pair<NodeId, NodeId>>& pairs);

/// All ordered pairs of switches that host at least one server.
std::vector<std::pair<NodeId, NodeId>> all_server_pairs(const topo::Topology& topo);

struct FibVerification {
  bool ok = false;
  std::size_t pairs_checked = 0;
  std::uint32_t max_walk_hops = 0;  ///< longest greedy walk seen
  std::string error;                ///< first violation description
};

/// Model-checks the FIB for the given pairs: from src, every choice of
/// installed next hop must make progress to dst within `hop_limit` hops
/// and never revisit a switch on the walk (exhaustive DFS over choices).
FibVerification verify_fib(const topo::Topology& topo, const Fib& fib,
                           const std::vector<std::pair<NodeId, NodeId>>& pairs,
                           std::uint32_t hop_limit = 32);

}  // namespace flattree::routing
