#include "routing/ksp_routing.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace flattree::routing {

KspRouting::KspRouting(const graph::Graph& g, std::size_t k, std::uint64_t salt)
    : graph_(g), k_(k), salt_(salt) {}

const std::vector<Path>& KspRouting::paths(NodeId src, NodeId dst) {
  if (const auto* cached = db_.find(src, dst)) return *cached;
  auto computed = graph::yen_ksp_hops(graph_, src, dst, k_);
  if (computed.empty()) throw std::runtime_error("KspRouting: pair disconnected");
  db_.set(src, dst, std::move(computed));
  return *db_.find(src, dst);
}

const Path& KspRouting::select(NodeId src, NodeId dst, std::uint64_t flow_id) {
  const auto& set = paths(src, dst);
  std::uint64_t h = util::mix64(flow_id ^ salt_ ^
                                ((static_cast<std::uint64_t>(src) << 32) | dst));
  return set[h % set.size()];
}

}  // namespace flattree::routing
