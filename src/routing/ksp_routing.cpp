#include "routing/ksp_routing.hpp"

#include <stdexcept>

#include "exec/parallel_for.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace flattree::routing {

namespace {

obs::Counter c_cache_hits("routing.ksp.cache_hits");
obs::Counter c_cache_misses("routing.ksp.cache_misses");
obs::Counter c_precomputed("routing.ksp.pairs_precomputed");
obs::Counter c_selected("routing.ksp.paths_selected");

}  // namespace

KspRouting::KspRouting(const graph::Graph& g, std::size_t k, std::uint64_t salt)
    : graph_(g), k_(k), salt_(salt) {}

const std::vector<Path>& KspRouting::paths(NodeId src, NodeId dst) {
  if (const auto* cached = db_.find(src, dst)) {
    c_cache_hits.inc();
    return *cached;
  }
  c_cache_misses.inc();
  auto computed = graph::yen_ksp_hops(graph_, src, dst, k_);
  if (computed.empty()) throw std::runtime_error("KspRouting: pair disconnected");
  db_.set(src, dst, std::move(computed));
  return *db_.find(src, dst);
}

void KspRouting::precompute(const std::vector<std::pair<NodeId, NodeId>>& pairs) {
  OBS_SPAN("routing.ksp.precompute");
  c_precomputed.add(pairs.size());
  // Compute into per-pair slots in parallel, then install sequentially in
  // pair order so the database contents (and any later iteration order)
  // never depend on the thread count.
  std::vector<std::vector<Path>> computed(pairs.size());
  std::vector<char> fresh(pairs.size(), 0);
  exec::parallel_for(pairs.size(), [&](std::size_t i) {
    auto [src, dst] = pairs[i];
    if (db_.find(src, dst) != nullptr) return;  // db_ is read-only here
    computed[i] = graph::yen_ksp_hops(graph_, src, dst, k_);
    if (computed[i].empty()) throw std::runtime_error("KspRouting: pair disconnected");
    fresh[i] = 1;
  });
  for (std::size_t i = 0; i < pairs.size(); ++i)
    if (fresh[i]) db_.set(pairs[i].first, pairs[i].second, std::move(computed[i]));
}

void KspRouting::precompute_all_pairs() {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  const auto n = static_cast<NodeId>(graph_.node_count());
  pairs.reserve(static_cast<std::size_t>(n) * (n - 1));
  for (NodeId s = 0; s < n; ++s)
    for (NodeId d = 0; d < n; ++d)
      if (s != d) pairs.emplace_back(s, d);
  precompute(pairs);
}

const Path& KspRouting::select(NodeId src, NodeId dst, std::uint64_t flow_id) {
  c_selected.inc();
  const auto& set = paths(src, dst);
  std::uint64_t h = util::mix64(flow_id ^ salt_ ^
                                ((static_cast<std::uint64_t>(src) << 32) | dst));
  return set[h % set.size()];
}

}  // namespace flattree::routing
