#pragma once
// Path database and the routing-scheme interface (paper Section 2.6).
//
// Flat-tree routes Clos mode with ECMP and random-graph modes with
// k-shortest-paths (as Jellyfish does). Because flat-tree's topologies are
// known in advance, paths are precomputed — here lazily, per switch pair —
// and selections are made with a deterministic flow hash (an SDN controller
// would instead install the precomputed paths).

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/ksp.hpp"

namespace flattree::routing {

using graph::NodeId;
using graph::Path;

/// Cache of path sets keyed by (src, dst) switch pair.
class PathDb {
 public:
  const std::vector<Path>* find(NodeId src, NodeId dst) const;
  void set(NodeId src, NodeId dst, std::vector<Path> paths);
  std::size_t pairs() const { return map_.size(); }

 private:
  static std::uint64_t key(NodeId src, NodeId dst) {
    return (static_cast<std::uint64_t>(src) << 32) | dst;
  }
  std::unordered_map<std::uint64_t, std::vector<Path>> map_;
};

/// A routing scheme: deterministic per-flow path selection between
/// switches. Implementations cache computed path sets.
class Routing {
 public:
  virtual ~Routing() = default;
  /// The path a given flow takes; never null for connected pairs
  /// (throws std::runtime_error when src and dst are disconnected).
  /// `flow_id` feeds the hash that spreads flows over the path set.
  virtual const Path& select(NodeId src, NodeId dst, std::uint64_t flow_id) = 0;
  /// Full candidate set for a pair (for tests and inspection).
  virtual const std::vector<Path>& paths(NodeId src, NodeId dst) = 0;
};

}  // namespace flattree::routing
