#include "routing/fib.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace flattree::routing {

const std::vector<graph::LinkId> Fib::kEmpty{};

Fib::Fib(std::size_t switches) : tables_(switches) {}

void Fib::add_route(NodeId at, NodeId dst, graph::LinkId link) {
  auto& hops = tables_.at(at)[dst];
  if (std::find(hops.begin(), hops.end(), link) == hops.end()) hops.push_back(link);
}

const std::vector<graph::LinkId>& Fib::next_hops(NodeId at, NodeId dst) const {
  const auto& table = tables_.at(at);
  auto it = table.find(dst);
  return it == table.end() ? kEmpty : it->second;
}

graph::LinkId Fib::select(NodeId at, NodeId dst, std::uint64_t flow_id) const {
  const auto& hops = next_hops(at, dst);
  if (hops.empty()) throw std::runtime_error("Fib::select: no route installed");
  std::uint64_t h =
      util::mix64(flow_id ^ ((static_cast<std::uint64_t>(at) << 32) | dst));
  return hops[h % hops.size()];
}

std::size_t Fib::rule_count() const {
  std::size_t total = 0;
  for (const auto& table : tables_)
    for (const auto& [dst, hops] : table) total += hops.size();
  return total;
}

std::size_t Fib::entry_count() const {
  std::size_t total = 0;
  for (const auto& table : tables_) total += table.size();
  return total;
}

std::size_t Fib::max_rules_per_switch() const {
  std::size_t best = 0;
  for (const auto& table : tables_) {
    std::size_t rules = 0;
    for (const auto& [dst, hops] : table) rules += hops.size();
    best = std::max(best, rules);
  }
  return best;
}

Fib compile_fib(const topo::Topology& topo, Routing& routing,
                const std::vector<std::pair<NodeId, NodeId>>& pairs) {
  Fib fib(topo.switch_count());
  for (auto [src, dst] : pairs) {
    if (src == dst) continue;
    for (const graph::Path& path : routing.paths(src, dst))
      for (std::size_t i = 0; i < path.links.size(); ++i)
        fib.add_route(path.nodes[i], dst, path.links[i]);
  }
  return fib;
}

std::vector<std::pair<NodeId, NodeId>> all_server_pairs(const topo::Topology& topo) {
  std::vector<NodeId> hosts;
  auto weights = topo.servers_per_switch();
  for (NodeId v = 0; v < topo.switch_count(); ++v)
    if (weights[v] > 0) hosts.push_back(v);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(hosts.size() * (hosts.size() - 1));
  for (NodeId a : hosts)
    for (NodeId b : hosts)
      if (a != b) pairs.emplace_back(a, b);
  return pairs;
}

namespace {

/// Per-destination walk check with memoization: a node is `good` when
/// every installed next hop leads to a good node; `depth` is the longest
/// remaining walk. On-stack revisits are loops.
class DestinationChecker {
 public:
  DestinationChecker(const topo::Topology& topo, const Fib& fib, NodeId dst,
                     std::uint32_t hop_limit)
      : topo_(topo), fib_(fib), dst_(dst), hop_limit_(hop_limit),
        state_(topo.switch_count(), State::Unknown),
        depth_(topo.switch_count(), 0) {}

  /// Returns empty on success, else a violation description.
  std::string check(NodeId src, std::uint32_t& max_hops) {
    std::string err = visit(src);
    if (err.empty()) max_hops = std::max(max_hops, depth_[src]);
    return err;
  }

 private:
  enum class State : std::uint8_t { Unknown, OnStack, Good };

  std::string visit(NodeId u) {
    if (u == dst_) return {};
    if (state_[u] == State::Good) return {};
    if (state_[u] == State::OnStack) {
      std::ostringstream os;
      os << "forwarding loop through switch " << u << " toward " << dst_;
      return os.str();
    }
    const auto& hops = fib_.next_hops(u, dst_);
    if (hops.empty()) {
      std::ostringstream os;
      os << "blackhole: switch " << u << " has no route toward " << dst_;
      return os.str();
    }
    state_[u] = State::OnStack;
    std::uint32_t worst = 0;
    for (graph::LinkId link : hops) {
      NodeId v = topo_.graph().link(link).other(u);
      std::string err = visit(v);
      if (!err.empty()) return err;
      worst = std::max(worst, (v == dst_ ? 0u : depth_[v]) + 1u);
    }
    if (worst > hop_limit_) {
      std::ostringstream os;
      os << "walk from switch " << u << " toward " << dst_ << " exceeds " << hop_limit_
         << " hops";
      return os.str();
    }
    depth_[u] = worst;
    state_[u] = State::Good;
    return {};
  }

  const topo::Topology& topo_;
  const Fib& fib_;
  NodeId dst_;
  std::uint32_t hop_limit_;
  std::vector<State> state_;
  std::vector<std::uint32_t> depth_;
};

}  // namespace

FibVerification verify_fib(const topo::Topology& topo, const Fib& fib,
                           const std::vector<std::pair<NodeId, NodeId>>& pairs,
                           std::uint32_t hop_limit) {
  FibVerification result;
  // Group sources by destination so memoization is shared.
  std::unordered_map<NodeId, std::vector<NodeId>> by_dst;
  for (auto [src, dst] : pairs)
    if (src != dst) by_dst[dst].push_back(src);

  for (const auto& [dst, sources] : by_dst) {
    DestinationChecker checker(topo, fib, dst, hop_limit);
    for (NodeId src : sources) {
      std::string err = checker.check(src, result.max_walk_hops);
      ++result.pairs_checked;
      if (!err.empty()) {
        result.error = err;
        result.ok = false;
        return result;
      }
    }
  }
  result.ok = true;
  return result;
}

}  // namespace flattree::routing
