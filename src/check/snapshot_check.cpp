#include "check/snapshot_check.hpp"

#include "svc/durable/snapshot.hpp"
#include "svc/protocol.hpp"

namespace flattree::check {

namespace {

std::string u64s(std::uint64_t v) { return std::to_string(v); }

bool mutating_op(const std::string& token, svc::Op& op) {
  if (!svc::parse_op(token, op)) return false;
  if (svc::read_only(op)) return false;
  // Of the non-read-only ops, only the state-changing ones belong in a
  // command-sourced history.
  switch (op) {
    case svc::Op::Build:
    case svc::Op::Traffic:
    case svc::Op::Fault:
    case svc::Op::Convert:
    case svc::Op::Expand:
      return true;
    default:
      return false;
  }
}

}  // namespace

Report validate_snapshot(const svc::durable::ServiceSnapshot& s) {
  count_run();
  Report rep;
  const svc::durable::SnapshotStats& st = s.stats;

  std::uint64_t by_op_sum = 0;
  for (std::size_t i = 0; i < svc::kOpCount; ++i) by_op_sum += st.by_op[i];
  rep.note_check();
  if (by_op_sum != st.accepted)
    rep.add("snapshot.counter", "accepted (" + u64s(st.accepted) +
                                    ") != sum of per-op counts (" +
                                    u64s(by_op_sum) + ")");
  rep.note_check();
  if (st.accepted + st.rejected != st.lines)
    rep.add("snapshot.counter",
            "lines (" + u64s(st.lines) + ") != accepted (" + u64s(st.accepted) +
                ") + rejected (" + u64s(st.rejected) + ")");
  rep.note_check();
  if (st.shed_oversize + st.shed_queue + st.shed_deadline > st.rejected)
    rep.add("snapshot.counter", "shed counters exceed rejected");
  rep.note_check();
  if (st.journal_lines > st.accepted)
    rep.add("snapshot.counter", "journal_lines (" + u64s(st.journal_lines) +
                                    ") > accepted (" + u64s(st.accepted) + ")");
  rep.note_check();
  if (st.batches > st.accepted)
    rep.add("snapshot.counter", "batches (" + u64s(st.batches) + ") > accepted (" +
                                    u64s(st.accepted) + ")");
  rep.note_check();
  if (st.max_batch > st.accepted)
    rep.add("snapshot.counter", "max_batch (" + u64s(st.max_batch) +
                                    ") > accepted (" + u64s(st.accepted) + ")");

  std::uint64_t prev_id = 0;
  bool first_session = true;
  for (const svc::durable::SnapshotSession& sess : s.sessions) {
    rep.note_check();
    if (sess.id >= svc::kMaxSessions) {
      rep.add("snapshot.session",
              "session id " + u64s(sess.id) + " out of range");
      continue;
    }
    rep.note_check();
    if (!first_session && sess.id <= prev_id)
      rep.add("snapshot.session",
              "session ids not strictly ascending at id " + u64s(sess.id));
    first_session = false;
    prev_id = sess.id;

    std::uint64_t prev_seq = 0;
    bool first_record = true;
    for (const svc::durable::SnapshotRecord& rec : sess.records) {
      const std::string where =
          "session " + u64s(sess.id) + " record seq " + u64s(rec.seq);
      rep.note_check();
      if (first_record && rec.op != "build")
        rep.add("snapshot.record", where + ": history must start with `build`");
      first_record = false;
      rep.note_check();
      if (rec.seq <= prev_seq || rec.seq > st.lines)
        rep.add("snapshot.record",
                where + ": seq not strictly increasing within [1, lines]");
      prev_seq = rec.seq;

      svc::Op op;
      rep.note_check();
      if (!mutating_op(rec.op, op)) {
        rep.add("snapshot.record", where + ": op `" + rec.op + "` is not a "
                                           "mutating session op");
        continue;
      }
      svc::Request req;
      svc::RequestError rerr;
      rep.note_check();
      if (!svc::parse_request(rec.canonical, rec.seq, req, rerr)) {
        rep.add("snapshot.record",
                where + ": canonical fails parse_request: " + rerr.code);
        continue;
      }
      rep.note_check();
      if (req.op != op || req.session != sess.id ||
          req.canonical != rec.canonical)
        rep.add("snapshot.record",
                where + ": canonical disagrees with its op/session tags or is "
                        "not a parse fixpoint");
    }
  }
  return rep;
}

}  // namespace flattree::check
