#pragma once
// Certificate for single-source hop-distance arrays.
//
// The incremental engine (src/inc) repairs BFS distance trees in place
// instead of recomputing them; this validator proves a distance array
// correct against the *current* graph without trusting how it was
// produced. The three local conditions below are jointly sound AND
// complete for unit-weight distances, so a patched array passes iff it is
// bitwise what a cold BFS from the same source would compute:
//
//   1. anchor     — dist[source] == 0 and no other node has distance 0.
//   2. step       — across every live link, |dist[a] - dist[b]| <= 1,
//                   where "unreachable" on one side only is a violation
//                   (a live link cannot join a reached and an unreached
//                   node).
//   3. support    — every reached node v != source has a live neighbor at
//                   exactly dist[v] - 1 (a witness predecessor on some
//                   shortest path).
//
// Why this is complete: step makes dist 1-Lipschitz along links, so
// following any real path of length L from the source, dist can grow by
// at most 1 per hop — dist[v] <= L for every path, i.e. dist[v] <= true
// distance. Support chains a witness predecessor downward from v: each
// step reduces dist by exactly 1 and the only node at 0 is the source
// (anchor), so the chain is a real path of length dist[v] — true distance
// <= dist[v]. Hence equality. Step also forbids a live link joining a
// reached and an unreached node, so the reached set is exactly the
// source's component.
//
// Cost: O(V + E) per source. Used by the inc equivalence tests and by the
// engine's verify mode; reports through check::Report like every other
// validator ("dist.*" codes).

#include <cstdint>
#include <vector>

#include "check/report.hpp"
#include "graph/graph.hpp"

namespace flattree::check {

/// Certifies that `dist` is exactly the hop-distance array of a BFS from
/// `source` on the live links of `g` (graph::kUnreachable marks
/// unreached nodes). Throws std::invalid_argument only on API misuse
/// (source out of range); wrong *contents* are reported, never thrown.
Report certify_distances(const graph::Graph& g, graph::NodeId source,
                         const std::vector<std::uint32_t>& dist);

}  // namespace flattree::check
