#include "check/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <unordered_map>

#include "graph/bfs.hpp"

namespace flattree::check {

namespace {

using topo::SwitchKind;
using topo::Topology;

std::string switch_desc(const Topology& t, topo::NodeId v) {
  std::ostringstream os;
  const topo::SwitchInfo& info = t.info(v);
  os << "switch " << v << " (" << topo::to_string(info.kind) << ", pod " << info.pod
     << ", index " << info.index << ")";
  return os.str();
}

}  // namespace

Report validate(const Topology& t, const TopologyCheckOptions& options) {
  count_run();
  Report report;
  const graph::Graph& g = t.graph();
  const std::size_t switches = t.switch_count();

  // Link structure: endpoints, self links, capacities, parallel links.
  std::vector<std::size_t> degree(switches, 0);
  std::unordered_map<std::uint64_t, std::size_t> pair_count;
  report.note_check(3);
  for (graph::LinkId l = 0; l < t.link_count(); ++l) {
    const graph::Link& link = g.link(l);
    if (link.a >= switches || link.b >= switches) {
      std::ostringstream os;
      os << "link " << l << " endpoint out of range (" << link.a << ", " << link.b
         << ") with " << switches << " switches";
      report.add("topo.link_endpoint", os.str());
      continue;
    }
    if (link.a == link.b) {
      std::ostringstream os;
      os << "link " << l << " is a self loop at " << switch_desc(t, link.a);
      report.add("topo.self_link", os.str());
    }
    if (!(link.capacity > 0.0) || !std::isfinite(link.capacity)) {
      std::ostringstream os;
      os << "link " << l << " (" << link.a << ", " << link.b << ") has capacity "
         << link.capacity << " (must be positive and finite)";
      report.add("topo.capacity", os.str());
    }
    ++degree[link.a];
    ++degree[link.b];
    if (!options.allow_parallel_links) {
      auto [lo, hi] = std::minmax(link.a, link.b);
      ++pair_count[(static_cast<std::uint64_t>(lo) << 32) | hi];
    }
  }
  if (!options.allow_parallel_links) {
    report.note_check();
    for (const auto& [key, count] : pair_count) {
      if (count <= 1) continue;
      std::ostringstream os;
      os << count << " parallel links between switches " << (key >> 32) << " and "
         << (key & 0xffffffffu) << " (declared simple)";
      report.add("topo.parallel_link", os.str());
    }
  }

  // Port budgets: link endpoints + attached servers per switch.
  std::vector<std::size_t> used = degree;
  report.note_check();
  for (topo::ServerId s = 0; s < t.server_count(); ++s) {
    topo::NodeId host = t.host(s);
    if (host >= switches) {
      std::ostringstream os;
      os << "server " << s << " homed on switch " << host << " with only " << switches
         << " switches";
      report.add("topo.server_host", os.str());
      continue;
    }
    ++used[host];
  }
  report.note_check();
  for (topo::NodeId v = 0; v < switches; ++v) {
    if (used[v] <= t.info(v).ports) continue;
    std::ostringstream os;
    os << switch_desc(t, v) << " uses " << used[v] << " ports but has only "
       << t.info(v).ports;
    report.add("topo.port_budget", os.str());
  }

  // Every server homed on a live switch (unless declared stranded). A
  // zero-degree host is dead whenever the network has any links at all.
  std::vector<char> stranded_ok(t.server_count(), 0);
  for (topo::ServerId s : options.declared_stranded)
    if (s < t.server_count()) stranded_ok[s] = 1;
  report.note_check();
  if (t.link_count() > 0) {
    for (topo::ServerId s = 0; s < t.server_count(); ++s) {
      topo::NodeId host = t.host(s);
      if (host >= switches || stranded_ok[s] || degree[host] > 0) continue;
      std::ostringstream os;
      os << "server " << s << " homed on dead " << switch_desc(t, host)
         << " (zero live links, not declared stranded)";
      report.add("topo.stranded_server", os.str());
    }
  }

  // Connectivity, optionally on the live (degree > 0) subgraph.
  if (options.require_connected && switches > 0) {
    report.note_check();
    if (!options.allow_isolated_switches) {
      if (!graph::is_connected(g))
        report.add("topo.connectivity",
                   "switch graph is disconnected (" +
                       std::to_string(graph::component_count(g)) + " components)");
    } else {
      graph::NodeId start = graph::kInvalidNode;
      std::size_t live = 0;
      for (topo::NodeId v = 0; v < switches; ++v)
        if (degree[v] > 0) {
          if (start == graph::kInvalidNode) start = v;
          ++live;
        }
      if (start != graph::kInvalidNode) {
        auto dist = graph::bfs_distances(g, start);
        std::size_t reached = 0;
        for (topo::NodeId v = 0; v < switches; ++v)
          if (degree[v] > 0 && dist[v] != graph::kUnreachable) ++reached;
        if (reached != live) {
          std::ostringstream os;
          os << "live subgraph is disconnected: " << reached << " of " << live
             << " switches with links reachable from switch " << start;
          report.add("topo.connectivity", os.str());
        }
      }
    }
  }
  return report;
}

Report equipment_parity(const Topology& a, const Topology& b, bool require_equal_links) {
  count_run();
  Report report;

  report.note_check();
  if (a.switch_count() != b.switch_count()) {
    report.add("parity.switches",
               "switch counts differ: " + std::to_string(a.switch_count()) + " vs " +
                   std::to_string(b.switch_count()));
  }

  report.note_check();
  auto ka = a.kind_counts();
  auto kb = b.kind_counts();
  if (ka != kb) {
    std::ostringstream os;
    os << "per-kind switch counts differ: (" << ka[0] << " core, " << ka[1] << " agg, "
       << ka[2] << " edge) vs (" << kb[0] << " core, " << kb[1] << " agg, " << kb[2]
       << " edge)";
    report.add("parity.kinds", os.str());
  }

  // Port-budget multiset per kind: a conversion may relabel or rewire, but
  // the port inventory of each equipment class must match exactly.
  report.note_check();
  auto port_multiset = [](const Topology& t) {
    std::map<std::pair<SwitchKind, std::uint32_t>, std::size_t> ports;
    for (topo::NodeId v = 0; v < t.switch_count(); ++v)
      ++ports[{t.info(v).kind, t.info(v).ports}];
    return ports;
  };
  auto pa = port_multiset(a);
  auto pb = port_multiset(b);
  if (pa != pb) {
    std::ostringstream os;
    os << "port-budget inventories differ:";
    for (const auto& [key, count] : pa) {
      auto it = pb.find(key);
      std::size_t other = it == pb.end() ? 0 : it->second;
      if (count != other)
        os << " [" << topo::to_string(key.first) << " x" << key.second << " ports: "
           << count << " vs " << other << "]";
    }
    for (const auto& [key, count] : pb)
      if (pa.find(key) == pa.end())
        os << " [" << topo::to_string(key.first) << " x" << key.second << " ports: 0 vs "
           << count << "]";
    report.add("parity.ports", os.str());
  }

  report.note_check();
  if (a.server_count() != b.server_count()) {
    report.add("parity.servers",
               "server counts differ: " + std::to_string(a.server_count()) + " vs " +
                   std::to_string(b.server_count()));
  }

  if (require_equal_links) {
    report.note_check();
    if (a.link_count() != b.link_count()) {
      report.add("parity.links",
                 "link counts differ: " + std::to_string(a.link_count()) + " vs " +
                     std::to_string(b.link_count()));
    }
  }
  return report;
}

}  // namespace flattree::check
