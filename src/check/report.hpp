#pragma once
// Violation reports shared by every validator in src/check.
//
// Validators never throw on a failed invariant (throwing is reserved for
// misuse of the checking API itself): they accumulate Violations into a
// Report so a caller can run the whole battery, print every finding, and
// decide what is fatal. Each recorded violation also bumps the
// `check.violations` obs counter, so any bench run with --selfcheck and
// --metrics-json surfaces violations in its run manifest; `check.runs`
// counts validator invocations for coverage accounting.

#include <cstdint>
#include <string>
#include <vector>

namespace flattree::check {

/// One failed invariant. `code` is a stable dotted identifier (e.g.
/// "topo.port_budget", "mcf.capacity") for programmatic filtering;
/// `message` carries the specifics (ids, values, bounds).
struct Violation {
  std::string code;
  std::string message;
};

/// Outcome of one or more validator runs.
struct Report {
  std::vector<Violation> violations;
  std::uint64_t checks_run = 0;  ///< individual invariants evaluated

  bool ok() const { return violations.empty(); }

  /// Records a violation (and bumps the `check.violations` counter).
  void add(std::string code, std::string message);
  /// Counts an evaluated invariant (cheap; call once per logical check).
  void note_check(std::uint64_t n = 1) { checks_run += n; }
  /// Appends another report's findings and counts.
  void merge(const Report& other);

  /// All violations, one "code: message" line each ("" when ok()).
  std::string to_string() const;
};

/// Bumps `check.runs` (validators call this once on entry).
void count_run();

}  // namespace flattree::check
