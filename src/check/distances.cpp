#include "check/distances.hpp"

#include <stdexcept>
#include <string>

#include "graph/bfs.hpp"

namespace flattree::check {

Report certify_distances(const graph::Graph& g, graph::NodeId source,
                         const std::vector<std::uint32_t>& dist) {
  using graph::kUnreachable;
  if (source >= g.node_count())
    throw std::invalid_argument("certify_distances: source out of range");
  count_run();
  Report report;

  report.note_check();
  if (dist.size() != g.node_count()) {
    report.add("dist.size", "array has " + std::to_string(dist.size()) +
                                " entries for " + std::to_string(g.node_count()) +
                                " nodes");
    return report;  // indexing below would be meaningless
  }

  // 1. anchor: the source — and only the source — sits at distance 0.
  report.note_check();
  if (dist[source] != 0)
    report.add("dist.anchor",
               "dist[source=" + std::to_string(source) +
                   "] = " + std::to_string(dist[source]) + ", want 0");
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    if (v != source && dist[v] == 0)
      report.add("dist.anchor",
                 "node " + std::to_string(v) + " has distance 0 but is not the source");
  }

  // 2. step: 1-Lipschitz across every live link; a live link never joins a
  // reached and an unreached node.
  const auto& links = g.links();
  for (graph::LinkId id = 0; id < links.size(); ++id) {
    if (!g.link_live(id)) continue;
    report.note_check();
    std::uint32_t da = dist[links[id].a];
    std::uint32_t db = dist[links[id].b];
    if ((da == kUnreachable) != (db == kUnreachable)) {
      report.add("dist.step", "live link " + std::to_string(id) +
                                  " joins reached and unreached nodes");
    } else if (da != kUnreachable && (da > db + 1 || db > da + 1)) {
      report.add("dist.step", "live link " + std::to_string(id) + " spans distances " +
                                  std::to_string(da) + " and " + std::to_string(db));
    }
  }

  // 3. support: every reached non-source node has a witness predecessor.
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    if (v == source || dist[v] == kUnreachable || dist[v] == 0) continue;
    report.note_check();
    bool witnessed = false;
    for (const graph::Arc& arc : g.neighbors(v)) {
      if (dist[arc.to] != kUnreachable && dist[arc.to] + 1 == dist[v]) {
        witnessed = true;
        break;
      }
    }
    if (!witnessed)
      report.add("dist.support", "node " + std::to_string(v) + " at distance " +
                                     std::to_string(dist[v]) +
                                     " has no neighbor at distance " +
                                     std::to_string(dist[v] - 1));
  }

  return report;
}

}  // namespace flattree::check
