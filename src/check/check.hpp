#pragma once
// Umbrella header for the self-checking subsystem.
//
// src/check turns "the numbers look plausible" into machine-verified
// invariants: topology validators (check/invariants.hpp), solver
// certificates (check/certify.hpp), routing checks
// (check/routing_check.hpp), and the GK-vs-exact-LP differential harness
// (check/differential.hpp). Everything reports through check::Report and
// bumps the check.violations / check.runs obs counters, so any bench run
// with --selfcheck and --metrics-json carries the verdict in its run
// manifest.
//
// Entry points:
//   check::validate(topology[, options])   — invariant battery
//   check::equipment_parity(a, b)          — same-hardware cross-check
//   check::certify(graph, commodities, mcf_result[, options])
//   check::validate_paths / validate_fib_progress
//   check::validate_weighted_fib(topology, wfib, pairs) — WCMP tables
//   check::certify_distances(graph, source, dist) — BFS distance arrays
//   check::run_differential(spec)          — tests only (exact LP inside)

#include "check/certify.hpp"
#include "check/differential.hpp"
#include "check/distances.hpp"
#include "check/invariants.hpp"
#include "check/report.hpp"
#include "check/routing_check.hpp"
#include "check/te_check.hpp"
