#include "check/differential.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "mcf/lp_exact.hpp"
#include "util/rng.hpp"

namespace flattree::check {

namespace {

graph::Graph random_multigraph(const DifferentialSpec& spec, util::Rng& rng) {
  graph::Graph g(spec.nodes);
  auto cap = [&] { return rng.uniform(spec.cap_lo, spec.cap_hi); };
  std::unordered_set<std::uint64_t> used;
  auto key = [](graph::NodeId a, graph::NodeId b) {
    auto [lo, hi] = std::minmax(a, b);
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
  };
  // Random spanning tree keeps every instance connected.
  for (graph::NodeId v = 1; v < spec.nodes; ++v) {
    graph::NodeId u = static_cast<graph::NodeId>(rng.below(v));
    used.insert(key(u, v));
    g.add_link(u, v, cap());
  }
  for (std::size_t i = 0; i < spec.extra_links; ++i) {
    graph::NodeId a = static_cast<graph::NodeId>(rng.below(spec.nodes));
    graph::NodeId b = static_cast<graph::NodeId>(rng.below(spec.nodes));
    if (a == b) continue;
    if (!spec.parallel_links && !used.insert(key(a, b)).second) continue;
    g.add_link(a, b, cap());
  }
  return g;
}

std::vector<mcf::Commodity> random_commodities(const DifferentialSpec& spec,
                                               util::Rng& rng) {
  std::vector<mcf::Commodity> cs;
  std::unordered_set<std::uint64_t> used;
  std::size_t attempts = 0;
  while (cs.size() < spec.commodities && attempts++ < spec.commodities * 16) {
    graph::NodeId a = static_cast<graph::NodeId>(rng.below(spec.nodes));
    graph::NodeId b = static_cast<graph::NodeId>(rng.below(spec.nodes));
    if (a == b) continue;
    if (!used.insert((static_cast<std::uint64_t>(a) << 32) | b).second) continue;
    cs.push_back({a, b, 0.5 + rng.uniform() * 2.0});
  }
  return cs;
}

}  // namespace

DifferentialOutcome run_differential(const DifferentialSpec& spec) {
  count_run();
  DifferentialOutcome out;
  util::Rng rng(spec.seed * 0x9e3779b97f4a7c15ULL + 1);
  out.graph = random_multigraph(spec, rng);
  out.commodities = random_commodities(spec, rng);
  if (out.commodities.empty()) {
    out.report.add("diff.exact_unsolved", "no commodities drawn (nodes too few?)");
    return out;
  }

  auto exact = mcf::max_concurrent_flow_exact(out.graph, out.commodities);
  out.report.note_check();
  if (!exact.solved) {
    out.report.add("diff.exact_unsolved",
                   "exact LP did not solve (seed " + std::to_string(spec.seed) + ")");
    return out;
  }
  out.exact = exact.lambda;

  mcf::McfOptions opt;
  opt.epsilon = spec.epsilon;
  opt.compute_upper_bound = true;
  out.gk = mcf::max_concurrent_flow(out.graph, out.commodities, opt);

  CertifyOptions copts;
  copts.epsilon = spec.epsilon;
  out.report.merge(certify(out.graph, out.commodities, out.gk, copts));

  const double tol = 1e-6;
  out.report.note_check();
  if (out.gk.lambda_lower > out.exact * (1.0 + tol)) {
    std::ostringstream os;
    os << "lambda_lower " << out.gk.lambda_lower << " exceeds the exact optimum "
       << out.exact;
    out.report.add("diff.lower_exceeds_exact", os.str());
  }
  out.report.note_check();
  if (out.gk.lambda_upper < out.exact * (1.0 - tol)) {
    std::ostringstream os;
    os << "lambda_upper " << out.gk.lambda_upper << " below the exact optimum "
       << out.exact;
    out.report.add("diff.upper_below_exact", os.str());
  }
  out.report.note_check();
  double gap = spec.gap_factor > 0.0 ? spec.gap_factor : 1.0 + spec.epsilon;
  if (out.gk.lambda_lower * gap < out.exact * (1.0 - tol)) {
    std::ostringstream os;
    os << "lambda_lower " << out.gk.lambda_lower << " misses the exact optimum "
       << out.exact << " by more than the gap factor " << gap;
    out.report.add("diff.gap", os.str());
  }
  return out;
}

}  // namespace flattree::check
