#pragma once
// Routing invariant validators: path-set structure and FIB progress.
//
// validate_paths() checks what Yen's algorithm promises: every path runs
// src..dst, is loopless, carries one link per hop with matching endpoints,
// and the set is distinct and sorted by length. validate_fib_progress()
// checks the property ECMP-compiled FIBs guarantee: from src, every
// installed next hop toward dst strictly decreases the hop distance to
// dst, so any greedy walk terminates. KSP-compiled FIBs install
// non-shortest hops by design (see routing/fib.hpp) — run verify_fib()
// on those instead, which checks loop-free reachability without the
// monotonicity requirement.

#include <utility>
#include <vector>

#include "check/report.hpp"
#include "graph/ksp.hpp"
#include "routing/fib.hpp"
#include "topo/topology.hpp"

namespace flattree::check {

/// Validates a k-shortest-path set for (src, dst). Codes:
/// route.path_endpoints, route.path_links, route.path_loop,
/// route.path_length, route.path_order, route.path_duplicate.
Report validate_paths(const graph::Graph& g, graph::NodeId src, graph::NodeId dst,
                      const std::vector<graph::Path>& paths);

/// Walks every installed route for each (src, dst) pair and checks strict
/// hop-distance progress toward dst at every choice point. Codes:
/// route.fib_disconnected, route.fib_missing, route.fib_progress.
Report validate_fib_progress(const topo::Topology& t, const routing::Fib& fib,
                             const std::vector<std::pair<graph::NodeId, graph::NodeId>>& pairs);

}  // namespace flattree::check
