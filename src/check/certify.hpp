#pragma once
// Solver certificates for max-concurrent-flow results.
//
// A Garg-Koenemann answer is only trustworthy if its self-certificate
// actually holds; FPTAS implementations are notorious for quietly
// returning primal/dual "bounds" that fail to bracket the optimum after a
// rescaling or termination bug. certify() re-derives every claim from the
// McfResult's own evidence (rescaled arc flows + per-commodity routed
// totals), independently of the solver's internal state:
//
//   1. capacity feasibility: arc_flow[a] <= cap[a] on every arc;
//   2. flow conservation: per-node divergence of arc_flow equals the net
//      routed supply/demand implied by commodity_routed;
//   3. primal support: commodity_routed[i] >= lambda_lower * demand[i]
//      (so lambda_lower is genuinely achieved by the shipped flow);
//   4. bracket sanity: lambda_lower <= lambda_upper;
//   5. FPTAS gap: on converged runs (result.truncated == false),
//      lambda_lower >= (1 - 3*epsilon) * lambda_upper — the guarantee
//      documented in mcf/garg_koenemann.hpp. Truncated runs keep valid
//      bounds but carry no gap promise, so the gap check is skipped.
//
// All comparisons are tolerance-aware (floating-point accumulation over
// ~1/eps^2 augmentations): x <= y is checked as x <= y * (1 + rel_tol) +
// abs_tol.

#include <vector>

#include "check/report.hpp"
#include "graph/graph.hpp"
#include "mcf/commodity.hpp"
#include "mcf/garg_koenemann.hpp"

namespace flattree::check {

struct CertifyOptions {
  /// The epsilon the solve ran with; enables the FPTAS gap check (5) when
  /// in (0, 1/3). 0 skips the gap check.
  double epsilon = 0.0;
  double rel_tol = 1e-7;
  double abs_tol = 1e-9;
};

/// Certifies `result` as a solution of max_concurrent_flow(g, commodities).
/// Codes: mcf.arc_flow_size, mcf.routed_size, mcf.capacity,
/// mcf.conservation, mcf.primal_support, mcf.bracket, mcf.fptas_gap.
Report certify(const graph::Graph& g, const std::vector<mcf::Commodity>& commodities,
               const mcf::McfResult& result, const CertifyOptions& options = {});

/// Certifies a McfOptions::allow_unreachable solve. First checks the
/// degraded-service claims themselves — result.unreachable indices are
/// sorted/in-range (mcf.unreachable_index), excluded commodities routed
/// exactly zero flow (mcf.unreachable_routed), and served_fraction equals
/// the demand-weighted reachable share (mcf.served_fraction) — then runs
/// the full certify() battery on the *reachable sub-instance* (excluded
/// commodities and their routed entries filtered out), so the bracket and
/// FPTAS gap are certified for exactly what the solver claims it solved.
/// A fully-disconnected instance (served_fraction == 0) certifies iff the
/// result is the degenerate zero solve. Equivalent to certify() when
/// result.unreachable is empty.
Report certify_served(const graph::Graph& g,
                      const std::vector<mcf::Commodity>& commodities,
                      const mcf::McfResult& result, const CertifyOptions& options = {});

}  // namespace flattree::check
