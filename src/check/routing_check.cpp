#include "check/routing_check.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "graph/bfs.hpp"

namespace flattree::check {

Report validate_paths(const graph::Graph& g, graph::NodeId src, graph::NodeId dst,
                      const std::vector<graph::Path>& paths) {
  count_run();
  Report report;
  report.note_check(4);
  for (std::size_t p = 0; p < paths.size(); ++p) {
    const graph::Path& path = paths[p];
    std::ostringstream tag;
    tag << "path " << p << " of (" << src << " -> " << dst << ")";
    if (path.nodes.empty() || path.nodes.front() != src || path.nodes.back() != dst) {
      report.add("route.path_endpoints", tag.str() + " does not run src..dst");
      continue;
    }
    if (path.links.size() + 1 != path.nodes.size()) {
      std::ostringstream os;
      os << tag.str() << " has " << path.links.size() << " links for "
         << path.nodes.size() << " nodes";
      report.add("route.path_links", os.str());
      continue;
    }
    for (std::size_t h = 0; h < path.links.size(); ++h) {
      if (path.links[h] >= g.link_count()) {
        report.add("route.path_links",
                   tag.str() + " hop " + std::to_string(h) + " uses unknown link " +
                       std::to_string(path.links[h]));
        continue;
      }
      const graph::Link& link = g.link(path.links[h]);
      graph::NodeId u = path.nodes[h];
      graph::NodeId v = path.nodes[h + 1];
      bool joins = (link.a == u && link.b == v) || (link.a == v && link.b == u);
      if (!joins) {
        std::ostringstream os;
        os << tag.str() << " hop " << h << ": link " << path.links[h] << " joins ("
           << link.a << ", " << link.b << "), not (" << u << ", " << v << ")";
        report.add("route.path_links", os.str());
      }
    }
    std::unordered_set<graph::NodeId> seen(path.nodes.begin(), path.nodes.end());
    if (seen.size() != path.nodes.size())
      report.add("route.path_loop", tag.str() + " revisits a node (not loopless)");
    if (path.length < 0.0)
      report.add("route.path_length",
                 tag.str() + " has negative length " + std::to_string(path.length));
  }

  report.note_check();
  for (std::size_t p = 1; p < paths.size(); ++p) {
    if (paths[p].length + 1e-12 < paths[p - 1].length) {
      std::ostringstream os;
      os << "paths " << p - 1 << " and " << p << " of (" << src << " -> " << dst
         << ") are not length-sorted (" << paths[p - 1].length << " then "
         << paths[p].length << ")";
      report.add("route.path_order", os.str());
    }
  }

  report.note_check();
  for (std::size_t p = 0; p < paths.size(); ++p)
    for (std::size_t q = p + 1; q < paths.size(); ++q)
      if (paths[p].nodes == paths[q].nodes) {
        std::ostringstream os;
        os << "paths " << p << " and " << q << " of (" << src << " -> " << dst
           << ") are identical";
        report.add("route.path_duplicate", os.str());
      }
  return report;
}

Report validate_fib_progress(
    const topo::Topology& t, const routing::Fib& fib,
    const std::vector<std::pair<graph::NodeId, graph::NodeId>>& pairs) {
  count_run();
  Report report;
  const graph::Graph& g = t.graph();
  std::unordered_map<graph::NodeId, std::vector<std::uint32_t>> dist_cache;

  report.note_check(pairs.size());
  for (auto [src, dst] : pairs) {
    if (src == dst) continue;
    auto it = dist_cache.find(dst);
    if (it == dist_cache.end())
      it = dist_cache.emplace(dst, graph::bfs_distances(g, dst)).first;
    const std::vector<std::uint32_t>& dist = it->second;
    if (dist[src] == graph::kUnreachable) {
      std::ostringstream os;
      os << "pair (" << src << " -> " << dst << ") is disconnected in the topology";
      report.add("route.fib_disconnected", os.str());
      continue;
    }

    // DFS over every installed choice; progress implies termination, and
    // the visited set bounds work if progress is violated.
    std::vector<graph::NodeId> stack{src};
    std::unordered_set<graph::NodeId> visited{src};
    while (!stack.empty()) {
      graph::NodeId at = stack.back();
      stack.pop_back();
      if (at == dst) continue;
      const auto& hops = fib.next_hops(at, dst);
      if (hops.empty()) {
        std::ostringstream os;
        os << "switch " << at << " reached on a route toward " << dst
           << " but has no installed next hop";
        report.add("route.fib_missing", os.str());
        continue;
      }
      for (graph::LinkId l : hops) {
        graph::NodeId next = g.link(l).other(at);
        if (dist[next] == graph::kUnreachable || dist[next] >= dist[at]) {
          std::ostringstream os;
          os << "next hop " << at << " -> " << next << " (link " << l << ") toward "
             << dst << " does not make progress (dist " << dist[at] << " -> "
             << dist[next] << ")";
          report.add("route.fib_progress", os.str());
          continue;
        }
        if (visited.insert(next).second) stack.push_back(next);
      }
    }
  }
  return report;
}

}  // namespace flattree::check
