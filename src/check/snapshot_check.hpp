#pragma once
// Snapshot invariant battery: structural validation of a decoded
// `# flattree-svc-snapshot v1` (svc/durable/snapshot.hpp) beyond what the
// CRC trailer proves. The CRC says "these are the bytes that were
// written"; this battery says "these bytes describe a state the service
// could actually have been in" — counter identities, session ordering,
// and replayability of every history record. The service runs it under
// --selfcheck after every periodic snapshot and before every recovery.
//
// Note on build placement: the declaration lives in src/check (it is a
// validator and reports through check::Report), but the definition is
// compiled into ft_svc — it depends on svc types and ft_svc already links
// ft_check, so compiling it into ft_check would cycle the library graph.

#include "check/report.hpp"

namespace flattree::svc::durable {
// fwd: the decoded snapshot under validation
struct ServiceSnapshot;
}  // namespace flattree::svc::durable

namespace flattree::check {

/// Validates a decoded snapshot. Codes: snapshot.counter (counter
/// identities: accepted == sum(by_op), lines == accepted + rejected,
/// shed counters bounded by rejected, journal_lines <= accepted,
/// batches and max_batch bounded by accepted),
/// snapshot.session (shard ids out of range or not strictly ascending),
/// snapshot.record (seq not strictly increasing / beyond `lines`, op not
/// mutating, history not starting at `build`, or a canonical line that
/// fails parse_request or disagrees with its session/op tags).
Report validate_snapshot(const svc::durable::ServiceSnapshot& s);

}  // namespace flattree::check
