#include "check/te_check.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "graph/bfs.hpp"

namespace flattree::check {

namespace {

/// Walk verdicts classified for code mapping (first failure per pair).
enum class WalkFault : std::uint8_t { None, Blackhole, Loop, HopLimit };

/// Per-destination memoized walk over positive-weight rules. Structural
/// rule hygiene is checked separately, so this checker only classifies the
/// walk-level faults.
class WalkChecker {
 public:
  WalkChecker(const topo::Topology& topo, const te::WeightedFib& fib, graph::NodeId dst,
              std::uint32_t hop_limit)
      : topo_(topo), fib_(fib), dst_(dst), hop_limit_(hop_limit),
        state_(topo.switch_count(), State::Unknown),
        depth_(topo.switch_count(), 0) {}

  WalkFault check(graph::NodeId src, graph::NodeId& at_fault) {
    return visit(src, at_fault);
  }

 private:
  enum class State : std::uint8_t { Unknown, OnStack, Good };

  WalkFault visit(graph::NodeId u, graph::NodeId& at_fault) {
    if (u == dst_ || state_[u] == State::Good) return WalkFault::None;
    if (state_[u] == State::OnStack) {
      at_fault = u;
      return WalkFault::Loop;
    }
    const auto& hops = fib_.next_hops(u, dst_);
    std::uint64_t entry_weight = 0;
    for (const te::WeightedHop& hop : hops) entry_weight += hop.weight;
    if (entry_weight == 0) {
      at_fault = u;
      return WalkFault::Blackhole;
    }
    state_[u] = State::OnStack;
    std::uint32_t worst = 0;
    for (const te::WeightedHop& hop : hops) {
      if (hop.weight == 0) continue;  // flagged structurally, not a walk choice
      if (hop.link >= topo_.graph().link_count()) continue;  // flagged as bad_link
      graph::NodeId v = topo_.graph().link(hop.link).other(u);
      WalkFault fault = visit(v, at_fault);
      if (fault != WalkFault::None) {
        state_[u] = State::Unknown;  // leave re-entrant state clean
        return fault;
      }
      worst = std::max(worst, (v == dst_ ? 0u : depth_[v]) + 1u);
    }
    if (worst > hop_limit_) {
      state_[u] = State::Unknown;
      at_fault = u;
      return WalkFault::HopLimit;
    }
    depth_[u] = worst;
    state_[u] = State::Good;
    return WalkFault::None;
  }

  const topo::Topology& topo_;
  const te::WeightedFib& fib_;
  graph::NodeId dst_;
  std::uint32_t hop_limit_;
  std::vector<State> state_;
  std::vector<std::uint32_t> depth_;
};

}  // namespace

Report validate_weighted_fib(
    const topo::Topology& t, const te::WeightedFib& fib,
    const std::vector<std::pair<graph::NodeId, graph::NodeId>>& pairs,
    const WeightedFibCheckOptions& options) {
  count_run();
  Report report;
  const graph::Graph& g = t.graph();

  // -- structural rule hygiene over the whole table -------------------------
  report.note_check(3);
  for (graph::NodeId at = 0; at < fib.switch_count(); ++at) {
    for (graph::NodeId dst : fib.destinations(at)) {
      const auto& hops = fib.next_hops(at, dst);
      std::uint64_t entry_weight = 0;
      for (const te::WeightedHop& hop : hops) {
        entry_weight += hop.weight;
        if (hop.weight == 0) {
          std::ostringstream os;
          os << "zero-weight rule at switch " << at << " toward " << dst << " via link "
             << hop.link;
          report.add("te.wfib.zero_weight", os.str());
        }
        bool incident = hop.link < g.link_count() && g.link_live(hop.link) &&
                        (g.link(hop.link).a == at || g.link(hop.link).b == at);
        if (!incident) {
          std::ostringstream os;
          os << "rule at switch " << at << " toward " << dst << " uses link " << hop.link
             << " which is unknown, dead, or not incident to " << at;
          report.add("te.wfib.bad_link", os.str());
        }
      }
      if (!hops.empty() && entry_weight != fib.weight_budget()) {
        std::ostringstream os;
        os << "entry (" << at << " -> " << dst << ") weights sum to " << entry_weight
           << ", budget is " << fib.weight_budget();
        report.add("te.wfib.weight_sum", os.str());
      }
    }
  }

  // -- walk-level checks over the requested pairs ---------------------------
  std::unordered_map<graph::NodeId, std::vector<graph::NodeId>> by_dst;
  for (auto [src, dst] : pairs)
    if (src != dst) by_dst[dst].push_back(src);

  report.note_check(pairs.size());
  // Sorted destination order keeps the violation list deterministic.
  std::vector<graph::NodeId> dsts;
  dsts.reserve(by_dst.size());
  for (const auto& [dst, sources] : by_dst) dsts.push_back(dst);
  std::sort(dsts.begin(), dsts.end());

  for (graph::NodeId dst : dsts) {
    std::vector<std::uint32_t> dist = graph::bfs_distances(g, dst);
    WalkChecker checker(t, fib, dst, options.hop_limit);
    bool dst_reported = false;
    for (graph::NodeId src : by_dst[dst]) {
      if (dist[src] == graph::kUnreachable) {
        std::ostringstream os;
        os << "pair (" << src << " -> " << dst << ") is disconnected in the topology";
        report.add("te.wfib.disconnected", os.str());
        continue;
      }
      if (dst_reported) continue;  // one walk fault per destination is enough
      graph::NodeId at_fault = src;
      switch (checker.check(src, at_fault)) {
        case WalkFault::None:
          break;
        case WalkFault::Blackhole: {
          std::ostringstream os;
          os << "blackhole: switch " << at_fault
             << " has no positive-weight route toward " << dst;
          report.add("te.wfib.blackhole", os.str());
          dst_reported = true;
          break;
        }
        case WalkFault::Loop: {
          std::ostringstream os;
          os << "forwarding loop through switch " << at_fault << " toward " << dst;
          report.add("te.wfib.loop", os.str());
          dst_reported = true;
          break;
        }
        case WalkFault::HopLimit: {
          std::ostringstream os;
          os << "walk from switch " << at_fault << " toward " << dst << " exceeds "
             << options.hop_limit << " hops";
          report.add("te.wfib.hop_limit", os.str());
          dst_reported = true;
          break;
        }
      }
    }
  }
  return report;
}

}  // namespace flattree::check
