#include "check/report.hpp"

#include "obs/metrics.hpp"

namespace flattree::check {

namespace {

obs::Counter c_violations("check.violations");
obs::Counter c_runs("check.runs");

}  // namespace

void Report::add(std::string code, std::string message) {
  c_violations.inc();
  violations.push_back(Violation{std::move(code), std::move(message)});
}

void Report::merge(const Report& other) {
  violations.insert(violations.end(), other.violations.begin(), other.violations.end());
  checks_run += other.checks_run;
}

std::string Report::to_string() const {
  std::string out;
  for (const Violation& v : violations) {
    out += v.code;
    out += ": ";
    out += v.message;
    out += '\n';
  }
  if (!out.empty()) out.pop_back();
  return out;
}

void count_run() { c_runs.inc(); }

}  // namespace flattree::check
